//! Criterion microbenchmarks: host-side cost of the measurement paths and
//! simulator substrate (the §V.5 "did the indirection regress anything?"
//! questions, plus throughput of the hot simulation loops).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use papi::{Attach, Papi};
use simcpu::cache::setassoc::SetAssocCache;
use simcpu::cache::CacheGeometry;
use simcpu::machine::MachineSpec;
use simcpu::phase::Phase;
use simcpu::types::CpuMask;
use simos::kernel::{Kernel, KernelConfig, KernelHandle};
use simos::task::{Op, ScriptedProgram};

fn forever_task(kernel: &KernelHandle, cpus: CpuMask) -> simos::task::Pid {
    kernel.lock().spawn(
        "spin",
        Box::new(ScriptedProgram::new([
            Op::Compute(Phase::scalar(u64::MAX / 2)),
            Op::Exit,
        ])),
        cpus,
        0,
    )
}

/// PAPI read cost: 1 perf group (homogeneous events) vs 2 (hybrid) vs the
/// rdpmc fast path — the multi-group indirection cost in host time.
fn bench_papi_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("papi_read");
    for (label, events) in [
        (
            "1group",
            vec![
                "adl_glc::INST_RETIRED:ANY",
                "adl_glc::CPU_CLK_UNHALTED:THREAD",
            ],
        ),
        (
            "2groups",
            vec![
                "adl_glc::INST_RETIRED:ANY",
                "adl_glc::CPU_CLK_UNHALTED:THREAD",
                "adl_grt::INST_RETIRED:ANY",
                "adl_grt::CPU_CLK_UNHALTED:THREAD",
            ],
        ),
    ] {
        let kernel =
            Kernel::boot_handle(MachineSpec::raptor_lake_i7_13700(), KernelConfig::default());
        let pid = forever_task(&kernel, CpuMask::from_cpus([0, 16]));
        let mut papi = Papi::init(kernel.clone()).unwrap();
        let es = papi.create_eventset();
        papi.attach(es, Attach::Task(pid)).unwrap();
        for ev in &events {
            papi.add_named(es, ev).unwrap();
        }
        papi.start(es).unwrap();
        for _ in 0..10 {
            kernel.lock().tick();
        }
        group.bench_function(BenchmarkId::new("read", label), |b| {
            b.iter(|| papi.read(es).unwrap())
        });
        group.bench_function(BenchmarkId::new("read_fast", label), |b| {
            b.iter(|| papi.read_fast(es, 0).unwrap())
        });
    }
    group.finish();
}

/// Group planning (the static-array-vs-fancier-structures question the
/// paper leaves open): cost of splitting N events into per-PMU groups.
fn bench_group_split(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_groups");
    for n in [2usize, 8, 32, 128] {
        let pmu_types: Vec<u32> = (0..n).map(|i| 4 + (i % 3) as u32).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &pmu_types, |b, p| {
            b.iter(|| papi::eventset::plan_groups(p, false))
        });
    }
    group.finish();
}

/// Kernel tick throughput with a realistic load (16 HPL-ish workers).
fn bench_kernel_tick(c: &mut Criterion) {
    use simos::kernel::ExecMode;
    let mut group = c.benchmark_group("kernel_tick");
    let cases = [
        ("idle", 0usize, ExecMode::Serial),
        ("8tasks", 8, ExecMode::Serial),
        ("24tasks", 24, ExecMode::Serial),
        // Same load through the per-core fan-out path (threads: 0 = one
        // per host core); ticks/sec should scale on multi-core hosts.
        ("24tasks-par", 24, ExecMode::Parallel { threads: 0 }),
    ];
    for (label, ntasks, exec_mode) in cases {
        let kernel = Kernel::boot_handle(
            MachineSpec::raptor_lake_i7_13700(),
            KernelConfig {
                exec_mode,
                ..Default::default()
            },
        );
        for i in 0..ntasks {
            forever_task(&kernel, CpuMask::from_cpus([i % 24]));
        }
        group.bench_function(label, |b| b.iter(|| kernel.lock().tick()));
    }
    group.finish();
}

/// Raw set-associative cache simulator throughput (accesses/second).
fn bench_cache_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_sim");
    let mut cache = SetAssocCache::new(CacheGeometry::new(32 * 1024, 8, 64));
    let mut addr: u64 = 0;
    group.bench_function("sequential", |b| {
        b.iter(|| {
            addr = addr.wrapping_add(64);
            cache.access(addr)
        })
    });
    let mut lcg: u64 = 0x12345;
    group.bench_function("random", |b| {
        b.iter(|| {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            cache.access(lcg >> 20)
        })
    });
    group.finish();
}

/// The analytic miss-rate model (runs once per phase per tick per CPU).
fn bench_miss_profile(c: &mut Criterion) {
    let phase = Phase::dgemm(1_000_000, 26 << 30, 0.35);
    let ua = &simcpu::uarch::GOLDEN_COVE;
    c.bench_function("miss_profile", |b| {
        b.iter(|| simcpu::cache::analytic::miss_profile(&phase, ua, 15 << 20))
    });
}

/// The cycle-batch engine with and without the exec-plan cache — the
/// per-call cost `exec_core` pays for every batch on every CPU every tick.
fn bench_exec_plan(c: &mut Criterion) {
    use simcpu::exec::{advance, advance_planned, ExecContext};
    use simcpu::plan::PlanCache;
    let phase = Phase::dgemm(1 << 44, 26 << 30, 0.35);
    let ctx = ExecContext {
        uarch: &simcpu::uarch::GOLDEN_COVE,
        freq_khz: 3_400_000,
        ref_khz: 2_100_000,
        llc_share_bytes: 15 << 20,
        mem_contention: 1.2,
        smt_factor: 1.0,
    };
    let mut group = c.benchmark_group("exec_advance");
    group.bench_function("uncached", |b| b.iter(|| advance(&phase, 3.4e6, &ctx)));
    let mut cache = PlanCache::new();
    group.bench_function("planned", |b| {
        b.iter(|| advance_planned(&phase, 3.4e6, &ctx, &mut cache))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_papi_read,
    bench_group_split,
    bench_kernel_tick,
    bench_cache_sim,
    bench_miss_profile,
    bench_exec_plan
);
criterion_main!(benches);
