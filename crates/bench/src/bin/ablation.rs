//! Ablation study: which design choice produces which paper effect?
//!
//! DESIGN.md calls out three load-bearing modeling decisions; this binary
//! isolates each on the all-core Raptor Lake configuration:
//!
//! 1. **Synchronization style** — OpenBLAS-personality HPL with spin vs
//!    blocking waits: spinning is what inflates the P-core instruction
//!    share (Table III) and keeps package power high during stragglers.
//! 2. **Partitioning** — static equal chunks vs dynamic queue at equal
//!    blocking quality: the dynamic queue alone recovers most of the
//!    hetero-aware speedup (Table II).
//! 3. **Scheduler capacity awareness** — hetero-aware vs naive placement
//!    for an unpinned task: capacity awareness is why unpinned work lands
//!    P-first (§IV.F's 84/16 split).

use bench_harness::common::*;
use simcpu::machine::MachineSpec;
use simcpu::types::CpuMask;
use simos::kernel::{Kernel, KernelConfig};
use workloads::hpl::{run_to_completion, spawn_hpl_tuned, HplTuning, HplVariant};

fn hpl_with(tuning: HplTuning, variant: HplVariant) -> (f64, f64) {
    let kernel = raptor_kernel();
    kernel.lock().settle_temperature(35.0);
    let (_, _, all) = raptor_core_sets();
    let run = spawn_hpl_tuned(&kernel, hpl_config(), variant, tuning, all);
    let gflops = run_to_completion(&kernel, &run, 3_600_000_000_000).expect("finishes");
    let k = kernel.lock();
    let mut by_type = [0u64; 2];
    for &pid in &run.pids {
        let st = k.task_stats(pid).unwrap();
        by_type[0] += st.instructions_by_type[0];
        by_type[1] += st.instructions_by_type[1];
    }
    let p_share = by_type[0] as f64 / (by_type[0] + by_type[1]).max(1) as f64 * 100.0;
    (gflops, p_share)
}

fn main() {
    header(&format!(
        "Ablations (all-core Raptor Lake, N={}, scale 1/{})",
        hpl_config().n,
        hpl_scale()
    ));

    // --- 1 & 2: synchronization × partitioning, OpenBLAS personality ---
    println!("\n[1+2] OpenBLAS-personality HPL, all cores:");
    println!(
        "{:<44} {:>10} {:>12}",
        "configuration", "Gflops", "P-inst share"
    );
    let cases: [(&str, HplTuning); 4] = [
        (
            "static chunks + spin   (= OpenBLAS HPL)",
            HplTuning::default(),
        ),
        (
            "static chunks + block  (sync ablated)",
            HplTuning {
                spin_wait: Some(false),
                ..Default::default()
            },
        ),
        (
            "dynamic queue + spin   (partition ablated)",
            HplTuning {
                dynamic_chunks_per_thread: Some(6),
                ..Default::default()
            },
        ),
        (
            "dynamic queue + block  (≈ Intel scheduling)",
            HplTuning {
                spin_wait: Some(false),
                dynamic_chunks_per_thread: Some(6),
                ..Default::default()
            },
        ),
    ];
    let mut results = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = cases
            .iter()
            .map(|(_, t)| {
                let t = *t;
                s.spawn(move || hpl_with(t, HplVariant::OpenBlas))
            })
            .collect();
        for h in handles {
            results.push(h.join().unwrap());
        }
    });
    for ((label, _), (gf, pshare)) in cases.iter().zip(&results) {
        println!("{label:<44} {gf:>10.1} {pshare:>11.1}%");
    }
    println!(
        "→ the dynamic queue buys the throughput; spinning shifts the\n\
          instruction mix toward the P cores without helping Gflops."
    );

    // --- 3: scheduler capacity awareness under contention ---
    println!("\n[3] §IV.F-style unpinned loop under P-core noise bursts:");
    println!("{:<44} {:>12} {:>12}", "scheduler", "P share", "migrations");
    for (label, sched) in [
        ("capacity-aware (ITMT/EAS-like)", simos::SchedName::Cfs),
        ("naive (first-fit)", simos::SchedName::CfsUnaware),
    ] {
        let kernel = Kernel::boot_handle(
            MachineSpec::raptor_lake_i7_13700(),
            KernelConfig {
                sched,
                ..Default::default()
            },
        );
        let noise = workloads::micro::spawn_noise(
            &kernel,
            CpuMask::parse_cpulist("0-15").unwrap(),
            2_000_000,
            10_000_000,
        );
        let pid = workloads::micro::spawn_hybrid_test(
            &kernel,
            &workloads::micro::HybridTestConfig {
                repetitions: 100,
                ..workloads::micro::HybridTestConfig::paper(24)
            },
        );
        loop {
            let hooks = {
                let mut k = kernel.lock();
                if k.task_state(pid) == Some(simos::task::TaskState::Exited)
                    || k.time_ns() > 600_000_000_000
                {
                    break;
                }
                k.tick();
                k.take_pending_hooks()
            };
            for (p, _) in hooks {
                kernel.lock().resume(p).unwrap();
            }
        }
        noise.stop();
        let st = kernel.lock().task_stats(pid).unwrap();
        let p_share = st.instructions_by_type[0] as f64
            / (st.instructions_by_type[0] + st.instructions_by_type[1]).max(1) as f64
            * 100.0;
        println!("{label:<44} {p_share:>11.1}% {:>12}", st.migrations);
    }
    println!(
        "→ capacity awareness is what pulls the task *back* to the P cores\n\
          after each noise burst; the naive scheduler leaves it wherever it\n\
          landed, eroding the P share the §IV.F numbers rest on."
    );
}
