//! Exec hot-path microbenchmark + tier-1 regression gate.
//!
//! Emits `BENCH_exec.json` and exits nonzero if the per-tick serial rate on
//! `raptor_lake_i7_13700` drops below the pre-plan-cache baseline, so
//! `scripts/tier1.sh` fails loudly on a hot-path regression. Two sections:
//!
//!  1. ns/call for `exec::advance` (full analytic model every call) vs
//!     `exec::advance_planned` (exec-plan cache) on a warm dgemm phase —
//!     the per-batch cost `exec_core` pays on every CPU on every tick.
//!  2. The legacy per-tick serial tick rate: the exact pre-PR tickbench
//!     workload (one 200k-instruction dgemm worker per CPU, plain `tick()`
//!     loop, no macro-tick coalescing) on `raptor_lake_i7_13700`. The gate
//!     floor is the rate this host recorded *before* the plan cache landed.
//!
//! Knobs: `--quick` (300 timed ticks instead of 1500), `EXECBENCH_TICKS`.

use simcpu::exec::{advance, advance_planned, ExecContext};
use simcpu::machine::MachineSpec;
use simcpu::phase::Phase;
use simcpu::plan::PlanCache;
use simcpu::types::CpuMask;
use simos::kernel::{ExecMode, Kernel, KernelConfig};
use simos::task::Op;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// `raptor_lake_i7_13700` serial ticks/s recorded by tickbench at PR 3 on
/// this host class, before the exec-plan cache existed. The gate fails if
/// the cached path ever falls below what the uncached path delivered.
const BASELINE_PR3_SERIAL_TPS: f64 = 5344.84;

fn ns_per_call(mut f: impl FnMut()) -> f64 {
    for _ in 0..10_000 {
        f();
    }
    let iters = 200_000u32;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e9 / iters as f64
}

/// The pre-PR tickbench shape: micro-phases that complete every tick, so
/// neither macro-ticks nor the one-deep result memo can hide model cost.
fn per_tick_serial_tps(warmup: usize, ticks: usize) -> f64 {
    let mut k = Kernel::boot(
        MachineSpec::raptor_lake_i7_13700(),
        KernelConfig {
            exec_mode: ExecMode::Serial,
            ..Default::default()
        },
    );
    let n = k.machine().n_cpus();
    for i in 0..n {
        k.spawn(
            &format!("w{i}"),
            Box::new(move |_: &simos::task::ProgCtx| {
                Op::Compute(Phase::dgemm(200_000, 8 << 20, 0.35))
            }),
            CpuMask::from_cpus([i]),
            0,
        );
    }
    for _ in 0..warmup {
        k.tick();
    }
    let start = Instant::now();
    for _ in 0..ticks {
        k.tick();
    }
    ticks as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let ticks = std::env::var("EXECBENCH_TICKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 300 } else { 1500 });

    let phase = Phase::dgemm(1 << 44, 26 << 30, 0.35);
    let ctx = ExecContext {
        uarch: &simcpu::uarch::GOLDEN_COVE,
        freq_khz: 3_400_000,
        ref_khz: 2_100_000,
        llc_share_bytes: 15 << 20,
        mem_contention: 1.2,
        smt_factor: 1.0,
    };
    let uncached_ns = ns_per_call(|| {
        black_box(advance(black_box(&phase), 3.4e6, &ctx));
    });
    let mut cache = PlanCache::new();
    let planned_ns = ns_per_call(|| {
        black_box(advance_planned(black_box(&phase), 3.4e6, &ctx, &mut cache));
    });
    let call_speedup = uncached_ns / planned_ns.max(1e-9);

    let tps = per_tick_serial_tps(ticks / 10, ticks);
    let gate_pass = tps >= BASELINE_PR3_SERIAL_TPS;

    println!("execbench: {ticks} timed ticks");
    println!("  advance          {uncached_ns:>8.1} ns/call");
    println!("  advance_planned  {planned_ns:>8.1} ns/call   speedup {call_speedup:.2}x");
    println!(
        "  raptor per-tick serial {tps:>9.1} t/s   floor {BASELINE_PR3_SERIAL_TPS} t/s   {}",
        if gate_pass { "PASS" } else { "FAIL" }
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"ticks\": {ticks},");
    let _ = writeln!(json, "  \"advance_ns_per_call\": {uncached_ns:.2},");
    let _ = writeln!(json, "  \"advance_planned_ns_per_call\": {planned_ns:.2},");
    let _ = writeln!(json, "  \"call_speedup\": {call_speedup:.3},");
    let _ = writeln!(json, "  \"raptor_serial_per_tick_ticks_per_s\": {tps:.2},");
    let _ = writeln!(
        json,
        "  \"baseline_pr3_serial_ticks_per_s\": {BASELINE_PR3_SERIAL_TPS},"
    );
    let _ = writeln!(json, "  \"gate_pass\": {gate_pass}");
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_exec.json", &json).expect("write BENCH_exec.json");
    println!("wrote BENCH_exec.json");

    if !gate_pass {
        eprintln!(
            "execbench: REGRESSION — raptor per-tick serial {tps:.1} t/s \
             is below the PR-3 baseline {BASELINE_PR3_SERIAL_TPS} t/s"
        );
        std::process::exit(1);
    }
}
