//! Regenerates **Figure 1**: measured core frequencies on the Raptor Lake
//! system for both HPL variants, run on all cores (1 Hz polling).
//!
//! Paper observations to reproduce:
//! * noisy P-core frequency for OpenBLAS (its spin/straggle cycle keeps
//!   perturbing the power budget);
//! * medians: OpenBLAS P ≈ 2.94 GHz / E ≈ 2.26 GHz; Intel P ≈ 2.61 GHz /
//!   E ≈ 2.32 GHz — the Intel frequencies are *less dissimilar*;
//! * an initial frequency spike while the short-term power cap lasts.

use bench_harness::common::*;
use telemetry::{ascii_chart, monitored_hpl_run, series_to_rows, write_csv, DriverConfig};
use workloads::hpl::HplVariant;

fn main() {
    header(&format!(
        "Figure 1 — core frequencies, all-core HPL (N={}, scale 1/{})",
        hpl_config().n,
        hpl_scale()
    ));
    let (_, _, all) = raptor_core_sets();
    let driver = DriverConfig {
        n_runs: 1,
        ..Default::default()
    };

    let mut medians = Vec::new();
    for (idx, variant) in [HplVariant::OpenBlas, HplVariant::IntelMkl]
        .into_iter()
        .enumerate()
    {
        let kernel = raptor_kernel();
        let (p_mask, e_mask) = type_masks(&kernel);
        let run = monitored_hpl_run(&kernel, &hpl_config(), variant, all, &driver, 0);
        let p_series = run.trace.freq_series_mhz(&p_mask);
        let e_series = run.trace.freq_series_mhz(&e_mask);
        let p_med = run.trace.median_freq_mhz(&p_mask) / 1000.0;
        let e_med = run.trace.median_freq_mhz(&e_mask) / 1000.0;
        println!(
            "\n{}",
            ascii_chart(
                &format!(
                    "Fig 1({}) {} — core frequency (MHz) vs time (s)",
                    ['a', 'b'][idx],
                    variant.name()
                ),
                "MHz",
                &[("P cores", &p_series), ("E cores", &e_series)],
                76,
                18,
            )
        );
        let paper = if variant == HplVariant::OpenBlas {
            (2.94, 2.26)
        } else {
            (2.61, 2.32)
        };
        println!(
            "median freq  P: {p_med:.2} GHz (paper {:.2})   E: {e_med:.2} GHz (paper {:.2})",
            paper.0, paper.1
        );
        medians.push((p_med, e_med));
        write_csv(
            format!(
                "results/fig1_{}.csv",
                if idx == 0 { "openblas" } else { "intel" }
            ),
            &["t_s", "p_mhz", "e_mhz"],
            &series_to_rows(&[&p_series, &e_series]),
        )
        .expect("csv");
    }

    println!(
        "\nP/E dissimilarity (P−E median): OpenBLAS {:.2} GHz, Intel {:.2} GHz \
         (paper: Intel less dissimilar: 0.68 vs 0.29 GHz)",
        medians[0].0 - medians[0].1,
        medians[1].0 - medians[1].1
    );
    println!("wrote results/fig1_openblas.csv, results/fig1_intel.csv");
}
