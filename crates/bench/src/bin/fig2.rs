//! Regenerates **Figure 2**: measured power and package temperature on
//! the Raptor Lake system for both HPL variants, run on all cores.
//!
//! Paper observations to reproduce:
//! * Intel HPL briefly reaches the 219 W short-term (PL2) cap, then both
//!   settle at the 65 W long-term (PL1) limit for the rest of the run;
//! * OpenBLAS HPL cannot reach PL2 — it peaks around 165.7 W;
//! * neither run approaches the 100 °C limit (no thermal throttling).

use bench_harness::common::*;
use telemetry::{ascii_chart, monitored_hpl_run, series_to_rows, write_csv, DriverConfig, Trace};
use workloads::hpl::HplVariant;

fn main() {
    header(&format!(
        "Figure 2 — package power & temperature, all-core HPL (N={}, scale 1/{})",
        hpl_config().n,
        hpl_scale()
    ));
    let (_, _, all) = raptor_core_sets();
    let driver = DriverConfig {
        n_runs: 1,
        ..Default::default()
    };

    for (idx, variant) in [HplVariant::OpenBlas, HplVariant::IntelMkl]
        .into_iter()
        .enumerate()
    {
        let kernel = raptor_kernel();
        let run = monitored_hpl_run(&kernel, &hpl_config(), variant, all, &driver, 0);
        let power = run.trace.pkg_power_series();
        let temp = run.trace.temp_series_c();
        println!(
            "\n{}",
            ascii_chart(
                &format!(
                    "Fig 2({}) {} — package power (W) vs time (s)",
                    ['a', 'b'][idx],
                    variant.name()
                ),
                "W",
                &[("RAPL pkg power", &power)],
                76,
                16,
            )
        );
        println!(
            "{}",
            ascii_chart(
                &format!("{} — package temperature (°C)", variant.name()),
                "degC",
                &[("pkg temp", &temp)],
                76,
                10,
            )
        );
        let peak_w = Trace::peak(&power);
        let peak_t = Trace::peak(&temp);
        // Steady power = median of the second half.
        let steady = {
            let half = &power[power.len() / 2..];
            let mut v: Vec<f64> = half.iter().map(|p| p.1).collect();
            v.sort_by(|a, b| a.total_cmp(b));
            v.get(v.len() / 2).copied().unwrap_or(0.0)
        };
        let paper_peak = if variant == HplVariant::OpenBlas {
            165.7
        } else {
            219.0
        };
        println!(
            "peak power {peak_w:.1} W (paper ≈{paper_peak}),  steady {steady:.1} W \
             (paper 65 = PL1),  peak temp {peak_t:.1} °C (paper <100, no throttling)"
        );
        write_csv(
            format!(
                "results/fig2_{}.csv",
                if idx == 0 { "openblas" } else { "intel" }
            ),
            &["t_s", "pkg_w", "temp_c"],
            &series_to_rows(&[&power, &temp]),
        )
        .expect("csv");
    }
    println!("\nwrote results/fig2_openblas.csv, results/fig2_intel.csv");
}
