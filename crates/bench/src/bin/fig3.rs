//! Regenerates **Figure 3**: frequency-scaling behaviour on the ARM64
//! big.LITTLE system (OrangePi 800 / RK3399) running HPL on the big cores.
//!
//! Paper observations to reproduce:
//! * the big (Cortex-A72) cores ramp to 1.8 GHz quickly, then the SoC
//!   temperature rises and the thermal governor steps them down;
//! * most of the run executes at reduced frequency;
//! * power is measured with an external WattsUpPro-style wall meter.

use bench_harness::common::*;
use simcpu::types::CpuMask;
use telemetry::{ascii_chart, monitored_hpl_run, series_to_rows, write_csv, DriverConfig};
use workloads::hpl::HplVariant;

fn main() {
    let cfg = opi_hpl_config();
    header(&format!(
        "Figure 3 — RK3399 frequency scaling, HPL on big cores (N={}, scale 1/{})",
        cfg.n,
        opi_scale()
    ));
    let kernel = orangepi_kernel();
    let (big, little) = type_masks(&kernel);
    let driver = DriverConfig {
        n_runs: 1,
        ..Default::default()
    };
    let run = monitored_hpl_run(
        &kernel,
        &cfg,
        HplVariant::OpenBlas,
        CpuMask::from_cpus(big.iter().map(|c| c.0)),
        &driver,
        0,
    );

    let f_big = run.trace.freq_series_mhz(&big);
    let f_little = run.trace.freq_series_mhz(&little);
    let temp = run.trace.temp_series_c();
    let meter = run.trace.meter_series_w();

    println!(
        "\n{}",
        ascii_chart(
            "Fig 3 — cluster frequency (MHz) vs time (s)",
            "MHz",
            &[("big (A72)", &f_big), ("LITTLE (A53)", &f_little)],
            76,
            16,
        )
    );
    println!(
        "{}",
        ascii_chart(
            "SoC temperature (°C)",
            "degC",
            &[("soc-thermal", &temp)],
            76,
            10,
        )
    );
    println!(
        "{}",
        ascii_chart(
            "Wall power, WattsUpPro analogue (W)",
            "W",
            &[("meter", &meter)],
            76,
            10,
        )
    );

    let max_f = f_big.iter().map(|p| p.1).fold(0.0, f64::max);
    // Median big frequency over the second half (post-throttle).
    let tail = &f_big[f_big.len() / 2..];
    let mut tail_v: Vec<f64> = tail.iter().map(|p| p.1).collect();
    tail_v.sort_by(|a, b| a.total_cmp(b));
    let tail_med = tail_v.get(tail_v.len() / 2).copied().unwrap_or(0.0);
    let peak_t = temp.iter().map(|p| p.1).fold(0.0, f64::max);
    println!(
        "big cores: peak {max_f:.0} MHz (paper: reaches 1800), \
         post-throttle median {tail_med:.0} MHz (paper: well below max), \
         peak SoC temp {peak_t:.1} °C"
    );
    println!("gflops: {:?}", run.gflops);

    write_csv(
        "results/fig3.csv",
        &["t_s", "big_mhz", "little_mhz", "temp_c", "meter_w"],
        &series_to_rows(&[&f_big, &f_little, &temp, &meter]),
    )
    .expect("csv");
    println!("wrote results/fig3.csv");
}
