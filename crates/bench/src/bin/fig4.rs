//! Regenerates **Figure 4**: OrangePi HPL performance as more cores are
//! added.
//!
//! Paper observations to reproduce (with thermal throttling active):
//! * four LITTLE cores complete HPL *faster* than both big cores;
//! * all six cores give only a minimal improvement over the four LITTLE
//!   cores alone.

use bench_harness::common::*;
use simcpu::types::CpuMask;
use telemetry::{monitored_hpl_run, write_csv, DriverConfig};
use workloads::hpl::HplVariant;

fn main() {
    let cfg = opi_hpl_config();
    header(&format!(
        "Figure 4 — OrangePi HPL performance as more cores added (N={}, scale 1/{})",
        cfg.n,
        opi_scale()
    ));
    // cpus 0-1 = big (A72), 2-5 = LITTLE (A53).
    let sets = [
        ("1 big", CpuMask::parse_cpulist("0").unwrap()),
        ("2 big", CpuMask::parse_cpulist("0-1").unwrap()),
        ("2 little", CpuMask::parse_cpulist("2-3").unwrap()),
        ("4 little", CpuMask::parse_cpulist("2-5").unwrap()),
        ("all 6", CpuMask::parse_cpulist("0-5").unwrap()),
    ];
    let driver = DriverConfig {
        n_runs: n_runs(),
        ..Default::default()
    };

    let mut results = vec![None; sets.len()];
    std::thread::scope(|s| {
        let handles: Vec<_> = sets
            .iter()
            .map(|(_, cpus)| {
                let cpus = *cpus;
                let driver = driver.clone();
                let cfg = cfg.clone();
                s.spawn(move || {
                    let kernel = orangepi_kernel();
                    let runs: Vec<_> = (0..driver.n_runs)
                        .map(|r| {
                            monitored_hpl_run(&kernel, &cfg, HplVariant::OpenBlas, cpus, &driver, r)
                        })
                        .collect();
                    telemetry::average_runs(&runs).expect("n_runs >= 1")
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            results[i] = Some(h.join().unwrap());
        }
    });

    println!("\n{:<10} {:>12} {:>12}", "cores", "solve (s)", "Gflops");
    let mut rows = Vec::new();
    let mut times = Vec::new();
    for ((label, _), res) in sets.iter().zip(&results) {
        let r = res.as_ref().unwrap();
        let gf = r.gflops.expect("finished");
        let t = cfg.total_flops() / gf / 1e9;
        println!("{label:<10} {t:>12.1} {gf:>12.2}");
        rows.push(vec![rows.len() as f64, t, gf]);
        times.push(t);
    }

    let t_2big = times[1];
    let t_4little = times[3];
    let t_all = times[4];
    println!(
        "\n4 little vs 2 big: {:+.1}% time ({}; paper: little FASTER due to big-core throttling)",
        (t_4little - t_2big) / t_2big * 100.0,
        if t_4little < t_2big {
            "little faster ✓"
        } else {
            "little slower ✗"
        },
    );
    println!(
        "all 6 vs 4 little: {:+.1}% time (paper: only minimal improvement)",
        (t_all - t_4little) / t_4little * 100.0,
    );

    write_csv("results/fig4.csv", &["set", "solve_s", "gflops"], &rows).expect("csv");
    println!("wrote results/fig4.csv");
}
