//! Regenerates the §IV.F validation result: `papi_hybrid_100m_one_eventset`.
//!
//! The test runs 1 million instructions 100 times with PAPI calipers
//! around each repetition, on an *unpinned* task with background load
//! nudging it between core types.
//!
//! * **Original PAPI** (legacy mode) can only open one of the two
//!   INST_RETIRED events per EventSet: depending on where the scheduler
//!   puts the task you read 0, 1 million, or something in between.
//! * **Patched PAPI** opens both events in one EventSet; the per-type
//!   counts sum to ≈1 M (plus a little library overhead). The paper's
//!   example: `Average instructions p: 836848 e: 167487`.

use bench_harness::common::*;
use papi::{Attach, Papi, PapiMode};
use simcpu::types::CpuMask;
use workloads::micro::{spawn_hybrid_test, spawn_noise, HybridTestConfig, HOOK_START, HOOK_STOP};

/// Run the instrumented loop and return (avg_p, avg_e, repetitions).
fn run_patched(cpus: CpuMask, with_noise: bool) -> (f64, f64, usize) {
    let kernel = raptor_kernel();
    let noise = if with_noise {
        Some(spawn_noise(
            &kernel,
            CpuMask::parse_cpulist("0-15").unwrap(),
            2_000_000,
            10_000_000,
        ))
    } else {
        None
    };
    let cfg = HybridTestConfig {
        cpus,
        ..HybridTestConfig::paper(24)
    };
    let pid = spawn_hybrid_test(&kernel, &cfg);
    let mut papi = Papi::init(kernel).expect("init");
    let es = papi.create_eventset();
    papi.attach(es, Attach::Task(pid)).unwrap();
    papi.add_named(es, "adl_glc::INST_RETIRED:ANY").unwrap();
    papi.add_named(es, "adl_grt::INST_RETIRED:ANY").unwrap();
    let results = papi
        .run_instrumented_task(es, HOOK_START, HOOK_STOP, pid, 600_000_000_000)
        .expect("run");
    if let Some(n) = noise {
        n.stop();
    }
    let n = results.len().max(1);
    let p: u64 = results.iter().map(|v| v[0].1).sum();
    let e: u64 = results.iter().map(|v| v[1].1).sum();
    (p as f64 / n as f64, e as f64 / n as f64, results.len())
}

/// Legacy PAPI: only one event can be in the set; measure with the P-core
/// event under the given pinning.
fn run_legacy(cpus: CpuMask, label: &str, with_noise: bool) {
    let kernel = raptor_kernel();
    let noise = if with_noise {
        Some(spawn_noise(
            &kernel,
            CpuMask::parse_cpulist("0-15").unwrap(),
            2_000_000,
            10_000_000,
        ))
    } else {
        None
    };
    let cfg = HybridTestConfig {
        cpus,
        ..HybridTestConfig::paper(24)
    };
    let pid = spawn_hybrid_test(&kernel, &cfg);
    let mut papi = Papi::init_with(
        papi_kernel(&kernel),
        papi::PapiConfig {
            mode: PapiMode::Legacy,
            ..Default::default()
        },
    )
    .expect("init");
    let es = papi.create_eventset();
    papi.attach(es, Attach::Task(pid)).unwrap();
    papi.add_named(es, "adl_glc::INST_RETIRED:ANY").unwrap();
    // The defining legacy failure: the E-core event cannot join.
    let err = papi.add_named(es, "adl_grt::INST_RETIRED:ANY").unwrap_err();
    let results = papi
        .run_instrumented_task(es, HOOK_START, HOOK_STOP, pid, 600_000_000_000)
        .expect("run");
    if let Some(n) = noise {
        n.stop();
    }
    let n = results.len().max(1);
    let avg: u64 = results.iter().map(|v| v[0].1).sum::<u64>() / n as u64;
    println!("  legacy, {label:<22} glc::INST_RETIRED avg = {avg:>9}   (adding grt event: {err})");
}

fn papi_kernel(k: &simos::kernel::KernelHandle) -> simos::kernel::KernelHandle {
    k.clone()
}

fn main() {
    header("§IV.F — papi_hybrid_100m_one_eventset (1 M instructions × 100)");

    println!("\nOriginal PAPI (one PMU per EventSet): count depends on pinning —");
    run_legacy(
        CpuMask::parse_cpulist("0").unwrap(),
        "taskset P-core (cpu 0)",
        false,
    );
    run_legacy(
        CpuMask::parse_cpulist("16").unwrap(),
        "taskset E-core (cpu 16)",
        false,
    );
    run_legacy(CpuMask::first_n(24), "unpinned (noisy system)", true);

    println!("\nPatched PAPI (multi-PMU EventSet):");
    let (p, e, n) = run_patched(CpuMask::first_n(24), true);
    println!("  unpinned + background noise ({n} repetitions):");
    println!("  Average instructions p: {:.0} e: {:.0}", p, e);
    println!("  paper example:          p: 836848 e: 167487");
    let total = p + e;
    println!("  sum: {total:.0} (expected ≈1,000,000 + library overhead; paper sums to 1,004,335)");
    let e_share = e / total * 100.0;
    println!("  E-core share: {e_share:.1}% (paper: 16.7%)");

    // Sanity configurations like the paper's taskset verification.
    let (p_pin, e_pin, _) = run_patched(CpuMask::parse_cpulist("0").unwrap(), false);
    println!("\n  taskset P-core: p={p_pin:.0} e={e_pin:.0} (expected all on P)");
    let (p_pin2, e_pin2, _) = run_patched(CpuMask::parse_cpulist("16").unwrap(), false);
    println!("  taskset E-core: p={p_pin2:.0} e={e_pin2:.0} (expected all on E)");

    telemetry::write_csv(
        "results/hybrid_test.csv",
        &["avg_p", "avg_e", "sum"],
        &[vec![p, e, total]],
    )
    .expect("csv");
    println!("\nwrote results/hybrid_test.csv");
}
