//! §V.5 — measurement-overhead report.
//!
//! The multi-PMU redesign adds a layer of indirection: an EventSet now
//! spans several perf event groups, so `PAPI_read` issues one read syscall
//! *per group* and start/stop ioctl every group leader. This binary
//! quantifies that against the single-group baseline, and compares the
//! `rdpmc` fast path (which skips the syscall entirely).

use bench_harness::common::*;
use papi::{Attach, Papi};
use simcpu::phase::Phase;
use simcpu::types::CpuMask;
use simos::kernel::SyscallStats;
use simos::task::Op;
use workloads::micro::{spawn_hybrid_test, HybridTestConfig};

struct Scenario {
    label: &'static str,
    events: &'static [&'static str],
}

fn measure(sc: &Scenario, reads: u32) -> (usize, SyscallStats, SyscallStats) {
    let kernel = raptor_kernel();
    let pid = kernel.lock().spawn(
        "spin",
        Box::new(simos::task::ScriptedProgram::new([
            Op::Compute(Phase::scalar(u64::MAX / 2)),
            Op::Exit,
        ])),
        CpuMask::from_cpus([0, 16]),
        0,
    );
    let mut papi = Papi::init(kernel.clone()).expect("init");
    let es = papi.create_eventset();
    papi.attach(es, Attach::Task(pid)).unwrap();
    for ev in sc.events {
        papi.add_named(es, ev).unwrap();
    }
    let groups = papi.num_groups(es).unwrap();
    papi.start(es).unwrap();
    for _ in 0..50 {
        kernel.lock().tick();
    }
    let before = papi.syscall_stats();
    for _ in 0..reads {
        let _ = papi.read(es).unwrap();
    }
    let after_reads = papi.syscall_stats();
    for _ in 0..reads {
        let _ = papi.read_fast(es, 0).unwrap();
    }
    let after_fast = papi.syscall_stats();
    (
        groups,
        SyscallStats {
            reads: after_reads.reads - before.reads,
            total_latency_ns: after_reads.total_latency_ns - before.total_latency_ns,
            ..Default::default()
        },
        SyscallStats {
            rdpmc_reads: after_fast.rdpmc_reads - after_reads.rdpmc_reads,
            total_latency_ns: after_fast.total_latency_ns - after_reads.total_latency_ns,
            ..Default::default()
        },
    )
}

fn main() {
    header("§V.5 — measurement overhead: multi-group indirection & read paths");
    const READS: u32 = 1000;
    let scenarios = [
        Scenario {
            label: "1 group  (P events only)",
            events: &[
                "adl_glc::INST_RETIRED:ANY",
                "adl_glc::CPU_CLK_UNHALTED:THREAD",
            ],
        },
        Scenario {
            label: "2 groups (P + E events)",
            events: &[
                "adl_glc::INST_RETIRED:ANY",
                "adl_glc::CPU_CLK_UNHALTED:THREAD",
                "adl_grt::INST_RETIRED:ANY",
                "adl_grt::CPU_CLK_UNHALTED:THREAD",
            ],
        },
        Scenario {
            label: "3 groups (P + E + RAPL)",
            events: &[
                "adl_glc::INST_RETIRED:ANY",
                "adl_grt::INST_RETIRED:ANY",
                "rapl::RAPL_ENERGY_PKG",
            ],
        },
    ];
    println!(
        "\n{:<28} {:>7} {:>14} {:>16} {:>18}",
        "EventSet", "groups", "read syscalls", "ns per PAPI_read", "rdpmc ns per read"
    );
    let mut rows = Vec::new();
    for sc in &scenarios {
        let (groups, reads, fast) = measure(sc, READS);
        let ns_per_read = reads.total_latency_ns as f64 / READS as f64;
        let ns_per_fast = fast.total_latency_ns as f64 / READS as f64;
        println!(
            "{:<28} {:>7} {:>14.1} {:>16.0} {:>18.0}",
            sc.label,
            groups,
            reads.reads as f64 / READS as f64,
            ns_per_read,
            ns_per_fast,
        );
        rows.push(vec![groups as f64, ns_per_read, ns_per_fast]);
    }
    println!(
        "\nThe hybrid EventSet costs one extra read syscall per additional PMU\n\
         group — the \"two or more relatively high-latency read syscalls\" of\n\
         §IV.A — while rdpmc reads stay cheap but only cover core-PMU events."
    );

    // The caliper loop's total overhead, legacy vs hybrid shape.
    let kernel = raptor_kernel();
    let cfg = HybridTestConfig {
        repetitions: 100,
        ..HybridTestConfig::paper(24)
    };
    let pid = spawn_hybrid_test(&kernel, &cfg);
    let mut papi = Papi::init(kernel).expect("init");
    let es = papi.create_eventset();
    papi.attach(es, Attach::Task(pid)).unwrap();
    papi.add_named(es, "adl_glc::INST_RETIRED:ANY").unwrap();
    papi.add_named(es, "adl_grt::INST_RETIRED:ANY").unwrap();
    let _ = papi
        .run_instrumented_task(
            es,
            workloads::HOOK_START,
            workloads::HOOK_STOP,
            pid,
            600_000_000_000,
        )
        .unwrap();
    let s = papi.syscall_stats();
    println!(
        "\n100 calipered regions on a 2-group EventSet: {} opens, {} ioctls, \
         {} reads, {:.1} µs total syscall latency",
        s.opens,
        s.ioctls,
        s.reads,
        s.total_latency_ns as f64 / 1000.0
    );

    telemetry::write_csv(
        "results/overhead.csv",
        &["groups", "ns_per_read", "ns_per_rdpmc"],
        &rows,
    )
    .expect("csv");
    println!("wrote results/overhead.csv");
}
