//! Diagnostic probe: prints frequency/power/temperature every 20 simulated
//! seconds during one P-only Intel-HPL run (respects HPL_SCALE/TICK_NS).
//! Not part of the paper reproduction; useful when re-calibrating
//! `simcpu::uarch` constants.
use bench_harness::common::*;
use simcpu::types::CpuId;
use workloads::hpl::{spawn_hpl, HplVariant};

fn main() {
    let kernel = raptor_kernel();
    let (_, p_only, _all) = raptor_core_sets();
    let cfg = hpl_config();
    eprintln!("N={} iters={}", cfg.n, cfg.iterations());
    kernel.lock().settle_temperature(35.0);
    let run = spawn_hpl(&kernel, cfg, HplVariant::IntelMkl, p_only);
    let mut next = 0u64;
    loop {
        let (t, fp, fe, pw, temp) = {
            let mut k = kernel.lock();
            for _ in 0..16 {
                k.tick();
            }
            (
                k.time_ns(),
                k.machine().freq_khz(CpuId(0)),
                k.machine().freq_khz(CpuId(16)),
                k.machine().power().pkg_w,
                k.machine().thermal().temp_c(),
            )
        };
        if t >= next {
            next = t + 20_000_000_000;
            eprintln!(
                "t={:.3}s fP={:.2}GHz fE={:.2}GHz pkg={:.1}W T={:.1}C solve_started={} ",
                t as f64 / 1e9,
                fp as f64 / 1e6,
                fe as f64 / 1e6,
                pw,
                temp,
                run.solve_time_s().is_some() || run.gflops().is_some()
            );
        }
        if run.finished() {
            break;
        }
        if t > 900_000_000_000 {
            eprintln!("timeout");
            break;
        }
    }
    eprintln!("gflops={:?} solve_s={:?}", run.gflops(), run.solve_time_s());
}
