//! `schedbench` — the scheduler tournament.
//!
//! Reruns the paper's two HPL pathologies (Table II's all-core straggler
//! on Raptor Lake, Table IV's thermal inversion on the OrangePi 800)
//! under every registered scheduler, fault plans on, and emits
//! per-scheduler makespan / throughput / migrations / energy to
//! `BENCH_sched.json`.
//!
//! Usage: `schedbench [--quick]`
//!
//! * `--quick` shrinks both solves (tier-1's `--sched-smoke` gate); the
//!   full run uses the scales in `SCHEDBENCH_SCALE` / `SCHEDBENCH_OPI_SCALE`
//!   (defaults 8 / 1, i.e. the bench-suite raptor scale and the
//!   full-length thermal story).
//!
//! Hard gates (exit 1 on failure):
//! * **drift == 0** — one case per scenario re-runs under
//!   `ExecMode::Parallel` and must reproduce the Serial numbers to the
//!   bit.
//! * **tournament shape** — `capacity` beats `cfs` on the straggler
//!   scenario and `thermal` beats `cfs` on the inversion scenario; the
//!   pathologies exist and the specialists remove them.

use std::fmt::Write as _;

use bench_harness::common::header;
use simos::kernel::ExecMode;
use simos::SchedName;
use workloads::tournament::{
    assert_no_drift, orangepi_scenario, raptor_scenario, run_case, Outcome, Scenario,
};

fn env_scale(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(default)
}

fn run_scenario(sc: &Scenario) -> Vec<Outcome> {
    println!(
        "\n{}: {} unpinned {}-thread HPL workers, N={}, faults on",
        sc.name, sc.nthreads, sc.nthreads, sc.hpl.n
    );
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "scheduler", "Gflops", "makespan s", "migrations", "energy J", "big-core %"
    );
    let mut outcomes = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = SchedName::ALL
            .iter()
            .map(|&sched| s.spawn(move || run_case(sc, sched, ExecMode::Serial)))
            .collect();
        for h in handles {
            outcomes.push(h.join().unwrap());
        }
    });
    for o in &outcomes {
        println!(
            "{:<14} {:>10.2} {:>12.3} {:>12} {:>12.2} {:>9.1}%",
            o.scheduler,
            o.gflops,
            o.makespan_s,
            o.migrations,
            o.energy_uj / 1e6,
            o.big_core_share_pct
        );
    }
    outcomes
}

fn find<'a>(outcomes: &'a [Outcome], name: &str) -> &'a Outcome {
    outcomes
        .iter()
        .find(|o| o.scheduler == name)
        .expect("scheduler ran")
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (raptor_scale, opi_scale) = if quick {
        (64, 4)
    } else {
        (
            env_scale("SCHEDBENCH_SCALE", 8),
            env_scale("SCHEDBENCH_OPI_SCALE", 1),
        )
    };
    header(&format!(
        "schedbench — scheduler tournament ({} schedulers, raptor 1/{raptor_scale}, orangepi 1/{opi_scale}{})",
        SchedName::ALL.len(),
        if quick { ", --quick" } else { "" }
    ));

    let raptor = raptor_scenario(raptor_scale);
    let opi = orangepi_scenario(opi_scale);
    let raptor_out = run_scenario(&raptor);
    let opi_out = run_scenario(&opi);

    // Gate 1: Serial vs Parallel drift must be exactly zero.
    println!("\ndrift check: bit-identical Serial replay, one case per scenario");
    assert_no_drift(&raptor, SchedName::Capacity);
    assert_no_drift(&opi, SchedName::Thermal);
    println!("  drift == 0  PASS");

    // Gate 2: the tournament shape the paper claims.
    let r_cfs = find(&raptor_out, "cfs");
    let r_cap = find(&raptor_out, "capacity");
    let o_cfs = find(&opi_out, "cfs");
    let o_thm = find(&opi_out, "thermal");
    let straggler_fixed = r_cap.gflops > r_cfs.gflops;
    let inversion_fixed = o_thm.gflops > o_cfs.gflops;
    println!(
        "straggler:  capacity {:.2} GF vs cfs {:.2} GF   {}",
        r_cap.gflops,
        r_cfs.gflops,
        if straggler_fixed { "PASS" } else { "FAIL" }
    );
    println!(
        "inversion:  thermal  {:.2} GF vs cfs {:.2} GF   {}",
        o_thm.gflops,
        o_cfs.gflops,
        if inversion_fixed { "PASS" } else { "FAIL" }
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"raptor_scale\": {raptor_scale},");
    let _ = writeln!(json, "  \"orangepi_scale\": {opi_scale},");
    let _ = writeln!(json, "  \"drift\": 0,");
    let _ = writeln!(json, "  \"scenarios\": {{");
    for (si, (sc, outs)) in [(&raptor, &raptor_out), (&opi, &opi_out)]
        .into_iter()
        .enumerate()
    {
        let _ = writeln!(json, "    \"{}\": {{", sc.name);
        let _ = writeln!(json, "      \"hpl_n\": {},", sc.hpl.n);
        let _ = writeln!(json, "      \"nthreads\": {},", sc.nthreads);
        let _ = writeln!(json, "      \"schedulers\": {{");
        for (i, o) in outs.iter().enumerate() {
            let _ = writeln!(
                json,
                "        \"{}\": {{\"gflops\": {:.3}, \"makespan_s\": {:.4}, \
                 \"migrations\": {}, \"energy_j\": {:.3}, \"big_core_share_pct\": {:.2}}}{}",
                o.scheduler,
                o.gflops,
                o.makespan_s,
                o.migrations,
                o.energy_uj / 1e6,
                o.big_core_share_pct,
                if i + 1 < outs.len() { "," } else { "" }
            );
        }
        let _ = writeln!(json, "      }}");
        let _ = writeln!(json, "    }}{}", if si == 0 { "," } else { "" });
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"straggler_fixed\": {straggler_fixed},");
    let _ = writeln!(json, "  \"inversion_fixed\": {inversion_fixed}");
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_sched.json", &json).expect("write BENCH_sched.json");
    println!("\nwrote BENCH_sched.json");

    if !(straggler_fixed && inversion_fixed) {
        eprintln!("schedbench: tournament shape REGRESSION (see table above)");
        std::process::exit(1);
    }
}
