//! Regenerates **Table I**: the Raptor Lake hardware configuration, as
//! reported by the hetero-aware `PAPI_get_hardware_info` (§V.1) — built
//! entirely from the simulated sysfs/cpuid detection path, not from
//! privileged knowledge of the machine model.

use bench_harness::common::*;
use papi::Papi;

fn main() {
    header("Table I — Hardware configuration of the Raptor Lake system");
    let kernel = raptor_kernel();
    let papi = Papi::init(kernel).expect("PAPI init");
    let hw = papi.hardware_info();
    println!("{}", hw.to_table());
    println!(
        "heterogeneous: {} (detected via {})",
        hw.heterogeneous,
        hw.detection_method.map(|m| m.name()).unwrap_or("-"),
    );
    println!("\nPaper's Table I:");
    println!("CPU                   | 13th Gen Intel(R) Core(TM) i7-13700");
    println!("P-cores (performance) | 8 (16 threads) @2.10-5.10 GHz");
    println!("E-cores (efficiency)  | 8 @1.50-4.10 GHz");
    println!("Memory                | 32GB DDR5, 4.4G T/s");

    println!("\nsysdetect probe ladder (§IV.B):");
    for o in &papi.detection_report().outcomes {
        match &o.result {
            Ok(_) => println!(
                "  {:<28} OK   ({} core type(s))",
                o.method.name(),
                o.n_types().unwrap()
            ),
            Err(e) => println!("  {:<28} FAIL ({e})", o.method.name()),
        }
    }
}
