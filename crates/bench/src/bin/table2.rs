//! Regenerates **Table II**: OpenBLAS HPL vs Intel HPL Gflops on the
//! E-only / P-only / all-core sets of the Raptor Lake machine.
//!
//! Paper values (N=57024, NB=192, averages over 10 runs):
//!
//! | Enabled cores | OpenBLAS HPL | Intel HPL | % Change |
//! |---------------|--------------|-----------|----------|
//! | E only        | 188.62       | 198.95    | +5.4 %   |
//! | P only        | 356.28       | 392.89    | +10.3 %  |
//! | P and E       | 290.51       | 457.38    | +57.4 %  |
//!
//! Shape targets: Intel > OpenBLAS everywhere, widest on all-core;
//! OpenBLAS all-core **below** its P-only (−18.5 %); Intel all-core
//! **above** its P-only (+16.4 %).

use bench_harness::common::*;
use std::thread;
use workloads::hpl::HplVariant;

const PAPER: [(&str, f64, f64); 3] = [
    ("E only", 188.62, 198.95),
    ("P only", 356.28, 392.89),
    ("P and E", 290.51, 457.38),
];

fn main() {
    let (e_only, p_only, all) = raptor_core_sets();
    let sets = [("E only", e_only), ("P only", p_only), ("P and E", all)];
    let runs = n_runs();
    header(&format!(
        "Table II — HPL Gflops (N={}, NB=192, {} runs/cell, scale 1/{})",
        hpl_config().n,
        runs,
        hpl_scale()
    ));

    // All six cells are independent machines: run them in parallel.
    let mut results = vec![None; 6];
    thread::scope(|s| {
        let mut handles = Vec::new();
        for (si, (_, cpus)) in sets.iter().enumerate() {
            for (vi, variant) in [HplVariant::OpenBlas, HplVariant::IntelMkl]
                .into_iter()
                .enumerate()
            {
                let cpus = *cpus;
                handles.push((si * 2 + vi, s.spawn(move || hpl_cell(variant, cpus, runs))));
            }
        }
        for (idx, h) in handles {
            results[idx] = Some(h.join().expect("cell run"));
        }
    });

    println!(
        "\n{:<10} {:>15} {:>15} {:>10}   (paper: {:>8} {:>8} {:>8})",
        "cores", "OpenBLAS GF", "Intel GF", "% change", "OB", "Intel", "%"
    );
    let mut rows = Vec::new();
    for (si, (label, _)) in sets.iter().enumerate() {
        let ob = results[si * 2].as_ref().unwrap().gflops.expect("finished");
        let mkl = results[si * 2 + 1]
            .as_ref()
            .unwrap()
            .gflops
            .expect("finished");
        let chg = pct_change(ob, mkl);
        let (plabel, pob, pmkl) = PAPER[si];
        assert_eq!(*label, plabel);
        println!(
            "{label:<10} {ob:>15.2} {mkl:>15.2} {chg:>+9.1}%   (paper: {pob:>8.2} {pmkl:>8.2} {:>+7.1}%)",
            pct_change(pob, pmkl)
        );
        rows.push(vec![si as f64, ob, mkl, chg]);
    }

    let ob_p = results[2].as_ref().unwrap().gflops.unwrap();
    let ob_all = results[4].as_ref().unwrap().gflops.unwrap();
    let mkl_p = results[3].as_ref().unwrap().gflops.unwrap();
    let mkl_all = results[5].as_ref().unwrap().gflops.unwrap();
    println!(
        "\nOpenBLAS all-core vs P-only: {:+.1}%  (paper: -18.5%)",
        pct_change(ob_p, ob_all)
    );
    println!(
        "Intel    all-core vs P-only: {:+.1}%  (paper: +16.4%)",
        pct_change(mkl_p, mkl_all)
    );

    telemetry::write_csv(
        "results/table2.csv",
        &["core_set", "openblas_gflops", "intel_gflops", "pct_change"],
        &rows,
    )
    .expect("write csv");
    println!("\nwrote results/table2.csv");
}
