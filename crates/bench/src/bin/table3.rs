//! Regenerates **Table III**: hardware-counter measurements for the
//! all-core runs — per-core-type LLC miss rate and instruction share.
//!
//! Paper values:
//!
//! |                          | OpenBLAS P | OpenBLAS E | Intel P | Intel E |
//! |--------------------------|-----------:|-----------:|--------:|--------:|
//! | LLC miss rate            | 86 %       | 0.05 %     | 64 %    | 0.03 %  |
//! | % of total instructions  | 80 %       | 20 %       | 68 %    | 32 %    |
//!
//! Like the paper (which collected these with the `perf` tool, not PAPI),
//! this binary opens system-wide per-CPU counting events directly against
//! the perf layer: one group per CPU with `INST_RETIRED`,
//! `LONGEST_LAT_CACHE:REFERENCE` and `LONGEST_LAT_CACHE:MISS` from that
//! CPU's own PMU — the "perf tool way" of handling hybrid machines
//! described in §IV.A.

use bench_harness::common::*;
use pfmlib::{Pfm, PfmOptions};
use simcpu::types::{CoreType, CpuId};
use simos::perf::{EventFd, Target};
use workloads::hpl::{run_to_completion, spawn_hpl, HplVariant};

struct CpuCounters {
    cpu: CpuId,
    core_type: CoreType,
    inst: EventFd,
    llc_ref: EventFd,
    llc_miss: EventFd,
}

fn measure(variant: HplVariant) -> ([f64; 2], [f64; 2]) {
    let kernel = raptor_kernel();
    let (_, _, all) = raptor_core_sets();

    // perf-stat -a style setup, through libpfm for event encoding.
    let mut counters = Vec::new();
    {
        let mut k = kernel.lock();
        let pfm = Pfm::initialize(&k, PfmOptions::default()).expect("pfm");
        let n = k.machine().n_cpus();
        for i in 0..n {
            let cpu = CpuId(i);
            let ct = k.machine().cpu_info(cpu).core_type();
            let pmu = if ct == CoreType::Performance {
                "adl_glc"
            } else {
                "adl_grt"
            };
            let ev = |name: &str| pfm.encode(&format!("{pmu}::{name}")).expect("encode").attr;
            let leader = k
                .perf_event_open(ev("INST_RETIRED:ANY"), Target::Cpu(cpu), None)
                .expect("open inst");
            let llc_ref = k
                .perf_event_open(
                    ev("LONGEST_LAT_CACHE:REFERENCE"),
                    Target::Cpu(cpu),
                    Some(leader),
                )
                .expect("open ref");
            let llc_miss = k
                .perf_event_open(ev("LONGEST_LAT_CACHE:MISS"), Target::Cpu(cpu), Some(leader))
                .expect("open miss");
            k.ioctl_enable(leader, true).expect("enable");
            counters.push(CpuCounters {
                cpu,
                core_type: ct,
                inst: leader,
                llc_ref,
                llc_miss,
            });
        }
        k.settle_temperature(35.0);
    }

    let run = spawn_hpl(&kernel, hpl_config(), variant, all);
    run_to_completion(&kernel, &run, 3_600_000_000_000).expect("HPL finishes");

    let mut inst = [0u64; 2];
    let mut llc_ref = [0u64; 2];
    let mut llc_miss = [0u64; 2];
    {
        let mut k = kernel.lock();
        for c in &counters {
            let idx = if c.core_type == CoreType::Performance {
                0
            } else {
                1
            };
            inst[idx] += k.read_event(c.inst).unwrap().value;
            llc_ref[idx] += k.read_event(c.llc_ref).unwrap().value;
            llc_miss[idx] += k.read_event(c.llc_miss).unwrap().value;
            let _ = c.cpu;
        }
    }
    let total_inst = (inst[0] + inst[1]) as f64;
    let missrate = [
        llc_miss[0] as f64 / llc_ref[0].max(1) as f64 * 100.0,
        llc_miss[1] as f64 / llc_ref[1].max(1) as f64 * 100.0,
    ];
    let share = [
        inst[0] as f64 / total_inst * 100.0,
        inst[1] as f64 / total_inst * 100.0,
    ];
    (missrate, share)
}

fn main() {
    header(&format!(
        "Table III — Hardware counters, all-core runs (N={}, scale 1/{})",
        hpl_config().n,
        hpl_scale()
    ));
    let mut results = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = [HplVariant::OpenBlas, HplVariant::IntelMkl]
            .into_iter()
            .map(|v| s.spawn(move || measure(v)))
            .collect();
        for h in handles {
            results.push(h.join().unwrap());
        }
    });
    let (ob_miss, ob_share) = results[0];
    let (mkl_miss, mkl_share) = results[1];

    println!("\n                      OpenBLAS HPL        Intel HPL        (paper OB / Intel)");
    println!("core type             P        E          P        E");
    println!(
        "LLC missrate     {:>6.1}%  {:>6.3}%   {:>6.1}%  {:>6.3}%    (86%/0.05%  64%/0.03%)",
        ob_miss[0], ob_miss[1], mkl_miss[0], mkl_miss[1]
    );
    println!(
        "% of total inst  {:>6.1}%  {:>6.1}%    {:>6.1}%  {:>6.1}%     (80%/20%    68%/32%)",
        ob_share[0], ob_share[1], mkl_share[0], mkl_share[1]
    );
    println!(
        "\nLLC missrate change P: {:+.1}% (paper -26.3%), E: {:+.1}% (paper -39.8%)",
        (mkl_miss[0] - ob_miss[0]) / ob_miss[0] * 100.0,
        (mkl_miss[1] - ob_miss[1]) / ob_miss[1] * 100.0,
    );

    telemetry::write_csv(
        "results/table3.csv",
        &[
            "variant",
            "p_missrate_pct",
            "e_missrate_pct",
            "p_inst_share_pct",
            "e_inst_share_pct",
        ],
        &[
            vec![0.0, ob_miss[0], ob_miss[1], ob_share[0], ob_share[1]],
            vec![1.0, mkl_miss[0], mkl_miss[1], mkl_share[0], mkl_share[1]],
        ],
    )
    .expect("csv");
    println!("\nwrote results/table3.csv");
}
