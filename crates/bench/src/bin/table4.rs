//! Regenerates **Table IV**: the OrangePi 800 hardware configuration, via
//! the ARM detection path (`cpu_capacity` + MIDR).

use bench_harness::common::*;
use papi::Papi;

fn main() {
    header("Table IV — Hardware configuration of the OrangePi 800 system");
    let kernel = orangepi_kernel();
    let papi = Papi::init(kernel).expect("PAPI init");
    let hw = papi.hardware_info();
    println!("{}", hw.to_table());
    println!(
        "heterogeneous: {} (detected via {})",
        hw.heterogeneous,
        hw.detection_method.map(|m| m.name()).unwrap_or("-"),
    );
    println!("\nPaper's Table IV:");
    println!("CPU          | Rockchip RK3399 SoC");
    println!("big cores    | 2 ARM Cortex-A72 @1.8 GHz");
    println!("little cores | 4 ARM Cortex-A53 @1.4 GHz");
    println!("Memory       | 4GB LPDDR4");

    println!("\nsysdetect probe ladder (§IV.B):");
    for o in &papi.detection_report().outcomes {
        match &o.result {
            Ok(_) => println!(
                "  {:<28} OK   ({} core type(s))",
                o.method.name(),
                o.n_types().unwrap()
            ),
            Err(e) => println!("  {:<28} FAIL ({e})", o.method.name()),
        }
    }
}
