//! Tick-throughput benchmark: serial vs parallel execution, per preset.
//!
//! Emits `BENCH_tick.json` so future PRs have a perf baseline to regress
//! against (`scripts/tier1.sh` runs this in `--quick` mode). For each
//! machine preset it boots a fully loaded kernel (one immortal dgemm-ish
//! worker per CPU), measures ticks/second in `ExecMode::Serial` and
//! `ExecMode::Parallel { threads: 0 }` on fresh kernels, and cross-checks
//! that both modes retired bit-identical instruction counts (`counter_drift`
//! must be 0). The speedup column is only meaningful on a multi-core host —
//! `host_cpus` is recorded so readers can judge (a 1-CPU CI box will
//! honestly report ≈1× or below).
//!
//! Knobs: `--quick` (300 timed ticks instead of 2000), `TICKBENCH_TICKS`.

use simcpu::machine::MachineSpec;
use simcpu::phase::Phase;
use simcpu::types::CpuMask;
use simos::kernel::{ExecMode, Kernel, KernelConfig};
use simos::task::{Op, Pid};
use std::fmt::Write as _;
use std::time::Instant;

struct ModeResult {
    ticks_per_s: f64,
    /// Total retired instructions across all tasks (drift detector).
    instructions: u64,
}

fn load_kernel(spec: MachineSpec, mode: ExecMode) -> Kernel {
    let mut k = Kernel::boot(
        spec,
        KernelConfig {
            exec_mode: mode,
            ..Default::default()
        },
    );
    let n = k.machine().n_cpus();
    for i in 0..n {
        // A blocked dgemm-like phase: heavy enough that each tick runs
        // dozens of cycle batches per CPU, like the paper's HPL runs.
        k.spawn(
            &format!("w{i}"),
            Box::new(move |_: &simos::task::ProgCtx| {
                Op::Compute(Phase::dgemm(200_000, 8 << 20, 0.35))
            }),
            CpuMask::from_cpus([i]),
            0,
        );
    }
    k
}

fn run_mode(spec: MachineSpec, mode: ExecMode, warmup: usize, ticks: usize) -> ModeResult {
    let mut k = load_kernel(spec, mode);
    for _ in 0..warmup {
        k.tick();
    }
    let start = Instant::now();
    for _ in 0..ticks {
        k.tick();
    }
    let secs = start.elapsed().as_secs_f64();
    let mut instructions = 0u64;
    let mut pid = 0;
    while let Some(s) = k.task_stats(Pid(pid)) {
        instructions += s.instructions;
        pid += 1;
    }
    ModeResult {
        ticks_per_s: ticks as f64 / secs.max(1e-9),
        instructions,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let ticks = std::env::var("TICKBENCH_TICKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 300 } else { 2000 });
    let warmup = ticks / 10;
    let host_cpus = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);

    let presets: [(&str, fn() -> MachineSpec); 4] = [
        ("raptor_lake_i7_13700", MachineSpec::raptor_lake_i7_13700),
        ("orangepi_800", MachineSpec::orangepi_800),
        ("skylake_quad", MachineSpec::skylake_quad),
        ("alder_lake_mobile", MachineSpec::alder_lake_mobile),
    ];

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"ticks\": {ticks},");
    let _ = writeln!(json, "  \"presets\": {{");

    println!("tickbench: {ticks} timed ticks/preset, host_cpus={host_cpus}");
    for (i, (name, spec)) in presets.iter().enumerate() {
        let serial = run_mode(spec(), ExecMode::Serial, warmup, ticks);
        let parallel = run_mode(spec(), ExecMode::Parallel { threads: 0 }, warmup, ticks);
        let speedup = parallel.ticks_per_s / serial.ticks_per_s;
        let drift = serial.instructions.abs_diff(parallel.instructions);
        println!(
            "  {name:<22} serial {:>9.1} t/s   parallel {:>9.1} t/s   speedup {speedup:>5.2}x   drift {drift}",
            serial.ticks_per_s, parallel.ticks_per_s
        );
        assert_eq!(drift, 0, "{name}: parallel mode drifted from serial");
        let _ = writeln!(json, "    \"{name}\": {{");
        let _ = writeln!(
            json,
            "      \"serial_ticks_per_s\": {:.2},",
            serial.ticks_per_s
        );
        let _ = writeln!(
            json,
            "      \"parallel_ticks_per_s\": {:.2},",
            parallel.ticks_per_s
        );
        let _ = writeln!(json, "      \"speedup\": {speedup:.3},");
        let _ = writeln!(json, "      \"counter_drift\": {drift}");
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < presets.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    std::fs::write("BENCH_tick.json", &json).expect("write BENCH_tick.json");
    println!("wrote BENCH_tick.json");
}
