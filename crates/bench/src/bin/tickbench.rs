//! Tick-throughput benchmark: serial vs parallel vs single-tick, per preset.
//!
//! Emits `BENCH_tick.json` so future PRs have a perf baseline to regress
//! against (`scripts/tier1.sh` runs this in `--quick` mode). For each
//! machine preset it boots a fully loaded kernel (one immortal dgemm-ish
//! worker per CPU, phases long enough to span many ticks like the paper's
//! HPL runs) and measures ticks/second through the production pump —
//! `tick_batch` with the default `MacroTicks::Auto` coalescing — in
//! `ExecMode::Serial` and `ExecMode::Parallel { threads: 0 }`, plus a
//! `MacroTicks::Off` single-tick baseline. Cross-checks: serial, parallel
//! and single-tick runs must all retire bit-identical instruction counts
//! (`counter_drift` and `macro_counter_drift` must be 0). The exec-plan
//! cache hit rate and macro-tick coverage (replayed/total in the timed
//! window) are reported per preset. The speedup column is only meaningful
//! on a multi-core host — `host_cpus` is recorded so readers can judge (a
//! 1-CPU CI box will honestly report ≈1× or below). The warmup rides out
//! the DVFS slew ramp (~143 ticks), which is correctly non-coalescible.
//!
//! Knobs: `--quick` (300 timed ticks instead of 2000), `TICKBENCH_TICKS`.
//!
//! `--trace-smoke` runs the observability acceptance check instead of the
//! benchmark: a 400-tick raptor run with the flight recorder on, a full
//! fault plan and a live PAPI eventset, exported as Chrome trace-event
//! JSON and validated with `jsonw::validate` (per-CPU tracks, fault and
//! macro-tick span events present).

use metricsd::wire::{Request, Response};
use metricsd::{Daemon, DaemonConfig, MetricsClient};
use papi::{Attach, Papi, Preset};
use simcpu::events::ArchEvent;
use simcpu::machine::MachineSpec;
use simcpu::phase::Phase;
use simcpu::types::{CpuId, CpuMask};
use simos::faults::{FaultKind, FaultPlan, TransientErrno};
use simos::kernel::{ExecMode, Kernel, KernelConfig, MacroTicks};
use simos::task::{Op, Pid, ScriptedProgram};
use simtrace::{EventKind, TraceConfig};
use std::time::Instant;

struct ModeResult {
    ticks_per_s: f64,
    /// Total retired instructions across all tasks (drift detector).
    instructions: u64,
    /// Exec-plan cache hit rate over the whole run, 0.0 if never probed.
    plan_hit_rate: f64,
    /// Replayed / total ticks in the timed window.
    coverage: f64,
}

fn load_kernel(spec: MachineSpec, cfg: KernelConfig) -> Kernel {
    let mut k = Kernel::boot(spec, cfg);
    let n = k.machine().n_cpus();
    for i in 0..n {
        // A blocked dgemm-like phase, long enough to outlive the run: each
        // tick consumes its full cycle budget against one phase, like one
        // slice of an HPL factorization.
        k.spawn(
            &format!("w{i}"),
            Box::new(move |_: &simos::task::ProgCtx| {
                Op::Compute(Phase::dgemm(1 << 44, 8 << 20, 0.35))
            }),
            CpuMask::from_cpus([i]),
            0,
        );
    }
    k
}

fn total_instructions(k: &Kernel) -> u64 {
    let mut instructions = 0u64;
    let mut pid = 0;
    while let Some(s) = k.task_stats(Pid(pid)) {
        instructions += s.instructions;
        pid += 1;
    }
    instructions
}

fn run_mode(spec: MachineSpec, cfg: KernelConfig, warmup: usize, ticks: usize) -> ModeResult {
    let mut k = load_kernel(spec, cfg);
    // Per-tick warmup past the DVFS slew ramp so the timed window measures
    // the steady state; `tick()` never coalesces.
    for _ in 0..warmup + 200 {
        k.tick();
    }
    let (replayed_before, _) = k.macro_stats();
    let start = Instant::now();
    k.tick_batch(ticks as u64);
    let secs = start.elapsed().as_secs_f64();
    let (replayed_after, _) = k.macro_stats();
    let (hits, misses) = k.plan_cache_stats();
    ModeResult {
        ticks_per_s: ticks as f64 / secs.max(1e-9),
        instructions: total_instructions(&k),
        plan_hit_rate: if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        },
        coverage: (replayed_after - replayed_before) as f64 / ticks as f64,
    }
}

/// Every fault kind, timed inside a 400-tick (400 ms) run, on CPUs every
/// preset has. The reversible ones (offline, watchdog) release mid-run so
/// `fault_undo` events land in the recorder too.
fn smoke_fault_plan() -> FaultPlan {
    FaultPlan::new(0x0b5e_7ab1e)
        .at(
            10_000_000,
            FaultKind::CounterWrap {
                headroom: 5_000_000,
            },
        )
        .at(
            50_000_000,
            FaultKind::CpuOffline {
                cpu: CpuId(1),
                down_ns: Some(80_000_000),
            },
        )
        .at(
            70_000_000,
            FaultKind::NmiWatchdog {
                steal: ArchEvent::Instructions,
                hold_ns: Some(60_000_000),
            },
        )
        .at(
            120_000_000,
            FaultKind::TransientOpen {
                errno: TransientErrno::Ebusy,
                count: 1,
            },
        )
        .at(
            120_000_000,
            FaultKind::TransientRead {
                errno: TransientErrno::Eintr,
                count: 2,
            },
        )
        .at(
            160_000_000,
            FaultKind::RaplWrapBurst {
                wraps: 1,
                extra_uj: 10_000,
            },
        )
        .at(180_000_000, FaultKind::SysfsFlaky { dur_ns: 20_000_000 })
}

/// The trace acceptance run: record everything, export, validate.
fn trace_smoke() {
    let kernel = Kernel::boot_handle(
        MachineSpec::raptor_lake_i7_13700(),
        KernelConfig {
            exec_mode: ExecMode::Serial,
            macro_ticks: MacroTicks::Auto,
            seed: 0x5eed_cafe,
            trace: TraceConfig::enabled_with_cap(1 << 16),
            ..Default::default()
        },
    );
    let n = {
        let mut k = kernel.lock();
        let n = k.machine().n_cpus();
        // Immortal pinned workers make the tail of the run quiescent
        // (macro-span admits + replays); a few short free tasks churn the
        // scheduler early (migrations, plan misses).
        for i in 0..n {
            k.spawn(
                &format!("w{i}"),
                Box::new(move |_: &simos::task::ProgCtx| {
                    Op::Compute(Phase::dgemm(1 << 44, 8 << 20, 0.35))
                }),
                CpuMask::from_cpus([i]),
                0,
            );
        }
        for j in 0..3u64 {
            k.spawn(
                &format!("free{j}"),
                Box::new(ScriptedProgram::new([
                    Op::Compute(Phase::scalar(5_000_000 + j * 700_000)),
                    Op::Compute(Phase::stream(3_000_000, 48 << 20)),
                    Op::Exit,
                ])),
                CpuMask::first_n(n),
                0,
            );
        }
        k.install_faults(&smoke_fault_plan());
        n
    };

    // A live PAPI eventset so the papi track records start/read/stop,
    // including degraded-quality reads while the watchdog holds a counter.
    let mut papi = Papi::init(kernel.clone()).expect("papi init");
    let es = papi.create_eventset();
    papi.attach(es, Attach::Task(Pid(0))).unwrap();
    papi.add_preset(es, Preset::TotIns).unwrap();
    papi.start(es).unwrap();
    for _ in 0..4 {
        kernel.lock().tick_batch(100);
        papi.read_with_quality(es).unwrap();
    }
    papi.stop(es).unwrap();

    let mut tracks = kernel.lock().trace_tracks();
    tracks.push(papi.trace_track());
    // Arm the post-mortem dump so a failed assert below prints the tail
    // of every stream instead of just the panic message.
    simtrace::postmortem::stash(simtrace::text_dump(&tracks, 48));

    let json = simtrace::chrome_trace_json(&tracks);
    assert!(
        jsonw::validate(&json),
        "chrome trace JSON failed strict validation"
    );
    for i in 0..n {
        assert!(
            json.contains(&format!("\"cpu{i}\"")),
            "missing per-CPU track cpu{i}"
        );
    }

    let mut kinds = std::collections::BTreeSet::new();
    for t in &tracks {
        for e in &t.events {
            kinds.insert(e.kind.name());
        }
    }
    for required in [
        EventKind::TickBegin,
        EventKind::TickEnd,
        EventKind::MacroSpanAdmit,
        EventKind::MacroSpanReject,
        EventKind::MacroReplay,
        EventKind::PlanHit,
        EventKind::DvfsTransition,
        EventKind::FaultCpuOffline,
        EventKind::FaultNmiWatchdog,
        EventKind::FaultTransientOpen,
        EventKind::FaultTransientRead,
        EventKind::FaultCounterWrap,
        EventKind::FaultRaplWrapBurst,
        EventKind::FaultSysfsFlaky,
        EventKind::FaultUndo,
        EventKind::PapiStart,
        EventKind::PapiRead,
        EventKind::PapiStop,
    ] {
        assert!(
            kinds.contains(required.name()),
            "trace smoke missing event kind {:?}; recorded: {kinds:?}",
            required.name()
        );
    }
    println!(
        "trace smoke: OK — {} tracks, {} distinct event kinds, {} bytes of valid chrome JSON",
        tracks.len(),
        kinds.len(),
        json.len()
    );
    if let Ok(path) = std::env::var("TICKBENCH_TRACE_OUT") {
        std::fs::write(&path, &json).expect("write trace JSON");
        println!("wrote {path}");
    }
    daemon_span_smoke();
}

/// The causal-tracing half of the smoke: an in-process metricsd daemon
/// with a traced client, every RPC sampled, exported to Perfetto JSON.
/// Asserts the export carries linked span slices on both sides of the
/// wire AND flow arrows (`"ph":"s"` / `"ph":"f"`) stitching them into
/// one request-scoped lane.
fn daemon_span_smoke() {
    let trace_cfg = TraceConfig::enabled_with_cap(1 << 14);
    let kernel = Kernel::boot_handle(
        MachineSpec::skylake_quad(),
        KernelConfig {
            seed: 0x5eed_cafe,
            trace: trace_cfg.clone(),
            ..Default::default()
        },
    );
    kernel.lock().spawn(
        "w0",
        Box::new(ScriptedProgram::new([
            Op::Compute(Phase::scalar(u64::MAX / 4)),
            Op::Exit,
        ])),
        CpuMask::from_cpus([0]),
        0,
    );
    let mut daemon = Daemon::new(kernel, DaemonConfig::default());
    let connector = daemon.connector();
    let mut c = MetricsClient::new(connector.connect());
    c.enable_tracing(&trace_cfg, 1); // sample every RPC

    c.post(&Request::Hello {
        proto: metricsd::PROTO_VERSION,
    })
    .expect("post hello");
    daemon.pump();
    while let Ok(Some(_)) = c.try_take() {}
    c.post(&Request::Subscribe {
        cpu_mask: u64::MAX,
        metrics: 0xff,
    })
    .expect("post subscribe");
    daemon.pump();
    let mut sub_id = None;
    while let Ok(Some(resp)) = c.try_take() {
        if let Response::Subscribed { sub_id: s, .. } = resp {
            sub_id = Some(s);
        }
    }
    let sub_id = sub_id.expect("subscribed");
    for _ in 0..6 {
        let trace_id = c
            .post_traced(&Request::Read {
                sub_id,
                submit_ns: 0,
            })
            .expect("post read");
        assert_ne!(trace_id, 0, "every RPC is sampled at sample_every=1");
        daemon.pump();
        while let Ok(Some(_)) = c.try_take() {}
    }

    let mut tracks = daemon.trace_tracks();
    tracks.push(c.trace_track());
    simtrace::postmortem::stash(simtrace::text_dump(&tracks, 48));
    let mut begins = 0usize;
    let mut ends = 0usize;
    for t in &tracks {
        for e in &t.events {
            match e.kind {
                EventKind::SpanBegin => begins += 1,
                EventKind::SpanEnd => ends += 1,
                _ => {}
            }
        }
    }
    assert!(begins >= 6 && ends >= 6, "spans on both ends of the wire");
    let json = simtrace::chrome_trace_json(&tracks);
    assert!(jsonw::validate(&json), "daemon span smoke: invalid JSON");
    assert!(json.contains("\"ph\":\"s\""), "missing flow start arrows");
    assert!(json.contains("\"ph\":\"f\""), "missing flow finish arrows");
    assert!(json.contains("rpc:client"), "missing client span slices");
    assert!(json.contains("rpc:shard"), "missing shard span slices");
    println!(
        "daemon span smoke: OK — {begins} span begins / {ends} ends, flow-linked, {} bytes",
        json.len()
    );
}

fn main() {
    simtrace::postmortem::install();
    if std::env::args().any(|a| a == "--trace-smoke") {
        trace_smoke();
        return;
    }
    let quick = std::env::args().any(|a| a == "--quick");
    let ticks = std::env::var("TICKBENCH_TICKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 300 } else { 2000 });
    let warmup = ticks / 10;
    let host_cpus = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);

    type PresetRow = (&'static str, fn() -> MachineSpec);
    let presets: [PresetRow; 4] = [
        ("raptor_lake_i7_13700", MachineSpec::raptor_lake_i7_13700),
        ("orangepi_800", MachineSpec::orangepi_800),
        ("skylake_quad", MachineSpec::skylake_quad),
        ("alder_lake_mobile", MachineSpec::alder_lake_mobile),
    ];

    let mut w = jsonw::JsonWriter::new();
    w.begin_obj();
    w.field_u64("host_cpus", host_cpus as u64);
    w.field_bool("quick", quick);
    w.field_u64("ticks", ticks as u64);
    w.key("presets");
    w.begin_obj();

    println!("tickbench: {ticks} timed ticks/preset, host_cpus={host_cpus}");
    for (name, spec) in presets.iter() {
        let cfg = |mode, macro_ticks| KernelConfig {
            exec_mode: mode,
            macro_ticks,
            ..Default::default()
        };
        let serial = run_mode(
            spec(),
            cfg(ExecMode::Serial, MacroTicks::Auto),
            warmup,
            ticks,
        );
        let parallel = run_mode(
            spec(),
            cfg(ExecMode::Parallel { threads: 0 }, MacroTicks::Auto),
            warmup,
            ticks,
        );
        let single = run_mode(
            spec(),
            cfg(ExecMode::Serial, MacroTicks::Off),
            warmup,
            ticks,
        );
        let speedup = parallel.ticks_per_s / serial.ticks_per_s;
        let drift = serial.instructions.abs_diff(parallel.instructions);
        let macro_speedup = serial.ticks_per_s / single.ticks_per_s;
        let macro_drift = serial.instructions.abs_diff(single.instructions);
        println!(
            "  {name:<22} serial {:>10.1} t/s   parallel {:>10.1} t/s   speedup {speedup:>5.2}x   drift {drift}",
            serial.ticks_per_s, parallel.ticks_per_s
        );
        println!(
            "  {:<22} 1-tick {:>10.1} t/s   macro speedup {macro_speedup:>6.2}x   drift {macro_drift}   coverage {:.1}%   plan hits {:.1}%",
            "",
            single.ticks_per_s,
            100.0 * serial.coverage,
            100.0 * serial.plan_hit_rate
        );
        assert_eq!(drift, 0, "{name}: parallel mode drifted from serial");
        assert_eq!(
            macro_drift, 0,
            "{name}: macro-tick run drifted from single-tick run"
        );
        w.key(name);
        w.begin_obj();
        w.field_f64("serial_ticks_per_s", round2(serial.ticks_per_s));
        w.field_f64("parallel_ticks_per_s", round2(parallel.ticks_per_s));
        w.field_f64("speedup", round3(speedup));
        w.field_u64("counter_drift", drift);
        w.field_f64("single_tick_ticks_per_s", round2(single.ticks_per_s));
        w.field_f64("macro_speedup", round3(macro_speedup));
        w.field_f64("macro_coverage", round4(serial.coverage));
        w.field_u64("macro_counter_drift", macro_drift);
        w.field_f64("plan_hit_rate", round4(serial.plan_hit_rate));
        w.end_obj();
    }
    w.end_obj();
    w.end_obj();
    let json = w.finish();
    assert!(jsonw::validate(&json), "BENCH_tick.json emitter bug");

    std::fs::write("BENCH_tick.json", &json).expect("write BENCH_tick.json");
    println!("wrote BENCH_tick.json");
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

fn round4(v: f64) -> f64 {
    (v * 10000.0).round() / 10000.0
}
