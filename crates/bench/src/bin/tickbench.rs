//! Tick-throughput benchmark: serial vs parallel vs single-tick, per preset.
//!
//! Emits `BENCH_tick.json` so future PRs have a perf baseline to regress
//! against (`scripts/tier1.sh` runs this in `--quick` mode). For each
//! machine preset it boots a fully loaded kernel (one immortal dgemm-ish
//! worker per CPU, phases long enough to span many ticks like the paper's
//! HPL runs) and measures ticks/second through the production pump —
//! `tick_batch` with the default `MacroTicks::Auto` coalescing — in
//! `ExecMode::Serial` and `ExecMode::Parallel { threads: 0 }`, plus a
//! `MacroTicks::Off` single-tick baseline. Cross-checks: serial, parallel
//! and single-tick runs must all retire bit-identical instruction counts
//! (`counter_drift` and `macro_counter_drift` must be 0). The exec-plan
//! cache hit rate and macro-tick coverage (replayed/total in the timed
//! window) are reported per preset. The speedup column is only meaningful
//! on a multi-core host — `host_cpus` is recorded so readers can judge (a
//! 1-CPU CI box will honestly report ≈1× or below). The warmup rides out
//! the DVFS slew ramp (~143 ticks), which is correctly non-coalescible.
//!
//! Knobs: `--quick` (300 timed ticks instead of 2000), `TICKBENCH_TICKS`.

use simcpu::machine::MachineSpec;
use simcpu::phase::Phase;
use simcpu::types::CpuMask;
use simos::kernel::{ExecMode, Kernel, KernelConfig, MacroTicks};
use simos::task::{Op, Pid};
use std::fmt::Write as _;
use std::time::Instant;

struct ModeResult {
    ticks_per_s: f64,
    /// Total retired instructions across all tasks (drift detector).
    instructions: u64,
    /// Exec-plan cache hit rate over the whole run, 0.0 if never probed.
    plan_hit_rate: f64,
    /// Replayed / total ticks in the timed window.
    coverage: f64,
}

fn load_kernel(spec: MachineSpec, cfg: KernelConfig) -> Kernel {
    let mut k = Kernel::boot(spec, cfg);
    let n = k.machine().n_cpus();
    for i in 0..n {
        // A blocked dgemm-like phase, long enough to outlive the run: each
        // tick consumes its full cycle budget against one phase, like one
        // slice of an HPL factorization.
        k.spawn(
            &format!("w{i}"),
            Box::new(move |_: &simos::task::ProgCtx| {
                Op::Compute(Phase::dgemm(1 << 44, 8 << 20, 0.35))
            }),
            CpuMask::from_cpus([i]),
            0,
        );
    }
    k
}

fn total_instructions(k: &Kernel) -> u64 {
    let mut instructions = 0u64;
    let mut pid = 0;
    while let Some(s) = k.task_stats(Pid(pid)) {
        instructions += s.instructions;
        pid += 1;
    }
    instructions
}

fn run_mode(spec: MachineSpec, cfg: KernelConfig, warmup: usize, ticks: usize) -> ModeResult {
    let mut k = load_kernel(spec, cfg);
    // Per-tick warmup past the DVFS slew ramp so the timed window measures
    // the steady state; `tick()` never coalesces.
    for _ in 0..warmup + 200 {
        k.tick();
    }
    let (replayed_before, _) = k.macro_stats();
    let start = Instant::now();
    k.tick_batch(ticks as u64);
    let secs = start.elapsed().as_secs_f64();
    let (replayed_after, _) = k.macro_stats();
    let (hits, misses) = k.plan_cache_stats();
    ModeResult {
        ticks_per_s: ticks as f64 / secs.max(1e-9),
        instructions: total_instructions(&k),
        plan_hit_rate: if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        },
        coverage: (replayed_after - replayed_before) as f64 / ticks as f64,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let ticks = std::env::var("TICKBENCH_TICKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 300 } else { 2000 });
    let warmup = ticks / 10;
    let host_cpus = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);

    let presets: [(&str, fn() -> MachineSpec); 4] = [
        ("raptor_lake_i7_13700", MachineSpec::raptor_lake_i7_13700),
        ("orangepi_800", MachineSpec::orangepi_800),
        ("skylake_quad", MachineSpec::skylake_quad),
        ("alder_lake_mobile", MachineSpec::alder_lake_mobile),
    ];

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"ticks\": {ticks},");
    let _ = writeln!(json, "  \"presets\": {{");

    println!("tickbench: {ticks} timed ticks/preset, host_cpus={host_cpus}");
    for (i, (name, spec)) in presets.iter().enumerate() {
        let cfg = |mode, macro_ticks| KernelConfig {
            exec_mode: mode,
            macro_ticks,
            ..Default::default()
        };
        let serial = run_mode(spec(), cfg(ExecMode::Serial, MacroTicks::Auto), warmup, ticks);
        let parallel = run_mode(
            spec(),
            cfg(ExecMode::Parallel { threads: 0 }, MacroTicks::Auto),
            warmup,
            ticks,
        );
        let single = run_mode(spec(), cfg(ExecMode::Serial, MacroTicks::Off), warmup, ticks);
        let speedup = parallel.ticks_per_s / serial.ticks_per_s;
        let drift = serial.instructions.abs_diff(parallel.instructions);
        let macro_speedup = serial.ticks_per_s / single.ticks_per_s;
        let macro_drift = serial.instructions.abs_diff(single.instructions);
        println!(
            "  {name:<22} serial {:>10.1} t/s   parallel {:>10.1} t/s   speedup {speedup:>5.2}x   drift {drift}",
            serial.ticks_per_s, parallel.ticks_per_s
        );
        println!(
            "  {:<22} 1-tick {:>10.1} t/s   macro speedup {macro_speedup:>6.2}x   drift {macro_drift}   coverage {:.1}%   plan hits {:.1}%",
            "",
            single.ticks_per_s,
            100.0 * serial.coverage,
            100.0 * serial.plan_hit_rate
        );
        assert_eq!(drift, 0, "{name}: parallel mode drifted from serial");
        assert_eq!(
            macro_drift, 0,
            "{name}: macro-tick run drifted from single-tick run"
        );
        let _ = writeln!(json, "    \"{name}\": {{");
        let _ = writeln!(
            json,
            "      \"serial_ticks_per_s\": {:.2},",
            serial.ticks_per_s
        );
        let _ = writeln!(
            json,
            "      \"parallel_ticks_per_s\": {:.2},",
            parallel.ticks_per_s
        );
        let _ = writeln!(json, "      \"speedup\": {speedup:.3},");
        let _ = writeln!(json, "      \"counter_drift\": {drift},");
        let _ = writeln!(
            json,
            "      \"single_tick_ticks_per_s\": {:.2},",
            single.ticks_per_s
        );
        let _ = writeln!(json, "      \"macro_speedup\": {macro_speedup:.3},");
        let _ = writeln!(json, "      \"macro_coverage\": {:.4},", serial.coverage);
        let _ = writeln!(json, "      \"macro_counter_drift\": {macro_drift},");
        let _ = writeln!(
            json,
            "      \"plan_hit_rate\": {:.4}",
            serial.plan_hit_rate
        );
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < presets.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    std::fs::write("BENCH_tick.json", &json).expect("write BENCH_tick.json");
    println!("wrote BENCH_tick.json");
}
