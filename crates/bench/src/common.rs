//! Shared experiment plumbing for the table/figure regeneration binaries.

use simcpu::machine::MachineSpec;
use simcpu::types::{CoreType, CpuMask};
use simos::kernel::{ExecMode, Kernel, KernelConfig, KernelHandle};
use telemetry::{average_runs, monitored_hpl_runs, DriverConfig, MonitoredRun};
use workloads::hpl::{HplConfig, HplVariant};

/// Simulation tick for experiments: `TICK_NS` (default 200 µs).
///
/// Scaled-down HPL runs are short enough that synchronization costs are
/// quantized by the tick; 200 µs keeps that artifact small while staying
/// fast. The full-scale paper runs are insensitive to this.
pub fn tick_ns() -> u64 {
    std::env::var("TICK_NS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&t| t >= 10_000)
        .unwrap_or(200_000)
}

fn kernel_config() -> KernelConfig {
    KernelConfig {
        tick_ns: tick_ns(),
        // `SIM_EXEC_MODE=parallel[:N]` fans per-core execution out across
        // host threads; counters are bit-identical either way (DESIGN.md §7).
        exec_mode: ExecMode::from_env(),
        ..Default::default()
    }
}

/// Boot the paper's Raptor Lake desktop.
pub fn raptor_kernel() -> KernelHandle {
    Kernel::boot_handle(MachineSpec::raptor_lake_i7_13700(), kernel_config())
}

/// Boot the paper's OrangePi 800.
pub fn orangepi_kernel() -> KernelHandle {
    Kernel::boot_handle(MachineSpec::orangepi_800(), kernel_config())
}

/// The paper's three Raptor Lake core sets, all at 1 thread per core:
/// (E-only, P-only, P-and-E). The P sets use one SMT sibling per core,
/// mirroring the artifact's `--cores 0,2,4,…,14,16-23`.
pub fn raptor_core_sets() -> (CpuMask, CpuMask, CpuMask) {
    let e_only = CpuMask::parse_cpulist("16-23").unwrap();
    let p_only = CpuMask::parse_cpulist("0,2,4,6,8,10,12,14").unwrap();
    let all = CpuMask::parse_cpulist("0,2,4,6,8,10,12,14,16-23").unwrap();
    (e_only, p_only, all)
}

/// CPU masks for the core types of any machine.
pub fn type_masks(kernel: &KernelHandle) -> (CpuMask, CpuMask) {
    let k = kernel.lock();
    (
        k.machine().cpus_of_type(CoreType::Performance),
        k.machine().cpus_of_type(CoreType::Efficiency),
    )
}

/// Experiment scale: divides the paper's N to trade fidelity for speed.
/// Controlled by `HPL_SCALE` (default 8; 1 = the paper's full N=57024).
pub fn hpl_scale() -> u64 {
    std::env::var("HPL_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(8)
}

/// Runs per configuration: `N_RUNS` (default 3; the paper uses 10).
pub fn n_runs() -> u32 {
    std::env::var("N_RUNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(3)
}

/// The HPL configuration at the chosen scale.
pub fn hpl_config() -> HplConfig {
    HplConfig::scaled(hpl_scale())
}

/// One Table II cell: run a variant on a core set, averaged over runs,
/// on a fresh machine.
pub fn hpl_cell(variant: HplVariant, cpus: CpuMask, n_runs: u32) -> MonitoredRun {
    let kernel = raptor_kernel();
    let driver = DriverConfig {
        n_runs,
        ..Default::default()
    };
    let runs = monitored_hpl_runs(&kernel, &hpl_config(), variant, cpus, &driver);
    average_runs(&runs).expect("n_runs >= 1 produces at least one run")
}

/// Percent change from `a` to `b`.
pub fn pct_change(a: f64, b: f64) -> f64 {
    (b - a) / a * 100.0
}

/// Format a paper-vs-measured comparison row.
pub fn compare_row(label: &str, paper: f64, measured: f64, unit: &str) -> String {
    format!("{label:<34} paper: {paper:>10.2} {unit:<7} measured: {measured:>10.2} {unit}")
}

/// Print a section header.
pub fn header(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

/// OrangePi experiment scale: `OPI_SCALE` (default 1 = full size).
/// Unlike the desktop runs, the RK3399 experiments *need* full length:
/// thermal throttling develops on the SoC's ~66 s RC time constant.
pub fn opi_scale() -> u64 {
    std::env::var("OPI_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(1)
}

/// OrangePi HPL configuration at the chosen scale: the β approach on its
/// 4 GB of LPDDR4 (80 % fraction), like the paper's desktop methodology.
pub fn opi_hpl_config() -> HplConfig {
    let n = HplConfig::n_for_memory_fraction(4, 0.80) / opi_scale();
    HplConfig {
        n: n.max(192 * 4),
        nb: 192,
        p: 1,
        q: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_sets_match_paper_artifact() {
        let (e, p, all) = raptor_core_sets();
        assert_eq!(e.count(), 8);
        assert_eq!(p.count(), 8);
        assert_eq!(all.count(), 16);
        assert_eq!(all.to_cpulist(), "0,2,4,6,8,10,12,14,16-23");
        // One thread per P core: no SMT siblings in the set.
        for c in p.iter() {
            assert_eq!(c.0 % 2, 0, "P set uses even (first) siblings");
        }
    }

    #[test]
    fn pct_change_math() {
        assert!((pct_change(100.0, 150.0) - 50.0).abs() < 1e-9);
        assert!((pct_change(200.0, 100.0) + 50.0).abs() < 1e-9);
    }

    #[test]
    fn scales_default_sanely() {
        assert!(hpl_scale() >= 1);
        assert!(opi_scale() >= 1);
        assert!(n_runs() >= 1);
        assert!(tick_ns() >= 10_000);
        assert!(hpl_config().n >= 768);
        assert!(opi_hpl_config().n >= 768);
    }

    #[test]
    fn compare_row_formats() {
        let row = compare_row("Gflops", 457.38, 387.17, "GF");
        assert!(row.contains("457.38"));
        assert!(row.contains("387.17"));
    }
}
