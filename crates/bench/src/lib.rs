//! # bench-harness — regenerates every table and figure of the paper
//!
//! Binaries (run with `--release`):
//!
//! | binary        | paper element |
//! |---------------|---------------|
//! | `table1`      | Table I — Raptor Lake hardware configuration |
//! | `table2`      | Table II — OpenBLAS vs Intel HPL Gflops per core set |
//! | `table3`      | Table III — per-core-type LLC miss rate + instruction share |
//! | `table4`      | Table IV — OrangePi hardware configuration |
//! | `fig1`        | Fig. 1 — core-frequency traces, both HPL variants |
//! | `fig2`        | Fig. 2 — package power + temperature traces |
//! | `fig3`        | Fig. 3 — RK3399 thermal throttling traces |
//! | `fig4`        | Fig. 4 — OrangePi HPL time as cores are added |
//! | `hybrid_test` | §IV.F `papi_hybrid_100m_one_eventset` |
//! | `overhead`    | §V.5 measurement-overhead report |
//!
//! Environment knobs: `HPL_SCALE` (default 8; 1 = the paper's N=57024),
//! `N_RUNS` (default 3; paper uses 10).

pub mod common;
