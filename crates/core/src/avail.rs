//! Machine-readable availability report: the `--json` side of
//! `papi_avail`, consumed by `loadgen` and future tooling instead of
//! scraping the text tables.

use crate::{presets, Papi};
use jsonw::JsonWriter;

/// The full `papi_avail` report as one JSON document: hardware summary,
/// per-preset availability with derived-native mappings, and the
/// component registry.
pub fn avail_json(papi: &Papi) -> String {
    let hw = papi.hardware_info();
    let avail = papi.available_presets();
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.field_str("tool", "papi_avail");

    w.key("hardware");
    w.begin_obj();
    w.field_str("vendor_string", &hw.vendor_string);
    w.field_str("model_string", &hw.model_string);
    w.field_u64("ncpus", hw.ncpus as u64);
    w.field_u64("ncores", hw.ncores as u64);
    w.field_bool("heterogeneous", hw.heterogeneous);
    match hw.detection_method {
        Some(m) => w.field_str("detection_method", m.name()),
        None => w.field_null("detection_method"),
    }
    w.field_str("memory", &hw.mem_string);
    w.key("core_types");
    w.begin_arr();
    for ct in &hw.core_types {
        w.begin_obj();
        w.field_str("core_type", &format!("{}", ct.core_type));
        w.field_u64("n_cores", ct.n_cores as u64);
        w.field_u64("n_cpus", ct.n_cpus as u64);
        w.field_u64("min_khz", ct.min_khz);
        w.field_u64("max_khz", ct.max_khz);
        w.end_obj();
    }
    w.end_arr();
    w.key("cpus");
    w.begin_arr();
    for c in &hw.cpus {
        w.begin_obj();
        w.field_u64("cpu", c.cpu as u64);
        w.field_u64("core", c.core as u64);
        w.field_str("core_type", &format!("{}", c.core_type));
        w.field_u64("max_khz", c.max_khz);
        w.end_obj();
    }
    w.end_arr();
    w.end_obj();

    w.key("presets");
    w.begin_arr();
    for &p in presets::ALL_PRESETS {
        let ok = avail.contains(&p);
        w.begin_obj();
        w.field_str("name", p.papi_name());
        w.field_bool("avail", ok);
        w.key("natives");
        w.begin_arr();
        if ok {
            if let Ok(names) = papi.preset_native_names(p) {
                for n in &names {
                    w.elem_str(n);
                }
            }
        }
        w.end_arr();
        w.end_obj();
    }
    w.end_arr();

    w.key("components");
    w.begin_arr();
    for c in papi.components() {
        w.begin_obj();
        w.field_str("name", c.name);
        w.field_bool("enabled", c.enabled);
        w.field_bool("deprecated", c.deprecated);
        w.field_str("description", &c.description);
        w.end_obj();
    }
    w.end_arr();

    w.end_obj();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcpu::machine::MachineSpec;
    use simos::kernel::{Kernel, KernelConfig};

    #[test]
    fn avail_json_is_valid_and_covers_presets() {
        let kernel =
            Kernel::boot_handle(MachineSpec::raptor_lake_i7_13700(), KernelConfig::default());
        let papi = Papi::init(kernel).unwrap();
        let s = avail_json(&papi);
        assert!(jsonw::validate(&s), "invalid JSON: {s}");
        assert!(s.contains("\"heterogeneous\":true"));
        for &p in presets::ALL_PRESETS {
            assert!(s.contains(p.papi_name()), "missing {}", p.papi_name());
        }
        // Hybrid machine: PAPI_TOT_INS must be derived from > 1 native.
        assert!(s.contains("::"), "expected fully-qualified natives: {s}");
    }

    #[test]
    fn avail_json_on_homogeneous_machine() {
        let kernel = Kernel::boot_handle(MachineSpec::skylake_quad(), KernelConfig::default());
        let papi = Papi::init(kernel).unwrap();
        let s = avail_json(&papi);
        assert!(jsonw::validate(&s), "invalid JSON: {s}");
        assert!(s.contains("\"heterogeneous\":false"));
    }
}
