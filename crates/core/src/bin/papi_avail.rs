//! `papi_avail` — the classic PAPI utility: hardware summary + preset
//! availability, upgraded with the paper's heterogeneous reporting.
//!
//! Usage: `papi_avail [--json] [raptor|orangepi|skylake|dynamiq]`
//! (default raptor). `--json` emits the machine-readable report from
//! [`papi::avail::avail_json`] instead of the text tables.

use papi::{Papi, Preset};
use simcpu::machine::MachineSpec;
use simos::kernel::{Kernel, KernelConfig};

fn main() {
    let mut json = false;
    let mut name = "raptor".to_string();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--json" => json = true,
            other => name = other.to_string(),
        }
    }
    let spec = match name.as_str() {
        "raptor" => MachineSpec::raptor_lake_i7_13700(),
        "orangepi" => MachineSpec::orangepi_800(),
        "skylake" => MachineSpec::skylake_quad(),
        "dynamiq" => MachineSpec::dynamiq_tri(),
        "adl-mobile" => MachineSpec::alder_lake_mobile(),
        other => {
            eprintln!("unknown machine '{other}'");
            std::process::exit(2);
        }
    };
    let kernel = Kernel::boot_handle(spec, KernelConfig::default());
    let papi = Papi::init(kernel).expect("PAPI init");
    if json {
        println!("{}", papi::avail::avail_json(&papi));
        return;
    }
    let hw = papi.hardware_info();

    println!("Available PAPI preset and hardware information.");
    println!("--------------------------------------------------------------------------------");
    println!("Vendor string and code   : {}", hw.vendor_string);
    println!("Model string             : {}", hw.model_string);
    println!("CPUs in the system       : {}", hw.ncpus);
    println!("Cores in the system      : {}", hw.ncores);
    println!(
        "Heterogeneous            : {}{}",
        hw.heterogeneous,
        hw.detection_method
            .map(|m| format!(" (via {})", m.name()))
            .unwrap_or_default()
    );
    for ct in &hw.core_types {
        println!(
            "  {:<22} : {} cores / {} cpus @ {:.2}-{:.2} GHz",
            format!("{} cores", ct.core_type),
            ct.n_cores,
            ct.n_cpus,
            ct.min_khz as f64 / 1e6,
            ct.max_khz as f64 / 1e6
        );
    }
    println!("--------------------------------------------------------------------------------");
    println!(
        "{:<14} {:<6} {:<9} Derived natives",
        "Name", "Avail", "Derived"
    );
    let avail = papi.available_presets();
    for &p in papi::presets::ALL_PRESETS {
        let ok = avail.contains(&p);
        let natives: String = match papi.preset_native_names(p) {
            Ok(names) if ok => format!(
                "{} ({})",
                names.join(" + "),
                if names.len() > 1 {
                    "DERIVED_ADD"
                } else {
                    "direct"
                }
            ),
            _ => "-".into(),
        };
        println!(
            "{:<14} {:<6} {:<9} {}",
            p.papi_name(),
            if ok { "Yes" } else { "No" },
            if ok { "hybrid" } else { "-" },
            natives
        );
    }
    let _ = Preset::TotIns;
    println!("--------------------------------------------------------------------------------");
    println!("Components:");
    for c in papi.components() {
        println!(
            "  {:<20} enabled={:<5} deprecated={:<5} {}",
            c.name, c.enabled, c.deprecated, c.description
        );
    }
}
