//! `papi_cost` — the classic PAPI overhead-measurement utility, hybrid
//! edition: cost (in simulated syscall latency) of start/stop/read/reset
//! on EventSets spanning 1, 2 and 3 perf event groups, plus the rdpmc
//! fast path. This is §V.5's question made executable.

use papi::{Attach, Papi};
use simcpu::machine::MachineSpec;
use simcpu::phase::Phase;
use simcpu::types::CpuMask;
use simos::kernel::{Kernel, KernelConfig};
use simos::task::{Op, ScriptedProgram};

const ITERS: u32 = 1000;

fn main() {
    println!("PAPI cost utility: {ITERS} iterations per operation.\n");
    let scenarios: [(&str, &[&str]); 3] = [
        ("1 group (P-core only)", &["adl_glc::INST_RETIRED:ANY"]),
        (
            "2 groups (P + E)",
            &["adl_glc::INST_RETIRED:ANY", "adl_grt::INST_RETIRED:ANY"],
        ),
        (
            "3 groups (P + E + RAPL)",
            &[
                "adl_glc::INST_RETIRED:ANY",
                "adl_grt::INST_RETIRED:ANY",
                "rapl::RAPL_ENERGY_PKG",
            ],
        ),
    ];
    println!(
        "{:<26} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "EventSet", "start ns", "stop ns", "read ns", "reset ns", "rdpmc ns"
    );
    for (label, events) in scenarios {
        let kernel =
            Kernel::boot_handle(MachineSpec::raptor_lake_i7_13700(), KernelConfig::default());
        let pid = kernel.lock().spawn(
            "w",
            Box::new(ScriptedProgram::new([
                Op::Compute(Phase::scalar(u64::MAX / 2)),
                Op::Exit,
            ])),
            CpuMask::from_cpus([0, 16]),
            0,
        );
        let mut papi = Papi::init_with(
            kernel.clone(),
            papi::PapiConfig {
                overhead_instructions: 0,
                ..Default::default()
            },
        )
        .expect("init");
        let es = papi.create_eventset();
        papi.attach(es, Attach::Task(pid)).unwrap();
        for ev in events {
            papi.add_named(es, ev).unwrap();
        }
        // Warm open.
        papi.start(es).unwrap();
        kernel.lock().tick();
        papi.stop(es).unwrap();

        let cost = |papi: &mut Papi, f: &mut dyn FnMut(&mut Papi)| -> f64 {
            let before = papi.syscall_stats().total_latency_ns;
            for _ in 0..ITERS {
                f(papi);
            }
            (papi.syscall_stats().total_latency_ns - before) as f64 / ITERS as f64
        };
        let start_ns = cost(&mut papi, &mut |p| {
            p.start(es).unwrap();
            p.stop(es).unwrap();
        });
        papi.start(es).unwrap();
        let read_ns = cost(&mut papi, &mut |p| {
            p.read(es).unwrap();
        });
        let reset_ns = cost(&mut papi, &mut |p| {
            p.reset(es).unwrap();
        });
        let rdpmc_ns = cost(&mut papi, &mut |p| {
            p.read_fast(es, 0).unwrap();
        });
        papi.stop(es).unwrap();
        // start+stop measured together; split evenly for display.
        println!(
            "{label:<26} {:>12.0} {:>12.0} {read_ns:>12.0} {reset_ns:>12.0} {rdpmc_ns:>12.0}",
            start_ns / 2.0,
            start_ns / 2.0,
        );
    }
    println!(
        "\nEach additional PMU group costs one more ioctl per start/stop and\n\
         one more read syscall per PAPI_read; rdpmc stays flat (but covers\n\
         only hardware counters, not RAPL)."
    );
}
