//! `papi_native_avail` — list every native event of every detected PMU,
//! the hybrid way: each core-type PMU gets its own section, so the
//! asymmetries (TOPDOWN only under `adl_glc`) are visible at a glance.
//!
//! Usage: `papi_native_avail [raptor|orangepi|skylake|dynamiq]`.

use papi::Papi;
use simcpu::machine::MachineSpec;
use simos::kernel::{Kernel, KernelConfig};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "raptor".into());
    let spec = match name.as_str() {
        "raptor" => MachineSpec::raptor_lake_i7_13700(),
        "orangepi" => MachineSpec::orangepi_800(),
        "skylake" => MachineSpec::skylake_quad(),
        "dynamiq" => MachineSpec::dynamiq_tri(),
        "adl-mobile" => MachineSpec::alder_lake_mobile(),
        other => {
            eprintln!("unknown machine '{other}'");
            std::process::exit(2);
        }
    };
    let kernel = Kernel::boot_handle(spec, KernelConfig::default());
    let papi = Papi::init(kernel).expect("PAPI init");

    println!("Available native events and hardware information.");
    for pmu in papi.pfm().pmus() {
        println!(
            "\n=== PMU: {} (kernel: {}, type {}, cpus {}{}) ===",
            pmu.pfm_name,
            pmu.kernel_name,
            pmu.pmu_id,
            pmu.cpus.to_cpulist(),
            if pmu.is_default { ", default" } else { "" }
        );
        match papi.pfm().list_events(&pmu.pfm_name) {
            Ok(events) => {
                for e in events {
                    println!("  {e}");
                }
            }
            Err(e) => println!("  <no table: {e}>"),
        }
    }
}
