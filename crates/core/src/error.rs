//! PAPI error codes.
//!
//! Modeled on the C library's `PAPI_E*` returns, carried as a Rust enum
//! with context. The historically interesting variant is
//! [`PapiError::MultiPmuUnsupported`]: the error (the C code could also
//! outright crash) that original PAPI produced when a heterogeneous
//! machine handed it more than one core PMU — the starting point of the
//! paper's §IV.D/§IV.E work. It is only produced in
//! [`crate::PapiMode::Legacy`].

use pfmlib::PfmError;
use simos::perf::PerfError;

/// Errors returned by the PAPI layer.
#[derive(Debug, Clone, PartialEq)]
pub enum PapiError {
    /// Event name did not resolve (PAPI_ENOEVNT).
    NoSuchEvent(String),
    /// Preset not defined / not available on this machine (PAPI_ENOEVNT).
    PresetUnavailable(String),
    /// No EventSet with that id (PAPI_ENOEVST).
    NoSuchEventSet,
    /// Operation invalid in the EventSet's current state (PAPI_EISRUN /
    /// PAPI_ENOTRUN).
    State(&'static str),
    /// Legacy PAPI cannot mix PMU types in one EventSet (PAPI_ECNFLCT).
    MultiPmuUnsupported { existing: String, adding: String },
    /// Legacy component separation violated (e.g. RAPL event in a CPU
    /// EventSet) (PAPI_ECNFLCT).
    ComponentConflict {
        eventset_component: &'static str,
        event_component: &'static str,
    },
    /// Another EventSet of the same component is already running
    /// (PAPI_EISRUN) — the restriction that defeats the "just use two
    /// EventSets" workaround the paper discusses.
    ComponentBusy(&'static str),
    /// The EventSet has no attached task/cpu target (PAPI_EINVAL).
    NotAttached,
    /// Multiplexing must be requested before the first start (PAPI_EINVAL).
    MultiplexTooLate,
    /// Underlying perf_event failure.
    Perf(PerfError),
    /// Underlying libpfm failure.
    Pfm(PfmError),
}

impl std::fmt::Display for PapiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PapiError::NoSuchEvent(e) => write!(f, "PAPI_ENOEVNT: no such event '{e}'"),
            PapiError::PresetUnavailable(p) => {
                write!(f, "PAPI_ENOEVNT: preset '{p}' unavailable on this machine")
            }
            PapiError::NoSuchEventSet => write!(f, "PAPI_ENOEVST: no such EventSet"),
            PapiError::State(s) => write!(f, "PAPI_EISRUN/ENOTRUN: {s}"),
            PapiError::MultiPmuUnsupported { existing, adding } => write!(
                f,
                "PAPI_ECNFLCT: legacy PAPI cannot mix PMUs in an EventSet \
                 (have '{existing}', adding '{adding}')"
            ),
            PapiError::ComponentConflict {
                eventset_component,
                event_component,
            } => write!(
                f,
                "PAPI_ECNFLCT: event belongs to component '{event_component}' but \
                 EventSet is bound to '{eventset_component}'"
            ),
            PapiError::ComponentBusy(c) => {
                write!(
                    f,
                    "PAPI_EISRUN: another EventSet of component '{c}' is running"
                )
            }
            PapiError::NotAttached => write!(f, "PAPI_EINVAL: EventSet not attached"),
            PapiError::MultiplexTooLate => {
                write!(f, "PAPI_EINVAL: multiplex must be set before first start")
            }
            PapiError::Perf(e) => write!(f, "perf_event: {e}"),
            PapiError::Pfm(e) => write!(f, "libpfm: {e}"),
        }
    }
}

impl PapiError {
    /// True for errors a caller should retry (EINTR/EBUSY from the
    /// kernel). The PAPI layer itself retries these with a bounded
    /// backoff before surfacing them; see the fault-model notes in
    /// DESIGN.md.
    pub fn is_transient(&self) -> bool {
        matches!(self, PapiError::Perf(e) if e.is_transient())
    }
}

impl std::error::Error for PapiError {}

impl From<PerfError> for PapiError {
    fn from(e: PerfError) -> Self {
        PapiError::Perf(e)
    }
}

impl From<PfmError> for PapiError {
    fn from(e: PfmError) -> Self {
        PapiError::Pfm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_papi_codes() {
        let e = PapiError::MultiPmuUnsupported {
            existing: "adl_glc".into(),
            adding: "adl_grt".into(),
        };
        let s = e.to_string();
        assert!(s.contains("ECNFLCT"));
        assert!(s.contains("adl_glc"));
        assert!(PapiError::NoSuchEventSet.to_string().contains("ENOEVST"));
    }

    #[test]
    fn conversions() {
        let p: PapiError = PerfError::BadFd.into();
        assert_eq!(p, PapiError::Perf(PerfError::BadFd));
        let q: PapiError = PfmError::NoDefaultPmu.into();
        assert!(matches!(q, PapiError::Pfm(_)));
    }

    #[test]
    fn transient_classification() {
        assert!(PapiError::Perf(PerfError::TransientEintr).is_transient());
        assert!(PapiError::Perf(PerfError::TransientEbusy).is_transient());
        assert!(!PapiError::Perf(PerfError::BadFd).is_transient());
        assert!(!PapiError::NoSuchEventSet.is_transient());
    }
}
