//! EventSets: PAPI's abstraction for a set of simultaneously-measured
//! events — here with the paper's §IV.E redesign.
//!
//! The old perf_event component assumed one perf PMU per EventSet, because
//! one EventSet mapped to one perf event *group* and groups cannot span
//! PMUs. The redesign tracks the PMU type of every added event and splits
//! the EventSet into **multiple perf event groups, one per PMU type**;
//! start/stop/read/reset then iterate over all groups (the extra layer of
//! indirection §V.5 worries about, measurable in the benches).
//!
//! In [`crate::PapiMode::Legacy`] the old behaviour is preserved: adding an
//! event from a second PMU fails with `PAPI_ECNFLCT`
//! ([`PapiError::MultiPmuUnsupported`]), and RAPL/uncore events must live
//! in their own component EventSets.

use crate::error::PapiError;
use simcpu::types::CpuId;
use simos::perf::{EventFd, PerfAttr, PmuKind, Target};
use simos::task::Pid;

/// Handle to an EventSet within a [`crate::Papi`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventSetId(pub usize);

/// EventSet lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EsState {
    Stopped,
    Running,
}

/// What the EventSet is attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attach {
    /// Follow a task (PAPI's default is the calling thread; the simulation
    /// requires an explicit pid).
    Task(Pid),
    /// Count system-wide on one CPU.
    Cpu(CpuId),
}

/// Legacy component separation (pre-paper PAPI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Component {
    PerfEvent,
    Rapl,
    Uncore,
}

impl Component {
    pub fn name(self) -> &'static str {
        match self {
            Component::PerfEvent => "perf_event",
            Component::Rapl => "rapl",
            Component::Uncore => "perf_event_uncore",
        }
    }

    /// Which legacy component an event of the given PMU kind belongs to.
    pub fn for_pmu_kind(kind: PmuKind) -> Component {
        match kind {
            PmuKind::Rapl => Component::Rapl,
            PmuKind::Uncore => Component::Uncore,
            _ => Component::PerfEvent,
        }
    }
}

/// One native event inside an EventSet.
#[derive(Debug, Clone)]
pub struct NativeRef {
    /// Fully-qualified resolved name.
    pub fq_name: String,
    pub attr: PerfAttr,
    pub pmu_kind: PmuKind,
    /// CPUs the PMU covers (for choosing system-scope targets).
    pub pmu_first_cpu: CpuId,
    /// The open fd, once the set has been started at least once.
    pub fd: Option<EventFd>,
}

/// A user-visible entry: either a native event or a derived preset.
#[derive(Debug, Clone)]
pub struct Entry {
    /// The name the user added ("PAPI_TOT_INS", "adl_glc::…").
    pub label: String,
    /// Indices into `natives`; presets on hybrid machines reference one
    /// native per core-type PMU and report the *sum* (derived-add).
    pub native_indices: Vec<usize>,
}

/// The EventSet.
#[derive(Debug)]
pub struct EventSet {
    pub id: EventSetId,
    pub state: EsState,
    pub attach: Option<Attach>,
    pub natives: Vec<NativeRef>,
    pub entries: Vec<Entry>,
    pub multiplex: bool,
    /// Group leader fds, populated at first start.
    pub group_leaders: Vec<EventFd>,
    /// Legacy component binding (None until the first event is added).
    pub component: Option<Component>,
}

impl EventSet {
    pub fn new(id: EventSetId) -> EventSet {
        EventSet {
            id,
            state: EsState::Stopped,
            attach: None,
            natives: Vec::new(),
            entries: Vec::new(),
            multiplex: false,
            group_leaders: Vec::new(),
            component: None,
        }
    }

    /// Whether the fds have been created.
    pub fn opened(&self) -> bool {
        !self.group_leaders.is_empty() || self.natives.iter().any(|n| n.fd.is_some())
    }

    /// Distinct PMU types present, in first-seen order.
    pub fn pmu_types(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for n in &self.natives {
            if !out.contains(&n.attr.pmu_type) {
                out.push(n.attr.pmu_type);
            }
        }
        out
    }

    /// The perf target for one native, honouring system-scope PMUs.
    pub fn target_for(&self, native: &NativeRef) -> Result<Target, PapiError> {
        let attach = self.attach.ok_or(PapiError::NotAttached)?;
        Ok(match (native.pmu_kind, attach) {
            // RAPL/uncore are per-package: always cpu scope.
            (PmuKind::Rapl | PmuKind::Uncore, _) => Target::Cpu(native.pmu_first_cpu),
            (_, Attach::Task(pid)) => Target::Thread(pid),
            (_, Attach::Cpu(cpu)) => Target::Cpu(cpu),
        })
    }
}

/// Plan perf event groups: indices of `pmu_types` (one per native), grouped
/// per PMU type — or one group per native under multiplexing (PAPI's
/// multiplex mode makes every event its own group leader, as the paper
/// notes).
pub fn plan_groups(native_pmu_types: &[u32], multiplex: bool) -> Vec<Vec<usize>> {
    if multiplex {
        return (0..native_pmu_types.len()).map(|i| vec![i]).collect();
    }
    let mut order: Vec<u32> = Vec::new();
    for &t in native_pmu_types {
        if !order.contains(&t) {
            order.push(t);
        }
    }
    order
        .into_iter()
        .map(|t| {
            native_pmu_types
                .iter()
                .enumerate()
                .filter(|(_, &pt)| pt == t)
                .map(|(i, _)| i)
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    mod props {
        use super::super::plan_groups;
        use proptest::prelude::*;

        proptest! {
            /// plan_groups is a partition: every native index appears in
            /// exactly one group, groups are PMU-homogeneous, and the
            /// leader (first member) owns the group's PMU type.
            #[test]
            fn plan_is_a_homogeneous_partition(
                types in proptest::collection::vec(0u32..6, 0..40),
                multiplex in proptest::bool::ANY,
            ) {
                let plan = plan_groups(&types, multiplex);
                let mut seen = vec![false; types.len()];
                for group in &plan {
                    prop_assert!(!group.is_empty());
                    let pmu = types[group[0]];
                    for &i in group {
                        prop_assert!(!seen[i], "index {i} in two groups");
                        seen[i] = true;
                        prop_assert_eq!(types[i], pmu, "mixed-PMU group");
                    }
                }
                prop_assert!(seen.iter().all(|&s| s), "index dropped");
                if multiplex {
                    prop_assert!(plan.iter().all(|g| g.len() == 1));
                }
            }
        }
    }

    #[test]
    fn plan_groups_splits_by_pmu() {
        // The paper's Raptor Lake example: P, P, E, RAPL → 3 groups.
        let groups = plan_groups(&[4, 4, 5, 6], false);
        assert_eq!(groups, vec![vec![0, 1], vec![2], vec![3]]);
    }

    #[test]
    fn plan_groups_single_pmu_one_group() {
        assert_eq!(plan_groups(&[4, 4, 4], false), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn plan_groups_multiplex_every_event_alone() {
        assert_eq!(
            plan_groups(&[4, 4, 5], true),
            vec![vec![0], vec![1], vec![2]]
        );
    }

    #[test]
    fn plan_groups_empty() {
        assert!(plan_groups(&[], false).is_empty());
    }

    #[test]
    fn component_mapping() {
        assert_eq!(
            Component::for_pmu_kind(PmuKind::CoreHw),
            Component::PerfEvent
        );
        assert_eq!(Component::for_pmu_kind(PmuKind::Rapl), Component::Rapl);
        assert_eq!(Component::for_pmu_kind(PmuKind::Uncore), Component::Uncore);
        assert_eq!(Component::Uncore.name(), "perf_event_uncore");
    }

    #[test]
    fn pmu_types_first_seen_order() {
        let mut es = EventSet::new(EventSetId(0));
        for t in [7u32, 4, 7, 5] {
            es.natives.push(NativeRef {
                fq_name: format!("ev{t}"),
                attr: PerfAttr::counting(t, simcpu::events::ArchEvent::Instructions),
                pmu_kind: PmuKind::CoreHw,
                pmu_first_cpu: CpuId(0),
                fd: None,
            });
        }
        assert_eq!(es.pmu_types(), vec![7, 4, 5]);
    }

    #[test]
    fn target_requires_attach() {
        let es = EventSet::new(EventSetId(0));
        let n = NativeRef {
            fq_name: "x".into(),
            attr: PerfAttr::counting(4, simcpu::events::ArchEvent::Instructions),
            pmu_kind: PmuKind::CoreHw,
            pmu_first_cpu: CpuId(0),
            fd: None,
        };
        assert_eq!(es.target_for(&n), Err(PapiError::NotAttached));
    }

    #[test]
    fn rapl_native_targets_cpu_even_when_task_attached() {
        let mut es = EventSet::new(EventSetId(0));
        es.attach = Some(Attach::Task(Pid(3)));
        let n = NativeRef {
            fq_name: "rapl::RAPL_ENERGY_PKG".into(),
            attr: PerfAttr::counting(8, simcpu::events::ArchEvent::Instructions),
            pmu_kind: PmuKind::Rapl,
            pmu_first_cpu: CpuId(0),
            fd: None,
        };
        assert_eq!(es.target_for(&n), Ok(Target::Cpu(CpuId(0))));
        let hw = NativeRef {
            pmu_kind: PmuKind::CoreHw,
            ..n
        };
        assert_eq!(es.target_for(&hw), Ok(Target::Thread(Pid(3))));
    }
}
