//! The high-level API (`PAPI_hl_region_begin` / `PAPI_hl_region_end`).
//!
//! Real PAPI's high-level interface lets applications mark named regions
//! and get a per-region report without managing EventSets; the event list
//! comes from the `PAPI_EVENTS` environment variable. On hybrid machines
//! this inherits everything the low-level rework provides: the regions are
//! measured by one multi-PMU EventSet and presets are derived-add across
//! core types, so the same instrumented source works unchanged on
//! homogeneous and heterogeneous machines — the paper's end goal.

use crate::{Attach, EventSetId, Papi, PapiError, Preset};
use simos::task::Pid;
use std::collections::BTreeMap;

/// Accumulated measurements for one named region.
#[derive(Debug, Clone, Default)]
pub struct RegionTotals {
    /// Times the region executed.
    pub count: u64,
    /// Summed values, parallel to the event labels.
    pub totals: Vec<u64>,
}

/// The high-level measurement context for one task.
pub struct HighLevel {
    papi: Papi,
    es: EventSetId,
    labels: Vec<String>,
    regions: BTreeMap<String, RegionTotals>,
    active: Option<String>,
}

impl HighLevel {
    /// Create a context measuring `events` (preset `PAPI_*` names or
    /// native names — the `PAPI_EVENTS` syntax) on task `pid`.
    pub fn new(
        kernel: simos::kernel::KernelHandle,
        pid: Pid,
        events: &[&str],
    ) -> Result<HighLevel, PapiError> {
        let mut papi = Papi::init(kernel)?;
        let es = papi.create_eventset();
        papi.attach(es, Attach::Task(pid))?;
        for ev in events {
            if let Some(p) = Preset::from_papi_name(ev) {
                papi.add_preset(es, p)?;
            } else if ev.to_ascii_uppercase().starts_with("PAPI_") {
                papi.add_preset_named(es, ev)?;
            } else {
                papi.add_named(es, ev)?;
            }
        }
        let labels = papi.event_labels(es)?;
        Ok(HighLevel {
            papi,
            es,
            labels,
            regions: BTreeMap::new(),
            active: None,
        })
    }

    /// The default event list when the caller gives none — the same
    /// default real papi_hl uses (`perf::TASK-CLOCK,PAPI_TOT_INS,
    /// PAPI_TOT_CYC` modulo naming).
    pub fn default_events() -> &'static [&'static str] {
        &["PAPI_TOT_INS", "PAPI_TOT_CYC"]
    }

    /// `PAPI_hl_region_begin`.
    pub fn region_begin(&mut self, name: &str) -> Result<(), PapiError> {
        if let Some(active) = &self.active {
            return Err(PapiError::State(if active == name {
                "region already active"
            } else {
                "another region is active (nesting unsupported)"
            }));
        }
        self.papi.start(self.es)?;
        self.active = Some(name.to_string());
        Ok(())
    }

    /// `PAPI_hl_region_end`.
    pub fn region_end(&mut self, name: &str) -> Result<(), PapiError> {
        match &self.active {
            Some(active) if active == name => {}
            Some(_) => return Err(PapiError::State("mismatched region name")),
            None => return Err(PapiError::State("no active region")),
        }
        let values = self.papi.stop(self.es)?;
        let entry = self
            .regions
            .entry(name.to_string())
            .or_insert_with(|| RegionTotals {
                count: 0,
                totals: vec![0; values.len()],
            });
        entry.count += 1;
        for (slot, (_, v)) in entry.totals.iter_mut().zip(&values) {
            *slot += v;
        }
        self.active = None;
        Ok(())
    }

    /// Per-region accumulated totals.
    pub fn regions(&self) -> &BTreeMap<String, RegionTotals> {
        &self.regions
    }

    /// Event labels, in the order of each region's totals.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// The underlying PAPI handle (for `run_instrumented`-style driving).
    pub fn papi_mut(&mut self) -> &mut Papi {
        &mut self.papi
    }

    /// Render the papi_hl-style report.
    pub fn report(&self) -> String {
        let mut out = String::from("PAPI-HL output:\n");
        for (name, r) in &self.regions {
            out.push_str(&format!("  region \"{name}\" (count {}):\n", r.count));
            for (label, total) in self.labels.iter().zip(&r.totals) {
                out.push_str(&format!("    {label:<24} {total}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcpu::machine::MachineSpec;
    use simcpu::phase::Phase;
    use simcpu::types::CpuMask;
    use simos::kernel::{Kernel, KernelConfig};
    use simos::task::{HookId, Op, ScriptedProgram};

    /// Drive a two-region instrumented task through the HL API.
    #[test]
    fn regions_accumulate_per_name() {
        let kernel =
            Kernel::boot_handle(MachineSpec::raptor_lake_i7_13700(), KernelConfig::default());
        // Region "a" runs 2×200k, region "b" runs 1×500k.
        let pid = kernel.lock().spawn(
            "hl",
            Box::new(ScriptedProgram::new([
                Op::Call(HookId(1)),
                Op::Compute(Phase::scalar(200_000)),
                Op::Call(HookId(2)),
                Op::Call(HookId(3)),
                Op::Compute(Phase::scalar(500_000)),
                Op::Call(HookId(4)),
                Op::Call(HookId(1)),
                Op::Compute(Phase::scalar(200_000)),
                Op::Call(HookId(2)),
                Op::Exit,
            ])),
            CpuMask::from_cpus([0, 16]),
            0,
        );
        let mut hl =
            HighLevel::new(kernel.clone(), pid, &["PAPI_TOT_INS", "PAPI_TOT_CYC"]).unwrap();
        // Drive hooks: 1/2 = region a, 3/4 = region b.
        loop {
            let hooks = {
                let mut k = kernel.lock();
                if k.all_exited() || k.time_ns() > 120_000_000_000 {
                    break;
                }
                k.tick();
                k.take_pending_hooks()
            };
            for (p, h) in hooks {
                match h.0 {
                    1 => hl.region_begin("a").unwrap(),
                    2 => hl.region_end("a").unwrap(),
                    3 => hl.region_begin("b").unwrap(),
                    _ => hl.region_end("b").unwrap(),
                }
                kernel.lock().resume(p).unwrap();
            }
        }
        let regions = hl.regions();
        let a = &regions["a"];
        let b = &regions["b"];
        assert_eq!(a.count, 2);
        assert_eq!(b.count, 1);
        // TOT_INS per execution = work + 4300 overhead.
        assert_eq!(a.totals[0], 2 * (200_000 + 4_300));
        assert_eq!(b.totals[0], 500_000 + 4_300);
        assert!(a.totals[1] > 0, "cycles counted");
        let rep = hl.report();
        assert!(rep.contains("region \"a\" (count 2)"), "{rep}");
        assert!(rep.contains("PAPI_TOT_INS"), "{rep}");
    }

    #[test]
    fn region_state_errors() {
        let kernel =
            Kernel::boot_handle(MachineSpec::raptor_lake_i7_13700(), KernelConfig::default());
        let pid = kernel.lock().spawn(
            "hl",
            Box::new(ScriptedProgram::new([
                Op::Compute(Phase::scalar(1_000_000_000)),
                Op::Exit,
            ])),
            CpuMask::from_cpus([0]),
            0,
        );
        let mut hl = HighLevel::new(kernel, pid, HighLevel::default_events()).unwrap();
        assert!(hl.region_end("x").is_err(), "no active region");
        hl.region_begin("x").unwrap();
        assert!(hl.region_begin("x").is_err(), "already active");
        assert!(hl.region_begin("y").is_err(), "nesting unsupported");
        assert!(hl.region_end("y").is_err(), "mismatched name");
        hl.region_end("x").unwrap();
    }

    #[test]
    fn mixed_native_and_preset_events() {
        let kernel =
            Kernel::boot_handle(MachineSpec::raptor_lake_i7_13700(), KernelConfig::default());
        let pid = kernel.lock().spawn(
            "hl",
            Box::new(ScriptedProgram::new([
                Op::Compute(Phase::scalar(1_000_000_000)),
                Op::Exit,
            ])),
            CpuMask::from_cpus([0]),
            0,
        );
        let hl = HighLevel::new(
            kernel,
            pid,
            &[
                "PAPI_TOT_INS",
                "adl_glc::TOPDOWN:SLOTS",
                "perf_sw::CPU_MIGRATIONS",
            ],
        )
        .unwrap();
        assert_eq!(hl.labels().len(), 3);
    }
}
