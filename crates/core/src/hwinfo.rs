//! Hetero-aware hardware reporting (`PAPI_get_hardware_info`).
//!
//! §V.1 of the paper: PAPI could report core/thread counts but not the
//! *type* of each core. This module builds the upgraded report from the
//! sysdetect probes (never from privileged knowledge of the machine spec):
//! per-CPU core types, per-type counts, and which detection method
//! supplied the classification.

use crate::sysdetect::{detect, DetectMethod, DetectionReport};
use simcpu::types::{CoreType, CpuId};
use simos::kernel::Kernel;
use simos::sysfs;

/// Per-logical-CPU report row.
#[derive(Debug, Clone)]
pub struct CpuReport {
    pub cpu: usize,
    pub core: usize,
    pub core_type: CoreType,
    pub max_khz: u64,
    pub cur_khz: u64,
}

/// Per-core-type summary.
#[derive(Debug, Clone)]
pub struct CoreTypeReport {
    pub core_type: CoreType,
    pub n_cpus: usize,
    pub n_cores: usize,
    pub max_khz: u64,
    pub min_khz: u64,
}

/// The hardware info PAPI exposes.
#[derive(Debug, Clone)]
pub struct HardwareInfo {
    pub model_string: String,
    pub vendor_string: String,
    pub ncpus: usize,
    pub ncores: usize,
    pub heterogeneous: bool,
    /// Which sysdetect probe classified the cores.
    pub detection_method: Option<DetectMethod>,
    pub cpus: Vec<CpuReport>,
    pub core_types: Vec<CoreTypeReport>,
    pub mem_string: String,
}

impl HardwareInfo {
    /// The core type of a CPU.
    pub fn core_type_of(&self, cpu: usize) -> Option<CoreType> {
        self.cpus.get(cpu).map(|c| c.core_type)
    }

    /// CPUs of a given type.
    pub fn cpus_of_type(&self, t: CoreType) -> Vec<usize> {
        self.cpus
            .iter()
            .filter(|c| c.core_type == t)
            .map(|c| c.cpu)
            .collect()
    }

    /// Render a Table I/IV-style configuration block.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("CPU               | {}\n", self.model_string));
        for ct in &self.core_types {
            let label = match ct.core_type {
                CoreType::Performance => "P-cores (performance)",
                CoreType::Efficiency => "E-cores (efficiency)",
                CoreType::Mid => "Mid cores",
                CoreType::Uniform => "cores",
            };
            let threads = if ct.n_cpus != ct.n_cores {
                format!(" ({} threads)", ct.n_cpus)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "{label:<18}| {}{} @{:.2}-{:.2} GHz\n",
                ct.n_cores,
                threads,
                ct.min_khz as f64 / 1e6,
                ct.max_khz as f64 / 1e6,
            ));
        }
        out.push_str(&format!("Memory            | {}\n", self.mem_string));
        out
    }
}

/// Build the hardware info from sysfs + sysdetect.
pub fn hardware_info(kernel: &Kernel) -> HardwareInfo {
    let report = detect(kernel);
    hardware_info_with(kernel, &report)
}

/// Build using an existing detection report.
pub fn hardware_info_with(kernel: &Kernel, report: &DetectionReport) -> HardwareInfo {
    let machine = kernel.machine();
    let n = machine.n_cpus();
    let tags = report
        .chosen
        .as_ref()
        .map(|(_, t)| t.clone())
        .unwrap_or_else(|| vec![0; n]);

    // Rank tag groups by their max frequency to assign P/E/Mid labels.
    let max_khz_of = |cpu: usize| -> u64 {
        sysfs::read(
            kernel,
            &format!("/sys/devices/system/cpu/cpu{cpu}/cpufreq/cpuinfo_max_freq"),
        )
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
    };
    let mut groups: Vec<u64> = tags.clone();
    groups.sort();
    groups.dedup();
    // Order groups by descending max frequency of their first CPU.
    let mut ranked: Vec<(u64, u64)> = groups
        .iter()
        .map(|&g| {
            let first = tags.iter().position(|&t| t == g).unwrap();
            (g, max_khz_of(first))
        })
        .collect();
    ranked.sort_by_key(|&(_, f)| std::cmp::Reverse(f));
    let type_of_group = |g: u64| -> CoreType {
        if ranked.len() <= 1 {
            return CoreType::Uniform;
        }
        let pos = ranked.iter().position(|&(t, _)| t == g).unwrap();
        if pos == 0 {
            CoreType::Performance
        } else if pos == ranked.len() - 1 {
            CoreType::Efficiency
        } else {
            CoreType::Mid
        }
    };

    let core_of = |cpu: usize| -> usize {
        sysfs::read(
            kernel,
            &format!("/sys/devices/system/cpu/cpu{cpu}/topology/core_id"),
        )
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(cpu)
    };

    let cpus: Vec<CpuReport> = (0..n)
        .map(|i| CpuReport {
            cpu: i,
            core: core_of(i),
            core_type: type_of_group(tags[i]),
            max_khz: max_khz_of(i),
            cur_khz: machine.freq_khz(CpuId(i)),
        })
        .collect();

    let mut core_types: Vec<CoreTypeReport> = Vec::new();
    for &(g, _) in &ranked {
        let member_cpus: Vec<&CpuReport> = cpus
            .iter()
            .zip(tags.iter())
            .filter(|(_, &t)| t == g)
            .map(|(c, _)| c)
            .collect();
        let mut cores: Vec<usize> = member_cpus.iter().map(|c| c.core).collect();
        cores.sort();
        cores.dedup();
        let first_cpu = member_cpus[0].cpu;
        let min_khz = sysfs::read(
            kernel,
            &format!("/sys/devices/system/cpu/cpu{first_cpu}/cpufreq/cpuinfo_min_freq"),
        )
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
        core_types.push(CoreTypeReport {
            core_type: type_of_group(g),
            n_cpus: member_cpus.len(),
            n_cores: cores.len(),
            max_khz: member_cpus[0].max_khz,
            min_khz,
        });
    }

    let ncores = {
        let mut cs: Vec<usize> = cpus.iter().map(|c| c.core).collect();
        cs.sort();
        cs.dedup();
        cs.len()
    };

    HardwareInfo {
        model_string: machine.spec().model_string.clone(),
        vendor_string: match machine.spec().vendor {
            simcpu::uarch::Vendor::Intel => "GenuineIntel".into(),
            simcpu::uarch::Vendor::Arm => "ARM".into(),
        },
        ncpus: n,
        ncores,
        heterogeneous: report.is_hybrid(),
        detection_method: report.chosen.as_ref().map(|(m, _)| *m),
        cpus,
        core_types,
        mem_string: machine.spec().mem_string.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcpu::machine::MachineSpec;
    use simos::kernel::KernelConfig;

    #[test]
    fn raptor_lake_table1_shape() {
        let k = Kernel::boot(MachineSpec::raptor_lake_i7_13700(), KernelConfig::default());
        let hw = hardware_info(&k);
        assert!(hw.heterogeneous);
        assert_eq!(hw.ncpus, 24);
        assert_eq!(hw.ncores, 16);
        assert_eq!(hw.core_types.len(), 2);
        let p = &hw.core_types[0];
        assert_eq!(p.core_type, CoreType::Performance);
        assert_eq!(p.n_cores, 8);
        assert_eq!(p.n_cpus, 16);
        assert_eq!(p.max_khz, 5_100_000);
        let e = &hw.core_types[1];
        assert_eq!(e.core_type, CoreType::Efficiency);
        assert_eq!(e.n_cores, 8);
        assert_eq!(e.n_cpus, 8);
        // Per-cpu classification.
        assert_eq!(hw.core_type_of(0), Some(CoreType::Performance));
        assert_eq!(hw.core_type_of(16), Some(CoreType::Efficiency));
        let table = hw.to_table();
        assert!(table.contains("i7-13700"));
        assert!(table.contains("P-cores"));
        assert!(table.contains("8 (16 threads)"));
    }

    #[test]
    fn orangepi_table4_shape() {
        let k = Kernel::boot(MachineSpec::orangepi_800(), KernelConfig::default());
        let hw = hardware_info(&k);
        assert!(hw.heterogeneous);
        assert_eq!(hw.ncpus, 6);
        assert_eq!(hw.core_types[0].n_cores, 2); // big
        assert_eq!(hw.core_types[1].n_cores, 4); // LITTLE
        assert_eq!(
            hw.detection_method,
            Some(crate::sysdetect::DetectMethod::CpuCapacity)
        );
        assert!(hw.to_table().contains("RK3399"));
    }

    #[test]
    fn homogeneous_reports_uniform() {
        let k = Kernel::boot(MachineSpec::skylake_quad(), KernelConfig::default());
        let hw = hardware_info(&k);
        assert!(!hw.heterogeneous);
        assert_eq!(hw.core_types.len(), 1);
        assert_eq!(hw.core_types[0].core_type, CoreType::Uniform);
    }

    #[test]
    fn tri_cluster_has_mid_type() {
        let k = Kernel::boot(MachineSpec::dynamiq_tri(), KernelConfig::default());
        let hw = hardware_info(&k);
        let types: Vec<CoreType> = hw.core_types.iter().map(|c| c.core_type).collect();
        assert_eq!(
            types,
            vec![CoreType::Performance, CoreType::Mid, CoreType::Efficiency]
        );
    }
}
