//! # papi — a PAPI-style performance library with heterogeneous support
//!
//! This crate is the paper's contribution (C1), rebuilt in Rust over the
//! simulated `perf_event` substrate:
//!
//! * **Multi-PMU EventSets** (§IV.E): one EventSet may hold events from
//!   several perf PMUs (P-core + E-core + RAPL + uncore); internally it is
//!   split into one perf event group per PMU, and start/stop/read/reset
//!   fan out across the groups.
//! * **Multiple default PMUs** (§IV.D): unqualified event names search all
//!   core PMUs, P-core first.
//! * **Derived presets** (§V.2): `PAPI_TOT_INS` on a hybrid machine opens
//!   `adl_glc::INST_RETIRED:ANY` *and* `adl_grt::INST_RETIRED:ANY` and
//!   reports the sum.
//! * **Hetero-aware hardware info + sysdetect** (§IV.B, §V.1).
//! * **Uncore component merge** (§V.3): uncore events join ordinary
//!   EventSets; the old separate component remains as a deprecated alias.
//! * **Legacy mode**: the pre-paper behaviour — one PMU per EventSet, one
//!   default PMU, separate RAPL/uncore components, stock-libpfm4 ARM
//!   detection — kept as an executable baseline (`PapiMode::Legacy`), so
//!   the paper's before/after comparisons (§IV.F) are reproducible.
//!
//! The caliper workflow the paper contrasts with the `perf` tool —
//! `PAPI_start()` / `PAPI_stop()` around arbitrary code regions — is
//! [`Papi::start`]/[`Papi::stop`] driven from instrumentation hooks;
//! [`Papi::run_instrumented`] is the canonical loop.

pub mod avail;
pub mod error;
pub mod eventset;
pub mod highlevel;
pub mod hwinfo;
pub mod metrics;
pub mod preset_table;
pub mod presets;
pub mod sysdetect;

pub use error::PapiError;
pub use eventset::{Attach, Component, EsState, EventSet, EventSetId};
pub use highlevel::HighLevel;
pub use hwinfo::HardwareInfo;
pub use preset_table::{parse_preset_csv, PresetDef, PresetTableError};
pub use presets::Preset;
pub use sysdetect::{DetectMethod, DetectionReport};

use eventset::{plan_groups, Entry, NativeRef};
use pfmlib::{Pfm, PfmOptions};
use simcpu::phase::Phase;
use simcpu::pmu::COUNTER_MASK;
use simcpu::types::{CpuId, Nanos};
use simos::kernel::KernelHandle;
use simos::perf::{EventFd, PerfError, PmuKind, ReadValue};
use simos::task::{HookId, Op, Pid};
use simtrace::{EventKind, TraceSink, Track};
use std::collections::HashMap;

/// Library behaviour: the paper's patched stack, or the original.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PapiMode {
    /// Heterogeneous support on (the paper's contribution).
    Hybrid,
    /// Original PAPI 7.1 behaviour (errors on hybrid configurations).
    Legacy,
}

/// Library configuration.
#[derive(Debug, Clone)]
pub struct PapiConfig {
    pub mode: PapiMode,
    /// Instructions of in-process measurement-library overhead charged at
    /// each `start()` (the "minor overhead inherent in using PAPI" that
    /// makes the §IV.F averages land slightly above 1 M).
    pub overhead_instructions: u64,
}

impl Default for PapiConfig {
    fn default() -> PapiConfig {
        PapiConfig {
            mode: PapiMode::Hybrid,
            overhead_instructions: 4_300,
        }
    }
}

/// Component registry row (`PAPI_get_component_info`).
#[derive(Debug, Clone)]
pub struct ComponentInfo {
    pub name: &'static str,
    pub description: String,
    /// Disabled components exist but cannot host EventSets.
    pub enabled: bool,
    /// §V.3: the uncore component is deprecated once merged.
    pub deprecated: bool,
}

/// One measured region's values, labeled as added.
pub type Values = Vec<(String, u64)>;

/// How trustworthy one returned value is (graceful-degradation metadata
/// for [`Papi::read_with_quality`]).
///
/// Ordered worst-last so entry qualities aggregate with `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ReadQuality {
    /// Counted the whole time it could have: the value is exact. (A
    /// zero from the wrong-core-type half of a hybrid derived preset is
    /// still `Ok` — that gap is expected, not a measurement failure.)
    Ok,
    /// The event lost its hardware counter part of the time (kernel
    /// multiplexing, NMI-watchdog theft) and the value is scaled up over
    /// the involuntarily uncounted window.
    Scaled,
    /// No usable measurement: the event never held a counter while its
    /// context was live, or its group read kept failing. The value is
    /// whatever partial data exists (usually 0) — never silently wrong,
    /// always flagged.
    Lost,
}

/// Labeled values plus per-entry quality.
pub type QualifiedValues = Vec<(String, u64, ReadQuality)>;

/// Per-fd counter snapshots plus the group leaders whose reads kept
/// failing past the transient-retry budget.
type GroupReads = (HashMap<EventFd, ReadValue>, Vec<(EventFd, PerfError)>);

/// Bounded retry for transient kernel errors (EINTR/EBUSY injected by
/// the fault layer). Deterministic: a fixed attempt budget, no clocks.
/// Every failed attempt has already been charged to the kernel's syscall
/// ledger, so retry cost shows up in [`Papi::syscall_stats`].
const TRANSIENT_RETRY_BUDGET: u32 = 8;

fn retry_transient<T>(mut f: impl FnMut() -> Result<T, PerfError>) -> Result<T, PerfError> {
    let mut attempts = 0;
    loop {
        match f() {
            Err(e) if e.is_transient() && attempts < TRANSIENT_RETRY_BUDGET => attempts += 1,
            other => return other,
        }
    }
}

/// Sum one entry's member counters, 48-bit-unwrapping and loss-scaling
/// each, and report the worst member quality.
///
/// * A member absent from `by_fd` (its group read failed persistently)
///   is `Lost` and contributes nothing.
/// * `time_running == 0` with `time_matched > 0` means the event had
///   countable time but never held a counter: `Lost`.
/// * `time_running < time_matched` means it held a counter part of that
///   time: scale the count over the gap, `Scaled`.
/// * Time outside `time_matched` (wrong core type for this PMU) is the
///   expected hybrid gap and is neither scaled over nor penalized.
fn entry_value(
    es: &EventSet,
    entry: &Entry,
    by_fd: &HashMap<EventFd, ReadValue>,
    wrap_base: &HashMap<EventFd, u64>,
) -> Result<(u64, ReadQuality), PapiError> {
    let mut total = 0u64;
    let mut quality = ReadQuality::Ok;
    for &ni in &entry.native_indices {
        let fd = es.natives[ni]
            .fd
            .ok_or(PapiError::State("event not opened"))?;
        let Some(rv) = by_fd.get(&fd) else {
            quality = quality.max(ReadQuality::Lost);
            continue;
        };
        let raw = rv.value;
        let unwrapped = match wrap_base.get(&fd) {
            Some(base) => raw.wrapping_sub(*base) & COUNTER_MASK,
            None => raw,
        };
        if rv.time_running == 0 {
            if rv.time_matched > 0 {
                quality = quality.max(ReadQuality::Lost);
            }
            // matched == 0: nothing to count (e.g. wrong-core-type half
            // of a derived preset) — an exact zero.
        } else if rv.time_running < rv.time_matched {
            total += (unwrapped as f64 * rv.time_matched as f64 / rv.time_running as f64) as u64;
            quality = quality.max(ReadQuality::Scaled);
        } else {
            total += unwrapped;
        }
    }
    Ok((total, quality))
}

/// The initialized library.
pub struct Papi {
    kernel: KernelHandle,
    pfm: Pfm,
    cfg: PapiConfig,
    eventsets: Vec<Option<EventSet>>,
    hwinfo: HardwareInfo,
    detection: DetectionReport,
    /// Data-driven preset definitions (the PAPI_events.csv analogue).
    preset_defs: Vec<preset_table::PresetDef>,
    /// High-water marks of consumed overflow records per (eventset, entry).
    overflow_seen: HashMap<(usize, usize), usize>,
    /// 48-bit unwrap state: the raw counter value observed at the last
    /// start/reset, per core-PMU fd. Counters may begin anywhere in the
    /// 48-bit range (and wrap mid-run); `(raw − base) & COUNTER_MASK`
    /// recovers the exact delta regardless.
    wrap_base: HashMap<EventFd, u64>,
    /// Flight recorder for the library's own start/stop/read activity,
    /// inheriting the kernel's trace configuration.
    trace: TraceSink,
}

impl Papi {
    /// Initialize with heterogeneous support (the paper's stack).
    pub fn init(kernel: KernelHandle) -> Result<Papi, PapiError> {
        Papi::init_with(kernel, PapiConfig::default())
    }

    /// Initialize the legacy (pre-paper) library.
    pub fn init_legacy(kernel: KernelHandle) -> Result<Papi, PapiError> {
        Papi::init_with(
            kernel,
            PapiConfig {
                mode: PapiMode::Legacy,
                ..Default::default()
            },
        )
    }

    /// Initialize with explicit configuration.
    pub fn init_with(kernel: KernelHandle, cfg: PapiConfig) -> Result<Papi, PapiError> {
        let (pfm, detection, hwinfo, trace) = {
            let k = kernel.lock();
            let pfm = Pfm::initialize(
                &k,
                PfmOptions {
                    // Stock libpfm4 (no ARM multi-PMU patch) in legacy mode.
                    arm_multi_pmu: cfg.mode == PapiMode::Hybrid,
                },
            )?;
            let detection = sysdetect::detect(&k);
            let hwinfo = hwinfo::hardware_info_with(&k, &detection);
            let trace = TraceSink::new(&k.config().trace);
            (pfm, detection, hwinfo, trace)
        };
        Ok(Papi {
            kernel,
            pfm,
            cfg,
            eventsets: Vec::new(),
            hwinfo,
            detection,
            preset_defs: preset_table::parse_preset_csv(preset_table::BUILTIN_CSV)
                .expect("built-in preset table is valid"),
            overflow_seen: HashMap::new(),
            wrap_base: HashMap::new(),
            trace,
        })
    }

    // ---- introspection ----------------------------------------------------

    pub fn mode(&self) -> PapiMode {
        self.cfg.mode
    }

    /// `PAPI_get_hardware_info`, hetero-aware (§V.1).
    pub fn hardware_info(&self) -> &HardwareInfo {
        &self.hwinfo
    }

    /// The sysdetect component's report (§IV.B).
    pub fn detection_report(&self) -> &DetectionReport {
        &self.detection
    }

    /// The underlying libpfm handle.
    pub fn pfm(&self) -> &Pfm {
        &self.pfm
    }

    /// A clone of the kernel handle (for workload setup and telemetry).
    pub fn kernel(&self) -> KernelHandle {
        self.kernel.clone()
    }

    /// The library's own flight-recorder track (start/stop/read events),
    /// for merging into an export alongside [`simos::kernel::Kernel::trace_tracks`].
    pub fn trace_track(&self) -> Track {
        Track::new("papi", self.trace.events())
    }

    /// Cumulative perf syscall overhead (§V.5).
    pub fn syscall_stats(&self) -> simos::kernel::SyscallStats {
        self.kernel.lock().syscall_stats()
    }

    /// `PAPI_enum_cmp_info`: the component registry.
    pub fn components(&self) -> Vec<ComponentInfo> {
        let k = self.kernel.lock();
        let has_rapl = k.machine().rapl().available();
        let has_uncore = k.machine().llc_bytes() > 0;
        let hybrid = self.cfg.mode == PapiMode::Hybrid;
        let mut v = vec![ComponentInfo {
            name: "perf_event",
            description: if hybrid {
                "Linux perf_event CPU counters (multi-PMU EventSets; RAPL and \
                 uncore events may be mixed in)"
                    .into()
            } else {
                "Linux perf_event CPU counters (single PMU per EventSet)".into()
            },
            enabled: true,
            deprecated: false,
        }];
        if has_rapl {
            v.push(ComponentInfo {
                name: "rapl",
                description: "RAPL energy counters".into(),
                enabled: !hybrid, // merged into perf_event by the new code
                deprecated: hybrid,
            });
        }
        if has_uncore {
            v.push(ComponentInfo {
                name: "perf_event_uncore",
                description: if hybrid {
                    "deprecated alias: uncore events now join ordinary EventSets (§V.3)".into()
                } else {
                    "separate uncore component".into()
                },
                enabled: !hybrid,
                deprecated: hybrid,
            });
        }
        v
    }

    /// All preset events available on this machine.
    pub fn available_presets(&self) -> Vec<Preset> {
        presets::ALL_PRESETS
            .iter()
            .copied()
            .filter(|p| {
                self.preset_natives(*p)
                    .map(|v| !v.is_empty())
                    .unwrap_or(false)
            })
            .collect()
    }

    /// Fully-qualified native event names a preset maps to on this machine
    /// (one per covered PMU in hybrid mode), without creating an EventSet.
    pub fn preset_native_names(&self, preset: Preset) -> Result<Vec<String>, PapiError> {
        Ok(self
            .preset_natives(preset)?
            .into_iter()
            .map(|e| e.fq_name)
            .collect())
    }

    // ---- EventSet lifecycle -------------------------------------------------

    /// `PAPI_create_eventset`.
    pub fn create_eventset(&mut self) -> EventSetId {
        let id = EventSetId(self.eventsets.len());
        self.eventsets.push(Some(EventSet::new(id)));
        id
    }

    /// `PAPI_destroy_eventset`: closes all fds.
    pub fn destroy_eventset(&mut self, id: EventSetId) -> Result<(), PapiError> {
        let es = self.es(id)?;
        if es.state == EsState::Running {
            return Err(PapiError::State("cannot destroy a running EventSet"));
        }
        let leaders = es.group_leaders.clone();
        {
            let mut k = self.kernel.lock();
            for fd in leaders {
                let _ = k.close_event(fd);
            }
        }
        self.eventsets[id.0] = None;
        Ok(())
    }

    /// `PAPI_attach`: bind the EventSet to a task or CPU. Must happen
    /// before the first start.
    pub fn attach(&mut self, id: EventSetId, attach: Attach) -> Result<(), PapiError> {
        let es = self.es_mut(id)?;
        if es.opened() {
            return Err(PapiError::State("cannot re-attach an opened EventSet"));
        }
        es.attach = Some(attach);
        Ok(())
    }

    /// `PAPI_overflow`: arm an overflow threshold on one entry. Every
    /// `threshold` counts of that entry's (first) native event generates an
    /// overflow record retrievable with [`Papi::take_overflows`] — the
    /// counting-mode analogue of real PAPI's overflow callbacks, built on
    /// the kernel's sampling machinery. Must precede the first start.
    pub fn set_overflow(
        &mut self,
        id: EventSetId,
        entry_idx: usize,
        threshold: u64,
    ) -> Result<(), PapiError> {
        if threshold == 0 {
            return Err(PapiError::State("overflow threshold must be nonzero"));
        }
        let es = self.es_mut(id)?;
        if es.opened() {
            return Err(PapiError::State(
                "overflow must be armed before first start",
            ));
        }
        let ni = *es
            .entries
            .get(entry_idx)
            .ok_or(PapiError::State("no such entry"))?
            .native_indices
            .first()
            .ok_or(PapiError::State("entry has no natives"))?;
        es.natives[ni].attr.sample_period = threshold;
        Ok(())
    }

    /// Drain the overflow records accumulated since the last call, for
    /// entry `entry_idx` of EventSet `id`: `(time_ns, cpu, value)` per
    /// overflow.
    pub fn take_overflows(
        &mut self,
        id: EventSetId,
        entry_idx: usize,
    ) -> Result<Vec<(u64, usize, u64)>, PapiError> {
        let es = self.es(id)?;
        if !es.opened() {
            return Err(PapiError::State("EventSet never started"));
        }
        let fd = {
            let ni = *es
                .entries
                .get(entry_idx)
                .ok_or(PapiError::State("no such entry"))?
                .native_indices
                .first()
                .ok_or(PapiError::State("entry has no natives"))?;
            es.natives[ni]
                .fd
                .ok_or(PapiError::State("event not opened"))?
        };
        let k = self.kernel.lock();
        let samples = k.event_samples(fd)?;
        // Return records past the high-water mark for this entry.
        let key = (id.0, entry_idx);
        let seen = self.overflow_seen.get(&key).copied().unwrap_or(0);
        let fresh: Vec<(u64, usize, u64)> = samples[seen.min(samples.len())..]
            .iter()
            .map(|r| (r.time_ns, r.cpu.0, r.value))
            .collect();
        drop(k);
        self.overflow_seen.insert(key, seen + fresh.len());
        Ok(fresh)
    }

    /// `PAPI_set_multiplex`: must precede the first start.
    pub fn set_multiplex(&mut self, id: EventSetId) -> Result<(), PapiError> {
        let es = self.es_mut(id)?;
        if es.opened() {
            return Err(PapiError::MultiplexTooLate);
        }
        es.multiplex = true;
        Ok(())
    }

    /// `PAPI_add_named_event`.
    pub fn add_named(&mut self, id: EventSetId, name: &str) -> Result<(), PapiError> {
        let resolved = self.resolve_name(name)?;
        let enc = self.pfm.encode(&resolved).map_err(|e| match e {
            pfmlib::PfmError::UnknownEvent(_) | pfmlib::PfmError::NotInDefaultPmus(_) => {
                PapiError::NoSuchEvent(name.to_string())
            }
            other => PapiError::Pfm(other),
        })?;
        let pmu = &self.pfm.pmus()[enc.pmu_index];
        let native = NativeRef {
            fq_name: enc.fq_name.clone(),
            attr: enc.attr,
            pmu_kind: pmu.kind,
            pmu_first_cpu: pmu.cpus.iter().next().unwrap_or(CpuId(0)),
            fd: None,
        };
        self.push_entry(id, name.to_string(), vec![native])
    }

    /// `PAPI_add_event` with a preset: derived-add across core types on
    /// hybrid machines (§V.2).
    pub fn add_preset(&mut self, id: EventSetId, preset: Preset) -> Result<(), PapiError> {
        let natives = self
            .preset_natives(preset)?
            .into_iter()
            .map(|enc| {
                let pmu = &self.pfm.pmus()[enc.pmu_index];
                NativeRef {
                    fq_name: enc.fq_name,
                    attr: enc.attr,
                    pmu_kind: pmu.kind,
                    pmu_first_cpu: pmu.cpus.iter().next().unwrap_or(CpuId(0)),
                    fd: None,
                }
            })
            .collect::<Vec<_>>();
        if natives.is_empty() {
            return Err(PapiError::PresetUnavailable(preset.papi_name().into()));
        }
        self.push_entry(id, preset.papi_name().to_string(), natives)
    }

    /// Extend/override the preset table at runtime (§V.2: the
    /// `PAPI_events.csv` path, hybrid-aware). Later definitions win.
    pub fn load_preset_csv(&mut self, text: &str) -> Result<usize, PresetTableError> {
        let defs = preset_table::parse_preset_csv(text)?;
        let n = defs.len();
        for def in defs {
            if let Some(existing) = self.preset_defs.iter_mut().find(|d| d.name == def.name) {
                *existing = def;
            } else {
                self.preset_defs.push(def);
            }
        }
        Ok(n)
    }

    /// Add a preset by its `PAPI_*` name, resolved through the data-driven
    /// table (which `load_preset_csv` may have extended).
    pub fn add_preset_named(&mut self, id: EventSetId, name: &str) -> Result<(), PapiError> {
        let upper = name.to_ascii_uppercase();
        let def = self
            .preset_defs
            .iter()
            .find(|d| d.name == upper)
            .cloned()
            .ok_or_else(|| PapiError::PresetUnavailable(name.to_string()))?;
        let vendor = {
            let k = self.kernel.lock();
            k.machine().spec().vendor
        };
        let native = def
            .native_for(vendor)
            .ok_or_else(|| PapiError::PresetUnavailable(name.to_string()))?
            .to_string();
        let encs = match self.cfg.mode {
            PapiMode::Hybrid => self.pfm.encode_on_all_defaults(&native),
            // Already-prefixed natives (software events) name their PMU.
            PapiMode::Legacy if native.contains("::") => self.pfm.encode(&native).map(|e| vec![e]),
            PapiMode::Legacy => {
                let first = self.pfm.default_pmus()[0].pfm_name.clone();
                self.pfm
                    .encode(&format!("{first}::{native}"))
                    .map(|e| vec![e])
            }
        }
        .map_err(|_| PapiError::PresetUnavailable(name.to_string()))?;
        let natives: Vec<NativeRef> = encs
            .into_iter()
            .map(|enc| {
                let pmu = &self.pfm.pmus()[enc.pmu_index];
                NativeRef {
                    fq_name: enc.fq_name,
                    attr: enc.attr,
                    pmu_kind: pmu.kind,
                    pmu_first_cpu: pmu.cpus.iter().next().unwrap_or(CpuId(0)),
                    fd: None,
                }
            })
            .collect();
        self.push_entry(id, def.name, natives)
    }

    /// All preset names available on this machine via the data table.
    pub fn preset_names(&self) -> Vec<String> {
        let vendor = {
            let k = self.kernel.lock();
            k.machine().spec().vendor
        };
        self.preset_defs
            .iter()
            .filter(|d| d.native_for(vendor).is_some())
            .map(|d| d.name.clone())
            .collect()
    }

    /// Natives implementing a preset on this machine.
    fn preset_natives(&self, preset: Preset) -> Result<Vec<pfmlib::EncodedEvent>, PapiError> {
        let vendor = {
            let k = self.kernel.lock();
            k.machine().spec().vendor
        };
        let native = preset
            .native_name(vendor)
            .ok_or_else(|| PapiError::PresetUnavailable(preset.papi_name().into()))?;
        let encs = match self.cfg.mode {
            PapiMode::Hybrid => self.pfm.encode_on_all_defaults(native),
            // Already-prefixed natives (software events) name their PMU.
            PapiMode::Legacy if native.contains("::") => self.pfm.encode(native).map(|e| vec![e]),
            PapiMode::Legacy => {
                // One default PMU only.
                let first = self.pfm.default_pmus()[0].pfm_name.clone();
                self.pfm
                    .encode(&format!("{first}::{native}"))
                    .map(|e| vec![e])
            }
        };
        encs.map_err(|_| PapiError::PresetUnavailable(preset.papi_name().into()))
    }

    /// Legacy name resolution: unprefixed events search only the first
    /// default PMU (§IV.D's pre-fix world).
    fn resolve_name(&self, name: &str) -> Result<String, PapiError> {
        if self.cfg.mode == PapiMode::Hybrid || name.contains("::") {
            return Ok(name.to_string());
        }
        let first = &self.pfm.default_pmus()[0].pfm_name;
        Ok(format!("{first}::{name}"))
    }

    fn push_entry(
        &mut self,
        id: EventSetId,
        label: String,
        natives: Vec<NativeRef>,
    ) -> Result<(), PapiError> {
        let mode = self.cfg.mode;
        let es = self.es_mut(id)?;
        if es.state == EsState::Running {
            return Err(PapiError::State("cannot add events while running"));
        }
        if es.opened() {
            return Err(PapiError::State(
                "cannot add events after the EventSet has been started once",
            ));
        }
        // Legacy restrictions.
        if mode == PapiMode::Legacy {
            for n in &natives {
                let comp = Component::for_pmu_kind(n.pmu_kind);
                match es.component {
                    None => {}
                    Some(c) if c == comp => {}
                    Some(c) => {
                        return Err(PapiError::ComponentConflict {
                            eventset_component: c.name(),
                            event_component: comp.name(),
                        })
                    }
                }
                if n.pmu_kind == PmuKind::CoreHw {
                    if let Some(existing) = es.natives.iter().find(|e| {
                        e.pmu_kind == PmuKind::CoreHw && e.attr.pmu_type != n.attr.pmu_type
                    }) {
                        return Err(PapiError::MultiPmuUnsupported {
                            existing: existing.fq_name.clone(),
                            adding: n.fq_name.clone(),
                        });
                    }
                }
            }
        }
        // Bind component (legacy: by first event; hybrid: always perf_event).
        let comp = match mode {
            PapiMode::Hybrid => Component::PerfEvent,
            PapiMode::Legacy => Component::for_pmu_kind(natives[0].pmu_kind),
        };
        es.component.get_or_insert(comp);

        let base = es.natives.len();
        let idxs: Vec<usize> = (base..base + natives.len()).collect();
        es.natives.extend(natives);
        es.entries.push(Entry {
            label,
            native_indices: idxs,
        });
        Ok(())
    }

    /// Number of user-visible entries.
    pub fn num_events(&self, id: EventSetId) -> Result<usize, PapiError> {
        Ok(self.es(id)?.entries.len())
    }

    /// Labels in add order.
    pub fn event_labels(&self, id: EventSetId) -> Result<Vec<String>, PapiError> {
        Ok(self
            .es(id)?
            .entries
            .iter()
            .map(|e| e.label.clone())
            .collect())
    }

    /// Fully-qualified native names (presets expand to several).
    pub fn native_names(&self, id: EventSetId) -> Result<Vec<String>, PapiError> {
        Ok(self
            .es(id)?
            .natives
            .iter()
            .map(|n| n.fq_name.clone())
            .collect())
    }

    /// How many perf event groups this EventSet spans (the §V.5
    /// indirection metric: 1 on homogeneous, ≥2 on hybrid).
    pub fn num_groups(&self, id: EventSetId) -> Result<usize, PapiError> {
        let es = self.es(id)?;
        if es.opened() {
            Ok(es.group_leaders.len())
        } else {
            Ok(plan_groups(
                &es.natives
                    .iter()
                    .map(|n| n.attr.pmu_type)
                    .collect::<Vec<_>>(),
                es.multiplex,
            )
            .len())
        }
    }

    // ---- start/stop/read ---------------------------------------------------

    /// `PAPI_start`.
    pub fn start(&mut self, id: EventSetId) -> Result<(), PapiError> {
        // Component-exclusivity: one running EventSet per component.
        let my_comp = {
            let es = self.es(id)?;
            if es.state == EsState::Running {
                return Err(PapiError::State("EventSet already running"));
            }
            if es.natives.is_empty() {
                return Err(PapiError::State("EventSet is empty"));
            }
            es.component.unwrap_or(Component::PerfEvent)
        };
        for other in self.eventsets.iter().flatten() {
            if other.id != id && other.state == EsState::Running && other.component == Some(my_comp)
            {
                return Err(PapiError::ComponentBusy(my_comp.name()));
            }
        }
        self.ensure_opened(id)?;
        // Automatic multiplexing fallback (graceful degradation): a group
        // that cannot hold all its counters at once — GP overcommit, or
        // the NMI watchdog squatting on a fixed counter it needs — would
        // never be co-scheduled and would read zero forever. Detect that
        // here and transparently re-open the set as single-event groups;
        // rotation then time-shares the counters and reads surface as
        // scaled estimates flagged [`ReadQuality::Scaled`].
        if !self.es(id)?.multiplex {
            let leaders = self.es(id)?.group_leaders.clone();
            let unfit = {
                let k = self.kernel.lock();
                leaders
                    .iter()
                    .any(|l| !k.group_schedulable(*l).unwrap_or(true))
            };
            if unfit {
                self.reopen_multiplexed(id)?;
            }
        }
        let es = self.es(id)?;
        let leaders = es.group_leaders.clone();
        let attach = es.attach;
        let core_fds: Vec<EventFd> = es
            .natives
            .iter()
            .filter(|n| n.pmu_kind == PmuKind::CoreHw)
            .filter_map(|n| n.fd)
            .collect();
        let mut bases = Vec::with_capacity(core_fds.len());
        {
            let mut k = self.kernel.lock();
            for fd in &leaders {
                k.ioctl_reset(*fd, true)?;
                k.ioctl_enable(*fd, true)?;
            }
            // Baseline the 48-bit unwrap state: a freshly reset hardware
            // counter shows an arbitrary point in its 48-bit range, not
            // zero. Later reads subtract this modulo 2^48.
            for fd in core_fds {
                let rv = retry_transient(|| k.read_event(fd))?;
                bases.push((fd, rv.value));
            }
            // In-process overhead: PAPI_start's tail executes inside the
            // measurement window.
            if let Some(Attach::Task(pid)) = attach {
                if self.cfg.overhead_instructions > 0 {
                    k.inject_ops(
                        pid,
                        [Op::Compute(Phase::scalar(self.cfg.overhead_instructions))],
                    );
                }
            }
        }
        self.wrap_base.extend(bases);
        self.es_mut(id)?.state = EsState::Running;
        if self.trace.enabled() {
            let t = self.kernel.lock().time_ns();
            self.trace
                .record(t, EventKind::PapiStart, id.0 as u32, 0, 0);
        }
        Ok(())
    }

    /// `PAPI_stop`: returns the final values.
    pub fn stop(&mut self, id: EventSetId) -> Result<Values, PapiError> {
        {
            let es = self.es(id)?;
            if es.state != EsState::Running {
                return Err(PapiError::State("EventSet not running"));
            }
        }
        let values = self.read(id)?;
        let leaders = self.es(id)?.group_leaders.clone();
        {
            let mut k = self.kernel.lock();
            for fd in &leaders {
                k.ioctl_disable(*fd, true)?;
            }
        }
        self.es_mut(id)?.state = EsState::Stopped;
        if self.trace.enabled() {
            let t = self.kernel.lock().time_ns();
            self.trace.record(t, EventKind::PapiStop, id.0 as u32, 0, 0);
        }
        Ok(values)
    }

    /// `PAPI_read`: one read syscall **per group** — the latency cost the
    /// paper attributes to heterogeneous measurement.
    ///
    /// Transient kernel errors are retried up to [`TRANSIENT_RETRY_BUDGET`]
    /// times; a group that still fails surfaces its error (no partial
    /// results on this strict path — use [`Papi::read_with_quality`] to
    /// degrade gracefully instead). Values from events that lost their
    /// hardware counter involuntarily (multiplexing, watchdog theft) are
    /// scaled over the uncounted window; time spent on a wrong-type core
    /// is never scaled over.
    pub fn read(&mut self, id: EventSetId) -> Result<Values, PapiError> {
        let (by_fd, mut failed) = self.read_groups(id)?;
        if let Some((_, e)) = failed.pop() {
            return Err(e.into());
        }
        let es = self.es(id)?;
        let mut out = Vec::with_capacity(es.entries.len());
        for entry in &es.entries {
            let (total, _) = entry_value(es, entry, &by_fd, &self.wrap_base)?;
            out.push((entry.label.clone(), total));
        }
        // The strict path either returned exact/scaled-free values or
        // errored above, so quality is Ok by construction.
        if self.trace.enabled() {
            let t = self.kernel.lock().time_ns();
            self.trace.record(t, EventKind::PapiRead, id.0 as u32, 0, 0);
        }
        Ok(out)
    }

    /// Like [`Papi::read`], but degrades instead of failing: entries whose
    /// group read kept failing, or whose events never held a counter while
    /// countable, are returned with [`ReadQuality::Lost`] (and whatever
    /// partial value exists); scaled estimates carry
    /// [`ReadQuality::Scaled`]. Only errors that leave no EventSet to read
    /// (bad id, never started) are returned as `Err`.
    pub fn read_with_quality(&mut self, id: EventSetId) -> Result<QualifiedValues, PapiError> {
        let (by_fd, _failed) = self.read_groups(id)?;
        let es = self.es(id)?;
        let mut out = Vec::with_capacity(es.entries.len());
        let mut worst = ReadQuality::Ok;
        for entry in &es.entries {
            let (total, q) = entry_value(es, entry, &by_fd, &self.wrap_base)?;
            worst = worst.max(q);
            out.push((entry.label.clone(), total, q));
        }
        if self.trace.enabled() {
            let t = self.kernel.lock().time_ns();
            let q = match worst {
                ReadQuality::Ok => 0,
                ReadQuality::Scaled => 1,
                ReadQuality::Lost => 2,
            };
            self.trace.record(t, EventKind::PapiRead, id.0 as u32, q, 0);
        }
        Ok(out)
    }

    /// Read every group with transient-retry, collecting per-fd results.
    /// Persistently failing groups are reported in the second return
    /// slot; hard errors propagate.
    fn read_groups(&mut self, id: EventSetId) -> Result<GroupReads, PapiError> {
        let es = self.es(id)?;
        if !es.opened() {
            return Err(PapiError::State("EventSet never started"));
        }
        let leaders = es.group_leaders.clone();
        let mut by_fd: HashMap<EventFd, ReadValue> = HashMap::new();
        let mut failed = Vec::new();
        let mut k = self.kernel.lock();
        for leader in leaders {
            match retry_transient(|| k.read_group(leader)) {
                Ok(rvs) => {
                    for rv in rvs {
                        by_fd.insert(rv.fd, rv);
                    }
                }
                Err(e) if e.is_transient() => failed.push((leader, e)),
                Err(e) => return Err(e.into()),
            }
        }
        Ok((by_fd, failed))
    }

    /// `PAPI_reset`.
    pub fn reset(&mut self, id: EventSetId) -> Result<(), PapiError> {
        let es = self.es(id)?;
        let leaders = es.group_leaders.clone();
        let core_fds: Vec<EventFd> = es
            .natives
            .iter()
            .filter(|n| n.pmu_kind == PmuKind::CoreHw)
            .filter_map(|n| n.fd)
            .collect();
        let mut bases = Vec::with_capacity(core_fds.len());
        {
            let mut k = self.kernel.lock();
            for fd in leaders {
                k.ioctl_reset(fd, true)?;
            }
            // Reset re-baselines the 48-bit unwrap state (see `start`).
            for fd in core_fds {
                let rv = retry_transient(|| k.read_event(fd))?;
                bases.push((fd, rv.value));
            }
        }
        self.wrap_base.extend(bases);
        Ok(())
    }

    /// `PAPI_accum`: add current values into `out` and reset the counters.
    pub fn accum(&mut self, id: EventSetId, out: &mut [u64]) -> Result<(), PapiError> {
        let values = self.read(id)?;
        if values.len() != out.len() {
            return Err(PapiError::State("accum array length mismatch"));
        }
        for (slot, (_, v)) in out.iter_mut().zip(values) {
            *slot = slot.saturating_add(v);
        }
        self.reset(id)
    }

    /// Read one entry via the rdpmc fast path. Presets sum their member
    /// counters.
    ///
    /// Implements the real userpage protocol (§V.5's concern): each member
    /// counter is read through its mmap'd page when it currently holds a
    /// hardware counter, and through a `read()` **syscall fallback** when
    /// it does not — which on a hybrid machine is the steady state of the
    /// wrong-core-type half of a derived preset. `papi_cost`/`overhead`
    /// make the resulting latency asymmetry visible.
    pub fn read_fast(&mut self, id: EventSetId, entry_idx: usize) -> Result<u64, PapiError> {
        let es = self.es(id)?;
        if !es.opened() {
            return Err(PapiError::State("EventSet never started"));
        }
        let fds: Vec<EventFd> = es
            .entries
            .get(entry_idx)
            .ok_or(PapiError::State("no such entry"))?
            .native_indices
            .iter()
            .map(|&ni| {
                es.natives[ni]
                    .fd
                    .ok_or(PapiError::State("event not opened"))
            })
            .collect::<Result<_, _>>()?;
        let mut total = 0u64;
        {
            let mut k = self.kernel.lock();
            for &fd in &fds {
                let page = k.mmap_userpage(fd)?;
                let raw = match page.rdpmc() {
                    Some(v) => v,
                    // Not on a hardware counter: take the syscall.
                    None => retry_transient(|| k.read_event(fd))?.value,
                };
                total += match self.wrap_base.get(&fd) {
                    Some(base) => raw.wrapping_sub(*base) & COUNTER_MASK,
                    None => raw,
                };
            }
        }
        Ok(total)
    }

    fn ensure_opened(&mut self, id: EventSetId) -> Result<(), PapiError> {
        if self.es(id)?.opened() {
            return Ok(());
        }
        let (plan, targets, attrs) = {
            let es = self.es(id)?;
            let pmu_types: Vec<u32> = es.natives.iter().map(|n| n.attr.pmu_type).collect();
            let plan = plan_groups(&pmu_types, es.multiplex);
            let targets: Result<Vec<_>, _> = es.natives.iter().map(|n| es.target_for(n)).collect();
            let attrs: Vec<_> = es.natives.iter().map(|n| n.attr).collect();
            (plan, targets?, attrs)
        };
        let mut leaders = Vec::with_capacity(plan.len());
        let mut fds: Vec<Option<EventFd>> = vec![None; attrs.len()];
        {
            let mut k = self.kernel.lock();
            let mut open_err: Option<PerfError> = None;
            'open: for group in &plan {
                let leader_idx = group[0];
                let leader_fd = match retry_transient(|| {
                    k.perf_event_open(attrs[leader_idx], targets[leader_idx], None)
                }) {
                    Ok(fd) => fd,
                    Err(e) => {
                        open_err = Some(e);
                        break 'open;
                    }
                };
                fds[leader_idx] = Some(leader_fd);
                leaders.push(leader_fd);
                for &member in &group[1..] {
                    match retry_transient(|| {
                        k.perf_event_open(attrs[member], targets[member], Some(leader_fd))
                    }) {
                        Ok(fd) => fds[member] = Some(fd),
                        Err(e) => {
                            open_err = Some(e);
                            break 'open;
                        }
                    }
                }
            }
            if let Some(e) = open_err {
                // Don't leak half an EventSet: close whatever opened.
                for fd in fds.iter().flatten() {
                    let _ = k.close_event(*fd);
                }
                return Err(e.into());
            }
        }
        let es = self.es_mut(id)?;
        for (n, fd) in es.natives.iter_mut().zip(fds) {
            n.fd = fd;
        }
        es.group_leaders = leaders;
        Ok(())
    }

    /// Close an EventSet's fds and re-open it with every event as its own
    /// group leader — the tail of `start()`'s automatic multiplexing
    /// fallback.
    fn reopen_multiplexed(&mut self, id: EventSetId) -> Result<(), PapiError> {
        let old_fds: Vec<EventFd> = {
            let es = self.es_mut(id)?;
            es.group_leaders.clear();
            es.multiplex = true;
            es.natives.iter_mut().filter_map(|n| n.fd.take()).collect()
        };
        {
            let mut k = self.kernel.lock();
            for fd in &old_fds {
                let _ = k.close_event(*fd);
            }
        }
        for fd in &old_fds {
            self.wrap_base.remove(fd);
        }
        self.ensure_opened(id)
    }

    fn es(&self, id: EventSetId) -> Result<&EventSet, PapiError> {
        self.eventsets
            .get(id.0)
            .and_then(|e| e.as_ref())
            .ok_or(PapiError::NoSuchEventSet)
    }

    fn es_mut(&mut self, id: EventSetId) -> Result<&mut EventSet, PapiError> {
        self.eventsets
            .get_mut(id.0)
            .and_then(|e| e.as_mut())
            .ok_or(PapiError::NoSuchEventSet)
    }

    // ---- instrumented (calipered) runs --------------------------------------

    /// Drive the kernel until all tasks exit, treating `start_hook` /
    /// `stop_hook` as `PAPI_start`/`PAPI_stop` calipers on `es`. Returns
    /// the values captured at each stop — the §IV.F test harness.
    pub fn run_instrumented(
        &mut self,
        es: EventSetId,
        start_hook: HookId,
        stop_hook: HookId,
        max_ns: Nanos,
    ) -> Result<Vec<Values>, PapiError> {
        self.run_instrumented_inner(es, start_hook, stop_hook, max_ns, None)
    }

    /// Like [`Papi::run_instrumented`], but stops once `watched` exits —
    /// for scenarios with background (noise) tasks that outlive the
    /// instrumented one.
    pub fn run_instrumented_task(
        &mut self,
        es: EventSetId,
        start_hook: HookId,
        stop_hook: HookId,
        watched: Pid,
        max_ns: Nanos,
    ) -> Result<Vec<Values>, PapiError> {
        self.run_instrumented_inner(es, start_hook, stop_hook, max_ns, Some(watched))
    }

    fn run_instrumented_inner(
        &mut self,
        es: EventSetId,
        start_hook: HookId,
        stop_hook: HookId,
        max_ns: Nanos,
        watched: Option<Pid>,
    ) -> Result<Vec<Values>, PapiError> {
        let mut results = Vec::new();
        let deadline = {
            let k = self.kernel.lock();
            k.time_ns() + max_ns
        };
        loop {
            let hooks = {
                let mut k = self.kernel.lock();
                let watched_done = watched
                    .map(|p| k.task_state(p) == Some(simos::task::TaskState::Exited))
                    .unwrap_or(false);
                if k.all_exited() || watched_done || k.time_ns() >= deadline {
                    break;
                }
                k.tick();
                k.take_pending_hooks()
            };
            for (pid, hook) in hooks {
                if hook == start_hook {
                    self.start(es)?;
                } else if hook == stop_hook {
                    results.push(self.stop(es)?);
                }
                self.kernel.lock().resume(pid)?;
            }
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcpu::machine::MachineSpec;
    use simcpu::types::CpuMask;
    use simos::kernel::{Kernel, KernelConfig};
    use simos::task::ScriptedProgram;

    fn boot(spec: MachineSpec) -> KernelHandle {
        Kernel::boot_handle(spec, KernelConfig::default())
    }

    fn spawn_loop(kernel: &KernelHandle, cpus: CpuMask, inst: u64) -> Pid {
        kernel.lock().spawn(
            "w",
            Box::new(ScriptedProgram::new([
                Op::Compute(Phase::scalar(inst)),
                Op::Exit,
            ])),
            cpus,
            0,
        )
    }

    fn run_all(kernel: &KernelHandle) {
        let mut k = kernel.lock();
        k.run_to_completion(60_000_000_000);
        assert!(k.all_exited());
    }

    #[test]
    fn paper_example_multi_pmu_eventset() {
        // §IV.E: one EventSet holding both core types' INST_RETIRED.
        let kernel = boot(MachineSpec::raptor_lake_i7_13700());
        let pid = spawn_loop(&kernel, CpuMask::from_cpus([0]), 3_000_000);
        let mut papi = Papi::init(kernel.clone()).unwrap();
        let es = papi.create_eventset();
        papi.attach(es, Attach::Task(pid)).unwrap();
        papi.add_named(es, "adl_glc::INST_RETIRED:ANY").unwrap();
        papi.add_named(es, "adl_grt::INST_RETIRED:ANY").unwrap();
        assert_eq!(papi.num_groups(es).unwrap(), 2, "two perf groups");
        papi.start(es).unwrap();
        run_all(&kernel);
        let values = papi.stop(es).unwrap();
        // Pinned to a P core: all instructions (plus start overhead) on P.
        assert_eq!(values[0].1, 3_000_000 + 4_300);
        assert_eq!(values[1].1, 0);
    }

    #[test]
    fn legacy_mode_rejects_multi_pmu() {
        let kernel = boot(MachineSpec::raptor_lake_i7_13700());
        let pid = spawn_loop(&kernel, CpuMask::from_cpus([0]), 1000);
        let mut papi = Papi::init_legacy(kernel).unwrap();
        let es = papi.create_eventset();
        papi.attach(es, Attach::Task(pid)).unwrap();
        papi.add_named(es, "adl_glc::INST_RETIRED:ANY").unwrap();
        let err = papi.add_named(es, "adl_grt::INST_RETIRED:ANY").unwrap_err();
        assert!(matches!(err, PapiError::MultiPmuUnsupported { .. }));
    }

    #[test]
    fn legacy_mode_separate_rapl_component() {
        let kernel = boot(MachineSpec::raptor_lake_i7_13700());
        let pid = spawn_loop(&kernel, CpuMask::from_cpus([0]), 1000);
        let mut papi = Papi::init_legacy(kernel).unwrap();
        let es = papi.create_eventset();
        papi.attach(es, Attach::Task(pid)).unwrap();
        papi.add_named(es, "INST_RETIRED").unwrap();
        let err = papi.add_named(es, "rapl::RAPL_ENERGY_PKG").unwrap_err();
        assert!(matches!(err, PapiError::ComponentConflict { .. }), "{err}");
    }

    #[test]
    fn hybrid_mode_mixes_cpu_and_rapl() {
        // §IV.E/§V.3: CPU + RAPL (+ uncore) in ONE EventSet.
        let kernel = boot(MachineSpec::raptor_lake_i7_13700());
        let pid = spawn_loop(&kernel, CpuMask::from_cpus([0]), 50_000_000);
        let mut papi = Papi::init(kernel.clone()).unwrap();
        let es = papi.create_eventset();
        papi.attach(es, Attach::Task(pid)).unwrap();
        papi.add_named(es, "adl_glc::INST_RETIRED:ANY").unwrap();
        papi.add_named(es, "rapl::RAPL_ENERGY_PKG").unwrap();
        papi.add_named(es, "unc_llc::UNC_LLC_LOOKUPS").unwrap();
        assert_eq!(papi.num_groups(es).unwrap(), 3);
        papi.start(es).unwrap();
        run_all(&kernel);
        let v = papi.stop(es).unwrap();
        assert!(v[0].1 >= 50_000_000);
        assert!(v[1].1 > 0, "energy counted");
    }

    #[test]
    fn derived_preset_sums_across_core_types() {
        // §V.2: PAPI_TOT_INS = glc + grt INST_RETIRED.
        let kernel = boot(MachineSpec::raptor_lake_i7_13700());
        let pid = spawn_loop(&kernel, CpuMask::from_cpus([0, 16]), 10_000_000);
        let mut papi = Papi::init(kernel.clone()).unwrap();
        let es = papi.create_eventset();
        papi.attach(es, Attach::Task(pid)).unwrap();
        papi.add_preset(es, Preset::TotIns).unwrap();
        let natives = papi.native_names(es).unwrap();
        assert_eq!(
            natives,
            vec!["adl_glc::INST_RETIRED:ANY", "adl_grt::INST_RETIRED:ANY"]
        );
        papi.start(es).unwrap();
        run_all(&kernel);
        let v = papi.stop(es).unwrap();
        assert_eq!(v[0].0, "PAPI_TOT_INS");
        assert_eq!(v[0].1, 10_000_000 + 4_300);
    }

    #[test]
    fn preset_single_native_on_homogeneous() {
        let kernel = boot(MachineSpec::skylake_quad());
        let pid = spawn_loop(&kernel, CpuMask::from_cpus([0]), 1_000_000);
        let mut papi = Papi::init(kernel.clone()).unwrap();
        let es = papi.create_eventset();
        papi.attach(es, Attach::Task(pid)).unwrap();
        papi.add_preset(es, Preset::TotIns).unwrap();
        assert_eq!(papi.native_names(es).unwrap().len(), 1);
        assert_eq!(papi.num_groups(es).unwrap(), 1);
    }

    #[test]
    fn ref_cyc_preset_unavailable_on_arm() {
        let kernel = boot(MachineSpec::orangepi_800());
        let mut papi = Papi::init(kernel).unwrap();
        let es = papi.create_eventset();
        let err = papi.add_preset(es, Preset::RefCyc).unwrap_err();
        assert!(matches!(err, PapiError::PresetUnavailable(_)));
        assert!(!papi.available_presets().contains(&Preset::RefCyc));
        assert!(papi.available_presets().contains(&Preset::TotIns));
    }

    #[test]
    fn component_busy_blocks_second_eventset() {
        // The restriction that defeats the two-EventSet workaround.
        let kernel = boot(MachineSpec::raptor_lake_i7_13700());
        let pid = spawn_loop(&kernel, CpuMask::from_cpus([0]), 100_000_000);
        let mut papi = Papi::init_legacy(kernel).unwrap();
        let es1 = papi.create_eventset();
        papi.attach(es1, Attach::Task(pid)).unwrap();
        papi.add_named(es1, "adl_glc::INST_RETIRED:ANY").unwrap();
        let es2 = papi.create_eventset();
        papi.attach(es2, Attach::Task(pid)).unwrap();
        papi.add_named(es2, "adl_grt::INST_RETIRED:ANY").unwrap();
        papi.start(es1).unwrap();
        let err = papi.start(es2).unwrap_err();
        assert_eq!(err, PapiError::ComponentBusy("perf_event"));
    }

    #[test]
    fn legacy_unprefixed_uses_single_default_pmu() {
        let kernel = boot(MachineSpec::raptor_lake_i7_13700());
        let pid = spawn_loop(&kernel, CpuMask::from_cpus([0]), 1000);
        let mut papi = Papi::init_legacy(kernel).unwrap();
        let es = papi.create_eventset();
        papi.attach(es, Attach::Task(pid)).unwrap();
        papi.add_named(es, "INST_RETIRED").unwrap();
        assert!(papi.native_names(es).unwrap()[0].starts_with("adl_glc::"));
    }

    #[test]
    fn state_machine_errors() {
        let kernel = boot(MachineSpec::raptor_lake_i7_13700());
        let pid = spawn_loop(&kernel, CpuMask::from_cpus([0]), 10_000_000);
        let mut papi = Papi::init(kernel.clone()).unwrap();
        let es = papi.create_eventset();
        // Start without attach/events.
        assert!(matches!(papi.start(es), Err(PapiError::State(_))));
        papi.attach(es, Attach::Task(pid)).unwrap();
        assert!(matches!(papi.start(es), Err(PapiError::State(_)))); // empty
        papi.add_named(es, "INST_RETIRED").unwrap();
        papi.start(es).unwrap();
        assert!(matches!(papi.start(es), Err(PapiError::State(_)))); // double start
        assert!(matches!(
            papi.add_named(es, "CPU_CLK_UNHALTED"),
            Err(PapiError::State(_))
        )); // add while running
        run_all(&kernel);
        papi.stop(es).unwrap();
        assert!(matches!(papi.stop(es), Err(PapiError::State(_)))); // double stop
        assert!(matches!(
            papi.set_multiplex(es),
            Err(PapiError::MultiplexTooLate)
        ));
        // Bad ids.
        assert!(matches!(
            papi.read(EventSetId(99)),
            Err(PapiError::NoSuchEventSet)
        ));
    }

    #[test]
    fn accum_adds_and_resets() {
        let kernel = boot(MachineSpec::raptor_lake_i7_13700());
        let pid = spawn_loop(&kernel, CpuMask::from_cpus([0]), 5_000_000);
        let mut papi = Papi::init_with(
            kernel.clone(),
            PapiConfig {
                overhead_instructions: 0,
                ..Default::default()
            },
        )
        .unwrap();
        let es = papi.create_eventset();
        papi.attach(es, Attach::Task(pid)).unwrap();
        papi.add_named(es, "adl_glc::INST_RETIRED:ANY").unwrap();
        papi.start(es).unwrap();
        run_all(&kernel);
        let mut acc = [0u64; 1];
        papi.accum(es, &mut acc).unwrap();
        assert_eq!(acc[0], 5_000_000);
        // After reset, a second accum adds nothing.
        papi.accum(es, &mut acc).unwrap();
        assert_eq!(acc[0], 5_000_000);
        // Length mismatch.
        let mut wrong = [0u64; 2];
        assert!(papi.accum(es, &mut wrong).is_err());
    }

    #[test]
    fn components_reflect_mode() {
        let kernel = boot(MachineSpec::raptor_lake_i7_13700());
        let hybrid = Papi::init(kernel.clone()).unwrap();
        let comps = hybrid.components();
        let uncore = comps
            .iter()
            .find(|c| c.name == "perf_event_uncore")
            .unwrap();
        assert!(uncore.deprecated && !uncore.enabled, "§V.3 merge");
        let legacy = Papi::init_legacy(kernel).unwrap();
        let comps = legacy.components();
        let uncore = comps
            .iter()
            .find(|c| c.name == "perf_event_uncore")
            .unwrap();
        assert!(!uncore.deprecated && uncore.enabled);
    }

    #[test]
    fn hardware_info_reports_core_types() {
        let kernel = boot(MachineSpec::raptor_lake_i7_13700());
        let papi = Papi::init(kernel).unwrap();
        let hw = papi.hardware_info();
        assert!(hw.heterogeneous);
        assert_eq!(hw.core_types.len(), 2);
        assert!(papi.detection_report().is_hybrid());
    }

    #[test]
    fn instrumented_caliper_run() {
        // A miniature §IV.F: caliper around a 1 M instruction region.
        let kernel = boot(MachineSpec::raptor_lake_i7_13700());
        let pid = kernel.lock().spawn(
            "calipered",
            Box::new(ScriptedProgram::new([
                Op::Call(HookId(1)),
                Op::Compute(Phase::scalar(1_000_000)),
                Op::Call(HookId(2)),
                Op::Exit,
            ])),
            CpuMask::from_cpus([0]),
            0,
        );
        let mut papi = Papi::init(kernel).unwrap();
        let es = papi.create_eventset();
        papi.attach(es, Attach::Task(pid)).unwrap();
        papi.add_named(es, "adl_glc::INST_RETIRED:ANY").unwrap();
        papi.add_named(es, "adl_grt::INST_RETIRED:ANY").unwrap();
        let results = papi
            .run_instrumented(es, HookId(1), HookId(2), 60_000_000_000)
            .unwrap();
        assert_eq!(results.len(), 1);
        let p = results[0][0].1;
        let e = results[0][1].1;
        assert_eq!(p + e, 1_000_000 + 4_300);
        assert_eq!(e, 0, "pinned to a P core");
    }

    #[test]
    fn destroy_closes_fds() {
        let kernel = boot(MachineSpec::raptor_lake_i7_13700());
        let pid = spawn_loop(&kernel, CpuMask::from_cpus([0]), 1_000_000);
        let mut papi = Papi::init(kernel.clone()).unwrap();
        let es = papi.create_eventset();
        papi.attach(es, Attach::Task(pid)).unwrap();
        papi.add_named(es, "INST_RETIRED").unwrap();
        papi.start(es).unwrap();
        run_all(&kernel);
        papi.stop(es).unwrap();
        papi.destroy_eventset(es).unwrap();
        assert!(matches!(papi.read(es), Err(PapiError::NoSuchEventSet)));
    }

    #[test]
    fn multiplex_mode_single_event_groups() {
        let kernel = boot(MachineSpec::raptor_lake_i7_13700());
        let pid = spawn_loop(&kernel, CpuMask::from_cpus([0]), 400_000_000);
        let mut papi = Papi::init(kernel.clone()).unwrap();
        let es = papi.create_eventset();
        papi.attach(es, Attach::Task(pid)).unwrap();
        papi.set_multiplex(es).unwrap();
        // 10 events: more than the 8 GP + fixed counters → must multiplex.
        for _ in 0..10 {
            papi.add_named(es, "adl_glc::BR_INST_RETIRED:ALL_BRANCHES")
                .unwrap();
        }
        assert_eq!(papi.num_groups(es).unwrap(), 10);
        papi.start(es).unwrap();
        run_all(&kernel);
        let v = papi.stop(es).unwrap();
        let truth = 400_000_000.0 * 0.08;
        for (_, val) in v {
            let err = (val as f64 - truth).abs() / truth;
            assert!(err < 0.3, "scaled multiplex estimate off by {err:.2}");
        }
    }

    #[test]
    fn unschedulable_group_auto_falls_back_to_multiplex() {
        use simos::faults::{FaultKind, FaultPlan};
        let kernel = boot(MachineSpec::raptor_lake_i7_13700());
        kernel.lock().install_faults(&FaultPlan::new(2).at(
            0,
            FaultKind::NmiWatchdog {
                steal: simcpu::events::ArchEvent::Instructions,
                hold_ns: None,
            },
        ));
        let pid = spawn_loop(&kernel, CpuMask::from_cpus([0]), 400_000_000);
        let mut papi = Papi::init(kernel.clone()).unwrap();
        let es = papi.create_eventset();
        papi.attach(es, Attach::Task(pid)).unwrap();
        // INST_RETIRED's fixed counter is stolen, so this 9-event group
        // needs 9 GP counters on an 8-GP PMU: never co-schedulable.
        papi.add_named(es, "adl_glc::INST_RETIRED:ANY").unwrap();
        for _ in 0..8 {
            papi.add_named(es, "adl_glc::BR_INST_RETIRED:ALL_BRANCHES")
                .unwrap();
        }
        assert_eq!(papi.num_groups(es).unwrap(), 1);
        papi.start(es).unwrap();
        assert_eq!(
            papi.num_groups(es).unwrap(),
            9,
            "start() must fall back to single-event groups"
        );
        run_all(&kernel);
        let q = papi.read_with_quality(es).unwrap();
        assert!(
            q.iter().any(|(_, _, qq)| *qq == ReadQuality::Scaled),
            "rotation must be flagged: {q:?}"
        );
        let inst = q[0].1 as f64;
        let truth = 400_000_000.0;
        assert!(
            (inst - truth).abs() / truth < 0.3,
            "scaled estimate usable: {inst}"
        );
    }

    #[test]
    fn topdown_only_addable_for_p_pmu() {
        let kernel = boot(MachineSpec::raptor_lake_i7_13700());
        let mut papi = Papi::init(kernel).unwrap();
        let es = papi.create_eventset();
        assert!(papi.add_named(es, "adl_glc::TOPDOWN:SLOTS").is_ok());
        assert!(matches!(
            papi.add_named(es, "adl_grt::TOPDOWN:SLOTS"),
            Err(PapiError::NoSuchEvent(_))
        ));
    }

    #[test]
    fn overflow_records_every_threshold() {
        let kernel = boot(MachineSpec::raptor_lake_i7_13700());
        let pid = spawn_loop(&kernel, CpuMask::from_cpus([0]), 10_000_000);
        let mut papi = Papi::init_with(
            kernel.clone(),
            PapiConfig {
                overhead_instructions: 0,
                ..Default::default()
            },
        )
        .unwrap();
        let es = papi.create_eventset();
        papi.attach(es, Attach::Task(pid)).unwrap();
        papi.add_named(es, "adl_glc::INST_RETIRED:ANY").unwrap();
        papi.set_overflow(es, 0, 1_000_000).unwrap();
        papi.start(es).unwrap();
        // Mid-run drain picks up the overflows so far…
        for _ in 0..3 {
            kernel.lock().tick();
        }
        let early = papi.take_overflows(es, 0).unwrap();
        run_all(&kernel);
        let late = papi.take_overflows(es, 0).unwrap();
        assert_eq!(early.len() + late.len(), 10, "10 M / 1 M threshold");
        // Overflow values are non-decreasing snapshots of the counter
        // (several overflows within one tick share the tick-end value).
        let mut last = 0;
        for (_, cpu, v) in early.iter().chain(&late) {
            assert_eq!(*cpu, 0, "pinned to cpu0");
            assert!(*v >= last);
            last = *v;
        }
        assert_eq!(last, 10_000_000);
        // A second drain returns nothing.
        assert!(papi.take_overflows(es, 0).unwrap().is_empty());
        // Arming after open is rejected.
        assert!(matches!(
            papi.set_overflow(es, 0, 5),
            Err(PapiError::State(_))
        ));
        // Zero threshold rejected on a fresh set.
        let es2 = papi.create_eventset();
        assert!(papi.set_overflow(es2, 0, 0).is_err());
    }

    #[test]
    fn imc_bandwidth_on_llc_less_machine() {
        // The RK3399 has no L3 (hence no uncore_llc PMU), but its memory
        // controller PMU still measures DRAM traffic through an ordinary
        // hybrid EventSet.
        let kernel = boot(MachineSpec::orangepi_800());
        let pid = kernel.lock().spawn(
            "stream",
            Box::new(ScriptedProgram::new([
                Op::Compute(Phase::stream(50_000_000, 1 << 30)),
                Op::Exit,
            ])),
            CpuMask::from_cpus([0]),
            0,
        );
        let mut papi = Papi::init(kernel.clone()).unwrap();
        assert!(papi.pfm().pmu_by_pfm_name("unc_llc").is_none());
        let es = papi.create_eventset();
        papi.attach(es, Attach::Task(pid)).unwrap();
        papi.add_named(es, "arm_ac72::INST_RETIRED").unwrap();
        papi.add_named(es, "unc_imc::UNC_M_CAS_COUNT:RD").unwrap();
        papi.add_named(es, "unc_imc::UNC_M_CAS_COUNT:WR").unwrap();
        papi.start(es).unwrap();
        run_all(&kernel);
        let v = papi.stop(es).unwrap();
        assert!(v[1].1 > 0 && v[2].1 > 0, "DRAM CAS counted: {v:?}");
        assert!(v[1].1 > v[2].1, "read-dominated split");
    }

    #[test]
    fn software_events_join_hybrid_eventset() {
        // perf_sw::CPU_MIGRATIONS alongside both core PMUs: PAPI itself
        // observes the §IV.F migrations.
        let kernel = boot(MachineSpec::raptor_lake_i7_13700());
        let pid = spawn_loop(&kernel, CpuMask::from_cpus([0]), 100_000_000);
        let mut papi = Papi::init(kernel.clone()).unwrap();
        let es = papi.create_eventset();
        papi.attach(es, Attach::Task(pid)).unwrap();
        papi.add_named(es, "adl_glc::INST_RETIRED:ANY").unwrap();
        papi.add_named(es, "adl_grt::INST_RETIRED:ANY").unwrap();
        papi.add_named(es, "perf_sw::CPU_MIGRATIONS").unwrap();
        papi.add_named(es, "perf_sw::CONTEXT_SWITCHES").unwrap();
        assert_eq!(papi.num_groups(es).unwrap(), 3);
        papi.start(es).unwrap();
        // Bounce the task to the E cores and back mid-run.
        for _ in 0..5 {
            kernel.lock().tick();
        }
        kernel
            .lock()
            .set_affinity(pid, CpuMask::from_cpus([16]))
            .unwrap();
        for _ in 0..5 {
            kernel.lock().tick();
        }
        kernel
            .lock()
            .set_affinity(pid, CpuMask::from_cpus([0]))
            .unwrap();
        run_all(&kernel);
        let v = papi.stop(es).unwrap();
        assert!(v[0].1 > 0, "P instructions: {v:?}");
        assert!(v[1].1 > 0, "E instructions: {v:?}");
        assert!(v[2].1 >= 2, "migrations observed by PAPI: {v:?}");
        assert!(v[3].1 >= v[2].1, "switches ≥ migrations: {v:?}");
    }

    #[test]
    fn software_presets_count_in_hybrid_mode() {
        // The new sw presets resolve through the data table (already
        // PMU-prefixed → no per-core-type expansion) and count next to a
        // derived hardware preset in one EventSet.
        let kernel = boot(MachineSpec::raptor_lake_i7_13700());
        let pid = spawn_loop(&kernel, CpuMask::from_cpus([0]), 10_000_000);
        let mut papi = Papi::init(kernel.clone()).unwrap();
        for name in ["PAPI_CTX_SW", "PAPI_CPU_MIG", "PAPI_PG_FLT", "PAPI_TSK_CLK"] {
            assert!(papi.preset_names().contains(&name.to_string()), "{name}");
        }
        let es = papi.create_eventset();
        papi.attach(es, Attach::Task(pid)).unwrap();
        papi.add_preset_named(es, "PAPI_TOT_INS").unwrap();
        papi.add_preset_named(es, "PAPI_PG_FLT").unwrap();
        papi.add_preset_named(es, "PAPI_TSK_CLK").unwrap();
        papi.add_preset_named(es, "PAPI_CPU_MIG").unwrap();
        papi.start(es).unwrap();
        run_all(&kernel);
        let v = papi.stop(es).unwrap();
        assert_eq!(v[0].1, 10_000_000 + 4_300);
        // scalar phases (loop + injected overhead) share one 8 KiB
        // working set: exactly two first-touch faults, ever.
        assert_eq!(v[1].1, 2, "first-touch faults: {v:?}");
        assert!(v[2].1 > 0, "task clock advanced: {v:?}");
        assert_eq!(v[3].1, 0, "pinned task never migrates: {v:?}");
    }

    #[test]
    fn software_presets_work_in_legacy_mode() {
        // Legacy mode must not mangle already-prefixed natives into
        // "adl_glc::perf_sw::…".
        let kernel = boot(MachineSpec::raptor_lake_i7_13700());
        let pid = spawn_loop(&kernel, CpuMask::from_cpus([0]), 1_000_000);
        let mut papi = Papi::init_legacy(kernel.clone()).unwrap();
        let es = papi.create_eventset();
        papi.attach(es, Attach::Task(pid)).unwrap();
        papi.add_preset_named(es, "PAPI_CTX_SW").unwrap();
        assert_eq!(
            papi.native_names(es).unwrap(),
            vec!["perf_sw::CONTEXT_SWITCHES"]
        );
        papi.start(es).unwrap();
        run_all(&kernel);
        let v = papi.stop(es).unwrap();
        assert!(v[0].1 >= 1, "task switched in at least once: {v:?}");
    }

    #[test]
    fn arm_biglittle_eventset() {
        let kernel = boot(MachineSpec::orangepi_800());
        let pid = spawn_loop(&kernel, CpuMask::from_cpus([0]), 2_000_000); // big core
        let mut papi = Papi::init(kernel.clone()).unwrap();
        let es = papi.create_eventset();
        papi.attach(es, Attach::Task(pid)).unwrap();
        papi.add_named(es, "arm_ac72::INST_RETIRED").unwrap();
        papi.add_named(es, "arm_ac53::INST_RETIRED").unwrap();
        papi.start(es).unwrap();
        run_all(&kernel);
        let v = papi.stop(es).unwrap();
        assert_eq!(v[0].1, 2_000_000 + 4_300);
        assert_eq!(v[1].1, 0);
    }
}
