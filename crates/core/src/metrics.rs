//! Derived metrics over measured values.
//!
//! PAPI users rarely want raw counts; they want IPC, miss rates, FLOP
//! rates. On hybrid machines these divide *sums* of per-core-type events
//! (the derived-add presets), which is exactly what makes them meaningful
//! again on P+E systems — divide only the P half by the combined cycles
//! and the ratio is nonsense. These helpers work on the labeled value
//! vectors `read`/`stop` return.

use crate::Values;

/// Look up a value by exact label.
pub fn value(values: &Values, label: &str) -> Option<u64> {
    values.iter().find(|(l, _)| l == label).map(|(_, v)| *v)
}

/// Ratio of two labeled values (None if either is missing or the
/// denominator is zero).
pub fn ratio(values: &Values, num: &str, den: &str) -> Option<f64> {
    let n = value(values, num)? as f64;
    let d = value(values, den)? as f64;
    if d == 0.0 {
        None
    } else {
        Some(n / d)
    }
}

/// Instructions per cycle from `PAPI_TOT_INS` / `PAPI_TOT_CYC`.
pub fn ipc(values: &Values) -> Option<f64> {
    ratio(values, "PAPI_TOT_INS", "PAPI_TOT_CYC")
}

/// Last-level cache miss rate from `PAPI_L3_TCM` / `PAPI_L3_TCA`.
pub fn llc_miss_rate(values: &Values) -> Option<f64> {
    ratio(values, "PAPI_L3_TCM", "PAPI_L3_TCA")
}

/// Branch mispredict rate from `PAPI_BR_MSP` / `PAPI_BR_INS`.
pub fn branch_miss_rate(values: &Values) -> Option<f64> {
    ratio(values, "PAPI_BR_MSP", "PAPI_BR_INS")
}

/// GFLOP/s from `PAPI_FP_OPS` over a wall time in seconds.
pub fn gflops(values: &Values, wall_s: f64) -> Option<f64> {
    if wall_s <= 0.0 {
        return None;
    }
    Some(value(values, "PAPI_FP_OPS")? as f64 / wall_s / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals() -> Values {
        vec![
            ("PAPI_TOT_INS".into(), 2_000_000),
            ("PAPI_TOT_CYC".into(), 1_000_000),
            ("PAPI_L3_TCA".into(), 10_000),
            ("PAPI_L3_TCM".into(), 8_600),
            ("PAPI_BR_INS".into(), 160_000),
            ("PAPI_BR_MSP".into(), 160),
            ("PAPI_FP_OPS".into(), 7_200_000),
        ]
    }

    #[test]
    fn basic_metrics() {
        let v = vals();
        assert_eq!(ipc(&v), Some(2.0));
        assert_eq!(llc_miss_rate(&v), Some(0.86));
        assert_eq!(branch_miss_rate(&v), Some(0.001));
        assert_eq!(gflops(&v, 0.001), Some(7.2));
    }

    #[test]
    fn missing_and_zero_denominators() {
        let v = vals();
        assert_eq!(ratio(&v, "PAPI_TOT_INS", "PAPI_NOPE"), None);
        assert_eq!(ratio(&v, "PAPI_NOPE", "PAPI_TOT_CYC"), None);
        let z: Values = vec![("A".into(), 1), ("B".into(), 0)];
        assert_eq!(ratio(&z, "A", "B"), None);
        assert_eq!(gflops(&v, 0.0), None);
    }

    /// End-to-end: compute IPC from a real measured EventSet.
    #[test]
    fn ipc_from_live_eventset() {
        use crate::{Attach, Papi, Preset};
        use simcpu::machine::MachineSpec;
        use simcpu::phase::Phase;
        use simcpu::types::CpuMask;
        use simos::kernel::{Kernel, KernelConfig};
        use simos::task::{Op, ScriptedProgram};

        let kernel =
            Kernel::boot_handle(MachineSpec::raptor_lake_i7_13700(), KernelConfig::default());
        let pid = kernel.lock().spawn(
            "w",
            Box::new(ScriptedProgram::new([
                Op::Compute(Phase::scalar(5_000_000)),
                Op::Exit,
            ])),
            CpuMask::from_cpus([0, 16]),
            0,
        );
        let mut papi = Papi::init(kernel.clone()).unwrap();
        let es = papi.create_eventset();
        papi.attach(es, Attach::Task(pid)).unwrap();
        papi.add_preset(es, Preset::TotIns).unwrap();
        papi.add_preset(es, Preset::TotCyc).unwrap();
        papi.start(es).unwrap();
        kernel.lock().run_to_completion(60_000_000_000);
        let v = papi.stop(es).unwrap();
        let ipc = ipc(&v).unwrap();
        // A scalar loop on GoldenCove runs near (but below) its 4.6-wide
        // issue limit.
        assert!((2.0..=4.6).contains(&ipc), "ipc = {ipc}");
    }
}
