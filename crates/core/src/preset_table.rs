//! The preset definition table — `PAPI_events.csv`, hybrid edition.
//!
//! Real PAPI defines presets in a CSV keyed by CPU family/model. §V.2 of
//! the paper points out this breaks on hybrid Intel parts (one
//! family/model covers two different core PMUs) and says the parser "will
//! have to be modified to be aware of the existence of E and P core
//! availability". This module is that modification: definitions are keyed
//! by *vendor* and expanded per detected core-type PMU at add time, with
//! DERIVED_ADD across however many core types the machine has.
//!
//! Format (one definition per line):
//!
//! ```text
//! # name,derived,vendor=native[,vendor=native...]
//! PAPI_TOT_INS,DERIVED_ADD,intel=INST_RETIRED:ANY,arm=INST_RETIRED
//! ```
//!
//! Users may extend or override the built-in table at runtime with
//! [`crate::Papi::load_preset_csv`].

use simcpu::uarch::Vendor;
use std::collections::HashMap;

/// How a preset's member counts combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DerivedKind {
    /// Sum of all member events (the only kind hybrid expansion needs).
    Add,
}

/// One preset definition.
#[derive(Debug, Clone)]
pub struct PresetDef {
    pub name: String,
    pub derived: DerivedKind,
    /// Per-vendor unprefixed native event name.
    pub natives: HashMap<&'static str, String>,
}

impl PresetDef {
    /// The native event for a vendor, if defined.
    pub fn native_for(&self, vendor: Vendor) -> Option<&str> {
        let key = vendor_key(vendor);
        self.natives.get(key).map(|s| s.as_str())
    }
}

fn vendor_key(v: Vendor) -> &'static str {
    match v {
        Vendor::Intel => "intel",
        Vendor::Arm => "arm",
    }
}

/// Parse errors, with 1-based line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PresetTableError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for PresetTableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "preset table line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PresetTableError {}

/// Parse a preset CSV. Later definitions of the same name override
/// earlier ones (so user tables can patch the built-in one).
pub fn parse_preset_csv(text: &str) -> Result<Vec<PresetDef>, PresetTableError> {
    let mut out: Vec<PresetDef> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split(',');
        let name = fields
            .next()
            .filter(|n| !n.is_empty())
            .ok_or_else(|| err(line, "missing preset name"))?
            .trim()
            .to_ascii_uppercase();
        if !name.starts_with("PAPI_") {
            return Err(err(line, "preset names must start with PAPI_"));
        }
        let derived = match fields
            .next()
            .ok_or_else(|| err(line, "missing derived kind"))?
            .trim()
            .to_ascii_uppercase()
            .as_str()
        {
            "DERIVED_ADD" | "NOT_DERIVED" => DerivedKind::Add,
            other => return Err(err(line, &format!("unknown derived kind '{other}'"))),
        };
        let mut natives = HashMap::new();
        for field in fields {
            let field = field.trim();
            if field.is_empty() {
                continue;
            }
            let (vendor, native) = field
                .split_once('=')
                .ok_or_else(|| err(line, &format!("expected vendor=native, got '{field}'")))?;
            let key = match vendor.trim().to_ascii_lowercase().as_str() {
                "intel" => "intel",
                "arm" => "arm",
                other => return Err(err(line, &format!("unknown vendor '{other}'"))),
            };
            natives.insert(key, native.trim().to_string());
        }
        if natives.is_empty() {
            return Err(err(line, "preset defines no vendor natives"));
        }
        let def = PresetDef {
            name: name.clone(),
            derived,
            natives,
        };
        if let Some(existing) = out.iter_mut().find(|d| d.name == name) {
            *existing = def; // override
        } else {
            out.push(def);
        }
    }
    Ok(out)
}

fn err(line: usize, message: &str) -> PresetTableError {
    PresetTableError {
        line,
        message: message.to_string(),
    }
}

/// The built-in table — the same definitions as [`crate::presets::Preset`],
/// in data form.
pub const BUILTIN_CSV: &str = "\
# PAPI preset definitions (hybrid-aware): name,derived,vendor=native,...
PAPI_TOT_INS,DERIVED_ADD,intel=INST_RETIRED:ANY,arm=INST_RETIRED
PAPI_TOT_CYC,DERIVED_ADD,intel=CPU_CLK_UNHALTED:THREAD,arm=CPU_CYCLES
PAPI_REF_CYC,DERIVED_ADD,intel=CPU_CLK_UNHALTED:REF_TSC
PAPI_BR_INS,DERIVED_ADD,intel=BR_INST_RETIRED:ALL_BRANCHES,arm=BR_RETIRED
PAPI_BR_MSP,DERIVED_ADD,intel=BR_MISP_RETIRED:ALL_BRANCHES,arm=BR_MIS_PRED_RETIRED
PAPI_L1_DCM,DERIVED_ADD,intel=L1D:REPLACEMENT,arm=L1D_CACHE_REFILL
PAPI_L2_TCA,DERIVED_ADD,intel=L2_RQSTS:REFERENCES,arm=L2D_CACHE
PAPI_L2_TCM,DERIVED_ADD,intel=L2_RQSTS:MISS,arm=L2D_CACHE_REFILL
PAPI_L3_TCA,DERIVED_ADD,intel=LONGEST_LAT_CACHE:REFERENCE,arm=LL_CACHE_RD
PAPI_L3_TCM,DERIVED_ADD,intel=LONGEST_LAT_CACHE:MISS,arm=LL_CACHE_MISS_RD
PAPI_FP_OPS,DERIVED_ADD,intel=FP_ARITH_INST_RETIRED:ALL,arm=VFP_SPEC
PAPI_VEC_INS,DERIVED_ADD,intel=UOPS_RETIRED:VECTOR,arm=ASE_SPEC
PAPI_RES_STL,DERIVED_ADD,intel=CYCLE_ACTIVITY:STALLS_MEM_ANY,arm=STALL_BACKEND
PAPI_TLB_DM,DERIVED_ADD,intel=DTLB_LOAD_MISSES:WALK_COMPLETED,arm=DTLB_WALK
PAPI_CTX_SW,DERIVED_ADD,intel=perf_sw::CONTEXT_SWITCHES,arm=perf_sw::CONTEXT_SWITCHES
PAPI_CPU_MIG,DERIVED_ADD,intel=perf_sw::CPU_MIGRATIONS,arm=perf_sw::CPU_MIGRATIONS
PAPI_PG_FLT,DERIVED_ADD,intel=perf_sw::PAGE_FAULTS,arm=perf_sw::PAGE_FAULTS
PAPI_TSK_CLK,DERIVED_ADD,intel=perf_sw::TASK_CLOCK,arm=perf_sw::TASK_CLOCK
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_table_parses() {
        let defs = parse_preset_csv(BUILTIN_CSV).unwrap();
        assert_eq!(defs.len(), 18);
        let tot = defs.iter().find(|d| d.name == "PAPI_TOT_INS").unwrap();
        assert_eq!(tot.native_for(Vendor::Intel), Some("INST_RETIRED:ANY"));
        assert_eq!(tot.native_for(Vendor::Arm), Some("INST_RETIRED"));
        // REF_CYC has no ARM native.
        let rc = defs.iter().find(|d| d.name == "PAPI_REF_CYC").unwrap();
        assert_eq!(rc.native_for(Vendor::Arm), None);
    }

    #[test]
    fn builtin_matches_enum_presets() {
        // The data table and the enum must agree (one source of truth
        // would be nicer; the test keeps them honest).
        let defs = parse_preset_csv(BUILTIN_CSV).unwrap();
        for &p in crate::presets::ALL_PRESETS {
            let def = defs
                .iter()
                .find(|d| d.name == p.papi_name())
                .unwrap_or_else(|| panic!("{} missing from CSV", p.papi_name()));
            for vendor in [Vendor::Intel, Vendor::Arm] {
                assert_eq!(
                    def.native_for(vendor),
                    p.native_name(vendor),
                    "{} on {vendor:?}",
                    p.papi_name()
                );
            }
        }
    }

    #[test]
    fn override_semantics() {
        let text = "\
PAPI_TOT_INS,DERIVED_ADD,intel=INST_RETIRED:ANY
PAPI_TOT_INS,DERIVED_ADD,intel=INST_RETIRED:ANY_P
";
        let defs = parse_preset_csv(text).unwrap();
        assert_eq!(defs.len(), 1);
        assert_eq!(
            defs[0].native_for(Vendor::Intel),
            Some("INST_RETIRED:ANY_P")
        );
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let defs = parse_preset_csv("# hi\n\n  \nPAPI_X,DERIVED_ADD,arm=CPU_CYCLES\n").unwrap();
        assert_eq!(defs.len(), 1);
        assert_eq!(defs[0].name, "PAPI_X");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_preset_csv("PAPI_OK,DERIVED_ADD,intel=A\nnot_papi,DERIVED_ADD,intel=A")
            .unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("PAPI_"));
        let e2 = parse_preset_csv("PAPI_A,BOGUS_KIND,intel=A").unwrap_err();
        assert!(e2.message.contains("BOGUS_KIND"));
        let e3 = parse_preset_csv("PAPI_A,DERIVED_ADD,vax=A").unwrap_err();
        assert!(e3.message.contains("vax"));
        let e4 = parse_preset_csv("PAPI_A,DERIVED_ADD").unwrap_err();
        assert!(e4.message.contains("no vendor natives"));
        let e5 = parse_preset_csv("PAPI_A,DERIVED_ADD,intelA").unwrap_err();
        assert!(e5.message.contains("vendor=native"));
    }

    #[test]
    fn case_insensitive_fields() {
        let defs = parse_preset_csv("papi_tot_ins,derived_add,INTEL=INST_RETIRED:ANY").unwrap();
        assert_eq!(defs[0].name, "PAPI_TOT_INS");
        assert!(defs[0].native_for(Vendor::Intel).is_some());
    }
}
