//! PAPI preset events and their hybrid "derived-add" expansion.
//!
//! Presets (`PAPI_TOT_INS`, `PAPI_L3_TCM`, …) let users name common
//! quantities without knowing vendor event spellings. On a homogeneous
//! machine a preset maps to one native event. On a hybrid machine the
//! paper's §V.2 plan applies: the preset becomes a *derived* event that
//! opens the equivalent native event on **every** core-type PMU and sums
//! the results — `PAPI_TOT_INS = adl_glc::INST_RETIRED:ANY +
//! adl_grt::INST_RETIRED:ANY` — so users do not have to care that they are
//! on a hybrid machine.
//!
//! The table is keyed by vendor-generic *unprefixed* native names, which
//! `pfmlib` resolves per default PMU; a preset is unavailable on machines
//! where no default PMU has the native event (e.g. `PAPI_REF_CYC` on ARM).

use simcpu::uarch::Vendor;

/// The preset events this implementation defines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Preset {
    /// Total retired instructions.
    TotIns,
    /// Total cycles.
    TotCyc,
    /// Reference cycles (Intel only).
    RefCyc,
    /// Branch instructions.
    BrIns,
    /// Mispredicted branches.
    BrMsp,
    /// L1 data cache misses.
    L1Dcm,
    /// L2 total accesses.
    L2Tca,
    /// L2 total misses.
    L2Tcm,
    /// L3 (last-level) total accesses.
    L3Tca,
    /// L3 (last-level) total misses.
    L3Tcm,
    /// Double-precision FLOPs.
    FpOps,
    /// Vector/SIMD instructions.
    VecIns,
    /// Cycles stalled on any resource (memory in this model).
    ResStl,
    /// Data TLB misses.
    TlbDm,
    /// Context switches (software event, kernel-counted).
    CtxSw,
    /// Cross-CPU migrations (software event).
    CpuMig,
    /// Minor page faults (software event).
    PgFlt,
    /// Task clock: wall time the target ran, ns (software event).
    TskClk,
}

/// All presets, for enumeration APIs.
pub const ALL_PRESETS: &[Preset] = &[
    Preset::TotIns,
    Preset::TotCyc,
    Preset::RefCyc,
    Preset::BrIns,
    Preset::BrMsp,
    Preset::L1Dcm,
    Preset::L2Tca,
    Preset::L2Tcm,
    Preset::L3Tca,
    Preset::L3Tcm,
    Preset::FpOps,
    Preset::VecIns,
    Preset::ResStl,
    Preset::TlbDm,
    Preset::CtxSw,
    Preset::CpuMig,
    Preset::PgFlt,
    Preset::TskClk,
];

impl Preset {
    /// The classic PAPI name.
    pub fn papi_name(self) -> &'static str {
        match self {
            Preset::TotIns => "PAPI_TOT_INS",
            Preset::TotCyc => "PAPI_TOT_CYC",
            Preset::RefCyc => "PAPI_REF_CYC",
            Preset::BrIns => "PAPI_BR_INS",
            Preset::BrMsp => "PAPI_BR_MSP",
            Preset::L1Dcm => "PAPI_L1_DCM",
            Preset::L2Tca => "PAPI_L2_TCA",
            Preset::L2Tcm => "PAPI_L2_TCM",
            Preset::L3Tca => "PAPI_L3_TCA",
            Preset::L3Tcm => "PAPI_L3_TCM",
            Preset::FpOps => "PAPI_FP_OPS",
            Preset::VecIns => "PAPI_VEC_INS",
            Preset::ResStl => "PAPI_RES_STL",
            Preset::TlbDm => "PAPI_TLB_DM",
            Preset::CtxSw => "PAPI_CTX_SW",
            Preset::CpuMig => "PAPI_CPU_MIG",
            Preset::PgFlt => "PAPI_PG_FLT",
            Preset::TskClk => "PAPI_TSK_CLK",
        }
    }

    /// Parse a `PAPI_*` name.
    pub fn from_papi_name(name: &str) -> Option<Preset> {
        ALL_PRESETS
            .iter()
            .copied()
            .find(|p| p.papi_name() == name.to_ascii_uppercase())
    }

    /// The unprefixed native event name implementing this preset for a
    /// vendor, or `None` when the vendor has no equivalent.
    pub fn native_name(self, vendor: Vendor) -> Option<&'static str> {
        match (self, vendor) {
            (Preset::TotIns, Vendor::Intel) => Some("INST_RETIRED:ANY"),
            (Preset::TotIns, Vendor::Arm) => Some("INST_RETIRED"),
            (Preset::TotCyc, Vendor::Intel) => Some("CPU_CLK_UNHALTED:THREAD"),
            (Preset::TotCyc, Vendor::Arm) => Some("CPU_CYCLES"),
            (Preset::RefCyc, Vendor::Intel) => Some("CPU_CLK_UNHALTED:REF_TSC"),
            (Preset::RefCyc, Vendor::Arm) => None, // no ARM equivalent here
            (Preset::BrIns, Vendor::Intel) => Some("BR_INST_RETIRED:ALL_BRANCHES"),
            (Preset::BrIns, Vendor::Arm) => Some("BR_RETIRED"),
            (Preset::BrMsp, Vendor::Intel) => Some("BR_MISP_RETIRED:ALL_BRANCHES"),
            (Preset::BrMsp, Vendor::Arm) => Some("BR_MIS_PRED_RETIRED"),
            (Preset::L1Dcm, Vendor::Intel) => Some("L1D:REPLACEMENT"),
            (Preset::L1Dcm, Vendor::Arm) => Some("L1D_CACHE_REFILL"),
            (Preset::L2Tca, Vendor::Intel) => Some("L2_RQSTS:REFERENCES"),
            (Preset::L2Tca, Vendor::Arm) => Some("L2D_CACHE"),
            (Preset::L2Tcm, Vendor::Intel) => Some("L2_RQSTS:MISS"),
            (Preset::L2Tcm, Vendor::Arm) => Some("L2D_CACHE_REFILL"),
            (Preset::L3Tca, Vendor::Intel) => Some("LONGEST_LAT_CACHE:REFERENCE"),
            (Preset::L3Tca, Vendor::Arm) => Some("LL_CACHE_RD"),
            (Preset::L3Tcm, Vendor::Intel) => Some("LONGEST_LAT_CACHE:MISS"),
            (Preset::L3Tcm, Vendor::Arm) => Some("LL_CACHE_MISS_RD"),
            (Preset::FpOps, Vendor::Intel) => Some("FP_ARITH_INST_RETIRED:ALL"),
            (Preset::FpOps, Vendor::Arm) => Some("VFP_SPEC"),
            (Preset::VecIns, Vendor::Intel) => Some("UOPS_RETIRED:VECTOR"),
            (Preset::VecIns, Vendor::Arm) => Some("ASE_SPEC"),
            (Preset::ResStl, Vendor::Intel) => Some("CYCLE_ACTIVITY:STALLS_MEM_ANY"),
            (Preset::ResStl, Vendor::Arm) => Some("STALL_BACKEND"),
            (Preset::TlbDm, Vendor::Intel) => Some("DTLB_LOAD_MISSES:WALK_COMPLETED"),
            (Preset::TlbDm, Vendor::Arm) => Some("DTLB_WALK"),
            // Software events come from the kernel, not the core PMU:
            // vendor-independent, already PMU-prefixed so they bypass the
            // per-core-type hybrid expansion.
            (Preset::CtxSw, _) => Some("perf_sw::CONTEXT_SWITCHES"),
            (Preset::CpuMig, _) => Some("perf_sw::CPU_MIGRATIONS"),
            (Preset::PgFlt, _) => Some("perf_sw::PAGE_FAULTS"),
            (Preset::TskClk, _) => Some("perf_sw::TASK_CLOCK"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for &p in ALL_PRESETS {
            assert_eq!(Preset::from_papi_name(p.papi_name()), Some(p));
        }
        assert_eq!(Preset::from_papi_name("papi_tot_ins"), Some(Preset::TotIns));
        assert_eq!(Preset::from_papi_name("PAPI_NOPE"), None);
    }

    #[test]
    fn every_preset_has_an_intel_native() {
        for &p in ALL_PRESETS {
            assert!(p.native_name(Vendor::Intel).is_some(), "{p:?}");
        }
    }

    #[test]
    fn ref_cyc_is_intel_only() {
        assert!(Preset::RefCyc.native_name(Vendor::Arm).is_none());
        assert!(Preset::TotIns.native_name(Vendor::Arm).is_some());
    }
}
