//! The sysdetect component: discovering what core types a machine has.
//!
//! §IV.B of the paper: "Currently Linux has no standard way of doing
//! this." So PAPI has to try a ladder of platform-specific probes, each of
//! which works on some machines and not others. This module implements all
//! five, *purely through the simulated sysfs/cpuid surface* (no peeking at
//! the machine spec), and records which ones worked:
//!
//! 1. `cpu_capacity` — ARM only;
//! 2. `/proc/cpuinfo` MIDR part numbers — ARM only (Intel hybrid parts are
//!    indistinguishable there);
//! 3. `cpuid` leaf 0x1A — Intel hybrid only;
//! 4. PMU `cpus` files under `/sys/devices/` — works on both, but PMU
//!    directory names vary (devicetree vs ACPI);
//! 5. `cpuinfo_max_freq` — the last-resort heuristic, "cannot always be
//!    guaranteed to work".

use simos::kernel::Kernel;
use simos::sysfs;

/// The probes, in the order sysdetect tries them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectMethod {
    CpuCapacity,
    CpuinfoMidr,
    CpuidLeaf1A,
    PmuCpusFiles,
    MaxFreqHeuristic,
}

impl DetectMethod {
    pub fn name(self) -> &'static str {
        match self {
            DetectMethod::CpuCapacity => "sysfs cpu_capacity",
            DetectMethod::CpuinfoMidr => "/proc/cpuinfo MIDR",
            DetectMethod::CpuidLeaf1A => "cpuid leaf 0x1A",
            DetectMethod::PmuCpusFiles => "PMU cpus files",
            DetectMethod::MaxFreqHeuristic => "cpuinfo_max_freq heuristic",
        }
    }

    pub fn all() -> &'static [DetectMethod] {
        &[
            DetectMethod::CpuCapacity,
            DetectMethod::CpuinfoMidr,
            DetectMethod::CpuidLeaf1A,
            DetectMethod::PmuCpusFiles,
            DetectMethod::MaxFreqHeuristic,
        ]
    }
}

/// Result of one probe: per-CPU group tags (equal tag = same core type),
/// or why the probe does not apply here.
#[derive(Debug, Clone)]
pub struct MethodOutcome {
    pub method: DetectMethod,
    pub result: Result<Vec<u64>, String>,
}

impl MethodOutcome {
    /// Number of distinct core types this probe found (None on failure).
    pub fn n_types(&self) -> Option<usize> {
        self.result.as_ref().ok().map(|tags| {
            let mut t = tags.clone();
            t.sort();
            t.dedup();
            t.len()
        })
    }
}

/// The full report.
#[derive(Debug, Clone)]
pub struct DetectionReport {
    pub outcomes: Vec<MethodOutcome>,
    /// First successful probe and its per-CPU tags.
    pub chosen: Option<(DetectMethod, Vec<u64>)>,
}

impl DetectionReport {
    /// Distinct core types found by the chosen method (1 on homogeneous).
    pub fn n_core_types(&self) -> usize {
        self.chosen
            .as_ref()
            .map(|(_, tags)| {
                let mut t = tags.clone();
                t.sort();
                t.dedup();
                t.len()
            })
            .unwrap_or(0)
    }

    /// Whether the machine was detected as heterogeneous.
    pub fn is_hybrid(&self) -> bool {
        self.n_core_types() > 1
    }
}

/// Run every probe and pick the first that works.
pub fn detect(kernel: &Kernel) -> DetectionReport {
    let outcomes: Vec<MethodOutcome> = DetectMethod::all()
        .iter()
        .map(|&m| MethodOutcome {
            method: m,
            result: run_method(kernel, m),
        })
        .collect();
    let chosen = outcomes
        .iter()
        .find_map(|o| o.result.as_ref().ok().map(|tags| (o.method, tags.clone())));
    DetectionReport { outcomes, chosen }
}

fn n_cpus(kernel: &Kernel) -> usize {
    // From sysfs, like a real tool would.
    sysfs::read(kernel, "/sys/devices/system/cpu/possible")
        .ok()
        .and_then(|s| s.rsplit('-').next().and_then(|x| x.parse::<usize>().ok()))
        .map(|last| last + 1)
        .unwrap_or(0)
}

fn run_method(kernel: &Kernel, m: DetectMethod) -> Result<Vec<u64>, String> {
    let n = n_cpus(kernel);
    if n == 0 {
        return Err("cannot enumerate CPUs".into());
    }
    match m {
        DetectMethod::CpuCapacity => (0..n)
            .map(|i| {
                sysfs::read(
                    kernel,
                    &format!("/sys/devices/system/cpu/cpu{i}/cpu_capacity"),
                )
                .map_err(|_| "cpu_capacity not present (not an ARM system?)".to_string())
                .and_then(|s| s.parse::<u64>().map_err(|e| e.to_string()))
            })
            .collect(),
        DetectMethod::CpuinfoMidr => {
            let text = sysfs::read(kernel, "/proc/cpuinfo").map_err(|e| e.to_string())?;
            let parts: Vec<u64> = text
                .lines()
                .filter_map(|l| l.strip_prefix("CPU part\t: "))
                .filter_map(|v| u64::from_str_radix(v.trim_start_matches("0x"), 16).ok())
                .collect();
            if parts.len() == n {
                Ok(parts)
            } else {
                Err("no per-CPU part numbers (Intel hybrid cores share \
                     family/model/stepping)"
                    .into())
            }
        }
        DetectMethod::CpuidLeaf1A => {
            let tags: Vec<u64> = (0..n)
                .map(|i| {
                    let (eax, ..) = kernel.cpuid(simcpu::types::CpuId(i), 0x1a);
                    (eax >> 24) as u64
                })
                .collect();
            if tags.iter().all(|&t| t == 0) {
                Err("cpuid leaf 0x1A absent (not hybrid Intel)".into())
            } else {
                Ok(tags)
            }
        }
        DetectMethod::PmuCpusFiles => {
            let dirs = sysfs::list(kernel, "/sys/devices").map_err(|e| e.to_string())?;
            let mut tags = vec![u64::MAX; n];
            let mut group = 0u64;
            for d in dirs {
                // Heuristic: core-PMU directory names.
                let looks_core = d == "cpu" || d.starts_with("cpu_") || d.starts_with("armv8");
                if !looks_core {
                    continue;
                }
                let Ok(cpus) = sysfs::read(kernel, &format!("/sys/devices/{d}/cpus")) else {
                    continue;
                };
                let mask =
                    simcpu::types::CpuMask::parse_cpulist(&cpus).map_err(|e| e.to_string())?;
                for c in mask.iter() {
                    if c.0 < n {
                        tags[c.0] = group;
                    }
                }
                group += 1;
            }
            if tags.contains(&u64::MAX) {
                Err("some CPUs not covered by any core PMU".into())
            } else {
                Ok(tags)
            }
        }
        DetectMethod::MaxFreqHeuristic => (0..n)
            .map(|i| {
                sysfs::read(
                    kernel,
                    &format!("/sys/devices/system/cpu/cpu{i}/cpufreq/cpuinfo_max_freq"),
                )
                .map_err(|e| e.to_string())
                .and_then(|s| s.parse::<u64>().map_err(|e| e.to_string()))
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcpu::machine::MachineSpec;
    use simos::kernel::{Firmware, KernelConfig};

    fn boot(spec: MachineSpec) -> Kernel {
        Kernel::boot(spec, KernelConfig::default())
    }

    fn outcome(r: &DetectionReport, m: DetectMethod) -> &MethodOutcome {
        r.outcomes.iter().find(|o| o.method == m).unwrap()
    }

    #[test]
    fn raptor_lake_detected_via_cpuid() {
        let k = boot(MachineSpec::raptor_lake_i7_13700());
        let r = detect(&k);
        // ARM-only probes fail on Intel.
        assert!(outcome(&r, DetectMethod::CpuCapacity).result.is_err());
        assert!(outcome(&r, DetectMethod::CpuinfoMidr).result.is_err());
        // cpuid leaf 0x1A is the first success.
        let (method, tags) = r.chosen.clone().unwrap();
        assert_eq!(method, DetectMethod::CpuidLeaf1A);
        assert_eq!(tags.len(), 24);
        assert!(r.is_hybrid());
        assert_eq!(r.n_core_types(), 2);
        // The fallbacks also work here.
        assert_eq!(outcome(&r, DetectMethod::PmuCpusFiles).n_types(), Some(2));
        assert_eq!(
            outcome(&r, DetectMethod::MaxFreqHeuristic).n_types(),
            Some(2)
        );
    }

    #[test]
    fn orangepi_detected_via_cpu_capacity() {
        let k = boot(MachineSpec::orangepi_800());
        let r = detect(&k);
        let (method, tags) = r.chosen.clone().unwrap();
        assert_eq!(method, DetectMethod::CpuCapacity);
        assert_eq!(tags, vec![1024, 1024, 446, 446, 446, 446]);
        assert!(r.is_hybrid());
        // MIDR also works on ARM.
        assert_eq!(outcome(&r, DetectMethod::CpuinfoMidr).n_types(), Some(2));
        // cpuid does not.
        assert!(outcome(&r, DetectMethod::CpuidLeaf1A).result.is_err());
    }

    #[test]
    fn acpi_firmware_pmu_scan_still_groups() {
        let k = Kernel::boot(
            MachineSpec::orangepi_800(),
            KernelConfig {
                firmware: Firmware::Acpi,
                ..Default::default()
            },
        );
        let r = detect(&k);
        assert_eq!(outcome(&r, DetectMethod::PmuCpusFiles).n_types(), Some(2));
    }

    #[test]
    fn homogeneous_machine_one_type() {
        let k = boot(MachineSpec::skylake_quad());
        let r = detect(&k);
        assert!(!r.is_hybrid());
        assert_eq!(r.n_core_types(), 1);
        // cpuid leaf 0x1A absent pre-hybrid → the PMU scan decides.
        assert!(outcome(&r, DetectMethod::CpuidLeaf1A).result.is_err());
        assert_eq!(r.chosen.as_ref().unwrap().0, DetectMethod::PmuCpusFiles);
    }

    #[test]
    fn tri_cluster_three_types() {
        let k = boot(MachineSpec::dynamiq_tri());
        let r = detect(&k);
        assert_eq!(r.n_core_types(), 3);
        assert_eq!(r.chosen.as_ref().unwrap().0, DetectMethod::CpuCapacity);
    }
}
