//! Minimal JSON emission and validation, kept dependency-free so the
//! workspace stays `--offline`-friendly (no serde in the vendored set).
//!
//! Two halves:
//!
//! * [`JsonWriter`] — a streaming writer with automatic comma placement
//!   and string escaping, used by the `--json` modes of `papi_avail` and
//!   `simperf stat`, by `loadgen`'s `BENCH_metricsd.json`, and by any
//!   future machine-readable tool output.
//! * [`validate`] — a strict recursive-descent syntax checker, so tests
//!   of every emitter can assert well-formedness without a JSON parser
//!   dependency.

/// Escape a string for inclusion in a JSON string literal (no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ctx {
    Obj { first: bool },
    Arr { first: bool },
}

/// A streaming JSON writer: handles commas, nesting and escaping.
///
/// ```
/// let mut w = jsonw::JsonWriter::new();
/// w.begin_obj();
/// w.field_str("name", "metricsd");
/// w.key("shards");
/// w.begin_arr();
/// w.elem_u64(1);
/// w.elem_u64(4);
/// w.end_arr();
/// w.end_obj();
/// let s = w.finish();
/// assert!(jsonw::validate(&s));
/// assert_eq!(s, r#"{"name":"metricsd","shards":[1,4]}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    stack: Vec<Ctx>,
    after_key: bool,
}

impl JsonWriter {
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    /// Comma bookkeeping before a value (or a key) in the current context.
    /// A value directly following its key needs no separator.
    fn pre_value(&mut self) {
        if self.after_key {
            self.after_key = false;
            return;
        }
        if let Some(top) = self.stack.last_mut() {
            match top {
                Ctx::Obj { first } | Ctx::Arr { first } => {
                    if *first {
                        *first = false;
                    } else {
                        self.buf.push(',');
                    }
                }
            }
        }
    }

    pub fn begin_obj(&mut self) {
        self.pre_value();
        self.buf.push('{');
        self.stack.push(Ctx::Obj { first: true });
    }

    pub fn end_obj(&mut self) {
        assert!(matches!(self.stack.pop(), Some(Ctx::Obj { .. })));
        self.buf.push('}');
    }

    pub fn begin_arr(&mut self) {
        self.pre_value();
        self.buf.push('[');
        self.stack.push(Ctx::Arr { first: true });
    }

    pub fn end_arr(&mut self) {
        assert!(matches!(self.stack.pop(), Some(Ctx::Arr { .. })));
        self.buf.push(']');
    }

    /// Emit `"key":` inside an object; the next emission is its value.
    pub fn key(&mut self, k: &str) {
        assert!(
            matches!(self.stack.last(), Some(Ctx::Obj { .. })) && !self.after_key,
            "key() outside object or after a dangling key"
        );
        self.pre_value();
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
        self.after_key = true;
    }

    fn raw_value(&mut self, v: &str) {
        self.pre_value();
        self.buf.push_str(v);
    }

    fn str_value(&mut self, v: &str) {
        self.pre_value();
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
    }

    pub fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.str_value(v);
    }

    pub fn field_u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.raw_value(&v.to_string());
    }

    pub fn field_i64(&mut self, k: &str, v: i64) {
        self.key(k);
        self.raw_value(&v.to_string());
    }

    /// Finite floats only; NaN/inf are emitted as `null` (JSON has no
    /// representation for them).
    pub fn field_f64(&mut self, k: &str, v: f64) {
        self.key(k);
        self.elem_f64_inner(v);
    }

    pub fn field_bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.raw_value(if v { "true" } else { "false" });
    }

    pub fn field_null(&mut self, k: &str) {
        self.key(k);
        self.raw_value("null");
    }

    pub fn elem_str(&mut self, v: &str) {
        self.str_value(v);
    }

    pub fn elem_u64(&mut self, v: u64) {
        self.raw_value(&v.to_string());
    }

    pub fn elem_f64(&mut self, v: f64) {
        self.elem_f64_inner(v);
    }

    fn elem_f64_inner(&mut self, v: f64) {
        let s = if v.is_finite() {
            format!("{v}")
        } else {
            "null".into()
        };
        self.raw_value(&s);
    }

    /// Finish and return the document. Panics if nesting is unbalanced —
    /// an emitter bug, caught in tests.
    pub fn finish(self) -> String {
        assert!(
            self.stack.is_empty() && !self.after_key,
            "unbalanced JSON nesting"
        );
        self.buf
    }
}

// ---- validator -------------------------------------------------------------

struct P<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> P<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> bool {
        self.ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.lit(b"true"),
            Some(b'f') => self.lit(b"false"),
            Some(b'n') => self.lit(b"null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => false,
        }
    }

    fn lit(&mut self, s: &[u8]) -> bool {
        if self.b[self.i..].starts_with(s) {
            self.i += s.len();
            true
        } else {
            false
        }
    }

    fn object(&mut self) -> bool {
        self.eat(b'{');
        self.ws();
        if self.eat(b'}') {
            return true;
        }
        loop {
            self.ws();
            if !self.string() {
                return false;
            }
            self.ws();
            if !self.eat(b':') {
                return false;
            }
            if !self.value() {
                return false;
            }
            self.ws();
            if self.eat(b',') {
                continue;
            }
            return self.eat(b'}');
        }
    }

    fn array(&mut self) -> bool {
        self.eat(b'[');
        self.ws();
        if self.eat(b']') {
            return true;
        }
        loop {
            if !self.value() {
                return false;
            }
            self.ws();
            if self.eat(b',') {
                continue;
            }
            return self.eat(b']');
        }
    }

    fn string(&mut self) -> bool {
        if !self.eat(b'"') {
            return false;
        }
        while let Some(c) = self.peek() {
            self.i += 1;
            match c {
                b'"' => return true,
                b'\\' => {
                    let Some(e) = self.peek() else { return false };
                    self.i += 1;
                    match e {
                        b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => {}
                        b'u' => {
                            for _ in 0..4 {
                                let Some(h) = self.peek() else { return false };
                                if !h.is_ascii_hexdigit() {
                                    return false;
                                }
                                self.i += 1;
                            }
                        }
                        _ => return false,
                    }
                }
                _ => {}
            }
        }
        false
    }

    fn number(&mut self) -> bool {
        self.eat(b'-');
        let mut digits = 0;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
            digits += 1;
        }
        if digits == 0 {
            return false;
        }
        if self.eat(b'.') {
            let mut frac = 0;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
                frac += 1;
            }
            if frac == 0 {
                return false;
            }
        }
        if self.peek() == Some(b'e') || self.peek() == Some(b'E') {
            self.i += 1;
            if self.peek() == Some(b'+') || self.peek() == Some(b'-') {
                self.i += 1;
            }
            let mut exp = 0;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
                exp += 1;
            }
            if exp == 0 {
                return false;
            }
        }
        true
    }
}

/// Whether `s` is one well-formed JSON value (strict syntax check; no
/// value is materialized).
pub fn validate(s: &str) -> bool {
    let mut p = P {
        b: s.as_bytes(),
        i: 0,
    };
    if !p.value() {
        return false;
    }
    p.ws();
    p.i == p.b.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_objects_arrays_fields() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.field_str("tool", "papi_avail");
        w.field_u64("ncpus", 24);
        w.field_bool("hybrid", true);
        w.field_f64("ghz", 5.1);
        w.key("presets");
        w.begin_arr();
        w.elem_str("PAPI_TOT_INS");
        w.elem_u64(7);
        w.elem_f64(0.5);
        w.end_arr();
        w.key("nested");
        w.begin_obj();
        w.field_i64("t", -3);
        w.end_obj();
        w.end_obj();
        let s = w.finish();
        assert!(validate(&s), "{s}");
        assert_eq!(
            s,
            r#"{"tool":"papi_avail","ncpus":24,"hybrid":true,"ghz":5.1,"presets":["PAPI_TOT_INS",7,0.5],"nested":{"t":-3}}"#
        );
    }

    #[test]
    fn escaping_round_trips_through_validator() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.field_str("s", "a\"b\\c\nd\te\u{1}");
        w.end_obj();
        let s = w.finish();
        assert!(validate(&s), "{s}");
        assert!(s.contains("\\u0001"));
    }

    #[test]
    fn nan_becomes_null() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.field_f64("bad", f64::NAN);
        w.end_obj();
        let s = w.finish();
        assert_eq!(s, r#"{"bad":null}"#);
        assert!(validate(&s));
    }

    #[test]
    fn validator_accepts_valid() {
        for s in [
            "{}",
            "[]",
            "null",
            "true",
            "-1.5e-3",
            r#"{"a":[1,2,{"b":"c"}],"d":null}"#,
            "  { \"x\" : [ ] } ",
        ] {
            assert!(validate(s), "{s}");
        }
    }

    #[test]
    fn validator_rejects_invalid() {
        for s in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "{\"a\":}",
            "01e",
            "1.",
            "\"unterminated",
            "{} extra",
            "{'a':1}",
            "nul",
        ] {
            assert!(!validate(s), "{s}");
        }
    }

    #[test]
    #[should_panic(expected = "unbalanced")]
    fn unbalanced_nesting_panics() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.finish();
    }
}
