//! chaosbench — prove the chaos-hardening invariant: a fleet of
//! resilient clients driven through every transport fault preset (and
//! through deliberate server overload) ends with counter digests
//! **bit-identical** to the fault-free run, with zero lost or
//! duplicated RPCs.
//!
//! The schedule is built so that chaos can perturb *when* things
//! happen but never *what* is measured:
//!
//! 1. **Setup on quiescent pumps** — hellos and subscribes run while
//!    the daemon pumps zero kernel ticks. Counter values are frozen at
//!    their boot state, so a subscribe delayed three retries by a
//!    stalled link still baselines the exact same values.
//! 2. **Exactly R ticking pumps** — the only phase where sim time
//!    advances. Sessions never touch the kernel, so the counter
//!    trajectory depends only on this fixed pump count.
//! 3. **Quiescent drain** — final reads ride out any remaining
//!    retries/resumes with the counters frozen at their final values.
//!
//! The digest covers per-client final `(metric, value)` pairs only —
//! not ticks or latencies, which legitimately differ under chaos.
//!
//! Emits `BENCH_chaos.json` with per-scenario injected-fault counts,
//! client recovery stats, and daemon self-metrics (retries, sheds,
//! resumes). Exit status is non-zero on any digest mismatch, lost or
//! duplicated RPC, lost session, or a fault preset that injected
//! nothing.
//!
//! ```text
//! chaosbench [--quick] [--clients N] [--rounds R] [--out PATH]
//! ```

use std::sync::Arc;

use parking_lot::Mutex;

use metricsd::queue::ClientPipe;
use metricsd::wire::{agg, fnv64, metrics, series, Request, Response};
use metricsd::{
    ChaosConfig, ChaosStats, ChaosTransport, Connector, Daemon, DaemonConfig, MirrorOutcome,
    ResilientClient, ResilientConfig, ResilientStats, SloSpec, StreamMirror,
};
use simcpu::machine::MachineSpec;
use simcpu::phase::Phase;
use simcpu::types::{CpuId, CpuMask};
use simos::faults::{FaultKind, FaultPlan};
use simos::kernel::{Kernel, KernelConfig, KernelHandle};
use simos::task::{Op, ScriptedProgram};

const SEED: u64 = 42;
const TICKS_PER_PUMP: u32 = 10;
/// Quiescent pumps allowed for setup / drain before declaring a wedge.
const PHASE_CAP: u64 = 4000;

fn session_mask(i: usize, n_cpus: usize) -> u64 {
    let width = n_cpus.min(64);
    let a = i % width;
    let b = (i * 7 + 3) % width;
    (1u64 << a) | (1u64 << b)
}

fn session_metrics(i: usize) -> u8 {
    (i % metrics::ALL as usize) as u8 + 1
}

fn session_cadence(i: usize) -> u64 {
    1 + (i % 4) as u64
}

/// Same machine as loadgen: fixed seed, standing workload, and a fault
/// plan (hotplug + flaky sysfs + RAPL wrap) active *inside the kernel*
/// while the transport layer above it is being tortured.
fn boot_machine() -> KernelHandle {
    let kernel = Kernel::boot_handle(
        MachineSpec::raptor_lake_i7_13700(),
        KernelConfig {
            seed: SEED,
            ..KernelConfig::default()
        },
    );
    {
        let mut k = kernel.lock();
        let n_cpus = k.machine().n_cpus();
        for cpu in (0..n_cpus).step_by(3) {
            k.spawn(
                &format!("w{cpu}"),
                Box::new(ScriptedProgram::new([
                    Op::Compute(Phase::scalar(u64::MAX / 4)),
                    Op::Exit,
                ])),
                CpuMask::from_cpus([cpu]),
                0,
            );
        }
        k.install_faults(
            &FaultPlan::new(SEED)
                .at(
                    100_000_000,
                    FaultKind::CpuOffline {
                        cpu: CpuId(17),
                        down_ns: Some(150_000_000),
                    },
                )
                .at(150_000_000, FaultKind::SysfsFlaky { dur_ns: 60_000_000 })
                .at(
                    250_000_000,
                    FaultKind::RaplWrapBurst {
                        wraps: 2,
                        extra_uj: 5_000_000,
                    },
                ),
        );
    }
    kernel
}

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

type Dial = Box<dyn FnMut() -> Option<ChaosTransport<ClientPipe>>>;

/// One client of the fleet: a resilient client plus its bench-side
/// RPC accounting. `begun == completed` at scenario end is the
/// zero-lost/zero-duplicated claim — every RPC the bench issued came
/// back exactly once (ResilientClient's single done slot cannot
/// deliver a result twice for one begin).
struct Bot {
    c: ResilientClient<ChaosTransport<ClientPipe>, Dial>,
    chaos_sink: Arc<Mutex<ChaosStats>>,
    sub_id: u32,
    begun: u64,
    completed: u64,
    pending_final: bool,
    final_vals: Option<Vec<(u8, u64)>>,
    /// Every third bot is also a delta-stream subscriber: it mirrors
    /// the daemon's per-tick counter state from keyframe/delta pushes
    /// and must end every scenario synced (CRC-verified), whatever the
    /// transport did to the push stream in between.
    mirror: Option<StreamMirror>,
    /// Delta stream acked by the daemon.
    stream_ready: bool,
    /// Mirror desynced (gap or CRC): nack with `AckTick 0` when idle.
    need_nack: bool,
}

/// Feed any queued pushes through the bot's mirror. A delta that does
/// not apply flips `need_nack`; the bot resolves it with an `AckTick 0`
/// RPC at the next idle step, and the daemon answers the nack with a
/// keyframe on the following push.
fn drain_pushes(b: &mut Bot) {
    while let Some(push) = b.c.pushes.pop_front() {
        if let Some(m) = b.mirror.as_mut() {
            match m.apply(&push) {
                MirrorOutcome::Applied => b.need_nack = false,
                MirrorOutcome::NeedKeyframe => b.need_nack = true,
                MirrorOutcome::NotStream => {}
            }
        }
    }
}

fn make_bot(connector: &Connector, chaos: ChaosConfig, idx: usize, scenario_seed: u64) -> Bot {
    let sink = Arc::new(Mutex::new(ChaosStats::default()));
    let conn = connector.clone();
    let sink2 = Arc::clone(&sink);
    let mut attempt: u64 = 0;
    // Every redial gets a distinct fault plan (mixing the attempt
    // counter into the seed) — otherwise a link that dies on frame one
    // replays the same death forever.
    let dial: Dial = Box::new(move || {
        attempt += 1;
        let seed = scenario_seed
            ^ (idx as u64).wrapping_mul(0x9e3779b97f4a7c15)
            ^ attempt.wrapping_mul(0xd1b54a32d192ed03);
        Some(
            ChaosTransport::new(conn.connect(), chaos.with_seed(seed))
                .with_shared_stats(Arc::clone(&sink2)),
        )
    });
    let rcfg = ResilientConfig {
        seed: scenario_seed ^ idx as u64,
        ..ResilientConfig::default()
    };
    let mut c = ResilientClient::new(dial, rcfg);
    // Every 8th RPC rides the `Traced` envelope through whatever the
    // chaos preset does to the link — corrupted trace headers must come
    // back as typed refusals and reissue like any other frame, and the
    // scenario digests (compared against the fault-free reference)
    // prove sampling perturbs nothing.
    c.set_trace_sampling(8);
    Bot {
        c,
        chaos_sink: sink,
        sub_id: 0,
        begun: 0,
        completed: 0,
        pending_final: false,
        final_vals: None,
        mirror: idx.is_multiple_of(3).then(StreamMirror::new),
        stream_ready: false,
        need_nack: false,
    }
}

fn add_stats(sum: &mut ResilientStats, s: &ResilientStats) {
    sum.completed += s.completed;
    sum.retries += s.retries;
    sum.conn_resets += s.conn_resets;
    sum.reconnects += s.reconnects;
    sum.resumes += s.resumes;
    sum.gap_pumps += s.gap_pumps;
    sum.overloads += s.overloads;
    sum.sessions_lost += s.sessions_lost;
    sum.give_ups += s.give_ups;
}

struct ScenarioResult {
    name: &'static str,
    digest: u64,
    setup_pumps: u64,
    drain_pumps: u64,
    begun: u64,
    completed: u64,
    queries_ok: u64,
    health_ok: u64,
    client: ResilientStats,
    injected: ChaosStats,
    server: Vec<(&'static str, u64)>,
    delta_bots: u64,
    stream_keyframes: u64,
    stream_deltas: u64,
    stream_desyncs: u64,
}

const SERVER_COUNTERS: [&str; 6] = [
    "conn_parks",
    "sessions_resumed",
    "reqs_shed",
    "dup_reissues",
    "bad_checksums",
    "parked_reaped",
];

fn run_scenario(
    name: &'static str,
    chaos: ChaosConfig,
    overload: bool,
    n_clients: usize,
    rounds: u64,
) -> ScenarioResult {
    let dcfg = DaemonConfig {
        // Overload scenarios concentrate the whole fleet on one shard
        // with a budget below the steady-state arrival rate, so the
        // daemon must shed every pump — with a typed Overloaded, never
        // by eviction. Shard count cannot change the counts (loadgen
        // proves digests are shard-invariant).
        shards: if overload { 1 } else { 4 },
        ticks_per_pump: TICKS_PER_PUMP,
        shard_budget_per_pump: if overload { 2 } else { 0 },
        deadline_pumps: if overload { 3 } else { 0 },
        // An impossible p99 target keeps the SLO watchdog busy while
        // the transport misbehaves; `GetHealth` rows must stay typed
        // and decodable through every preset.
        slos: vec![SloSpec::p99_latency_ns(1, 4)],
        ..DaemonConfig::default()
    };
    let mut daemon = Daemon::new(boot_machine(), dcfg);
    let n_cpus = daemon.n_cpus() as usize;
    let connector = daemon.connector();
    let scenario_seed = fnv64(name.as_bytes());

    let mut bots: Vec<Bot> = (0..n_clients)
        .map(|i| make_bot(&connector, chaos, i, scenario_seed))
        .collect();

    // Phase 1 — setup on quiescent pumps: counters frozen at boot
    // values, so baselines are identical however long chaos delays
    // each subscribe.
    for (i, b) in bots.iter_mut().enumerate() {
        assert!(b.c.begin(&Request::Subscribe {
            cpu_mask: session_mask(i, n_cpus),
            metrics: session_metrics(i),
        }));
        b.begun += 1;
    }
    let mut setup_pumps = 0u64;
    while bots.iter().any(|b| b.sub_id == 0) {
        setup_pumps += 1;
        assert!(setup_pumps < PHASE_CAP, "{name}: setup wedged");
        for (i, b) in bots.iter_mut().enumerate() {
            b.c.step();
            assert!(
                !b.c.take_session_lost(),
                "{name}: client {i} lost session in setup"
            );
            if let Some(done) = b.c.take_done() {
                match done {
                    Ok(Response::Subscribed { sub_id, .. }) => {
                        b.sub_id = sub_id;
                        b.completed += 1;
                    }
                    other => panic!("{name}: client {i} subscribe answered {other:?}"),
                }
            }
        }
        daemon.pump_quiescent();
    }

    // Phase 1b — delta subscribers enable their push stream, still on
    // quiescent pumps (pushes begin flowing, frozen at boot values).
    for b in bots.iter_mut().filter(|b| b.mirror.is_some()) {
        assert!(b.c.begin(&Request::StreamDeltas { every_pumps: 1 }));
        b.begun += 1;
    }
    while bots.iter().any(|b| b.mirror.is_some() && !b.stream_ready) {
        setup_pumps += 1;
        assert!(setup_pumps < PHASE_CAP, "{name}: stream setup wedged");
        for (i, b) in bots.iter_mut().enumerate() {
            b.c.step();
            drain_pushes(b);
            assert!(
                !b.c.take_session_lost(),
                "{name}: client {i} lost session in stream setup"
            );
            if let Some(done) = b.c.take_done() {
                match done {
                    Ok(Response::Subscribed { .. }) => {
                        b.stream_ready = true;
                        b.completed += 1;
                    }
                    other => panic!("{name}: client {i} stream setup answered {other:?}"),
                }
            }
        }
        daemon.pump_quiescent();
    }

    // Phase 2 — exactly `rounds` ticking pumps: the only phase where
    // sim time advances, so every scenario measures the same machine
    // history. Delta mirrors ride along: a push eaten by chaos shows up
    // as a base-tick gap, the mirror nacks, and the daemon heals the
    // stream with a keyframe — all without perturbing a single counter.
    for round in 0..rounds {
        for (i, b) in bots.iter_mut().enumerate() {
            if b.c.is_idle() {
                if b.need_nack {
                    assert!(b.c.begin(&Request::AckTick { tick: 0 }));
                    b.begun += 1;
                    b.need_nack = false;
                } else if round % session_cadence(i) == 0 {
                    assert!(b.c.begin(&Request::Read {
                        sub_id: b.sub_id,
                        submit_ns: 0,
                    }));
                    b.begun += 1;
                }
            }
            b.c.step();
            drain_pushes(b);
            assert!(
                !b.c.take_session_lost(),
                "{name}: client {i} lost session mid-run"
            );
            if let Some(done) = b.c.take_done() {
                match done {
                    Ok(_) => b.completed += 1,
                    Err(e) => panic!("{name}: client {i} rpc failed: {e:?}"),
                }
            }
        }
        daemon.pump();
    }

    // Phase 3 — quiescent drain: stragglers finish, then one final
    // read per client with the counters frozen at their end state.
    let mut drain_pumps = 0u64;
    while bots.iter().any(|b| b.final_vals.is_none()) {
        drain_pumps += 1;
        assert!(drain_pumps < PHASE_CAP, "{name}: drain wedged");
        for (i, b) in bots.iter_mut().enumerate() {
            if b.final_vals.is_some() {
                continue;
            }
            if !b.pending_final && b.c.is_idle() {
                assert!(b.c.begin(&Request::Read {
                    sub_id: b.sub_id,
                    submit_ns: 0,
                }));
                b.begun += 1;
                b.pending_final = true;
            }
            b.c.step();
            drain_pushes(b);
            assert!(
                !b.c.take_session_lost(),
                "{name}: client {i} lost session in drain"
            );
            if let Some(done) = b.c.take_done() {
                let resp = match done {
                    Ok(r) => r,
                    Err(e) => panic!("{name}: client {i} drain rpc failed: {e:?}"),
                };
                b.completed += 1;
                if b.pending_final {
                    match resp {
                        Response::Counters { values, .. } => {
                            b.final_vals =
                                Some(values.iter().map(|v| (v.metric, v.value)).collect());
                        }
                        other => panic!("{name}: client {i} final read answered {other:?}"),
                    }
                }
                // else: a straggling main-phase read completing late.
            }
        }
        daemon.pump_quiescent();
    }

    // Phase 3c — ranged history queries and the SLO health row through
    // the same chaotic links: read-only, so they reissue freely and
    // cannot perturb the counter digest; replies must stay typed
    // (`RangeReply`/`Health`), never a panic or a silent drop.
    let mut queries_ok = 0u64;
    let mut health_ok = 0u64;
    for (i, b) in bots.iter_mut().enumerate() {
        let req = if i % 2 == 0 {
            Request::QueryRange {
                series: series::READS,
                agg: agg::SUM,
                start_tick: 0,
                end_tick: u64::MAX,
                max_points: 64,
            }
        } else {
            Request::GetHealth
        };
        assert!(b.c.begin(&req));
        b.begun += 1;
    }
    let mut query_pumps = 0u64;
    while bots.iter().any(|b| !b.c.is_idle()) {
        query_pumps += 1;
        assert!(query_pumps < PHASE_CAP, "{name}: query phase wedged");
        for (i, b) in bots.iter_mut().enumerate() {
            b.c.step();
            drain_pushes(b);
            assert!(
                !b.c.take_session_lost(),
                "{name}: client {i} lost session in query phase"
            );
            if let Some(done) = b.c.take_done() {
                match done {
                    Ok(Response::RangeReply { .. }) => {
                        queries_ok += 1;
                        b.completed += 1;
                    }
                    Ok(Response::Health { slos, .. }) => {
                        assert!(!slos.is_empty(), "{name}: health reply lost its SLO rows");
                        health_ok += 1;
                        b.completed += 1;
                    }
                    other => panic!("{name}: client {i} query answered {other:?}"),
                }
            }
        }
        daemon.pump_quiescent();
    }
    assert!(
        queries_ok >= 1 && health_ok >= 1,
        "{name}: query/health phase served nothing (queries={queries_ok} health={health_ok})"
    );

    // Phase 3b — stream settle: every delta mirror must converge to a
    // CRC-verified synced state with no RPC left in flight. Chaos may
    // have eaten the latest keyframe (or may corrupt one mid-settle),
    // so keep nacking/stepping until a clean pass: all mirrors synced
    // AND all clients idle, checked together so a late desync re-enters
    // the loop instead of slipping past the ledger asserts. Pushes
    // continue on quiescent pumps; counters stay frozen.
    let mut settle_pumps = 0u64;
    loop {
        let converged = bots.iter().all(|b| {
            b.c.is_idle()
                && b.mirror
                    .as_ref()
                    .is_none_or(|m| m.synced && m.keyframes >= 1 && !b.need_nack)
        });
        if converged {
            break;
        }
        settle_pumps += 1;
        assert!(settle_pumps < PHASE_CAP, "{name}: stream settle wedged");
        for (i, b) in bots.iter_mut().enumerate() {
            if b.need_nack && b.c.is_idle() {
                assert!(b.c.begin(&Request::AckTick { tick: 0 }));
                b.begun += 1;
                b.need_nack = false;
            }
            b.c.step();
            drain_pushes(b);
            assert!(
                !b.c.take_session_lost(),
                "{name}: client {i} lost session in settle"
            );
            if let Some(done) = b.c.take_done() {
                match done {
                    Ok(_) => b.completed += 1,
                    Err(e) => panic!("{name}: client {i} settle rpc failed: {e:?}"),
                }
            }
        }
        daemon.pump_quiescent();
    }
    // One extra pump so the shards' last self-metrics are absorbed
    // into the master registry.
    daemon.pump_quiescent();

    let mut digest: u64 = 0xcbf29ce484222325;
    let mut begun = 0u64;
    let mut completed = 0u64;
    let mut client = ResilientStats::default();
    let mut delta_bots = 0u64;
    let mut stream_keyframes = 0u64;
    let mut stream_deltas = 0u64;
    let mut stream_desyncs = 0u64;
    for (i, b) in bots.iter().enumerate() {
        if let Some(m) = &b.mirror {
            assert!(m.synced, "{name}: client {i} mirror ended unsynced");
            assert!(
                m.keyframes >= 1,
                "{name}: client {i} mirror never saw a keyframe"
            );
            delta_bots += 1;
            stream_keyframes += m.keyframes;
            stream_deltas += m.deltas;
            stream_desyncs += m.desyncs;
        }
        fnv1a(&mut digest, &(i as u64).to_le_bytes());
        for (metric, value) in b.final_vals.as_ref().expect("final read present") {
            fnv1a(&mut digest, &[*metric]);
            fnv1a(&mut digest, &value.to_le_bytes());
        }
        let s = b.c.stats();
        assert_eq!(
            b.begun, b.completed,
            "{name}: client {i} lost or dropped an RPC"
        );
        assert_eq!(s.give_ups, 0, "{name}: client {i} gave up on an RPC");
        assert_eq!(s.sessions_lost, 0, "{name}: client {i} lost its session");
        begun += b.begun;
        completed += b.completed;
        add_stats(&mut client, &s);
    }

    // Transports still alive hold unflushed stats; dropping the fleet
    // merges them into the shared sinks.
    let sinks: Vec<Arc<Mutex<ChaosStats>>> =
        bots.iter().map(|b| Arc::clone(&b.chaos_sink)).collect();
    drop(bots);
    let mut injected = ChaosStats::default();
    for s in &sinks {
        injected.merge(&s.lock());
    }

    let server: Vec<(&'static str, u64)> = SERVER_COUNTERS
        .iter()
        .map(|&want| {
            let v = daemon
                .self_metrics()
                .counters()
                .find(|(n, _)| *n == want)
                .map(|(_, v)| v)
                .unwrap_or(0);
            (want, v)
        })
        .collect();
    let server_get = |want: &str| server.iter().find(|(n, _)| *n == want).unwrap().1;

    simtrace::postmortem::stash(simtrace::text_dump(&daemon.trace_tracks(), 32));

    // Cross-checks between the three independent ledgers (injector,
    // client, daemon). Replies can be lost under chaos, so the daemon
    // may count recoveries the client never saw — never the reverse.
    assert!(
        server_get("sessions_resumed") >= client.resumes,
        "{name}: daemon resumed fewer sessions than clients observed"
    );
    assert!(
        server_get("conn_parks") >= client.resumes,
        "{name}: every resume needs a prior park"
    );
    if chaos.is_off() {
        // Loss-free link: every shed reply reaches a client, so the
        // two ledgers must agree exactly.
        assert_eq!(
            server_get("reqs_shed"),
            client.overloads,
            "{name}: shed/overload ledgers disagree on a loss-free link"
        );
        assert_eq!(
            injected.total(),
            0,
            "{name}: fault-free run injected faults"
        );
    } else {
        assert!(
            injected.total() > 0,
            "{name}: chaos preset injected nothing"
        );
        assert!(
            server_get("reqs_shed") >= client.overloads,
            "{name}: clients observed sheds the daemon never issued"
        );
    }
    if overload {
        assert!(
            server_get("reqs_shed") > 0,
            "{name}: overload scenario never shed"
        );
    }
    if chaos.reset_pm > 0 {
        assert!(injected.resets > 0, "{name}: reset preset never reset");
        assert!(client.resumes > 0, "{name}: resets without a single resume");
    }

    ScenarioResult {
        name,
        digest,
        setup_pumps,
        drain_pumps,
        begun,
        completed,
        queries_ok,
        health_ok,
        client,
        injected,
        server,
        delta_bots,
        stream_keyframes,
        stream_deltas,
        stream_desyncs,
    }
}

fn main() {
    simtrace::postmortem::install();
    let mut quick = false;
    let mut clients: Option<usize> = None;
    let mut rounds: Option<u64> = None;
    let mut out = "BENCH_chaos.json".to_string();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--clients" => {
                clients = Some(args.next().expect("--clients N").parse().expect("count"))
            }
            "--rounds" => rounds = Some(args.next().expect("--rounds R").parse().expect("count")),
            "--out" => out = args.next().expect("--out PATH"),
            "--help" | "-h" => {
                eprintln!("usage: chaosbench [--quick] [--clients N] [--rounds R] [--out PATH]");
                return;
            }
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    let n_clients = clients.unwrap_or(if quick { 6 } else { 10 });
    let rounds = rounds.unwrap_or(if quick { 24 } else { 60 });

    // (name, chaos preset, server overload knobs on). "none" is the
    // fault-free reference every other digest must match bit-for-bit.
    let scenarios: &[(&'static str, &str, bool)] = &[
        ("none", "off", false),
        ("reset", "reset", false),
        ("stall", "stall", false),
        ("short", "short", false),
        ("truncate", "truncate", false),
        ("corrupt", "corrupt", false),
        ("delay", "delay", false),
        ("mix", "mix", false),
        ("heavy", "heavy", false),
        ("overload", "off", true),
        ("overload_mix", "mix", true),
    ];

    eprintln!(
        "chaosbench: {n_clients} clients, {rounds} ticking rounds, {} scenarios",
        scenarios.len()
    );
    let results: Vec<ScenarioResult> = scenarios
        .iter()
        .map(|&(name, preset, overload)| {
            let chaos = ChaosConfig::preset(preset).expect("known preset");
            let r = run_scenario(name, chaos, overload, n_clients, rounds);
            eprintln!(
                "  {:<13} digest={:016x} rpcs={}/{} retries={} resets={} resumes={} \
                 overloads={} injected={} shed={} stream(kf={} d={} desync={})",
                r.name,
                r.digest,
                r.completed,
                r.begun,
                r.client.retries,
                r.client.conn_resets,
                r.client.resumes,
                r.client.overloads,
                r.injected.total(),
                r.server.iter().find(|(n, _)| *n == "reqs_shed").unwrap().1,
                r.stream_keyframes,
                r.stream_deltas,
                r.stream_desyncs,
            );
            r
        })
        .collect();

    let reference = results[0].digest;
    let all_match = results.iter().all(|r| r.digest == reference);

    let mut w = jsonw::JsonWriter::new();
    w.begin_obj();
    w.field_str("bench", "metricsd-chaos");
    w.field_bool("quick", quick);
    w.field_u64("clients", n_clients as u64);
    w.field_u64("rounds", rounds);
    w.field_u64("ticks_per_pump", TICKS_PER_PUMP as u64);
    w.field_str("reference_digest", &format!("{reference:016x}"));
    w.field_bool("all_digests_match", all_match);
    w.key("scenarios");
    w.begin_arr();
    for r in &results {
        w.begin_obj();
        w.field_str("name", r.name);
        w.field_str("digest", &format!("{:016x}", r.digest));
        w.field_bool("digest_match", r.digest == reference);
        w.field_u64("setup_pumps", r.setup_pumps);
        w.field_u64("drain_pumps", r.drain_pumps);
        w.field_u64("rpcs_begun", r.begun);
        w.field_u64("rpcs_completed", r.completed);
        w.field_u64("range_queries_ok", r.queries_ok);
        w.field_u64("health_queries_ok", r.health_ok);
        w.key("stream");
        w.begin_obj();
        w.field_u64("delta_subscribers", r.delta_bots);
        w.field_u64("keyframes_applied", r.stream_keyframes);
        w.field_u64("deltas_applied", r.stream_deltas);
        w.field_u64("desyncs_recovered", r.stream_desyncs);
        w.end_obj();
        w.key("client");
        w.begin_obj();
        w.field_u64("retries", r.client.retries);
        w.field_u64("conn_resets", r.client.conn_resets);
        w.field_u64("reconnects", r.client.reconnects);
        w.field_u64("resumes", r.client.resumes);
        w.field_u64("gap_pumps", r.client.gap_pumps);
        w.field_u64("overloads", r.client.overloads);
        w.field_u64("sessions_lost", r.client.sessions_lost);
        w.field_u64("give_ups", r.client.give_ups);
        w.end_obj();
        w.key("injected");
        w.begin_obj();
        w.field_u64("frames_sent", r.injected.frames_sent);
        w.field_u64("frames_recvd", r.injected.frames_recvd);
        w.field_u64("resets", r.injected.resets);
        w.field_u64("stalls", r.injected.stalls);
        w.field_u64("short_writes", r.injected.short_writes);
        w.field_u64("truncations", r.injected.truncations);
        w.field_u64("corruptions", r.injected.corruptions);
        w.field_u64("delays", r.injected.delays);
        w.end_obj();
        w.key("server");
        w.begin_obj();
        for (n, v) in &r.server {
            w.field_u64(n, *v);
        }
        w.end_obj();
        w.end_obj();
    }
    w.end_arr();
    w.end_obj();
    let json = w.finish();
    assert!(jsonw::validate(&json), "chaosbench emits valid JSON");
    std::fs::write(&out, &json).expect("write BENCH json");
    println!("{json}");
    eprintln!("wrote {out}");

    if !all_match {
        eprintln!("FAIL: a chaos scenario's digest diverges from the fault-free reference");
        std::process::exit(1);
    }
}
