//! loadgen — drive thousands of simulated client sessions against the
//! daemon and prove the serving layer does not perturb the measurement.
//!
//! For each worker-shard count in {1, 4, 8} it boots an identical
//! kernel (same spec, seed, workload, fault plan), connects N sessions
//! plus one deliberately slow streaming consumer (tiny outbox, never
//! drains — it must be evicted, not wedge the daemon), runs T lockstep
//! pumps with a deterministic per-session read cadence, then reads every
//! subscription one final time and digests the counter values (FNV-1a).
//!
//! The digests must be bit-identical across 1/4/8 shards AND match a
//! serial reference: a single client session holding all N
//! subscriptions on a 1-shard daemon. Throughput and latency are
//! allowed to differ; counts are not.
//!
//! Two latency views are reported side by side:
//!
//! * **sim-ns** — the daemon's virtual serving clock (snapshot time +
//!   position in the shard's queue). Deterministic, byte-identical
//!   across runs; this is the *modelled* latency.
//! * **wall-clock ns** — request→response time measured at the client
//!   with a real clock (post `Read` → drain `Counters`, FIFO per
//!   session). Noisy, host-dependent; this is the *actual* latency.
//!
//! Each shard config runs `--reps` times (digests must match every
//! rep); the best rep by throughput is reported, which filters
//! scheduler noise out of the scaling comparison.
//!
//! A separate **high-fanout** phase drives 100k+ concurrent sessions —
//! almost all push-stream subscribers ([`Request::StreamDeltas`]), plus
//! a small reader pool — through the same daemon at 8 shards, counting
//! delivered frames and verifying sampled client mirrors stay
//! CRC-synced. Zero evictions are tolerated there: every session
//! drains, so any eviction is a stall-grace calibration bug.
//!
//! Emits `BENCH_metricsd.json`. Exit status is non-zero on any digest
//! mismatch, eviction-ledger mismatch, or (with `--gate-scaling` /
//! `--floor-per-core`) a violated performance gate.
//!
//! ```text
//! loadgen [--quick] [--sessions N] [--pumps T] [--reps R] [--out PATH]
//!         [--gate-scaling] [--floor-per-core N]
//!         [--fanout-sessions N] [--fanout-pumps T] [--no-fanout]
//! ```

use std::collections::VecDeque;
use std::time::Instant;

use metricsd::queue::ClientPipe;
use metricsd::wire::{agg, metrics, series, Request, Response, MAX_RANGE_POINTS};
use metricsd::{Daemon, DaemonConfig, MetricsClient, MirrorOutcome, SloSpec, StreamMirror};
use simcpu::machine::MachineSpec;
use simcpu::phase::Phase;
use simcpu::types::{CpuId, CpuMask};
use simos::faults::{FaultKind, FaultPlan};
use simos::kernel::{Kernel, KernelConfig, KernelHandle};
use simos::task::{Op, ScriptedProgram};
use simtrace::metrics::{percentile_of_sorted, Histogram};
use simtrace::{EventKind, TraceConfig};

const SEED: u64 = 42;
const TICKS_PER_PUMP: u32 = 20;
/// Outbox-full pumps tolerated before eviction. Explicit (not the
/// config default) because the whole bench is calibrated against it:
/// healthy sessions drain every pump and must never come near it, and
/// the slow consumer must cross it well before the run ends.
const STALL_GRACE_PUMPS: u32 = 8;

fn cores() -> u64 {
    std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1)
}

/// Deterministic per-session subscription shape.
fn session_mask(i: usize, n_cpus: usize) -> u64 {
    let width = n_cpus.min(64);
    let a = i % width;
    let b = (i * 7 + 3) % width;
    (1u64 << a) | (1u64 << b)
}

fn session_metrics(i: usize) -> u8 {
    (i % metrics::ALL as usize) as u8 + 1
}

fn session_cadence(i: usize) -> u64 {
    1 + (i % 7) as u64
}

/// Identical machine for every configuration: fixed seed, standing
/// workload, and a fault plan that exercises hotplug + flaky sysfs +
/// RAPL wrap bursts while serving.
fn boot_machine() -> KernelHandle {
    boot_with(KernelConfig {
        seed: SEED,
        ..KernelConfig::default()
    })
}

/// Same machine with the flight recorder forced on (the query/tracing
/// phase needs spans regardless of `SIM_TRACE`).
fn boot_machine_traced(trace: TraceConfig) -> KernelHandle {
    boot_with(KernelConfig {
        seed: SEED,
        trace,
        ..KernelConfig::default()
    })
}

fn boot_with(cfg: KernelConfig) -> KernelHandle {
    let kernel = Kernel::boot_handle(MachineSpec::raptor_lake_i7_13700(), cfg);
    {
        let mut k = kernel.lock();
        let n_cpus = k.machine().n_cpus();
        for cpu in (0..n_cpus).step_by(3) {
            k.spawn(
                &format!("w{cpu}"),
                Box::new(ScriptedProgram::new([
                    Op::Compute(Phase::scalar(u64::MAX / 4)),
                    Op::Exit,
                ])),
                CpuMask::from_cpus([cpu]),
                0,
            );
        }
        k.install_faults(
            &FaultPlan::new(SEED)
                .at(
                    100_000_000,
                    FaultKind::CpuOffline {
                        cpu: CpuId(17),
                        down_ns: Some(150_000_000),
                    },
                )
                .at(150_000_000, FaultKind::SysfsFlaky { dur_ns: 60_000_000 })
                .at(
                    250_000_000,
                    FaultKind::RaplWrapBurst {
                        wraps: 2,
                        extra_uj: 5_000_000,
                    },
                ),
        );
    }
    kernel
}

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

struct ConfigResult {
    shards: usize,
    reads: u64,
    wall_s: f64,
    /// Daemon's virtual serving clock, sorted.
    latencies_ns: Vec<u64>,
    /// Client-measured request→response wall clock, sorted.
    wall_latencies_ns: Vec<u64>,
    digest: u64,
    evicted_slow_consumer: bool,
    /// Evictions beyond the one deliberate slow consumer. Must be 0:
    /// a healthy session being evicted means the stall grace is
    /// miscalibrated for the workload.
    healthy_evictions: u64,
    reps_run: u64,
}

/// Drain every pending reply on a client, recording Counters for the
/// digest/latency accounting. `posted` carries the wall-clock post time
/// of every in-flight Read, FIFO — replies to a session come back in
/// request order, so front-of-queue is always the match.
fn drain(
    c: &mut MetricsClient<ClientPipe>,
    posted: &mut VecDeque<Instant>,
    latencies: &mut Vec<u64>,
    wall_latencies: &mut Vec<u64>,
    reads: &mut u64,
    last_counters: &mut Vec<(u8, u64)>,
) {
    while let Ok(Some(resp)) = c.try_take() {
        if let Response::Counters {
            latency_ns, values, ..
        } = resp
        {
            *reads += 1;
            latencies.push(latency_ns);
            if let Some(t) = posted.pop_front() {
                wall_latencies.push(t.elapsed().as_nanos() as u64);
            }
            last_counters.clear();
            last_counters.extend(values.iter().map(|v| (v.metric, v.value)));
        }
    }
}

/// One full load run against a daemon with `shards` worker shards.
fn run_once(shards: usize, n_sessions: usize, pumps: u64) -> ConfigResult {
    let mut daemon = Daemon::new(
        boot_machine(),
        DaemonConfig {
            shards,
            ticks_per_pump: TICKS_PER_PUMP,
            stall_grace_pumps: STALL_GRACE_PUMPS,
            ..DaemonConfig::default()
        },
    );
    let n_cpus = daemon.n_cpus() as usize;
    let connector = daemon.connector();

    let mut clients: Vec<MetricsClient<ClientPipe>> = (0..n_sessions)
        .map(|_| MetricsClient::new(connector.connect()))
        .collect();
    // The slow consumer: tiny outbox, streams every pump, never drains.
    let mut slow = MetricsClient::new(connector.connect_with_outbox_cap(2));

    // Pump 1: hellos.
    for c in clients.iter_mut() {
        c.post(&Request::Hello {
            proto: metricsd::PROTO_VERSION,
        })
        .expect("post hello");
    }
    slow.post(&Request::Hello {
        proto: metricsd::PROTO_VERSION,
    })
    .expect("post hello");
    daemon.pump();
    for c in clients.iter_mut() {
        while let Ok(Some(_)) = c.try_take() {}
    }
    while let Ok(Some(_)) = slow.try_take() {}

    // Pump 2: subscriptions (baseline snapshot identical across configs).
    for (i, c) in clients.iter_mut().enumerate() {
        c.post(&Request::Subscribe {
            cpu_mask: session_mask(i, n_cpus),
            metrics: session_metrics(i),
        })
        .expect("post subscribe");
    }
    slow.post(&Request::Subscribe {
        cpu_mask: 1,
        metrics: metrics::ALL,
    })
    .expect("post subscribe");
    slow.post(&Request::Stream { every_pumps: 1 })
        .expect("post stream");
    daemon.pump();
    let mut sub_ids = vec![0u32; n_sessions];
    for (i, c) in clients.iter_mut().enumerate() {
        while let Ok(Some(resp)) = c.try_take() {
            if let Response::Subscribed { sub_id, .. } = resp {
                sub_ids[i] = sub_id;
            }
        }
        assert!(sub_ids[i] != 0, "session {i} got its subscription");
    }
    // The slow consumer stops draining here, for good.

    // Steady state: deterministic read cadence, thousands in flight.
    let mut latencies: Vec<u64> = Vec::new();
    let mut wall_latencies: Vec<u64> = Vec::new();
    let mut posted: Vec<VecDeque<Instant>> = vec![VecDeque::new(); n_sessions];
    let mut reads: u64 = 0;
    let mut last: Vec<Vec<(u8, u64)>> = vec![Vec::new(); n_sessions];
    let t0 = Instant::now();
    for pump in 0..pumps {
        for (i, c) in clients.iter_mut().enumerate() {
            if pump % session_cadence(i) == 0 {
                let submit_ns = c.last_seen_ns;
                c.post(&Request::Read {
                    sub_id: sub_ids[i],
                    submit_ns,
                })
                .expect("post read");
                posted[i].push_back(Instant::now());
            }
            // A sprinkle of hot-path queries served from the cache.
            if i % 97 == 0 && pump % 5 == 0 {
                c.post(&Request::LatestSample).expect("post sample");
            }
        }
        daemon.pump();
        for (i, c) in clients.iter_mut().enumerate() {
            drain(
                c,
                &mut posted[i],
                &mut latencies,
                &mut wall_latencies,
                &mut reads,
                &mut last[i],
            );
        }
    }

    // Final read: every session, one more pump, then digest.
    for (i, c) in clients.iter_mut().enumerate() {
        let submit_ns = c.last_seen_ns;
        c.post(&Request::Read {
            sub_id: sub_ids[i],
            submit_ns,
        })
        .expect("post final read");
        posted[i].push_back(Instant::now());
    }
    daemon.pump();
    for (i, c) in clients.iter_mut().enumerate() {
        drain(
            c,
            &mut posted[i],
            &mut latencies,
            &mut wall_latencies,
            &mut reads,
            &mut last[i],
        );
    }
    let wall_s = t0.elapsed().as_secs_f64();

    // Self-metrics cross-check: the daemon's wire-served read-latency
    // histogram (one extra pump so the final reads are absorbed) must
    // match a local histogram over the very latencies this run observed,
    // and the clock-inversion counter must be zero — client submit times
    // always trail the virtual serve clock. Wall-clock timing must never
    // leak in here: the wire histogram is all sim-ns.
    clients[0]
        .post(&Request::GetSelfMetrics)
        .expect("post self-metrics");
    daemon.pump();
    let mut wire_hist = None;
    let mut wire_inversions = 0u64;
    while let Ok(Some(resp)) = clients[0].try_take() {
        if let Response::SelfMetrics { counters, hists } = resp {
            wire_inversions = counters
                .iter()
                .find(|(n, _)| n == "latency_inversions")
                .map(|(_, v)| *v)
                .unwrap_or(0);
            wire_hist = hists.into_iter().find(|h| h.name == "read_latency_ns");
        }
    }
    simtrace::postmortem::stash(simtrace::text_dump(&daemon.trace_tracks(), 32));
    let wire_hist = wire_hist.expect("daemon served a read_latency_ns histogram");
    let mut local = Histogram::new();
    for &v in &latencies {
        local.observe(v);
    }
    assert_eq!(wire_hist.count, local.count(), "read count over the wire");
    assert_eq!(wire_hist.min, local.min(), "latency min over the wire");
    assert_eq!(wire_hist.max, local.max(), "latency max over the wire");
    assert_eq!(wire_hist.p50, local.percentile(0.50), "p50 over the wire");
    assert_eq!(wire_hist.p90, local.percentile(0.90), "p90 over the wire");
    assert_eq!(wire_hist.p99, local.percentile(0.99), "p99 over the wire");
    assert_eq!(wire_inversions, 0, "no latency inversions expected");

    let mut digest: u64 = 0xcbf29ce484222325;
    for (i, vals) in last.iter().enumerate() {
        fnv1a(&mut digest, &(i as u64).to_le_bytes());
        for (metric, value) in vals {
            fnv1a(&mut digest, &[*metric]);
            fnv1a(&mut digest, &value.to_le_bytes());
        }
    }

    // The slow consumer must have been evicted — daemon still serving,
    // its queue closed with a best-effort Evicted notice at the tail.
    let mut saw_evicted = false;
    loop {
        match slow.try_take() {
            Ok(Some(Response::Evicted { .. })) | Err(metricsd::ClientError::Evicted { .. }) => {
                saw_evicted = true;
                break;
            }
            Ok(Some(_)) => continue,
            Ok(None) | Err(_) => break,
        }
    }
    let evictions = daemon.stats().evictions;
    let evicted = saw_evicted && evictions >= 1;

    latencies.sort_unstable();
    wall_latencies.sort_unstable();
    ConfigResult {
        shards,
        reads,
        wall_s,
        latencies_ns: latencies,
        wall_latencies_ns: wall_latencies,
        digest,
        evicted_slow_consumer: evicted,
        healthy_evictions: evictions.saturating_sub(1),
        reps_run: 1,
    }
}

/// Run every shard config `reps` times with the reps *interleaved*
/// (1, 4, 8, 1, 4, 8, …) so a transient host slowdown hits each config
/// equally instead of swallowing one config's entire rep budget.
/// Digests (and the eviction ledger) must be identical every rep; the
/// best rep by reads/s is kept per config so the scaling comparison
/// measures the daemon, not a scheduler hiccup.
fn run_best_of(
    shard_counts: &[usize],
    n_sessions: usize,
    pumps: u64,
    reps: u64,
) -> Vec<ConfigResult> {
    let mut best: Vec<Option<ConfigResult>> = shard_counts.iter().map(|_| None).collect();
    for rep in 0..reps.max(1) {
        for (slot, &shards) in shard_counts.iter().enumerate() {
            let r = run_once(shards, n_sessions, pumps);
            assert_eq!(
                r.healthy_evictions, 0,
                "shards={shards} rep={rep}: healthy session evicted (stall grace miscalibrated)"
            );
            if let Some(b) = &best[slot] {
                assert_eq!(
                    b.digest, r.digest,
                    "shards={shards}: digest changed between reps {rep}"
                );
            }
            let better = best[slot]
                .as_ref()
                .is_none_or(|b| r.reads as f64 / r.wall_s > b.reads as f64 / b.wall_s);
            if better {
                best[slot] = Some(r);
            }
        }
    }
    best.into_iter()
        .map(|b| {
            let mut r = b.expect("at least one rep");
            r.reps_run = reps.max(1);
            r
        })
        .collect()
}

struct FanoutResult {
    sessions: u64,
    subscribers: u64,
    readers: u64,
    pumps: u64,
    wall_s: f64,
    frames: u64,
    /// Client-measured request→response wall clock for the reader pool.
    wall_latencies_ns: Vec<u64>,
    mirrors_checked: u64,
    evictions: u64,
}

/// High-fanout phase: `n_sessions` concurrent sessions on an 8-shard
/// daemon, almost all of them `StreamDeltas` push subscribers (one
/// pre-encoded frame shared by every subscriber per pump), plus a small
/// pool of classic readers measured with wall-clock latency. Every 16th
/// subscriber runs a full [`StreamMirror`] and must end CRC-synced.
fn run_fanout(n_sessions: usize, pumps: u64) -> FanoutResult {
    const READERS: usize = 512;
    const MIRROR_EVERY: usize = 16;
    let mut daemon = Daemon::new(
        boot_machine(),
        DaemonConfig {
            shards: 8,
            ticks_per_pump: TICKS_PER_PUMP,
            stall_grace_pumps: STALL_GRACE_PUMPS,
            ..DaemonConfig::default()
        },
    );
    let n_cpus = daemon.n_cpus() as usize;
    let connector = daemon.connector();
    let readers = READERS.min(n_sessions);

    let mut clients: Vec<MetricsClient<ClientPipe>> = (0..n_sessions)
        .map(|_| MetricsClient::new(connector.connect()))
        .collect();

    // Setup pump 1: hellos.
    for c in clients.iter_mut() {
        c.post(&Request::Hello {
            proto: metricsd::PROTO_VERSION,
        })
        .expect("post hello");
    }
    daemon.pump();
    for c in clients.iter_mut() {
        while let Ok(Some(_)) = c.try_take() {}
    }

    // Setup pump 2: everyone subscribes to the delta stream; the reader
    // pool also takes a counter subscription.
    for (i, c) in clients.iter_mut().enumerate() {
        c.post(&Request::StreamDeltas { every_pumps: 1 })
            .expect("post stream-deltas");
        if i < readers {
            c.post(&Request::Subscribe {
                cpu_mask: session_mask(i, n_cpus),
                metrics: session_metrics(i),
            })
            .expect("post subscribe");
        }
    }
    daemon.pump();
    let mut sub_ids = vec![0u32; readers];
    for (i, c) in clients.iter_mut().enumerate() {
        while let Ok(Some(resp)) = c.try_take() {
            if let Response::Subscribed { sub_id, .. } = resp {
                if i < readers && sub_id != 0 {
                    sub_ids[i] = sub_id;
                }
            }
        }
    }

    // Steady state: every subscriber drains its push each pump (sampled
    // ones through a full mirror), readers post a Read each pump.
    let mut mirrors: Vec<StreamMirror> = (0..n_sessions)
        .step_by(MIRROR_EVERY)
        .map(|_| StreamMirror::new())
        .collect();
    let mut posted: Vec<VecDeque<Instant>> = vec![VecDeque::new(); readers];
    let mut wall_latencies: Vec<u64> = Vec::new();
    let mut frames: u64 = 0;
    let t0 = Instant::now();
    for _pump in 0..pumps {
        for (i, c) in clients.iter_mut().enumerate().take(readers) {
            let submit_ns = c.last_seen_ns;
            c.post(&Request::Read {
                sub_id: sub_ids[i],
                submit_ns,
            })
            .expect("post read");
            posted[i].push_back(Instant::now());
        }
        daemon.pump();
        for (i, c) in clients.iter_mut().enumerate() {
            while let Ok(Some(resp)) = c.try_take() {
                match resp {
                    Response::TickKeyframe { .. } | Response::TickDelta { .. } => {
                        frames += 1;
                        if i % MIRROR_EVERY == 0 {
                            match mirrors[i / MIRROR_EVERY].apply(&resp) {
                                MirrorOutcome::Applied => {}
                                MirrorOutcome::NeedKeyframe => {
                                    panic!("fanout: session {i} mirror desynced: {resp:?}")
                                }
                                MirrorOutcome::NotStream => unreachable!(),
                            }
                        }
                    }
                    Response::Counters { .. } => {
                        if let Some(t) = posted.get_mut(i).and_then(|q| q.pop_front()) {
                            wall_latencies.push(t.elapsed().as_nanos() as u64);
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();

    for (mi, m) in mirrors.iter().enumerate() {
        let i = mi * MIRROR_EVERY;
        assert!(m.synced, "fanout: session {i} mirror ended unsynced");
        assert!(m.desyncs == 0, "fanout: session {i} mirror desynced");
        assert!(m.keyframes >= 1, "fanout: session {i} saw no keyframe");
    }
    let evictions = daemon.stats().evictions;
    assert_eq!(
        evictions, 0,
        "fanout: healthy sessions were evicted under fanout load"
    );

    wall_latencies.sort_unstable();
    FanoutResult {
        sessions: n_sessions as u64,
        subscribers: n_sessions as u64,
        readers: readers as u64,
        pumps,
        wall_s,
        frames,
        wall_latencies_ns: wall_latencies,
        mirrors_checked: mirrors.len() as u64,
        evictions,
    }
}

/// Serial reference: ONE client session holding all N subscriptions on
/// a 1-shard daemon, same kernel, same pump count. Sessions never touch
/// the kernel, so its final counter values must match the load runs
/// bit-for-bit.
fn run_reference(n_sessions: usize, pumps: u64) -> u64 {
    let mut daemon = Daemon::new(
        boot_machine(),
        DaemonConfig {
            shards: 1,
            ticks_per_pump: TICKS_PER_PUMP,
            inbox_cap: n_sessions + 16,
            outbox_cap: n_sessions + 16,
            max_requests_per_pump: u32::MAX,
            ..DaemonConfig::default()
        },
    );
    let n_cpus = daemon.n_cpus() as usize;
    let connector = daemon.connector();
    let mut c = MetricsClient::new(connector.connect());

    c.post(&Request::Hello {
        proto: metricsd::PROTO_VERSION,
    })
    .expect("post hello");
    daemon.pump();
    while let Ok(Some(_)) = c.try_take() {}

    for i in 0..n_sessions {
        c.post(&Request::Subscribe {
            cpu_mask: session_mask(i, n_cpus),
            metrics: session_metrics(i),
        })
        .expect("post subscribe");
    }
    daemon.pump();
    let mut sub_ids = Vec::with_capacity(n_sessions);
    while let Ok(Some(resp)) = c.try_take() {
        if let Response::Subscribed { sub_id, .. } = resp {
            sub_ids.push(sub_id);
        }
    }
    assert_eq!(sub_ids.len(), n_sessions, "reference subscriptions");

    // Same number of pumps; no reads needed — reads are kernel-free.
    for _ in 0..pumps {
        daemon.pump();
    }

    for &sub_id in &sub_ids {
        c.post(&Request::Read {
            sub_id,
            submit_ns: 0,
        })
        .expect("post read");
    }
    daemon.pump();
    let mut per_sub: Vec<Vec<(u8, u64)>> = vec![Vec::new(); n_sessions];
    while let Ok(Some(resp)) = c.try_take() {
        if let Response::Counters { sub_id, values, .. } = resp {
            let idx = sub_ids
                .iter()
                .position(|&s| s == sub_id)
                .expect("known sub");
            per_sub[idx] = values.iter().map(|v| (v.metric, v.value)).collect();
        }
    }

    let mut digest: u64 = 0xcbf29ce484222325;
    for (i, vals) in per_sub.iter().enumerate() {
        fnv1a(&mut digest, &(i as u64).to_le_bytes());
        for (metric, value) in vals {
            fnv1a(&mut digest, &[*metric]);
            fnv1a(&mut digest, &value.to_le_bytes());
        }
    }
    digest
}

struct QueryPhaseResult {
    shards: usize,
    /// Counters replies observed locally — must equal the wire SUM.
    reads: u64,
    /// RangeReply frames served during the throughput storm.
    queries: u64,
    storm_wall_s: f64,
    /// QueryRange(LATENCY_NS, P99) over the whole run.
    p99_sim_ns: u64,
    history_digest: u64,
    /// Total watchdog breaches across all configured SLOs.
    breaches: u64,
    /// Exemplar trace id from the breached p99 SLO (0 when untraced).
    exemplar_trace_id: u64,
    /// Exemplar resolved to recorded spans on both ends of the wire.
    exemplar_resolved: bool,
    /// Perfetto export validated, with at least one flow arrow.
    flow_json_ok: bool,
    perfetto_json: String,
}

/// History/SLO/tracing phase: a deliberately small, fully deterministic
/// run (serve_ns = 0, so the latency histogram is independent of shard
/// geometry) that proves
///
/// * `QueryRange` answers match the client's own local accounting ±0,
/// * answers and the whole history digest are bit-identical across
///   shard counts,
/// * an impossible p99 target induces `SloBreach`es whose exemplar
///   trace id resolves to spans recorded on both sides of the wire,
/// * the Perfetto export stitches sampled requests across the
///   client/shard/collector tracks with flow arrows.
fn run_query_phase(shards: usize, n_sessions: usize, pumps: u64, traced: bool) -> QueryPhaseResult {
    const SAMPLE_EVERY: u32 = 4;
    const STORM_PUMPS: u64 = 8;
    const STORM_QUERIES_PER_SESSION: u32 = 8;
    let trace_cfg = if traced {
        TraceConfig::enabled_with_cap(1 << 16)
    } else {
        TraceConfig::default()
    };
    let mut daemon = Daemon::new(
        boot_machine_traced(trace_cfg.clone()),
        DaemonConfig {
            shards,
            ticks_per_pump: TICKS_PER_PUMP,
            stall_grace_pumps: STALL_GRACE_PUMPS,
            // Zero queueing term: latency depends only on snapshot
            // time, never on position in a shard's queue, so the
            // histogram (and every percentile query) is shard-invariant.
            serve_ns: 0,
            slos: vec![
                // 1 sim-ns p99 is impossible once any read is served:
                // the guaranteed breach generator.
                SloSpec::p99_latency_ns(1, 4),
                // Never breached here — proves rows stay independent.
                SloSpec::evictions_per_window(1_000_000, 4),
            ],
            ..DaemonConfig::default()
        },
    );
    let n_cpus = daemon.n_cpus() as usize;
    let connector = daemon.connector();
    let mut clients: Vec<MetricsClient<ClientPipe>> = (0..n_sessions)
        .map(|_| MetricsClient::new(connector.connect()))
        .collect();
    if traced {
        for c in clients.iter_mut() {
            c.enable_tracing(&trace_cfg, SAMPLE_EVERY);
        }
    }

    for c in clients.iter_mut() {
        c.post(&Request::Hello {
            proto: metricsd::PROTO_VERSION,
        })
        .expect("post hello");
    }
    daemon.pump();
    for c in clients.iter_mut() {
        while let Ok(Some(_)) = c.try_take() {}
    }
    for (i, c) in clients.iter_mut().enumerate() {
        c.post(&Request::Subscribe {
            cpu_mask: session_mask(i, n_cpus),
            metrics: session_metrics(i),
        })
        .expect("post subscribe");
    }
    daemon.pump();
    let mut sub_ids = vec![0u32; n_sessions];
    for (i, c) in clients.iter_mut().enumerate() {
        while let Ok(Some(resp)) = c.try_take() {
            if let Response::Subscribed { sub_id, .. } = resp {
                sub_ids[i] = sub_id;
            }
        }
        assert!(sub_ids[i] != 0, "query phase: session {i} subscribed");
    }

    // Steady state: every session reads every pump (sampled requests go
    // out in the `Traced` envelope); the local histogram mirrors what
    // the daemon's history must report back.
    let mut local = Histogram::new();
    let mut reads = 0u64;
    for _pump in 0..pumps {
        for (i, c) in clients.iter_mut().enumerate() {
            let submit_ns = c.last_seen_ns;
            let req = Request::Read {
                sub_id: sub_ids[i],
                submit_ns,
            };
            if traced {
                c.post_traced(&req).expect("post traced read");
            } else {
                c.post(&req).expect("post read");
            }
        }
        daemon.pump();
        for c in clients.iter_mut() {
            while let Ok(Some(resp)) = c.try_take() {
                if let Response::Counters { latency_ns, .. } = resp {
                    reads += 1;
                    local.observe(latency_ns);
                }
            }
        }
    }

    // Correctness queries: served one pump later, which is exactly the
    // lag the history contract promises (queries during pump N see
    // rollups through pump N-1 — and every read above is in by now).
    clients[0]
        .post(&Request::QueryRange {
            series: series::READS,
            agg: agg::SUM,
            start_tick: 0,
            end_tick: u64::MAX,
            max_points: MAX_RANGE_POINTS as u32,
        })
        .expect("post sum query");
    clients[0]
        .post(&Request::QueryRange {
            series: series::LATENCY_NS,
            agg: agg::P99,
            start_tick: 0,
            end_tick: u64::MAX,
            max_points: 1,
        })
        .expect("post p99 query");
    clients[0]
        .post(&Request::GetHealth)
        .expect("post get-health");
    daemon.pump();
    let mut wire_sum: Option<u64> = None;
    let mut wire_p99: Option<u64> = None;
    let mut health: Option<(u64, Vec<metricsd::wire::SloHealth>)> = None;
    while let Ok(Some(resp)) = clients[0].try_take() {
        match resp {
            Response::RangeReply {
                series: s, points, ..
            } if s == series::READS => {
                wire_sum = Some(points.iter().map(|p| p.1).sum());
            }
            Response::RangeReply {
                series: s, points, ..
            } if s == series::LATENCY_NS => {
                wire_p99 = Some(points[0].1);
            }
            Response::Health { pumps, slos } => health = Some((pumps, slos)),
            _ => {}
        }
    }
    let wire_sum = wire_sum.expect("SUM(READS) answered");
    let wire_p99 = wire_p99.expect("P99(LATENCY_NS) answered");
    let (_, slos) = health.expect("GetHealth answered");
    assert_eq!(
        wire_sum, reads,
        "shards={shards}: wire SUM(READS) != locally observed reads"
    );
    assert_eq!(
        wire_p99,
        local.percentile(0.99),
        "shards={shards}: wire p99 != local histogram p99"
    );
    let breaches: u64 = slos.iter().map(|s| s.breaches).sum();
    let p99_row = slos
        .iter()
        .find(|s| s.kind == metricsd::SloKind::P99LatencyNs as u8)
        .expect("p99 SLO row present");
    let evict_row = slos
        .iter()
        .find(|s| s.kind == metricsd::SloKind::EvictionsPerWindow as u8)
        .expect("eviction SLO row present");
    assert!(
        p99_row.breaches >= 1,
        "shards={shards}: impossible p99 target never breached"
    );
    assert_eq!(
        evict_row.breaches, 0,
        "shards={shards}: eviction SLO breached without evictions"
    );
    let exemplar_trace_id = p99_row.exemplar_trace_id;

    // Exemplar resolution: the id the watchdog hands out must point at
    // spans recorded by a client AND inside the daemon.
    let daemon_tracks = daemon.trace_tracks();
    let has_span = |evs: &[simtrace::TraceEvent], id: u64| {
        evs.iter()
            .any(|e| matches!(e.kind, EventKind::SpanBegin) && e.a == id)
    };
    let exemplar_resolved = if traced {
        assert!(
            exemplar_trace_id != 0,
            "shards={shards}: traced run produced no exemplar"
        );
        let in_daemon = daemon_tracks
            .iter()
            .any(|t| has_span(&t.events, exemplar_trace_id));
        let in_client = clients
            .iter()
            .any(|c| has_span(&c.trace_track().events, exemplar_trace_id));
        assert!(
            in_daemon && in_client,
            "shards={shards}: exemplar {exemplar_trace_id:#x} did not resolve \
             (daemon={in_daemon} client={in_client})"
        );
        true
    } else {
        assert_eq!(
            exemplar_trace_id, 0,
            "shards={shards}: untraced run leaked an exemplar"
        );
        false
    };

    // One Perfetto timeline across client + daemon tracks, flow-linked.
    let (flow_json_ok, perfetto_json) = if traced {
        let mut tracks = Vec::new();
        for c in clients.iter().take(8) {
            tracks.push(c.trace_track());
        }
        tracks.extend(daemon_tracks);
        let json = simtrace::chrome_trace_json(&tracks);
        assert!(jsonw::validate(&json), "Perfetto export is valid JSON");
        assert!(
            json.contains("\"ph\":\"s\"") && json.contains("\"ph\":\"f\""),
            "shards={shards}: no flow arrows in the Perfetto export"
        );
        (true, json)
    } else {
        (false, String::new())
    };

    // Throughput storm: how fast does QueryRange serve when hammered?
    let t0 = Instant::now();
    let mut queries = 0u64;
    for _ in 0..STORM_PUMPS {
        for c in clients.iter_mut() {
            for _ in 0..STORM_QUERIES_PER_SESSION {
                c.post(&Request::QueryRange {
                    series: series::READS,
                    agg: agg::SUM,
                    start_tick: 0,
                    end_tick: u64::MAX,
                    max_points: 64,
                })
                .expect("post storm query");
            }
        }
        daemon.pump();
        for c in clients.iter_mut() {
            while let Ok(Some(resp)) = c.try_take() {
                if matches!(resp, Response::RangeReply { .. }) {
                    queries += 1;
                }
            }
        }
    }
    let storm_wall_s = t0.elapsed().as_secs_f64();
    assert_eq!(
        queries,
        n_sessions as u64 * STORM_PUMPS * STORM_QUERIES_PER_SESSION as u64,
        "shards={shards}: storm queries lost"
    );

    let history_digest = daemon.history().read().digest();
    QueryPhaseResult {
        shards,
        reads,
        queries,
        storm_wall_s,
        p99_sim_ns: wire_p99,
        history_digest,
        breaches,
        exemplar_trace_id,
        exemplar_resolved,
        flow_json_ok,
        perfetto_json,
    }
}

struct QuerySuite {
    queries_per_sec: f64,
    p99_sim_ns: u64,
    breaches: u64,
    exemplar_resolved: bool,
}

/// Run the query phase traced at 1/4/8 shards plus an untraced 1-shard
/// control; assert every cross-config invariant. Returns the summary
/// for the bench JSON and optionally writes the Perfetto timeline.
fn run_query_suite(n_sessions: usize, pumps: u64, trace_out: Option<&str>) -> QuerySuite {
    let traced: Vec<QueryPhaseResult> = [1usize, 4, 8]
        .iter()
        .map(|&s| run_query_phase(s, n_sessions, pumps, true))
        .collect();
    for r in &traced {
        eprintln!(
            "  query shards={}: {} reads, p99={}ns, {} queries in {:.3}s ({:.0}/s), \
             breaches={}, exemplar={:#x}, history_digest={:016x}",
            r.shards,
            r.reads,
            r.p99_sim_ns,
            r.queries,
            r.storm_wall_s,
            r.queries as f64 / r.storm_wall_s.max(1e-9),
            r.breaches,
            r.exemplar_trace_id,
            r.history_digest,
        );
    }
    let base = &traced[0];
    for r in &traced[1..] {
        assert_eq!(
            r.p99_sim_ns, base.p99_sim_ns,
            "QueryRange p99 differs across shard counts"
        );
        assert_eq!(
            r.history_digest, base.history_digest,
            "history digest differs across shard counts"
        );
        assert_eq!(r.reads, base.reads, "reads differ across shard counts");
        assert_eq!(
            r.exemplar_trace_id, base.exemplar_trace_id,
            "SLO exemplar differs across shard counts"
        );
    }
    // Tracing must not perturb the measurement: the untraced control
    // reports the same reads and p99 (its history digest differs only
    // by the exemplar ids, which is why it is not compared).
    let control = run_query_phase(1, n_sessions, pumps, false);
    assert_eq!(
        control.reads, base.reads,
        "tracing changed the number of reads served"
    );
    assert_eq!(
        control.p99_sim_ns, base.p99_sim_ns,
        "tracing changed the served latency distribution"
    );
    if let Some(path) = trace_out {
        std::fs::write(path, &base.perfetto_json).expect("write trace JSON");
        eprintln!("  wrote {path}");
    }
    let best_qps = traced
        .iter()
        .map(|r| r.queries as f64 / r.storm_wall_s.max(1e-9))
        .fold(0.0f64, f64::max);
    QuerySuite {
        queries_per_sec: best_qps,
        p99_sim_ns: base.p99_sim_ns,
        breaches: base.breaches,
        exemplar_resolved: base.exemplar_resolved && base.flow_json_ok,
    }
}

fn main() {
    // Assertion failures print the last stashed flight-recorder dump.
    simtrace::postmortem::install();
    let mut quick = false;
    let mut sessions: Option<usize> = None;
    let mut pumps: Option<u64> = None;
    let mut reps: Option<u64> = None;
    let mut out = "BENCH_metricsd.json".to_string();
    let mut gate_scaling = false;
    // Wall-clock noise margin for the scaling gate. Serving is flat
    // across shard counts by design, so the two rates are equal in
    // expectation and a strict `>=` would flip on timer jitter; 5%
    // absorbs that while still catching real regressions (the per-pump
    // thread-spawn bug this guards against cost 30%).
    let mut scaling_tolerance = 0.05;
    let mut floor_per_core: Option<f64> = None;
    let mut fanout_sessions: Option<usize> = None;
    let mut fanout_pumps: Option<u64> = None;
    let mut no_fanout = false;
    let mut query_smoke = false;
    let mut floor_queries: Option<f64> = None;
    let mut trace_out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--sessions" => {
                sessions = Some(args.next().expect("--sessions N").parse().expect("count"))
            }
            "--pumps" => pumps = Some(args.next().expect("--pumps T").parse().expect("count")),
            "--reps" => reps = Some(args.next().expect("--reps R").parse().expect("count")),
            "--out" => out = args.next().expect("--out PATH"),
            "--gate-scaling" => gate_scaling = true,
            "--scaling-tolerance" => {
                scaling_tolerance = args
                    .next()
                    .expect("--scaling-tolerance FRAC")
                    .parse()
                    .expect("fraction");
            }
            "--floor-per-core" => {
                floor_per_core = Some(
                    args.next()
                        .expect("--floor-per-core N")
                        .parse()
                        .expect("reads/s"),
                )
            }
            "--fanout-sessions" => {
                fanout_sessions = Some(
                    args.next()
                        .expect("--fanout-sessions N")
                        .parse()
                        .expect("count"),
                )
            }
            "--fanout-pumps" => {
                fanout_pumps = Some(
                    args.next()
                        .expect("--fanout-pumps T")
                        .parse()
                        .expect("count"),
                )
            }
            "--no-fanout" => no_fanout = true,
            "--query-smoke" => query_smoke = true,
            "--floor-queries" => {
                floor_queries = Some(
                    args.next()
                        .expect("--floor-queries N")
                        .parse()
                        .expect("queries/s"),
                )
            }
            "--trace-out" => trace_out = Some(args.next().expect("--trace-out PATH")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: loadgen [--quick] [--sessions N] [--pumps T] [--reps R] [--out PATH]\n\
                     \u{20}      [--gate-scaling] [--scaling-tolerance FRAC] [--floor-per-core N]\n\
                     \u{20}      [--fanout-sessions N] [--fanout-pumps T] [--no-fanout]\n\
                     \u{20}      [--query-smoke] [--floor-queries N] [--trace-out PATH]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    let n_sessions = sessions.unwrap_or(if quick { 1024 } else { 2048 });
    let pumps = pumps.unwrap_or(if quick { 16 } else { 40 });
    let reps = reps.unwrap_or(3);
    let fanout_sessions = fanout_sessions.unwrap_or(100_000);
    let fanout_pumps = fanout_pumps.unwrap_or(if quick { 6 } else { 10 });
    let n_cores = cores();

    // Fast path for tier-1: just the query/SLO/tracing phase, with its
    // full cross-shard + exemplar + flow-export assertions.
    if query_smoke {
        eprintln!("loadgen: query smoke, shards 1/4/8 + untraced control");
        let suite = run_query_suite(64, 24, trace_out.as_deref());
        if let Some(floor) = floor_queries {
            if suite.queries_per_sec < floor {
                eprintln!(
                    "FAIL: query throughput floor violated ({:.0} < {floor:.0})",
                    suite.queries_per_sec
                );
                std::process::exit(1);
            }
        }
        eprintln!(
            "loadgen: query smoke OK ({:.0} queries/s, {} breaches, exemplar resolved)",
            suite.queries_per_sec, suite.breaches
        );
        return;
    }

    eprintln!(
        "loadgen: {n_sessions} sessions, {pumps} pumps, {reps} reps, \
         shards 1/4/8 + serial reference ({n_cores} cores)"
    );
    let results = run_best_of(&[1, 4, 8], n_sessions, pumps, reps);
    for r in &results {
        eprintln!(
            "  shards={}: {} reads in {:.3}s ({:.0} reads/s, {:.0}/core), \
                 sim p50={}ns p99={}ns, wall p50={}ns p99={}ns, \
                 digest={:016x}, evicted_slow_consumer={}",
            r.shards,
            r.reads,
            r.wall_s,
            r.reads as f64 / r.wall_s.max(1e-9),
            r.reads as f64 / r.wall_s.max(1e-9) / n_cores as f64,
            percentile_of_sorted(&r.latencies_ns, 0.50),
            percentile_of_sorted(&r.latencies_ns, 0.99),
            percentile_of_sorted(&r.wall_latencies_ns, 0.50),
            percentile_of_sorted(&r.wall_latencies_ns, 0.99),
            r.digest,
            r.evicted_slow_consumer
        );
    }
    let reference = run_reference(n_sessions, pumps);
    eprintln!("  serial reference digest={reference:016x}");

    let fanout = if no_fanout {
        None
    } else {
        eprintln!("loadgen: high-fanout phase, {fanout_sessions} sessions, {fanout_pumps} pumps");
        let f = run_fanout(fanout_sessions, fanout_pumps);
        eprintln!(
            "  fanout: {} sessions ({} subscribers, {} readers), {} frames in {:.3}s \
             ({:.0} frames/s, {:.0}/core), reader wall p50={}ns p99={}ns, \
             {} mirrors CRC-synced, evictions={}",
            f.sessions,
            f.subscribers,
            f.readers,
            f.frames,
            f.wall_s,
            f.frames as f64 / f.wall_s.max(1e-9),
            f.frames as f64 / f.wall_s.max(1e-9) / n_cores as f64,
            percentile_of_sorted(&f.wall_latencies_ns, 0.50),
            percentile_of_sorted(&f.wall_latencies_ns, 0.99),
            f.mirrors_checked,
            f.evictions,
        );
        Some(f)
    };

    eprintln!("loadgen: query/SLO phase, shards 1/4/8 + untraced control");
    let query_suite = run_query_suite(
        if quick { 64 } else { 128 },
        if quick { 24 } else { 32 },
        trace_out.as_deref(),
    );

    let digests_match = results.iter().all(|r| r.digest == reference);
    let evictions_ok = results
        .iter()
        .all(|r| r.evicted_slow_consumer && r.healthy_evictions == 0);
    let rps = |r: &ConfigResult| r.reads as f64 / r.wall_s.max(1e-9);
    let rps_1 = results
        .iter()
        .find(|r| r.shards == 1)
        .map(rps)
        .unwrap_or(0.0);
    let rps_8 = results
        .iter()
        .find(|r| r.shards == 8)
        .map(rps)
        .unwrap_or(0.0);
    let scaling_ok = rps_8 >= rps_1;
    let scaling_gate_ok = rps_8 >= rps_1 * (1.0 - scaling_tolerance);
    let min_per_core = results
        .iter()
        .map(|r| rps(r) / n_cores as f64)
        .fold(f64::INFINITY, f64::min);

    let mut w = jsonw::JsonWriter::new();
    w.begin_obj();
    w.field_str("bench", "metricsd");
    w.field_bool("quick", quick);
    w.field_u64("sessions", n_sessions as u64);
    w.field_u64("pumps", pumps);
    w.field_u64("reps", reps);
    w.field_u64("ticks_per_pump", TICKS_PER_PUMP as u64);
    w.field_u64("stall_grace_pumps", STALL_GRACE_PUMPS as u64);
    w.field_u64("cores", n_cores);
    w.key("configs");
    w.begin_arr();
    for r in &results {
        w.begin_obj();
        w.field_u64("shards", r.shards as u64);
        w.field_u64("reads", r.reads);
        w.field_f64("wall_s", r.wall_s);
        w.field_f64("reads_per_sec", rps(r));
        w.field_f64("reads_per_sec_per_core", rps(r) / n_cores as f64);
        w.field_u64(
            "p50_latency_sim_ns",
            percentile_of_sorted(&r.latencies_ns, 0.50),
        );
        w.field_u64(
            "p99_latency_sim_ns",
            percentile_of_sorted(&r.latencies_ns, 0.99),
        );
        w.field_u64(
            "p50_latency_wall_ns",
            percentile_of_sorted(&r.wall_latencies_ns, 0.50),
        );
        w.field_u64(
            "p99_latency_wall_ns",
            percentile_of_sorted(&r.wall_latencies_ns, 0.99),
        );
        w.field_str("digest", &format!("{:016x}", r.digest));
        w.field_bool("evicted_slow_consumer", r.evicted_slow_consumer);
        w.field_u64("healthy_evictions", r.healthy_evictions);
        w.end_obj();
    }
    w.end_arr();
    if let Some(f) = &fanout {
        w.key("fanout");
        w.begin_obj();
        w.field_u64("sessions", f.sessions);
        w.field_u64("subscribers", f.subscribers);
        w.field_u64("readers", f.readers);
        w.field_u64("pumps", f.pumps);
        w.field_f64("wall_s", f.wall_s);
        w.field_u64("frames", f.frames);
        w.field_f64("frames_per_sec", f.frames as f64 / f.wall_s.max(1e-9));
        w.field_f64(
            "frames_per_sec_per_core",
            f.frames as f64 / f.wall_s.max(1e-9) / n_cores as f64,
        );
        w.field_u64(
            "reader_p50_wall_ns",
            percentile_of_sorted(&f.wall_latencies_ns, 0.50),
        );
        w.field_u64(
            "reader_p99_wall_ns",
            percentile_of_sorted(&f.wall_latencies_ns, 0.99),
        );
        w.field_u64("mirrors_checked", f.mirrors_checked);
        w.field_u64("evictions", f.evictions);
        w.end_obj();
    }
    w.key("queries");
    w.begin_obj();
    w.field_f64("queries_per_sec", query_suite.queries_per_sec);
    w.field_u64("p99_latency_sim_ns", query_suite.p99_sim_ns);
    w.field_u64("slo_breaches", query_suite.breaches);
    w.field_bool("exemplar_resolved", query_suite.exemplar_resolved);
    w.end_obj();
    w.field_str("serial_reference_digest", &format!("{reference:016x}"));
    w.field_bool("digests_match", digests_match);
    w.field_bool("evictions_ok", evictions_ok);
    w.field_bool("scaling_ok", scaling_ok);
    w.field_bool("scaling_gate_ok", scaling_gate_ok);
    w.field_f64("scaling_tolerance", scaling_tolerance);
    w.field_f64("min_reads_per_sec_per_core", min_per_core);
    w.end_obj();
    let json = w.finish();
    assert!(jsonw::validate(&json), "loadgen emits valid JSON");
    std::fs::write(&out, &json).expect("write BENCH json");
    println!("{json}");
    eprintln!("wrote {out}");

    if !digests_match {
        eprintln!("FAIL: shard digests diverge from the serial reference");
        std::process::exit(1);
    }
    if !evictions_ok {
        eprintln!("FAIL: eviction ledger wrong (missing slow-consumer eviction or a healthy one)");
        std::process::exit(1);
    }
    if gate_scaling && !scaling_gate_ok {
        eprintln!(
            "FAIL: 8-shard throughput regressed below 1-shard \
             ({rps_8:.0} < {rps_1:.0} - {:.0}%)",
            scaling_tolerance * 100.0
        );
        std::process::exit(1);
    }
    if let Some(floor) = floor_per_core {
        if min_per_core < floor {
            eprintln!("FAIL: per-core throughput floor violated ({min_per_core:.0} < {floor:.0})");
            std::process::exit(1);
        }
    }
    if let Some(floor) = floor_queries {
        if query_suite.queries_per_sec < floor {
            eprintln!(
                "FAIL: query throughput floor violated ({:.0} < {floor:.0})",
                query_suite.queries_per_sec
            );
            std::process::exit(1);
        }
    }
}
