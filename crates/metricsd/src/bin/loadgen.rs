//! loadgen — drive thousands of simulated client sessions against the
//! daemon and prove the serving layer does not perturb the measurement.
//!
//! For each worker-shard count in {1, 4, 8} it boots an identical
//! kernel (same spec, seed, workload, fault plan), connects N sessions
//! plus one deliberately slow streaming consumer (tiny outbox, never
//! drains — it must be evicted, not wedge the daemon), runs T lockstep
//! pumps with a deterministic per-session read cadence, then reads every
//! subscription one final time and digests the counter values (FNV-1a).
//!
//! The digests must be bit-identical across 1/4/8 shards AND match a
//! serial reference: a single client session holding all N
//! subscriptions on a 1-shard daemon. Throughput and latency are
//! allowed to differ; counts are not.
//!
//! Emits `BENCH_metricsd.json`. Exit status is non-zero on any digest
//! mismatch or a missing eviction.
//!
//! ```text
//! loadgen [--quick] [--sessions N] [--pumps T] [--out PATH]
//! ```

use std::time::Instant;

use metricsd::queue::ClientPipe;
use metricsd::wire::{metrics, Request, Response};
use metricsd::{Daemon, DaemonConfig, MetricsClient};
use simcpu::machine::MachineSpec;
use simcpu::phase::Phase;
use simcpu::types::{CpuId, CpuMask};
use simos::faults::{FaultKind, FaultPlan};
use simos::kernel::{Kernel, KernelConfig, KernelHandle};
use simos::task::{Op, ScriptedProgram};
use simtrace::metrics::{percentile_of_sorted, Histogram};

const SEED: u64 = 42;
const TICKS_PER_PUMP: u32 = 20;

/// Deterministic per-session subscription shape.
fn session_mask(i: usize, n_cpus: usize) -> u64 {
    let width = n_cpus.min(64);
    let a = i % width;
    let b = (i * 7 + 3) % width;
    (1u64 << a) | (1u64 << b)
}

fn session_metrics(i: usize) -> u8 {
    (i % metrics::ALL as usize) as u8 + 1
}

fn session_cadence(i: usize) -> u64 {
    1 + (i % 7) as u64
}

/// Identical machine for every configuration: fixed seed, standing
/// workload, and a fault plan that exercises hotplug + flaky sysfs +
/// RAPL wrap bursts while serving.
fn boot_machine() -> KernelHandle {
    let kernel = Kernel::boot_handle(
        MachineSpec::raptor_lake_i7_13700(),
        KernelConfig {
            seed: SEED,
            ..KernelConfig::default()
        },
    );
    {
        let mut k = kernel.lock();
        let n_cpus = k.machine().n_cpus();
        for cpu in (0..n_cpus).step_by(3) {
            k.spawn(
                &format!("w{cpu}"),
                Box::new(ScriptedProgram::new([
                    Op::Compute(Phase::scalar(u64::MAX / 4)),
                    Op::Exit,
                ])),
                CpuMask::from_cpus([cpu]),
                0,
            );
        }
        k.install_faults(
            &FaultPlan::new(SEED)
                .at(
                    100_000_000,
                    FaultKind::CpuOffline {
                        cpu: CpuId(17),
                        down_ns: Some(150_000_000),
                    },
                )
                .at(150_000_000, FaultKind::SysfsFlaky { dur_ns: 60_000_000 })
                .at(
                    250_000_000,
                    FaultKind::RaplWrapBurst {
                        wraps: 2,
                        extra_uj: 5_000_000,
                    },
                ),
        );
    }
    kernel
}

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

struct ConfigResult {
    shards: usize,
    reads: u64,
    wall_s: f64,
    latencies_ns: Vec<u64>,
    digest: u64,
    evicted_slow_consumer: bool,
}

/// Drain every pending reply on a client, recording Counters for the
/// digest/latency accounting.
fn drain(
    c: &mut MetricsClient<ClientPipe>,
    latencies: &mut Vec<u64>,
    reads: &mut u64,
    last_counters: &mut Vec<(u8, u64)>,
) {
    while let Ok(Some(resp)) = c.try_take() {
        if let Response::Counters {
            latency_ns, values, ..
        } = resp
        {
            *reads += 1;
            latencies.push(latency_ns);
            last_counters.clear();
            last_counters.extend(values.iter().map(|v| (v.metric, v.value)));
        }
    }
}

/// One full load run against a daemon with `shards` worker shards.
fn run_config(shards: usize, n_sessions: usize, pumps: u64) -> ConfigResult {
    let mut daemon = Daemon::new(
        boot_machine(),
        DaemonConfig {
            shards,
            ticks_per_pump: TICKS_PER_PUMP,
            ..DaemonConfig::default()
        },
    );
    let n_cpus = daemon.n_cpus() as usize;
    let connector = daemon.connector();

    let mut clients: Vec<MetricsClient<ClientPipe>> = (0..n_sessions)
        .map(|_| MetricsClient::new(connector.connect()))
        .collect();
    // The slow consumer: tiny outbox, streams every pump, never drains.
    let mut slow = MetricsClient::new(connector.connect_with_outbox_cap(2));

    // Pump 1: hellos.
    for c in clients.iter_mut() {
        c.post(&Request::Hello {
            proto: metricsd::PROTO_VERSION,
        })
        .expect("post hello");
    }
    slow.post(&Request::Hello {
        proto: metricsd::PROTO_VERSION,
    })
    .expect("post hello");
    daemon.pump();
    for c in clients.iter_mut() {
        while let Ok(Some(_)) = c.try_take() {}
    }
    while let Ok(Some(_)) = slow.try_take() {}

    // Pump 2: subscriptions (baseline snapshot identical across configs).
    for (i, c) in clients.iter_mut().enumerate() {
        c.post(&Request::Subscribe {
            cpu_mask: session_mask(i, n_cpus),
            metrics: session_metrics(i),
        })
        .expect("post subscribe");
    }
    slow.post(&Request::Subscribe {
        cpu_mask: 1,
        metrics: metrics::ALL,
    })
    .expect("post subscribe");
    slow.post(&Request::Stream { every_pumps: 1 })
        .expect("post stream");
    daemon.pump();
    let mut sub_ids = vec![0u32; n_sessions];
    for (i, c) in clients.iter_mut().enumerate() {
        while let Ok(Some(resp)) = c.try_take() {
            if let Response::Subscribed { sub_id, .. } = resp {
                sub_ids[i] = sub_id;
            }
        }
        assert!(sub_ids[i] != 0, "session {i} got its subscription");
    }
    // The slow consumer stops draining here, for good.

    // Steady state: deterministic read cadence, thousands in flight.
    let mut latencies: Vec<u64> = Vec::new();
    let mut reads: u64 = 0;
    let mut last: Vec<Vec<(u8, u64)>> = vec![Vec::new(); n_sessions];
    let t0 = Instant::now();
    for pump in 0..pumps {
        for (i, c) in clients.iter_mut().enumerate() {
            if pump % session_cadence(i) == 0 {
                let submit_ns = c.last_seen_ns;
                c.post(&Request::Read {
                    sub_id: sub_ids[i],
                    submit_ns,
                })
                .expect("post read");
            }
            // A sprinkle of hot-path queries served from the cache.
            if i % 97 == 0 && pump % 5 == 0 {
                c.post(&Request::LatestSample).expect("post sample");
            }
        }
        daemon.pump();
        for (i, c) in clients.iter_mut().enumerate() {
            drain(c, &mut latencies, &mut reads, &mut last[i]);
        }
    }

    // Final read: every session, one more pump, then digest.
    for (i, c) in clients.iter_mut().enumerate() {
        let submit_ns = c.last_seen_ns;
        c.post(&Request::Read {
            sub_id: sub_ids[i],
            submit_ns,
        })
        .expect("post final read");
    }
    daemon.pump();
    for (i, c) in clients.iter_mut().enumerate() {
        drain(c, &mut latencies, &mut reads, &mut last[i]);
    }
    let wall_s = t0.elapsed().as_secs_f64();

    // Self-metrics cross-check: the daemon's wire-served read-latency
    // histogram (one extra pump so the final reads are absorbed) must
    // match a local histogram over the very latencies this run observed,
    // and the clock-inversion counter must be zero — client submit times
    // always trail the virtual serve clock.
    clients[0]
        .post(&Request::GetSelfMetrics)
        .expect("post self-metrics");
    daemon.pump();
    let mut wire_hist = None;
    let mut wire_inversions = 0u64;
    while let Ok(Some(resp)) = clients[0].try_take() {
        if let Response::SelfMetrics { counters, hists } = resp {
            wire_inversions = counters
                .iter()
                .find(|(n, _)| n == "latency_inversions")
                .map(|(_, v)| *v)
                .unwrap_or(0);
            wire_hist = hists.into_iter().find(|h| h.name == "read_latency_ns");
        }
    }
    simtrace::postmortem::stash(simtrace::text_dump(&daemon.trace_tracks(), 32));
    let wire_hist = wire_hist.expect("daemon served a read_latency_ns histogram");
    let mut local = Histogram::new();
    for &v in &latencies {
        local.observe(v);
    }
    assert_eq!(wire_hist.count, local.count(), "read count over the wire");
    assert_eq!(wire_hist.min, local.min(), "latency min over the wire");
    assert_eq!(wire_hist.max, local.max(), "latency max over the wire");
    assert_eq!(wire_hist.p50, local.percentile(0.50), "p50 over the wire");
    assert_eq!(wire_hist.p90, local.percentile(0.90), "p90 over the wire");
    assert_eq!(wire_hist.p99, local.percentile(0.99), "p99 over the wire");
    assert_eq!(wire_inversions, 0, "no latency inversions expected");

    let mut digest: u64 = 0xcbf29ce484222325;
    for (i, vals) in last.iter().enumerate() {
        fnv1a(&mut digest, &(i as u64).to_le_bytes());
        for (metric, value) in vals {
            fnv1a(&mut digest, &[*metric]);
            fnv1a(&mut digest, &value.to_le_bytes());
        }
    }

    // The slow consumer must have been evicted — daemon still serving,
    // its queue closed with a best-effort Evicted notice at the tail.
    let mut saw_evicted = false;
    loop {
        match slow.try_take() {
            Ok(Some(Response::Evicted { .. })) | Err(metricsd::ClientError::Evicted { .. }) => {
                saw_evicted = true;
                break;
            }
            Ok(Some(_)) => continue,
            Ok(None) | Err(_) => break,
        }
    }
    let evicted = saw_evicted && daemon.stats().evictions == 1;

    latencies.sort_unstable();
    ConfigResult {
        shards,
        reads,
        wall_s,
        latencies_ns: latencies,
        digest,
        evicted_slow_consumer: evicted,
    }
}

/// Serial reference: ONE client session holding all N subscriptions on
/// a 1-shard daemon, same kernel, same pump count. Sessions never touch
/// the kernel, so its final counter values must match the load runs
/// bit-for-bit.
fn run_reference(n_sessions: usize, pumps: u64) -> u64 {
    let mut daemon = Daemon::new(
        boot_machine(),
        DaemonConfig {
            shards: 1,
            ticks_per_pump: TICKS_PER_PUMP,
            inbox_cap: n_sessions + 16,
            outbox_cap: n_sessions + 16,
            max_requests_per_pump: u32::MAX,
            ..DaemonConfig::default()
        },
    );
    let n_cpus = daemon.n_cpus() as usize;
    let connector = daemon.connector();
    let mut c = MetricsClient::new(connector.connect());

    c.post(&Request::Hello {
        proto: metricsd::PROTO_VERSION,
    })
    .expect("post hello");
    daemon.pump();
    while let Ok(Some(_)) = c.try_take() {}

    for i in 0..n_sessions {
        c.post(&Request::Subscribe {
            cpu_mask: session_mask(i, n_cpus),
            metrics: session_metrics(i),
        })
        .expect("post subscribe");
    }
    daemon.pump();
    let mut sub_ids = Vec::with_capacity(n_sessions);
    while let Ok(Some(resp)) = c.try_take() {
        if let Response::Subscribed { sub_id, .. } = resp {
            sub_ids.push(sub_id);
        }
    }
    assert_eq!(sub_ids.len(), n_sessions, "reference subscriptions");

    // Same number of pumps; no reads needed — reads are kernel-free.
    for _ in 0..pumps {
        daemon.pump();
    }

    for &sub_id in &sub_ids {
        c.post(&Request::Read {
            sub_id,
            submit_ns: 0,
        })
        .expect("post read");
    }
    daemon.pump();
    let mut per_sub: Vec<Vec<(u8, u64)>> = vec![Vec::new(); n_sessions];
    while let Ok(Some(resp)) = c.try_take() {
        if let Response::Counters { sub_id, values, .. } = resp {
            let idx = sub_ids
                .iter()
                .position(|&s| s == sub_id)
                .expect("known sub");
            per_sub[idx] = values.iter().map(|v| (v.metric, v.value)).collect();
        }
    }

    let mut digest: u64 = 0xcbf29ce484222325;
    for (i, vals) in per_sub.iter().enumerate() {
        fnv1a(&mut digest, &(i as u64).to_le_bytes());
        for (metric, value) in vals {
            fnv1a(&mut digest, &[*metric]);
            fnv1a(&mut digest, &value.to_le_bytes());
        }
    }
    digest
}

fn main() {
    // Assertion failures print the last stashed flight-recorder dump.
    simtrace::postmortem::install();
    let mut quick = false;
    let mut sessions: Option<usize> = None;
    let mut pumps: Option<u64> = None;
    let mut out = "BENCH_metricsd.json".to_string();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--sessions" => {
                sessions = Some(args.next().expect("--sessions N").parse().expect("count"))
            }
            "--pumps" => pumps = Some(args.next().expect("--pumps T").parse().expect("count")),
            "--out" => out = args.next().expect("--out PATH"),
            "--help" | "-h" => {
                eprintln!("usage: loadgen [--quick] [--sessions N] [--pumps T] [--out PATH]");
                return;
            }
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    let n_sessions = sessions.unwrap_or(if quick { 200 } else { 1200 });
    let pumps = pumps.unwrap_or(if quick { 16 } else { 40 });

    eprintln!("loadgen: {n_sessions} sessions, {pumps} pumps, shards 1/4/8 + serial reference");
    let results: Vec<ConfigResult> = [1usize, 4, 8]
        .iter()
        .map(|&s| {
            let r = run_config(s, n_sessions, pumps);
            eprintln!(
                "  shards={}: {} reads in {:.3}s ({:.0} reads/s), p50={}ns p99={}ns, \
                 digest={:016x}, evicted_slow_consumer={}",
                r.shards,
                r.reads,
                r.wall_s,
                r.reads as f64 / r.wall_s.max(1e-9),
                percentile_of_sorted(&r.latencies_ns, 0.50),
                percentile_of_sorted(&r.latencies_ns, 0.99),
                r.digest,
                r.evicted_slow_consumer
            );
            r
        })
        .collect();
    let reference = run_reference(n_sessions, pumps);
    eprintln!("  serial reference digest={reference:016x}");

    let digests_match = results.iter().all(|r| r.digest == reference);
    let evictions_ok = results.iter().all(|r| r.evicted_slow_consumer);

    let mut w = jsonw::JsonWriter::new();
    w.begin_obj();
    w.field_str("bench", "metricsd");
    w.field_bool("quick", quick);
    w.field_u64("sessions", n_sessions as u64);
    w.field_u64("pumps", pumps);
    w.field_u64("ticks_per_pump", TICKS_PER_PUMP as u64);
    w.key("configs");
    w.begin_arr();
    for r in &results {
        w.begin_obj();
        w.field_u64("shards", r.shards as u64);
        w.field_u64("reads", r.reads);
        w.field_f64("wall_s", r.wall_s);
        w.field_f64("reads_per_sec", r.reads as f64 / r.wall_s.max(1e-9));
        w.field_u64(
            "p50_latency_sim_ns",
            percentile_of_sorted(&r.latencies_ns, 0.50),
        );
        w.field_u64(
            "p99_latency_sim_ns",
            percentile_of_sorted(&r.latencies_ns, 0.99),
        );
        w.field_str("digest", &format!("{:016x}", r.digest));
        w.field_bool("evicted_slow_consumer", r.evicted_slow_consumer);
        w.end_obj();
    }
    w.end_arr();
    w.field_str("serial_reference_digest", &format!("{reference:016x}"));
    w.field_bool("digests_match", digests_match);
    w.field_bool("evictions_ok", evictions_ok);
    w.end_obj();
    let json = w.finish();
    assert!(jsonw::validate(&json), "loadgen emits valid JSON");
    std::fs::write(&out, &json).expect("write BENCH json");
    println!("{json}");
    eprintln!("wrote {out}");

    if !digests_match {
        eprintln!("FAIL: shard digests diverge from the serial reference");
        std::process::exit(1);
    }
    if !evictions_ok {
        eprintln!("FAIL: slow consumer was not evicted");
        std::process::exit(1);
    }
}
