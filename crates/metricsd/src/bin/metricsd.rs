//! metricsd — serve simulated PAPI counters to many clients over TCP.
//!
//! Boots a simulated machine with a deterministic background workload,
//! starts the sharded daemon, binds a TCP-loopback listener, and pumps.
//!
//! ```text
//! metricsd [--listen ADDR] [--shards N] [--workers N] [--pumps N] [--pump-ms MS]
//!          [--machine NAME] [--sched NAME]
//! ```
//!
//! `--workers` caps the serving pool (0 = auto: one per available
//! core, never more than shards; a single worker serves all shards
//! inline on the pump thread). Shard count fixes determinism; worker
//! count only fixes parallelism — digests are identical either way.
//!
//! `--sched` picks the kernel scheduler from the `simsched` registry
//! (`cfs|cfs_unaware|vtime|capacity|thermal`); unknown names are
//! rejected at startup. Defaults to `SIM_SCHED` / `cfs`.

use metricsd::{Daemon, DaemonConfig};
use simcpu::machine::MachineSpec;
use simcpu::phase::Phase;
use simcpu::types::CpuMask;
use simos::kernel::{Kernel, KernelConfig};
use simos::task::{Op, ScriptedProgram};
use simos::SchedName;

fn main() {
    let mut listen = "127.0.0.1:0".to_string();
    let mut shards = 4usize;
    let mut workers = 0usize;
    let mut pumps = 2000u64;
    let mut pump_ms = 5u64;
    let mut machine = "raptor".to_string();
    let mut sched: Option<SchedName> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--listen" => listen = args.next().expect("--listen ADDR"),
            "--shards" => {
                shards = args
                    .next()
                    .expect("--shards N")
                    .parse()
                    .expect("shard count")
            }
            "--workers" => {
                workers = args
                    .next()
                    .expect("--workers N")
                    .parse()
                    .expect("worker count")
            }
            "--pumps" => pumps = args.next().expect("--pumps N").parse().expect("pump count"),
            "--pump-ms" => {
                pump_ms = args
                    .next()
                    .expect("--pump-ms MS")
                    .parse()
                    .expect("pump period")
            }
            "--machine" => machine = args.next().expect("--machine NAME"),
            "--sched" => {
                let name = args.next().expect("--sched NAME");
                sched = Some(SchedName::parse(&name).unwrap_or_else(|| {
                    eprintln!(
                        "unknown scheduler '{name}' (cfs|cfs_unaware|vtime|capacity|thermal)"
                    );
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: metricsd [--listen ADDR] [--shards N] [--workers N] [--pumps N] \
                     [--pump-ms MS] [--machine raptor|skylake] [--sched NAME]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
    }

    let spec = match machine.as_str() {
        "raptor" => MachineSpec::raptor_lake_i7_13700(),
        "skylake" => MachineSpec::skylake_quad(),
        other => {
            eprintln!("unknown machine {other} (want raptor|skylake)");
            std::process::exit(2);
        }
    };
    let mut cfg = KernelConfig::default();
    if let Some(s) = sched {
        cfg.sched = s;
    }
    let kernel = Kernel::boot_handle(spec, cfg);
    let n_cpus = kernel.lock().machine().n_cpus();
    // A standing workload so served counters move: one long-running
    // scalar worker per fourth CPU.
    for cpu in (0..n_cpus).step_by(4) {
        kernel.lock().spawn(
            &format!("w{cpu}"),
            Box::new(ScriptedProgram::new([
                Op::Compute(Phase::scalar(u64::MAX / 4)),
                Op::Exit,
            ])),
            CpuMask::from_cpus([cpu]),
            0,
        );
    }

    let mut daemon = Daemon::new(
        kernel,
        DaemonConfig {
            shards,
            workers,
            ..DaemonConfig::default()
        },
    );
    let listener =
        metricsd::tcp::Listener::spawn(daemon.connector(), &listen).expect("bind listener");
    println!(
        "metricsd listening on {} ({} shards, {} worker{})",
        listener.addr(),
        shards,
        daemon.workers(),
        if daemon.workers() == 1 { "" } else { "s" }
    );

    for _ in 0..pumps {
        daemon.pump();
        std::thread::sleep(std::time::Duration::from_millis(pump_ms));
    }
    let s = daemon.stats();
    println!(
        "metricsd done: pumps={} sessions={} reads_served={} evictions={}",
        s.pumps, s.sessions, s.reads_served, s.evictions
    );
}
