//! Deterministic transport fault injection.
//!
//! [`ChaosTransport`] wraps any [`Transport`] and injects transport
//! faults from a per-session seeded plan, mirroring the `simos::faults`
//! design: the same seed and the same operation sequence reproduce the
//! same faults byte-for-byte, so a chaotic run is as replayable as a
//! clean one. The injected fault kinds:
//!
//! * **reset** — the connection dies (the inner transport is shut
//!   down); every later operation fails until the caller reconnects,
//! * **stall** — the link goes quiet for a window of operations;
//!   frames sent meanwhile are held and delivered when it clears,
//! * **short write** — only a prefix of the frame (cut inside the
//!   4-byte header region) reaches the peer,
//! * **truncate** — the frame loses part of its payload (header
//!   intact, length prefix now lies),
//! * **corrupt** — one bit of the frame flips in flight,
//! * **delay** — one frame is held back for a fixed number of
//!   operations, then delivered (order within each direction is
//!   preserved — a delayed frame delays the frames behind it, exactly
//!   like a congested link).
//!
//! All mutations stay inside the peer's typed-error envelope: a short,
//! truncated, or bit-flipped frame decodes to `WireError` /
//! `BAD_FRAME` / `BAD_CHECKSUM` — never a panic, and (thanks to the
//! seq-envelope checksums in [`crate::wire`]) never a silently
//! *different* valid request.
//!
//! Fault draws happen only when a frame actually moves (one draw per
//! frame per direction), so over the in-process lockstep pipe the
//! schedule is fully deterministic. Over TCP the draw sequence is still
//! per-frame deterministic, but wall-clock timing can reorder which
//! frame meets which draw; use the pipe when bit-replayability matters.
//!
//! Env knobs (strict, like `SIM_EXEC_MODE` / `SIM_TRACE`): `SIM_CHAOS`
//! selects a preset by name, `SIM_CHAOS_SEED` sets the base seed.
//! Unknown values panic — a typo'd knob silently injecting nothing is
//! how "survived chaos" claims go wrong.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::client::{ClientError, Transport};

/// Per-mille fault rates and window lengths for one chaotic link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Base seed; combine with a per-session index via
    /// [`ChaosConfig::with_seed`] so each link draws its own plan.
    pub seed: u64,
    /// Per-mille chance (per moving frame) of a connection reset.
    pub reset_pm: u32,
    /// Per-mille chance of opening a stall window.
    pub stall_pm: u32,
    /// Per-mille chance of a short write (cut inside the header).
    pub short_write_pm: u32,
    /// Per-mille chance of payload truncation (header intact).
    pub truncate_pm: u32,
    /// Per-mille chance of a single-bit flip.
    pub corrupt_pm: u32,
    /// Per-mille chance of holding one frame back.
    pub delay_pm: u32,
    /// Operations a stall window lasts.
    pub stall_ops: u32,
    /// Operations a delayed frame is held.
    pub delay_ops: u32,
}

impl ChaosConfig {
    /// No injection at all (every rate zero).
    pub fn off() -> ChaosConfig {
        ChaosConfig {
            seed: 0,
            reset_pm: 0,
            stall_pm: 0,
            short_write_pm: 0,
            truncate_pm: 0,
            corrupt_pm: 0,
            delay_pm: 0,
            stall_ops: 4,
            delay_ops: 2,
        }
    }

    /// A named preset. `off` disables injection; one preset per fault
    /// kind isolates it; `mix` turns everything on at once; `heavy` is
    /// `mix` at roughly triple the rates.
    pub fn preset(name: &str) -> Option<ChaosConfig> {
        let base = ChaosConfig::off();
        match name.trim() {
            "off" => Some(base),
            "reset" => Some(ChaosConfig {
                reset_pm: 30,
                ..base
            }),
            "stall" => Some(ChaosConfig {
                stall_pm: 60,
                ..base
            }),
            "short" => Some(ChaosConfig {
                short_write_pm: 60,
                ..base
            }),
            "truncate" => Some(ChaosConfig {
                truncate_pm: 60,
                ..base
            }),
            "corrupt" => Some(ChaosConfig {
                corrupt_pm: 60,
                ..base
            }),
            "delay" => Some(ChaosConfig {
                delay_pm: 80,
                ..base
            }),
            "mix" => Some(ChaosConfig {
                reset_pm: 15,
                stall_pm: 20,
                short_write_pm: 20,
                truncate_pm: 20,
                corrupt_pm: 20,
                delay_pm: 30,
                ..base
            }),
            "heavy" => Some(ChaosConfig {
                reset_pm: 40,
                stall_pm: 60,
                short_write_pm: 60,
                truncate_pm: 60,
                corrupt_pm: 60,
                delay_pm: 80,
                ..base
            }),
            _ => None,
        }
    }

    /// Parse a `SIM_CHAOS` value: a preset name, optionally with a
    /// `@<seed>` suffix (`"mix@7"`).
    pub fn parse(s: &str) -> Option<ChaosConfig> {
        let s = s.trim();
        match s.split_once('@') {
            None => ChaosConfig::preset(s),
            Some((name, seed)) => {
                let seed: u64 = seed.parse().ok()?;
                Some(ChaosConfig::preset(name)?.with_seed(seed))
            }
        }
    }

    /// Read `SIM_CHAOS` (default: off) and `SIM_CHAOS_SEED` (default:
    /// 0, overridden by a `@seed` suffix on `SIM_CHAOS`).
    ///
    /// Panics on an unknown value — a typo'd knob silently injecting
    /// nothing is how "survived chaos" claims get mislabelled.
    pub fn from_env() -> ChaosConfig {
        let mut cfg = match std::env::var("SIM_CHAOS") {
            Err(_) => ChaosConfig::off(),
            Ok(v) => ChaosConfig::parse(&v).unwrap_or_else(|| {
                panic!(
                    "SIM_CHAOS: unknown value {v:?} \
                     (expected off|reset|stall|short|truncate|corrupt|delay|mix|heavy, \
                     optionally with @<seed>)"
                )
            }),
        };
        if let Ok(v) = std::env::var("SIM_CHAOS_SEED") {
            let seed: u64 = v
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("SIM_CHAOS_SEED: unknown value {v:?} (expected a u64)"));
            cfg = cfg.with_seed(seed);
        }
        cfg
    }

    /// Same rates, different seed (per-session plans).
    pub fn with_seed(mut self, seed: u64) -> ChaosConfig {
        self.seed = seed;
        self
    }

    /// True when every rate is zero.
    pub fn is_off(&self) -> bool {
        self.reset_pm == 0
            && self.stall_pm == 0
            && self.short_write_pm == 0
            && self.truncate_pm == 0
            && self.corrupt_pm == 0
            && self.delay_pm == 0
    }
}

/// What a chaotic link did to the traffic, for cross-checking against
/// client retry counts and the daemon's self-metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    pub frames_sent: u64,
    pub frames_recvd: u64,
    pub resets: u64,
    pub stalls: u64,
    pub short_writes: u64,
    pub truncations: u64,
    pub corruptions: u64,
    pub delays: u64,
}

impl ChaosStats {
    /// Total injected faults of every kind.
    pub fn total(&self) -> u64 {
        self.resets
            + self.stalls
            + self.short_writes
            + self.truncations
            + self.corruptions
            + self.delays
    }

    pub fn merge(&mut self, other: &ChaosStats) {
        self.frames_sent += other.frames_sent;
        self.frames_recvd += other.frames_recvd;
        self.resets += other.resets;
        self.stalls += other.stalls;
        self.short_writes += other.short_writes;
        self.truncations += other.truncations;
        self.corruptions += other.corruptions;
        self.delays += other.delays;
    }
}

enum Fault {
    Reset,
    Stall,
    ShortWrite,
    Truncate,
    Corrupt,
    Delay,
}

/// A [`Transport`] wrapper injecting faults from a seeded plan.
pub struct ChaosTransport<T: Transport> {
    inner: T,
    cfg: ChaosConfig,
    rng: StdRng,
    dead: bool,
    /// Remaining operations in the current stall window.
    stall_left: u32,
    /// Outbound frames held by stall/delay: `(ops_left, frame)`.
    held_out: VecDeque<(u32, Vec<u8>)>,
    /// Inbound frames held by stall/delay.
    held_in: VecDeque<(u32, Vec<u8>)>,
    stats: ChaosStats,
    /// Optional cumulative sink, merged into on drop — lets a
    /// reconnecting client account for every transport it burned
    /// through, not just the live one.
    shared: Option<Arc<Mutex<ChaosStats>>>,
}

impl<T: Transport> Drop for ChaosTransport<T> {
    fn drop(&mut self) {
        if let Some(s) = &self.shared {
            s.lock().merge(&self.stats);
        }
    }
}

impl<T: Transport> ChaosTransport<T> {
    pub fn new(inner: T, cfg: ChaosConfig) -> ChaosTransport<T> {
        ChaosTransport {
            inner,
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            dead: false,
            stall_left: 0,
            held_out: VecDeque::new(),
            held_in: VecDeque::new(),
            stats: ChaosStats::default(),
            shared: None,
        }
    }

    /// Wrap `inner` with the preset selected by `SIM_CHAOS` /
    /// `SIM_CHAOS_SEED` — the one-line opt-in for any client boot
    /// path. With the env unset this is a pure passthrough (the `off`
    /// preset moves every frame untouched).
    pub fn from_env(inner: T) -> ChaosTransport<T> {
        ChaosTransport::new(inner, ChaosConfig::from_env())
    }

    /// Accumulate this transport's stats into `sink` when it drops.
    pub fn with_shared_stats(mut self, sink: Arc<Mutex<ChaosStats>>) -> ChaosTransport<T> {
        self.shared = Some(sink);
        self
    }

    /// The link was reset (by injection) and needs a reconnect.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    pub fn stats(&self) -> ChaosStats {
        self.stats
    }

    /// One draw per moving frame: at most one fault kind fires.
    fn draw(&mut self) -> Option<Fault> {
        if self.cfg.is_off() {
            return None;
        }
        let roll = self.rng.gen_range_u64(0, 1000) as u32;
        let mut edge = self.cfg.reset_pm;
        if roll < edge {
            return Some(Fault::Reset);
        }
        edge += self.cfg.stall_pm;
        if roll < edge {
            return Some(Fault::Stall);
        }
        edge += self.cfg.short_write_pm;
        if roll < edge {
            return Some(Fault::ShortWrite);
        }
        edge += self.cfg.truncate_pm;
        if roll < edge {
            return Some(Fault::Truncate);
        }
        edge += self.cfg.corrupt_pm;
        if roll < edge {
            return Some(Fault::Corrupt);
        }
        edge += self.cfg.delay_pm;
        if roll < edge {
            return Some(Fault::Delay);
        }
        None
    }

    /// Advance hold countdowns by one operation and flush what is due.
    /// Order within each direction is preserved: a frame behind a held
    /// one waits at least as long.
    fn tick_holds(&mut self) {
        if self.stall_left > 0 {
            self.stall_left -= 1;
        }
        for h in self.held_out.iter_mut().chain(self.held_in.iter_mut()) {
            h.0 = h.0.saturating_sub(1);
        }
        while let Some((left, _)) = self.held_out.front() {
            if *left > 0 || self.stall_left > 0 {
                break;
            }
            let (_, frame) = self.held_out.pop_front().unwrap();
            if self.inner.send(frame).is_err() {
                self.dead = true;
                break;
            }
        }
    }

    /// Mutate a frame according to the drawn fault. Returns `None` when
    /// the frame should be held instead of delivered now.
    fn apply(&mut self, fault: &Fault, mut frame: Vec<u8>) -> Option<Vec<u8>> {
        match fault {
            Fault::Reset => unreachable!("reset handled by callers"),
            Fault::Stall => {
                self.stats.stalls += 1;
                self.stall_left = self.cfg.stall_ops.max(1);
                None
            }
            Fault::Delay => {
                self.stats.delays += 1;
                None
            }
            Fault::ShortWrite => {
                self.stats.short_writes += 1;
                let cut = self.rng.gen_range_u64(0, 4.min(frame.len() as u64).max(1)) as usize;
                frame.truncate(cut);
                Some(frame)
            }
            Fault::Truncate => {
                self.stats.truncations += 1;
                if frame.len() > 5 {
                    let cut = self.rng.gen_range_u64(4, frame.len() as u64) as usize;
                    frame.truncate(cut);
                }
                Some(frame)
            }
            Fault::Corrupt => {
                self.stats.corruptions += 1;
                if !frame.is_empty() {
                    let byte = self.rng.gen_range_u64(0, frame.len() as u64) as usize;
                    let bit = self.rng.gen_range_u64(0, 8) as u8;
                    frame[byte] ^= 1 << bit;
                }
                Some(frame)
            }
        }
    }

    /// Pull the next inbound frame through the fault plan.
    fn chaotic_recv(&mut self) -> Option<Vec<u8>> {
        self.tick_holds();
        if self.dead {
            return None;
        }
        // Held inbound frames deliver first (FIFO) once due and not
        // inside a stall window.
        if let Some((left, _)) = self.held_in.front() {
            if *left == 0 && self.stall_left == 0 {
                let (_, frame) = self.held_in.pop_front().unwrap();
                self.stats.frames_recvd += 1;
                return Some(frame);
            }
        }
        let frame = self.inner.try_recv()?;
        match self.draw() {
            None => {
                if self.stall_left > 0 || !self.held_in.is_empty() {
                    // Can't overtake a stall window or a held frame.
                    self.held_in.push_back((self.stall_left, frame));
                    return None;
                }
                self.stats.frames_recvd += 1;
                Some(frame)
            }
            Some(Fault::Reset) => {
                self.stats.resets += 1;
                self.dead = true;
                self.inner.shutdown();
                None
            }
            Some(f @ (Fault::Stall | Fault::Delay)) => {
                let hold = match f {
                    Fault::Stall => {
                        self.stats.stalls += 1;
                        self.stall_left = self.cfg.stall_ops.max(1);
                        self.stall_left
                    }
                    _ => {
                        self.stats.delays += 1;
                        self.cfg.delay_ops.max(1)
                    }
                };
                self.held_in.push_back((hold, frame));
                None
            }
            Some(f) => {
                let mutated = self.apply(&f, frame).expect("mutating faults deliver");
                if !self.held_in.is_empty() {
                    self.held_in.push_back((0, mutated));
                    return None;
                }
                self.stats.frames_recvd += 1;
                Some(mutated)
            }
        }
    }
}

impl<T: Transport> Transport for ChaosTransport<T> {
    fn send(&mut self, frame: Vec<u8>) -> Result<(), ClientError> {
        self.tick_holds();
        if self.dead {
            return Err(ClientError::Send("chaos: connection reset"));
        }
        self.stats.frames_sent += 1;
        match self.draw() {
            None => {
                if self.stall_left > 0 || !self.held_out.is_empty() {
                    self.held_out.push_back((self.stall_left, frame));
                    return Ok(());
                }
                self.inner.send(frame)
            }
            Some(Fault::Reset) => {
                self.stats.resets += 1;
                self.dead = true;
                self.inner.shutdown();
                Err(ClientError::Send("chaos: connection reset"))
            }
            Some(f @ (Fault::Stall | Fault::Delay)) => {
                // The frame is held, not lost: "sent" from the caller's
                // view, delivered when the window clears.
                let hold = match f {
                    Fault::Stall => {
                        self.stats.stalls += 1;
                        self.stall_left = self.cfg.stall_ops.max(1);
                        self.stall_left
                    }
                    _ => {
                        self.stats.delays += 1;
                        self.cfg.delay_ops.max(1)
                    }
                };
                self.held_out.push_back((hold, frame));
                Ok(())
            }
            Some(f) => {
                let mutated = self.apply(&f, frame).expect("mutating faults deliver");
                if !self.held_out.is_empty() {
                    self.held_out.push_back((0, mutated));
                    return Ok(());
                }
                self.inner.send(mutated)
            }
        }
    }

    fn recv(&mut self, timeout: Duration) -> Option<Vec<u8>> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(frame) = self.chaotic_recv() {
                return Some(frame);
            }
            if self.dead || std::time::Instant::now() >= deadline {
                return None;
            }
            std::thread::yield_now();
        }
    }

    fn try_recv(&mut self) -> Option<Vec<u8>> {
        self.chaotic_recv()
    }

    fn shutdown(&mut self) {
        self.dead = true;
        self.inner.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::FrameQueue;
    use crate::wire::{Request, MAX_FRAME};

    /// Loopback transport: sends land in a queue we can inspect;
    /// receives come from another we can feed.
    struct Loop {
        out: std::sync::Arc<FrameQueue>,
        inn: std::sync::Arc<FrameQueue>,
    }

    impl Loop {
        fn new() -> Loop {
            Loop {
                out: FrameQueue::new(1024),
                inn: FrameQueue::new(1024),
            }
        }
    }

    impl Transport for Loop {
        fn send(&mut self, frame: Vec<u8>) -> Result<(), ClientError> {
            self.out
                .push(frame)
                .map_err(|_| ClientError::Send("loop full"))
        }
        fn recv(&mut self, _timeout: Duration) -> Option<Vec<u8>> {
            self.inn.try_pop()
        }
        fn try_recv(&mut self) -> Option<Vec<u8>> {
            self.inn.try_pop()
        }
        fn shutdown(&mut self) {
            self.out.close();
            self.inn.close();
        }
    }

    fn frame() -> Vec<u8> {
        Request::Read {
            sub_id: 1,
            submit_ns: 99,
        }
        .encode()
    }

    #[test]
    fn off_config_is_transparent() {
        let lo = Loop::new();
        let out = lo.out.clone();
        let mut t = ChaosTransport::new(lo, ChaosConfig::off());
        for _ in 0..100 {
            t.send(frame()).unwrap();
        }
        assert_eq!(out.len(), 100);
        assert_eq!(out.try_pop().unwrap(), frame());
        assert_eq!(t.stats().total(), 0);
    }

    #[test]
    fn same_seed_same_plan() {
        let cfg = ChaosConfig::preset("mix").unwrap().with_seed(0xfeed);
        let run = || {
            let lo = Loop::new();
            let out = lo.out.clone();
            let mut t = ChaosTransport::new(lo, cfg);
            let mut delivered = Vec::new();
            for _ in 0..300 {
                let _ = t.send(frame());
            }
            while let Some(f) = out.try_pop() {
                delivered.push(f);
            }
            (delivered, t.stats())
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(a, b, "delivered byte streams identical");
        assert_eq!(sa, sb, "fault counts identical");
        assert!(sa.total() > 0, "mix preset injected something");
    }

    #[test]
    fn reset_kills_the_link() {
        let cfg = ChaosConfig {
            reset_pm: 1000,
            ..ChaosConfig::off()
        };
        let mut t = ChaosTransport::new(Loop::new(), cfg);
        assert!(t.send(frame()).is_err());
        assert!(t.is_dead());
        assert!(t.send(frame()).is_err());
        assert_eq!(t.stats().resets, 1, "one reset, then the link is dead");
    }

    #[test]
    fn stall_holds_then_flushes_in_order() {
        let cfg = ChaosConfig {
            stall_pm: 1000,
            stall_ops: 3,
            ..ChaosConfig::off()
        };
        let lo = Loop::new();
        let out = lo.out.clone();
        let mut t = ChaosTransport::new(lo, cfg);
        // Every send stalls (rate 1000‰), so frames only move once the
        // window expires — but nothing is ever lost.
        let mk = |i: u8| {
            Request::Read {
                sub_id: i as u32,
                submit_ns: 0,
            }
            .encode()
        };
        t.send(mk(1)).unwrap();
        t.send(mk(2)).unwrap();
        assert_eq!(out.len(), 0, "stalled frames are held");
        // Idle ticks (empty recv polls) advance the windows.
        for _ in 0..64 {
            let _ = t.try_recv();
        }
        let got: Vec<Vec<u8>> = std::iter::from_fn(|| out.try_pop()).collect();
        assert_eq!(got, vec![mk(1), mk(2)], "flushed in order, none lost");
        assert!(t.stats().stalls >= 1);
    }

    #[test]
    fn corrupt_flips_exactly_one_bit() {
        let cfg = ChaosConfig {
            corrupt_pm: 1000,
            ..ChaosConfig::off()
        };
        let lo = Loop::new();
        let out = lo.out.clone();
        let mut t = ChaosTransport::new(lo, cfg);
        t.send(frame()).unwrap();
        let got = out.try_pop().unwrap();
        let orig = frame();
        assert_eq!(got.len(), orig.len());
        let flipped: u32 = got
            .iter()
            .zip(&orig)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1, "exactly one bit differs");
    }

    #[test]
    fn truncate_and_short_write_shrink_the_frame() {
        for (cfg, name) in [
            (
                ChaosConfig {
                    truncate_pm: 1000,
                    ..ChaosConfig::off()
                },
                "truncate",
            ),
            (
                ChaosConfig {
                    short_write_pm: 1000,
                    ..ChaosConfig::off()
                },
                "short",
            ),
        ] {
            let lo = Loop::new();
            let out = lo.out.clone();
            let mut t = ChaosTransport::new(lo, cfg);
            t.send(frame()).unwrap();
            let got = out.try_pop().unwrap();
            assert!(got.len() < frame().len(), "{name} shrank the frame");
            assert!(got.len() <= 4 + MAX_FRAME);
        }
    }

    #[test]
    fn delay_preserves_order() {
        let cfg = ChaosConfig {
            delay_pm: 500,
            delay_ops: 2,
            ..ChaosConfig::off()
        };
        let lo = Loop::new();
        let out = lo.out.clone();
        let mut t = ChaosTransport::new(lo, cfg);
        let mk = |i: u32| {
            Request::Read {
                sub_id: i,
                submit_ns: 0,
            }
            .encode()
        };
        for i in 0..50 {
            t.send(mk(i)).unwrap();
        }
        for _ in 0..64 {
            let _ = t.try_recv();
        }
        let got: Vec<Vec<u8>> = std::iter::from_fn(|| out.try_pop()).collect();
        let want: Vec<Vec<u8>> = (0..50).map(mk).collect();
        assert_eq!(got, want, "delays never reorder or drop frames");
        assert!(t.stats().delays > 0, "delays fired at 500‰");
    }

    #[test]
    fn parse_presets_and_seed_suffix() {
        assert_eq!(ChaosConfig::parse("off"), Some(ChaosConfig::off()));
        assert!(ChaosConfig::parse("mix").is_some());
        let seeded = ChaosConfig::parse("mix@77").unwrap();
        assert_eq!(seeded.seed, 77);
        assert_eq!(
            ChaosConfig { seed: 0, ..seeded },
            ChaosConfig::preset("mix").unwrap()
        );
        assert_eq!(ChaosConfig::parse("tyop"), None);
        assert_eq!(ChaosConfig::parse("mix@notanumber"), None);
        assert_eq!(ChaosConfig::parse(" heavy "), ChaosConfig::preset("heavy"));
        assert!(ChaosConfig::preset("off").unwrap().is_off());
        for p in ["reset", "stall", "short", "truncate", "corrupt", "delay"] {
            assert!(!ChaosConfig::preset(p).unwrap().is_off(), "{p} injects");
        }
    }
}
