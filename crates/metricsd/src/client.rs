//! `metrics-client` — the client library over any frame transport.
//!
//! [`MetricsClient`] wraps a [`Transport`] (the in-process
//! [`ClientPipe`] or the TCP transport in [`crate::tcp`]) with typed
//! request/response calls. Two usage styles:
//!
//! * blocking RPC (`hello`, `read`, …) — each call sends one request
//!   and waits for the matching reply; used by tools and tests.
//! * posted I/O (`post` + `try_take`) — fire requests without waiting,
//!   drain replies later; used by `loadgen` to keep thousands of
//!   sessions in flight against the daemon's lockstep pump.

use std::time::Duration;

use simtrace::{span, EventKind, TraceConfig, TraceSink, Track};

use crate::queue::{ClientPipe, PushError};
use crate::wire::{stream_crc, Request, Response, TraceCtx, WireError, PROTO_VERSION};

#[derive(Debug)]
pub enum ClientError {
    /// Transport refused the frame (backpressure or closed connection).
    Send(&'static str),
    /// No reply within the timeout.
    Timeout,
    /// Reply failed to decode.
    Wire(WireError),
    /// The daemon answered with an error response.
    Daemon { code: u16, msg: String },
    /// The daemon evicted this session.
    Evicted { reason: String },
    /// Got a structurally valid but contextually wrong reply.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Send(w) => write!(f, "send failed: {w}"),
            ClientError::Timeout => write!(f, "timed out waiting for reply"),
            ClientError::Wire(e) => write!(f, "bad reply frame: {e}"),
            ClientError::Daemon { code, msg } => write!(f, "daemon error {code}: {msg}"),
            ClientError::Evicted { reason } => write!(f, "evicted: {reason}"),
            ClientError::Unexpected(w) => write!(f, "unexpected reply: {w}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Wire(e)
    }
}

/// A bidirectional frame transport.
pub trait Transport {
    fn send(&mut self, frame: Vec<u8>) -> Result<(), ClientError>;
    fn recv(&mut self, timeout: Duration) -> Option<Vec<u8>>;
    fn try_recv(&mut self) -> Option<Vec<u8>>;
    /// Tear the connection down from the client side. After this the
    /// daemon sees an unclean transport death (parking the session for
    /// resume) rather than an orderly `Close`. Default is a no-op for
    /// transports with nothing to release.
    fn shutdown(&mut self) {}
}

impl Transport for ClientPipe {
    fn send(&mut self, frame: Vec<u8>) -> Result<(), ClientError> {
        ClientPipe::send(self, frame).map_err(|e| match e {
            PushError::Full => ClientError::Send("inbox full"),
            PushError::Closed => ClientError::Send("connection closed"),
            PushError::TooBig => ClientError::Send("frame exceeds MAX_FRAME"),
        })
    }

    fn recv(&mut self, timeout: Duration) -> Option<Vec<u8>> {
        self.recv_blocking(timeout)
    }

    fn try_recv(&mut self) -> Option<Vec<u8>> {
        ClientPipe::try_recv(self)
    }

    fn shutdown(&mut self) {
        // Closing our tx is what the daemon's reaper reads as a dead
        // transport (inbox closed + drained).
        self.tx.close();
    }
}

/// A client session.
pub struct MetricsClient<T: Transport> {
    t: T,
    /// Session id assigned by the daemon's Welcome.
    pub session_id: u64,
    /// Resume token from the Welcome — pass it in `Request::Resume` to
    /// pick the session back up after a transport death.
    pub session_token: u64,
    /// CPU count reported at Hello.
    pub n_cpus: u32,
    /// Sim time of the newest snapshot seen in any reply — the client's
    /// clock for stamping `submit_ns`.
    pub last_seen_ns: u64,
    timeout: Duration,
    /// Client-side flight recorder for causal spans (disabled by
    /// default: tracing costs one branch per call).
    trace: TraceSink,
    /// Sample every Nth RPC when tracing (0 = trace nothing).
    sample_every: u32,
    /// Monotonic client-side request sequence — with the session token,
    /// the seed of every sampled request's deterministic trace id.
    rpcs: u64,
    /// Trace id of the most recently sampled RPC.
    last_trace_id: u64,
}

impl<T: Transport> MetricsClient<T> {
    /// Wrap a transport; call [`MetricsClient::hello`] before anything
    /// else.
    pub fn new(t: T) -> MetricsClient<T> {
        MetricsClient {
            t,
            session_id: 0,
            session_token: 0,
            n_cpus: 0,
            last_seen_ns: 0,
            timeout: Duration::from_secs(10),
            trace: TraceSink::disabled(),
            sample_every: 0,
            rpcs: 0,
            last_trace_id: 0,
        }
    }

    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// Enable causal tracing: every `sample_every`-th RPC is wrapped in
    /// a [`Request::Traced`] envelope (trace id derived from the
    /// session token and the request sequence — seeded sim state, never
    /// wall clock) and records linked `rpc:client` spans here.
    pub fn enable_tracing(&mut self, cfg: &TraceConfig, sample_every: u32) {
        self.trace = TraceSink::new(cfg);
        self.sample_every = sample_every;
    }

    /// The client-side span track for export.
    pub fn trace_track(&self) -> Track {
        Track::new("client", self.trace.events())
    }

    /// Fire a request without waiting for the reply.
    pub fn post(&mut self, req: &Request) -> Result<(), ClientError> {
        self.t.send(req.encode())
    }

    /// As [`MetricsClient::post`], sampling every Nth request into the
    /// causal trace (see [`MetricsClient::enable_tracing`]). Returns
    /// the trace id when sampled, 0 otherwise. The client hop is an
    /// instantaneous span at post time: lockstep drivers drain replies
    /// out of band, so there is no reply to close a longer slice
    /// against — the flow arrows into the daemon hops still link.
    pub fn post_traced(&mut self, req: &Request) -> Result<u64, ClientError> {
        match self.sample_rpc(req) {
            Some((frame, trace_id)) => {
                let now = self.last_seen_ns;
                self.trace
                    .record(now, EventKind::SpanBegin, span::CLIENT, trace_id, 0);
                self.trace
                    .record(now, EventKind::SpanEnd, span::CLIENT, trace_id, 0);
                self.t.send(frame)?;
                Ok(trace_id)
            }
            None => {
                self.post(req)?;
                Ok(0)
            }
        }
    }

    /// Non-blocking: decode the next pending reply, if any.
    pub fn try_take(&mut self) -> Result<Option<Response>, ClientError> {
        match self.t.try_recv() {
            None => Ok(None),
            Some(frame) => {
                let resp = Response::decode(&frame)?;
                self.observe(&resp);
                Ok(Some(resp))
            }
        }
    }

    /// Blocking: decode the next reply or time out.
    pub fn take(&mut self) -> Result<Response, ClientError> {
        match self.t.recv(self.timeout) {
            None => Err(ClientError::Timeout),
            Some(frame) => {
                let resp = Response::decode(&frame)?;
                self.observe(&resp);
                Ok(resp)
            }
        }
    }

    fn observe(&mut self, resp: &Response) {
        match resp {
            Response::Counters { time_ns, .. }
            | Response::Sample { time_ns, .. }
            | Response::TickKeyframe { time_ns, .. } => {
                self.last_seen_ns = self.last_seen_ns.max(*time_ns);
            }
            _ => {}
        }
        // Stream pushes carry no envelope: the receipt span derives the
        // snapshot's flow id from the tick, exactly as the collector
        // and the pushing shard did, so the hops link without any wire
        // bytes.
        if self.trace.enabled() {
            if let Response::TickKeyframe { tick, .. } | Response::TickDelta { tick, .. } = resp {
                let flow = span::snapshot_flow_id(*tick);
                let t = self.last_seen_ns;
                self.trace
                    .record(t, EventKind::SpanBegin, span::PUSH, flow, 0);
                self.trace
                    .record(t, EventKind::SpanEnd, span::PUSH, flow, 0);
            }
        }
    }

    /// If this call is sampled, the encoded traced frame and its trace
    /// id; otherwise `None` (the caller sends the plain request).
    fn sample_rpc(&mut self, req: &Request) -> Option<(Vec<u8>, u64)> {
        self.rpcs += 1;
        if !self.trace.enabled()
            || self.sample_every == 0
            || !self.rpcs.is_multiple_of(self.sample_every as u64)
        {
            return None;
        }
        let trace_id = span::rpc_trace_id(self.session_token, self.rpcs);
        self.last_trace_id = trace_id;
        let ctx = TraceCtx {
            trace_id,
            parent_span: 0,
            sampled: true,
        };
        Some((Request::traced(ctx, req).encode(), trace_id))
    }

    /// Trace id of the most recently sampled RPC (0 = none yet) —
    /// lets tests resolve an SLO exemplar back to this client.
    pub fn last_trace_id(&self) -> u64 {
        self.last_trace_id
    }

    fn rpc(&mut self, req: &Request) -> Result<Response, ClientError> {
        let resp = match self.sample_rpc(req) {
            Some((frame, trace_id)) => {
                self.trace.record(
                    self.last_seen_ns,
                    EventKind::SpanBegin,
                    span::CLIENT,
                    trace_id,
                    0,
                );
                self.t.send(frame)?;
                let resp = self.take();
                self.trace.record(
                    self.last_seen_ns,
                    EventKind::SpanEnd,
                    span::CLIENT,
                    trace_id,
                    0,
                );
                resp?
            }
            None => {
                self.post(req)?;
                self.take()?
            }
        };
        match resp {
            Response::Err { code, msg } => Err(ClientError::Daemon { code, msg }),
            Response::Evicted { reason } => Err(ClientError::Evicted { reason }),
            other => Ok(other),
        }
    }

    /// Handshake; must be the first call on a session.
    pub fn hello(&mut self) -> Result<(), ClientError> {
        match self.rpc(&Request::Hello {
            proto: PROTO_VERSION,
        })? {
            Response::Welcome {
                session_id,
                session_token,
                n_cpus,
                ..
            } => {
                self.session_id = session_id;
                self.session_token = session_token;
                self.n_cpus = n_cpus;
                Ok(())
            }
            _ => Err(ClientError::Unexpected("wanted Welcome")),
        }
    }

    /// Hardware description as JSON (served from the snapshot cache).
    pub fn hardware_info(&mut self) -> Result<String, ClientError> {
        match self.rpc(&Request::GetHardwareInfo)? {
            Response::HardwareInfo { json } => Ok(json),
            _ => Err(ClientError::Unexpected("wanted HardwareInfo")),
        }
    }

    /// Available preset names (served from the snapshot cache).
    pub fn presets(&mut self) -> Result<Vec<String>, ClientError> {
        match self.rpc(&Request::ListPresets)? {
            Response::Presets { names } => Ok(names),
            _ => Err(ClientError::Unexpected("wanted Presets")),
        }
    }

    /// Subscribe to a metric set over a CPU bitmask; returns the sub id.
    pub fn subscribe(&mut self, cpu_mask: u64, metrics: u8) -> Result<u32, ClientError> {
        match self.rpc(&Request::Subscribe { cpu_mask, metrics })? {
            Response::Subscribed { sub_id, .. } => Ok(sub_id),
            _ => Err(ClientError::Unexpected("wanted Subscribed")),
        }
    }

    /// Read a subscription's deltas since baseline.
    pub fn read(&mut self, sub_id: u32) -> Result<Response, ClientError> {
        let submit_ns = self.last_seen_ns;
        match self.rpc(&Request::Read { sub_id, submit_ns })? {
            r @ Response::Counters { .. } => Ok(r),
            _ => Err(ClientError::Unexpected("wanted Counters")),
        }
    }

    /// Re-baseline a subscription at the current snapshot.
    pub fn reset(&mut self, sub_id: u32) -> Result<(), ClientError> {
        match self.rpc(&Request::ResetSub { sub_id })? {
            Response::Subscribed { .. } => Ok(()),
            _ => Err(ClientError::Unexpected("wanted Subscribed")),
        }
    }

    /// Latest telemetry sample (temperature / energy / mean frequency).
    pub fn latest_sample(&mut self) -> Result<Response, ClientError> {
        match self.rpc(&Request::LatestSample)? {
            r @ Response::Sample { .. } => Ok(r),
            _ => Err(ClientError::Unexpected("wanted Sample")),
        }
    }

    /// Ask the daemon to push Counters for every subscription each
    /// `every_pumps` pumps (0 disables).
    pub fn stream(&mut self, every_pumps: u32) -> Result<(), ClientError> {
        match self.rpc(&Request::Stream { every_pumps })? {
            Response::Subscribed { .. } => Ok(()),
            _ => Err(ClientError::Unexpected("wanted ack")),
        }
    }

    /// Ask the daemon to push delta-encoded tick frames every
    /// `every_pumps` pumps (0 disables). Feed the pushed
    /// `TickKeyframe`/`TickDelta` frames to a [`StreamMirror`].
    pub fn stream_deltas(&mut self, every_pumps: u32) -> Result<(), ClientError> {
        match self.rpc(&Request::StreamDeltas { every_pumps })? {
            Response::Subscribed { .. } => Ok(()),
            _ => Err(ClientError::Unexpected("wanted ack")),
        }
    }

    /// Report the mirror's position to the daemon. `tick == 0` is a
    /// nack: the next push will be a full keyframe.
    pub fn ack_tick(&mut self, tick: u64) -> Result<(), ClientError> {
        match self.rpc(&Request::AckTick { tick })? {
            Response::Subscribed { .. } => Ok(()),
            _ => Err(ClientError::Unexpected("wanted ack")),
        }
    }

    /// Daemon-wide serving statistics.
    pub fn stats(&mut self) -> Result<crate::server::DaemonStats, ClientError> {
        match self.rpc(&Request::Stats)? {
            Response::Stats {
                sessions,
                reads_served,
                evictions,
                pumps,
            } => Ok(crate::server::DaemonStats {
                sessions,
                reads_served,
                evictions,
                pumps,
            }),
            _ => Err(ClientError::Unexpected("wanted Stats")),
        }
    }

    /// The daemon's self-metrics registry view: named counters plus
    /// histogram summaries, frozen at the serving pump's start.
    #[allow(clippy::type_complexity)]
    pub fn self_metrics(
        &mut self,
    ) -> Result<(Vec<(String, u64)>, Vec<crate::wire::HistSummary>), ClientError> {
        match self.rpc(&Request::GetSelfMetrics)? {
            Response::SelfMetrics { counters, hists } => Ok((counters, hists)),
            _ => Err(ClientError::Unexpected("wanted SelfMetrics")),
        }
    }

    /// Ranged query over the daemon's rollup history. Returns the raw
    /// [`Response::RangeReply`].
    pub fn query_range(
        &mut self,
        series: u8,
        agg: u8,
        start_tick: u64,
        end_tick: u64,
        max_points: u32,
    ) -> Result<Response, ClientError> {
        match self.rpc(&Request::QueryRange {
            series,
            agg,
            start_tick,
            end_tick,
            max_points,
        })? {
            r @ Response::RangeReply { .. } => Ok(r),
            _ => Err(ClientError::Unexpected("wanted RangeReply")),
        }
    }

    /// The SLO watchdog's breach state, one row per configured SLO.
    pub fn get_health(&mut self) -> Result<(u64, Vec<crate::wire::SloHealth>), ClientError> {
        match self.rpc(&Request::GetHealth)? {
            Response::Health { pumps, slos } => Ok((pumps, slos)),
            _ => Err(ClientError::Unexpected("wanted Health")),
        }
    }

    /// Close the session (best-effort; the daemon reaps it next pump).
    pub fn close(&mut self) -> Result<(), ClientError> {
        match self.rpc(&Request::Close)? {
            Response::Closed => Ok(()),
            _ => Err(ClientError::Unexpected("wanted Closed")),
        }
    }
}

/// What [`StreamMirror::apply`] did with a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MirrorOutcome {
    /// The frame advanced the mirror.
    Applied,
    /// The frame could not be applied (unsynced mirror, base-tick gap,
    /// CPU-count mismatch, or CRC failure after apply). The mirror is
    /// now unsynced; send [`Request::AckTick`] with `tick == 0` to nack
    /// and the daemon will push a keyframe.
    NeedKeyframe,
    /// Not a stream frame; the caller should handle it itself.
    NotStream,
}

/// Client-side reconstruction of the daemon's per-tick counter state
/// from a delta-encoded push stream.
///
/// Feed every pushed [`Response`] through [`StreamMirror::apply`]:
/// keyframes (re)establish the full state, deltas advance it, and the
/// per-frame CRC — computed by the daemon over the post-apply state —
/// proves the reconstruction is bit-exact. Any gap flips the mirror to
/// unsynced until the next keyframe; deltas carry no online-flag
/// changes (a hotplug forces a keyframe on the daemon side via the
/// CRC/nack path, since frozen counters no longer match).
#[derive(Debug, Default, Clone)]
pub struct StreamMirror {
    /// True once a keyframe has landed and every frame since applied.
    pub synced: bool,
    /// Tick of the last applied frame.
    pub tick: u64,
    /// Sim time of the last applied frame.
    pub time_ns: u64,
    /// Package temperature (milli-°C) at `tick`.
    pub temp_mc: i64,
    /// Cumulative package energy (µJ) at `tick`.
    pub energy_uj: u64,
    /// Per-CPU cumulative (instructions, cycles) at `tick`.
    pub cpus: Vec<(u64, u64)>,
    /// Per-CPU online flags as of the last keyframe.
    pub online: Vec<bool>,
    /// Keyframes applied.
    pub keyframes: u64,
    /// Deltas applied.
    pub deltas: u64,
    /// Frames that forced a resync (gap or CRC mismatch).
    pub desyncs: u64,
}

impl StreamMirror {
    pub fn new() -> StreamMirror {
        StreamMirror::default()
    }

    /// Apply one pushed frame. See [`MirrorOutcome`].
    pub fn apply(&mut self, resp: &Response) -> MirrorOutcome {
        match resp {
            Response::TickKeyframe {
                tick,
                time_ns,
                temp_mc,
                energy_uj,
                crc,
                cpus,
            } => {
                self.tick = *tick;
                self.time_ns = *time_ns;
                self.temp_mc = *temp_mc;
                self.energy_uj = *energy_uj;
                self.cpus = cpus.iter().map(|c| (c.instructions, c.cycles)).collect();
                self.online = cpus.iter().map(|c| c.online).collect();
                if stream_crc(self.tick, self.energy_uj, &self.cpus) != *crc {
                    self.synced = false;
                    self.desyncs += 1;
                    return MirrorOutcome::NeedKeyframe;
                }
                self.synced = true;
                self.keyframes += 1;
                MirrorOutcome::Applied
            }
            Response::TickDelta {
                base_tick,
                tick,
                d_time_ns,
                temp_mc,
                d_energy_uj,
                crc,
                cpu_deltas,
            } => {
                if !self.synced || *base_tick != self.tick || cpu_deltas.len() != self.cpus.len() {
                    self.synced = false;
                    self.desyncs += 1;
                    return MirrorOutcome::NeedKeyframe;
                }
                self.tick = *tick;
                self.time_ns += *d_time_ns;
                self.temp_mc = *temp_mc;
                self.energy_uj = self.energy_uj.wrapping_add(*d_energy_uj as u64);
                for ((ins, cyc), (d_ins, d_cyc)) in self.cpus.iter_mut().zip(cpu_deltas) {
                    *ins = ins.wrapping_add(*d_ins as u64);
                    *cyc = cyc.wrapping_add(*d_cyc as u64);
                }
                if stream_crc(self.tick, self.energy_uj, &self.cpus) != *crc {
                    self.synced = false;
                    self.desyncs += 1;
                    return MirrorOutcome::NeedKeyframe;
                }
                self.deltas += 1;
                MirrorOutcome::Applied
            }
            _ => MirrorOutcome::NotStream,
        }
    }
}
