//! The time-series history store and SLO watchdog.
//!
//! `TickSnapshot`s are point-in-time; this module is the daemon's
//! memory. Every pump folds the shards' serving scratch (reads, stale
//! reads, latency histogram, eviction/shed counts) and the collector's
//! per-cluster counter deltas into one [`Rollup`] frame, pushed into a
//! fixed-capacity ring with **power-of-two downsampling tiers**: tier 0
//! holds one frame per pump; when [`TIER_FANOUT`] tier-N frames have
//! been pushed, they merge into one tier-N+1 frame. Long horizons stay
//! queryable at bounded memory and every [`Request::QueryRange`] reply
//! stays under [`MAX_RANGE_POINTS`] points by construction — the query
//! planner walks to a coarser tier instead of growing the frame.
//!
//! Determinism: a rollup is a pure function of the pump schedule and
//! the serving outcome. Scratches absorb in shard order on the pump
//! thread, histograms merge bucket-wise, and the breach exemplar is the
//! max by `(latency, trace_id)` — all order-free reductions — so with
//! the virtual serve-cost model disabled (`serve_ns = 0`) the history
//! and every query reply are bit-identical across Serial/Parallel
//! execution, Force/Off macro-ticks, and 1/4/8 shards (asserted in
//! `tests/history.rs`).
//!
//! The **SLO watchdog** evaluates declarative [`SloSpec`] targets over
//! a trailing window of tier-0 frames after every push. A breached
//! window bumps the SLO's [`SloHealth`] row (served by `GetHealth`) and
//! surfaces an *exemplar trace id* — the slowest sampled request inside
//! the window — which resolves to recorded `SpanBegin`/`SpanEnd` spans
//! on the client and shard tracks, linking the aggregate regression to
//! one concrete slow request.
//!
//! [`Request::QueryRange`]: crate::wire::Request::QueryRange
//! [`MAX_RANGE_POINTS`]: crate::wire::MAX_RANGE_POINTS

use crate::wire::{agg, series, SloHealth, MAX_RANGE_POINTS};
use simtrace::metrics::Histogram;
use std::collections::VecDeque;

/// Downsampling tiers: 0 = per-pump, 1 = per-8-pumps, 2 = per-64-pumps.
pub const TIERS: usize = 3;

/// Frames merged into one when promoting to the next tier.
pub const TIER_FANOUT: u64 = 8;

/// One frame of rolled-up serving history covering `[first_tick,
/// last_tick]` (one pump at tier 0, [`TIER_FANOUT`]^tier pumps above).
#[derive(Debug, Clone, PartialEq)]
pub struct Rollup {
    /// Pump index of the newest pump folded into this frame.
    pub pump: u64,
    /// Snapshot tick range served from during this frame.
    pub first_tick: u64,
    pub last_tick: u64,
    /// Snapshot time at the frame's start/end (rate denominators).
    pub first_time_ns: u64,
    pub last_time_ns: u64,
    pub reads: u64,
    pub stale_reads: u64,
    pub evictions: u64,
    pub sheds: u64,
    /// Instructions/cycles retired per cluster over the frame (cluster
    /// 1 stays zero on homogeneous machines).
    pub cluster_instructions: [u64; 2],
    pub cluster_cycles: [u64; 2],
    /// Read-latency observations (ns) served during the frame.
    pub latency: Histogram,
    /// Worst sampled-and-traced read latency inside the frame, and the
    /// trace id that incurred it (0 = no sampled request this frame).
    pub slow_ns: u64,
    pub exemplar: u64,
}

impl Rollup {
    fn merge(&mut self, o: &Rollup) {
        self.pump = self.pump.max(o.pump);
        self.first_tick = self.first_tick.min(o.first_tick);
        self.last_tick = self.last_tick.max(o.last_tick);
        self.first_time_ns = self.first_time_ns.min(o.first_time_ns);
        self.last_time_ns = self.last_time_ns.max(o.last_time_ns);
        self.reads += o.reads;
        self.stale_reads += o.stale_reads;
        self.evictions += o.evictions;
        self.sheds += o.sheds;
        for i in 0..2 {
            self.cluster_instructions[i] += o.cluster_instructions[i];
            self.cluster_cycles[i] += o.cluster_cycles[i];
        }
        self.latency.merge(&o.latency);
        if (o.slow_ns, o.exemplar) > (self.slow_ns, self.exemplar) {
            self.slow_ns = o.slow_ns;
            self.exemplar = o.exemplar;
        }
    }

    /// The frame's value for a counter series.
    fn counter(&self, s: u8) -> u64 {
        match s {
            series::READS => self.reads,
            series::STALE_READS => self.stale_reads,
            series::EVICTIONS => self.evictions,
            series::SHEDS => self.sheds,
            series::CLUSTER0_INSTRUCTIONS => self.cluster_instructions[0],
            series::CLUSTER1_INSTRUCTIONS => self.cluster_instructions[1],
            series::CLUSTER0_CYCLES => self.cluster_cycles[0],
            series::CLUSTER1_CYCLES => self.cluster_cycles[1],
            _ => 0,
        }
    }

    fn overlaps(&self, start_tick: u64, end_tick: u64) -> bool {
        self.first_tick <= end_tick && self.last_tick >= start_tick
    }
}

/// Per-shard serving scratch for the pump in flight. `serve_shard`
/// mutates its shard's scratch; the pump thread absorbs all scratches
/// in shard order after serving, so the reduction is deterministic and
/// never contended.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    pub reads: u64,
    pub stale_reads: u64,
    pub evictions: u64,
    pub sheds: u64,
    pub latency: Histogram,
    pub slow_ns: u64,
    pub exemplar: u64,
}

impl Scratch {
    /// Fold one served read in. `trace_id` is nonzero only for sampled
    /// traced requests — those are exemplar candidates.
    #[inline]
    pub fn observe_read(&mut self, latency_ns: u64, stale: bool, trace_id: u64) {
        self.reads += 1;
        if stale {
            self.stale_reads += 1;
        }
        self.latency.observe(latency_ns);
        if trace_id != 0 && (latency_ns, trace_id) > (self.slow_ns, self.exemplar) {
            self.slow_ns = latency_ns;
            self.exemplar = trace_id;
        }
    }

    pub(crate) fn absorb_into(&mut self, r: &mut Rollup) {
        r.reads += self.reads;
        r.stale_reads += self.stale_reads;
        r.evictions += self.evictions;
        r.sheds += self.sheds;
        r.latency.merge(&self.latency);
        if (self.slow_ns, self.exemplar) > (r.slow_ns, r.exemplar) {
            r.slow_ns = self.slow_ns;
            r.exemplar = self.exemplar;
        }
        *self = Scratch::default();
    }
}

/// What an SLO targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloKind {
    /// p99 of read latency (ns) over the window.
    P99LatencyNs,
    /// Total evictions over the window.
    EvictionsPerWindow,
    /// Stale reads as parts-per-million of reads over the window.
    StaleReadPpm,
}

impl SloKind {
    pub fn code(self) -> u8 {
        match self {
            SloKind::P99LatencyNs => 0,
            SloKind::EvictionsPerWindow => 1,
            SloKind::StaleReadPpm => 2,
        }
    }
}

/// A declarative SLO target, evaluated after every pump over the
/// trailing `window_pumps` tier-0 frames. Breach condition: observed
/// value strictly greater than `target`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloSpec {
    pub kind: SloKind,
    pub target: u64,
    pub window_pumps: u32,
}

impl SloSpec {
    pub fn p99_latency_ns(target: u64, window_pumps: u32) -> SloSpec {
        SloSpec {
            kind: SloKind::P99LatencyNs,
            target,
            window_pumps,
        }
    }

    pub fn evictions_per_window(target: u64, window_pumps: u32) -> SloSpec {
        SloSpec {
            kind: SloKind::EvictionsPerWindow,
            target,
            window_pumps,
        }
    }

    pub fn stale_read_ppm(target: u64, window_pumps: u32) -> SloSpec {
        SloSpec {
            kind: SloKind::StaleReadPpm,
            target,
            window_pumps,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct SloState {
    breaches: u64,
    last_breach_pump: u64,
    worst: u64,
    exemplar: u64,
}

/// One breach fired by a push — the caller records the `SloBreach`
/// trace event (the watchdog itself stays sink-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Breach {
    /// Index into the configured SLO list.
    pub slo: usize,
    pub observed: u64,
    pub exemplar: u64,
}

/// A successfully planned range query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeResult {
    pub tier: u8,
    pub count: u64,
    pub min: u64,
    pub max: u64,
    pub points: Vec<(u64, u64)>,
}

/// The rollup ring, its downsampling tiers, and the SLO watchdog.
#[derive(Debug, Clone)]
pub struct History {
    tiers: [VecDeque<Rollup>; TIERS],
    /// Frames ever pushed per tier — the promotion trigger.
    pushed: [u64; TIERS],
    cap: usize,
    slos: Vec<SloSpec>,
    state: Vec<SloState>,
}

impl History {
    /// `cap` is the per-tier frame capacity (floored at
    /// [`TIER_FANOUT`] so promotion always has its inputs resident).
    pub fn new(cap: usize, slos: Vec<SloSpec>) -> History {
        let state = vec![SloState::default(); slos.len()];
        History {
            tiers: Default::default(),
            pushed: [0; TIERS],
            cap: cap.max(TIER_FANOUT as usize),
            slos,
            state,
        }
    }

    pub fn slos(&self) -> &[SloSpec] {
        &self.slos
    }

    /// Total frames currently resident across tiers.
    pub fn frames(&self) -> usize {
        self.tiers.iter().map(|t| t.len()).sum()
    }

    /// Push one pump's rollup, cascade tier promotions, and evaluate
    /// every SLO window. Returns the breaches fired by this pump.
    pub fn push(&mut self, r: Rollup) -> Vec<Breach> {
        self.push_tier(0, r);
        self.evaluate()
    }

    fn push_tier(&mut self, t: usize, r: Rollup) {
        self.tiers[t].push_back(r);
        if self.tiers[t].len() > self.cap {
            self.tiers[t].pop_front();
        }
        self.pushed[t] += 1;
        if t + 1 < TIERS && self.pushed[t].is_multiple_of(TIER_FANOUT) {
            let n = self.tiers[t].len();
            let mut merged = self.tiers[t][n - TIER_FANOUT as usize].clone();
            for i in (n - TIER_FANOUT as usize + 1)..n {
                let frame = self.tiers[t][i].clone();
                merged.merge(&frame);
            }
            self.push_tier(t + 1, merged);
        }
    }

    fn evaluate(&mut self) -> Vec<Breach> {
        let mut fired = Vec::new();
        let newest_pump = match self.tiers[0].back() {
            Some(r) => r.pump,
            None => return fired,
        };
        for (i, spec) in self.slos.iter().enumerate() {
            let window = (spec.window_pumps as usize).max(1);
            let n = self.tiers[0].len();
            let frames = self.tiers[0].iter().skip(n.saturating_sub(window));
            let mut reads = 0u64;
            let mut stale = 0u64;
            let mut evictions = 0u64;
            let mut hist = Histogram::new();
            let mut slow = (0u64, 0u64);
            for f in frames {
                reads += f.reads;
                stale += f.stale_reads;
                evictions += f.evictions;
                hist.merge(&f.latency);
                slow = slow.max((f.slow_ns, f.exemplar));
            }
            let observed = match spec.kind {
                SloKind::P99LatencyNs => hist.percentile(0.99),
                SloKind::EvictionsPerWindow => evictions,
                SloKind::StaleReadPpm => (stale * 1_000_000).checked_div(reads).unwrap_or(0),
            };
            if observed > spec.target {
                let st = &mut self.state[i];
                st.breaches += 1;
                st.last_breach_pump = newest_pump;
                st.worst = st.worst.max(observed);
                st.exemplar = slow.1;
                fired.push(Breach {
                    slo: i,
                    observed,
                    exemplar: slow.1,
                });
            }
        }
        fired
    }

    /// The `GetHealth` rows.
    pub fn health(&self) -> Vec<SloHealth> {
        self.slos
            .iter()
            .zip(self.state.iter())
            .map(|(spec, st)| SloHealth {
                kind: spec.kind.code(),
                target: spec.target,
                window_pumps: spec.window_pumps,
                breaches: st.breaches,
                last_breach_pump: st.last_breach_pump,
                worst: st.worst,
                exemplar_trace_id: st.exemplar,
            })
            .collect()
    }

    /// Plan and execute a ranged query. The planner picks the finest
    /// tier whose overlapping frames fit in `max_points` AND whose
    /// retained horizon still covers the range start (coarser tiers
    /// remember further back); when no tier covers, the coarsest
    /// non-empty tier serves its newest `max_points` frames.
    pub fn query(
        &self,
        s: u8,
        a: u8,
        start_tick: u64,
        end_tick: u64,
        max_points: u32,
    ) -> Result<RangeResult, &'static str> {
        if s >= series::COUNT || a >= agg::COUNT || start_tick > end_tick || max_points == 0 {
            return Err("bad series/agg/range");
        }
        let percentile = matches!(a, agg::P50 | agg::P90 | agg::P99);
        if percentile != (s == series::LATENCY_NS) {
            return Err("aggregation does not fit series");
        }
        let max_points = (max_points as usize).min(MAX_RANGE_POINTS);
        // The oldest tick retained anywhere bounds what "covers the
        // start" can mean once the range predates all history.
        let oldest = self
            .tiers
            .iter()
            .filter_map(|t| t.front().map(|r| r.first_tick))
            .min()
            .unwrap_or(0);
        let want_start = start_tick.max(oldest);
        // Single-point aggregations (rate, percentiles) reply with one
        // point whatever they scanned, so only coverage drives their
        // tier choice; SUM replies one point per frame and must also
        // fit `max_points`.
        let single_point = a != agg::SUM;
        let mut chosen: Option<(usize, Vec<&Rollup>)> = None;
        for t in 0..TIERS {
            let frames: Vec<&Rollup> = self.tiers[t]
                .iter()
                .filter(|r| r.overlaps(start_tick, end_tick))
                .collect();
            if frames.is_empty() {
                continue;
            }
            let covers = frames[0].first_tick <= want_start;
            if covers && (single_point || frames.len() <= max_points) {
                chosen = Some((t, frames));
                break;
            }
            // Remember the coarsest non-empty tier as the fallback.
            chosen = Some((t, frames));
        }
        let (tier, mut frames) = chosen.ok_or("empty range")?;
        if !single_point && frames.len() > max_points {
            frames.drain(..frames.len() - max_points);
        }
        Ok(match a {
            agg::SUM => {
                let points: Vec<(u64, u64)> =
                    frames.iter().map(|r| (r.last_tick, r.counter(s))).collect();
                let min = points.iter().map(|p| p.1).min().unwrap_or(0);
                let max = points.iter().map(|p| p.1).max().unwrap_or(0);
                RangeResult {
                    tier: tier as u8,
                    count: frames.len() as u64,
                    min,
                    max,
                    points,
                }
            }
            agg::RATE => {
                let total: u64 = frames.iter().map(|r| r.counter(s)).sum();
                let span_ns = frames[frames.len() - 1]
                    .last_time_ns
                    .saturating_sub(frames[0].first_time_ns);
                let rate = if span_ns == 0 {
                    total
                } else {
                    (total as u128 * 1_000_000_000 / span_ns as u128) as u64
                };
                RangeResult {
                    tier: tier as u8,
                    count: frames.len() as u64,
                    min: rate,
                    max: rate,
                    points: vec![(frames[frames.len() - 1].last_tick, rate)],
                }
            }
            _ => {
                let mut hist = Histogram::new();
                for r in &frames {
                    hist.merge(&r.latency);
                }
                let p = match a {
                    agg::P50 => 0.50,
                    agg::P90 => 0.90,
                    _ => 0.99,
                };
                RangeResult {
                    tier: tier as u8,
                    count: hist.count(),
                    min: hist.min(),
                    max: hist.max(),
                    points: vec![(frames[frames.len() - 1].last_tick, hist.percentile(p))],
                }
            }
        })
    }

    /// FNV-1a digest over every resident frame — the golden-digest
    /// handle for the determinism tests.
    pub fn digest(&self) -> u64 {
        let mut bytes = Vec::new();
        let put = |v: u64, bytes: &mut Vec<u8>| bytes.extend_from_slice(&v.to_le_bytes());
        for tier in &self.tiers {
            for r in tier {
                for v in [
                    r.pump,
                    r.first_tick,
                    r.last_tick,
                    r.first_time_ns,
                    r.last_time_ns,
                    r.reads,
                    r.stale_reads,
                    r.evictions,
                    r.sheds,
                    r.cluster_instructions[0],
                    r.cluster_instructions[1],
                    r.cluster_cycles[0],
                    r.cluster_cycles[1],
                    r.latency.count(),
                    r.latency.min(),
                    r.latency.max(),
                    r.latency.percentile(0.5),
                    r.latency.percentile(0.99),
                    r.slow_ns,
                    r.exemplar,
                ] {
                    put(v, &mut bytes);
                }
            }
        }
        crate::wire::fnv64(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(pump: u64, tick: u64, reads: u64, lat: u64) -> Rollup {
        let mut latency = Histogram::new();
        for _ in 0..reads {
            latency.observe(lat);
        }
        Rollup {
            pump,
            first_tick: tick,
            last_tick: tick,
            first_time_ns: tick * 1_000,
            last_time_ns: (tick + 1) * 1_000,
            reads,
            stale_reads: 0,
            evictions: 0,
            sheds: 0,
            cluster_instructions: [reads * 10, reads],
            cluster_cycles: [reads * 20, reads * 2],
            latency,
            slow_ns: lat,
            exemplar: if reads > 0 { pump * 2 + 2 } else { 0 },
        }
    }

    #[test]
    fn tier_promotion_merges_every_fanout_frames() {
        let mut h = History::new(64, vec![]);
        for p in 0..64u64 {
            h.push(frame(p, p + 1, 1, 256));
        }
        // 64 pushes: 64 tier-0 frames, 8 tier-1, 1 tier-2.
        assert_eq!(h.tiers[0].len(), 64);
        assert_eq!(h.tiers[1].len(), 8);
        assert_eq!(h.tiers[2].len(), 1);
        let t1 = &h.tiers[1][0];
        assert_eq!(t1.reads, 8, "one tier-1 frame folds 8 pumps");
        assert_eq!((t1.first_tick, t1.last_tick), (1, 8));
        let t2 = &h.tiers[2][0];
        assert_eq!(t2.reads, 64);
        assert_eq!(t2.latency.count(), 64);
    }

    #[test]
    fn ring_is_bounded_and_coarse_tiers_remember_longer() {
        let mut h = History::new(8, vec![]);
        for p in 0..100u64 {
            h.push(frame(p, p + 1, 1, 64));
        }
        assert!(h.tiers[0].len() <= 8);
        assert!(h.frames() <= 24);
        // Tier 0 forgot tick 1; a query over the full range falls back
        // to a coarser tier that still covers it.
        let r = h.query(series::READS, agg::SUM, 0, 200, 512).unwrap();
        assert!(r.tier >= 1, "tier {} should be coarse", r.tier);
        let newest = h.tiers[0].back().unwrap().first_tick;
        assert!(h.tiers[0].front().unwrap().first_tick > 1);
        assert!(newest >= 92);
    }

    #[test]
    fn query_plans_finest_fitting_tier_and_respects_max_points() {
        let mut h = History::new(512, vec![]);
        for p in 0..64u64 {
            h.push(frame(p, p + 1, 2, 128));
        }
        let fine = h.query(series::READS, agg::SUM, 1, 64, 512).unwrap();
        assert_eq!(fine.tier, 0);
        assert_eq!(fine.points.len(), 64);
        assert!(fine.points.iter().all(|&(_, v)| v == 2));
        // Cap the frame: the planner walks to tier 1 (8 frames).
        let coarse = h.query(series::READS, agg::SUM, 1, 64, 10).unwrap();
        assert_eq!(coarse.tier, 1);
        assert_eq!(coarse.points.len(), 8);
        assert!(coarse.points.iter().all(|&(_, v)| v == 16));
        // Total reads agree between tiers.
        let s0: u64 = fine.points.iter().map(|p| p.1).sum();
        let s1: u64 = coarse.points.iter().map(|p| p.1).sum();
        assert_eq!(s0, s1);
    }

    #[test]
    fn percentile_queries_merge_histograms_exactly() {
        let mut h = History::new(64, vec![]);
        let mut local = Histogram::new();
        for p in 0..20u64 {
            let lat = 100 + p * 37;
            h.push(frame(p, p + 1, 3, lat));
            for _ in 0..3 {
                local.observe(lat);
            }
        }
        let r = h.query(series::LATENCY_NS, agg::P99, 0, 100, 16).unwrap();
        assert_eq!(r.count, local.count());
        assert_eq!(r.min, local.min());
        assert_eq!(r.max, local.max());
        assert_eq!(r.points[0].1, local.percentile(0.99));
        let p50 = h.query(series::LATENCY_NS, agg::P50, 0, 100, 16).unwrap();
        assert_eq!(p50.points[0].1, local.percentile(0.50));
    }

    #[test]
    fn rate_is_events_per_second_of_sim_time() {
        let mut h = History::new(64, vec![]);
        for p in 0..10u64 {
            h.push(frame(p, p + 1, 5, 10));
        }
        // 50 reads over (11*1000 - 1*1000) ns of sim time.
        let r = h.query(series::READS, agg::RATE, 0, 100, 512).unwrap();
        assert_eq!(r.points.len(), 1);
        assert_eq!(r.points[0].1, 50 * 1_000_000_000 / 10_000);
    }

    #[test]
    fn invalid_queries_are_typed_errors() {
        let mut h = History::new(64, vec![]);
        h.push(frame(0, 1, 1, 10));
        assert!(h.query(series::COUNT, agg::SUM, 0, 1, 8).is_err());
        assert!(h.query(series::READS, agg::COUNT, 0, 1, 8).is_err());
        assert!(h.query(series::READS, agg::SUM, 5, 1, 8).is_err());
        assert!(h.query(series::READS, agg::SUM, 0, 1, 0).is_err());
        // Percentiles only on the histogram series, sums only off it.
        assert!(h.query(series::READS, agg::P99, 0, 1, 8).is_err());
        assert!(h.query(series::LATENCY_NS, agg::SUM, 0, 1, 8).is_err());
        // An empty overlap is an error, not an empty reply.
        assert!(h.query(series::READS, agg::SUM, 900, 999, 8).is_err());
    }

    #[test]
    fn slo_watchdog_breaches_with_exemplar() {
        let slos = vec![
            SloSpec::p99_latency_ns(1_000, 4),
            SloSpec::evictions_per_window(0, 4),
            SloSpec::stale_read_ppm(100_000, 4),
        ];
        let mut h = History::new(64, slos);
        // Quiet frames: no breach.
        for p in 0..4u64 {
            assert!(h.push(frame(p, p + 1, 2, 500)).is_empty());
        }
        // One slow, stale, evicting frame breaches all three.
        let mut bad = frame(4, 5, 2, 1_000_000);
        bad.stale_reads = 2;
        bad.evictions = 1;
        bad.exemplar = 4242;
        bad.slow_ns = 1_000_000;
        let fired = h.push(bad);
        assert_eq!(fired.len(), 3, "{fired:?}");
        assert!(fired.iter().all(|b| b.exemplar == 4242));
        let health = h.health();
        assert_eq!(health.len(), 3);
        assert!(health.iter().all(|s| s.breaches >= 1));
        assert!(health.iter().all(|s| s.exemplar_trace_id == 4242));
        assert_eq!(health[1].kind, SloKind::EvictionsPerWindow.code());
        assert!(health[0].worst >= 1_000_000);
        // The breach ages out of the window and evaluation goes quiet,
        // but the health ledger remembers.
        for p in 5..12u64 {
            h.push(frame(p, p + 1, 2, 500));
        }
        let after = h.health();
        assert_eq!(after[1].breaches, health[1].breaches + 3);
        assert_eq!(after[0].breaches, health[0].breaches + 3);
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let build = |lat: u64| {
            let mut h = History::new(32, vec![]);
            for p in 0..20u64 {
                h.push(frame(p, p + 1, 2, lat));
            }
            h.digest()
        };
        assert_eq!(build(100), build(100));
        assert_ne!(build(100), build(101));
    }
}
