//! metricsd — a sharded, multi-client counter-serving daemon over the
//! simulated kernel.
//!
//! Many tools want the same counters at the same time; giving each its
//! own `Papi` instance over `Arc<Mutex<Kernel>>` serialises every read
//! on the kernel lock and perturbs the very counts being measured. This
//! crate inverts the arrangement: a single [`snapshot::Collector`] does
//! exactly one kernel pass per pump (the batching window), publishes an
//! immutable [`snapshot::TickSnapshot`] to a [`snapshot::SnapshotCache`],
//! and a sharded [`server::Daemon`] answers every client session from
//! that snapshot — hot static queries (hardware info, preset list) are
//! pre-encoded frames that never touch the kernel lock at all.
//!
//! Because sessions never touch the kernel, the kernel-op sequence —
//! and therefore every served count — depends only on the pump schedule,
//! not on how many sessions exist or how many worker shards serve them.
//! `loadgen` exploits this: aggregate digests are bit-identical across
//! 1/4/8 shards and match a collector-only serial reference.
//!
//! Transports: an in-process [`queue::ClientPipe`] (bounded frame queues
//! in both directions, explicit backpressure, slow-consumer eviction)
//! and a TCP-loopback listener ([`tcp`]) speaking the same
//! length-prefixed [`wire`] protocol.

//!
//! Chaos hardening (see DESIGN.md §11): [`chaos`] injects deterministic
//! seeded transport faults over any [`client::Transport`]; [`resilient`]
//! is the reconnecting, resuming client that rides them out via
//! checksummed sequence envelopes, idempotent reissue, and the daemon's
//! parked-session resume table; the server side answers overload with
//! typed `Overloaded` sheds instead of eviction. The `chaosbench` binary
//! proves the invariant: counter digests under every fault mix are
//! bit-identical to the fault-free run.

//!
//! Transport core (DESIGN.md §14): shards run a readiness-based reactor
//! — sessions flag their inboxes via an atomic readiness bit and idle
//! sessions are skipped without touching a lock — served by a persistent
//! [`reactor::WorkerPool`] sized to the host (`min(shards, cores)`), so
//! shard count is a determinism domain and worker count a parallelism
//! domain. Subscribers can opt into delta-encoded push streaming
//! ([`wire::Request::StreamDeltas`]): one pre-encoded keyframe/delta
//! pair per pump shared by every subscriber, with client-side
//! [`client::StreamMirror`] reconstruction and CRC self-validation.

pub mod chaos;
pub mod client;
pub mod history;
pub mod queue;
pub mod reactor;
pub mod resilient;
pub mod server;
pub mod snapshot;
pub mod tcp;
pub mod wire;

pub use chaos::{ChaosConfig, ChaosStats, ChaosTransport};
pub use client::{ClientError, MetricsClient, MirrorOutcome, StreamMirror, Transport};
pub use history::{Breach, History, RangeResult, Rollup, Scratch, SloKind, SloSpec};
pub use resilient::{ResilientClient, ResilientConfig, ResilientStats};
pub use server::{Connector, Daemon, DaemonConfig, DaemonStats};
pub use snapshot::{Collector, CpuCounters, SnapshotCache, StreamFrames, TickSnapshot};
pub use wire::{CpuKeyframe, FrameDecoder, HistSummary, Request, Response, PROTO_VERSION};
