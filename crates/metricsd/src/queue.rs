//! Bounded frame queues — the in-process transport and the daemon's
//! per-session mailboxes.
//!
//! Two additions serve the reactor:
//!
//! * **Readiness** — every successful push sets a lock-free ready flag
//!   the serving loop consumes with [`FrameQueue::take_ready`]. This is
//!   the in-process analogue of epoll readiness: a shard's event loop
//!   skips sessions whose flag is clear instead of locking each inbox,
//!   so 100k mostly-idle subscribers cost an atomic load per pump, not
//!   a mutex acquisition.
//! * **Shared frames** — [`FrameQueue::push_shared`] enqueues an
//!   `Arc<Vec<u8>>` so N subscribers of the same stream push share one
//!   encode; the bytes are only materialised per-consumer at pop time
//!   (and not at all when a single owner remains).
//!
//! The vendored `parking_lot` has no `Condvar`, so blocking receives
//! spin with `yield_now`; in daemon use the queues are drained in
//! lockstep with `pump()` and the blocking path only matters for
//! blocking client transports.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::wire::MAX_FRAME;

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// Queue at capacity — backpressure; the caller decides whether to
    /// retry next pump or escalate to eviction.
    Full,
    /// The other side closed the queue.
    Closed,
    /// Frame payload exceeds [`MAX_FRAME`] — the in-process path
    /// enforces the same framing cap as the TCP reader, so an oversized
    /// or corrupt frame can never occupy unbounded memory on either
    /// transport.
    TooBig,
}

/// The same size cap `tcp::read_frame` applies on the wire: a frame is
/// `[u32 len][payload]` with `len <= MAX_FRAME`. (Short frames pass —
/// they decode to a typed `WireError` downstream; only the allocation
/// bound is the queue's business.)
fn frame_ok(frame: &[u8]) -> bool {
    frame.len() <= 4 + MAX_FRAME
}

/// A queued frame: owned bytes, or a shared pre-encoded frame fanned
/// out to many sessions.
enum FrameBuf {
    Owned(Vec<u8>),
    Shared(Arc<Vec<u8>>),
}

impl FrameBuf {
    fn as_slice(&self) -> &[u8] {
        match self {
            FrameBuf::Owned(v) => v,
            FrameBuf::Shared(a) => a,
        }
    }

    fn into_vec(self) -> Vec<u8> {
        match self {
            FrameBuf::Owned(v) => v,
            // Last consumer standing takes the buffer without a copy.
            FrameBuf::Shared(a) => Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone()),
        }
    }
}

struct Inner {
    q: VecDeque<FrameBuf>,
    closed: bool,
}

/// A bounded MPSC-ish queue of encoded frames.
pub struct FrameQueue {
    inner: Mutex<Inner>,
    cap: usize,
    /// Set by every successful push; consumed by [`take_ready`]. A set
    /// flag means "a push happened since the last take" — the serving
    /// loop combines it with its own knowledge of leftover input to
    /// decide whether the session needs work this pump.
    ///
    /// [`take_ready`]: FrameQueue::take_ready
    ready: AtomicBool,
}

impl FrameQueue {
    pub fn new(cap: usize) -> Arc<FrameQueue> {
        Arc::new(FrameQueue {
            inner: Mutex::new(Inner {
                q: VecDeque::new(),
                closed: false,
            }),
            cap: cap.max(1),
            ready: AtomicBool::new(false),
        })
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Enqueue, refusing at capacity (explicit backpressure).
    pub fn push(&self, frame: Vec<u8>) -> Result<(), PushError> {
        if !frame_ok(&frame) {
            return Err(PushError::TooBig);
        }
        self.push_buf(FrameBuf::Owned(frame))
    }

    /// Enqueue a shared pre-encoded frame (stream fan-out: one encode,
    /// N queues). Same backpressure semantics as [`FrameQueue::push`].
    pub fn push_shared(&self, frame: Arc<Vec<u8>>) -> Result<(), PushError> {
        if !frame_ok(&frame) {
            return Err(PushError::TooBig);
        }
        self.push_buf(FrameBuf::Shared(frame))
    }

    fn push_buf(&self, frame: FrameBuf) -> Result<(), PushError> {
        let mut g = self.inner.lock();
        if g.closed {
            return Err(PushError::Closed);
        }
        if g.q.len() >= self.cap {
            return Err(PushError::Full);
        }
        g.q.push_back(frame);
        drop(g);
        self.ready.store(true, Ordering::Release);
        Ok(())
    }

    /// Enqueue even at capacity by dropping the oldest frame — used for
    /// the final Evicted notice so the slow consumer can learn its fate.
    pub fn force_push(&self, frame: Vec<u8>) {
        if !frame_ok(&frame) {
            return;
        }
        let mut g = self.inner.lock();
        if g.closed {
            return;
        }
        while g.q.len() >= self.cap {
            g.q.pop_front();
        }
        g.q.push_back(FrameBuf::Owned(frame));
        drop(g);
        self.ready.store(true, Ordering::Release);
    }

    /// Consume the readiness flag: true iff a push landed since the
    /// last call. Lock-free — the reactor's idle-session fast path.
    pub fn take_ready(&self) -> bool {
        self.ready.swap(false, Ordering::Acquire)
    }

    pub fn try_pop(&self) -> Option<Vec<u8>> {
        self.inner.lock().q.pop_front().map(FrameBuf::into_vec)
    }

    /// Drain up to `max` frames into `out` under one lock — the write
    /// side's coalescing primitive. Returns how many were taken.
    pub fn pop_many(&self, max: usize, out: &mut Vec<Vec<u8>>) -> usize {
        let mut g = self.inner.lock();
        let n = max.min(g.q.len());
        for _ in 0..n {
            out.push(g.q.pop_front().unwrap().into_vec());
        }
        n
    }

    /// Pop, spinning until a frame arrives, the queue closes empty, or
    /// the timeout expires.
    pub fn pop_blocking(&self, timeout: Duration) -> Option<Vec<u8>> {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let mut g = self.inner.lock();
                if let Some(f) = g.q.pop_front() {
                    return Some(f.into_vec());
                }
                if g.closed {
                    return None;
                }
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::yield_now();
        }
    }

    pub fn len(&self) -> usize {
        self.inner.lock().q.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().q.is_empty()
    }

    /// Total queued payload bytes (write-side accounting).
    pub fn queued_bytes(&self) -> usize {
        self.inner.lock().q.iter().map(|f| f.as_slice().len()).sum()
    }

    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }

    /// Close: further pushes fail, pops drain what remains.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        // Wake readiness consumers so a closed session is noticed.
        self.ready.store(true, Ordering::Release);
    }
}

/// The client's end of an in-process connection: two queues crossed
/// with the daemon's session (client tx = session inbox, client rx =
/// session outbox).
pub struct ClientPipe {
    pub tx: Arc<FrameQueue>,
    pub rx: Arc<FrameQueue>,
}

impl ClientPipe {
    pub fn send(&self, frame: Vec<u8>) -> Result<(), PushError> {
        self.tx.push(frame)
    }

    pub fn try_recv(&self) -> Option<Vec<u8>> {
        self.rx.try_pop()
    }

    pub fn recv_blocking(&self, timeout: Duration) -> Option<Vec<u8>> {
        self.rx.pop_blocking(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_fifo() {
        let q = FrameQueue::new(4);
        q.push(vec![1]).unwrap();
        q.push(vec![2]).unwrap();
        assert_eq!(q.try_pop(), Some(vec![1]));
        assert_eq!(q.try_pop(), Some(vec![2]));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn bounded_backpressure() {
        let q = FrameQueue::new(2);
        q.push(vec![1]).unwrap();
        q.push(vec![2]).unwrap();
        assert_eq!(q.push(vec![3]), Err(PushError::Full));
        // force_push evicts the oldest instead of refusing.
        q.force_push(vec![9]);
        assert_eq!(q.len(), 2);
        assert_eq!(q.try_pop(), Some(vec![2]));
        assert_eq!(q.try_pop(), Some(vec![9]));
    }

    #[test]
    fn oversized_frames_are_refused_like_tcp() {
        let q = FrameQueue::new(4);
        // Right at the cap: accepted.
        q.push(vec![0u8; 4 + MAX_FRAME]).unwrap();
        // One byte over: refused by push, ignored by force_push.
        assert_eq!(q.push(vec![0u8; 4 + MAX_FRAME + 1]), Err(PushError::TooBig));
        q.force_push(vec![0u8; 4 + MAX_FRAME + 1]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.try_pop().unwrap().len(), 4 + MAX_FRAME);
    }

    #[test]
    fn close_stops_pushes_drains_pops() {
        let q = FrameQueue::new(4);
        q.push(vec![1]).unwrap();
        q.close();
        assert_eq!(q.push(vec![2]), Err(PushError::Closed));
        assert_eq!(q.try_pop(), Some(vec![1]));
        assert_eq!(q.pop_blocking(Duration::from_millis(5)), None);
    }

    #[test]
    fn pop_blocking_sees_cross_thread_push() {
        let q = FrameQueue::new(4);
        let q2 = q.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            q2.push(vec![7]).unwrap();
        });
        let got = q.pop_blocking(Duration::from_secs(2));
        t.join().unwrap();
        assert_eq!(got, Some(vec![7]));
    }

    #[test]
    fn shared_frames_fan_out_one_encode_to_many_queues() {
        let frame = Arc::new(vec![1, 2, 3]);
        let queues: Vec<_> = (0..3).map(|_| FrameQueue::new(4)).collect();
        for q in &queues {
            q.push_shared(frame.clone()).unwrap();
        }
        drop(frame);
        for q in &queues {
            assert_eq!(q.try_pop(), Some(vec![1, 2, 3]));
        }
        // Shared frames respect capacity and the size cap.
        let q = FrameQueue::new(1);
        q.push_shared(Arc::new(vec![0])).unwrap();
        assert_eq!(q.push_shared(Arc::new(vec![0])), Err(PushError::Full));
        assert_eq!(
            q.push_shared(Arc::new(vec![0; 4 + MAX_FRAME + 1])),
            Err(PushError::TooBig)
        );
    }

    #[test]
    fn readiness_flag_is_set_by_push_and_consumed_once() {
        let q = FrameQueue::new(4);
        assert!(!q.take_ready(), "fresh queue is idle");
        q.push(vec![1]).unwrap();
        assert!(q.take_ready());
        assert!(!q.take_ready(), "flag consumed");
        q.force_push(vec![2]);
        assert!(q.take_ready());
        q.push_shared(Arc::new(vec![3])).unwrap();
        assert!(q.take_ready());
        // Close also raises readiness so dead sessions are noticed.
        q.close();
        assert!(q.take_ready());
    }

    #[test]
    fn pop_many_drains_in_order_under_one_lock() {
        let q = FrameQueue::new(8);
        for i in 0..5u8 {
            q.push(vec![i]).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(q.pop_many(3, &mut out), 3);
        assert_eq!(out, vec![vec![0], vec![1], vec![2]]);
        assert_eq!(q.pop_many(10, &mut out), 2);
        assert_eq!(out.len(), 5);
        assert_eq!(q.pop_many(1, &mut out), 0);
    }
}
