//! Bounded frame queues — the in-process transport and the daemon's
//! per-session mailboxes.
//!
//! The vendored `parking_lot` has no `Condvar`, so blocking receives
//! spin with `yield_now`; in daemon use the queues are drained in
//! lockstep with `pump()` and the blocking path only matters for the
//! TCP glue threads.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::wire::MAX_FRAME;

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// Queue at capacity — backpressure; the caller decides whether to
    /// retry next pump or escalate to eviction.
    Full,
    /// The other side closed the queue.
    Closed,
    /// Frame payload exceeds [`MAX_FRAME`] — the in-process path
    /// enforces the same framing cap as the TCP reader, so an oversized
    /// or corrupt frame can never occupy unbounded memory on either
    /// transport.
    TooBig,
}

/// The same size cap `tcp::read_frame` applies on the wire: a frame is
/// `[u32 len][payload]` with `len <= MAX_FRAME`. (Short frames pass —
/// they decode to a typed `WireError` downstream; only the allocation
/// bound is the queue's business.)
fn frame_ok(frame: &[u8]) -> bool {
    frame.len() <= 4 + MAX_FRAME
}

struct Inner {
    q: VecDeque<Vec<u8>>,
    closed: bool,
}

/// A bounded MPSC-ish queue of encoded frames.
pub struct FrameQueue {
    inner: Mutex<Inner>,
    cap: usize,
}

impl FrameQueue {
    pub fn new(cap: usize) -> Arc<FrameQueue> {
        Arc::new(FrameQueue {
            inner: Mutex::new(Inner {
                q: VecDeque::new(),
                closed: false,
            }),
            cap: cap.max(1),
        })
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Enqueue, refusing at capacity (explicit backpressure).
    pub fn push(&self, frame: Vec<u8>) -> Result<(), PushError> {
        if !frame_ok(&frame) {
            return Err(PushError::TooBig);
        }
        let mut g = self.inner.lock();
        if g.closed {
            return Err(PushError::Closed);
        }
        if g.q.len() >= self.cap {
            return Err(PushError::Full);
        }
        g.q.push_back(frame);
        Ok(())
    }

    /// Enqueue even at capacity by dropping the oldest frame — used for
    /// the final Evicted notice so the slow consumer can learn its fate.
    pub fn force_push(&self, frame: Vec<u8>) {
        if !frame_ok(&frame) {
            return;
        }
        let mut g = self.inner.lock();
        if g.closed {
            return;
        }
        while g.q.len() >= self.cap {
            g.q.pop_front();
        }
        g.q.push_back(frame);
    }

    pub fn try_pop(&self) -> Option<Vec<u8>> {
        self.inner.lock().q.pop_front()
    }

    /// Pop, spinning until a frame arrives, the queue closes empty, or
    /// the timeout expires.
    pub fn pop_blocking(&self, timeout: Duration) -> Option<Vec<u8>> {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let mut g = self.inner.lock();
                if let Some(f) = g.q.pop_front() {
                    return Some(f);
                }
                if g.closed {
                    return None;
                }
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::yield_now();
        }
    }

    pub fn len(&self) -> usize {
        self.inner.lock().q.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().q.is_empty()
    }

    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }

    /// Close: further pushes fail, pops drain what remains.
    pub fn close(&self) {
        self.inner.lock().closed = true;
    }
}

/// The client's end of an in-process connection: two queues crossed
/// with the daemon's session (client tx = session inbox, client rx =
/// session outbox).
pub struct ClientPipe {
    pub tx: Arc<FrameQueue>,
    pub rx: Arc<FrameQueue>,
}

impl ClientPipe {
    pub fn send(&self, frame: Vec<u8>) -> Result<(), PushError> {
        self.tx.push(frame)
    }

    pub fn try_recv(&self) -> Option<Vec<u8>> {
        self.rx.try_pop()
    }

    pub fn recv_blocking(&self, timeout: Duration) -> Option<Vec<u8>> {
        self.rx.pop_blocking(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_fifo() {
        let q = FrameQueue::new(4);
        q.push(vec![1]).unwrap();
        q.push(vec![2]).unwrap();
        assert_eq!(q.try_pop(), Some(vec![1]));
        assert_eq!(q.try_pop(), Some(vec![2]));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn bounded_backpressure() {
        let q = FrameQueue::new(2);
        q.push(vec![1]).unwrap();
        q.push(vec![2]).unwrap();
        assert_eq!(q.push(vec![3]), Err(PushError::Full));
        // force_push evicts the oldest instead of refusing.
        q.force_push(vec![9]);
        assert_eq!(q.len(), 2);
        assert_eq!(q.try_pop(), Some(vec![2]));
        assert_eq!(q.try_pop(), Some(vec![9]));
    }

    #[test]
    fn oversized_frames_are_refused_like_tcp() {
        let q = FrameQueue::new(4);
        // Right at the cap: accepted.
        q.push(vec![0u8; 4 + MAX_FRAME]).unwrap();
        // One byte over: refused by push, ignored by force_push.
        assert_eq!(q.push(vec![0u8; 4 + MAX_FRAME + 1]), Err(PushError::TooBig));
        q.force_push(vec![0u8; 4 + MAX_FRAME + 1]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.try_pop().unwrap().len(), 4 + MAX_FRAME);
    }

    #[test]
    fn close_stops_pushes_drains_pops() {
        let q = FrameQueue::new(4);
        q.push(vec![1]).unwrap();
        q.close();
        assert_eq!(q.push(vec![2]), Err(PushError::Closed));
        assert_eq!(q.try_pop(), Some(vec![1]));
        assert_eq!(q.pop_blocking(Duration::from_millis(5)), None);
    }

    #[test]
    fn pop_blocking_sees_cross_thread_push() {
        let q = FrameQueue::new(4);
        let q2 = q.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            q2.push(vec![7]).unwrap();
        });
        let got = q.pop_blocking(Duration::from_secs(2));
        t.join().unwrap();
        assert_eq!(got, Some(vec![7]));
    }
}
