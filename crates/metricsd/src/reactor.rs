//! Persistent worker pool for parallel shard serving.
//!
//! The old pump spawned one scoped thread per shard per pump. At
//! thousands of pumps per second that spawn cost dominates — and on a
//! host with fewer cores than shards it is pure overhead: the threads
//! time-slice on the same core the pump thread already owns, so the
//! daemon pays thread-creation latency for zero parallelism (the
//! measured 30% reads/s regression from 1 → 8 shards).
//!
//! This module decouples the two axes:
//!
//! * **Shards** stay a determinism domain: session placement, serve
//!   order, and the digest never depend on how many workers exist.
//! * **Workers** are a parallelism domain: `min(shards, cores)`
//!   persistent threads, created once at daemon start.
//!
//! Each pump the owner distributes the shards round-robin across
//! worker slots, bumps a generation counter, and unparks the workers.
//! Workers serve their assigned shards in index order and publish the
//! generation back; the owner spin-then-yield waits for all workers,
//! then moves the shards back into index order. No channels, no
//! allocation on the hot path, no thread creation after startup.
//!
//! When the host resolves to a single worker the [`crate::server::Daemon`]
//! skips the pool entirely and serves shards inline on the pump thread
//! — the fast path that restores flat 1 → N shard scaling on small
//! hosts.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::server::{serve_shard, PumpCtx, Shard};

/// Work handed to one worker for one pump: the shards it owns this
/// generation (tagged with their index in the daemon's shard vector)
/// plus the frozen pump context.
struct Job {
    shards: Vec<(usize, Shard)>,
    ctx: Option<PumpCtx>,
}

/// Shared mailbox between the pool owner and one worker thread.
struct Slot {
    job: Mutex<Job>,
    /// Generation the owner wants served. Written by the owner
    /// (Release) after the job is staged; read by the worker (Acquire).
    go: AtomicU64,
    /// Last generation the worker finished. Written by the worker
    /// (Release) after shards are stored back; read by the owner
    /// (Acquire).
    done: AtomicU64,
    stop: AtomicBool,
}

struct Worker {
    slot: Arc<Slot>,
    handle: Option<JoinHandle<()>>,
}

/// A fixed set of persistent serving threads, sized once at daemon
/// start. See the module docs for the ownership protocol.
pub(crate) struct WorkerPool {
    workers: Vec<Worker>,
    generation: u64,
}

impl WorkerPool {
    pub(crate) fn new(n: usize) -> Self {
        let n = n.max(1);
        let workers = (0..n)
            .map(|_| {
                let slot = Arc::new(Slot {
                    job: Mutex::new(Job {
                        shards: Vec::new(),
                        ctx: None,
                    }),
                    go: AtomicU64::new(0),
                    done: AtomicU64::new(0),
                    stop: AtomicBool::new(false),
                });
                let worker_slot = slot.clone();
                let handle = std::thread::Builder::new()
                    .name("metricsd-worker".into())
                    .spawn(move || worker_loop(&worker_slot))
                    .expect("spawn worker thread");
                Worker {
                    slot,
                    handle: Some(handle),
                }
            })
            .collect();
        WorkerPool {
            workers,
            generation: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.workers.len()
    }

    /// Serve every shard for this pump, fanned out across the workers.
    ///
    /// Shards move into worker slots and back; on return `shards` is in
    /// its original index order with all sessions served, exactly as if
    /// each shard had been served inline in order.
    pub(crate) fn serve(&mut self, shards: &mut Vec<Shard>, ctx: &PumpCtx) {
        let n = self.workers.len();
        self.generation += 1;
        let generation = self.generation;

        // Stage: round-robin shards over slots, tagged with their index
        // so the collection phase can restore order.
        let mut staged: Vec<Vec<(usize, Shard)>> = (0..n).map(|_| Vec::new()).collect();
        for (i, shard) in shards.drain(..).enumerate() {
            staged[i % n].push((i, shard));
        }
        for (w, batch) in self.workers.iter().zip(staged) {
            {
                let mut job = w.slot.job.lock().expect("worker slot poisoned");
                job.shards = batch;
                job.ctx = Some(ctx.clone());
            }
            w.slot.go.store(generation, Ordering::Release);
            w.handle
                .as_ref()
                .expect("worker thread running")
                .thread()
                .unpark();
        }

        // Wait: short spin for the common sub-millisecond pump, then
        // yield so a worker sharing this core can run.
        for w in &self.workers {
            let mut spins = 0u32;
            while w.slot.done.load(Ordering::Acquire) != generation {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }

        // Collect: move shards back and restore index order.
        let mut tagged: Vec<(usize, Shard)> = Vec::with_capacity(shards.capacity());
        for w in &self.workers {
            let mut job = w.slot.job.lock().expect("worker slot poisoned");
            tagged.append(&mut job.shards);
            job.ctx = None;
        }
        tagged.sort_unstable_by_key(|(i, _)| *i);
        shards.extend(tagged.into_iter().map(|(_, s)| s));
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for w in &self.workers {
            w.slot.stop.store(true, Ordering::Release);
        }
        for w in &mut self.workers {
            if let Some(handle) = w.handle.take() {
                handle.thread().unpark();
                let _ = handle.join();
            }
        }
    }
}

fn worker_loop(slot: &Slot) {
    let mut served = 0u64;
    loop {
        let go = slot.go.load(Ordering::Acquire);
        if go == served {
            if slot.stop.load(Ordering::Acquire) {
                return;
            }
            std::thread::park();
            continue;
        }
        {
            let mut job = slot.job.lock().expect("owner slot poisoned");
            let ctx = job.ctx.clone().expect("job staged with ctx");
            // Shards arrive pre-sorted by index within this slot, so
            // serve order within a worker is deterministic.
            for (_, shard) in job.shards.iter_mut() {
                serve_shard(shard, &ctx);
            }
        }
        served = go;
        slot.done.store(served, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_spins_up_and_shuts_down_cleanly() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.len(), 3);
        drop(pool); // must not hang
    }
}
