//! A resuming, reissuing client that survives transport chaos.
//!
//! [`ResilientClient`] wraps a dial closure (so it can reconnect as
//! many times as the link dies) and drives every RPC through the
//! checksummed [`Request::WithSeq`] envelope. It is *poll-based*: one
//! [`ResilientClient::step`] per lockstep round, which is what lets
//! chaosbench hold the whole fleet plus the daemon in a deterministic
//! round → pump cadence (a blocking client would couple recovery
//! timing to the host scheduler).
//!
//! The recovery ladder, from cheapest to most drastic:
//!
//! 1. **Reissue** — no reply within `rpc_timeout_rounds`, or a typed
//!    refusal (`BAD_CHECKSUM`, `BAD_FRAME`): resend the *same*
//!    sequence id. The daemon's per-session reply cache makes this
//!    idempotent — an RPC applied once is never applied twice.
//! 2. **Back off** — an [`Response::Overloaded`] shed: wait the hinted
//!    `retry_after_pumps` rounds, then reissue (shed requests were
//!    never applied, so reissue is safe by construction).
//! 3. **Reconnect + resume** — a dead transport: redial after a capped
//!    exponential backoff (deterministic jitter, always ≥ 1 round so
//!    the daemon reaps the dead session into its parked table first),
//!    then present the session token in [`Request::Resume`]. On
//!    [`Response::Resumed`] the subscriptions, stream setting, and
//!    reply cache all survive; the gap is surfaced via `gap_pumps` and
//!    via `ReadQuality::Scaled` on resumed subscriptions — explicit,
//!    never silent.
//! 4. **Start over** — token expired (`NO_SUCH_TOKEN` after
//!    `resume_grace` retries) or eviction: fresh `Hello`, and
//!    [`ResilientClient::take_session_lost`] tells the caller its
//!    subscriptions are gone and must be rebuilt.

use std::collections::VecDeque;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simtrace::{span, EventKind, TraceSink};

use crate::client::{ClientError, Transport};
use crate::wire::{errcode, fnv64, Request, Response, TraceCtx, PROTO_VERSION};

/// Retry/backoff tuning, all in lockstep rounds.
#[derive(Debug, Clone, Copy)]
pub struct ResilientConfig {
    /// Rounds to wait for a reply before reissuing the same seq.
    pub rpc_timeout_rounds: u32,
    /// First reconnect backoff (doubles per consecutive failure).
    pub backoff_base_rounds: u32,
    /// Backoff ceiling.
    pub backoff_cap_rounds: u32,
    /// Reissue attempts per RPC before giving up with `Timeout`.
    pub max_attempts: u32,
    /// `NO_SUCH_TOKEN` replies tolerated (the daemon may not have
    /// parked the old session yet) before falling back to a fresh
    /// `Hello`.
    pub resume_grace: u32,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for ResilientConfig {
    fn default() -> ResilientConfig {
        ResilientConfig {
            rpc_timeout_rounds: 3,
            backoff_base_rounds: 1,
            backoff_cap_rounds: 8,
            max_attempts: 200,
            resume_grace: 4,
            seed: 0,
        }
    }
}

/// Client-observed recovery counts, for cross-checking against the
/// chaos injector's stats and the daemon's self-metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilientStats {
    /// RPCs completed with a reply delivered to the caller.
    pub completed: u64,
    /// Same-seq reissues (timeouts and typed refusals).
    pub retries: u64,
    /// Transport deaths observed.
    pub conn_resets: u64,
    /// Successful re-dials.
    pub reconnects: u64,
    /// Sessions resumed from a token.
    pub resumes: u64,
    /// Total pumps missed across all resumes (the explicit gap).
    pub gap_pumps: u64,
    /// `Overloaded` sheds observed (and waited out).
    pub overloads: u64,
    /// Sessions lost for good (token expired or evicted).
    pub sessions_lost: u64,
    /// RPCs abandoned after `max_attempts`.
    pub give_ups: u64,
}

struct InFlight {
    seq: u32,
    /// The full encoded `WithSeq` frame, resent verbatim on reissue.
    /// A sampled RPC carries the `Traced` envelope outermost, so every
    /// reissue propagates the *same* trace id — retries of one logical
    /// request stitch into one timeline.
    frame: Vec<u8>,
    /// Nonzero when the frame carries a sampled trace context.
    trace_id: u64,
    /// The client-hop span has been opened (first real send).
    span_opened: bool,
    /// Sent on the current transport and awaiting a reply.
    sent: bool,
    rounds_waiting: u32,
    /// Overload backoff: rounds to hold before (re)sending.
    wait_rounds: u32,
    attempts: u32,
}

impl InFlight {
    fn new(seq: u32, req: &Request) -> InFlight {
        InFlight {
            seq,
            frame: Request::with_seq(seq, req).encode(),
            trace_id: 0,
            span_opened: false,
            sent: false,
            rounds_waiting: 0,
            wait_rounds: 0,
            attempts: 0,
        }
    }

    fn traced(seq: u32, req: &Request, trace_id: u64) -> InFlight {
        let ctx = TraceCtx {
            trace_id,
            parent_span: 0,
            sampled: true,
        };
        InFlight {
            seq,
            frame: Request::traced(ctx, &Request::with_seq(seq, req)).encode(),
            trace_id,
            span_opened: false,
            sent: false,
            rounds_waiting: 0,
            wait_rounds: 0,
            attempts: 0,
        }
    }
}

enum Link {
    /// No transport; waiting out the reconnect backoff.
    Down { backoff_left: u32 },
    /// Transport up, Hello/Resume in flight.
    Greeting,
    /// Handshake complete; user RPCs flow.
    Ready,
}

/// See the module docs. `T` is the transport the dial closure yields
/// (typically a [`crate::chaos::ChaosTransport`] in tests and benches).
pub struct ResilientClient<T: Transport, F: FnMut() -> Option<T>> {
    dial: F,
    t: Option<T>,
    link: Link,
    cfg: ResilientConfig,
    rng: StdRng,
    round: u64,
    consecutive_fails: u32,
    resume_denials: u32,

    /// Session identity from the last Welcome/Resumed.
    pub session_id: u64,
    session_token: Option<u64>,
    pub n_cpus: u32,
    /// Newest tick seen in any reply — the resume cursor.
    pub last_tick: u64,

    next_seq: u32,
    greet: Option<InFlight>,
    user: Option<InFlight>,
    done: Option<Result<Response, ClientError>>,
    session_lost: bool,
    /// Unsolicited pushes (stream Counters, Samples) for the caller.
    pub pushes: VecDeque<Response>,

    stats: ResilientStats,
    trace: TraceSink,
    /// Wrap every Nth user RPC in a sampled `Traced` envelope (0 = off).
    trace_sample_every: u32,
    last_trace_id: u64,
}

impl<T: Transport, F: FnMut() -> Option<T>> ResilientClient<T, F> {
    /// `dial` yields a fresh transport per attempt (or `None` when the
    /// endpoint is down right now — the client backs off and retries).
    pub fn new(dial: F, cfg: ResilientConfig) -> ResilientClient<T, F> {
        ResilientClient {
            dial,
            t: None,
            link: Link::Down { backoff_left: 0 },
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            round: 0,
            consecutive_fails: 0,
            resume_denials: 0,
            session_id: 0,
            session_token: None,
            n_cpus: 0,
            last_tick: 0,
            next_seq: 1,
            greet: None,
            user: None,
            done: None,
            session_lost: false,
            pushes: VecDeque::new(),
            stats: ResilientStats::default(),
            trace: TraceSink::disabled(),
            trace_sample_every: 0,
            last_trace_id: 0,
        }
    }

    /// Attach a flight recorder; `ClientRetry` and `ConnReset` events
    /// land here, timestamped with the client's round counter.
    pub fn set_trace(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Sample every Nth user RPC into a causal trace (0 disables). The
    /// trace id is derived from (session token, seq), so it is
    /// deterministic and stable across reissues and reconnects.
    pub fn set_trace_sampling(&mut self, every: u32) {
        self.trace_sample_every = every;
    }

    /// Trace id of the most recently sampled RPC (0 = none yet).
    pub fn last_trace_id(&self) -> u64 {
        self.last_trace_id
    }

    pub fn stats(&self) -> ResilientStats {
        self.stats
    }

    /// Enqueue one RPC. Returns false while a previous RPC is still in
    /// flight or its result has not been taken.
    pub fn begin(&mut self, req: &Request) -> bool {
        if self.user.is_some() || self.done.is_some() {
            return false;
        }
        let seq = self.alloc_seq();
        let sampled = self.trace_sample_every > 0
            && (seq as u64).is_multiple_of(self.trace_sample_every as u64);
        self.user = Some(if sampled {
            let trace_id = span::rpc_trace_id(self.session_token.unwrap_or(0), seq as u64);
            self.last_trace_id = trace_id;
            InFlight::traced(seq, req, trace_id)
        } else {
            InFlight::new(seq, req)
        });
        true
    }

    /// Take the completed RPC's result, if any.
    pub fn take_done(&mut self) -> Option<Result<Response, ClientError>> {
        self.done.take()
    }

    /// No RPC in flight and no result waiting.
    pub fn is_idle(&self) -> bool {
        self.user.is_none() && self.done.is_none()
    }

    /// True once (latched) after the session could not be resumed: the
    /// daemon no longer has its subscriptions, rebuild them.
    pub fn take_session_lost(&mut self) -> bool {
        std::mem::take(&mut self.session_lost)
    }

    fn alloc_seq(&mut self) -> u32 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// One lockstep round: manage the link, drain replies, drive the
    /// in-flight RPC.
    pub fn step(&mut self) {
        self.round += 1;
        if let Link::Down { backoff_left } = &mut self.link {
            if *backoff_left > 0 {
                *backoff_left -= 1;
                return;
            }
            match (self.dial)() {
                Some(t) => {
                    self.t = Some(t);
                    self.stats.reconnects += 1;
                    self.link = Link::Greeting;
                    let greet = self.make_greet();
                    self.greet = Some(greet);
                }
                None => {
                    self.begin_backoff();
                    return;
                }
            }
        }
        self.drain_replies();
        if self.t.is_none() {
            return;
        }
        if matches!(self.link, Link::Greeting) {
            self.drive(true);
        } else if matches!(self.link, Link::Ready) {
            self.drive(false);
        }
    }

    /// Hello for a fresh session, Resume when a token is held.
    fn make_greet(&mut self) -> InFlight {
        let seq = self.alloc_seq();
        let req = match self.session_token {
            Some(session_token) => Request::Resume {
                session_token,
                last_tick: self.last_tick,
            },
            None => Request::Hello {
                proto: PROTO_VERSION,
            },
        };
        InFlight::new(seq, &req)
    }

    /// Capped exponential backoff with deterministic jitter, never
    /// less than one full round: the daemon must get a pump in to park
    /// the dead session before a Resume can find it.
    fn begin_backoff(&mut self) {
        self.consecutive_fails += 1;
        let exp = self
            .cfg
            .backoff_base_rounds
            .saturating_mul(1u32 << (self.consecutive_fails - 1).min(16))
            .min(self.cfg.backoff_cap_rounds)
            .max(1);
        let jitter = self.rng.gen_range_u64(0, exp as u64 + 1) as u32;
        self.link = Link::Down {
            backoff_left: (exp + jitter).max(1),
        };
    }

    /// The transport died: shut it down, record, and back off.
    fn on_transport_death(&mut self) {
        if let Some(mut t) = self.t.take() {
            t.shutdown();
        }
        self.stats.conn_resets += 1;
        self.trace
            .record(self.round, EventKind::ConnReset, 0, self.round, 0);
        self.greet = None;
        // The user RPC survives with its seq: it will be reissued once
        // the handshake on the next transport completes.
        if let Some(u) = &mut self.user {
            u.sent = false;
            u.rounds_waiting = 0;
        }
        self.begin_backoff();
    }

    fn drain_replies(&mut self) {
        loop {
            let Some(t) = self.t.as_mut() else { return };
            let Some(frame) = t.try_recv() else { return };
            let resp = match Response::decode(&frame) {
                Ok(r) => r,
                // Corrupt reply: drop it; the reissue path recovers.
                Err(_) => continue,
            };
            match resp {
                Response::SeqReply { seq, crc, inner } => {
                    if fnv64(&inner) != crc {
                        continue; // corrupt envelope; reissue recovers
                    }
                    let Ok(inner) = Response::decode(&inner) else {
                        continue;
                    };
                    self.on_seq_reply(seq, inner);
                }
                Response::Overloaded { retry_after_pumps } => {
                    // Shed before it was applied: wait the hint out,
                    // then reissue the same seq.
                    self.stats.overloads += 1;
                    let inf = if matches!(self.link, Link::Greeting) {
                        self.greet.as_mut()
                    } else {
                        self.user.as_mut()
                    };
                    if let Some(inf) = inf {
                        inf.sent = false;
                        inf.rounds_waiting = 0;
                        inf.wait_rounds = inf.wait_rounds.max(retry_after_pumps.max(1));
                    }
                }
                Response::Err { code, msg } => self.on_plain_err(code, msg),
                Response::Evicted { .. } => {
                    // Evicted sessions are not parked: the token is
                    // dead and so are the subscriptions.
                    self.session_token = None;
                    self.session_lost = true;
                    self.stats.sessions_lost += 1;
                    if self.user.take().is_some() {
                        self.done = Some(Err(ClientError::Evicted {
                            reason: "session evicted".into(),
                        }));
                    }
                    self.on_transport_death();
                    return;
                }
                push @ (Response::Counters { .. }
                | Response::Sample { .. }
                | Response::TickKeyframe { .. }
                | Response::TickDelta { .. }) => {
                    if let Response::Counters { tick, .. }
                    | Response::Sample { tick, .. }
                    | Response::TickKeyframe { tick, .. }
                    | Response::TickDelta { tick, .. } = &push
                    {
                        self.last_tick = self.last_tick.max(*tick);
                    }
                    self.pushes.push_back(push);
                }
                // A non-enveloped control reply outside a handshake we
                // recognise — stale or duplicated; ignore.
                _ => {}
            }
        }
    }

    fn on_seq_reply(&mut self, seq: u32, inner: Response) {
        if self.greet.as_ref().is_some_and(|g| g.seq == seq) {
            self.greet = None;
            self.on_greet_reply(inner);
            return;
        }
        if self.user.as_ref().is_some_and(|u| u.seq == seq) {
            if let Response::Counters { tick, .. } | Response::Sample { tick, .. } = &inner {
                self.last_tick = self.last_tick.max(*tick);
            }
            let trace_id = self.user.as_ref().map_or(0, |u| u.trace_id);
            if trace_id != 0 {
                self.trace
                    .record(self.round, EventKind::SpanEnd, span::CLIENT, trace_id, 0);
            }
            self.user = None;
            self.stats.completed += 1;
            self.done = Some(match inner {
                Response::Err { code, msg } => Err(ClientError::Daemon { code, msg }),
                ok => Ok(ok),
            });
        }
        // Else: a stale duplicate from an earlier reissue; ignore.
    }

    fn on_greet_reply(&mut self, inner: Response) {
        match inner {
            Response::Welcome {
                session_id,
                session_token,
                n_cpus,
                ..
            } => {
                self.session_id = session_id;
                self.session_token = Some(session_token);
                self.n_cpus = n_cpus;
                self.consecutive_fails = 0;
                self.resume_denials = 0;
                self.link = Link::Ready;
            }
            Response::Resumed {
                session_id,
                session_token,
                cur_tick,
                gap_pumps,
            } => {
                self.session_id = session_id;
                self.session_token = Some(session_token);
                self.last_tick = self.last_tick.max(cur_tick);
                self.stats.resumes += 1;
                self.stats.gap_pumps += gap_pumps;
                self.consecutive_fails = 0;
                self.resume_denials = 0;
                self.link = Link::Ready;
            }
            Response::Err { code, .. } if code == errcode::NO_SUCH_TOKEN => {
                self.resume_denials += 1;
                if self.resume_denials > self.cfg.resume_grace {
                    // Token gone for good: start a fresh session and
                    // tell the caller its subscriptions died with it.
                    self.session_token = None;
                    self.session_lost = true;
                    self.stats.sessions_lost += 1;
                    self.resume_denials = 0;
                }
                // Re-greet (Resume again within grace — the daemon may
                // simply not have parked the old session yet — or
                // Hello after). A fresh seq: the old one's reply is
                // cached as the denial.
                let mut greet = self.make_greet();
                greet.wait_rounds = 1;
                self.greet = Some(greet);
            }
            Response::Err { code, msg } => {
                // BAD_PROTO and friends: not recoverable by retrying.
                self.stats.give_ups += 1;
                if self.user.take().is_some() || self.done.is_none() {
                    self.done = Some(Err(ClientError::Daemon { code, msg }));
                }
                self.link = Link::Down {
                    backoff_left: u32::MAX,
                };
                if let Some(mut t) = self.t.take() {
                    t.shutdown();
                }
            }
            _ => {
                // Wrong-shaped greet reply: reissue the handshake.
                let greet = self.make_greet();
                self.greet = Some(greet);
            }
        }
    }

    fn on_plain_err(&mut self, code: u16, _msg: String) {
        // A typed refusal outside the envelope (the daemon could not
        // attribute a seq): BAD_CHECKSUM / BAD_FRAME mean our request
        // was mangled in flight — reissue the in-flight seq right away.
        if code == errcode::BAD_CHECKSUM || code == errcode::BAD_FRAME {
            let inf = if matches!(self.link, Link::Greeting) {
                self.greet.as_mut()
            } else {
                self.user.as_mut()
            };
            if let Some(inf) = inf {
                inf.sent = false;
                inf.rounds_waiting = 0;
            }
        }
    }

    /// Drive the greet (handshake) or user in-flight record.
    fn drive(&mut self, greeting: bool) {
        enum Act {
            Nothing,
            Send {
                frame: Vec<u8>,
                seq: u32,
                attempts: u32,
                trace_id: u64,
            },
            GaveUp,
        }
        let cfg = self.cfg;
        let act = {
            let Some(inf) = (if greeting {
                self.greet.as_mut()
            } else {
                self.user.as_mut()
            }) else {
                return;
            };
            if inf.wait_rounds > 0 {
                inf.wait_rounds -= 1;
                Act::Nothing
            } else if !inf.sent {
                inf.sent = true;
                inf.rounds_waiting = 0;
                let open_span = inf.trace_id != 0 && !inf.span_opened;
                inf.span_opened = true;
                Act::Send {
                    frame: inf.frame.clone(),
                    seq: inf.seq,
                    attempts: inf.attempts,
                    trace_id: if open_span { inf.trace_id } else { 0 },
                }
            } else {
                inf.rounds_waiting += 1;
                if inf.rounds_waiting > cfg.rpc_timeout_rounds {
                    inf.attempts += 1;
                    if inf.attempts >= cfg.max_attempts {
                        Act::GaveUp
                    } else {
                        // Reissue next step (same seq — the dedup cache
                        // makes this safe even if the previous copy was
                        // actually applied).
                        inf.sent = false;
                        Act::Nothing
                    }
                } else {
                    Act::Nothing
                }
            }
        };
        match act {
            Act::Nothing => {}
            Act::Send {
                frame,
                seq,
                attempts,
                trace_id,
            } => {
                // The span opens at first send only: reissues extend the
                // one open slice instead of unbalancing Begin/End pairs.
                if trace_id != 0 && !greeting {
                    self.trace
                        .record(self.round, EventKind::SpanBegin, span::CLIENT, trace_id, 0);
                }
                if attempts > 0 {
                    self.stats.retries += 1;
                    self.trace
                        .record(self.round, EventKind::ClientRetry, attempts, seq as u64, 0);
                }
                let send_failed = self
                    .t
                    .as_mut()
                    .map(|t| t.send(frame).is_err())
                    .unwrap_or(true);
                if send_failed {
                    self.on_transport_death();
                }
            }
            Act::GaveUp => {
                self.stats.give_ups += 1;
                if greeting {
                    self.greet = None;
                    self.on_transport_death();
                } else {
                    let trace_id = self.user.as_ref().map_or(0, |u| u.trace_id);
                    if trace_id != 0 {
                        self.trace.record(
                            self.round,
                            EventKind::SpanEnd,
                            span::CLIENT,
                            trace_id,
                            0,
                        );
                    }
                    self.user = None;
                    self.done = Some(Err(ClientError::Timeout));
                }
            }
        }
    }
}

/// Blocking convenience for tests and tools that just want the answer:
/// step until the RPC completes or `max_rounds` elapse, sleeping
/// `round_wait` per round (pair with a daemon pumped from another
/// thread).
pub fn run_to_completion<T: Transport, F: FnMut() -> Option<T>>(
    c: &mut ResilientClient<T, F>,
    req: &Request,
    max_rounds: u64,
    round_wait: Duration,
) -> Result<Response, ClientError> {
    assert!(c.begin(req), "an RPC is already in flight");
    for _ in 0..max_rounds {
        c.step();
        if let Some(done) = c.take_done() {
            return done;
        }
        std::thread::sleep(round_wait);
    }
    Err(ClientError::Timeout)
}
