//! The daemon: sharded session registry, lockstep pump, backpressure.
//!
//! A [`Daemon`] owns the [`Collector`] and a set of worker shards. Each
//! connected session lives in exactly one shard (`session_id % shards`),
//! and each `pump()`:
//!
//! 1. admits pending connections into their shards,
//! 2. advances the kernel once and publishes the new [`TickSnapshot`]
//!    to the [`SnapshotCache`] (the single cache-invalidation point),
//!    which also pre-encodes this pump's shared delta-stream frames,
//! 3. serves every shard from the immutable snapshot — on the
//!    **persistent reactor workers** (`crate::reactor`) when the host
//!    has parallelism to exploit, inline on the pump thread otherwise.
//!    Shard count is a *determinism* domain (request interleaving per
//!    shard), worker count a *parallelism* one; decoupling them is what
//!    lets 8 shards cost the same as 1 on a single-core host instead of
//!    paying eight thread spawns per pump,
//! 4. reaps closed and evicted sessions, **parks** sessions whose
//!    transport died uncleanly, and TTL-reaps the parked table.
//!
//! Serving is readiness-based: every `FrameQueue` push raises a
//! lock-free flag, and the serve loop skips sessions with no raised
//! flag, no carried-over input, and no stream push due — an idle
//! subscriber costs one atomic swap per pump, which is what makes
//! 100k-session fan-out tractable.
//!
//! Backpressure is explicit: a session whose outbox is full keeps its
//! requests queued in its inbox (nothing is dropped), and a session that
//! stays stalled for `stall_grace_pumps` consecutive pumps is evicted —
//! a best-effort [`Response::Evicted`] is forced into its outbox and the
//! queue closes. The daemon never blocks on a slow consumer.
//!
//! Robustness (chaos hardening) layers three mechanisms on top:
//!
//! * **Idempotent reissue** — requests wrapped in
//!   [`Request::WithSeq`] are checksum-verified and deduplicated
//!   against a small per-session reply cache, so a client that lost a
//!   reply can reissue the same sequence id without the request being
//!   applied twice.
//! * **Session resume** — a session whose transport dies uncleanly
//!   (inbox closed and drained without an orderly `Close` or an
//!   eviction) is *parked*: its subscriptions, stream setting, and
//!   reply cache move to a token-keyed table for
//!   `resume_ttl_pumps`. A reconnecting client sends
//!   [`Request::Resume`] with the token from its `Welcome` and
//!   continues where it left off; resumed subscriptions answer reads
//!   as `ReadQuality::Scaled` until the client re-baselines them.
//! * **Load shedding** — with `shard_budget_per_pump` or
//!   `deadline_pumps` configured, excess or overdue queued requests
//!   are answered with a typed [`Response::Overloaded`] (carrying a
//!   retry hint) instead of being applied, evicted, or left to rot.

use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use simos::kernel::KernelHandle;
use simtrace::metrics::Registry;
use simtrace::{span, EventKind, TraceSink, Track};

use crate::history::{History, Rollup, Scratch, SloSpec};
use crate::queue::{ClientPipe, FrameQueue, PushError};
use crate::reactor::WorkerPool;
use crate::snapshot::{Collector, SnapshotCache, StreamFrames, TickSnapshot};
use crate::wire::{
    errcode, fnv64, metrics, HistSummary, MetricValue, Request, Response, PROTO_VERSION,
};

/// Entries kept in a session's seq-reply dedup cache. Two covers the
/// resilient client's worst case (one outstanding RPC plus the Resume
/// that restored it); four leaves slack.
const REPLY_CACHE: usize = 4;

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Worker shards serving sessions (aggregate counts are identical at
    /// any value; latency distribution is not).
    pub shards: usize,
    /// Kernel ticks simulated per pump — the batching window: every read
    /// arriving within one pump is served from the same kernel pass.
    pub ticks_per_pump: u32,
    /// Per-session outbox capacity (frames) before backpressure.
    pub outbox_cap: usize,
    /// Per-session inbox capacity (frames).
    pub inbox_cap: usize,
    /// The stall grace: consecutive pumps a session may sit with a full
    /// outbox (a push attempted and refused) before it is evicted as a
    /// slow consumer. Healthy sessions that drain every pump never
    /// accumulate stalled pumps and are never evicted.
    pub stall_grace_pumps: u32,
    /// Virtual serving cost per request (sim-ns), the queueing term in
    /// reported latency.
    pub serve_ns: u64,
    /// Per-session request budget per pump (fairness cap).
    pub max_requests_per_pump: u32,
    /// Total requests one shard serves per pump before it starts
    /// shedding (0 = unlimited). Shed requests are answered
    /// [`Response::Overloaded`] and **never applied**, so reissuing
    /// them is always safe.
    pub shard_budget_per_pump: u32,
    /// Consecutive pumps a session may sit with queued-but-unserved
    /// requests before they are shed with [`Response::Overloaded`]
    /// (0 = no deadline).
    pub deadline_pumps: u32,
    /// Pumps a parked (dead-transport) session stays resumable before
    /// its token is reaped and its state dropped.
    pub resume_ttl_pumps: u64,
    /// Back-off hint carried in [`Response::Overloaded`] replies.
    pub retry_after_pumps: u32,
    /// Reactor worker threads serving shards each pump. `0` (the
    /// default) sizes to `min(shards, available_parallelism)` — on a
    /// single-core host that is 1 and shards are served inline on the
    /// pump thread with zero cross-thread handoff. Aggregate counts and
    /// digests are identical at any value.
    pub workers: usize,
    /// Per-tier frame capacity of the rollup history ring (floored at
    /// [`crate::history::TIER_FANOUT`]).
    pub history_cap: usize,
    /// Declarative SLO targets the watchdog evaluates after every pump
    /// (empty = watchdog off; `GetHealth` answers zero rows).
    pub slos: Vec<SloSpec>,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            shards: 4,
            ticks_per_pump: 20,
            outbox_cap: 64,
            inbox_cap: 64,
            stall_grace_pumps: 8,
            serve_ns: 500,
            max_requests_per_pump: 16,
            shard_budget_per_pump: 0,
            deadline_pumps: 0,
            resume_ttl_pumps: 256,
            retry_after_pumps: 2,
            workers: 0,
            history_cap: 512,
            slos: Vec::new(),
        }
    }
}

/// A counter subscription: baseline values at subscribe time; reads
/// return the delta.
struct Subscription {
    id: u32,
    cpu_mask: u64,
    metrics: u8,
    /// Baselines in wire metric order.
    base: Vec<u64>,
    /// Per-CPU offline epochs at baseline (full width).
    base_epochs: Vec<u32>,
    base_gaps: u32,
    /// Set when the subscription survived a session resume: reads
    /// answer `ReadQuality::Scaled` (the client missed pushes during
    /// the gap) until the client re-baselines with `ResetSub`.
    resumed: bool,
}

struct Session {
    id: u64,
    /// Resume token: assigned from the id at connect, inherited across
    /// resumes so the client's token stays valid for its whole logical
    /// session however many transports it burns through.
    token: u64,
    inbox: Arc<FrameQueue>,
    outbox: Arc<FrameQueue>,
    helloed: bool,
    subs: Vec<Subscription>,
    next_sub_id: u32,
    /// Push Counters frames every N pumps (0 = off).
    stream_every: u32,
    /// Push delta-encoded snapshot frames every N pumps (0 = off).
    delta_every: u32,
    /// Tick the delta subscriber's mirror is believed to hold: the
    /// last successfully pushed frame's tick. `None` forces a keyframe
    /// (stream start, resume, or client nack).
    stream_base: Option<u64>,
    stalled_pumps: u32,
    /// Consecutive pumps this session ended with requests still queued
    /// (feeds the `deadline_pumps` shed).
    waiting_pumps: u32,
    /// Serve-loop memory: the last pump ended with input still queued
    /// (budget or backpressure), so the readiness skip must not apply
    /// even though no new push raised the inbox flag.
    pending_input: bool,
    /// Recent `(seq, encoded SeqReply)` pairs for idempotent reissue.
    reply_cache: VecDeque<(u32, Vec<u8>)>,
    closed: bool,
    evicted: bool,
}

/// Parked state of a session whose transport died uncleanly, keyed by
/// token in the daemon's resume table until TTL.
pub(crate) struct ParkedSession {
    subs: Vec<Subscription>,
    next_sub_id: u32,
    stream_every: u32,
    delta_every: u32,
    reply_cache: VecDeque<(u32, Vec<u8>)>,
    parked_at_pump: u64,
}

/// Deterministic token for a fresh session id. FNV-64 of the id bytes:
/// stable across runs (a feature in the sim — chaosbench digests stay
/// reproducible), effectively injective over realistic id ranges.
fn session_token(id: u64) -> u64 {
    fnv64(&id.to_le_bytes())
}

pub(crate) struct Shard {
    sessions: Vec<Session>,
    reads_served: u64,
    /// Per-shard flight recorder (thread-confined during serving).
    trace: TraceSink,
    /// Per-shard self-metrics, absorbed into the daemon's master
    /// registry at the start of each pump.
    reg: Registry,
    /// This pump's serving history (reads, latency histogram, exemplar
    /// candidates), absorbed into the daemon's [`History`] in shard
    /// order after serving.
    scratch: Scratch,
}

/// Cross-thread connection intake, clonable into acceptor threads.
#[derive(Clone)]
pub struct Connector {
    pending: Arc<Mutex<Vec<Session>>>,
    next_id: Arc<AtomicU64>,
    inbox_cap: usize,
    outbox_cap: usize,
}

impl Connector {
    /// Open an in-process connection; the session is admitted to its
    /// shard on the next pump.
    pub fn connect(&self) -> ClientPipe {
        self.connect_with_outbox_cap(self.outbox_cap)
    }

    /// As [`Connector::connect`] with a custom outbox capacity (small
    /// caps make slow-consumer eviction easy to exercise).
    pub fn connect_with_outbox_cap(&self, outbox_cap: usize) -> ClientPipe {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let inbox = FrameQueue::new(self.inbox_cap);
        let outbox = FrameQueue::new(outbox_cap);
        self.pending.lock().push(Session {
            id,
            token: session_token(id),
            inbox: inbox.clone(),
            outbox: outbox.clone(),
            helloed: false,
            subs: Vec::new(),
            next_sub_id: 1,
            stream_every: 0,
            delta_every: 0,
            stream_base: None,
            stalled_pumps: 0,
            waiting_pumps: 0,
            pending_input: false,
            reply_cache: VecDeque::new(),
            closed: false,
            evicted: false,
        });
        ClientPipe {
            tx: inbox,
            rx: outbox,
        }
    }
}

/// Aggregate serving statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonStats {
    pub sessions: u64,
    pub reads_served: u64,
    pub evictions: u64,
    pub pumps: u64,
}

/// Everything `serve_shard` needs beyond the shard itself. Owned (all
/// `Arc`/`Copy`) so the persistent reactor workers — which outlive any
/// single pump — can hold it without borrowing from the pump frame.
#[derive(Clone)]
pub(crate) struct PumpCtx {
    snap: Arc<TickSnapshot>,
    stream: Arc<StreamFrames>,
    cache: Arc<SnapshotCache>,
    cfg: DaemonConfig,
    stats_view: DaemonStats,
    tick_ns: u64,
    self_metrics: Arc<Vec<u8>>,
    /// Pre-encoded `Response::Health` frame, frozen at pump start from
    /// the watchdog state through the previous pump.
    health: Arc<Vec<u8>>,
    /// The rollup history. Read-locked by `QueryRange` dispatch; the
    /// only writer is the pump thread, after serving completes.
    history: Arc<RwLock<History>>,
    parked: Arc<Mutex<HashMap<u64, ParkedSession>>>,
    pump: u64,
}

pub struct Daemon {
    cfg: DaemonConfig,
    collector: Collector,
    cache: Arc<SnapshotCache>,
    shards: Vec<Shard>,
    /// Persistent reactor workers (`None` = serve inline: one worker
    /// would just be the pump thread with extra handoff).
    pool: Option<WorkerPool>,
    connector: Connector,
    /// Dead-transport sessions awaiting `Resume`, keyed by token.
    parked: Arc<Mutex<HashMap<u64, ParkedSession>>>,
    evictions: u64,
    pumps: u64,
    n_cpus: u32,
    tick_ns: u64,
    trace: TraceSink,
    /// Rollup history + SLO watchdog (one writer: the pump thread).
    history: Arc<RwLock<History>>,
    /// This pump's frozen `GetHealth` reply.
    health_frame: Arc<Vec<u8>>,
    /// Per-CPU cluster index (0 = the machine's first core type — the
    /// big/P cluster on hybrids — 1 = everything else).
    cluster_of: Vec<u8>,
    /// Per-cluster (instructions, cycles) sums at the previous pump,
    /// the rollup delta baseline.
    prev_cluster: [[u64; 2]; 2],
    /// Snapshot time of the previous pump (rate denominators).
    prev_time_ns: u64,
    /// Master self-metrics registry: shard registries are absorbed here
    /// (in shard order) at the start of every pump, so GetSelfMetrics
    /// answers reflect everything served through the previous pump.
    reg: Registry,
}

impl Daemon {
    /// Boot the serving layer over an already-booted kernel. Probes the
    /// hardware once (via the PAPI layer) to pre-encode the static
    /// hot-query responses, then opens the collector's counters.
    pub fn new(kernel: KernelHandle, cfg: DaemonConfig) -> Daemon {
        let (n_cpus, tick_ns, trace_cfg, cluster_of) = {
            let k = kernel.lock();
            let machine = k.machine();
            // Cluster partition for the history's per-cluster series:
            // cluster 0 is the machine's first core type (the big/P
            // cluster on hybrids), cluster 1 everything else. On
            // homogeneous machines cluster 1 stays empty.
            let first_type = machine.core_types()[0];
            let cluster_of: Vec<u8> = machine
                .cpus()
                .iter()
                .map(|c| u8::from(c.core_type() != first_type))
                .collect();
            (
                machine.n_cpus() as u32,
                k.config().tick_ns,
                k.config().trace.clone(),
                cluster_of,
            )
        };
        let papi = papi::Papi::init(kernel.clone()).expect("papi init");
        let hw_frame = Response::HardwareInfo {
            json: papi::avail::avail_json(&papi),
        }
        .encode();
        let presets_frame = Response::Presets {
            names: papi
                .available_presets()
                .iter()
                .map(|p| p.papi_name().to_string())
                .collect(),
        }
        .encode();
        drop(papi);
        let mut collector = Collector::new(kernel);
        collector.set_trace(TraceSink::new(&trace_cfg));
        let first = collector_boot_snapshot(&collector);
        let prev_time_ns = first.time_ns;
        let cache = Arc::new(SnapshotCache::new(first, hw_frame, presets_frame));
        let shards: Vec<Shard> = (0..cfg.shards.max(1))
            .map(|_| Shard {
                sessions: Vec::new(),
                reads_served: 0,
                trace: TraceSink::new(&trace_cfg),
                reg: Registry::new(),
                scratch: Scratch::default(),
            })
            .collect();
        let history = History::new(cfg.history_cap, cfg.slos.clone());
        let health_frame = Arc::new(
            Response::Health {
                pumps: 0,
                slos: history.health(),
            }
            .encode(),
        );
        // Workers are a parallelism decision, shards a determinism one:
        // never spawn more workers than the host can actually run.
        let workers = if cfg.workers > 0 {
            cfg.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
        .min(shards.len());
        let pool = (workers >= 2).then(|| WorkerPool::new(workers));
        Daemon {
            connector: Connector {
                pending: Arc::new(Mutex::new(Vec::new())),
                next_id: Arc::new(AtomicU64::new(1)),
                inbox_cap: cfg.inbox_cap,
                outbox_cap: cfg.outbox_cap,
            },
            cfg,
            collector,
            cache,
            shards,
            pool,
            parked: Arc::new(Mutex::new(HashMap::new())),
            evictions: 0,
            pumps: 0,
            n_cpus,
            tick_ns,
            trace: TraceSink::new(&trace_cfg),
            history: Arc::new(RwLock::new(history)),
            health_frame,
            cluster_of,
            prev_cluster: [[0; 2]; 2],
            prev_time_ns,
            reg: Registry::new(),
        }
    }

    /// Handle for opening connections (clonable into acceptor threads).
    pub fn connector(&self) -> Connector {
        self.connector.clone()
    }

    /// The snapshot cache (shared with transports and tests).
    pub fn cache(&self) -> Arc<SnapshotCache> {
        self.cache.clone()
    }

    pub fn stats(&self) -> DaemonStats {
        DaemonStats {
            sessions: self.shards.iter().map(|s| s.sessions.len() as u64).sum(),
            reads_served: self.shards.iter().map(|s| s.reads_served).sum(),
            evictions: self.evictions,
            pumps: self.pumps,
        }
    }

    /// Sessions currently parked awaiting resume.
    pub fn parked_count(&self) -> usize {
        self.parked.lock().len()
    }

    /// Parallel serving workers (1 = shards served inline on the pump
    /// thread — the fast path when the host has a single core or a
    /// single shard).
    pub fn workers(&self) -> usize {
        self.pool.as_ref().map_or(1, |p| p.len())
    }

    /// One lockstep serving round. Returns the snapshot it served from.
    pub fn pump(&mut self) -> Arc<TickSnapshot> {
        self.pump_with_ticks(self.cfg.ticks_per_pump)
    }

    /// A serving round that advances sim time by **zero** ticks:
    /// counter values stay frozen while sessions are still admitted,
    /// served, resumed, and reaped. chaosbench's drain phase uses this
    /// so a variable-length recovery tail (clients riding out injected
    /// faults) cannot perturb the final counter digest.
    pub fn pump_quiescent(&mut self) -> Arc<TickSnapshot> {
        self.pump_with_ticks(0)
    }

    /// One serving round over `ticks` kernel ticks.
    pub fn pump_with_ticks(&mut self, ticks: u32) -> Arc<TickSnapshot> {
        // 1. Admit pending connections to their shards.
        let n_shards = self.shards.len();
        for s in self.connector.pending.lock().drain(..) {
            self.shards[(s.id % n_shards as u64) as usize]
                .sessions
                .push(s);
        }

        // 2. One kernel pass; publish the snapshot (cache invalidation).
        let snap = self.collector.advance(ticks);
        self.cache.publish(snap.clone());
        self.pumps += 1;

        // 3. Serve every shard from the immutable snapshot.
        let stats_view = self.stats();
        // Absorb shard self-metrics into the master registry (fixed shard
        // order keeps merged views deterministic), refresh the gauges, and
        // freeze this pump's GetSelfMetrics reply before serving begins:
        // reads served below surface at the *next* pump, like the stats.
        for shard in &mut self.shards {
            self.reg.absorb(&mut shard.reg);
        }
        self.reg.set("pumps", stats_view.pumps);
        self.reg.set("sessions", stats_view.sessions);
        self.reg.set("evictions", stats_view.evictions);
        self.reg.set("reads_served", stats_view.reads_served);
        self.reg
            .set("parked_sessions", self.parked.lock().len() as u64);
        let self_metrics = Arc::new(self_metrics_frame(&self.reg));
        self.trace
            .record(snap.time_ns, EventKind::DaemonPump, 0, self.pumps, 0);
        let ctx = PumpCtx {
            snap: snap.clone(),
            stream: self.cache.stream_frames(),
            cache: self.cache.clone(),
            cfg: self.cfg.clone(),
            stats_view,
            tick_ns: self.tick_ns,
            self_metrics,
            health: self.health_frame.clone(),
            history: self.history.clone(),
            parked: self.parked.clone(),
            pump: self.pumps,
        };
        match &mut self.pool {
            // Persistent workers: distribute shards, one generation
            // barrier, no per-pump thread spawns.
            Some(pool) => pool.serve(&mut self.shards, &ctx),
            // No host parallelism to exploit: serve every shard inline
            // on the pump thread, in shard order.
            None => {
                for shard in &mut self.shards {
                    serve_shard(shard, &ctx);
                }
            }
        }

        // 4. Reap: drop closed/evicted sessions, park dead transports.
        for shard in &mut self.shards {
            let sessions = std::mem::take(&mut shard.sessions);
            for s in sessions {
                if s.evicted {
                    self.evictions += 1;
                    continue;
                }
                if s.closed {
                    continue;
                }
                if s.inbox.is_closed() && s.inbox.is_empty() {
                    // Unclean transport death with nothing left to
                    // serve: park for resume instead of dropping.
                    self.trace
                        .record(snap.time_ns, EventKind::ConnReset, 1, s.id, self.pumps);
                    self.reg.inc("conn_parks", 1);
                    s.outbox.close();
                    self.parked.lock().insert(
                        s.token,
                        ParkedSession {
                            subs: s.subs,
                            next_sub_id: s.next_sub_id,
                            stream_every: s.stream_every,
                            delta_every: s.delta_every,
                            reply_cache: s.reply_cache,
                            parked_at_pump: self.pumps,
                        },
                    );
                    continue;
                }
                shard.sessions.push(s);
            }
        }
        // TTL-reap the parked table.
        let ttl = self.cfg.resume_ttl_pumps;
        let pumps = self.pumps;
        let mut reaped = 0u64;
        self.parked.lock().retain(|_, p| {
            let keep = pumps.saturating_sub(p.parked_at_pump) <= ttl;
            if !keep {
                reaped += 1;
            }
            keep
        });
        if reaped > 0 {
            self.reg.inc("parked_reaped", reaped);
        }

        // 5. History: fold this pump's serving into one rollup frame.
        // Runs after serving and reaping — workers are done, shards are
        // exclusively owned — so scratches absorb in shard order, the
        // only deterministic order there is. Queries served during pump
        // N therefore see rollups through pump N-1.
        let mut cluster = [[0u64; 2]; 2];
        for (i, c) in snap.cpus.iter().enumerate() {
            let cl = self.cluster_of.get(i).copied().unwrap_or(0) as usize;
            cluster[cl][0] += c.instructions;
            cluster[cl][1] += c.cycles;
        }
        let mut rollup = Rollup {
            pump: self.pumps,
            first_tick: snap.tick,
            last_tick: snap.tick,
            first_time_ns: self.prev_time_ns,
            last_time_ns: snap.time_ns,
            reads: 0,
            stale_reads: 0,
            evictions: 0,
            sheds: 0,
            cluster_instructions: [
                cluster[0][0].saturating_sub(self.prev_cluster[0][0]),
                cluster[1][0].saturating_sub(self.prev_cluster[1][0]),
            ],
            cluster_cycles: [
                cluster[0][1].saturating_sub(self.prev_cluster[0][1]),
                cluster[1][1].saturating_sub(self.prev_cluster[1][1]),
            ],
            latency: Default::default(),
            slow_ns: 0,
            exemplar: 0,
        };
        self.prev_cluster = cluster;
        self.prev_time_ns = snap.time_ns;
        for shard in &mut self.shards {
            shard.scratch.absorb_into(&mut rollup);
        }
        let (breaches, health) = {
            let mut h = self.history.write();
            (h.push(rollup), h.health())
        };
        for b in &breaches {
            self.trace.record(
                snap.time_ns,
                EventKind::SloBreach,
                b.slo as u32,
                b.exemplar,
                b.observed,
            );
            self.reg.inc("slo_breaches", 1);
        }
        self.health_frame = Arc::new(
            Response::Health {
                pumps: self.pumps,
                slos: health,
            }
            .encode(),
        );
        snap
    }

    pub fn n_cpus(&self) -> u32 {
        self.n_cpus
    }

    /// The master self-metrics registry as of the last pump (shard
    /// registries not yet absorbed are excluded, exactly like the wire
    /// `GetSelfMetrics` view frozen at pump start).
    pub fn self_metrics(&self) -> &Registry {
        &self.reg
    }

    /// Every flight-recorder track: the kernel's (kernel/hw/per-CPU),
    /// then the daemon pump track, the collector track, and one track
    /// per shard.
    pub fn trace_tracks(&self) -> Vec<Track> {
        let mut tracks = {
            let k = self.collector.kernel().lock();
            k.trace_tracks()
        };
        tracks.push(Track::new("daemon", self.trace.events()));
        tracks.push(Track::new("collector", self.collector.trace_events()));
        for (i, shard) in self.shards.iter().enumerate() {
            tracks.push(Track::new(format!("shard{i}"), shard.trace.events()));
        }
        tracks
    }

    /// Read access to the rollup history (what `QueryRange` serves
    /// from), for tests and local cross-checks.
    pub fn history(&self) -> Arc<RwLock<History>> {
        self.history.clone()
    }
}

/// Encode the registry as a [`Response::SelfMetrics`] frame.
fn self_metrics_frame(reg: &Registry) -> Vec<u8> {
    Response::SelfMetrics {
        counters: reg
            .counters()
            .map(|(name, v)| (name.to_string(), v))
            .collect(),
        hists: reg
            .histograms()
            .map(|(name, h)| HistSummary {
                name: name.to_string(),
                count: h.count(),
                min: h.min(),
                max: h.max(),
                p50: h.percentile(0.50),
                p90: h.percentile(0.90),
                p99: h.percentile(0.99),
            })
            .collect(),
    }
    .encode()
}

/// The collector takes its own boot snapshot internally; re-derive a
/// matching tick-0 view for the cache without another kernel pass.
fn collector_boot_snapshot(c: &Collector) -> Arc<TickSnapshot> {
    // The collector's boot sample is not retained; an empty placeholder
    // with tick 0 suffices until the first pump publishes (hot static
    // queries don't read it, and counter queries require a pump first).
    let k = c.kernel().lock();
    Arc::new(TickSnapshot {
        tick: 0,
        time_ns: k.time_ns(),
        cpus: vec![Default::default(); k.machine().n_cpus()],
        temp_mc: 0,
        energy_pkg_uj: 0,
        sysfs_gaps: 0,
        gap: false,
    })
}

pub(crate) fn serve_shard(shard: &mut Shard, ctx: &PumpCtx) {
    let Shard {
        sessions,
        reads_served,
        trace,
        reg,
        scratch,
    } = shard;
    let cfg = &ctx.cfg;
    let snap = &ctx.snap;
    // Virtual serving clock for this shard this pump: request k in the
    // shard completes at snapshot-time + (k+1)·serve_ns. More shards →
    // shorter per-shard queues → lower reported tail latency.
    let mut served_in_shard: u64 = 0;
    let mut pushes: u64 = 0;
    let mut examined: u64 = 0;
    let mut skipped: u64 = 0;
    // Bounded-work admission: once the shard's pump budget is spent,
    // remaining queued requests are shed (session-iteration order makes
    // the shed set deterministic for a fixed schedule).
    let mut shard_budget: u64 = if cfg.shard_budget_per_pump == 0 {
        u64::MAX
    } else {
        cfg.shard_budget_per_pump as u64
    };
    for session in sessions.iter_mut() {
        if session.closed || session.evicted {
            continue;
        }
        // Readiness fast path: nothing pushed since last pump, nothing
        // carried over, no stream due → the session is idle. One atomic
        // swap, no mutex. Equivalent to a full pass in which nothing
        // happens, so the stall/deadline counters reset exactly as that
        // pass would have reset them.
        let input_hint = session.inbox.take_ready() || session.pending_input;
        let stream_due =
            session.stream_every > 0 && snap.tick.is_multiple_of(session.stream_every as u64);
        let delta_due =
            session.delta_every > 0 && snap.tick.is_multiple_of(session.delta_every as u64);
        if !input_hint && !stream_due && !delta_due {
            session.stalled_pumps = 0;
            session.waiting_pumps = 0;
            skipped += 1;
            continue;
        }
        examined += 1;
        let mut stalled = false;

        // Delta-stream push: the shared pre-encoded frame for this pump
        // (one encode, N subscribers). The delta applies only to a
        // mirror holding exactly the previous publish; any gap — first
        // push, a push missed under backpressure, a resume, a client
        // nack — falls back to the keyframe.
        if delta_due {
            let sf = &ctx.stream;
            let frame = match (session.stream_base, &sf.delta) {
                (Some(base), Some(delta)) if base == sf.base_tick => delta.clone(),
                _ => sf.keyframe.clone(),
            };
            let is_delta = !Arc::ptr_eq(&frame, &sf.keyframe);
            match session.outbox.push_shared(frame) {
                Ok(()) => {
                    session.stream_base = Some(sf.tick);
                    served_in_shard += 1;
                    pushes += 1;
                    // The push hop of the snapshot's flow: collector
                    // (producer) → shard (fan-out) → client (mirror),
                    // all deriving the same id from the tick alone.
                    let flow = span::snapshot_flow_id(sf.tick);
                    trace.record(snap.time_ns, EventKind::SpanBegin, span::PUSH, flow, 0);
                    trace.record(snap.time_ns, EventKind::SpanEnd, span::PUSH, flow, 0);
                    reg.inc(
                        if is_delta {
                            "stream_delta_pushes"
                        } else {
                            "stream_keyframe_pushes"
                        },
                        1,
                    );
                }
                Err(PushError::Full) => {
                    // Gap: stream_base stays behind, so the next
                    // successful push self-selects the keyframe.
                    stalled = true;
                }
                Err(PushError::Closed) | Err(PushError::TooBig) => session.closed = true,
            }
        }

        // Stream pushes next (they contend for outbox space like replies).
        if !session.closed && stream_due {
            for si in 0..session.subs.len() {
                let (resp, _, _) =
                    counters_response(&session.subs[si], snap, 0, cfg, served_in_shard);
                match session.outbox.push(resp.encode()) {
                    Ok(()) => served_in_shard += 1,
                    Err(PushError::Full) => {
                        stalled = true;
                        break;
                    }
                    Err(PushError::Closed) | Err(PushError::TooBig) => {
                        session.closed = true;
                        break;
                    }
                }
            }
        }

        // Serve queued requests FIFO, up to the fairness cap, stopping
        // (not dropping) when the outbox has no room for a reply.
        let mut budget = cfg.max_requests_per_pump;
        while budget > 0 && shard_budget > 0 && !session.closed {
            if session.outbox.len() >= session.outbox.capacity() {
                stalled = true;
                break;
            }
            let Some(frame) = session.inbox.try_pop() else {
                break;
            };
            budget -= 1;
            shard_budget -= 1;
            let reply = handle_frame(session, &frame, ctx, served_in_shard, trace, reg, scratch);
            served_in_shard += 1;
            *reads_served += 1;
            match session.outbox.push(reply) {
                Ok(()) => {
                    // An orderly Close: the ack is in the queue; seal it
                    // behind the ack so the client can still drain.
                    if session.closed {
                        session.outbox.close();
                    }
                }
                Err(PushError::Full) => {
                    // Raced with capacity check; treat as a stall but the
                    // reply must not vanish.
                    session.outbox.force_push(
                        Response::Err {
                            code: errcode::BAD_FRAME,
                            msg: "outbox overflow".into(),
                        }
                        .encode(),
                    );
                    stalled = true;
                    break;
                }
                Err(PushError::Closed) | Err(PushError::TooBig) => session.closed = true,
            }
        }

        // Load shedding: requests still queued after the serving loop
        // are answered `Overloaded` — never applied, so reissue is safe
        // — when either the shard's pump budget ran dry or the session
        // has waited past its deadline.
        let over_budget = shard_budget == 0 && !session.inbox.is_empty();
        let over_deadline = cfg.deadline_pumps > 0
            && session.waiting_pumps >= cfg.deadline_pumps
            && !session.inbox.is_empty();
        if !session.closed && !stalled && (over_budget || over_deadline) {
            let reason: u32 = if over_budget { 0 } else { 1 };
            let mut shed_cap = cfg.max_requests_per_pump;
            while shed_cap > 0 && session.outbox.len() < session.outbox.capacity() {
                let Some(_dropped) = session.inbox.try_pop() else {
                    break;
                };
                shed_cap -= 1;
                scratch.sheds += 1;
                reg.inc("reqs_shed", 1);
                trace.record(snap.time_ns, EventKind::LoadShed, reason, session.id, 0);
                let reply = Response::Overloaded {
                    retry_after_pumps: cfg.retry_after_pumps,
                }
                .encode();
                if session.outbox.push(reply).is_err() {
                    break;
                }
            }
            session.waiting_pumps = 0;
        } else if session.inbox.is_empty() {
            session.waiting_pumps = 0;
        } else {
            session.waiting_pumps += 1;
        }

        if stalled {
            session.stalled_pumps += 1;
            if session.stalled_pumps > cfg.stall_grace_pumps {
                session.evicted = true;
                scratch.evictions += 1;
                trace.record(
                    snap.time_ns,
                    EventKind::DaemonEvict,
                    0,
                    session.id,
                    session.stalled_pumps as u64,
                );
                session.outbox.force_push(
                    Response::Evicted {
                        reason: format!(
                            "slow consumer: outbox full for {} consecutive pumps",
                            session.stalled_pumps
                        ),
                    }
                    .encode(),
                );
                session.outbox.close();
                session.inbox.close();
            }
        } else {
            session.stalled_pumps = 0;
        }

        // Carry-over hint: input left queued (budget exhaustion, stall)
        // must re-arm the session for the next pump even if the client
        // pushes nothing new in between.
        session.pending_input = !session.inbox.is_empty();
    }
    if examined + skipped > 0 {
        trace.record(
            snap.time_ns,
            EventKind::ReactorWakeup,
            ctx.pump as u32,
            examined,
            skipped,
        );
        trace.record(
            snap.time_ns,
            EventKind::ReactorFlush,
            ctx.pump as u32,
            served_in_shard,
            pushes,
        );
    }
}

/// Decode one inbound frame and produce the encoded reply, unwrapping
/// and deduplicating [`Request::WithSeq`] envelopes and unwrapping the
/// [`Request::Traced`] causal envelope (always the outermost layer).
#[allow(clippy::too_many_arguments)]
fn handle_frame(
    session: &mut Session,
    frame: &[u8],
    ctx: &PumpCtx,
    served_in_shard: u64,
    trace: &mut TraceSink,
    reg: &mut Registry,
    scratch: &mut Scratch,
) -> Vec<u8> {
    let req = match Request::decode(frame) {
        Ok(r) => r,
        Err(e) => {
            return Response::Err {
                code: errcode::BAD_FRAME,
                msg: e.to_string(),
            }
            .encode()
        }
    };
    // Unwrap the causal envelope first: it is semantically transparent
    // (the inner request is served identically), so goldens are
    // unaffected — its only effect is the linked spans recorded here.
    let (tctx, req) = match req {
        Request::Traced { ctx: tc, inner } => match Request::decode(&inner) {
            Ok(Request::Traced { .. }) => {
                return Response::Err {
                    code: errcode::BAD_FRAME,
                    msg: "nested trace envelope".into(),
                }
                .encode()
            }
            Ok(r) => (Some(tc), r),
            Err(e) => {
                return Response::Err {
                    code: errcode::BAD_FRAME,
                    msg: e.to_string(),
                }
                .encode()
            }
        },
        other => (None, other),
    };
    let trace_id = match tctx {
        Some(tc) if tc.sampled => tc.trace_id,
        _ => 0,
    };
    if trace_id != 0 {
        // The serving loop's unwrap is the in-process reactor hop (the
        // tcpio thread records its own when the bytes crossed TCP); the
        // shard span wraps the dispatch below. A read's shard span also
        // joins the snapshot flow of the tick it serves from, stitching
        // the RPC timeline to the collector's.
        let t = ctx.snap.time_ns;
        trace.record(t, EventKind::SpanBegin, span::REACTOR, trace_id, 0);
        trace.record(t, EventKind::SpanEnd, span::REACTOR, trace_id, 0);
        let joined = if matches!(req, Request::Read { .. }) {
            span::snapshot_flow_id(ctx.snap.tick)
        } else {
            0
        };
        trace.record(t, EventKind::SpanBegin, span::SHARD, trace_id, joined);
        let reply = handle_unwrapped(
            session,
            req,
            ctx,
            served_in_shard,
            trace,
            reg,
            scratch,
            trace_id,
        );
        trace.record(
            ctx.snap.time_ns,
            EventKind::SpanEnd,
            span::SHARD,
            trace_id,
            0,
        );
        return reply;
    }
    handle_unwrapped(session, req, ctx, served_in_shard, trace, reg, scratch, 0)
}

/// Seq-envelope handling and dispatch for an already trace-unwrapped
/// request.
#[allow(clippy::too_many_arguments)]
fn handle_unwrapped(
    session: &mut Session,
    req: Request,
    ctx: &PumpCtx,
    served_in_shard: u64,
    trace: &mut TraceSink,
    reg: &mut Registry,
    scratch: &mut Scratch,
    trace_id: u64,
) -> Vec<u8> {
    match req {
        Request::WithSeq { seq, crc, inner } => {
            if fnv64(&inner) != crc {
                // Corruption slipped past framing: refuse without
                // applying anything; the client reissues the same seq.
                reg.inc("bad_checksums", 1);
                return Response::Err {
                    code: errcode::BAD_CHECKSUM,
                    msg: "seq envelope checksum mismatch".into(),
                }
                .encode();
            }
            if let Some((_, cached)) = session.reply_cache.iter().find(|(s, _)| *s == seq) {
                // Idempotent reissue: the request was already applied;
                // re-send the cached reply, apply nothing.
                reg.inc("dup_reissues", 1);
                return cached.clone();
            }
            let ireq = match Request::decode(&inner) {
                Ok(Request::WithSeq { .. }) => {
                    return Response::Err {
                        code: errcode::BAD_FRAME,
                        msg: "nested seq envelope".into(),
                    }
                    .encode()
                }
                Ok(Request::Traced { .. }) => {
                    return Response::Err {
                        code: errcode::BAD_FRAME,
                        msg: "trace envelope must be outermost".into(),
                    }
                    .encode()
                }
                Ok(r) => r,
                Err(e) => {
                    return Response::Err {
                        code: errcode::BAD_FRAME,
                        msg: e.to_string(),
                    }
                    .encode()
                }
            };
            let reply = dispatch(
                session,
                ireq,
                ctx,
                served_in_shard,
                trace,
                reg,
                scratch,
                trace_id,
            );
            let wrapped = Response::SeqReply {
                seq,
                crc: fnv64(&reply),
                inner: reply,
            }
            .encode();
            session.reply_cache.push_back((seq, wrapped.clone()));
            while session.reply_cache.len() > REPLY_CACHE {
                session.reply_cache.pop_front();
            }
            wrapped
        }
        other => dispatch(
            session,
            other,
            ctx,
            served_in_shard,
            trace,
            reg,
            scratch,
            trace_id,
        ),
    }
}

/// Apply one (already unwrapped) request to the session. `trace_id` is
/// nonzero only for a sampled traced request — it feeds the history
/// scratch so SLO breaches can name an exemplar.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    session: &mut Session,
    req: Request,
    ctx: &PumpCtx,
    served_in_shard: u64,
    trace: &mut TraceSink,
    reg: &mut Registry,
    scratch: &mut Scratch,
    trace_id: u64,
) -> Vec<u8> {
    let snap = &*ctx.snap;
    let cfg = &ctx.cfg;
    if !session.helloed && !matches!(req, Request::Hello { .. } | Request::Resume { .. }) {
        return Response::Err {
            code: errcode::NOT_HELLOED,
            msg: "first frame must be Hello".into(),
        }
        .encode();
    }
    match req {
        // Unreachable: handle_frame unwraps (and rejects nested)
        // envelopes before dispatch.
        Request::WithSeq { .. } => Response::Err {
            code: errcode::BAD_FRAME,
            msg: "nested seq envelope".into(),
        }
        .encode(),
        Request::Traced { .. } => Response::Err {
            code: errcode::BAD_FRAME,
            msg: "trace envelope must be outermost".into(),
        }
        .encode(),
        Request::Hello { proto } => {
            if proto != PROTO_VERSION {
                return Response::Err {
                    code: errcode::BAD_PROTO,
                    msg: format!("daemon speaks proto {PROTO_VERSION}, client sent {proto}"),
                }
                .encode();
            }
            session.helloed = true;
            Response::Welcome {
                session_id: session.id,
                session_token: session.token,
                proto: PROTO_VERSION,
                n_cpus: snap.cpus.len() as u32,
                tick_ns: ctx.tick_ns,
            }
            .encode()
        }
        Request::Resume {
            session_token,
            last_tick,
        } => {
            let restored = ctx.parked.lock().remove(&session_token);
            match restored {
                Some(p) => {
                    session.helloed = true;
                    session.token = session_token;
                    session.subs = p.subs;
                    for sub in &mut session.subs {
                        sub.resumed = true;
                    }
                    session.next_sub_id = p.next_sub_id;
                    session.stream_every = p.stream_every;
                    session.delta_every = p.delta_every;
                    // The mirror on the other side is stale by however
                    // long the session was parked: force a keyframe.
                    session.stream_base = None;
                    // Restore the dedup cache so a pre-death seq
                    // reissued after Resume dedups instead of
                    // double-applying (e.g. a Subscribe whose reply the
                    // old transport ate).
                    session.reply_cache.extend(p.reply_cache);
                    let gap_pumps = ctx.pump.saturating_sub(p.parked_at_pump);
                    reg.inc("sessions_resumed", 1);
                    trace.record(
                        snap.time_ns,
                        EventKind::SessionResume,
                        0,
                        session.id,
                        gap_pumps,
                    );
                    debug_assert!(last_tick <= snap.tick, "client cursor ahead of sim time");
                    Response::Resumed {
                        session_id: session.id,
                        session_token,
                        cur_tick: snap.tick,
                        gap_pumps,
                    }
                    .encode()
                }
                None => Response::Err {
                    code: errcode::NO_SUCH_TOKEN,
                    msg: format!("no parked session for token {session_token:#x}"),
                }
                .encode(),
            }
        }
        // Hot static queries: pre-encoded bytes, no kernel lock, no
        // re-encoding.
        Request::GetHardwareInfo => ctx.cache.hardware_info_frame.clone(),
        Request::ListPresets => ctx.cache.presets_frame.clone(),
        Request::Subscribe {
            cpu_mask,
            metrics: m,
        } => {
            let width_mask = if snap.cpus.len() >= 64 {
                u64::MAX
            } else {
                (1u64 << snap.cpus.len()) - 1
            };
            let eff_mask = cpu_mask & width_mask;
            if (m & metrics::ALL == 0) || (eff_mask == 0 && m & !metrics::ENERGY_PKG != 0) {
                return Response::Err {
                    code: errcode::EMPTY_MASK,
                    msg: "empty cpu mask or metric set".into(),
                }
                .encode();
            }
            let sub_id = session.next_sub_id;
            session.next_sub_id += 1;
            session.subs.push(Subscription {
                id: sub_id,
                cpu_mask: eff_mask,
                metrics: m,
                base: metrics::iter(m)
                    .map(|metric| snap.sum_metric(eff_mask, metric))
                    .collect(),
                base_epochs: snap.cpus.iter().map(|c| c.offline_epochs).collect(),
                base_gaps: snap.sysfs_gaps,
                resumed: false,
            });
            Response::Subscribed {
                sub_id,
                base_tick: snap.tick,
            }
            .encode()
        }
        Request::Read { sub_id, submit_ns } => match session.subs.iter().find(|s| s.id == sub_id) {
            Some(sub) => {
                let (resp, latency_ns, inverted) =
                    counters_response(sub, snap, submit_ns, cfg, served_in_shard);
                let stale = !matches!(resp, Response::Counters { quality: 0, .. });
                scratch.observe_read(latency_ns, stale, trace_id);
                reg.observe("read_latency_ns", latency_ns);
                trace.record(snap.time_ns, EventKind::DaemonServe, sub_id, latency_ns, 0);
                if inverted {
                    // The client claims a later last-seen time than this
                    // serve's virtual completion — a clock inversion that
                    // the old `min`-clamped formula silently masked.
                    reg.inc("latency_inversions", 1);
                    trace.record(
                        snap.time_ns,
                        EventKind::LatencyInversion,
                        sub_id,
                        submit_ns,
                        0,
                    );
                }
                resp.encode()
            }
            None => Response::Err {
                code: errcode::NO_SUCH_SUB,
                msg: format!("no subscription {sub_id}"),
            }
            .encode(),
        },
        Request::ResetSub { sub_id } => match session.subs.iter_mut().find(|s| s.id == sub_id) {
            Some(sub) => {
                sub.base = metrics::iter(sub.metrics)
                    .map(|metric| snap.sum_metric(sub.cpu_mask, metric))
                    .collect();
                sub.base_epochs = snap.cpus.iter().map(|c| c.offline_epochs).collect();
                sub.base_gaps = snap.sysfs_gaps;
                sub.resumed = false;
                Response::Subscribed {
                    sub_id,
                    base_tick: snap.tick,
                }
                .encode()
            }
            None => Response::Err {
                code: errcode::NO_SUCH_SUB,
                msg: format!("no subscription {sub_id}"),
            }
            .encode(),
        },
        Request::LatestSample => Response::Sample {
            tick: snap.tick,
            time_ns: snap.time_ns,
            temp_mc: snap.temp_mc,
            energy_pkg_uj: snap.energy_pkg_uj,
            mean_freq_khz: snap.mean_freq_khz(),
            gap: snap.gap,
        }
        .encode(),
        Request::Stream { every_pumps } => {
            session.stream_every = every_pumps;
            Response::Subscribed {
                sub_id: 0,
                base_tick: snap.tick,
            }
            .encode()
        }
        Request::StreamDeltas { every_pumps } => {
            session.delta_every = every_pumps;
            // No base yet (or the client explicitly restarted the
            // stream): the first push is always a keyframe.
            session.stream_base = None;
            Response::Subscribed {
                sub_id: 0,
                base_tick: snap.tick,
            }
            .encode()
        }
        Request::AckTick { tick } => {
            // Client-side cursor update. `tick == 0` (or any tick the
            // daemon has moved past without a matching publish) is a
            // nack: the next push falls back to a keyframe because the
            // recorded base won't match the current frame's base_tick.
            session.stream_base = if tick == 0 {
                None
            } else {
                Some(tick.min(snap.tick))
            };
            Response::Subscribed {
                sub_id: 0,
                base_tick: snap.tick,
            }
            .encode()
        }
        Request::Stats => Response::Stats {
            sessions: ctx.stats_view.sessions,
            reads_served: ctx.stats_view.reads_served,
            evictions: ctx.stats_view.evictions,
            pumps: ctx.stats_view.pumps,
        }
        .encode(),
        Request::Close => {
            session.closed = true;
            Response::Closed.encode()
        }
        // Frozen at pump start, shared by every session this pump.
        Request::GetSelfMetrics => ctx.self_metrics.to_vec(),
        Request::QueryRange {
            series,
            agg,
            start_tick,
            end_tick,
            max_points,
        } => match ctx
            .history
            .read()
            .query(series, agg, start_tick, end_tick, max_points)
        {
            Ok(r) => Response::RangeReply {
                series,
                agg,
                tier: r.tier,
                count: r.count,
                min: r.min,
                max: r.max,
                points: r.points,
            }
            .encode(),
            Err(msg) => Response::Err {
                code: errcode::BAD_QUERY,
                msg: msg.into(),
            }
            .encode(),
        },
        // Frozen at pump start from the watchdog state through the
        // previous pump, shared by every session this pump.
        Request::GetHealth => ctx.health.to_vec(),
    }
}

/// Build a Counters reply for a subscription from the snapshot, with
/// the `ReadQuality` aggregation:
///
/// * any covered CPU currently offline → `Lost` (2),
/// * any covered CPU hotplugged since baseline, a stale counter, a
///   sysfs gap affecting a subscribed energy metric, or a subscription
///   carried across a session resume (pushes missed during the gap) →
///   `Scaled` (1),
/// * otherwise `Ok` (0).
///
/// Returns `(response, latency_ns, inverted)`: `inverted` flags a
/// `submit_ns` later than the virtual serve time (a clock inversion,
/// reported as zero latency rather than silently clamped away).
fn counters_response(
    sub: &Subscription,
    snap: &TickSnapshot,
    submit_ns: u64,
    cfg: &DaemonConfig,
    served_in_shard: u64,
) -> (Response, u64, bool) {
    let mut quality = 0u8;
    if sub.resumed {
        quality = 1;
    }
    for (i, c) in snap.cpus.iter().enumerate() {
        if i >= 64 || sub.cpu_mask & (1 << i) == 0 {
            continue;
        }
        if !c.online {
            quality = quality.max(2);
        } else if c.offline_epochs != sub.base_epochs.get(i).copied().unwrap_or(0) || c.stale {
            quality = quality.max(1);
        }
    }
    if sub.metrics & metrics::ENERGY_PKG != 0 && snap.sysfs_gaps != sub.base_gaps {
        quality = quality.max(1);
    }
    let values = metrics::iter(sub.metrics)
        .zip(&sub.base)
        .map(|(metric, base)| MetricValue {
            metric,
            value: snap.sum_metric(sub.cpu_mask, metric).saturating_sub(*base),
        })
        .collect();
    let serve_virtual_ns = snap.time_ns + (served_in_shard + 1) * cfg.serve_ns;
    let inverted = submit_ns > serve_virtual_ns;
    let latency_ns = serve_virtual_ns.saturating_sub(submit_ns);
    (
        Response::Counters {
            sub_id: sub.id,
            tick: snap.tick,
            time_ns: snap.time_ns,
            latency_ns,
            quality,
            values,
        },
        latency_ns,
        inverted,
    )
}
