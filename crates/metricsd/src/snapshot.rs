//! The collector and snapshot cache.
//!
//! Sessions never touch the kernel. A single [`Collector`] owns per-CPU
//! counting events (instructions + cycles via each core PMU) and, once
//! per pump, does exactly one kernel pass: advance the simulation, read
//! every counter (bounded transient retry), and sample telemetry through
//! the same fault-aware sysfs the poller uses. The result is an immutable
//! [`TickSnapshot`]; every client read in that pump is served from it.
//!
//! This is what makes aggregate counts bit-identical across worker shard
//! counts: the kernel-op sequence depends only on the pump schedule, not
//! on how many sessions exist or how they are sharded.

use parking_lot::RwLock;
use simcpu::power::energy_delta_uj;
use simcpu::types::CpuId;
use simos::kernel::KernelHandle;
use simos::perf::{EventFd, PerfAttr, Target};
use simos::sysfs;
use simtrace::{span, EventKind, TraceEvent, TraceSink};
use std::sync::Arc;

use crate::wire::metrics;

/// Bounded retry for transient (EINTR/EBUSY) counter-read failures; a
/// counter still failing after this keeps its last value and the CPU is
/// marked lossy for the pump.
const READ_RETRIES: u32 = 4;

/// Per-CPU state in a snapshot.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuCounters {
    pub online: bool,
    /// Incremented every time this CPU goes offline; a subscription that
    /// saw a different epoch at baseline knows its window was disturbed.
    pub offline_epochs: u32,
    pub instructions: u64,
    pub cycles: u64,
    pub freq_khz: u64,
    /// A transient read failure exhausted its retries this pump; the
    /// counter values are carried over from the previous pump.
    pub stale: bool,
}

/// One pump's immutable view of the machine.
#[derive(Debug, Clone)]
pub struct TickSnapshot {
    /// Pump index (0 = the state at daemon boot, before any pump).
    pub tick: u64,
    /// Simulated time of the snapshot.
    pub time_ns: u64,
    pub cpus: Vec<CpuCounters>,
    pub temp_mc: i64,
    /// Unwrapped package energy accumulated since boot (µJ).
    pub energy_pkg_uj: u64,
    /// Cumulative count of pumps whose sysfs sampling was lost to a
    /// flaky window (energy accumulation bridged the gap).
    pub sysfs_gaps: u32,
    /// This pump's sysfs sampling failed; telemetry fields are carried.
    pub gap: bool,
}

impl TickSnapshot {
    /// Sum a per-CPU counter metric over a CPU bitmask. `ENERGY_PKG` is
    /// package-scoped and ignores the mask.
    pub fn sum_metric(&self, cpu_mask: u64, metric: u8) -> u64 {
        match metric {
            metrics::INSTRUCTIONS | metrics::CYCLES => self
                .cpus
                .iter()
                .enumerate()
                .filter(|(i, _)| *i < 64 && cpu_mask & (1 << *i) != 0)
                .map(|(_, c)| {
                    if metric == metrics::INSTRUCTIONS {
                        c.instructions
                    } else {
                        c.cycles
                    }
                })
                .sum(),
            metrics::ENERGY_PKG => self.energy_pkg_uj,
            _ => 0,
        }
    }

    /// Mean online-CPU frequency, kHz (0 when everything is offline).
    pub fn mean_freq_khz(&self) -> u64 {
        let online: Vec<u64> = self
            .cpus
            .iter()
            .filter(|c| c.online)
            .map(|c| c.freq_khz)
            .collect();
        if online.is_empty() {
            0
        } else {
            online.iter().sum::<u64>() / online.len() as u64
        }
    }
}

/// The daemon's single kernel-facing reader.
pub struct Collector {
    kernel: KernelHandle,
    /// Per-CPU (instructions, cycles) counting events; `None` where no
    /// core PMU covers the CPU.
    fds: Vec<Option<(EventFd, EventFd)>>,
    n_cpus: usize,
    has_rapl: bool,
    tick: u64,
    cpus: Vec<CpuCounters>,
    prev_online: Vec<bool>,
    offline_epochs: Vec<u32>,
    energy_acc_uj: u64,
    prev_raw_pkg_uj: Option<u64>,
    sysfs_gaps: u32,
    temp_mc: i64,
    /// Flight recorder for the collector's own spans: every pump's
    /// kernel pass records a `collect` span carrying the snapshot flow
    /// id derived from the tick, so RPC reads and stream pushes served
    /// from that snapshot stitch back to the pass that produced it.
    trace: TraceSink,
}

impl Collector {
    /// Open and enable one instructions + one cycles event per CPU (via
    /// whichever core PMU covers it), then take the boot snapshot.
    pub fn new(kernel: KernelHandle) -> Collector {
        let (fds, n_cpus, has_rapl) = {
            let mut k = kernel.lock();
            let pfm = pfmlib::Pfm::initialize(&k, pfmlib::PfmOptions::default())
                .expect("pfm init on booted kernel");
            let n = k.machine().n_cpus();
            let mut fds: Vec<Option<(EventFd, EventFd)>> = vec![None; n];
            for pmu in pfm.default_pmus() {
                let pmu_id = pmu.pmu_id;
                for cpu in pmu.cpus.iter() {
                    if fds[cpu.0].is_some() {
                        continue;
                    }
                    let open = |k: &mut simos::kernel::Kernel, ev| {
                        let mut tries = 0;
                        loop {
                            match k.perf_event_open(
                                PerfAttr::counting(pmu_id, ev),
                                Target::Cpu(cpu),
                                None,
                            ) {
                                Ok(fd) => return fd,
                                Err(e) if e.is_transient() && tries < READ_RETRIES => {
                                    tries += 1;
                                }
                                Err(e) => panic!("collector open on cpu{}: {e}", cpu.0),
                            }
                        }
                    };
                    let ins = open(&mut k, simcpu::events::ArchEvent::Instructions);
                    let cyc = open(&mut k, simcpu::events::ArchEvent::Cycles);
                    k.ioctl_enable(ins, false).expect("enable ins");
                    k.ioctl_enable(cyc, false).expect("enable cyc");
                    fds[cpu.0] = Some((ins, cyc));
                }
            }
            let has_rapl = k.machine().rapl().available();
            (fds, n, has_rapl)
        };
        let mut c = Collector {
            kernel,
            fds,
            n_cpus,
            has_rapl,
            tick: 0,
            cpus: vec![CpuCounters::default(); n_cpus],
            prev_online: vec![true; n_cpus],
            offline_epochs: vec![0; n_cpus],
            energy_acc_uj: 0,
            prev_raw_pkg_uj: None,
            sysfs_gaps: 0,
            temp_mc: 0,
            trace: TraceSink::disabled(),
        };
        // Boot snapshot (tick 0): no simulation ticks, just a read pass.
        c.sample(0);
        c
    }

    /// Advance the simulation `ticks` ticks and take the next snapshot.
    pub fn advance(&mut self, ticks: u32) -> Arc<TickSnapshot> {
        self.tick += 1;
        if !self.trace.enabled() {
            // Off path: one branch, no extra kernel lock.
            return self.sample(ticks);
        }
        let begin_ns = self.kernel.lock().time_ns();
        let flow = span::snapshot_flow_id(self.tick);
        self.trace
            .record(begin_ns, EventKind::SpanBegin, span::COLLECTOR, flow, 0);
        let snap = self.sample(ticks);
        self.trace
            .record(snap.time_ns, EventKind::SpanEnd, span::COLLECTOR, flow, 0);
        snap
    }

    pub fn kernel(&self) -> &KernelHandle {
        &self.kernel
    }

    /// Install the collector's flight recorder (disabled by default).
    pub fn set_trace(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// Recorded collector spans, oldest-first.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace.events()
    }

    fn sample(&mut self, ticks: u32) -> Arc<TickSnapshot> {
        let mut k = self.kernel.lock();
        // The batched pump: quiescent spans inside the window are
        // fast-forwarded as macro-ticks (bit-identical by construction;
        // see DESIGN.md §9), so an idle or steady-state daemon pays far
        // less than `ticks` single steps per pump.
        k.tick_batch(ticks as u64);
        let time_ns = k.time_ns();

        for i in 0..self.n_cpus {
            let online = k.cpu_online(CpuId(i));
            if self.prev_online[i] && !online {
                self.offline_epochs[i] += 1;
            }
            self.prev_online[i] = online;
            let c = &mut self.cpus[i];
            c.online = online;
            c.offline_epochs = self.offline_epochs[i];
            c.stale = false;
            if !online {
                // Counters freeze at their last value; freq reads as 0,
                // matching the poller's view of a hotplugged CPU.
                c.freq_khz = 0;
                continue;
            }
            if let Some((ins_fd, cyc_fd)) = self.fds[i] {
                let mut read = |fd| {
                    let mut tries = 0;
                    loop {
                        match k.read_event(fd) {
                            Ok(rv) => return Some(rv.value),
                            Err(e) if e.is_transient() && tries < READ_RETRIES => tries += 1,
                            Err(_) => return None,
                        }
                    }
                };
                match (read(ins_fd), read(cyc_fd)) {
                    (Some(ins), Some(cyc)) => {
                        c.instructions = ins;
                        c.cycles = cyc;
                    }
                    _ => c.stale = true,
                }
            }
        }

        // Telemetry through fault-aware sysfs: the thermal zone is the
        // canary (same policy as telemetry::Poller). On a flaky window
        // the previous values are carried and the pump is gap-flagged.
        let mut gap = false;
        match sysfs::read(&k, "/sys/class/thermal/thermal_zone0/temp")
            .ok()
            .and_then(|s| s.parse::<i64>().ok())
        {
            Some(t) => {
                self.temp_mc = t;
                for i in 0..self.n_cpus {
                    if !self.cpus[i].online {
                        continue;
                    }
                    self.cpus[i].freq_khz = sysfs::read(
                        &k,
                        &format!("/sys/devices/system/cpu/cpu{i}/cpufreq/scaling_cur_freq"),
                    )
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(self.cpus[i].freq_khz);
                }
                if self.has_rapl {
                    match sysfs::read(&k, "/sys/class/powercap/intel-rapl:0/energy_uj")
                        .ok()
                        .and_then(|s| s.parse::<u64>().ok())
                    {
                        Some(raw) => {
                            if let Some(prev) = self.prev_raw_pkg_uj {
                                self.energy_acc_uj += energy_delta_uj(prev, raw);
                            }
                            self.prev_raw_pkg_uj = Some(raw);
                        }
                        None => gap = true,
                    }
                }
            }
            None => gap = true,
        }
        if gap {
            self.sysfs_gaps += 1;
        }
        drop(k);

        Arc::new(TickSnapshot {
            tick: self.tick,
            time_ns,
            cpus: self.cpus.clone(),
            temp_mc: self.temp_mc,
            energy_pkg_uj: self.energy_acc_uj,
            sysfs_gaps: self.sysfs_gaps,
            gap,
        })
    }
}

/// The delta stream's pre-encoded frames for one published snapshot:
/// encoded **once** per pump and fanned out to every subscriber via
/// `FrameQueue::push_shared` — N subscribers share one encode.
pub struct StreamFrames {
    /// Tick the frames describe (the published snapshot's tick).
    pub tick: u64,
    /// Tick of the previously published snapshot — the only base a
    /// subscriber can apply [`StreamFrames::delta`] from.
    pub base_tick: u64,
    /// Full-state `Response::TickKeyframe` frame bytes.
    pub keyframe: Arc<Vec<u8>>,
    /// `Response::TickDelta` frame bytes vs the previous publish, or
    /// `None` when there is no usable base (boot).
    pub delta: Option<Arc<Vec<u8>>>,
}

fn snap_cpu_pairs(snap: &TickSnapshot) -> Vec<(u64, u64)> {
    snap.cpus
        .iter()
        .map(|c| (c.instructions, c.cycles))
        .collect()
}

fn build_stream_frames(prev: &TickSnapshot, snap: &TickSnapshot) -> StreamFrames {
    let pairs = snap_cpu_pairs(snap);
    let crc = crate::wire::stream_crc(snap.tick, snap.energy_pkg_uj, &pairs);
    let keyframe = crate::wire::Response::TickKeyframe {
        tick: snap.tick,
        time_ns: snap.time_ns,
        temp_mc: snap.temp_mc,
        energy_uj: snap.energy_pkg_uj,
        crc,
        cpus: snap
            .cpus
            .iter()
            .map(|c| crate::wire::CpuKeyframe {
                online: c.online,
                instructions: c.instructions,
                cycles: c.cycles,
            })
            .collect(),
    }
    .encode();
    let delta = (prev.tick < snap.tick && prev.cpus.len() == snap.cpus.len()).then(|| {
        Arc::new(
            crate::wire::Response::TickDelta {
                base_tick: prev.tick,
                tick: snap.tick,
                d_time_ns: snap.time_ns.saturating_sub(prev.time_ns),
                temp_mc: snap.temp_mc,
                d_energy_uj: snap.energy_pkg_uj.wrapping_sub(prev.energy_pkg_uj) as i64,
                crc,
                cpu_deltas: snap
                    .cpus
                    .iter()
                    .zip(&prev.cpus)
                    .map(|(c, p)| {
                        (
                            c.instructions.wrapping_sub(p.instructions) as i64,
                            c.cycles.wrapping_sub(p.cycles) as i64,
                        )
                    })
                    .collect(),
            }
            .encode(),
        )
    });
    StreamFrames {
        tick: snap.tick,
        base_tick: prev.tick,
        keyframe: Arc::new(keyframe),
        delta,
    }
}

/// Lock-free-ish cache of the latest snapshot plus pre-encoded static
/// responses (hardware info, preset list) and the delta stream's
/// shared frames. Hot queries are answered from here without ever
/// taking the kernel lock.
pub struct SnapshotCache {
    latest: RwLock<Arc<TickSnapshot>>,
    stream: RwLock<Arc<StreamFrames>>,
    /// Pre-encoded `Response::HardwareInfo` frame bytes.
    pub hardware_info_frame: Vec<u8>,
    /// Pre-encoded `Response::Presets` frame bytes.
    pub presets_frame: Vec<u8>,
}

impl SnapshotCache {
    pub fn new(
        first: Arc<TickSnapshot>,
        hardware_info_frame: Vec<u8>,
        presets_frame: Vec<u8>,
    ) -> SnapshotCache {
        let stream = build_stream_frames(&first, &first);
        SnapshotCache {
            latest: RwLock::new(first),
            stream: RwLock::new(Arc::new(stream)),
            hardware_info_frame,
            presets_frame,
        }
    }

    /// Publish a new snapshot — the pump's single point of invalidation.
    /// Also encodes this pump's keyframe + delta frames exactly once.
    pub fn publish(&self, snap: Arc<TickSnapshot>) {
        let frames = {
            let prev = self.latest.read();
            build_stream_frames(&prev, &snap)
        };
        *self.latest.write() = snap;
        *self.stream.write() = Arc::new(frames);
    }

    pub fn latest(&self) -> Arc<TickSnapshot> {
        self.latest.read().clone()
    }

    /// The delta stream's shared frames for the latest publish.
    pub fn stream_frames(&self) -> Arc<StreamFrames> {
        self.stream.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcpu::machine::MachineSpec;
    use simcpu::phase::Phase;
    use simcpu::types::CpuMask;
    use simos::kernel::{Kernel, KernelConfig};
    use simos::task::{Op, ScriptedProgram};

    fn boot_with_work_cfg(cfg: KernelConfig) -> KernelHandle {
        let kernel = Kernel::boot_handle(MachineSpec::raptor_lake_i7_13700(), cfg);
        kernel.lock().spawn(
            "w0",
            Box::new(ScriptedProgram::new([
                Op::Compute(Phase::scalar(5_000_000_000)),
                Op::Exit,
            ])),
            CpuMask::from_cpus([0]),
            0,
        );
        kernel.lock().spawn(
            "w1",
            Box::new(ScriptedProgram::new([
                Op::Compute(Phase::scalar(3_000_000_000)),
                Op::Exit,
            ])),
            CpuMask::from_cpus([16]),
            0,
        );
        kernel
    }

    fn boot_with_work() -> KernelHandle {
        boot_with_work_cfg(KernelConfig::default())
    }

    /// Macro-tick coalescing inside the pump must be invisible to clients:
    /// every snapshot field — counters, telemetry, quality flags — matches
    /// a single-tick collector pump-for-pump, faults included.
    #[test]
    fn collector_macro_ticks_match_single_ticks() {
        use simos::faults::{FaultKind, FaultPlan};
        use simos::kernel::MacroTicks;
        let run = |macro_ticks: MacroTicks| {
            let kernel = boot_with_work_cfg(KernelConfig {
                macro_ticks,
                ..Default::default()
            });
            kernel.lock().install_faults(
                &FaultPlan::new(11)
                    .at(
                        60_000_000,
                        FaultKind::CpuOffline {
                            cpu: CpuId(17),
                            down_ns: Some(100_000_000),
                        },
                    )
                    .at(150_000_000, FaultKind::SysfsFlaky { dur_ns: 45_000_000 }),
            );
            let mut c = Collector::new(kernel);
            (0..40).map(|_| c.advance(10)).collect::<Vec<_>>()
        };
        let forced = run(MacroTicks::Force);
        let off = run(MacroTicks::Off);
        for (f, o) in forced.iter().zip(&off) {
            assert_eq!(f.time_ns, o.time_ns);
            assert_eq!(f.temp_mc, o.temp_mc, "pump {}", f.tick);
            assert_eq!(f.energy_pkg_uj, o.energy_pkg_uj, "pump {}", f.tick);
            assert_eq!(f.sysfs_gaps, o.sysfs_gaps, "pump {}", f.tick);
            assert_eq!(f.gap, o.gap, "pump {}", f.tick);
            for (i, (fc, oc)) in f.cpus.iter().zip(&o.cpus).enumerate() {
                assert_eq!(fc.online, oc.online, "pump {} cpu{i}", f.tick);
                assert_eq!(
                    fc.offline_epochs, oc.offline_epochs,
                    "pump {} cpu{i}",
                    f.tick
                );
                assert_eq!(fc.instructions, oc.instructions, "pump {} cpu{i}", f.tick);
                assert_eq!(fc.cycles, oc.cycles, "pump {} cpu{i}", f.tick);
                assert_eq!(fc.freq_khz, oc.freq_khz, "pump {} cpu{i}", f.tick);
                assert_eq!(fc.stale, oc.stale, "pump {} cpu{i}", f.tick);
            }
        }
    }

    #[test]
    fn collector_counts_advance_monotonically() {
        let mut c = Collector::new(boot_with_work());
        let s0 = c.advance(50);
        let s1 = c.advance(50);
        assert_eq!(s1.tick, 2);
        assert!(s1.time_ns > s0.time_ns);
        let m = u64::MAX;
        assert!(
            s1.sum_metric(m, metrics::INSTRUCTIONS) > s0.sum_metric(m, metrics::INSTRUCTIONS),
            "instructions advance"
        );
        assert!(s1.sum_metric(m, metrics::CYCLES) >= s1.sum_metric(m, metrics::INSTRUCTIONS) / 8);
        // Masked sum: the P-core worker lands on cpu 0 only.
        assert!(s1.sum_metric(1 << 0, metrics::INSTRUCTIONS) > 0);
        assert!(s1.sum_metric(1 << 3, metrics::INSTRUCTIONS) == 0);
        assert!(s1.energy_pkg_uj > 0, "package energy accumulates");
        assert!(s1.temp_mc > 0);
        assert!(s1.mean_freq_khz() > 0);
    }

    #[test]
    fn collector_marks_offline_cpu_and_epochs() {
        use simos::faults::{FaultKind, FaultPlan};
        let kernel = boot_with_work();
        kernel.lock().install_faults(&FaultPlan::new(9).at(
            50_000_000,
            FaultKind::CpuOffline {
                cpu: CpuId(17),
                down_ns: Some(200_000_000),
            },
        ));
        let mut c = Collector::new(kernel);
        let mut saw_offline = false;
        let mut last = c.advance(10);
        for _ in 0..60 {
            let s = c.advance(10);
            if !s.cpus[17].online {
                saw_offline = true;
                assert_eq!(s.cpus[17].freq_khz, 0);
            }
            last = s;
        }
        assert!(saw_offline, "hotplug window observed");
        assert!(last.cpus[17].online, "cpu came back");
        assert_eq!(last.cpus[17].offline_epochs, 1, "one offline epoch");
        assert_eq!(last.cpus[16].offline_epochs, 0);
    }

    #[test]
    fn collector_bridges_flaky_sysfs_windows() {
        use simos::faults::{FaultKind, FaultPlan};
        let kernel = boot_with_work();
        kernel.lock().install_faults(
            &FaultPlan::new(5).at(20_000_000, FaultKind::SysfsFlaky { dur_ns: 45_000_000 }),
        );
        let mut c = Collector::new(kernel);
        let mut gaps = 0;
        let mut last_temp = 0;
        for _ in 0..40 {
            let s = c.advance(10);
            if s.gap {
                gaps += 1;
                assert_eq!(s.temp_mc, last_temp, "carried temperature");
            }
            last_temp = s.temp_mc;
        }
        assert!(gaps >= 2, "flaky window produced gap-flagged pumps: {gaps}");
        let s = c.advance(10);
        assert!(!s.gap);
        assert_eq!(s.sysfs_gaps, gaps, "cumulative gap count");
    }

    #[test]
    fn snapshot_cache_publishes_latest() {
        let mut c = Collector::new(boot_with_work());
        let cache = SnapshotCache::new(c.advance(5), vec![1, 2], vec![3]);
        assert_eq!(cache.latest().tick, 1);
        cache.publish(c.advance(5));
        assert_eq!(cache.latest().tick, 2);
        assert_eq!(cache.hardware_info_frame, vec![1, 2]);
    }
}
