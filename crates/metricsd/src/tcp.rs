//! TCP-loopback transport: the same length-prefixed frames as the
//! in-process pipe, over a socket.
//!
//! The server side is a single-threaded readiness reactor: one IO
//! thread owns the non-blocking listening socket and every accepted
//! connection, and each pass accepts new sockets, pumps readable bytes
//! through a per-connection incremental [`FrameDecoder`] (frames are
//! reassembled across read boundaries, so a frame split at any byte —
//! or ten frames arriving in one read — decodes identically), and
//! flushes session outboxes with coalesced vectored writes. Two threads
//! per connection become zero: at 100k sessions the old design needed
//! 200k OS threads; the reactor needs one.
//!
//! Backpressure composes end-to-end: a full session inbox stashes the
//! decoded frame and stops reading that socket (TCP flow control then
//! slows the peer); a slow socket leaves frames in the session outbox,
//! which is exactly the signal the daemon's stall-grace/eviction ladder
//! watches. When the daemon evicts or closes the session, the outbox
//! drains to the socket and the write side shuts down.

use std::io::{IoSlice, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use simtrace::{span, EventKind, TraceEvent, TraceSink, Track};

use crate::client::{ClientError, Transport};
use crate::queue::FrameQueue;
use crate::server::Connector;
use crate::snapshot::SnapshotCache;
use crate::wire::{FrameDecoder, TraceCtx, MAX_FRAME};

/// Sleep when a full reactor pass makes no progress (no accepts, no
/// bytes moved). Short enough to stay responsive, long enough to idle.
const IDLE_NAP: Duration = Duration::from_micros(500);

/// Frames staged off a session outbox per refill. Small on purpose:
/// draining eagerly would hide a slow socket from the daemon's
/// outbox-full eviction ladder.
const WRITE_BATCH: usize = 16;

/// Max `IoSlice`s per vectored write.
const IOV_MAX: usize = 16;

/// Span recording for the IO thread: sampled traced frames get a
/// `rpc:reactor` hop on the "tcpio" track, stamped with the sim-time of
/// the latest *published* snapshot (the reactor has no kernel handle,
/// and wall clocks are banned).
struct TraceBridge {
    sink: Arc<Mutex<TraceSink>>,
    cache: Arc<SnapshotCache>,
}

/// A running TCP listener bridging sockets onto daemon sessions.
pub struct Listener {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    io_thread: Option<std::thread::JoinHandle<()>>,
    trace: Option<Arc<Mutex<TraceSink>>>,
}

impl Listener {
    /// Bind (e.g. `"127.0.0.1:0"` for an ephemeral port) and start the
    /// reactor. Each accepted socket becomes one daemon session.
    pub fn spawn(connector: Connector, bind: &str) -> std::io::Result<Listener> {
        Listener::spawn_inner(connector, bind, None)
    }

    /// As [`Listener::spawn`], recording a reactor-hop span for every
    /// sampled traced frame that crosses the socket boundary.
    pub fn spawn_traced(
        connector: Connector,
        bind: &str,
        sink: TraceSink,
        cache: Arc<SnapshotCache>,
    ) -> std::io::Result<Listener> {
        let sink = Arc::new(Mutex::new(sink));
        Listener::spawn_inner(connector, bind, Some(TraceBridge { sink, cache }))
    }

    fn spawn_inner(
        connector: Connector,
        bind: &str,
        trace: Option<TraceBridge>,
    ) -> std::io::Result<Listener> {
        let listener = TcpListener::bind(bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let sink = trace.as_ref().map(|t| t.sink.clone());
        let io_thread = std::thread::Builder::new()
            .name("metricsd-tcpio".into())
            .spawn(move || reactor_loop(&listener, &connector, &stop2, trace.as_ref()))?;
        Ok(Listener {
            addr,
            stop,
            io_thread: Some(io_thread),
            trace: sink,
        })
    }

    /// Spans the IO thread recorded so far (empty unless spawned with
    /// [`Listener::spawn_traced`]).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace
            .as_ref()
            .map(|s| s.lock().events())
            .unwrap_or_default()
    }

    /// The reactor's spans as an exportable track.
    pub fn trace_track(&self) -> Track {
        Track::new("tcpio", self.trace_events())
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the reactor. In-flight sessions are torn down; the daemon
    /// reaps them (parking resumable ones) on its next pump.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.io_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One accepted socket bridged onto a daemon session.
struct Conn {
    stream: TcpStream,
    /// Socket → daemon direction.
    inbox: Arc<FrameQueue>,
    /// Daemon → socket direction.
    outbox: Arc<FrameQueue>,
    dec: FrameDecoder,
    /// A decoded frame the inbox had no room for; while stashed, the
    /// socket is not read (TCP flow control backpressures the peer).
    stashed: Option<Vec<u8>>,
    /// Frames staged for writing, oldest first; `out_off` bytes of the
    /// front frame are already on the wire (partial-write carry).
    out: std::collections::VecDeque<Vec<u8>>,
    out_off: usize,
    read_dead: bool,
    write_shut: bool,
}

fn reactor_loop(
    listener: &TcpListener,
    connector: &Connector,
    stop: &AtomicBool,
    trace: Option<&TraceBridge>,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut rdbuf = vec![0u8; 64 * 1024];
    while !stop.load(Ordering::Relaxed) {
        let mut progress = false;

        // Accept everything pending.
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let pipe = connector.connect();
                    conns.push(Conn {
                        stream,
                        inbox: pipe.tx,
                        outbox: pipe.rx,
                        dec: FrameDecoder::new(),
                        stashed: None,
                        out: std::collections::VecDeque::new(),
                        out_off: 0,
                        read_dead: false,
                        write_shut: false,
                    });
                    progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => return,
            }
        }

        for c in &mut conns {
            progress |= pump_read(c, &mut rdbuf, trace);
            progress |= pump_write(c);
        }
        conns.retain(|c| !(c.write_shut && (c.read_dead || c.inbox.is_closed())));

        if !progress {
            std::thread::sleep(IDLE_NAP);
        }
    }
    // Reactor shutdown: close both directions so the daemon reaps every
    // session on its next pump.
    for c in &conns {
        c.inbox.close();
        c.outbox.close();
        let _ = c.stream.shutdown(Shutdown::Both);
    }
}

/// Record the reactor hop for a sampled traced frame crossing the
/// socket boundary. One cheap 18-byte peek per inbound frame; frames
/// without the `Traced` envelope cost a single tag compare.
fn note_traced(trace: Option<&TraceBridge>, frame: &[u8]) {
    let Some(t) = trace else { return };
    let Some(ctx) = TraceCtx::peek(frame) else {
        return;
    };
    if !ctx.sampled {
        return;
    }
    let now = t.cache.latest().time_ns;
    let mut sink = t.sink.lock();
    sink.record(now, EventKind::SpanBegin, span::REACTOR, ctx.trace_id, 0);
    sink.record(now, EventKind::SpanEnd, span::REACTOR, ctx.trace_id, 0);
}

/// Drain readable socket bytes through the decoder into the session
/// inbox. Returns true if any byte or frame moved.
fn pump_read(c: &mut Conn, rdbuf: &mut [u8], trace: Option<&TraceBridge>) -> bool {
    if c.read_dead {
        return false;
    }
    if c.inbox.is_closed() {
        // Daemon closed/evicted the session: stop reading; the write
        // side finishes draining the outbox.
        c.read_dead = true;
        let _ = c.stream.shutdown(Shutdown::Read);
        return false;
    }
    let mut moved = false;

    // Re-deliver the stashed frame first; the socket stays unread until
    // the inbox accepts it. The capacity check is stable: this thread
    // is the inbox's only producer, and the daemon popping can only
    // make more room.
    if c.stashed.is_some() {
        if c.inbox.len() >= c.inbox.capacity() {
            return false;
        }
        let frame = c.stashed.take().expect("checked above");
        note_traced(trace, &frame);
        match c.inbox.push(frame) {
            Ok(()) => moved = true,
            Err(_) => {
                c.read_dead = true;
                return true;
            }
        }
    }

    loop {
        // Flush decoded frames before reading more.
        loop {
            match c.dec.next_frame() {
                Ok(Some(frame)) => {
                    if c.inbox.len() >= c.inbox.capacity() {
                        // Backpressure: park the frame and stop reading
                        // this socket until the daemon drains the inbox.
                        c.stashed = Some(frame);
                        return moved;
                    }
                    note_traced(trace, &frame);
                    match c.inbox.push(frame) {
                        Ok(()) => moved = true,
                        Err(_) => {
                            c.read_dead = true;
                            return true;
                        }
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // Oversized prefix: the byte stream is desynced and
                    // unrecoverable. Kill the connection.
                    c.inbox.close();
                    c.read_dead = true;
                    let _ = c.stream.shutdown(Shutdown::Both);
                    return true;
                }
            }
        }
        match c.stream.read(rdbuf) {
            Ok(0) => {
                c.inbox.close();
                c.read_dead = true;
                return true;
            }
            Ok(n) => {
                c.dec.feed(&rdbuf[..n]);
                moved = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                c.inbox.close();
                c.read_dead = true;
                return true;
            }
        }
    }
    moved
}

/// Flush staged and freshly popped outbox frames to the socket with
/// coalesced vectored writes. Returns true if any byte moved.
fn pump_write(c: &mut Conn) -> bool {
    if c.write_shut {
        return false;
    }
    let mut moved = false;
    let mut scratch: Vec<Vec<u8>> = Vec::new();
    loop {
        // Refill only when empty: staging at most WRITE_BATCH frames
        // keeps outbox occupancy visible to the daemon's eviction
        // ladder when the socket is the bottleneck.
        if c.out.is_empty() {
            scratch.clear();
            if c.outbox.pop_many(WRITE_BATCH, &mut scratch) == 0 {
                break;
            }
            c.out.extend(scratch.drain(..));
        }
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(IOV_MAX.min(c.out.len()));
        for (i, frame) in c.out.iter().take(IOV_MAX).enumerate() {
            let start = if i == 0 { c.out_off } else { 0 };
            slices.push(IoSlice::new(&frame[start..]));
        }
        match c.stream.write_vectored(&slices) {
            Ok(0) => {
                c.outbox.close();
                c.write_shut = true;
                return true;
            }
            Ok(mut n) => {
                moved = true;
                while n > 0 {
                    let front_left = c.out.front().map_or(0, |f| f.len() - c.out_off);
                    if n >= front_left {
                        n -= front_left;
                        c.out.pop_front();
                        c.out_off = 0;
                    } else {
                        c.out_off += n;
                        n = 0;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return moved,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                c.outbox.close();
                c.write_shut = true;
                return true;
            }
        }
    }
    // Nothing staged and nothing poppable: if the daemon sealed the
    // outbox, the stream is fully flushed — finish the write side.
    if c.out.is_empty() && c.outbox.is_closed() && c.outbox.is_empty() {
        let _ = c.stream.flush();
        let _ = c.stream.shutdown(Shutdown::Write);
        c.write_shut = true;
        moved = true;
    }
    moved
}

/// Read one whole frame (prefix included). `Ok(None)` means the read
/// timed out before a frame started; mid-frame timeouts keep waiting.
fn read_frame(stream: &mut TcpStream) -> std::io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    match read_exact_persistent(stream, &mut header, true)? {
        ReadOutcome::Done => {}
        ReadOutcome::TimedOutAtStart => return Ok(None),
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME",
        ));
    }
    let mut frame = vec![0u8; 4 + len];
    frame[..4].copy_from_slice(&header);
    match read_exact_persistent(stream, &mut frame[4..], false)? {
        ReadOutcome::Done => Ok(Some(frame)),
        ReadOutcome::TimedOutAtStart => unreachable!("persistent body read"),
    }
}

enum ReadOutcome {
    Done,
    TimedOutAtStart,
}

/// `read_exact` across read-timeout boundaries. With `allow_idle`, a
/// timeout before the first byte reports `TimedOutAtStart`; once bytes
/// have arrived (or without `allow_idle`) timeouts keep retrying so a
/// frame is never torn.
fn read_exact_persistent(
    stream: &mut TcpStream,
    buf: &mut [u8],
    allow_idle: bool,
) -> std::io::Result<ReadOutcome> {
    let mut got = 0;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed",
                ))
            }
            Ok(n) => got += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if got == 0 && allow_idle {
                    return Ok(ReadOutcome::TimedOutAtStart);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Done)
}

/// Client-side transport over a connected socket.
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    pub fn connect(addr: SocketAddr) -> std::io::Result<TcpTransport> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_millis(20)))?;
        Ok(TcpTransport { stream })
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, frame: Vec<u8>) -> Result<(), ClientError> {
        self.stream
            .write_all(&frame)
            .map_err(|_| ClientError::Send("socket write failed"))
    }

    fn recv(&mut self, timeout: Duration) -> Option<Vec<u8>> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match read_frame(&mut self.stream) {
                Ok(Some(frame)) => return Some(frame),
                Ok(None) => {
                    if std::time::Instant::now() >= deadline {
                        return None;
                    }
                }
                Err(_) => return None,
            }
        }
    }

    fn try_recv(&mut self) -> Option<Vec<u8>> {
        read_frame(&mut self.stream).unwrap_or_default()
    }

    fn shutdown(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}
