//! TCP-loopback transport: the same length-prefixed frames as the
//! in-process pipe, over a socket.
//!
//! The listener accepts connections and bridges each one onto a daemon
//! session with two glue threads: a reader (socket → session inbox,
//! retrying on backpressure so a full inbox slows the socket rather
//! than dropping frames) and a writer (session outbox → socket). When
//! the daemon evicts or closes the session, the outbox drains and the
//! socket shuts down.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::client::{ClientError, Transport};
use crate::queue::PushError;
use crate::server::Connector;
use crate::wire::MAX_FRAME;

/// Poll interval for the non-blocking accept loop and glue retries.
const POLL: Duration = Duration::from_millis(2);

/// A running TCP listener bridging sockets onto daemon sessions.
pub struct Listener {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Listener {
    /// Bind (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// accepting. Each accepted socket becomes one daemon session.
    pub fn spawn(connector: Connector, bind: &str) -> std::io::Result<Listener> {
        let listener = TcpListener::bind(bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let accept_thread = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _peer)) => glue(stream, &connector),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL);
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(Listener {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting new connections (existing sessions keep running).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Bridge one accepted socket onto a fresh daemon session.
fn glue(stream: TcpStream, connector: &Connector) {
    let _ = stream.set_nodelay(true);
    let pipe = connector.connect();
    let inbox = pipe.tx;
    let outbox = pipe.rx;

    let mut rd = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let _ = rd.set_read_timeout(Some(Duration::from_millis(50)));
    std::thread::spawn(move || {
        loop {
            match read_frame(&mut rd) {
                Ok(Some(frame)) => {
                    // Backpressure: a full inbox slows the socket down
                    // (frames are small; the retry clone is cheap).
                    loop {
                        match inbox.push(frame.clone()) {
                            Ok(()) => break,
                            Err(PushError::Full) => std::thread::sleep(POLL),
                            // TooBig cannot happen (read_frame already
                            // enforces MAX_FRAME); treat it like a dead
                            // peer if it ever does.
                            Err(PushError::Closed) | Err(PushError::TooBig) => {
                                let _ = rd.shutdown(Shutdown::Both);
                                return;
                            }
                        }
                    }
                }
                Ok(None) => continue, // read timeout; poll for closure
                Err(_) => {
                    // Peer went away: the daemon reaps the session next
                    // pump via the closed inbox.
                    inbox.close();
                    return;
                }
            }
            if inbox.is_closed() {
                let _ = rd.shutdown(Shutdown::Both);
                return;
            }
        }
    });

    let mut wr = stream;
    std::thread::spawn(move || loop {
        match outbox.pop_blocking(Duration::from_millis(100)) {
            Some(frame) => {
                if wr.write_all(&frame).is_err() {
                    outbox.close();
                    return;
                }
            }
            None => {
                if outbox.is_closed() && outbox.is_empty() {
                    let _ = wr.flush();
                    let _ = wr.shutdown(Shutdown::Write);
                    return;
                }
            }
        }
    });
}

/// Read one whole frame (prefix included). `Ok(None)` means the read
/// timed out before a frame started; mid-frame timeouts keep waiting.
fn read_frame(stream: &mut TcpStream) -> std::io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    match read_exact_persistent(stream, &mut header, true)? {
        ReadOutcome::Done => {}
        ReadOutcome::TimedOutAtStart => return Ok(None),
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME",
        ));
    }
    let mut frame = vec![0u8; 4 + len];
    frame[..4].copy_from_slice(&header);
    match read_exact_persistent(stream, &mut frame[4..], false)? {
        ReadOutcome::Done => Ok(Some(frame)),
        ReadOutcome::TimedOutAtStart => unreachable!("persistent body read"),
    }
}

enum ReadOutcome {
    Done,
    TimedOutAtStart,
}

/// `read_exact` across read-timeout boundaries. With `allow_idle`, a
/// timeout before the first byte reports `TimedOutAtStart`; once bytes
/// have arrived (or without `allow_idle`) timeouts keep retrying so a
/// frame is never torn.
fn read_exact_persistent(
    stream: &mut TcpStream,
    buf: &mut [u8],
    allow_idle: bool,
) -> std::io::Result<ReadOutcome> {
    let mut got = 0;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed",
                ))
            }
            Ok(n) => got += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if got == 0 && allow_idle {
                    return Ok(ReadOutcome::TimedOutAtStart);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Done)
}

/// Client-side transport over a connected socket.
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    pub fn connect(addr: SocketAddr) -> std::io::Result<TcpTransport> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_millis(20)))?;
        Ok(TcpTransport { stream })
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, frame: Vec<u8>) -> Result<(), ClientError> {
        self.stream
            .write_all(&frame)
            .map_err(|_| ClientError::Send("socket write failed"))
    }

    fn recv(&mut self, timeout: Duration) -> Option<Vec<u8>> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match read_frame(&mut self.stream) {
                Ok(Some(frame)) => return Some(frame),
                Ok(None) => {
                    if std::time::Instant::now() >= deadline {
                        return None;
                    }
                }
                Err(_) => return None,
            }
        }
    }

    fn try_recv(&mut self) -> Option<Vec<u8>> {
        read_frame(&mut self.stream).unwrap_or_default()
    }

    fn shutdown(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}
