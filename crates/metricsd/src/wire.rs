//! The length-prefixed binary wire protocol.
//!
//! Every frame is `[u32 payload_len LE][u8 tag][payload]`. Integers are
//! little-endian; strings are `u16 len + UTF-8 bytes`. The same framing
//! runs over both transports (in-process queues carry one decoded frame
//! per `Vec<u8>`; TCP carries the byte stream and re-frames on read).
//!
//! Requests (client → daemon) use tags `0x01..=0x7f`, responses
//! `0x80..=0xff`. Unknown request tags get [`Response::Err`], not a
//! dropped connection — version skew degrades, it does not wedge.

/// Protocol version spoken by this build.
pub const PROTO_VERSION: u16 = 1;

/// Hard cap on one frame's payload; a frame above this is a framing
/// error (protects the TCP reader from a corrupt length prefix).
pub const MAX_FRAME: usize = 1 << 20;

/// Counter metrics a subscription can select, as a bitmask.
pub mod metrics {
    pub const INSTRUCTIONS: u8 = 1 << 0;
    pub const CYCLES: u8 = 1 << 1;
    /// Package energy (µJ, unwrapped since subscribe).
    pub const ENERGY_PKG: u8 = 1 << 2;
    pub const ALL: u8 = INSTRUCTIONS | CYCLES | ENERGY_PKG;

    /// Iterate set bits in ascending metric order (wire order).
    pub fn iter(mask: u8) -> impl Iterator<Item = u8> {
        [INSTRUCTIONS, CYCLES, ENERGY_PKG]
            .into_iter()
            .filter(move |m| mask & m != 0)
    }
}

/// History series a [`Request::QueryRange`] can name. Counter series
/// aggregate with `SUM`/`RATE`; `LATENCY_NS` is a histogram series and
/// aggregates with the percentile aggregations.
pub mod series {
    /// Reads served per pump (counter).
    pub const READS: u8 = 0;
    /// Reads answered with degraded quality per pump (counter).
    pub const STALE_READS: u8 = 1;
    /// Sessions evicted per pump (counter).
    pub const EVICTIONS: u8 = 2;
    /// Requests shed under overload per pump (counter).
    pub const SHEDS: u8 = 3;
    /// Read-latency histogram per pump (log₂ buckets, ns).
    pub const LATENCY_NS: u8 = 4;
    /// Instructions retired per pump on cluster 0 / cluster 1 (counter;
    /// cluster 1 reads as zero on homogeneous machines).
    pub const CLUSTER0_INSTRUCTIONS: u8 = 5;
    pub const CLUSTER1_INSTRUCTIONS: u8 = 6;
    /// Cycles per pump on cluster 0 / cluster 1 (counter).
    pub const CLUSTER0_CYCLES: u8 = 7;
    pub const CLUSTER1_CYCLES: u8 = 8;
    /// One past the last valid series id.
    pub const COUNT: u8 = 9;
}

/// Aggregations a [`Request::QueryRange`] can ask for.
pub mod agg {
    /// Per-frame sums, one point per surviving rollup frame.
    pub const SUM: u8 = 0;
    /// Events per simulated second over the whole range (single point).
    pub const RATE: u8 = 1;
    /// Percentiles of the merged histogram over the whole range
    /// (single point). Only valid on histogram series.
    pub const P50: u8 = 2;
    pub const P90: u8 = 3;
    pub const P99: u8 = 4;
    /// One past the last valid aggregation id.
    pub const COUNT: u8 = 5;
}

/// Hard cap on points in one [`Response::RangeReply`] — the query path
/// downsamples to a coarser tier rather than exceed it, so a reply
/// frame stays bounded no matter the range.
pub const MAX_RANGE_POINTS: usize = 512;

/// Hard cap on SLO rows in one [`Response::Health`] frame.
pub const MAX_SLOS: usize = 64;

/// Causal trace context carried by the [`Request::Traced`] envelope:
/// 13 bytes at a fixed offset right after the tag, so transport hops
/// (the tcpio reactor) can record their span with [`TraceCtx::peek`] —
/// no full decode, no allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Flow id linking every hop's spans (see `simtrace::span` — even,
    /// derived from session token + client sequence, never wall clock).
    pub trace_id: u64,
    /// The client-side span ordinal that sent this request (0 = root).
    pub parent_span: u32,
    /// Sampling bit: hops record spans only when set, so an enabled
    /// recorder with sampling off still costs one branch per frame.
    pub sampled: bool,
}

impl TraceCtx {
    /// Cheap transport-level peek: if `frame` is a complete Traced
    /// envelope, return its context without decoding the inner frame.
    pub fn peek(frame: &[u8]) -> Option<TraceCtx> {
        if frame.len() < 18 || frame[4] != 0x10 {
            return None;
        }
        Some(TraceCtx {
            trace_id: u64::from_le_bytes(frame[5..13].try_into().unwrap()),
            parent_span: u32::from_le_bytes(frame[13..17].try_into().unwrap()),
            sampled: frame[17] != 0,
        })
    }
}

/// One SLO's evaluation state in a [`Response::Health`] frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloHealth {
    /// Target kind (0 = p99 latency ns, 1 = evictions per window,
    /// 2 = stale-read fraction in ppm) — mirrors `history::SloKind`.
    pub kind: u8,
    /// The declared target value in the kind's unit.
    pub target: u64,
    /// Trailing evaluation window, in pumps.
    pub window_pumps: u32,
    /// Windows evaluated in breach so far.
    pub breaches: u64,
    /// Pump index of the most recent breach (0 = never).
    pub last_breach_pump: u64,
    /// Worst observed value across breached windows.
    pub worst: u64,
    /// trace_id of the slowest sampled request inside the most recently
    /// breached window (0 = none was sampled) — resolves to recorded
    /// `SpanBegin`/`SpanEnd` events on the client and shard tracks.
    pub exemplar_trace_id: u64,
}

/// FNV-1a over a byte slice — the frame checksum used by the
/// [`Request::WithSeq`] / [`Response::SeqReply`] envelopes so bit-flip
/// corruption in transit decodes to a typed error instead of silently
/// becoming a different (valid) frame.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Checksum over the counter state a delta stream describes: the client
/// mirror recomputes this after applying every [`Response::TickDelta`]
/// or [`Response::TickKeyframe`], so a desynchronised mirror (lost or
/// corrupted delta) is detected immediately instead of drifting.
pub fn stream_crc(tick: u64, energy_uj: u64, cpus: &[(u64, u64)]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    mix(tick);
    mix(energy_uj);
    for &(ins, cyc) in cpus {
        mix(ins);
        mix(cyc);
    }
    h
}

/// Client → daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Handshake; must be the session's first frame.
    Hello { proto: u16 },
    /// Hardware summary (served from the snapshot cache).
    GetHardwareInfo,
    /// Available preset list (served from the snapshot cache).
    ListPresets,
    /// Start a counter subscription over a CPU set.
    Subscribe { cpu_mask: u64, metrics: u8 },
    /// Read a subscription's counters (delta since subscribe).
    /// `submit_ns` is the client's last-seen snapshot time, echoed into
    /// the reply's latency figure.
    Read { sub_id: u32, submit_ns: u64 },
    /// Re-baseline a subscription to the current snapshot.
    ResetSub { sub_id: u32 },
    /// Latest cached telemetry sample (freq/temp/energy).
    LatestSample,
    /// Push a Counters frame for every subscription every `every_pumps`
    /// pumps (0 cancels).
    Stream { every_pumps: u32 },
    /// Daemon-wide serving statistics.
    Stats,
    /// Orderly goodbye.
    Close,
    /// The daemon's self-metrics registry: named counters plus
    /// histogram summaries (count/min/max/p50/p90/p99).
    GetSelfMetrics,
    /// Reconnect handshake: continue a lost session from its cursor.
    /// Valid as a session's first frame (instead of Hello); answered
    /// with [`Response::Resumed`] carrying the explicit gap, or a
    /// `NO_SUCH_TOKEN` error once the token's TTL has lapsed.
    Resume { session_token: u64, last_tick: u64 },
    /// Idempotent-reissue envelope: `inner` is a complete encoded
    /// request frame, `crc` its [`fnv64`]. The daemon deduplicates on
    /// `seq` — reissuing the same sequence id returns the cached reply
    /// instead of re-applying the request — and verifies `crc` so
    /// corruption surfaces as `BAD_CHECKSUM`, never as a different
    /// valid request.
    WithSeq { seq: u32, crc: u64, inner: Vec<u8> },
    /// Subscribe to the delta-encoded snapshot stream: every
    /// `every_pumps` pumps (0 cancels) the daemon pushes a
    /// [`Response::TickDelta`] against the session's last-pushed base
    /// tick, falling back to a [`Response::TickKeyframe`] on any gap
    /// (first push, missed push under backpressure, session resume, or
    /// a client nack via [`Request::AckTick`]).
    StreamDeltas { every_pumps: u32 },
    /// Delta-stream cursor ack/nack: tells the daemon which tick the
    /// client mirror actually holds. A desynchronised mirror sends its
    /// own (older) tick, which can no longer match the next delta's
    /// base — forcing a keyframe.
    AckTick { tick: u64 },
    /// Causal-trace envelope: `inner` is a complete encoded request
    /// frame; the context travels at a fixed offset so every hop can
    /// record linked spans ([`TraceCtx::peek`]). Semantically
    /// transparent — the daemon serves the inner request identically
    /// with or without the envelope, so traced goldens stay
    /// bit-identical.
    Traced { ctx: TraceCtx, inner: Vec<u8> },
    /// Ranged query over the daemon's rollup history: aggregate
    /// `series` with `agg` over snapshot ticks `[start_tick, end_tick]`
    /// (inclusive), returning at most `max_points` points (clamped to
    /// [`MAX_RANGE_POINTS`]; the daemon picks the finest downsampling
    /// tier that fits).
    QueryRange {
        series: u8,
        agg: u8,
        start_tick: u64,
        end_tick: u64,
        max_points: u32,
    },
    /// The SLO watchdog's current breach state.
    GetHealth,
}

impl Request {
    /// Wrap a request in a sequence envelope for idempotent reissue.
    pub fn with_seq(seq: u32, inner: &Request) -> Request {
        let inner = inner.encode();
        Request::WithSeq {
            seq,
            crc: fnv64(&inner),
            inner,
        }
    }

    /// Wrap a request in a causal-trace envelope.
    pub fn traced(ctx: TraceCtx, inner: &Request) -> Request {
        Request::Traced {
            ctx,
            inner: inner.encode(),
        }
    }
}

/// Per-metric value in a counters reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricValue {
    pub metric: u8,
    pub value: u64,
}

/// One CPU's absolute counter state in a [`Response::TickKeyframe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuKeyframe {
    pub online: bool,
    pub instructions: u64,
    pub cycles: u64,
}

/// One histogram's summary in a [`Response::SelfMetrics`] reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSummary {
    pub name: String,
    pub count: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
}

/// Daemon → client.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Welcome {
        session_id: u64,
        proto: u16,
        n_cpus: u32,
        tick_ns: u64,
        /// Opaque credential for [`Request::Resume`] after a transport
        /// loss; the daemon parks a dead session's state under this
        /// token for `resume_ttl_pumps`.
        session_token: u64,
    },
    /// `papi_avail --json`-shaped document.
    HardwareInfo {
        json: String,
    },
    Presets {
        names: Vec<String>,
    },
    Subscribed {
        sub_id: u32,
        base_tick: u64,
    },
    Counters {
        sub_id: u32,
        tick: u64,
        time_ns: u64,
        latency_ns: u64,
        /// papi::ReadQuality as 0=Ok, 1=Scaled, 2=Lost.
        quality: u8,
        values: Vec<MetricValue>,
    },
    Sample {
        tick: u64,
        time_ns: u64,
        temp_mc: i64,
        energy_pkg_uj: u64,
        mean_freq_khz: u64,
        /// Sysfs was unreadable this pump; the values are carried over.
        gap: bool,
    },
    Stats {
        sessions: u64,
        reads_served: u64,
        evictions: u64,
        pumps: u64,
    },
    Err {
        code: u16,
        msg: String,
    },
    /// Pushed (best-effort) when the daemon evicts a slow consumer.
    Evicted {
        reason: String,
    },
    Closed,
    SelfMetrics {
        counters: Vec<(String, u64)>,
        hists: Vec<HistSummary>,
    },
    /// Ack for [`Request::Resume`]: the session continues from its
    /// parked cursor. `gap_pumps > 0` means snapshots were published
    /// while the client was away — the explicit loss marker (resumed
    /// subscriptions additionally read as `ReadQuality::Scaled` until
    /// re-baselined).
    Resumed {
        session_id: u64,
        session_token: u64,
        cur_tick: u64,
        gap_pumps: u64,
    },
    /// Typed load-shed: the daemon refused to serve this request under
    /// overload (shard budget exhausted or inbox deadline exceeded).
    /// The request was NOT applied; retry after `retry_after_pumps`.
    Overloaded {
        retry_after_pumps: u32,
    },
    /// Reply envelope for a [`Request::WithSeq`]: `inner` is a complete
    /// encoded response frame, `crc` its [`fnv64`].
    SeqReply {
        seq: u32,
        crc: u64,
        inner: Vec<u8>,
    },
    /// Delta-stream keyframe: the full per-CPU counter state at `tick`.
    /// Pushed when the daemon cannot prove the client holds the
    /// previous tick (stream start, backpressure gap, resume, nack).
    /// `crc` is [`stream_crc`] over the carried state.
    TickKeyframe {
        tick: u64,
        time_ns: u64,
        temp_mc: i64,
        energy_uj: u64,
        crc: u64,
        cpus: Vec<CpuKeyframe>,
    },
    /// Delta-stream increment from `base_tick` (the previously
    /// published tick) to `tick`. Counter deltas are zigzag varints of
    /// the wrapping difference, so frozen (offline) CPUs cost one byte
    /// each and counter wraps stay exact. `crc` is [`stream_crc`] over
    /// the *post-apply* state — the client mirror verifies it after
    /// applying and nacks on mismatch.
    TickDelta {
        base_tick: u64,
        tick: u64,
        d_time_ns: u64,
        temp_mc: i64,
        d_energy_uj: i64,
        crc: u64,
        cpu_deltas: Vec<(i64, i64)>,
    },
    /// Reply to [`Request::QueryRange`]: `points` are `(tick, value)`
    /// pairs from downsampling `tier` (0 = per-pump). For the
    /// percentile aggregations a single point carries the merged
    /// percentile and `count`/`min`/`max` describe the merged histogram
    /// (the loadgen cross-check asserts all four against its local
    /// histogram, ±0).
    RangeReply {
        series: u8,
        agg: u8,
        tier: u8,
        count: u64,
        min: u64,
        max: u64,
        points: Vec<(u64, u64)>,
    },
    /// Reply to [`Request::GetHealth`]: one row per configured SLO,
    /// frozen once per pump.
    Health {
        pumps: u64,
        slos: Vec<SloHealth>,
    },
}

impl Response {
    /// Wrap a reply in a sequence envelope matching a `WithSeq` request.
    pub fn seq_reply(seq: u32, inner: &Response) -> Response {
        let inner = inner.encode();
        Response::SeqReply {
            seq,
            crc: fnv64(&inner),
            inner,
        }
    }
}

/// Error codes carried by [`Response::Err`].
pub mod errcode {
    pub const BAD_FRAME: u16 = 1;
    pub const BAD_PROTO: u16 = 2;
    pub const NO_SUCH_SUB: u16 = 3;
    pub const UNKNOWN_TAG: u16 = 4;
    pub const NOT_HELLOED: u16 = 5;
    pub const EMPTY_MASK: u16 = 6;
    /// A `WithSeq`/`SeqReply` envelope's checksum did not match its
    /// payload — corruption in transit; reissue the request.
    pub const BAD_CHECKSUM: u16 = 7;
    /// `Resume` named a token the daemon does not hold (expired TTL,
    /// never issued, or already reaped).
    pub const NO_SUCH_TOKEN: u16 = 8;
    /// A `QueryRange` named an unknown series/aggregation, an inverted
    /// range, or asked for zero points.
    pub const BAD_QUERY: u16 = 9;
}

// ---- encoding --------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new(tag: u8) -> Enc {
        // Length prefix patched in finish().
        let mut buf = Vec::with_capacity(32);
        buf.extend_from_slice(&[0, 0, 0, 0, tag]);
        Enc { buf }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        let b = s.as_bytes();
        self.u16(b.len().min(u16::MAX as usize) as u16);
        self.buf
            .extend_from_slice(&b[..b.len().min(u16::MAX as usize)]);
    }

    /// LEB128: small counter deltas cost one byte instead of eight.
    fn vu64(&mut self, mut v: u64) {
        loop {
            let mut b = (v & 0x7f) as u8;
            v >>= 7;
            if v != 0 {
                b |= 0x80;
            }
            self.buf.push(b);
            if v == 0 {
                break;
            }
        }
    }

    /// Zigzag + LEB128 for signed deltas (frozen counters encode as one
    /// zero byte; wrapping differences stay exact).
    fn vi64(&mut self, v: i64) {
        self.vu64(((v << 1) ^ (v >> 63)) as u64);
    }

    fn finish(mut self) -> Vec<u8> {
        let payload = (self.buf.len() - 4) as u32;
        self.buf[..4].copy_from_slice(&payload.to_le_bytes());
        self.buf
    }
}

struct Dec<'a> {
    b: &'a [u8],
    i: usize,
}

/// A frame that failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub &'static str);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.i + n > self.b.len() {
            return Err(WireError("truncated frame"));
        }
        let s = &self.b[self.i..self.i + n];
        self.i += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, WireError> {
        let n = self.u16()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| WireError("bad utf-8"))
    }

    fn vu64(&mut self) -> Result<u64, WireError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift == 63 && b > 1 {
                return Err(WireError("varint overflows u64"));
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError("varint too long"));
            }
        }
    }

    fn vi64(&mut self) -> Result<i64, WireError> {
        let z = self.vu64()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Everything left in the payload (for envelope inner frames).
    fn rest(&mut self) -> &'a [u8] {
        let s = &self.b[self.i..];
        self.i = self.b.len();
        s
    }

    fn done(&self) -> Result<(), WireError> {
        if self.i == self.b.len() {
            Ok(())
        } else {
            Err(WireError("trailing bytes"))
        }
    }
}

impl Request {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Hello { proto } => {
                let mut e = Enc::new(0x01);
                e.u16(*proto);
                e.finish()
            }
            Request::GetHardwareInfo => Enc::new(0x02).finish(),
            Request::ListPresets => Enc::new(0x03).finish(),
            Request::Subscribe { cpu_mask, metrics } => {
                let mut e = Enc::new(0x04);
                e.u64(*cpu_mask);
                e.u8(*metrics);
                e.finish()
            }
            Request::Read { sub_id, submit_ns } => {
                let mut e = Enc::new(0x05);
                e.u32(*sub_id);
                e.u64(*submit_ns);
                e.finish()
            }
            Request::ResetSub { sub_id } => {
                let mut e = Enc::new(0x06);
                e.u32(*sub_id);
                e.finish()
            }
            Request::LatestSample => Enc::new(0x07).finish(),
            Request::Stream { every_pumps } => {
                let mut e = Enc::new(0x08);
                e.u32(*every_pumps);
                e.finish()
            }
            Request::Stats => Enc::new(0x09).finish(),
            Request::Close => Enc::new(0x0a).finish(),
            Request::GetSelfMetrics => Enc::new(0x0b).finish(),
            Request::Resume {
                session_token,
                last_tick,
            } => {
                let mut e = Enc::new(0x0c);
                e.u64(*session_token);
                e.u64(*last_tick);
                e.finish()
            }
            Request::WithSeq { seq, crc, inner } => {
                let mut e = Enc::new(0x0d);
                e.u32(*seq);
                e.u64(*crc);
                e.buf.extend_from_slice(inner);
                e.finish()
            }
            Request::StreamDeltas { every_pumps } => {
                let mut e = Enc::new(0x0e);
                e.u32(*every_pumps);
                e.finish()
            }
            Request::AckTick { tick } => {
                let mut e = Enc::new(0x0f);
                e.u64(*tick);
                e.finish()
            }
            Request::Traced { ctx, inner } => {
                let mut e = Enc::new(0x10);
                // Fixed layout: TraceCtx::peek reads these 13 bytes.
                e.u64(ctx.trace_id);
                e.u32(ctx.parent_span);
                e.u8(u8::from(ctx.sampled));
                e.buf.extend_from_slice(inner);
                e.finish()
            }
            Request::QueryRange {
                series,
                agg,
                start_tick,
                end_tick,
                max_points,
            } => {
                let mut e = Enc::new(0x11);
                e.u8(*series);
                e.u8(*agg);
                e.u64(*start_tick);
                e.u64(*end_tick);
                e.u32(*max_points);
                e.finish()
            }
            Request::GetHealth => Enc::new(0x12).finish(),
        }
    }

    /// Decode one whole frame (including the length prefix).
    pub fn decode(frame: &[u8]) -> Result<Request, WireError> {
        let (tag, mut d) = split_frame(frame)?;
        let req = match tag {
            0x01 => Request::Hello { proto: d.u16()? },
            0x02 => Request::GetHardwareInfo,
            0x03 => Request::ListPresets,
            0x04 => Request::Subscribe {
                cpu_mask: d.u64()?,
                metrics: d.u8()?,
            },
            0x05 => Request::Read {
                sub_id: d.u32()?,
                submit_ns: d.u64()?,
            },
            0x06 => Request::ResetSub { sub_id: d.u32()? },
            0x07 => Request::LatestSample,
            0x08 => Request::Stream {
                every_pumps: d.u32()?,
            },
            0x09 => Request::Stats,
            0x0a => Request::Close,
            0x0b => Request::GetSelfMetrics,
            0x0c => Request::Resume {
                session_token: d.u64()?,
                last_tick: d.u64()?,
            },
            0x0d => {
                let seq = d.u32()?;
                let crc = d.u64()?;
                Request::WithSeq {
                    seq,
                    crc,
                    inner: d.rest().to_vec(),
                }
            }
            0x0e => Request::StreamDeltas {
                every_pumps: d.u32()?,
            },
            0x0f => Request::AckTick { tick: d.u64()? },
            0x10 => {
                let ctx = TraceCtx {
                    trace_id: d.u64()?,
                    parent_span: d.u32()?,
                    sampled: d.u8()? != 0,
                };
                Request::Traced {
                    ctx,
                    inner: d.rest().to_vec(),
                }
            }
            0x11 => Request::QueryRange {
                series: d.u8()?,
                agg: d.u8()?,
                start_tick: d.u64()?,
                end_tick: d.u64()?,
                max_points: d.u32()?,
            },
            0x12 => Request::GetHealth,
            _ => return Err(WireError("unknown request tag")),
        };
        d.done()?;
        Ok(req)
    }
}

impl Response {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Welcome {
                session_id,
                proto,
                n_cpus,
                tick_ns,
                session_token,
            } => {
                let mut e = Enc::new(0x81);
                e.u64(*session_id);
                e.u16(*proto);
                e.u32(*n_cpus);
                e.u64(*tick_ns);
                e.u64(*session_token);
                e.finish()
            }
            Response::HardwareInfo { json } => {
                let mut e = Enc::new(0x82);
                // JSON can exceed u16: length-prefix with u32.
                e.u32(json.len() as u32);
                e.buf.extend_from_slice(json.as_bytes());
                e.finish()
            }
            Response::Presets { names } => {
                let mut e = Enc::new(0x83);
                e.u16(names.len() as u16);
                for n in names {
                    e.str(n);
                }
                e.finish()
            }
            Response::Subscribed { sub_id, base_tick } => {
                let mut e = Enc::new(0x84);
                e.u32(*sub_id);
                e.u64(*base_tick);
                e.finish()
            }
            Response::Counters {
                sub_id,
                tick,
                time_ns,
                latency_ns,
                quality,
                values,
            } => {
                let mut e = Enc::new(0x85);
                e.u32(*sub_id);
                e.u64(*tick);
                e.u64(*time_ns);
                e.u64(*latency_ns);
                e.u8(*quality);
                e.u8(values.len() as u8);
                for v in values {
                    e.u8(v.metric);
                    e.u64(v.value);
                }
                e.finish()
            }
            Response::Sample {
                tick,
                time_ns,
                temp_mc,
                energy_pkg_uj,
                mean_freq_khz,
                gap,
            } => {
                let mut e = Enc::new(0x86);
                e.u64(*tick);
                e.u64(*time_ns);
                e.i64(*temp_mc);
                e.u64(*energy_pkg_uj);
                e.u64(*mean_freq_khz);
                e.u8(u8::from(*gap));
                e.finish()
            }
            Response::Stats {
                sessions,
                reads_served,
                evictions,
                pumps,
            } => {
                let mut e = Enc::new(0x87);
                e.u64(*sessions);
                e.u64(*reads_served);
                e.u64(*evictions);
                e.u64(*pumps);
                e.finish()
            }
            Response::Err { code, msg } => {
                let mut e = Enc::new(0x88);
                e.u16(*code);
                e.str(msg);
                e.finish()
            }
            Response::Evicted { reason } => {
                let mut e = Enc::new(0x89);
                e.str(reason);
                e.finish()
            }
            Response::Closed => Enc::new(0x8a).finish(),
            Response::SelfMetrics { counters, hists } => {
                let mut e = Enc::new(0x8b);
                e.u16(counters.len() as u16);
                for (name, v) in counters {
                    e.str(name);
                    e.u64(*v);
                }
                e.u16(hists.len() as u16);
                for h in hists {
                    e.str(&h.name);
                    e.u64(h.count);
                    e.u64(h.min);
                    e.u64(h.max);
                    e.u64(h.p50);
                    e.u64(h.p90);
                    e.u64(h.p99);
                }
                e.finish()
            }
            Response::Resumed {
                session_id,
                session_token,
                cur_tick,
                gap_pumps,
            } => {
                let mut e = Enc::new(0x8c);
                e.u64(*session_id);
                e.u64(*session_token);
                e.u64(*cur_tick);
                e.u64(*gap_pumps);
                e.finish()
            }
            Response::Overloaded { retry_after_pumps } => {
                let mut e = Enc::new(0x8d);
                e.u32(*retry_after_pumps);
                e.finish()
            }
            Response::SeqReply { seq, crc, inner } => {
                let mut e = Enc::new(0x8e);
                e.u32(*seq);
                e.u64(*crc);
                e.buf.extend_from_slice(inner);
                e.finish()
            }
            Response::TickKeyframe {
                tick,
                time_ns,
                temp_mc,
                energy_uj,
                crc,
                cpus,
            } => {
                let mut e = Enc::new(0x8f);
                e.vu64(*tick);
                e.vu64(*time_ns);
                e.i64(*temp_mc);
                e.vu64(*energy_uj);
                e.u64(*crc);
                e.u16(cpus.len() as u16);
                for c in cpus {
                    e.u8(u8::from(c.online));
                    e.vu64(c.instructions);
                    e.vu64(c.cycles);
                }
                e.finish()
            }
            Response::TickDelta {
                base_tick,
                tick,
                d_time_ns,
                temp_mc,
                d_energy_uj,
                crc,
                cpu_deltas,
            } => {
                let mut e = Enc::new(0x90);
                e.vu64(*base_tick);
                e.vu64(*tick);
                e.vu64(*d_time_ns);
                e.i64(*temp_mc);
                e.vi64(*d_energy_uj);
                e.u64(*crc);
                e.u16(cpu_deltas.len() as u16);
                for (di, dc) in cpu_deltas {
                    e.vi64(*di);
                    e.vi64(*dc);
                }
                e.finish()
            }
            Response::RangeReply {
                series,
                agg,
                tier,
                count,
                min,
                max,
                points,
            } => {
                let mut e = Enc::new(0x91);
                e.u8(*series);
                e.u8(*agg);
                e.u8(*tier);
                e.vu64(*count);
                e.vu64(*min);
                e.vu64(*max);
                e.u16(points.len() as u16);
                for (tick, value) in points {
                    e.vu64(*tick);
                    e.vu64(*value);
                }
                e.finish()
            }
            Response::Health { pumps, slos } => {
                let mut e = Enc::new(0x92);
                e.vu64(*pumps);
                e.u8(slos.len() as u8);
                for s in slos {
                    e.u8(s.kind);
                    e.vu64(s.target);
                    e.u32(s.window_pumps);
                    e.vu64(s.breaches);
                    e.vu64(s.last_breach_pump);
                    e.vu64(s.worst);
                    e.u64(s.exemplar_trace_id);
                }
                e.finish()
            }
        }
    }

    pub fn decode(frame: &[u8]) -> Result<Response, WireError> {
        let (tag, mut d) = split_frame(frame)?;
        let resp = match tag {
            0x81 => Response::Welcome {
                session_id: d.u64()?,
                proto: d.u16()?,
                n_cpus: d.u32()?,
                tick_ns: d.u64()?,
                session_token: d.u64()?,
            },
            0x82 => {
                let n = d.u32()? as usize;
                let json =
                    String::from_utf8(d.take(n)?.to_vec()).map_err(|_| WireError("bad utf-8"))?;
                Response::HardwareInfo { json }
            }
            0x83 => {
                let n = d.u16()? as usize;
                let mut names = Vec::with_capacity(n);
                for _ in 0..n {
                    names.push(d.str()?);
                }
                Response::Presets { names }
            }
            0x84 => Response::Subscribed {
                sub_id: d.u32()?,
                base_tick: d.u64()?,
            },
            0x85 => {
                let sub_id = d.u32()?;
                let tick = d.u64()?;
                let time_ns = d.u64()?;
                let latency_ns = d.u64()?;
                let quality = d.u8()?;
                let n = d.u8()? as usize;
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(MetricValue {
                        metric: d.u8()?,
                        value: d.u64()?,
                    });
                }
                Response::Counters {
                    sub_id,
                    tick,
                    time_ns,
                    latency_ns,
                    quality,
                    values,
                }
            }
            0x86 => Response::Sample {
                tick: d.u64()?,
                time_ns: d.u64()?,
                temp_mc: d.i64()?,
                energy_pkg_uj: d.u64()?,
                mean_freq_khz: d.u64()?,
                gap: d.u8()? != 0,
            },
            0x87 => Response::Stats {
                sessions: d.u64()?,
                reads_served: d.u64()?,
                evictions: d.u64()?,
                pumps: d.u64()?,
            },
            0x88 => Response::Err {
                code: d.u16()?,
                msg: d.str()?,
            },
            0x89 => Response::Evicted { reason: d.str()? },
            0x8a => Response::Closed,
            0x8b => {
                let n = d.u16()? as usize;
                let mut counters = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = d.str()?;
                    counters.push((name, d.u64()?));
                }
                let n = d.u16()? as usize;
                let mut hists = Vec::with_capacity(n);
                for _ in 0..n {
                    hists.push(HistSummary {
                        name: d.str()?,
                        count: d.u64()?,
                        min: d.u64()?,
                        max: d.u64()?,
                        p50: d.u64()?,
                        p90: d.u64()?,
                        p99: d.u64()?,
                    });
                }
                Response::SelfMetrics { counters, hists }
            }
            0x8c => Response::Resumed {
                session_id: d.u64()?,
                session_token: d.u64()?,
                cur_tick: d.u64()?,
                gap_pumps: d.u64()?,
            },
            0x8d => Response::Overloaded {
                retry_after_pumps: d.u32()?,
            },
            0x8e => {
                let seq = d.u32()?;
                let crc = d.u64()?;
                Response::SeqReply {
                    seq,
                    crc,
                    inner: d.rest().to_vec(),
                }
            }
            0x8f => {
                let tick = d.vu64()?;
                let time_ns = d.vu64()?;
                let temp_mc = d.i64()?;
                let energy_uj = d.vu64()?;
                let crc = d.u64()?;
                let n = d.u16()? as usize;
                let mut cpus = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    cpus.push(CpuKeyframe {
                        online: d.u8()? != 0,
                        instructions: d.vu64()?,
                        cycles: d.vu64()?,
                    });
                }
                Response::TickKeyframe {
                    tick,
                    time_ns,
                    temp_mc,
                    energy_uj,
                    crc,
                    cpus,
                }
            }
            0x90 => {
                let base_tick = d.vu64()?;
                let tick = d.vu64()?;
                let d_time_ns = d.vu64()?;
                let temp_mc = d.i64()?;
                let d_energy_uj = d.vi64()?;
                let crc = d.u64()?;
                let n = d.u16()? as usize;
                let mut cpu_deltas = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    cpu_deltas.push((d.vi64()?, d.vi64()?));
                }
                Response::TickDelta {
                    base_tick,
                    tick,
                    d_time_ns,
                    temp_mc,
                    d_energy_uj,
                    crc,
                    cpu_deltas,
                }
            }
            0x91 => {
                let series = d.u8()?;
                let agg = d.u8()?;
                let tier = d.u8()?;
                let count = d.vu64()?;
                let min = d.vu64()?;
                let max = d.vu64()?;
                let n = d.u16()? as usize;
                if n > MAX_RANGE_POINTS {
                    return Err(WireError("range reply exceeds MAX_RANGE_POINTS"));
                }
                let mut points = Vec::with_capacity(n);
                for _ in 0..n {
                    points.push((d.vu64()?, d.vu64()?));
                }
                Response::RangeReply {
                    series,
                    agg,
                    tier,
                    count,
                    min,
                    max,
                    points,
                }
            }
            0x92 => {
                let pumps = d.vu64()?;
                let n = d.u8()? as usize;
                if n > MAX_SLOS {
                    return Err(WireError("health reply exceeds MAX_SLOS"));
                }
                let mut slos = Vec::with_capacity(n);
                for _ in 0..n {
                    slos.push(SloHealth {
                        kind: d.u8()?,
                        target: d.vu64()?,
                        window_pumps: d.u32()?,
                        breaches: d.vu64()?,
                        last_breach_pump: d.vu64()?,
                        worst: d.vu64()?,
                        exemplar_trace_id: d.u64()?,
                    });
                }
                Response::Health { pumps, slos }
            }
            _ => return Err(WireError("unknown response tag")),
        };
        d.done()?;
        Ok(resp)
    }
}

/// Incremental frame decoder for byte-stream transports: feed reads as
/// they arrive, pop complete frames as they become available. One
/// rolling buffer absorbs partial frames across read boundaries, so a
/// single readiness event can drain many pipelined requests without
/// per-read staging buffers.
///
/// A length prefix above [`MAX_FRAME`] is a framing error the stream
/// cannot recover from (the frame boundary is lost): `next_frame`
/// returns the typed error on every subsequent call and the caller
/// must drop the connection.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    start: usize,
}

impl FrameDecoder {
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Absorb freshly read bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Reclaim consumed prefix before growing, keeping the buffer
        // bounded by one partial frame plus one read.
        if self.start > 0 && (self.start >= 4096 || self.start == self.buf.len()) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete frame (`[len][tag][payload]`, length
    /// prefix included), `Ok(None)` if more bytes are needed.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let avail = self.buf.len() - self.start;
        if avail < 4 {
            return Ok(None);
        }
        let len =
            u32::from_le_bytes(self.buf[self.start..self.start + 4].try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            return Err(WireError("frame exceeds MAX_FRAME"));
        }
        if avail < 4 + len {
            return Ok(None);
        }
        let frame = self.buf[self.start..self.start + 4 + len].to_vec();
        self.start += 4 + len;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        Ok(Some(frame))
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }
}

/// Validate the length prefix and return (tag, payload decoder).
fn split_frame(frame: &[u8]) -> Result<(u8, Dec<'_>), WireError> {
    if frame.len() < 5 {
        return Err(WireError("frame shorter than header"));
    }
    let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME {
        return Err(WireError("frame exceeds MAX_FRAME"));
    }
    if frame.len() != 4 + len {
        return Err(WireError("length prefix mismatch"));
    }
    Ok((
        frame[4],
        Dec {
            b: &frame[5..],
            i: 0,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Hello {
                proto: PROTO_VERSION,
            },
            Request::GetHardwareInfo,
            Request::ListPresets,
            Request::Subscribe {
                cpu_mask: 0b1011,
                metrics: metrics::ALL,
            },
            Request::Read {
                sub_id: 7,
                submit_ns: 123_456,
            },
            Request::ResetSub { sub_id: 7 },
            Request::LatestSample,
            Request::Stream { every_pumps: 4 },
            Request::Stats,
            Request::Close,
            Request::GetSelfMetrics,
            Request::Resume {
                session_token: 0xdead_beef_cafe_f00d,
                last_tick: 37,
            },
            Request::with_seq(
                9,
                &Request::Read {
                    sub_id: 7,
                    submit_ns: 123,
                },
            ),
            Request::StreamDeltas { every_pumps: 1 },
            Request::AckTick { tick: 420 },
            Request::traced(
                TraceCtx {
                    trace_id: 0x1234_5678_9abc_def0 & !1,
                    parent_span: 3,
                    sampled: true,
                },
                &Request::Read {
                    sub_id: 7,
                    submit_ns: 99,
                },
            ),
            Request::QueryRange {
                series: series::LATENCY_NS,
                agg: agg::P99,
                start_tick: 0,
                end_tick: u64::MAX,
                max_points: 128,
            },
            Request::GetHealth,
        ];
        for r in reqs {
            let f = r.encode();
            assert_eq!(Request::decode(&f).unwrap(), r, "{r:?}");
        }
    }

    #[test]
    fn trace_ctx_peeks_without_decoding() {
        let ctx = TraceCtx {
            trace_id: 0xfeed_f00d_dead_0002,
            parent_span: 17,
            sampled: true,
        };
        let frame = Request::traced(ctx, &Request::Stats).encode();
        assert_eq!(TraceCtx::peek(&frame), Some(ctx));
        // Non-envelope frames and short frames peek to None, never panic.
        assert_eq!(TraceCtx::peek(&Request::Stats.encode()), None);
        assert_eq!(TraceCtx::peek(&frame[..10]), None);
        assert_eq!(TraceCtx::peek(&[]), None);
        // The inner frame round-trips from the decoded envelope.
        match Request::decode(&frame).unwrap() {
            Request::Traced { ctx: got, inner } => {
                assert_eq!(got, ctx);
                assert_eq!(Request::decode(&inner).unwrap(), Request::Stats);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Welcome {
                session_id: 42,
                proto: 1,
                n_cpus: 24,
                tick_ns: 1_000_000,
                session_token: 0x1234_5678_9abc_def0,
            },
            Response::HardwareInfo {
                json: "{\"x\":1}".into(),
            },
            Response::Presets {
                names: vec!["PAPI_TOT_INS".into(), "PAPI_TOT_CYC".into()],
            },
            Response::Subscribed {
                sub_id: 3,
                base_tick: 9,
            },
            Response::Counters {
                sub_id: 3,
                tick: 10,
                time_ns: 5_000,
                latency_ns: 1_800,
                quality: 1,
                values: vec![
                    MetricValue {
                        metric: metrics::INSTRUCTIONS,
                        value: 1_000_000,
                    },
                    MetricValue {
                        metric: metrics::ENERGY_PKG,
                        value: 55,
                    },
                ],
            },
            Response::Sample {
                tick: 10,
                time_ns: 5_000,
                temp_mc: 45_000,
                energy_pkg_uj: 12_345,
                mean_freq_khz: 3_200_000,
                gap: true,
            },
            Response::Stats {
                sessions: 1000,
                reads_served: 99,
                evictions: 1,
                pumps: 12,
            },
            Response::Err {
                code: errcode::NO_SUCH_SUB,
                msg: "no sub 9".into(),
            },
            Response::Evicted {
                reason: "outbox full for 8 pumps".into(),
            },
            Response::Closed,
            Response::SelfMetrics {
                counters: vec![
                    ("reads_served".into(), 99),
                    ("latency_inversions".into(), 0),
                ],
                hists: vec![HistSummary {
                    name: "read_latency_ns".into(),
                    count: 99,
                    min: 500,
                    max: 8_000,
                    p50: 1_023,
                    p90: 4_095,
                    p99: 8_000,
                }],
            },
            Response::Resumed {
                session_id: 43,
                session_token: 0x1234_5678_9abc_def0,
                cur_tick: 50,
                gap_pumps: 13,
            },
            Response::Overloaded {
                retry_after_pumps: 3,
            },
            Response::seq_reply(9, &Response::Closed),
            Response::TickKeyframe {
                tick: 40,
                time_ns: 2_000_000,
                temp_mc: 41_500,
                energy_uj: 9_999,
                crc: 0xfeed_f00d,
                cpus: vec![
                    CpuKeyframe {
                        online: true,
                        instructions: u64::MAX,
                        cycles: 7,
                    },
                    CpuKeyframe {
                        online: false,
                        instructions: 0,
                        cycles: 0,
                    },
                ],
            },
            Response::TickDelta {
                base_tick: 40,
                tick: 60,
                d_time_ns: 1_000_000,
                temp_mc: 42_000,
                d_energy_uj: -3,
                crc: 0xdead_cafe,
                cpu_deltas: vec![(1_000_000, 2_500_000), (0, 0), (-1, i64::MIN)],
            },
            Response::RangeReply {
                series: series::READS,
                agg: agg::SUM,
                tier: 1,
                count: 3,
                min: 10,
                max: 900,
                points: vec![(20, 10), (40, 500), (60, 900)],
            },
            Response::RangeReply {
                series: series::LATENCY_NS,
                agg: agg::P99,
                tier: 0,
                count: 4096,
                min: 500,
                max: u64::MAX,
                points: vec![(80, 16_383)],
            },
            Response::Health {
                pumps: 77,
                slos: vec![
                    SloHealth {
                        kind: 0,
                        target: 10_000,
                        window_pumps: 8,
                        breaches: 2,
                        last_breach_pump: 70,
                        worst: 32_767,
                        exemplar_trace_id: 0xaaaa_bbbb_cccc_0002,
                    },
                    SloHealth {
                        kind: 2,
                        target: 0,
                        window_pumps: 4,
                        breaches: 0,
                        last_breach_pump: 0,
                        worst: 0,
                        exemplar_trace_id: 0,
                    },
                ],
            },
            Response::Health {
                pumps: 1,
                slos: vec![],
            },
        ];
        for r in resps {
            let f = r.encode();
            assert_eq!(Response::decode(&f).unwrap(), r, "{r:?}");
        }
    }

    #[test]
    fn corrupt_frames_are_rejected_not_panicked() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[1, 0, 0, 0]).is_err());
        // Bad length prefix.
        let mut f = Request::Stats.encode();
        f[0] ^= 0xff;
        assert!(Request::decode(&f).is_err());
        // Truncated payload.
        let f = Request::Subscribe {
            cpu_mask: 1,
            metrics: 1,
        }
        .encode();
        assert!(Request::decode(&f[..f.len() - 2]).is_err());
        // Trailing garbage inside the declared length.
        let mut f = Request::Close.encode();
        f.push(0);
        f[0] = 2;
        assert!(Request::decode(&f).is_err());
        // Unknown tags.
        let mut f = Request::Close.encode();
        f[4] = 0x7f;
        assert!(Request::decode(&f).is_err());
        let mut f = Response::Closed.encode();
        f[4] = 0xff;
        assert!(Response::decode(&f).is_err());
        // SelfMetrics cut off mid-histogram.
        let f = Response::SelfMetrics {
            counters: vec![("c".into(), 1)],
            hists: vec![HistSummary {
                name: "h".into(),
                count: 1,
                min: 1,
                max: 1,
                p50: 1,
                p90: 1,
                p99: 1,
            }],
        }
        .encode();
        assert!(Response::decode(&f[..f.len() - 4]).is_err());
        // A RangeReply whose declared point count exceeds the bound is
        // refused before any allocation of that size.
        let mut e = Enc::new(0x91);
        e.u8(0);
        e.u8(0);
        e.u8(0);
        e.vu64(0);
        e.vu64(0);
        e.vu64(0);
        e.u16(MAX_RANGE_POINTS as u16 + 1);
        let f = e.finish();
        assert_eq!(
            Response::decode(&f),
            Err(WireError("range reply exceeds MAX_RANGE_POINTS"))
        );
        // Same for a Health frame with too many SLO rows.
        let mut e = Enc::new(0x92);
        e.vu64(1);
        e.u8(MAX_SLOS as u8 + 1);
        let f = e.finish();
        assert_eq!(
            Response::decode(&f),
            Err(WireError("health reply exceeds MAX_SLOS"))
        );
        // Truncated trace envelope: too short for the fixed context.
        let f = Request::traced(
            TraceCtx {
                trace_id: 2,
                parent_span: 0,
                sampled: false,
            },
            &Request::Stats,
        )
        .encode();
        assert!(Request::decode(&f[..10]).is_err());
    }

    #[test]
    fn seq_envelope_checksums_catch_bit_flips() {
        let req = Request::Subscribe {
            cpu_mask: 0b1010,
            metrics: metrics::ALL,
        };
        let mut frame = Request::with_seq(5, &req).encode();
        // Untouched: checksum verifies and the inner frame decodes back.
        match Request::decode(&frame).unwrap() {
            Request::WithSeq { seq, crc, inner } => {
                assert_eq!(seq, 5);
                assert_eq!(crc, fnv64(&inner));
                assert_eq!(Request::decode(&inner).unwrap(), req);
            }
            other => panic!("{other:?}"),
        }
        // Flip one bit of the inner payload (the cpu_mask byte): the
        // envelope still decodes, but the checksum no longer matches —
        // the corruption cannot masquerade as a different valid request.
        let flip_at = frame.len() - 2;
        frame[flip_at] ^= 0x04;
        match Request::decode(&frame).unwrap() {
            Request::WithSeq { crc, inner, .. } => {
                assert_ne!(crc, fnv64(&inner), "flip must break the checksum");
                // And the mutated inner is itself a VALID Subscribe —
                // exactly the silent-corruption case the crc exists for.
                assert!(matches!(
                    Request::decode(&inner),
                    Ok(Request::Subscribe { .. })
                ));
            }
            other => panic!("{other:?}"),
        }
        // Same on the response side.
        let resp = Response::Closed;
        let mut frame = Response::seq_reply(6, &resp).encode();
        let last = frame.len() - 1;
        frame[last] ^= 0x80;
        match Response::decode(&frame).unwrap() {
            Response::SeqReply { crc, inner, .. } => assert_ne!(crc, fnv64(&inner)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn varints_round_trip_edge_values() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            let mut e = Enc::new(0x01);
            e.vu64(v);
            let f = e.finish();
            let mut d = Dec { b: &f[5..], i: 0 };
            assert_eq!(d.vu64().unwrap(), v);
            d.done().unwrap();
        }
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut e = Enc::new(0x01);
            e.vi64(v);
            let f = e.finish();
            let mut d = Dec { b: &f[5..], i: 0 };
            assert_eq!(d.vi64().unwrap(), v);
            d.done().unwrap();
        }
        // A ten-byte continuation chain overflows u64: typed error.
        let over = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        let mut d = Dec { b: &over, i: 0 };
        assert!(d.vu64().is_err());
    }

    #[test]
    fn frame_decoder_reassembles_split_and_pipelined_frames() {
        let frames = [
            Request::Hello { proto: 1 }.encode(),
            Request::Read {
                sub_id: 3,
                submit_ns: 999,
            }
            .encode(),
            Request::Close.encode(),
        ];
        let stream: Vec<u8> = frames.iter().flatten().copied().collect();
        // One byte at a time: every boundary is a partial frame.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in &stream {
            dec.feed(&[*b]);
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames.to_vec());
        assert_eq!(dec.buffered(), 0);
        // All at once: one feed drains all three.
        let mut dec = FrameDecoder::new();
        dec.feed(&stream);
        let mut got = Vec::new();
        while let Some(f) = dec.next_frame().unwrap() {
            got.push(f);
        }
        assert_eq!(got, frames.to_vec());
    }

    #[test]
    fn frame_decoder_oversized_prefix_is_a_sticky_typed_error() {
        let mut dec = FrameDecoder::new();
        dec.feed(&(MAX_FRAME as u32 + 1).to_le_bytes());
        assert!(dec.next_frame().is_err());
        dec.feed(&[0; 64]);
        assert!(dec.next_frame().is_err(), "desync cannot self-heal");
    }

    #[test]
    fn stream_crc_tracks_state_changes() {
        let base = stream_crc(10, 500, &[(100, 200), (7, 9)]);
        assert_eq!(base, stream_crc(10, 500, &[(100, 200), (7, 9)]));
        assert_ne!(base, stream_crc(11, 500, &[(100, 200), (7, 9)]));
        assert_ne!(base, stream_crc(10, 501, &[(100, 200), (7, 9)]));
        assert_ne!(base, stream_crc(10, 500, &[(101, 200), (7, 9)]));
    }

    #[test]
    fn metric_iteration_is_in_wire_order() {
        let got: Vec<u8> = metrics::iter(metrics::ALL).collect();
        assert_eq!(
            got,
            vec![metrics::INSTRUCTIONS, metrics::CYCLES, metrics::ENERGY_PKG]
        );
        assert_eq!(metrics::iter(0).count(), 0);
    }
}
