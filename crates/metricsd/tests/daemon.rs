//! Integration tests: many clients, fault degradation, backpressure
//! eviction, TCP end-to-end, shard-count determinism, and the
//! park/resume + overload-shedding machinery underneath the resilient
//! client.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use metricsd::queue::ClientPipe;
use metricsd::wire::{errcode, fnv64, metrics, Request, Response};
use metricsd::{ClientError, Daemon, DaemonConfig, MetricsClient, Transport};
use simcpu::machine::MachineSpec;
use simcpu::phase::Phase;
use simcpu::types::{CpuId, CpuMask};
use simos::faults::{FaultKind, FaultPlan};
use simos::kernel::{Kernel, KernelConfig, KernelHandle};
use simos::task::{Op, ScriptedProgram};

fn boot(faults: Option<FaultPlan>) -> KernelHandle {
    let kernel = Kernel::boot_handle(
        MachineSpec::raptor_lake_i7_13700(),
        KernelConfig {
            seed: 7,
            ..KernelConfig::default()
        },
    );
    {
        let mut k = kernel.lock();
        for cpu in [0usize, 4, 16, 17] {
            k.spawn(
                &format!("w{cpu}"),
                Box::new(ScriptedProgram::new([
                    Op::Compute(Phase::scalar(u64::MAX / 4)),
                    Op::Exit,
                ])),
                CpuMask::from_cpus([cpu]),
                0,
            );
        }
        if let Some(plan) = faults {
            k.install_faults(&plan);
        }
    }
    kernel
}

/// Run the daemon on a background thread, pumping until told to stop;
/// returns (connector, stop flag, join handle yielding final stats).
fn background_daemon(
    daemon: Daemon,
) -> (
    metricsd::Connector,
    Arc<AtomicBool>,
    std::thread::JoinHandle<metricsd::DaemonStats>,
) {
    let connector = daemon.connector();
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let handle = std::thread::spawn(move || {
        let mut daemon = daemon;
        while !stop2.load(Ordering::Relaxed) {
            daemon.pump();
            std::thread::sleep(Duration::from_micros(500));
        }
        daemon.stats()
    });
    (connector, stop, handle)
}

#[test]
fn many_concurrent_clients_over_blocking_rpc() {
    let daemon = Daemon::new(boot(None), DaemonConfig::default());
    let (connector, stop, handle) = background_daemon(daemon);

    let mut clients: Vec<_> = (0..32)
        .map(|_| MetricsClient::new(connector.connect()))
        .collect();
    for c in clients.iter_mut() {
        c.hello().expect("hello");
        assert_eq!(c.n_cpus, 24);
    }
    // Static hot queries come from the cache and are identical for all.
    let hw = clients[0].hardware_info().expect("hardware info");
    assert!(jsonw::validate(&hw), "hardware info is valid JSON");
    assert!(hw.contains("\"heterogeneous\":true"));
    assert_eq!(clients[1].hardware_info().expect("hw"), hw);
    let presets = clients[2].presets().expect("presets");
    assert!(presets.iter().any(|p| p == "PAPI_TOT_INS"));

    let mut subs = Vec::new();
    for (i, c) in clients.iter_mut().enumerate() {
        subs.push(
            c.subscribe(1 << (i % 24), metrics::INSTRUCTIONS | metrics::CYCLES)
                .expect("subscribe"),
        );
    }
    // Counters advance between two spaced reads on the busy CPU.
    let first = match clients[0].read(subs[0]).expect("read") {
        Response::Counters { values, .. } => values[0].value,
        _ => unreachable!(),
    };
    std::thread::sleep(Duration::from_millis(30));
    let second = match clients[0].read(subs[0]).expect("read") {
        Response::Counters {
            values, quality, ..
        } => {
            assert_eq!(quality, 0, "healthy machine reads are quality Ok");
            values[0].value
        }
        _ => unreachable!(),
    };
    assert!(second > first, "instructions advance: {first} -> {second}");

    for c in clients.iter_mut() {
        c.close().expect("close");
    }
    stop.store(true, Ordering::Relaxed);
    let stats = handle.join().unwrap();
    assert_eq!(stats.sessions, 0, "closed sessions were reaped");
    assert!(stats.reads_served >= 32 * 3);
}

#[test]
fn hotplugged_cpu_degrades_quality_without_hanging() {
    // CPU 17 goes down at 100ms for 150ms; reads over it must come back
    // promptly with quality Lost while down, Scaled after recovery.
    let kernel = boot(Some(FaultPlan::new(3).at(
        100_000_000,
        FaultKind::CpuOffline {
            cpu: CpuId(17),
            down_ns: Some(150_000_000),
        },
    )));
    let mut daemon = Daemon::new(
        kernel,
        DaemonConfig {
            ticks_per_pump: 20, // 20ms of sim per pump
            ..DaemonConfig::default()
        },
    );
    let connector = daemon.connector();
    let mut c = MetricsClient::new(connector.connect());

    c.post(&Request::Hello {
        proto: metricsd::PROTO_VERSION,
    })
    .unwrap();
    daemon.pump();
    assert!(matches!(c.take().unwrap(), Response::Welcome { .. }));
    c.post(&Request::Subscribe {
        cpu_mask: (1 << 16) | (1 << 17),
        metrics: metrics::INSTRUCTIONS,
    })
    .unwrap();
    daemon.pump();
    let sub_id = match c.take().unwrap() {
        Response::Subscribed { sub_id, .. } => sub_id,
        other => panic!("wanted Subscribed, got {other:?}"),
    };

    let mut saw_lost = false;
    let mut final_quality = 0;
    for _ in 0..20 {
        c.post(&Request::Read {
            sub_id,
            submit_ns: 0,
        })
        .unwrap();
        daemon.pump();
        match c.take().expect("read never hangs") {
            Response::Counters { quality, .. } => {
                if quality == 2 {
                    saw_lost = true;
                }
                final_quality = quality;
            }
            other => panic!("wanted Counters, got {other:?}"),
        }
    }
    assert!(saw_lost, "offline window surfaced as ReadQuality::Lost");
    assert_eq!(
        final_quality, 1,
        "after recovery the disturbed window reads as Scaled"
    );
}

#[test]
fn slow_consumer_is_evicted_daemon_keeps_serving() {
    let mut daemon = Daemon::new(
        boot(None),
        DaemonConfig {
            stall_grace_pumps: 4,
            ..DaemonConfig::default()
        },
    );
    let connector = daemon.connector();
    let mut healthy = MetricsClient::new(connector.connect());
    let mut slow = MetricsClient::new(connector.connect_with_outbox_cap(2));

    for c in [&mut healthy, &mut slow] {
        c.post(&Request::Hello {
            proto: metricsd::PROTO_VERSION,
        })
        .unwrap();
    }
    daemon.pump();
    assert!(matches!(healthy.take().unwrap(), Response::Welcome { .. }));
    assert!(matches!(slow.take().unwrap(), Response::Welcome { .. }));

    for c in [&mut healthy, &mut slow] {
        c.post(&Request::Subscribe {
            cpu_mask: 1,
            metrics: metrics::ALL,
        })
        .unwrap();
    }
    slow.post(&Request::Stream { every_pumps: 1 }).unwrap();
    daemon.pump();
    let healthy_sub = match healthy.take().unwrap() {
        Response::Subscribed { sub_id, .. } => sub_id,
        other => panic!("{other:?}"),
    };
    // Slow stops draining here; its outbox (cap 2) fills with stream
    // pushes and stays full.

    for _ in 0..12 {
        healthy
            .post(&Request::Read {
                sub_id: healthy_sub,
                submit_ns: 0,
            })
            .unwrap();
        daemon.pump();
        assert!(
            matches!(healthy.take().unwrap(), Response::Counters { .. }),
            "healthy session keeps being served while the slow one stalls"
        );
    }
    assert_eq!(daemon.stats().evictions, 1, "slow consumer was evicted");

    // The eviction notice is force-pushed at the tail of its queue.
    let mut saw_evicted = false;
    loop {
        match slow.try_take() {
            Ok(Some(Response::Evicted { .. })) | Err(ClientError::Evicted { .. }) => {
                saw_evicted = true;
                break;
            }
            Ok(Some(_)) => continue,
            Ok(None) | Err(_) => break,
        }
    }
    assert!(saw_evicted, "evicted session learns its fate");
    // Its connection is dead for good.
    assert!(slow
        .post(&Request::Read {
            sub_id: 1,
            submit_ns: 0
        })
        .is_err());
}

#[test]
fn protocol_errors_are_answered_not_dropped() {
    let mut daemon = Daemon::new(boot(None), DaemonConfig::default());
    let connector = daemon.connector();
    let mut c = MetricsClient::new(connector.connect());

    // Not hello'ed yet.
    c.post(&Request::Stats).unwrap();
    daemon.pump();
    match c.take().unwrap() {
        Response::Err { code, .. } => assert_eq!(code, metricsd::wire::errcode::NOT_HELLOED),
        other => panic!("{other:?}"),
    }
    // Wrong protocol version.
    c.post(&Request::Hello { proto: 999 }).unwrap();
    daemon.pump();
    match c.take().unwrap() {
        Response::Err { code, .. } => assert_eq!(code, metricsd::wire::errcode::BAD_PROTO),
        other => panic!("{other:?}"),
    }
    c.post(&Request::Hello {
        proto: metricsd::PROTO_VERSION,
    })
    .unwrap();
    daemon.pump();
    assert!(matches!(c.take().unwrap(), Response::Welcome { .. }));

    // Garbage bytes become a BAD_FRAME error, not a hang or a panic.
    let pipe_garbage: Vec<u8> = vec![3, 0, 0, 0, 0xff, 1, 2];
    use metricsd::Transport;
    let mut t = connector.connect();
    // (fresh pipe: garbage on the main session would be fine too, but
    // this also proves un-hello'ed sessions get frame errors first)
    t.send(pipe_garbage).unwrap();
    daemon.pump();
    let frame = t.recv(Duration::from_secs(1)).expect("error reply");
    match Response::decode(&frame).unwrap() {
        Response::Err { code, .. } => assert_eq!(code, metricsd::wire::errcode::BAD_FRAME),
        other => panic!("{other:?}"),
    }

    // Unknown subscription.
    c.post(&Request::Read {
        sub_id: 404,
        submit_ns: 0,
    })
    .unwrap();
    // Empty CPU mask.
    c.post(&Request::Subscribe {
        cpu_mask: 0,
        metrics: metrics::INSTRUCTIONS,
    })
    .unwrap();
    daemon.pump();
    match c.take().unwrap() {
        Response::Err { code, .. } => assert_eq!(code, metricsd::wire::errcode::NO_SUCH_SUB),
        other => panic!("{other:?}"),
    }
    match c.take().unwrap() {
        Response::Err { code, .. } => assert_eq!(code, metricsd::wire::errcode::EMPTY_MASK),
        other => panic!("{other:?}"),
    }
}

#[test]
fn tcp_end_to_end() {
    let daemon = Daemon::new(boot(None), DaemonConfig::default());
    let listener = metricsd::tcp::Listener::spawn(daemon.connector(), "127.0.0.1:0").expect("bind");
    let addr = listener.addr();
    let (_connector, stop, handle) = background_daemon(daemon);

    let mut c =
        MetricsClient::new(metricsd::tcp::TcpTransport::connect(addr).expect("connect loopback"));
    c.hello().expect("hello over tcp");
    assert_eq!(c.n_cpus, 24);
    let hw = c.hardware_info().expect("hardware info over tcp");
    assert!(jsonw::validate(&hw));
    let sub = c
        .subscribe(0b11, metrics::INSTRUCTIONS | metrics::ENERGY_PKG)
        .expect("subscribe");
    std::thread::sleep(Duration::from_millis(20));
    match c.read(sub).expect("read over tcp") {
        Response::Counters { values, .. } => {
            assert_eq!(values.len(), 2);
            assert!(values.iter().any(|v| v.metric == metrics::INSTRUCTIONS));
        }
        other => panic!("{other:?}"),
    }
    let stats = c.stats().expect("stats over tcp");
    assert!(stats.pumps > 0);
    c.close().expect("close over tcp");

    stop.store(true, Ordering::Relaxed);
    handle.join().unwrap();
}

#[test]
fn shard_count_does_not_change_served_counts() {
    // Mini in-test rerun of the loadgen invariant: identical kernels,
    // 1 vs 4 shards, same lockstep schedule → identical final values.
    let run = |shards: usize| -> Vec<Vec<(u8, u64)>> {
        let kernel = boot(Some(
            FaultPlan::new(11)
                .at(
                    40_000_000,
                    FaultKind::CpuOffline {
                        cpu: CpuId(17),
                        down_ns: Some(60_000_000),
                    },
                )
                .at(60_000_000, FaultKind::SysfsFlaky { dur_ns: 30_000_000 }),
        ));
        let mut daemon = Daemon::new(
            kernel,
            DaemonConfig {
                shards,
                ..DaemonConfig::default()
            },
        );
        let connector = daemon.connector();
        let mut clients: Vec<_> = (0..24)
            .map(|_| MetricsClient::new(connector.connect()))
            .collect();
        for c in clients.iter_mut() {
            c.post(&Request::Hello {
                proto: metricsd::PROTO_VERSION,
            })
            .unwrap();
        }
        daemon.pump();
        for c in clients.iter_mut() {
            c.take().unwrap();
        }
        let mut subs = vec![0u32; clients.len()];
        for (i, c) in clients.iter_mut().enumerate() {
            c.post(&Request::Subscribe {
                cpu_mask: (1 << (i % 24)) | (1 << 17),
                metrics: 1 + (i % 7) as u8,
            })
            .unwrap();
        }
        daemon.pump();
        for (i, c) in clients.iter_mut().enumerate() {
            subs[i] = match c.take().unwrap() {
                Response::Subscribed { sub_id, .. } => sub_id,
                other => panic!("{other:?}"),
            };
        }
        for _ in 0..8 {
            daemon.pump();
        }
        for (i, c) in clients.iter_mut().enumerate() {
            c.post(&Request::Read {
                sub_id: subs[i],
                submit_ns: 0,
            })
            .unwrap();
        }
        daemon.pump();
        clients
            .iter_mut()
            .map(|c| match c.take().unwrap() {
                Response::Counters { values, .. } => {
                    values.into_iter().map(|v| (v.metric, v.value)).collect()
                }
                other => panic!("{other:?}"),
            })
            .collect()
    };
    let serial = run(1);
    let sharded = run(4);
    assert_eq!(
        serial, sharded,
        "counter values identical across shard counts"
    );
    assert!(
        serial
            .iter()
            .flat_map(|v| v.iter())
            .any(|(_, value)| *value > 0),
        "the comparison is not vacuous"
    );
}

/// Send one RPC through the checksummed WithSeq envelope, pump, and
/// return the enveloped reply (skipping any interleaved pushes).
fn seq_rpc(t: &mut ClientPipe, daemon: &mut Daemon, seq: u32, req: &Request) -> Response {
    t.send(Request::with_seq(seq, req).encode()).unwrap();
    daemon.pump();
    recv_seq(t, seq)
}

fn recv_seq(t: &mut ClientPipe, seq: u32) -> Response {
    loop {
        let frame = t.recv(Duration::from_secs(1)).expect("reply");
        match Response::decode(&frame).unwrap() {
            Response::SeqReply { seq: s, crc, inner } => {
                assert_eq!(s, seq, "reply matches the in-flight seq");
                assert_eq!(crc, fnv64(&inner), "envelope checksum holds");
                return Response::decode(&inner).unwrap();
            }
            _ => continue, // stream pushes, eviction notices, …
        }
    }
}

fn self_counter(daemon: &Daemon, name: &str) -> u64 {
    daemon
        .self_metrics()
        .counters()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| v)
        .unwrap_or(0)
}

#[test]
fn dead_transport_parks_and_resume_restores_the_session() {
    let mut daemon = Daemon::new(boot(None), DaemonConfig::default());
    let connector = daemon.connector();
    let mut t = connector.connect();

    let token = match seq_rpc(
        &mut t,
        &mut daemon,
        1,
        &Request::Hello {
            proto: metricsd::PROTO_VERSION,
        },
    ) {
        Response::Welcome { session_token, .. } => session_token,
        other => panic!("{other:?}"),
    };
    let sub_id = match seq_rpc(
        &mut t,
        &mut daemon,
        2,
        &Request::Subscribe {
            cpu_mask: 0b11,
            metrics: metrics::INSTRUCTIONS,
        },
    ) {
        Response::Subscribed { sub_id, .. } => sub_id,
        other => panic!("{other:?}"),
    };
    let last_tick = match seq_rpc(
        &mut t,
        &mut daemon,
        3,
        &Request::Read {
            sub_id,
            submit_ns: 0,
        },
    ) {
        Response::Counters { tick, quality, .. } => {
            assert_eq!(quality, 0, "healthy read before the loss");
            tick
        }
        other => panic!("{other:?}"),
    };

    // Unclean death: no Close, the transport just disappears. The next
    // pump reaps the session into the parked table instead of dropping
    // its subscriptions.
    t.shutdown();
    daemon.pump();
    assert_eq!(daemon.parked_count(), 1, "dead session parked, not lost");
    daemon.pump();

    let mut t2 = connector.connect();
    match seq_rpc(
        &mut t2,
        &mut daemon,
        4,
        &Request::Resume {
            session_token: token,
            last_tick,
        },
    ) {
        Response::Resumed {
            session_token,
            gap_pumps,
            cur_tick,
            ..
        } => {
            assert_eq!(
                session_token, token,
                "the token survives so repeated deaths keep resuming"
            );
            assert!(gap_pumps >= 1, "the missed window is explicit");
            assert!(cur_tick > last_tick);
        }
        other => panic!("{other:?}"),
    }
    assert_eq!(daemon.parked_count(), 0);

    // The subscription survived, but the gap is not silent: reads are
    // Scaled until the client re-baselines.
    match seq_rpc(
        &mut t2,
        &mut daemon,
        5,
        &Request::Read {
            sub_id,
            submit_ns: 0,
        },
    ) {
        Response::Counters { quality, .. } => {
            assert_eq!(quality, 1, "resumed subscription reads as Scaled")
        }
        other => panic!("{other:?}"),
    }
    assert!(matches!(
        seq_rpc(&mut t2, &mut daemon, 6, &Request::ResetSub { sub_id }),
        Response::Subscribed { .. }
    ));
    match seq_rpc(
        &mut t2,
        &mut daemon,
        7,
        &Request::Read {
            sub_id,
            submit_ns: 0,
        },
    ) {
        Response::Counters { quality, .. } => {
            assert_eq!(quality, 0, "re-baselined reads are Ok again")
        }
        other => panic!("{other:?}"),
    }

    daemon.pump();
    assert_eq!(self_counter(&daemon, "conn_parks"), 1);
    assert_eq!(self_counter(&daemon, "sessions_resumed"), 1);
}

#[test]
fn reply_cache_dedups_reissues_even_across_a_resume() {
    let mut daemon = Daemon::new(boot(None), DaemonConfig::default());
    let connector = daemon.connector();
    let mut t = connector.connect();

    let token = match seq_rpc(
        &mut t,
        &mut daemon,
        1,
        &Request::Hello {
            proto: metricsd::PROTO_VERSION,
        },
    ) {
        Response::Welcome { session_token, .. } => session_token,
        other => panic!("{other:?}"),
    };

    // The same Subscribe frame twice (a paranoid client reissuing into
    // a slow link): one application, two identical replies.
    let sub_frame = Request::with_seq(
        2,
        &Request::Subscribe {
            cpu_mask: 1,
            metrics: metrics::CYCLES,
        },
    )
    .encode();
    t.send(sub_frame.clone()).unwrap();
    t.send(sub_frame.clone()).unwrap();
    daemon.pump();
    let first = recv_seq(&mut t, 2);
    let second = recv_seq(&mut t, 2);
    assert_eq!(first, second, "reissue served from the reply cache");
    let sub_id = match first {
        Response::Subscribed { sub_id, .. } => sub_id,
        other => panic!("{other:?}"),
    };

    // Kill the transport and resume: the reply cache is part of the
    // parked state, so a reissue from before the death still dedups
    // instead of double-subscribing.
    t.shutdown();
    daemon.pump();
    let mut t2 = connector.connect();
    assert!(matches!(
        seq_rpc(
            &mut t2,
            &mut daemon,
            3,
            &Request::Resume {
                session_token: token,
                last_tick: 0,
            },
        ),
        Response::Resumed { .. }
    ));
    t2.send(sub_frame).unwrap();
    daemon.pump();
    match recv_seq(&mut t2, 2) {
        Response::Subscribed { sub_id: again, .. } => {
            assert_eq!(again, sub_id, "pre-death reissue dedups after resume")
        }
        other => panic!("{other:?}"),
    }

    daemon.pump();
    assert_eq!(self_counter(&daemon, "dup_reissues"), 2);
}

#[test]
fn overload_sheds_typed_replies_and_never_evicts() {
    let mut daemon = Daemon::new(
        boot(None),
        DaemonConfig {
            shards: 1,
            shard_budget_per_pump: 1,
            retry_after_pumps: 3,
            ..DaemonConfig::default()
        },
    );
    let connector = daemon.connector();
    let mut t = connector.connect();

    assert!(matches!(
        seq_rpc(
            &mut t,
            &mut daemon,
            1,
            &Request::Hello {
                proto: metricsd::PROTO_VERSION,
            },
        ),
        Response::Welcome { .. }
    ));
    let sub_id = match seq_rpc(
        &mut t,
        &mut daemon,
        2,
        &Request::Subscribe {
            cpu_mask: 1,
            metrics: metrics::ALL,
        },
    ) {
        Response::Subscribed { sub_id, .. } => sub_id,
        other => panic!("{other:?}"),
    };

    // Three reads into a budget of one: one served through the
    // envelope, two shed with a *plain* typed Overloaded (the shed is
    // pre-decode, so it cannot echo a seq — and the client holds one
    // RPC in flight, so attribution is unambiguous).
    for seq in [3, 4, 5] {
        t.send(
            Request::with_seq(
                seq,
                &Request::Read {
                    sub_id,
                    submit_ns: 0,
                },
            )
            .encode(),
        )
        .unwrap();
    }
    daemon.pump();
    let mut served = 0;
    let mut shed = 0;
    while let Some(frame) = t.try_recv() {
        match Response::decode(&frame).unwrap() {
            Response::SeqReply { .. } => served += 1,
            Response::Overloaded { retry_after_pumps } => {
                assert_eq!(retry_after_pumps, 3, "the backoff hint rides along");
                shed += 1;
            }
            other => panic!("{other:?}"),
        }
    }
    assert_eq!((served, shed), (1, 2));

    // Shed requests were never applied, so reissuing them is safe and
    // eventually drains: budget one per pump.
    for seq in [4, 5] {
        assert!(matches!(
            seq_rpc(
                &mut t,
                &mut daemon,
                seq,
                &Request::Read {
                    sub_id,
                    submit_ns: 0,
                },
            ),
            Response::Counters { .. }
        ));
    }

    daemon.pump();
    assert_eq!(self_counter(&daemon, "reqs_shed"), 2);
    assert_eq!(daemon.stats().evictions, 0, "overload never evicts");
    assert_eq!(daemon.stats().sessions, 1, "the session is still live");
}

#[test]
fn parked_sessions_expire_after_ttl() {
    let mut daemon = Daemon::new(
        boot(None),
        DaemonConfig {
            resume_ttl_pumps: 2,
            ..DaemonConfig::default()
        },
    );
    let connector = daemon.connector();
    let mut t = connector.connect();

    let token = match seq_rpc(
        &mut t,
        &mut daemon,
        1,
        &Request::Hello {
            proto: metricsd::PROTO_VERSION,
        },
    ) {
        Response::Welcome { session_token, .. } => session_token,
        other => panic!("{other:?}"),
    };
    t.shutdown();
    daemon.pump();
    assert_eq!(daemon.parked_count(), 1);

    // Sit past the TTL; the parked state is reaped for good.
    for _ in 0..4 {
        daemon.pump_quiescent();
    }
    assert_eq!(daemon.parked_count(), 0, "stale parked session reaped");
    assert_eq!(self_counter(&daemon, "parked_reaped"), 1);

    let mut t2 = connector.connect();
    match seq_rpc(
        &mut t2,
        &mut daemon,
        2,
        &Request::Resume {
            session_token: token,
            last_tick: 0,
        },
    ) {
        Response::Err { code, .. } => {
            assert_eq!(code, errcode::NO_SUCH_TOKEN, "expiry is a typed refusal")
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn delta_stream_pushes_keyframe_then_deltas_and_mirror_tracks() {
    use metricsd::{MirrorOutcome, StreamMirror};

    let mut daemon = Daemon::new(boot(None), DaemonConfig::default());
    let connector = daemon.connector();
    let mut t = connector.connect();

    t.send(
        Request::Hello {
            proto: metricsd::PROTO_VERSION,
        }
        .encode(),
    )
    .unwrap();
    daemon.pump();
    let frame = t.recv(Duration::from_secs(1)).expect("welcome");
    assert!(matches!(
        Response::decode(&frame).unwrap(),
        Response::Welcome { .. }
    ));

    t.send(Request::StreamDeltas { every_pumps: 1 }.encode())
        .unwrap();
    daemon.pump();
    let frame = t.recv(Duration::from_secs(1)).expect("stream ack");
    assert!(matches!(
        Response::decode(&frame).unwrap(),
        Response::Subscribed { .. }
    ));

    // Every subsequent pump pushes exactly one stream frame: a keyframe
    // first (no base yet), bit-exact deltas afterwards.
    let mut mirror = StreamMirror::new();
    let mut last_snap = None;
    for _ in 0..6 {
        last_snap = Some(daemon.pump());
        while let Some(frame) = t.try_recv() {
            let resp = Response::decode(&frame).unwrap();
            match mirror.apply(&resp) {
                MirrorOutcome::Applied => {}
                MirrorOutcome::NeedKeyframe => panic!("healthy stream desynced: {resp:?}"),
                MirrorOutcome::NotStream => panic!("unexpected non-stream push: {resp:?}"),
            }
        }
    }
    let snap = last_snap.unwrap();
    assert!(mirror.synced, "mirror synced after healthy stream");
    assert_eq!(mirror.keyframes, 1, "exactly one keyframe to bootstrap");
    assert_eq!(mirror.deltas, 5, "every later pump arrived as a delta");
    assert_eq!(mirror.desyncs, 0);
    assert_eq!(mirror.tick, snap.tick, "mirror caught up to the daemon");
    assert_eq!(mirror.time_ns, snap.time_ns);
    assert_eq!(mirror.energy_uj, snap.energy_pkg_uj);
    let want: Vec<(u64, u64)> = snap
        .cpus
        .iter()
        .map(|c| (c.instructions, c.cycles))
        .collect();
    assert_eq!(mirror.cpus, want, "per-CPU counters reconstructed exactly");

    // A client nack (AckTick 0) forces the next push back to a keyframe.
    t.send(Request::AckTick { tick: 0 }.encode()).unwrap();
    daemon.pump();
    daemon.pump();
    let mut saw_keyframe = false;
    while let Some(frame) = t.try_recv() {
        let resp = Response::decode(&frame).unwrap();
        if matches!(resp, Response::TickKeyframe { .. }) {
            saw_keyframe = true;
        }
        match mirror.apply(&resp) {
            MirrorOutcome::Applied | MirrorOutcome::NotStream => {}
            MirrorOutcome::NeedKeyframe => panic!("nack recovery desynced: {resp:?}"),
        }
    }
    assert!(saw_keyframe, "nack forced a fresh keyframe");
    assert!(mirror.synced);
    assert_eq!(mirror.desyncs, 0);
}

#[test]
fn forced_worker_pool_matches_inline_serving_bit_for_bit() {
    // The worker pool is a parallelism domain only: forcing it on (even
    // on a single-core host) must not change a single served value
    // relative to inline serving, for any shard count.
    let run = |shards: usize, workers: usize| -> Vec<Vec<(u8, u64)>> {
        let kernel = boot(None);
        let mut daemon = Daemon::new(
            kernel,
            DaemonConfig {
                shards,
                workers,
                ..DaemonConfig::default()
            },
        );
        if workers > 0 {
            assert_eq!(daemon.workers(), workers.min(shards), "pool forced on");
        }
        let connector = daemon.connector();
        let mut clients: Vec<_> = (0..24)
            .map(|_| MetricsClient::new(connector.connect()))
            .collect();
        for c in clients.iter_mut() {
            c.post(&Request::Hello {
                proto: metricsd::PROTO_VERSION,
            })
            .unwrap();
        }
        daemon.pump();
        for c in clients.iter_mut() {
            c.take().unwrap();
        }
        let mut subs = vec![0u32; clients.len()];
        for (i, c) in clients.iter_mut().enumerate() {
            c.post(&Request::Subscribe {
                cpu_mask: 1 << (i % 24),
                metrics: 1 + (i % 7) as u8,
            })
            .unwrap();
        }
        daemon.pump();
        for (i, c) in clients.iter_mut().enumerate() {
            subs[i] = match c.take().unwrap() {
                Response::Subscribed { sub_id, .. } => sub_id,
                other => panic!("{other:?}"),
            };
        }
        for _ in 0..6 {
            daemon.pump();
        }
        for (i, c) in clients.iter_mut().enumerate() {
            c.post(&Request::Read {
                sub_id: subs[i],
                submit_ns: 0,
            })
            .unwrap();
        }
        daemon.pump();
        clients
            .iter_mut()
            .map(|c| match c.take().unwrap() {
                Response::Counters { values, .. } => {
                    values.into_iter().map(|v| (v.metric, v.value)).collect()
                }
                other => panic!("{other:?}"),
            })
            .collect()
    };
    let inline = run(4, 0);
    let pooled = run(4, 2);
    let pooled_wide = run(8, 3);
    assert_eq!(inline, pooled, "worker pool is invisible in served data");
    assert_eq!(
        inline, pooled_wide,
        "shard/worker mix is invisible in served data"
    );
}
