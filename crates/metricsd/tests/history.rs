//! History-store determinism: the rollup ring (and therefore every
//! `QueryRange` answer and SLO verdict derived from it) must be a pure
//! function of the seeded workload — bit-identical across execution
//! mode (Serial vs Parallel), macro-tick coalescing (Force vs Off) and
//! shard geometry (1/4/8), and unperturbed by turning tracing on.
//!
//! The one deliberate knob is `serve_ns: 0`: with a zero queueing term
//! a read's latency depends only on snapshot age, never on its position
//! in a shard's queue, which is what makes the latency histogram (and
//! every percentile in it) shard-invariant.

use metricsd::wire::{agg, series, Request, Response};
use metricsd::{Daemon, DaemonConfig, MetricsClient, SloSpec};
use simcpu::machine::MachineSpec;
use simcpu::phase::Phase;
use simcpu::types::CpuMask;
use simos::kernel::{ExecMode, Kernel, KernelConfig, KernelHandle, MacroTicks};
use simos::task::{Op, ScriptedProgram};
use simtrace::TraceConfig;

fn boot(exec_mode: ExecMode, macro_ticks: MacroTicks, traced: bool) -> KernelHandle {
    let kernel = Kernel::boot_handle(
        MachineSpec::raptor_lake_i7_13700(),
        KernelConfig {
            seed: 41,
            exec_mode,
            macro_ticks,
            trace: if traced {
                TraceConfig::enabled_with_cap(1 << 14)
            } else {
                TraceConfig::default()
            },
            ..KernelConfig::default()
        },
    );
    {
        let mut k = kernel.lock();
        for cpu in [0usize, 3, 16, 20] {
            k.spawn(
                &format!("w{cpu}"),
                Box::new(ScriptedProgram::new([
                    Op::Compute(Phase::scalar(u64::MAX / 4)),
                    Op::Exit,
                ])),
                CpuMask::from_cpus([cpu]),
                0,
            );
        }
    }
    kernel
}

struct RunOutcome {
    history_digest: u64,
    /// FNV over the final Counters reply (kernel-truth cross-check).
    counters_digest: u64,
    wire_read_sum: u64,
    wire_p99: u64,
    breaches: u64,
}

/// One deterministic session: subscribe, read every pump for `pumps`
/// pumps, then interrogate the history over the wire and digest it.
fn run(exec_mode: ExecMode, macro_ticks: MacroTicks, shards: usize, traced: bool) -> RunOutcome {
    let trace_cfg = if traced {
        TraceConfig::enabled_with_cap(1 << 14)
    } else {
        TraceConfig::default()
    };
    let mut daemon = Daemon::new(
        boot(exec_mode, macro_ticks, traced),
        DaemonConfig {
            shards,
            serve_ns: 0,
            slos: vec![
                SloSpec::p99_latency_ns(1, 4),
                SloSpec::evictions_per_window(1_000_000, 4),
            ],
            ..DaemonConfig::default()
        },
    );
    let connector = daemon.connector();
    let mut c = MetricsClient::new(connector.connect());
    if traced {
        c.enable_tracing(&trace_cfg, 2);
    }
    c.post(&Request::Hello {
        proto: metricsd::PROTO_VERSION,
    })
    .expect("post hello");
    daemon.pump();
    while let Ok(Some(_)) = c.try_take() {}
    c.post(&Request::Subscribe {
        cpu_mask: u64::MAX,
        metrics: 0xff,
    })
    .expect("post subscribe");
    daemon.pump();
    let mut sub_id = None;
    while let Ok(Some(resp)) = c.try_take() {
        if let Response::Subscribed { sub_id: s, .. } = resp {
            sub_id = Some(s);
        }
    }
    let sub_id = sub_id.expect("subscribed");

    let mut counters_digest = 0xcbf29ce484222325u64;
    let fnv = |h: &mut u64, bytes: &[u8]| {
        for &b in bytes {
            *h ^= b as u64;
            *h = h.wrapping_mul(0x100000001b3);
        }
    };
    let mut reads = 0u64;
    for _ in 0..24 {
        if traced {
            c.post_traced(&Request::Read {
                sub_id,
                submit_ns: 0,
            })
            .expect("post traced read");
        } else {
            c.post(&Request::Read {
                sub_id,
                submit_ns: 0,
            })
            .expect("post read");
        }
        daemon.pump();
        while let Ok(Some(resp)) = c.try_take() {
            if let Response::Counters { values, .. } = resp {
                reads += 1;
                counters_digest = 0xcbf29ce484222325;
                for v in &values {
                    fnv(&mut counters_digest, &[v.metric]);
                    fnv(&mut counters_digest, &v.value.to_le_bytes());
                }
            }
        }
    }
    assert_eq!(reads, 24, "every read answered");

    // One settle pump so the last rollup (and its SLO verdicts) is in
    // the ring before we interrogate it. Lockstep pumping, so queries
    // go post → pump → drain rather than through the blocking rpc().
    daemon.pump();
    c.post(&Request::QueryRange {
        series: series::READS,
        agg: agg::SUM,
        start_tick: 0,
        end_tick: u64::MAX,
        max_points: 64,
    })
    .expect("post range sum");
    c.post(&Request::QueryRange {
        series: series::LATENCY_NS,
        agg: agg::P99,
        start_tick: 0,
        end_tick: u64::MAX,
        max_points: 1,
    })
    .expect("post range p99");
    c.post(&Request::GetHealth).expect("post health");
    daemon.pump();
    let mut wire_read_sum = 0u64;
    let mut wire_p99 = 0u64;
    let mut breaches = 0u64;
    let mut replies = 0;
    while let Ok(Some(resp)) = c.try_take() {
        match resp {
            Response::RangeReply { points, .. } => {
                if replies == 0 {
                    wire_read_sum = points.iter().map(|p| p.1).sum::<u64>();
                } else {
                    wire_p99 = points.first().map(|p| p.1).unwrap_or(0);
                }
                replies += 1;
            }
            Response::Health { slos, .. } => {
                breaches = slos.iter().map(|s| s.breaches).sum();
                replies += 1;
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(replies, 3, "sum + p99 + health all answered");

    RunOutcome {
        history_digest: daemon.history().read().digest(),
        counters_digest,
        wire_read_sum,
        wire_p99,
        breaches,
    }
}

/// The full matrix: Serial/Parallel × MacroTicks Force/Off × 1/4/8
/// shards must produce ONE history digest, one counters digest, one
/// p99 and one breach count.
#[test]
fn history_digest_invariant_across_exec_mode_macroticks_and_shards() {
    let modes = [ExecMode::Serial, ExecMode::Parallel { threads: 0 }];
    let coalescing = [MacroTicks::Force, MacroTicks::Off];
    let shard_counts = [1usize, 4, 8];
    let mut golden: Option<RunOutcome> = None;
    for mode in modes {
        for mt in coalescing {
            for shards in shard_counts {
                let got = run(mode, mt, shards, false);
                assert_eq!(got.wire_read_sum, 24, "{mode:?}/{mt:?}/{shards}");
                assert!(got.wire_p99 > 0, "{mode:?}/{mt:?}/{shards}");
                assert!(got.breaches >= 1, "impossible p99 SLO must breach");
                match &golden {
                    None => golden = Some(got),
                    Some(g) => {
                        assert_eq!(
                            got.history_digest, g.history_digest,
                            "history digest drifted at {mode:?}/{mt:?}/{shards} shards"
                        );
                        assert_eq!(
                            got.counters_digest, g.counters_digest,
                            "counters drifted at {mode:?}/{mt:?}/{shards} shards"
                        );
                        assert_eq!(got.wire_p99, g.wire_p99);
                        assert_eq!(got.breaches, g.breaches);
                    }
                }
            }
        }
    }
    assert_ne!(golden.unwrap().history_digest, 0);
}

/// The Traced envelope is outermost-only: a Traced frame wrapping
/// another Traced frame is answered with a typed BAD_FRAME error, not
/// recursion, not a dropped session.
#[test]
fn nested_traced_envelope_is_a_typed_error() {
    use metricsd::wire::{errcode, TraceCtx};
    let mut daemon = Daemon::new(
        boot(ExecMode::Serial, MacroTicks::Off, false),
        DaemonConfig::default(),
    );
    let connector = daemon.connector();
    let mut c = MetricsClient::new(connector.connect());
    let ctx = TraceCtx {
        trace_id: 2,
        parent_span: 0,
        sampled: true,
    };
    let inner = Request::traced(
        ctx,
        &Request::Hello {
            proto: metricsd::PROTO_VERSION,
        },
    );
    c.post(&Request::Traced {
        ctx,
        inner: inner.encode(),
    })
    .expect("post nested");
    daemon.pump();
    match c.try_take() {
        Ok(Some(Response::Err { code, .. })) => assert_eq!(code, errcode::BAD_FRAME),
        other => panic!("wanted BAD_FRAME, got {other:?}"),
    }
}

/// Turning the flight recorder + per-RPC sampling on must not move a
/// single counter or latency bit. (The history digest itself differs —
/// breach exemplars legitimately record trace ids — so the invariant
/// is counters, read totals, p99 and breach count.)
#[test]
fn tracing_does_not_perturb_counters_or_latency() {
    let base = run(ExecMode::Serial, MacroTicks::Force, 4, false);
    let traced = run(ExecMode::Serial, MacroTicks::Force, 4, true);
    assert_eq!(traced.counters_digest, base.counters_digest);
    assert_eq!(traced.wire_read_sum, base.wire_read_sum);
    assert_eq!(traced.wire_p99, base.wire_p99);
    assert_eq!(traced.breaches, base.breaches);
}
