//! Flight-recorder coverage for the chaos-recovery event kinds, and
//! ledger cross-checks between the three independent observers of a
//! chaotic run: the client's stats, the client/daemon trace rings, and
//! the daemon's self-metrics registry. Events and counters come from
//! the same code paths, so within one observer the counts must agree
//! *exactly*; across the loss-boundary (client vs daemon under chaos)
//! the daemon may see recoveries the client never learned of — never
//! the reverse.

use metricsd::queue::ClientPipe;
use metricsd::wire::{metrics, Request, Response};
use metricsd::{
    ChaosConfig, ChaosTransport, Daemon, DaemonConfig, ResilientClient, ResilientConfig,
};
use simcpu::machine::MachineSpec;
use simos::kernel::{Kernel, KernelConfig, KernelHandle};
use simtrace::{EventKind, TraceConfig, TraceSink, Track};

/// Kernel with tracing on, so the daemon and its shards get live
/// flight recorders.
fn boot_traced() -> KernelHandle {
    Kernel::boot_handle(
        MachineSpec::raptor_lake_i7_13700(),
        KernelConfig {
            seed: 11,
            trace: TraceConfig::enabled_with_cap(4096),
            ..KernelConfig::default()
        },
    )
}

fn count_kind(tracks: &[Track], track_prefix: &str, kind: EventKind) -> u64 {
    tracks
        .iter()
        .filter(|t| t.name.starts_with(track_prefix))
        .flat_map(|t| t.events.iter())
        .filter(|e| e.kind == kind)
        .count() as u64
}

fn self_counter(daemon: &Daemon, name: &str) -> u64 {
    daemon
        .self_metrics()
        .counters()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| v)
        .unwrap_or(0)
}

/// Drive one resilient client through a subscribe and a fixed number
/// of lockstep read rounds, panicking on anything except success.
fn drive_reads<T, F>(c: &mut ResilientClient<T, F>, daemon: &mut Daemon, rounds: u64)
where
    T: metricsd::Transport,
    F: FnMut() -> Option<T>,
{
    assert!(c.begin(&Request::Subscribe {
        cpu_mask: 0b101,
        metrics: metrics::INSTRUCTIONS | metrics::CYCLES,
    }));
    let mut sub_id = 0;
    let mut pending = true;
    for round in 0..rounds {
        if !pending && c.is_idle() && round % 2 == 0 {
            assert!(c.begin(&Request::Read {
                sub_id,
                submit_ns: 0,
            }));
            pending = true;
        }
        c.step();
        assert!(!c.take_session_lost(), "session survives the whole run");
        if let Some(done) = c.take_done() {
            match done.expect("rpc succeeds") {
                Response::Subscribed { sub_id: id, .. } => sub_id = id,
                Response::Counters { .. } => {}
                other => panic!("unexpected reply {other:?}"),
            }
            pending = false;
        }
        daemon.pump();
    }
    // Ride out any in-flight RPC so every ledger is settled.
    let mut settle = 0;
    while !c.is_idle() {
        settle += 1;
        assert!(settle < 2000, "client settled");
        c.step();
        if let Some(done) = c.take_done() {
            done.expect("rpc succeeds");
        }
        daemon.pump_quiescent();
    }
    // One more pump absorbs the shards' self-metrics.
    daemon.pump_quiescent();
}

/// Chaos run (reset-heavy link): ConnReset/ClientRetry land in the
/// client's ring, SessionResume/ConnReset(park) in the daemon's, and
/// every ring agrees exactly with its sibling counters.
#[test]
fn chaos_recovery_events_land_in_both_flight_recorders() {
    let mut daemon = Daemon::new(boot_traced(), DaemonConfig::default());
    let connector = daemon.connector();
    let chaos = ChaosConfig::preset("reset").unwrap();
    let mut attempt = 0u64;
    let mut c = ResilientClient::new(
        move || {
            attempt += 1;
            Some(ChaosTransport::new(
                connector.connect(),
                chaos.with_seed(0xC0FFEE ^ attempt.wrapping_mul(0x9e3779b97f4a7c15)),
            ))
        },
        ResilientConfig {
            seed: 5,
            ..ResilientConfig::default()
        },
    );
    c.set_trace(TraceSink::new(&TraceConfig::enabled_with_cap(4096)));

    drive_reads(&mut c, &mut daemon, 160);
    let stats = c.stats();
    assert!(stats.conn_resets > 0, "the reset preset actually reset");
    assert!(stats.resumes > 0, "at least one park → resume cycle ran");

    // Client ring ↔ client stats: same code path, exact agreement.
    let client_tracks = [Track::new("client", c.trace().events())];
    assert_eq!(
        count_kind(&client_tracks, "client", EventKind::ConnReset),
        stats.conn_resets
    );
    assert_eq!(
        count_kind(&client_tracks, "client", EventKind::ClientRetry),
        stats.retries
    );

    // Daemon rings ↔ daemon registry: parks are recorded on the daemon
    // track (reap time), resumes on the serving shards' tracks.
    let tracks = daemon.trace_tracks();
    assert_eq!(
        count_kind(&tracks, "daemon", EventKind::ConnReset),
        self_counter(&daemon, "conn_parks")
    );
    assert_eq!(
        count_kind(&tracks, "shard", EventKind::SessionResume),
        self_counter(&daemon, "sessions_resumed")
    );

    // Across the loss boundary the daemon leads, never trails: a
    // Resumed reply can be lost in flight, a resume cannot happen
    // without the daemon serving it.
    assert!(self_counter(&daemon, "sessions_resumed") >= stats.resumes);
    assert!(self_counter(&daemon, "conn_parks") >= stats.resumes);
}

/// Overload run on a loss-free link: every shed is traced, counted,
/// and observed — three ledgers, one number.
#[test]
fn load_sheds_are_traced_and_all_ledgers_agree() {
    let mut daemon = Daemon::new(
        boot_traced(),
        DaemonConfig {
            shards: 1,
            shard_budget_per_pump: 1,
            ..DaemonConfig::default()
        },
    );
    let connector = daemon.connector();
    let mut clients: Vec<ResilientClient<ClientPipe, _>> = (0..3)
        .map(|i| {
            let conn = connector.clone();
            ResilientClient::new(
                move || Some(conn.connect()),
                ResilientConfig {
                    seed: i,
                    ..ResilientConfig::default()
                },
            )
        })
        .collect();

    for c in clients.iter_mut() {
        assert!(c.begin(&Request::Subscribe {
            cpu_mask: 1,
            metrics: metrics::CYCLES,
        }));
    }
    let mut sub_ids = vec![0u32; clients.len()];
    for round in 0..120u64 {
        for (i, c) in clients.iter_mut().enumerate() {
            if c.is_idle() && sub_ids[i] != 0 {
                assert!(c.begin(&Request::Read {
                    sub_id: sub_ids[i],
                    submit_ns: 0,
                }));
            }
            c.step();
            if let Some(done) = c.take_done() {
                if let Response::Subscribed { sub_id, .. } = done.expect("rpc succeeds") {
                    sub_ids[i] = sub_id;
                }
            }
        }
        let _ = round;
        daemon.pump();
    }
    let mut settle = 0;
    while clients.iter().any(|c| !c.is_idle()) {
        settle += 1;
        assert!(settle < 2000, "fleet settled");
        for c in clients.iter_mut() {
            c.step();
            if let Some(done) = c.take_done() {
                done.expect("rpc succeeds");
            }
        }
        daemon.pump_quiescent();
    }
    daemon.pump_quiescent();

    let client_overloads: u64 = clients.iter().map(|c| c.stats().overloads).sum();
    let shed_counter = self_counter(&daemon, "reqs_shed");
    let shed_events = count_kind(&daemon.trace_tracks(), "shard", EventKind::LoadShed);
    assert!(shed_counter > 0, "budget 1 under 3 eager clients must shed");
    assert_eq!(shed_counter, shed_events, "registry ↔ trace ring");
    assert_eq!(
        shed_counter, client_overloads,
        "loss-free link: daemon sheds == client-observed overloads"
    );
    assert_eq!(daemon.stats().evictions, 0, "shedding never evicts");
}
