//! Property tests for the wire codec: every variant round-trips, and
//! hostile frames — truncated, bit-flipped, oversized, or pure byte
//! soup — come back as typed [`metricsd::wire::WireError`]s, never as
//! a panic. This is the codec half of the chaos-hardening story: the
//! fault injector can only be survivable if decode failures are
//! recoverable values.

use metricsd::wire::{
    fnv64, CpuKeyframe, FrameDecoder, HistSummary, MetricValue, Request, Response, SloHealth,
    TraceCtx, MAX_FRAME, PROTO_VERSION,
};
use proptest::prelude::*;

/// Build one of every request variant from a generated value pool.
fn request_from(sel: u8, a: u64, b: u64, c: u32, d: u8, e: u16) -> Request {
    match sel % 18 {
        0 => Request::Hello { proto: e },
        1 => Request::GetHardwareInfo,
        2 => Request::ListPresets,
        3 => Request::Subscribe {
            cpu_mask: a,
            metrics: d,
        },
        4 => Request::Read {
            sub_id: c,
            submit_ns: b,
        },
        5 => Request::ResetSub { sub_id: c },
        6 => Request::LatestSample,
        7 => Request::Stream { every_pumps: c },
        8 => Request::Stats,
        9 => Request::Close,
        10 => Request::GetSelfMetrics,
        11 => Request::Resume {
            session_token: a,
            last_tick: b,
        },
        12 => Request::StreamDeltas { every_pumps: c },
        13 => Request::AckTick { tick: a },
        14 => Request::with_seq(
            c,
            &Request::Read {
                sub_id: c ^ 1,
                submit_ns: b,
            },
        ),
        15 => Request::QueryRange {
            series: d % 10,
            agg: d % 6,
            start_tick: a,
            end_tick: b,
            max_points: c,
        },
        16 => Request::GetHealth,
        _ => Request::traced(
            TraceCtx {
                trace_id: a,
                parent_span: c,
                sampled: d & 1 == 1,
            },
            &Request::with_seq(
                c,
                &Request::Read {
                    sub_id: c,
                    submit_ns: b,
                },
            ),
        ),
    }
}

/// Build one of every response variant from a generated value pool.
#[allow(clippy::too_many_arguments)]
fn response_from(
    sel: u8,
    a: u64,
    b: u64,
    c: u32,
    d: u8,
    e: u16,
    s: String,
    vals: Vec<MetricValue>,
) -> Response {
    match sel % 17 {
        0 => Response::Welcome {
            session_id: a,
            proto: PROTO_VERSION,
            n_cpus: c,
            tick_ns: b,
            session_token: a ^ b,
        },
        1 => Response::HardwareInfo { json: s },
        2 => Response::Presets {
            names: vec![s, "PAPI_TOT_INS".to_string()],
        },
        3 => Response::Subscribed {
            sub_id: c,
            base_tick: b,
        },
        4 => Response::Counters {
            sub_id: c,
            tick: a,
            time_ns: b,
            latency_ns: a ^ b,
            quality: d % 3,
            values: vals,
        },
        5 => Response::Sample {
            tick: a,
            time_ns: b,
            temp_mc: a as i64,
            energy_pkg_uj: b,
            mean_freq_khz: a,
            gap: d & 1 == 1,
        },
        6 => Response::Stats {
            sessions: a,
            reads_served: b,
            evictions: a ^ b,
            pumps: a,
        },
        7 => Response::Err { code: e, msg: s },
        8 => Response::Evicted { reason: s },
        9 => Response::Closed,
        10 => Response::SelfMetrics {
            counters: vec![(s, a)],
            hists: vec![HistSummary {
                name: "read_latency_ns".to_string(),
                count: a,
                min: b,
                max: a | b,
                p50: a,
                p90: b,
                p99: a,
            }],
        },
        11 => Response::Resumed {
            session_id: a,
            session_token: b,
            cur_tick: a ^ b,
            gap_pumps: b,
        },
        12 => Response::TickKeyframe {
            tick: a,
            time_ns: b,
            temp_mc: a as i64,
            energy_uj: b ^ a,
            crc: a.rotate_left(17),
            cpus: vec![
                CpuKeyframe {
                    online: d & 1 == 1,
                    instructions: a,
                    cycles: b,
                },
                CpuKeyframe {
                    online: d & 2 == 2,
                    instructions: u64::MAX - a,
                    cycles: 0,
                },
            ],
        },
        13 => Response::TickDelta {
            base_tick: a,
            tick: a.wrapping_add(1),
            d_time_ns: b,
            temp_mc: b as i64,
            d_energy_uj: a as i64,
            crc: b.rotate_left(33),
            cpu_deltas: vec![(a as i64, -(c as i64)), (i64::MIN, i64::MAX)],
        },
        14 => Response::Overloaded {
            retry_after_pumps: c,
        },
        15 => Response::RangeReply {
            series: d % 10,
            agg: d % 6,
            tier: d % 4,
            count: a,
            min: b.min(a),
            max: b.max(a),
            points: vec![(a, b), (b, a ^ c as u64)],
        },
        _ => Response::Health {
            pumps: a,
            slos: vec![
                SloHealth {
                    kind: d % 3,
                    target: a,
                    window_pumps: c,
                    breaches: b,
                    last_breach_pump: a ^ b,
                    worst: b,
                    exemplar_trace_id: a & !1,
                },
                SloHealth {
                    kind: 2,
                    target: u64::MAX - a,
                    window_pumps: c ^ 1,
                    breaches: 0,
                    last_breach_pump: 0,
                    worst: 0,
                    exemplar_trace_id: 0,
                },
            ],
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every request variant survives encode → decode unchanged.
    #[test]
    fn requests_round_trip(
        sel in 0u8..18,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        c in 0u32..u32::MAX,
        d in 0u8..u8::MAX,
        e in 0u16..u16::MAX,
    ) {
        let req = request_from(sel, a, b, c, d, e);
        let frame = req.encode();
        prop_assert_eq!(Request::decode(&frame).unwrap(), req);
    }

    /// Every response variant survives encode → decode unchanged, and
    /// SeqReply envelopes carry a checksum that matches their payload.
    #[test]
    fn responses_round_trip(
        sel in 0u8..18,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        c in 0u32..u32::MAX,
        d in 0u8..u8::MAX,
        e in 0u16..u16::MAX,
        s in "[ -~]{0,24}",
        vals in proptest::collection::vec(
            (0u8..8, 0u64..u64::MAX).prop_map(|(metric, value)| MetricValue { metric, value }),
            0..6,
        ),
    ) {
        let resp = if sel == 17 {
            Response::seq_reply(c, &response_from(d, a, b, c, d, e, s, vals))
        } else {
            response_from(sel, a, b, c, d, e, s, vals)
        };
        let frame = resp.encode();
        let decoded = Response::decode(&frame).unwrap();
        if let Response::SeqReply { crc, inner, .. } = &decoded {
            prop_assert_eq!(*crc, fnv64(inner));
        }
        prop_assert_eq!(decoded, resp);
    }

    /// A nested Traced envelope still round-trips the *codec* cleanly
    /// (decode is structural; outermost-only is server policy, answered
    /// with a typed BAD_FRAME — see the history integration tests) and
    /// its context stays peekable without recursion.
    #[test]
    fn nested_traced_envelopes_decode_without_recursion(
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        c in 0u32..u32::MAX,
        d in 0u8..u8::MAX,
    ) {
        let ctx = TraceCtx { trace_id: a, parent_span: c, sampled: d & 1 == 1 };
        let inner = Request::traced(ctx, &Request::Read { sub_id: c, submit_ns: b });
        let nested = Request::Traced { ctx, inner: inner.encode() };
        let frame = nested.encode();
        prop_assert_eq!(Request::decode(&frame).unwrap(), nested);
        prop_assert_eq!(TraceCtx::peek(&frame), Some(ctx));
    }

    /// Any strict prefix of a RangeReply or Health frame is a typed
    /// error too — the new observability responses half-decode as
    /// little as every older variant.
    #[test]
    fn truncated_observability_responses_are_typed_errors(
        sel in 15u8..17,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        c in 0u32..u32::MAX,
        d in 0u8..u8::MAX,
        cut in 0.0f64..1.0,
    ) {
        let frame = response_from(sel, a, b, c, d, 1, String::new(), Vec::new()).encode();
        let keep = (frame.len() as f64 * cut) as usize;
        prop_assert!(keep < frame.len());
        prop_assert!(Response::decode(&frame[..keep]).is_err());
    }

    /// Any strict prefix of a valid frame is a typed error: the length
    /// prefix no longer matches, so nothing partial ever half-decodes.
    #[test]
    fn truncated_frames_are_typed_errors(
        sel in 0u8..18,
        a in 0u64..u64::MAX,
        c in 0u32..u32::MAX,
        cut in 0.0f64..1.0,
    ) {
        let frame = request_from(sel, a, a ^ 3, c, 7, 1).encode();
        let keep = (frame.len() as f64 * cut) as usize;
        prop_assert!(keep < frame.len());
        prop_assert!(Request::decode(&frame[..keep]).is_err());
        prop_assert!(Response::decode(&frame[..keep]).is_err());
    }

    /// A single flipped bit anywhere in a valid frame never panics the
    /// decoder — it yields a typed error or another well-formed value
    /// (which is why RPCs ride in checksummed WithSeq envelopes).
    #[test]
    fn bit_flips_never_panic(
        sel in 0u8..18,
        a in 0u64..u64::MAX,
        c in 0u32..u32::MAX,
        pos in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut frame = request_from(sel, a, a ^ 5, c, 3, 2).encode();
        let i = (frame.len() as f64 * pos) as usize % frame.len();
        frame[i] ^= 1 << bit;
        let _ = Request::decode(&frame);
        let _ = Response::decode(&frame);
        // A flip inside a WithSeq payload must not produce a frame
        // whose checksum still validates against a *different* inner.
        if i >= 5 {
            if let Ok(Request::WithSeq { crc, inner, .. }) = Request::decode(&frame) {
                let orig = request_from(sel, a, a ^ 5, c, 3, 2);
                if let Request::WithSeq { inner: orig_inner, .. } = orig {
                    if inner != orig_inner {
                        prop_assert_ne!(crc, fnv64(&inner));
                    }
                }
            }
        }
    }

    /// A length prefix past MAX_FRAME is refused outright, whatever
    /// the buffer behind it claims.
    #[test]
    fn oversized_headers_are_refused(
        over in 1u32..1024,
        tag in 0u8..u8::MAX,
        body in proptest::collection::vec(0u8..u8::MAX, 1..32),
    ) {
        let len = MAX_FRAME as u32 + over;
        let mut frame = len.to_le_bytes().to_vec();
        frame.push(tag);
        frame.extend_from_slice(&body);
        prop_assert!(Request::decode(&frame).is_err());
        prop_assert!(Response::decode(&frame).is_err());
    }

    /// Arbitrary byte soup — any length, any contents — never panics
    /// either decoder.
    #[test]
    fn byte_soup_never_panics(
        body in proptest::collection::vec(0u8..u8::MAX, 0..64),
    ) {
        let _ = Request::decode(&body);
        let _ = Response::decode(&body);
        // Same soup behind a self-consistent length prefix: exercises
        // the per-variant field decoders, not just the header check.
        let mut framed = (body.len() as u32).to_le_bytes().to_vec();
        framed.extend_from_slice(&body);
        let _ = Request::decode(&framed);
        let _ = Response::decode(&framed);
    }

    /// Pipelined decode, part 1: a run of frames chopped at arbitrary
    /// byte boundaries — including mid-prefix and mid-payload splits,
    /// and chunks carrying several whole frames at once — reassembles
    /// to exactly the original frame sequence in order.
    #[test]
    fn frame_decoder_survives_arbitrary_chunking(
        sels in proptest::collection::vec(0u8..18, 1..8),
        a in 0u64..u64::MAX,
        c in 0u32..u32::MAX,
        cuts in proptest::collection::vec(0usize..4096, 0..12),
    ) {
        let frames: Vec<Vec<u8>> = sels
            .iter()
            .map(|&sel| request_from(sel, a, a ^ 9, c, 5, 3).encode())
            .collect();
        let stream: Vec<u8> = frames.concat();
        // Cut points anywhere in the stream, dedup'd and sorted: every
        // chunk between neighbours becomes one `feed`.
        let mut points: Vec<usize> = cuts.iter().map(|&x| x % (stream.len() + 1)).collect();
        points.push(0);
        points.push(stream.len());
        points.sort_unstable();
        points.dedup();
        let mut dec = FrameDecoder::new();
        let mut got: Vec<Vec<u8>> = Vec::new();
        for w in points.windows(2) {
            dec.feed(&stream[w[0]..w[1]]);
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
        }
        prop_assert_eq!(&got, &frames);
        prop_assert_eq!(dec.buffered(), 0);
        // Every reassembled frame still decodes to the request it was.
        for (f, &sel) in got.iter().zip(&sels) {
            prop_assert_eq!(
                Request::decode(f).unwrap(),
                request_from(sel, a, a ^ 9, c, 5, 3)
            );
        }
    }

    /// Pipelined decode, part 2: byte-at-a-time delivery — the worst
    /// possible read pattern — yields the same frames as one big read.
    #[test]
    fn frame_decoder_byte_at_a_time_matches_bulk(
        sels in proptest::collection::vec(0u8..18, 1..5),
        a in 0u64..u64::MAX,
        c in 0u32..u32::MAX,
    ) {
        let frames: Vec<Vec<u8>> = sels
            .iter()
            .map(|&sel| request_from(sel, a, !a, c, 1, 8).encode())
            .collect();
        let stream: Vec<u8> = frames.concat();

        let mut bulk = FrameDecoder::new();
        bulk.feed(&stream);
        let mut bulk_got = Vec::new();
        while let Some(f) = bulk.next_frame().unwrap() {
            bulk_got.push(f);
        }

        let mut drip = FrameDecoder::new();
        let mut drip_got = Vec::new();
        for b in &stream {
            drip.feed(std::slice::from_ref(b));
            while let Some(f) = drip.next_frame().unwrap() {
                drip_got.push(f);
            }
        }
        prop_assert_eq!(&bulk_got, &frames);
        prop_assert_eq!(&drip_got, &frames);
    }

    /// Pipelined decode, part 3: valid frames followed by garbage.
    /// Every leading frame is recovered intact; the garbage either
    /// waits as an incomplete frame (plausible prefix) or surfaces as
    /// the decoder's sticky typed error (oversized prefix) — never a
    /// panic, and never a torn or invented frame.
    #[test]
    fn frame_decoder_trailing_garbage_never_desyncs(
        sels in proptest::collection::vec(0u8..18, 1..5),
        a in 0u64..u64::MAX,
        c in 0u32..u32::MAX,
        garbage in proptest::collection::vec(0u8..u8::MAX, 1..48),
    ) {
        let frames: Vec<Vec<u8>> = sels
            .iter()
            .map(|&sel| request_from(sel, a, a ^ 0xFF, c, 9, 4).encode())
            .collect();
        let mut stream: Vec<u8> = frames.concat();
        stream.extend_from_slice(&garbage);
        let mut dec = FrameDecoder::new();
        dec.feed(&stream);
        let mut got: Vec<Vec<u8>> = Vec::new();
        let mut errored = false;
        loop {
            match dec.next_frame() {
                Ok(Some(f)) => got.push(f),
                Ok(None) => break,
                Err(_) => {
                    errored = true;
                    // Sticky: the error repeats rather than resyncing
                    // into the garbage.
                    prop_assert!(dec.next_frame().is_err());
                    break;
                }
            }
        }
        // All the real frames arrived before anything else happened.
        prop_assert!(got.len() >= frames.len());
        prop_assert_eq!(&got[..frames.len()], &frames[..]);
        // Any extra "frame" must be a self-consistent slice of the
        // garbage tail (the decoder cannot tell it from a real one);
        // each still carries a sane length prefix.
        for extra in &got[frames.len()..] {
            prop_assert!(extra.len() >= 4);
            let len = u32::from_le_bytes([extra[0], extra[1], extra[2], extra[3]]) as usize;
            prop_assert_eq!(extra.len(), 4 + len);
        }
        let _ = errored;
    }
}
