//! `simperf` — the perf-tool CLI over the simulated machines.
//!
//! ```text
//! simperf list
//! simperf stat   [-m machine] [-a] [-C cpulist] [-e ev,ev] [-w workload] [-I ms] [--json]
//!                [--regions] [--trace-out FILE] [--sched name]
//! simperf record [-m machine] [-c period] [-e event] [-w workload] [--sched name]
//! ```
//!
//! `--regions` runs the workload with LIKWID-style marker regions (one
//! region per workload phase) and prints a per-region, per-core-type
//! counter table instead of whole-run totals; `-e` then takes `PAPI_*`
//! preset names (default `PAPI_TOT_INS,PAPI_TOT_CYC,PAPI_CTX_SW`).
//!
//! `--trace-out FILE` boots the kernel with the flight recorder enabled
//! and, after the stat run, writes every recorded track (kernel, shared
//! hardware, one per CPU) as Chrome trace-event JSON — load it in
//! Perfetto or `chrome://tracing`.
//!
//! Workloads: `scalar:N`, `dgemm:N`, `stream:N`, `branchy:N` (N =
//! instructions), pinned via `-C` or free-running.
//!
//! `--sched name` selects the kernel scheduler from the `simsched`
//! registry (`cfs|cfs_unaware|vtime|capacity|thermal`); unknown names
//! are rejected. Defaults to `SIM_SCHED` / `cfs`.

use perftool::{list_events, RecordConfig, StatConfig};
use simcpu::machine::MachineSpec;
use simcpu::phase::Phase;
use simcpu::types::CpuMask;
use simos::kernel::{Kernel, KernelConfig, KernelHandle};
use simos::task::{Op, Pid, ScriptedProgram};
use simos::SchedName;

fn sched(name: &str) -> SchedName {
    SchedName::parse(name).unwrap_or_else(|| {
        eprintln!("unknown scheduler '{name}' (cfs|cfs_unaware|vtime|capacity|thermal)");
        std::process::exit(2);
    })
}

fn machine(name: &str) -> MachineSpec {
    match name {
        "raptor" | "raptor-lake" => MachineSpec::raptor_lake_i7_13700(),
        "orangepi" | "rk3399" => MachineSpec::orangepi_800(),
        "skylake" => MachineSpec::skylake_quad(),
        "dynamiq" => MachineSpec::dynamiq_tri(),
        "adl-mobile" => MachineSpec::alder_lake_mobile(),
        other => {
            eprintln!("unknown machine '{other}' (raptor|orangepi|skylake|dynamiq)");
            std::process::exit(2);
        }
    }
}

fn workload(spec: &str) -> Phase {
    let (kind, n) = spec.split_once(':').unwrap_or((spec, "10000000"));
    let n: u64 = n.parse().unwrap_or(10_000_000);
    match kind {
        "scalar" => Phase::scalar(n),
        "dgemm" => Phase::dgemm(n, 1 << 30, 0.3),
        "stream" => Phase::stream(n, 8 << 30),
        "branchy" => Phase::branchy(n),
        other => {
            eprintln!("unknown workload '{other}' (scalar|dgemm|stream|branchy)[:N]");
            std::process::exit(2);
        }
    }
}

struct Args {
    machine: String,
    system_wide: bool,
    cpus: Option<String>,
    events: Vec<String>,
    workload: String,
    period: u64,
    interval_ms: Option<u64>,
    json: bool,
    regions: bool,
    trace_out: Option<String>,
    sched: Option<SchedName>,
}

fn parse_args(argv: &[String]) -> Args {
    let mut a = Args {
        machine: "raptor".into(),
        system_wide: false,
        cpus: None,
        events: Vec::new(),
        workload: "scalar:10000000".into(),
        period: 100_000,
        interval_ms: None,
        json: false,
        regions: false,
        trace_out: None,
        sched: None,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "-m" => {
                i += 1;
                a.machine = argv[i].clone();
            }
            "-a" => a.system_wide = true,
            "-C" => {
                i += 1;
                a.cpus = Some(argv[i].clone());
            }
            "-e" => {
                i += 1;
                a.events
                    .extend(argv[i].split(',').map(|s| s.trim().to_string()));
            }
            "-w" => {
                i += 1;
                a.workload = argv[i].clone();
            }
            "-c" => {
                i += 1;
                a.period = argv[i].parse().unwrap_or(100_000);
            }
            "-I" => {
                i += 1;
                a.interval_ms = argv[i].parse().ok();
            }
            "--json" => a.json = true,
            "--regions" => a.regions = true,
            "--trace-out" => {
                i += 1;
                a.trace_out = Some(argv[i].clone());
            }
            "--sched" => {
                i += 1;
                a.sched = Some(sched(&argv[i]));
            }
            other => a.events.push(other.to_string()),
        }
        i += 1;
    }
    a
}

fn boot_and_spawn(args: &Args) -> (KernelHandle, Pid) {
    let mut cfg = KernelConfig {
        trace: if args.trace_out.is_some() {
            simtrace::TraceConfig::enabled_with_cap(1 << 16)
        } else {
            simtrace::TraceConfig::from_env()
        },
        ..Default::default()
    };
    if let Some(s) = args.sched {
        cfg.sched = s;
    }
    let kernel = Kernel::boot_handle(machine(&args.machine), cfg);
    let mask = match &args.cpus {
        Some(s) => CpuMask::parse_cpulist(s).unwrap_or_else(|e| {
            eprintln!("bad cpulist: {e}");
            std::process::exit(2);
        }),
        None => CpuMask::first_n(kernel.lock().machine().n_cpus()),
    };
    let phase = workload(&args.workload);
    let pid = kernel.lock().spawn(
        "workload",
        Box::new(ScriptedProgram::new([Op::Compute(phase), Op::Exit])),
        mask,
        0,
    );
    (kernel, pid)
}

/// `simperf stat --regions`: run the workload inside a LIKWID-style
/// marker region and print the per-region, per-core-type table.
fn run_region_stat(args: &Args) {
    use perftool::regions::{begin_hook, end_hook, RegionId, Regions};
    let mut cfg = KernelConfig {
        trace: if args.trace_out.is_some() {
            simtrace::TraceConfig::enabled_with_cap(1 << 16)
        } else {
            simtrace::TraceConfig::from_env()
        },
        ..Default::default()
    };
    if let Some(s) = args.sched {
        cfg.sched = s;
    }
    let kernel = Kernel::boot_handle(machine(&args.machine), cfg);
    let mask = match &args.cpus {
        Some(s) => CpuMask::parse_cpulist(s).unwrap_or_else(|e| {
            eprintln!("bad cpulist: {e}");
            std::process::exit(2);
        }),
        None => CpuMask::first_n(kernel.lock().machine().n_cpus()),
    };
    let name = args
        .workload
        .split(':')
        .next()
        .unwrap_or("workload")
        .to_string();
    let phase = workload(&args.workload);
    let r = RegionId(0);
    let pid = kernel.lock().spawn(
        "workload",
        Box::new(ScriptedProgram::new([
            Op::Call(begin_hook(r)),
            Op::Compute(phase),
            Op::Call(end_hook(r)),
            Op::Exit,
        ])),
        mask,
        0,
    );
    let rcfg = perftool::RegionConfig {
        events: if args.events.is_empty() {
            vec![
                "PAPI_TOT_INS".into(),
                "PAPI_TOT_CYC".into(),
                "PAPI_CTX_SW".into(),
            ]
        } else {
            args.events.clone()
        },
        overhead_instructions: None,
    };
    let mut regions = Regions::init(&kernel, pid, &rcfg).unwrap_or_else(|e| {
        eprintln!("simperf: {e}");
        std::process::exit(1);
    });
    regions.region_init(&name);
    regions.run_marked(3_600_000_000_000).unwrap_or_else(|e| {
        eprintln!("simperf: {e}");
        std::process::exit(1);
    });
    let track = regions.trace_track();
    let report = regions.finish().unwrap_or_else(|e| {
        eprintln!("simperf: {e}");
        std::process::exit(1);
    });
    if args.json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render());
    }
    if let Some(path) = &args.trace_out {
        let mut tracks = kernel.lock().trace_tracks();
        tracks.push(track);
        let json = simtrace::chrome_trace_json(&tracks);
        std::fs::write(path, &json).unwrap_or_else(|e| {
            eprintln!("simperf: writing {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("simperf: wrote trace to {path} ({} bytes)", json.len());
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        eprintln!("usage: simperf <list|stat|record> [options]");
        std::process::exit(2);
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "list" => {
            println!("List of pre-defined events:");
            for e in list_events() {
                println!("  {e}");
            }
        }
        "stat" => {
            let args = parse_args(rest);
            if args.regions {
                run_region_stat(&args);
                return;
            }
            let (kernel, pid) = boot_and_spawn(&args);
            let cfg = StatConfig {
                events: if args.events.is_empty() {
                    StatConfig::default_events().events
                } else {
                    args.events.clone()
                },
                system_wide: args.system_wide,
                cpus: args
                    .cpus
                    .as_deref()
                    .map(|s| CpuMask::parse_cpulist(s).unwrap()),
            };
            let target = if args.system_wide { None } else { Some(pid) };
            let session = perftool::stat::arm(&kernel, &cfg, target).unwrap_or_else(|e| {
                eprintln!("simperf: {e}");
                std::process::exit(1);
            });
            let mut stat_track = None;
            if let Some(ms) = args.interval_ms {
                let snaps =
                    perftool::stat::run_interval(session, ms * 1_000_000, 3_600_000_000_000)
                        .unwrap();
                if args.json {
                    println!("{}", perftool::stat::interval_json(&snaps));
                } else {
                    println!("#           time   counts event");
                    for (t, rows) in snaps {
                        for r in rows {
                            println!("{t:>16.6} {:>10} {}", r.value, r.label);
                        }
                    }
                }
            } else {
                kernel.lock().run_to_completion(3_600_000_000_000);
                let res = session.finish().unwrap();
                if args.json {
                    println!("{}", res.render_json());
                } else {
                    println!("{}", res.render());
                }
                stat_track = Some(simtrace::Track {
                    name: "simperf".into(),
                    events: res.span_events,
                });
            }
            if let Some(path) = &args.trace_out {
                let mut tracks = kernel.lock().trace_tracks();
                tracks.extend(stat_track);
                let json = simtrace::chrome_trace_json(&tracks);
                std::fs::write(path, &json).unwrap_or_else(|e| {
                    eprintln!("simperf: writing {path}: {e}");
                    std::process::exit(1);
                });
                eprintln!("simperf: wrote trace to {path} ({} bytes)", json.len());
            }
        }
        "record" => {
            let args = parse_args(rest);
            let (kernel, pid) = boot_and_spawn(&args);
            let cfg = RecordConfig {
                event: args
                    .events
                    .first()
                    .cloned()
                    .unwrap_or_else(|| "instructions".into()),
                period: args.period,
            };
            let session = perftool::record::arm(&kernel, &cfg, pid).unwrap_or_else(|e| {
                eprintln!("simperf: {e}");
                std::process::exit(1);
            });
            kernel.lock().run_to_completion(3_600_000_000_000);
            println!("{}", session.report().unwrap().render());
        }
        other => {
            eprintln!("unknown command '{other}'");
            std::process::exit(2);
        }
    }
}
