//! # perftool — a Linux `perf`-tool analogue
//!
//! §IV.A of the paper describes how the `perf` tool copes with hybrid
//! machines: it "works in this way, by setting up multiple events on
//! heterogeneous systems and reporting all of the results gathered" — one
//! event per core-type PMU per requested counter, read back with one or
//! more syscalls per group. The paper contrasts this with PAPI's caliper
//! model (perf only supports whole-program aggregate counts or statistical
//! sampling).
//!
//! This crate implements that tool against the simulated kernel:
//!
//! * [`stat`] — `perf stat`: whole-run aggregate counting, per-task or
//!   system-wide, with the hybrid expansion (`cpu_core/instructions/` +
//!   `cpu_atom/instructions/` rows) and multiplex scaling annotations;
//! * [`record`] — `perf record` + `perf report`: period sampling and a
//!   per-core-type / per-CPU sample profile.
//!
//! The table-III binary uses the same pattern; this crate packages it as
//! a reusable tool with a CLI (`simperf`).

pub mod record;
pub mod regions;
pub mod stat;

pub use record::{RecordConfig, RecordSession, Report};
pub use regions::{RegionConfig, RegionId, RegionReport, Regions};
pub use stat::{StatConfig, StatResult, StatRow};

use simcpu::events::ArchEvent;

/// Parse a `perf list`-style generic event name into an architectural
/// event ("instructions", "cycles", "LLC-loads", …).
pub fn parse_generic_event(name: &str) -> Option<ArchEvent> {
    simcpu::events::ALL_ARCH_EVENTS
        .iter()
        .copied()
        .find(|e| e.generic_name().eq_ignore_ascii_case(name))
}

/// The generic event names `simperf list` prints: hardware events first,
/// then the kernel software events.
pub fn list_events() -> Vec<&'static str> {
    simcpu::events::ALL_ARCH_EVENTS
        .iter()
        .map(|e| e.generic_name())
        .chain(stat::SOFTWARE_EVENTS.iter().copied())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generic_names_roundtrip() {
        for name in list_events() {
            assert!(
                parse_generic_event(name).is_some() || stat::parse_software_event(name).is_some(),
                "{name}"
            );
        }
        assert_eq!(
            parse_generic_event("Instructions"),
            Some(ArchEvent::Instructions)
        );
        assert_eq!(parse_generic_event("no-such-event"), None);
    }
}
