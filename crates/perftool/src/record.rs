//! `perf record` / `perf report`: statistical sampling.
//!
//! The paper's contrast with PAPI (§IV.A): perf "only supports gathering
//! either aggregate (full-program) counts or else statistically sampled
//! values" — it cannot caliper a source region. This module implements
//! that sampling mode: a period-sampled event follows the task, each
//! overflow records (time, cpu), and the report aggregates samples per
//! CPU and per core type — which on a hybrid machine shows *where* a
//! workload actually ran.

use crate::parse_generic_event;
use pfmlib::{Pfm, PfmOptions};
use simos::kernel::KernelHandle;
use simos::perf::{EventFd, PerfAttr, Target};
use simos::task::Pid;
use std::collections::BTreeMap;

/// Sampling configuration.
#[derive(Debug, Clone)]
pub struct RecordConfig {
    /// Generic event to sample on ("instructions").
    pub event: String,
    /// Overflow period (`-c`): one sample per this many events.
    pub period: u64,
}

impl Default for RecordConfig {
    fn default() -> RecordConfig {
        RecordConfig {
            event: "instructions".into(),
            period: 100_000,
        }
    }
}

/// An armed recording session.
pub struct RecordSession {
    kernel: KernelHandle,
    /// One sampling fd per core-type PMU (hybrid machines need both).
    fds: Vec<EventFd>,
}

/// The aggregated profile.
#[derive(Debug, Clone)]
pub struct Report {
    /// Samples per logical CPU.
    pub by_cpu: BTreeMap<usize, u64>,
    /// Samples per core type letter ("P"/"E"/"M"/"U").
    pub by_core_type: BTreeMap<&'static str, u64>,
    pub total: u64,
}

impl Report {
    /// Render like a (very small) `perf report`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {} samples\n", self.total));
        out.push_str("# by core type:\n");
        for (t, n) in &self.by_core_type {
            out.push_str(&format!(
                "  {:>6.2}%  {t}-cores  ({n} samples)\n",
                *n as f64 / self.total.max(1) as f64 * 100.0
            ));
        }
        out.push_str("# by cpu:\n");
        for (c, n) in &self.by_cpu {
            out.push_str(&format!(
                "  {:>6.2}%  cpu{c}  ({n})\n",
                *n as f64 / self.total.max(1) as f64 * 100.0
            ));
        }
        out
    }
}

/// Arm sampling on `pid`.
pub fn arm(
    kernel: &KernelHandle,
    cfg: &RecordConfig,
    pid: Pid,
) -> Result<RecordSession, crate::stat::StatError> {
    let mut k = kernel.lock();
    let pfm = Pfm::initialize(&k, PfmOptions::default())?;
    let arch = parse_generic_event(&cfg.event)
        .ok_or_else(|| crate::stat::StatError::UnknownEvent(cfg.event.clone()))?;
    let mut fds = Vec::new();
    for pmu in pfm.default_pmus() {
        if !pmu.uarch.expect("core pmu").params().supports_event(arch) {
            continue;
        }
        let attr = PerfAttr {
            sample_period: cfg.period,
            ..PerfAttr::counting(pmu.pmu_id, arch)
        };
        let fd = k.perf_event_open(attr, Target::Thread(pid), None)?;
        k.ioctl_enable(fd, false)?;
        fds.push(fd);
    }
    Ok(RecordSession {
        kernel: kernel.clone(),
        fds,
    })
}

impl RecordSession {
    /// Build the report from the collected samples.
    pub fn report(self) -> Result<Report, crate::stat::StatError> {
        let k = self.kernel.lock();
        let mut by_cpu: BTreeMap<usize, u64> = BTreeMap::new();
        let mut by_core_type: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut total = 0;
        for fd in &self.fds {
            for s in k.event_samples(*fd)? {
                *by_cpu.entry(s.cpu.0).or_default() += 1;
                let t = k.machine().cpu_info(s.cpu).core_type().letter();
                *by_core_type.entry(t).or_default() += 1;
                total += 1;
            }
        }
        Ok(Report {
            by_cpu,
            by_core_type,
            total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcpu::machine::MachineSpec;
    use simcpu::phase::Phase;
    use simcpu::types::CpuMask;
    use simos::kernel::{Kernel, KernelConfig};
    use simos::task::{Op, ScriptedProgram};

    #[test]
    fn sampling_profile_matches_pinning() {
        let kernel =
            Kernel::boot_handle(MachineSpec::raptor_lake_i7_13700(), KernelConfig::default());
        let pid = kernel.lock().spawn(
            "w",
            Box::new(ScriptedProgram::new([
                Op::Compute(Phase::scalar(10_000_000)),
                Op::Exit,
            ])),
            CpuMask::parse_cpulist("16").unwrap(),
            0,
        );
        let session = arm(
            &kernel,
            &RecordConfig {
                event: "instructions".into(),
                period: 100_000,
            },
            pid,
        )
        .unwrap();
        kernel.lock().run_to_completion(60_000_000_000);
        let report = session.report().unwrap();
        assert_eq!(report.total, 100, "10 M / 100 k period");
        assert_eq!(report.by_core_type.get("E"), Some(&100));
        assert_eq!(report.by_core_type.get("P"), None);
        assert_eq!(report.by_cpu.get(&16), Some(&100));
        let text = report.render();
        assert!(text.contains("E-cores"), "{text}");
    }

    #[test]
    fn hybrid_migrating_task_samples_on_both_types() {
        let kernel =
            Kernel::boot_handle(MachineSpec::raptor_lake_i7_13700(), KernelConfig::default());
        let noise = workloads::micro::spawn_noise(
            &kernel,
            CpuMask::parse_cpulist("0-15").unwrap(),
            3_000_000,
            7_000_000,
        );
        let pid = kernel.lock().spawn(
            "w",
            Box::new(ScriptedProgram::new(
                (0..60)
                    .flat_map(|_| [Op::Compute(Phase::scalar(1_000_000)), Op::Sleep(1_500_000)])
                    .chain([Op::Exit])
                    .collect::<Vec<_>>(),
            )),
            CpuMask::first_n(24),
            0,
        );
        let session = arm(&kernel, &RecordConfig::default(), pid).unwrap();
        // Drive manually to the task's exit.
        loop {
            let mut k = kernel.lock();
            if k.task_state(pid) == Some(simos::task::TaskState::Exited)
                || k.time_ns() > 120_000_000_000
            {
                break;
            }
            for _ in 0..64 {
                k.tick();
            }
        }
        noise.stop();
        let report = session.report().unwrap();
        assert_eq!(report.total, 600, "60 M instructions / 100 k period");
        assert!(
            report.by_core_type.get("P").copied().unwrap_or(0) > 0,
            "{report:?}"
        );
        assert!(
            report.by_core_type.get("E").copied().unwrap_or(0) > 0,
            "{report:?}"
        );
    }
}
