//! LIKWID-marker-style region instrumentation.
//!
//! LIKWID's marker API (`LIKWID_MARKER_START/STOP`) lets an application
//! caliper *named code regions* instead of the whole run, which is what
//! makes per-kernel event validation practical: each analytic kernel gets
//! its own region with its own counts. This module is that API over the
//! simulated PAPI stack, with the `Probe`-style lifecycle (init → begin →
//! end → report) and two properties LIKWID users rely on:
//!
//! * **nestable** — regions may enclose other regions (strict LIFO);
//!   every region accumulates *inclusive* counts, like LIKWID;
//! * **per-core-type aggregation** — hardware presets expand to one
//!   counter row per core-type PMU (the §V.2 hybrid expansion), so a
//!   region's report can answer "how many instructions on the P cores
//!   vs the E cores" directly. Software events (`perf_sw::*`) are
//!   kernel-wide and contribute a single row.
//!
//! Region boundaries can be driven two ways: directly (`begin`/`end`
//! from host code between ticks) or from *markers inside the workload*
//! — `Op::Call` hooks built with [`begin_hook`]/[`end_hook`], serviced
//! by [`Regions::run_marked`]. Begins and ends are recorded to the
//! flight recorder as `region_begin`/`region_end` events.

use papi::{Attach, EventSetId, Papi, PapiConfig, PapiError, Preset};
use simcpu::types::{CoreType, Nanos};
use simos::kernel::{run_with_hooks, KernelHandle};
use simos::task::{HookId, Pid};
use simtrace::{EventKind, TraceSink, Track};

/// Hook-id namespace for region markers ("RG" in ASCII), leaving the
/// low bits for `region_id << 1 | is_end`.
pub const REGION_HOOK_BASE: u32 = 0x5247_0000;

/// Identifier of a registered region (dense, registration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionId(pub u32);

/// The `Op::Call` hook a workload emits to open region `r`.
pub fn begin_hook(r: RegionId) -> HookId {
    HookId(REGION_HOOK_BASE | (r.0 << 1))
}

/// The `Op::Call` hook a workload emits to close region `r`.
pub fn end_hook(r: RegionId) -> HookId {
    HookId(REGION_HOOK_BASE | (r.0 << 1) | 1)
}

/// Decode a marker hook: `(region, is_end)`, or `None` for hooks from
/// other namespaces (which `run_marked` leaves to their owners).
pub fn decode_hook(h: HookId) -> Option<(RegionId, bool)> {
    if h.0 & 0xFFFF_0000 != REGION_HOOK_BASE {
        return None;
    }
    let low = h.0 & 0xFFFF;
    Some((RegionId(low >> 1), low & 1 == 1))
}

/// Configuration for a region session.
#[derive(Debug, Clone)]
pub struct RegionConfig {
    /// Events to count in every region: `PAPI_*` preset names (hardware
    /// presets expand per core-type PMU) or fully-qualified natives.
    pub events: Vec<String>,
    /// Override PAPI's injected start overhead (`None` = library default).
    pub overhead_instructions: Option<u64>,
}

impl Default for RegionConfig {
    fn default() -> RegionConfig {
        RegionConfig {
            events: vec!["PAPI_TOT_INS".into(), "PAPI_TOT_CYC".into()],
            overhead_instructions: None,
        }
    }
}

/// Region API errors.
#[derive(Debug)]
pub enum RegionError {
    Papi(PapiError),
    /// `begin`/`end` named a region that was never `region_init`ed.
    UnknownRegion(String),
    /// `end` did not match the innermost open region (non-LIFO nesting).
    Mismatched {
        open: String,
        ended: String,
    },
    /// `end` with no region open.
    NotActive(String),
}

impl std::fmt::Display for RegionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionError::Papi(e) => write!(f, "papi: {e}"),
            RegionError::UnknownRegion(n) => write!(f, "unknown region '{n}'"),
            RegionError::Mismatched { open, ended } => {
                write!(f, "region end '{ended}' while '{open}' is innermost")
            }
            RegionError::NotActive(n) => write!(f, "region '{n}' ended but none open"),
        }
    }
}

impl std::error::Error for RegionError {}

impl From<PapiError> for RegionError {
    fn from(e: PapiError) -> RegionError {
        RegionError::Papi(e)
    }
}

/// One counter row of a region: a user-facing event, the native that
/// implements it, and (for core PMUs) which core type it counts on.
#[derive(Debug, Clone)]
pub struct RegionCounter {
    pub event: String,
    pub native: String,
    pub core_type: Option<CoreType>,
    pub value: u64,
}

/// Aggregated results for one region.
#[derive(Debug, Clone)]
pub struct RegionSummary {
    pub name: String,
    /// Completed begin/end pairs.
    pub count: u64,
    /// Inclusive time spent inside the region, ns.
    pub time_ns: u64,
    pub counters: Vec<RegionCounter>,
}

impl RegionSummary {
    /// Total for a user event, summed across core types (§V.2
    /// DERIVED_ADD applied region-locally).
    pub fn value(&self, event: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.event == event)
            .map(|c| c.value)
            .sum()
    }

    /// Total for a user event on one core type.
    pub fn value_on(&self, event: &str, ct: CoreType) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.event == event && c.core_type == Some(ct))
            .map(|c| c.value)
            .sum()
    }
}

/// The report for a whole session, one summary per region in
/// registration order.
#[derive(Debug, Clone)]
pub struct RegionReport {
    pub regions: Vec<RegionSummary>,
}

impl RegionReport {
    pub fn region(&self, name: &str) -> Option<&RegionSummary> {
        self.regions.iter().find(|r| r.name == name)
    }

    /// LIKWID-style text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.regions {
            out.push_str(&format!(
                "Region {} | count {} | time {:.6} s\n",
                r.name,
                r.count,
                r.time_ns as f64 / 1e9
            ));
            for c in &r.counters {
                let ct = c
                    .core_type
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "-".into());
                out.push_str(&format!(
                    "  {:<14} {:<40} {:<12} {:>16}\n",
                    c.event, c.native, ct, c.value
                ));
            }
        }
        out
    }

    /// JSON via `jsonw` (validated, dep-free).
    pub fn render_json(&self) -> String {
        let mut w = jsonw::JsonWriter::new();
        w.begin_obj();
        w.field_str("tool", "simperf-regions");
        w.key("regions");
        w.begin_arr();
        for r in &self.regions {
            w.begin_obj();
            w.field_str("region", &r.name);
            w.field_u64("count", r.count);
            w.field_u64("time_ns", r.time_ns);
            w.key("counters");
            w.begin_arr();
            for c in &r.counters {
                w.begin_obj();
                w.field_str("event", &c.event);
                w.field_str("native", &c.native);
                match c.core_type {
                    Some(t) => w.field_str("core_type", &t.to_string()),
                    None => w.field_str("core_type", "-"),
                }
                w.field_u64("value", c.value);
                w.end_obj();
            }
            w.end_arr();
            w.end_obj();
        }
        w.end_arr();
        w.end_obj();
        w.finish()
    }
}

struct RegionData {
    name: String,
    count: u64,
    time_ns: u64,
    totals: Vec<u64>,
}

struct OpenRegion {
    region: usize,
    t0_ns: u64,
    snapshot: Vec<u64>,
}

/// A live region-measurement session (the `Probe` lifecycle).
pub struct Regions {
    kernel: KernelHandle,
    papi: Papi,
    es: EventSetId,
    pid: Pid,
    /// Per counter row: (user event name, core type if a core PMU).
    row_meta: Vec<(String, Option<CoreType>)>,
    natives: Vec<String>,
    regions: Vec<RegionData>,
    stack: Vec<OpenRegion>,
    trace: TraceSink,
}

impl Regions {
    /// `region_init` half one: build the session. Opens one hybrid
    /// EventSet attached to `pid`, expands hardware presets per
    /// core-type PMU, and starts counting (regions only *attribute*
    /// counts; the set runs for the whole session).
    pub fn init(
        kernel: &KernelHandle,
        pid: Pid,
        cfg: &RegionConfig,
    ) -> Result<Regions, RegionError> {
        let pcfg = PapiConfig {
            overhead_instructions: cfg.overhead_instructions.unwrap_or(4_300),
            ..Default::default()
        };
        let mut papi = Papi::init_with(kernel.clone(), pcfg)?;
        let es = papi.create_eventset();
        papi.attach(es, Attach::Task(pid))?;
        let mut row_meta = Vec::new();
        for name in &cfg.events {
            let natives = match Preset::from_papi_name(name) {
                Some(p) => papi.preset_native_names(p)?,
                None => vec![name.clone()],
            };
            for native in natives {
                papi.add_named(es, &native)?;
                row_meta.push((name.to_ascii_uppercase(), None));
            }
        }
        let natives = papi.native_names(es)?;
        for (meta, native) in row_meta.iter_mut().zip(&natives) {
            meta.1 = core_type_of(&papi, native);
        }
        papi.start(es)?;
        let trace = {
            let k = kernel.lock();
            TraceSink::new(&k.config().trace)
        };
        Ok(Regions {
            kernel: kernel.clone(),
            papi,
            es,
            pid,
            row_meta,
            natives,
            regions: Vec::new(),
            stack: Vec::new(),
            trace,
        })
    }

    /// Register a region; markers refer to it by the returned id.
    /// Registering the same name twice returns the existing id.
    pub fn region_init(&mut self, name: &str) -> RegionId {
        if let Some(i) = self.regions.iter().position(|r| r.name == name) {
            return RegionId(i as u32);
        }
        self.regions.push(RegionData {
            name: name.to_string(),
            count: 0,
            time_ns: 0,
            totals: vec![0; self.row_meta.len()],
        });
        RegionId(self.regions.len() as u32 - 1)
    }

    /// The task this session instruments.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Open a region (LIKWID `MARKER_START`).
    pub fn begin(&mut self, name: &str) -> Result<(), RegionError> {
        let region = self
            .regions
            .iter()
            .position(|r| r.name == name)
            .ok_or_else(|| RegionError::UnknownRegion(name.to_string()))?;
        self.begin_id(RegionId(region as u32))
    }

    fn begin_id(&mut self, id: RegionId) -> Result<(), RegionError> {
        let region = id.0 as usize;
        if region >= self.regions.len() {
            return Err(RegionError::UnknownRegion(format!("#{}", id.0)));
        }
        let snapshot = self.read_values()?;
        let t0_ns = self.kernel.lock().time_ns();
        self.stack.push(OpenRegion {
            region,
            t0_ns,
            snapshot,
        });
        if self.trace.enabled() {
            self.trace.record(
                t0_ns,
                EventKind::RegionBegin,
                id.0,
                self.stack.len() as u64,
                0,
            );
        }
        Ok(())
    }

    /// Close a region (LIKWID `MARKER_STOP`). Must match the innermost
    /// open region.
    pub fn end(&mut self, name: &str) -> Result<(), RegionError> {
        let region = self
            .regions
            .iter()
            .position(|r| r.name == name)
            .ok_or_else(|| RegionError::UnknownRegion(name.to_string()))?;
        self.end_id(RegionId(region as u32))
    }

    fn end_id(&mut self, id: RegionId) -> Result<(), RegionError> {
        let region = id.0 as usize;
        if region >= self.regions.len() {
            return Err(RegionError::UnknownRegion(format!("#{}", id.0)));
        }
        let Some(top) = self.stack.last() else {
            return Err(RegionError::NotActive(self.regions[region].name.clone()));
        };
        if top.region != region {
            return Err(RegionError::Mismatched {
                open: self.regions[top.region].name.clone(),
                ended: self.regions[region].name.clone(),
            });
        }
        let now = self.read_values()?;
        let t_ns = self.kernel.lock().time_ns();
        let depth = self.stack.len() as u64;
        let open = self.stack.pop().expect("checked above");
        let data = &mut self.regions[region];
        data.count += 1;
        data.time_ns += t_ns.saturating_sub(open.t0_ns);
        for (tot, (a, b)) in data.totals.iter_mut().zip(now.iter().zip(&open.snapshot)) {
            *tot += a.saturating_sub(*b);
        }
        if self.trace.enabled() {
            self.trace
                .record(t_ns, EventKind::RegionEnd, id.0, depth, 0);
        }
        Ok(())
    }

    fn read_values(&mut self) -> Result<Vec<u64>, RegionError> {
        Ok(self
            .papi
            .read(self.es)?
            .into_iter()
            .map(|(_, v)| v)
            .collect())
    }

    /// Drive the kernel to completion, servicing in-workload markers:
    /// [`begin_hook`]/[`end_hook`] calls from the instrumented task open
    /// and close regions; hooks from other namespaces (and other tasks)
    /// are resumed untouched.
    pub fn run_marked(&mut self, max_ns: Nanos) -> Result<(), RegionError> {
        let kernel = self.kernel.clone();
        let me = self.pid;
        let mut err = None;
        run_with_hooks(&kernel, max_ns, |_, pid, hook| {
            if err.is_some() || pid != me {
                return;
            }
            if let Some((region, is_end)) = decode_hook(hook) {
                let r = if is_end {
                    self.end_id(region)
                } else {
                    self.begin_id(region)
                };
                if let Err(e) = r {
                    err = Some(e);
                }
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Build the report for everything measured so far.
    pub fn report(&self) -> RegionReport {
        let regions = self
            .regions
            .iter()
            .map(|r| RegionSummary {
                name: r.name.clone(),
                count: r.count,
                time_ns: r.time_ns,
                counters: r
                    .totals
                    .iter()
                    .enumerate()
                    .map(|(i, &value)| RegionCounter {
                        event: self.row_meta[i].0.clone(),
                        native: self.natives[i].clone(),
                        core_type: self.row_meta[i].1,
                        value,
                    })
                    .collect(),
            })
            .collect();
        RegionReport { regions }
    }

    /// Stop counting and return the final report (Probe `report_values`).
    pub fn finish(mut self) -> Result<RegionReport, RegionError> {
        self.papi.stop(self.es)?;
        Ok(self.report())
    }

    /// The region marker track for trace export, alongside
    /// [`simos::kernel::Kernel::trace_tracks`].
    pub fn trace_track(&self) -> Track {
        Track::new("regions", self.trace.events())
    }
}

/// Which core type a fully-qualified native counts on (`None` for
/// package-scope PMUs: software, RAPL, uncore).
fn core_type_of(papi: &Papi, fq_name: &str) -> Option<CoreType> {
    let prefix = fq_name.split("::").next()?;
    let (_, pmu) = papi.pfm().pmu_by_pfm_name(prefix)?;
    pmu.uarch.map(|u| u.params().core_type)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcpu::machine::MachineSpec;
    use simcpu::phase::Phase;
    use simcpu::types::CpuMask;
    use simos::kernel::{Kernel, KernelConfig};
    use simos::task::{Op, ScriptedProgram};

    fn boot(spec: MachineSpec) -> KernelHandle {
        Kernel::boot_handle(spec, KernelConfig::default())
    }

    #[test]
    fn hook_codec_roundtrip() {
        for r in [0u32, 1, 77, 0x7FFF] {
            assert_eq!(
                decode_hook(begin_hook(RegionId(r))),
                Some((RegionId(r), false))
            );
            assert_eq!(
                decode_hook(end_hook(RegionId(r))),
                Some((RegionId(r), true))
            );
        }
        assert_eq!(decode_hook(HookId(0xCA11)), None, "foreign namespace");
    }

    #[test]
    fn marked_regions_attribute_counts_per_region() {
        let kernel = boot(MachineSpec::raptor_lake_i7_13700());
        let a = RegionId(0);
        let b = RegionId(1);
        let pid = kernel.lock().spawn(
            "marked",
            Box::new(ScriptedProgram::new([
                Op::Call(begin_hook(a)),
                Op::Compute(Phase::scalar(3_000_000)),
                Op::Call(end_hook(a)),
                Op::Call(begin_hook(b)),
                Op::Compute(Phase::scalar(1_000_000)),
                Op::Call(end_hook(b)),
                Op::Exit,
            ])),
            CpuMask::from_cpus([0]),
            0,
        );
        let cfg = RegionConfig {
            events: vec!["PAPI_TOT_INS".into(), "PAPI_CTX_SW".into()],
            overhead_instructions: Some(0),
        };
        let mut regions = Regions::init(&kernel, pid, &cfg).unwrap();
        assert_eq!(regions.region_init("compute"), a);
        assert_eq!(regions.region_init("reduce"), b);
        regions.run_marked(60_000_000_000).unwrap();
        let report = regions.finish().unwrap();
        let compute = report.region("compute").unwrap();
        let reduce = report.region("reduce").unwrap();
        assert_eq!(compute.count, 1);
        assert_eq!(reduce.count, 1);
        assert_eq!(compute.value("PAPI_TOT_INS"), 3_000_000);
        assert_eq!(reduce.value("PAPI_TOT_INS"), 1_000_000);
        // Pinned to CPU 0 (a P core): all instructions on Performance.
        assert_eq!(
            compute.value_on("PAPI_TOT_INS", CoreType::Performance),
            3_000_000
        );
        assert_eq!(compute.value_on("PAPI_TOT_INS", CoreType::Efficiency), 0);
        assert!(compute.time_ns > 0);
        // Hook blocking forces a switch-out/in per region boundary.
        assert!(compute.value("PAPI_CTX_SW") >= 1);
    }

    #[test]
    fn nested_regions_accumulate_inclusively() {
        let kernel = boot(MachineSpec::orangepi_800());
        let outer = RegionId(0);
        let inner = RegionId(1);
        let pid = kernel.lock().spawn(
            "nested",
            Box::new(ScriptedProgram::new([
                Op::Call(begin_hook(outer)),
                Op::Compute(Phase::scalar(1_000_000)),
                Op::Call(begin_hook(inner)),
                Op::Compute(Phase::scalar(2_000_000)),
                Op::Call(end_hook(inner)),
                Op::Compute(Phase::scalar(1_000_000)),
                Op::Call(end_hook(outer)),
                Op::Exit,
            ])),
            CpuMask::from_cpus([0]),
            0,
        );
        let cfg = RegionConfig {
            events: vec!["PAPI_TOT_INS".into()],
            overhead_instructions: Some(0),
        };
        let mut regions = Regions::init(&kernel, pid, &cfg).unwrap();
        regions.region_init("outer");
        regions.region_init("inner");
        regions.run_marked(60_000_000_000).unwrap();
        let report = regions.finish().unwrap();
        assert_eq!(
            report.region("inner").unwrap().value("PAPI_TOT_INS"),
            2_000_000
        );
        // Inclusive: outer sees its own 2 M plus the nested 2 M.
        assert_eq!(
            report.region("outer").unwrap().value("PAPI_TOT_INS"),
            4_000_000
        );
        let json = report.render_json();
        assert!(jsonw::validate(&json), "{json}");
        assert!(report.render().contains("Region outer"));
    }

    #[test]
    fn non_lifo_end_is_rejected() {
        let kernel = boot(MachineSpec::skylake_quad());
        let pid = kernel.lock().spawn(
            "t",
            Box::new(ScriptedProgram::new([
                Op::Compute(Phase::scalar(100_000_000)),
                Op::Exit,
            ])),
            CpuMask::from_cpus([0]),
            0,
        );
        let cfg = RegionConfig {
            events: vec!["PAPI_TOT_INS".into()],
            overhead_instructions: Some(0),
        };
        let mut regions = Regions::init(&kernel, pid, &cfg).unwrap();
        regions.region_init("a");
        regions.region_init("b");
        assert!(matches!(regions.end("a"), Err(RegionError::NotActive(_))));
        regions.begin("a").unwrap();
        regions.begin("b").unwrap();
        assert!(matches!(
            regions.end("a"),
            Err(RegionError::Mismatched { .. })
        ));
        regions.end("b").unwrap();
        regions.end("a").unwrap();
        assert!(matches!(
            regions.begin("nope"),
            Err(RegionError::UnknownRegion(_))
        ));
    }
}
