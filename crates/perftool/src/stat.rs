//! `perf stat`: aggregate counting with hybrid-aware event expansion.
//!
//! On a hybrid machine a request for `instructions` becomes one event per
//! core-type PMU — the rows real perf prints as `cpu_core/instructions/`
//! and `cpu_atom/instructions/`. Per-task mode follows the thread; system
//! -wide mode (`-a`) opens one event per covered CPU per PMU and sums.

use crate::parse_generic_event;
use pfmlib::{Pfm, PfmOptions};
use simcpu::events::ArchEvent;
use simcpu::types::CpuMask;
use simos::kernel::{Kernel, KernelHandle};
use simos::perf::{EventConfig, EventFd, PerfAttr, Target};
use simos::task::Pid;
use simtrace::{span, EventKind, TraceEvent, TraceSink};

/// Parse a perf-style software event name (`perf stat -e context-switches`).
/// These count kernel activity, not PMU hardware, so they take no hybrid
/// expansion — one row regardless of core types.
pub fn parse_software_event(name: &str) -> Option<EventConfig> {
    Some(match name.to_ascii_lowercase().as_str() {
        "context-switches" | "cs" => EventConfig::SwContextSwitches,
        "cpu-migrations" | "migrations" => EventConfig::SwCpuMigrations,
        "page-faults" | "faults" => EventConfig::SwPageFaults,
        "task-clock" => EventConfig::SwTaskClock,
        _ => return None,
    })
}

/// The canonical software event names `simperf list` prints.
pub const SOFTWARE_EVENTS: &[&str] = &[
    "context-switches",
    "cpu-migrations",
    "page-faults",
    "task-clock",
];

/// What to count.
#[derive(Debug, Clone)]
pub struct StatConfig {
    /// Generic event names ("instructions", "cycles", "LLC-load-misses").
    pub events: Vec<String>,
    /// `-a`: system-wide counting on every CPU instead of following a task.
    pub system_wide: bool,
    /// Restrict system-wide counting to these CPUs (`-C`).
    pub cpus: Option<CpuMask>,
}

impl StatConfig {
    /// The default `perf stat` event set.
    pub fn default_events() -> StatConfig {
        StatConfig {
            events: ["instructions", "cycles", "branches", "branch-misses"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            system_wide: false,
            cpus: None,
        }
    }
}

/// One output row.
#[derive(Debug, Clone)]
pub struct StatRow {
    /// perf-style label: `cpu_core/instructions/` on hybrid machines,
    /// plain `instructions` on homogeneous ones.
    pub label: String,
    pub value: u64,
    pub time_enabled: u64,
    pub time_running: u64,
}

impl StatRow {
    /// The `(xx.x%)` multiplex annotation perf prints.
    pub fn running_pct(&self) -> f64 {
        if self.time_enabled == 0 {
            100.0
        } else {
            self.time_running as f64 / self.time_enabled as f64 * 100.0
        }
    }
}

/// A completed `perf stat` run.
#[derive(Debug, Clone)]
pub struct StatResult {
    pub rows: Vec<StatRow>,
    pub wall_s: f64,
    /// The measurement-window span (arm → finish) in sim time, for the
    /// `--trace-out` timeline. Empty when kernel tracing is off.
    pub span_events: Vec<TraceEvent>,
}

impl StatResult {
    /// Render like `perf stat` output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(" Performance counter stats:\n\n");
        for r in &self.rows {
            let note = if r.running_pct() < 99.5 {
                format!("  ({:.1}%)", r.running_pct())
            } else {
                String::new()
            };
            out.push_str(&format!(
                "{:>16}      {}{}\n",
                group_digits(r.value),
                r.label,
                note
            ));
        }
        out.push_str(&format!("\n{:>12.6} seconds time elapsed\n", self.wall_s));
        out
    }

    /// Machine-readable variant of [`StatResult::render`], for tooling
    /// that would otherwise scrape the text table.
    pub fn render_json(&self) -> String {
        let mut w = jsonw::JsonWriter::new();
        w.begin_obj();
        w.field_str("tool", "simperf-stat");
        w.key("rows");
        w.begin_arr();
        for r in &self.rows {
            push_row_json(&mut w, r);
        }
        w.end_arr();
        w.field_f64("wall_s", self.wall_s);
        w.end_obj();
        w.finish()
    }

    /// Sum of all rows whose label contains `needle` (e.g. sum the hybrid
    /// halves of one generic event).
    pub fn total_for(&self, needle: &str) -> u64 {
        self.rows
            .iter()
            .filter(|r| r.label.contains(needle))
            .map(|r| r.value)
            .sum()
    }
}

fn push_row_json(w: &mut jsonw::JsonWriter, r: &StatRow) {
    w.begin_obj();
    w.field_str("event", &r.label);
    w.field_u64("value", r.value);
    w.field_u64("time_enabled", r.time_enabled);
    w.field_u64("time_running", r.time_running);
    w.field_f64("running_pct", r.running_pct());
    w.end_obj();
}

/// JSON for `perf stat -I`-style interval snapshots (delta rows per
/// timestamp), as produced by [`run_interval`].
pub fn interval_json(snaps: &[(f64, Vec<StatRow>)]) -> String {
    let mut w = jsonw::JsonWriter::new();
    w.begin_obj();
    w.field_str("tool", "simperf-stat-interval");
    w.key("intervals");
    w.begin_arr();
    for (t_s, rows) in snaps {
        w.begin_obj();
        w.field_f64("t_s", *t_s);
        w.key("rows");
        w.begin_arr();
        for r in rows {
            push_row_json(&mut w, r);
        }
        w.end_arr();
        w.end_obj();
    }
    w.end_arr();
    w.end_obj();
    w.finish()
}

fn group_digits(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// An armed stat session: events opened and enabled; read after the
/// workload completes.
pub struct StatSession {
    kernel: KernelHandle,
    /// (label, fds-to-sum).
    rows: Vec<(String, Vec<EventFd>)>,
    t0_ns: u64,
    /// Records the measurement window as a span when kernel tracing is
    /// enabled; a disabled sink otherwise (record is a no-op branch).
    trace: TraceSink,
}

/// Errors from setup.
#[derive(Debug)]
pub enum StatError {
    UnknownEvent(String),
    Pfm(pfmlib::PfmError),
    Perf(simos::perf::PerfError),
}

impl std::fmt::Display for StatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatError::UnknownEvent(e) => write!(f, "unknown event '{e}' (see simperf list)"),
            StatError::Pfm(e) => write!(f, "{e}"),
            StatError::Perf(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StatError {}

impl From<pfmlib::PfmError> for StatError {
    fn from(e: pfmlib::PfmError) -> Self {
        StatError::Pfm(e)
    }
}

impl From<simos::perf::PerfError> for StatError {
    fn from(e: simos::perf::PerfError) -> Self {
        StatError::Perf(e)
    }
}

/// Open and enable the counters for `target` per `cfg`. The caller then
/// drives the kernel and finally calls [`StatSession::finish`].
pub fn arm(
    kernel: &KernelHandle,
    cfg: &StatConfig,
    target: Option<Pid>,
) -> Result<StatSession, StatError> {
    let mut k = kernel.lock();
    let pfm = Pfm::initialize(&k, PfmOptions::default())?;
    let hybrid = pfm.default_pmus().len() > 1;
    let mut rows = Vec::new();
    for name in &cfg.events {
        if let Some(config) = parse_software_event(name) {
            let sw = pfm
                .pmu_by_pfm_name("perf_sw")
                .ok_or_else(|| StatError::UnknownEvent(name.clone()))?
                .1;
            let attr = PerfAttr {
                config,
                ..PerfAttr::counting(sw.pmu_id, ArchEvent::Instructions)
            };
            let mut fds = Vec::new();
            if cfg.system_wide {
                let covered = match &cfg.cpus {
                    Some(m) => sw.cpus.and(m),
                    None => sw.cpus,
                };
                for cpu in covered.iter() {
                    fds.push(open_and_enable(&mut k, attr, Target::Cpu(cpu))?);
                }
            } else {
                let pid = target.expect("per-task stat needs a pid");
                fds.push(open_and_enable(&mut k, attr, Target::Thread(pid))?);
            }
            if !fds.is_empty() {
                rows.push((name.clone(), fds));
            }
            continue;
        }
        let arch =
            parse_generic_event(name).ok_or_else(|| StatError::UnknownEvent(name.clone()))?;
        for pmu in pfm.default_pmus() {
            let ua = pmu.uarch.expect("core pmu").params();
            if !ua.supports_event(arch) {
                continue; // e.g. topdown.slots on the E PMU
            }
            let label = if hybrid {
                format!("{}/{}/", pmu.kernel_name, name)
            } else {
                name.clone()
            };
            let attr = PerfAttr::counting(pmu.pmu_id, arch);
            let mut fds = Vec::new();
            if cfg.system_wide {
                let covered = match &cfg.cpus {
                    Some(m) => pmu.cpus.and(m),
                    None => pmu.cpus,
                };
                for cpu in covered.iter() {
                    let fd = open_and_enable(&mut k, attr, Target::Cpu(cpu))?;
                    fds.push(fd);
                }
                if fds.is_empty() {
                    continue;
                }
            } else {
                let pid = target.expect("per-task stat needs a pid");
                fds.push(open_and_enable(&mut k, attr, Target::Thread(pid))?);
            }
            rows.push((label, fds));
        }
    }
    let t0_ns = k.time_ns();
    let trace = TraceSink::new(&k.config().trace);
    Ok(StatSession {
        kernel: kernel.clone(),
        rows,
        t0_ns,
        trace,
    })
}

fn open_and_enable(k: &mut Kernel, attr: PerfAttr, target: Target) -> Result<EventFd, StatError> {
    let fd = k.perf_event_open(attr, target, None)?;
    k.ioctl_enable(fd, false)?;
    Ok(fd)
}

impl StatSession {
    /// Read everything and build the report.
    pub fn finish(mut self) -> Result<StatResult, StatError> {
        let mut k = self.kernel.lock();
        let end_ns = k.time_ns();
        let wall_s = (end_ns - self.t0_ns) as f64 / 1e9;
        // One balanced span covering the measurement window. The flow id
        // is a pure function of the (seeded) arm time, so the export is
        // deterministic run to run.
        let flow = span::snapshot_flow_id(self.t0_ns);
        self.trace
            .record(self.t0_ns, EventKind::SpanBegin, span::STAT, flow, 0);
        self.trace
            .record(end_ns, EventKind::SpanEnd, span::STAT, flow, 0);
        let mut rows = Vec::new();
        for (label, fds) in &self.rows {
            let mut value = 0u64;
            let mut te = 0u64;
            let mut tr = 0u64;
            for fd in fds {
                let rv = k.read_event(*fd)?;
                value += rv.value;
                te += rv.time_enabled;
                tr += rv.time_running;
            }
            rows.push(StatRow {
                label: label.clone(),
                value,
                time_enabled: te,
                time_running: tr,
            });
        }
        Ok(StatResult {
            rows,
            wall_s,
            span_events: self.trace.events(),
        })
    }
}

/// `perf stat -I`: run the kernel to completion, snapshotting the counters
/// every `interval_ns` of simulated time. Each snapshot row carries the
/// *delta* since the previous snapshot, like perf's interval output.
pub fn run_interval(
    session: StatSession,
    interval_ns: u64,
    max_ns: u64,
) -> Result<Vec<(f64, Vec<StatRow>)>, StatError> {
    let kernel = session.kernel.clone();
    let mut out = Vec::new();
    let mut prev: Vec<u64> = vec![0; session.rows.len()];
    let t0 = kernel.lock().time_ns();
    let mut next_snap = t0 + interval_ns;
    let deadline = t0 + max_ns;
    loop {
        let (now, done) = {
            let mut k = kernel.lock();
            k.tick();
            (k.time_ns(), k.all_exited() || k.time_ns() >= deadline)
        };
        if now >= next_snap || done {
            next_snap = now + interval_ns;
            let mut rows = Vec::with_capacity(session.rows.len());
            let mut k = kernel.lock();
            for ((label, fds), prev_v) in session.rows.iter().zip(prev.iter_mut()) {
                let mut value = 0u64;
                let mut te = 0u64;
                let mut tr = 0u64;
                for fd in fds {
                    let rv = k.read_event(*fd)?;
                    value += rv.value;
                    te += rv.time_enabled;
                    tr += rv.time_running;
                }
                rows.push(StatRow {
                    label: label.clone(),
                    value: value - *prev_v,
                    time_enabled: te,
                    time_running: tr,
                });
                *prev_v = value;
            }
            out.push(((now - t0) as f64 / 1e9, rows));
        }
        if done {
            break;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcpu::machine::MachineSpec;
    use simcpu::phase::Phase;
    use simos::kernel::KernelConfig;
    use simos::task::{Op, ScriptedProgram};

    fn boot() -> KernelHandle {
        Kernel::boot_handle(MachineSpec::raptor_lake_i7_13700(), KernelConfig::default())
    }

    fn spawn(kernel: &KernelHandle, cpus: &str, inst: u64) -> Pid {
        kernel.lock().spawn(
            "w",
            Box::new(ScriptedProgram::new([
                Op::Compute(Phase::scalar(inst)),
                Op::Exit,
            ])),
            CpuMask::parse_cpulist(cpus).unwrap(),
            0,
        )
    }

    #[test]
    fn software_events_count_without_hybrid_expansion() {
        let kernel = boot();
        let pid = spawn(&kernel, "0", 2_000_000);
        let cfg = StatConfig {
            events: vec![
                "instructions".into(),
                "context-switches".into(),
                "page-faults".into(),
                "task-clock".into(),
                "cpu-migrations".into(),
            ],
            system_wide: false,
            cpus: None,
        };
        let session = arm(&kernel, &cfg, Some(pid)).unwrap();
        kernel.lock().run_to_completion(60_000_000_000);
        let res = session.finish().unwrap();
        // 2 hybrid instruction rows + 4 single software rows.
        assert_eq!(res.rows.len(), 6);
        assert_eq!(res.total_for("instructions"), 2_000_000);
        assert!(res.total_for("context-switches") >= 1);
        // Phase::scalar touches an 8 KiB working set: 2 first-touch faults.
        assert_eq!(res.total_for("page-faults"), 2);
        assert!(res.total_for("task-clock") > 0, "ns of runtime");
        assert_eq!(res.total_for("cpu-migrations"), 0, "pinned");
    }

    #[test]
    fn per_task_hybrid_expansion() {
        let kernel = boot();
        let pid = spawn(&kernel, "0,16", 5_000_000);
        let cfg = StatConfig {
            events: vec!["instructions".into()],
            system_wide: false,
            cpus: None,
        };
        let session = arm(&kernel, &cfg, Some(pid)).unwrap();
        kernel.lock().run_to_completion(60_000_000_000);
        let res = session.finish().unwrap();
        // Hybrid: two rows, cpu_core + cpu_atom.
        assert_eq!(res.rows.len(), 2);
        assert!(res.rows[0].label.starts_with("cpu_core/"));
        assert!(res.rows[1].label.starts_with("cpu_atom/"));
        assert_eq!(res.total_for("instructions"), 5_000_000);
        assert!(res.wall_s > 0.0);
        let text = res.render();
        assert!(text.contains("cpu_core/instructions/"), "{text}");
        let json = res.render_json();
        assert!(jsonw::validate(&json), "{json}");
        assert!(
            json.contains("\"event\":\"cpu_core/instructions/\""),
            "{json}"
        );
    }

    #[test]
    fn interval_mode_deltas_sum_to_total() {
        let kernel = boot();
        let pid = spawn(&kernel, "0", 50_000_000);
        let cfg = StatConfig {
            events: vec!["instructions".into()],
            system_wide: false,
            cpus: None,
        };
        let session = arm(&kernel, &cfg, Some(pid)).unwrap();
        let snaps = run_interval(session, 2_000_000, 60_000_000_000).unwrap();
        assert!(snaps.len() >= 2, "several interval rows: {}", snaps.len());
        // Per-interval deltas over all (hybrid) rows sum to the total.
        let total: u64 = snaps
            .iter()
            .flat_map(|(_, rows)| rows.iter().map(|r| r.value))
            .sum();
        assert_eq!(total, 50_000_000);
        // Timestamps increase.
        for w in snaps.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
        let json = interval_json(&snaps);
        assert!(jsonw::validate(&json), "{json}");
        assert_eq!(json.matches("\"t_s\":").count(), snaps.len());
    }

    #[test]
    fn homogeneous_has_plain_labels() {
        let kernel = Kernel::boot_handle(MachineSpec::skylake_quad(), KernelConfig::default());
        let pid = spawn(&kernel, "0", 1_000_000);
        let session = arm(&kernel, &StatConfig::default_events(), Some(pid)).unwrap();
        kernel.lock().run_to_completion(60_000_000_000);
        let res = session.finish().unwrap();
        assert_eq!(res.rows[0].label, "instructions");
        assert_eq!(res.rows[0].value, 1_000_000);
    }

    #[test]
    fn system_wide_counts_everything() {
        let kernel = boot();
        spawn(&kernel, "0", 3_000_000);
        spawn(&kernel, "16", 2_000_000);
        let cfg = StatConfig {
            events: vec!["instructions".into()],
            system_wide: true,
            cpus: None,
        };
        let session = arm(&kernel, &cfg, None).unwrap();
        kernel.lock().run_to_completion(60_000_000_000);
        let res = session.finish().unwrap();
        assert_eq!(res.total_for("cpu_core"), 3_000_000);
        assert_eq!(res.total_for("cpu_atom"), 2_000_000);
    }

    #[test]
    fn system_wide_cpu_filter() {
        let kernel = boot();
        spawn(&kernel, "0", 3_000_000);
        spawn(&kernel, "16", 2_000_000);
        let cfg = StatConfig {
            events: vec!["instructions".into()],
            system_wide: true,
            cpus: Some(CpuMask::parse_cpulist("16-23").unwrap()),
        };
        let session = arm(&kernel, &cfg, None).unwrap();
        kernel.lock().run_to_completion(60_000_000_000);
        let res = session.finish().unwrap();
        // Only the atom rows exist (the core PMU covers no selected CPU).
        assert_eq!(res.rows.len(), 1);
        assert_eq!(res.total_for("cpu_atom"), 2_000_000);
    }

    #[test]
    fn asymmetric_event_expands_partially() {
        // topdown.slots exists only on the P-core PMU: one row, not two.
        let kernel = boot();
        let pid = spawn(&kernel, "0", 1_000_000);
        let cfg = StatConfig {
            events: vec!["topdown.slots".into()],
            system_wide: false,
            cpus: None,
        };
        let session = arm(&kernel, &cfg, Some(pid)).unwrap();
        kernel.lock().run_to_completion(60_000_000_000);
        let res = session.finish().unwrap();
        assert_eq!(res.rows.len(), 1);
        assert!(res.rows[0].label.starts_with("cpu_core/"));
        assert!(res.rows[0].value > 0);
    }

    #[test]
    fn unknown_event_rejected() {
        let kernel = boot();
        let pid = spawn(&kernel, "0", 1000);
        let cfg = StatConfig {
            events: vec!["bogus-event".into()],
            system_wide: false,
            cpus: None,
        };
        assert!(matches!(
            arm(&kernel, &cfg, Some(pid)),
            Err(StatError::UnknownEvent(_))
        ));
    }

    #[test]
    fn stat_span_lands_in_trace_export() {
        let kernel = Kernel::boot_handle(
            MachineSpec::raptor_lake_i7_13700(),
            KernelConfig {
                trace: simtrace::TraceConfig::enabled_with_cap(1 << 12),
                ..KernelConfig::default()
            },
        );
        let pid = spawn(&kernel, "0", 1_000_000);
        let cfg = StatConfig {
            events: vec!["instructions".into()],
            system_wide: false,
            cpus: None,
        };
        let session = arm(&kernel, &cfg, Some(pid)).unwrap();
        kernel.lock().run_to_completion(60_000_000_000);
        let res = session.finish().unwrap();
        // One balanced SpanBegin/SpanEnd pair covering the window.
        assert_eq!(res.span_events.len(), 2);
        assert_eq!(res.span_events[0].kind, EventKind::SpanBegin);
        assert_eq!(res.span_events[1].kind, EventKind::SpanEnd);
        assert_eq!(res.span_events[0].code, span::STAT);
        assert!(res.span_events[1].t_ns > res.span_events[0].t_ns);
        let mut tracks = kernel.lock().trace_tracks();
        tracks.push(simtrace::Track::new("simperf", res.span_events.clone()));
        let json = simtrace::chrome_trace_json(&tracks);
        assert!(jsonw::validate(&json), "{json}");
        assert!(json.contains("\"name\":\"stat\""), "{json}");
        assert!(json.contains("simperf"), "{json}");
    }

    #[test]
    fn stat_span_empty_when_tracing_off() {
        let kernel = boot();
        let pid = spawn(&kernel, "0", 1_000);
        let session = arm(&kernel, &StatConfig::default_events(), Some(pid)).unwrap();
        kernel.lock().run_to_completion(60_000_000_000);
        assert!(session.finish().unwrap().span_events.is_empty());
    }

    #[test]
    fn digit_grouping() {
        assert_eq!(group_digits(1_004_300), "1,004,300");
        assert_eq!(group_digits(42), "42");
        assert_eq!(group_digits(1_000), "1,000");
    }
}
