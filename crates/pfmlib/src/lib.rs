//! # pfmlib — the libpfm4 analogue
//!
//! PAPI does not talk to PMU hardware directly: it delegates event naming
//! and encoding to libpfm4. This crate plays that role for the simulated
//! stack:
//!
//! * static per-PMU **event tables** ([`tables`]) with unit masks —
//!   `adl_glc::INST_RETIRED:ANY` and friends;
//! * **name parsing** ([`spec`]) with libpfm4's grammar;
//! * **PMU detection** ([`Pfm::initialize`]) by scanning the (simulated)
//!   `/sys/devices` tree, identifying Intel core PMUs through `cpuid`
//!   (family/model + the hybrid leaf 0x1A) and ARM PMUs through MIDR part
//!   numbers — the exact mechanisms §IV.B/§IV.C of the paper describes,
//!   including the devicetree/ACPI naming wrinkle;
//! * **multiple default PMUs** ([`Pfm::default_pmus`]): on a hybrid
//!   machine every core PMU is a "default" event namespace — the §IV.D
//!   fix. The pre-fix behaviour (stock libpfm4: only one ARM PMU detected)
//!   is available via [`PfmOptions::arm_multi_pmu`] for the paper's
//!   before/after comparisons.
//!
//! [`Pfm::encode`] turns an event name into the `perf_event_attr`-shaped
//! [`simos::PerfAttr`] ready for `perf_event_open`.

pub mod spec;
pub mod tables;

use simcpu::types::CpuMask;
use simcpu::uarch::{Microarch, Vendor};
use simos::kernel::Kernel;
use simos::perf::{PerfAttr, PmuKind};
use spec::{EventSpec, SpecError};
use tables::{events_for_pmu, PfmEvent};

/// Errors from event lookup/encoding and detection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PfmError {
    Parse(SpecError),
    UnknownPmu(String),
    UnknownEvent(String),
    UnknownUmask {
        event: String,
        umask: String,
    },
    /// No default (core) PMU — detection failed entirely.
    NoDefaultPmu,
    /// Event exists in no default PMU's table.
    NotInDefaultPmus(String),
}

impl std::fmt::Display for PfmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PfmError::Parse(e) => write!(f, "parse error: {e}"),
            PfmError::UnknownPmu(p) => write!(f, "unknown PMU '{p}'"),
            PfmError::UnknownEvent(e) => write!(f, "unknown event '{e}'"),
            PfmError::UnknownUmask { event, umask } => {
                write!(f, "unknown umask '{umask}' for event '{event}'")
            }
            PfmError::NoDefaultPmu => write!(f, "no default PMU detected"),
            PfmError::NotInDefaultPmus(e) => {
                write!(f, "event '{e}' not found in any default PMU")
            }
        }
    }
}

impl std::error::Error for PfmError {}

impl From<SpecError> for PfmError {
    fn from(e: SpecError) -> Self {
        PfmError::Parse(e)
    }
}

/// A PMU found at detection time.
#[derive(Debug, Clone)]
pub struct DetectedPmu {
    /// pfm table namespace ("adl_glc", "arm_ac53", "rapl", "unc_llc").
    pub pfm_name: String,
    /// Kernel sysfs name ("cpu_core", "armv8_pmuv3_0", "power").
    pub kernel_name: String,
    /// perf `type` id.
    pub pmu_id: u32,
    pub kind: PmuKind,
    /// CPUs covered.
    pub cpus: CpuMask,
    pub uarch: Option<Microarch>,
    /// Core PMUs are "default": unprefixed event names search them.
    pub is_default: bool,
}

/// Detection options.
#[derive(Debug, Clone)]
pub struct PfmOptions {
    /// With the paper's ARM patches applied, detection finds *all* core
    /// PMUs; stock libpfm4 (`false`) stops after the first on ARM —
    /// reproduces the §IV.C limitation.
    pub arm_multi_pmu: bool,
}

impl Default for PfmOptions {
    fn default() -> Self {
        PfmOptions {
            arm_multi_pmu: true,
        }
    }
}

/// A fully-resolved event: where it came from and how to open it.
#[derive(Debug, Clone)]
pub struct EncodedEvent {
    /// Fully-qualified name ("adl_glc::INST_RETIRED:ANY").
    pub fq_name: String,
    /// The attr to hand to `perf_event_open`.
    pub attr: PerfAttr,
    /// Index of the owning PMU in [`Pfm::pmus`].
    pub pmu_index: usize,
}

/// The initialized library.
pub struct Pfm {
    pmus: Vec<DetectedPmu>,
}

impl Pfm {
    /// Detect PMUs by scanning the simulated sysfs, identifying each core
    /// PMU's microarchitecture the way libpfm4 does on real metal.
    pub fn initialize(kernel: &Kernel, opts: PfmOptions) -> Result<Pfm, PfmError> {
        let mut pmus = Vec::new();
        let entries =
            simos::sysfs::list(kernel, "/sys/devices").map_err(|_| PfmError::NoDefaultPmu)?;
        let mut arm_core_seen = false;
        for name in entries {
            let Ok(type_str) = simos::sysfs::read(kernel, &format!("/sys/devices/{name}/type"))
            else {
                continue; // not a PMU directory (e.g. "system")
            };
            let pmu_id: u32 = type_str.parse().map_err(|_| PfmError::NoDefaultPmu)?;
            let cpus_str = simos::sysfs::read(kernel, &format!("/sys/devices/{name}/cpus"))
                .unwrap_or_default();
            let cpus = CpuMask::parse_cpulist(&cpus_str).unwrap_or(CpuMask::EMPTY);

            // Classify: consult the kernel's registry for the kind, then
            // identify core PMUs by vendor mechanism.
            let Some(desc) = kernel.pmu_by_id(pmu_id) else {
                continue;
            };
            match desc.kind {
                PmuKind::CoreHw => {
                    let Some(first_cpu) = cpus.iter().next() else {
                        continue;
                    };
                    let uarch = identify_core(kernel, first_cpu);
                    let Some(uarch) = uarch else { continue };
                    let is_arm = uarch.params().vendor == Vendor::Arm;
                    if is_arm && arm_core_seen && !opts.arm_multi_pmu {
                        // Stock libpfm4: the ARM PMU scan stops after the
                        // first core PMU (§IV.C).
                        continue;
                    }
                    if is_arm {
                        arm_core_seen = true;
                    }
                    pmus.push(DetectedPmu {
                        pfm_name: uarch.params().pfm_name.to_string(),
                        kernel_name: name.clone(),
                        pmu_id,
                        kind: PmuKind::CoreHw,
                        cpus,
                        uarch: Some(uarch),
                        is_default: true,
                    });
                }
                PmuKind::Rapl => pmus.push(DetectedPmu {
                    pfm_name: "rapl".into(),
                    kernel_name: name.clone(),
                    pmu_id,
                    kind: PmuKind::Rapl,
                    cpus,
                    uarch: None,
                    is_default: false,
                }),
                PmuKind::Uncore => pmus.push(DetectedPmu {
                    pfm_name: if name.contains("imc") {
                        "unc_imc".into()
                    } else {
                        "unc_llc".into()
                    },
                    kernel_name: name.clone(),
                    pmu_id,
                    kind: PmuKind::Uncore,
                    cpus,
                    uarch: None,
                    is_default: false,
                }),
                PmuKind::Software => pmus.push(DetectedPmu {
                    pfm_name: "perf_sw".into(),
                    kernel_name: name.clone(),
                    pmu_id,
                    kind: PmuKind::Software,
                    cpus,
                    uarch: None,
                    is_default: false,
                }),
            }
        }
        if !pmus.iter().any(|p| p.is_default) {
            return Err(PfmError::NoDefaultPmu);
        }
        // Default search order: biggest capacity first — "we currently
        // choose the P core as the default" (§IV.D).
        pmus.sort_by_key(|p| {
            (
                !p.is_default,
                std::cmp::Reverse(p.uarch.map(|u| u.params().capacity).unwrap_or(0)),
                p.pmu_id,
            )
        });
        Ok(Pfm { pmus })
    }

    /// All detected PMUs (defaults first, capacity-descending).
    pub fn pmus(&self) -> &[DetectedPmu] {
        &self.pmus
    }

    /// The default (core) PMUs — plural on hybrid machines.
    pub fn default_pmus(&self) -> Vec<&DetectedPmu> {
        self.pmus.iter().filter(|p| p.is_default).collect()
    }

    /// Find a detected PMU by pfm name.
    pub fn pmu_by_pfm_name(&self, name: &str) -> Option<(usize, &DetectedPmu)> {
        self.pmus
            .iter()
            .enumerate()
            .find(|(_, p)| p.pfm_name == name)
    }

    /// List the event names available on a detected PMU.
    pub fn list_events(&self, pfm_name: &str) -> Result<Vec<String>, PfmError> {
        let table =
            events_for_pmu(pfm_name).ok_or_else(|| PfmError::UnknownPmu(pfm_name.to_string()))?;
        Ok(table
            .iter()
            .map(|e| format!("{pfm_name}::{}", e.name))
            .collect())
    }

    /// Resolve and encode an event name into a `perf_event_attr`.
    pub fn encode(&self, name: &str) -> Result<EncodedEvent, PfmError> {
        let spec = EventSpec::parse(name)?;
        let candidates: Vec<(usize, &DetectedPmu)> = match &spec.pmu {
            Some(p) => {
                let (i, d) = self
                    .pmu_by_pfm_name(p)
                    .ok_or_else(|| PfmError::UnknownPmu(p.clone()))?;
                vec![(i, d)]
            }
            None => {
                // Unprefixed: search default PMUs in order, plus the
                // non-core PMUs (so RAPL_ENERGY_PKG works unprefixed).
                let mut v: Vec<(usize, &DetectedPmu)> = self
                    .pmus
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.is_default)
                    .collect();
                v.extend(self.pmus.iter().enumerate().filter(|(_, p)| !p.is_default));
                v
            }
        };
        let mut last_err = PfmError::UnknownEvent(spec.event.clone());
        for (idx, pmu) in candidates {
            let Some(table) = events_for_pmu(&pmu.pfm_name) else {
                continue;
            };
            match resolve_in_table(table, &spec) {
                Ok((config, umask_name)) => {
                    return Ok(EncodedEvent {
                        fq_name: spec.fq_name(&pmu.pfm_name, umask_name),
                        attr: PerfAttr {
                            pmu_type: pmu.pmu_id,
                            config,
                            disabled: true,
                            sample_period: spec.sample_period.unwrap_or(0),
                            pinned: spec.pinned,
                        },
                        pmu_index: idx,
                    });
                }
                Err(e) => last_err = e,
            }
        }
        if spec.pmu.is_none() && matches!(last_err, PfmError::UnknownEvent(_)) {
            return Err(PfmError::NotInDefaultPmus(spec.event));
        }
        Err(last_err)
    }

    /// Find *every* default-PMU variant of an unprefixed event — the
    /// building block for derived presets that sum across core types.
    pub fn encode_on_all_defaults(&self, name: &str) -> Result<Vec<EncodedEvent>, PfmError> {
        let spec = EventSpec::parse(name)?;
        if spec.pmu.is_some() {
            return Ok(vec![self.encode(name)?]);
        }
        let mut out = Vec::new();
        for (idx, pmu) in self.pmus.iter().enumerate().filter(|(_, p)| p.is_default) {
            let Some(table) = events_for_pmu(&pmu.pfm_name) else {
                continue;
            };
            if let Ok((config, umask_name)) = resolve_in_table(table, &spec) {
                out.push(EncodedEvent {
                    fq_name: spec.fq_name(&pmu.pfm_name, umask_name),
                    attr: PerfAttr {
                        pmu_type: pmu.pmu_id,
                        config,
                        disabled: true,
                        sample_period: spec.sample_period.unwrap_or(0),
                        pinned: spec.pinned,
                    },
                    pmu_index: idx,
                });
            }
        }
        if out.is_empty() {
            return Err(PfmError::NotInDefaultPmus(spec.event));
        }
        Ok(out)
    }
}

/// Identify a core's microarchitecture the way libpfm4 does: cpuid on
/// Intel (family/model, plus hybrid leaf 0x1A), MIDR on ARM.
fn identify_core(kernel: &Kernel, cpu: simcpu::types::CpuId) -> Option<Microarch> {
    match kernel.machine().spec().vendor {
        Vendor::Intel => {
            let (eax1, ..) = kernel.cpuid(cpu, 0x1);
            let family = (eax1 >> 8) & 0xf;
            let model = ((eax1 >> 4) & 0xf) | ((eax1 >> 16) << 4);
            let (eax1a, ..) = kernel.cpuid(cpu, 0x1a);
            match (family, model, eax1a >> 24) {
                (6, 0xb7, 0x40) => Some(Microarch::GoldenCove),
                (6, 0xb7, 0x20) => Some(Microarch::Gracemont),
                (6, 0x5e, _) => Some(Microarch::Skylake),
                _ => None,
            }
        }
        Vendor::Arm => {
            let midr = simos::sysfs::read(
                kernel,
                &format!(
                    "/sys/devices/system/cpu/cpu{}/regs/identification/midr_el1",
                    cpu.0
                ),
            )
            .ok()?;
            let midr = u64::from_str_radix(midr.trim_start_matches("0x"), 16).ok()?;
            let part = ((midr >> 4) & 0xfff) as u32;
            match part {
                0xd08 => Some(Microarch::CortexA72),
                0xd03 => Some(Microarch::CortexA53),
                0xd44 => Some(Microarch::CortexX1),
                0xd0b => Some(Microarch::CortexA76),
                0xd05 => Some(Microarch::CortexA55),
                _ => None,
            }
        }
    }
}

/// Resolve event+umask within one table.
fn resolve_in_table(
    table: &'static [PfmEvent],
    spec: &EventSpec,
) -> Result<(simos::perf::EventConfig, Option<&'static str>), PfmError> {
    let ev = table
        .iter()
        .find(|e| e.name == spec.event)
        .ok_or_else(|| PfmError::UnknownEvent(spec.event.clone()))?;
    // First attr token that names a umask selects it; privilege-style
    // tokens (U, K, H) are accepted and ignored.
    let mut chosen: Option<&tables::PfmUmask> = None;
    for a in &spec.attrs {
        if matches!(a.as_str(), "U" | "K" | "H") {
            continue;
        }
        let um = ev
            .umasks
            .iter()
            .find(|u| u.name == a)
            .ok_or_else(|| PfmError::UnknownUmask {
                event: spec.event.clone(),
                umask: a.clone(),
            })?;
        chosen = Some(um);
    }
    if chosen.is_none() {
        chosen = ev.umasks.iter().find(|u| u.is_default);
    }
    let config = chosen.and_then(|u| u.config).unwrap_or(ev.config);
    Ok((config, chosen.map(|u| u.name)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcpu::machine::MachineSpec;
    use simos::kernel::{Firmware, KernelConfig};

    fn pfm_for(spec: MachineSpec) -> (Kernel, Pfm) {
        let k = Kernel::boot(spec, KernelConfig::default());
        let p = Pfm::initialize(&k, PfmOptions::default()).unwrap();
        (k, p)
    }

    #[test]
    fn raptor_lake_detects_both_core_pmus() {
        let (_, pfm) = pfm_for(MachineSpec::raptor_lake_i7_13700());
        let defaults = pfm.default_pmus();
        assert_eq!(defaults.len(), 2, "hybrid: two default PMUs");
        // P core first (capacity order — the paper's default choice).
        assert_eq!(defaults[0].pfm_name, "adl_glc");
        assert_eq!(defaults[1].pfm_name, "adl_grt");
        assert_eq!(defaults[0].kernel_name, "cpu_core");
        // RAPL and uncore detected, not default.
        assert!(pfm.pmu_by_pfm_name("rapl").is_some());
        assert!(pfm.pmu_by_pfm_name("unc_llc").is_some());
    }

    #[test]
    fn skylake_detects_single_default() {
        let (_, pfm) = pfm_for(MachineSpec::skylake_quad());
        assert_eq!(pfm.default_pmus().len(), 1);
        assert_eq!(pfm.default_pmus()[0].pfm_name, "skl");
    }

    #[test]
    fn orangepi_detects_both_arm_pmus_with_patch() {
        let (_, pfm) = pfm_for(MachineSpec::orangepi_800());
        let names: Vec<&str> = pfm
            .default_pmus()
            .iter()
            .map(|p| p.pfm_name.as_str())
            .collect();
        assert_eq!(names, vec!["arm_ac72", "arm_ac53"]);
    }

    #[test]
    fn stock_libpfm4_misses_second_arm_pmu() {
        // §IV.C: without the paper's patches, ARM detection stops at one.
        let k = Kernel::boot(MachineSpec::orangepi_800(), KernelConfig::default());
        let pfm = Pfm::initialize(
            &k,
            PfmOptions {
                arm_multi_pmu: false,
            },
        )
        .unwrap();
        assert_eq!(pfm.default_pmus().len(), 1);
    }

    #[test]
    fn acpi_naming_still_identified_via_midr() {
        // The PMU dir names are useless under ACPI; MIDR still works.
        let k = Kernel::boot(
            MachineSpec::orangepi_800(),
            KernelConfig {
                firmware: Firmware::Acpi,
                ..Default::default()
            },
        );
        let pfm = Pfm::initialize(&k, PfmOptions::default()).unwrap();
        let names: Vec<&str> = pfm
            .default_pmus()
            .iter()
            .map(|p| p.pfm_name.as_str())
            .collect();
        assert_eq!(names, vec!["arm_ac72", "arm_ac53"]);
        assert!(pfm.default_pmus()[0].kernel_name.starts_with("armv8_pmuv3"));
    }

    #[test]
    fn tri_cluster_three_defaults() {
        let (_, pfm) = pfm_for(MachineSpec::dynamiq_tri());
        assert_eq!(pfm.default_pmus().len(), 3);
    }

    #[test]
    fn encode_paper_events() {
        let (k, pfm) = pfm_for(MachineSpec::raptor_lake_i7_13700());
        let p = pfm.encode("adl_glc::INST_RETIRED:ANY").unwrap();
        let e = pfm.encode("adl_grt::INST_RETIRED:ANY").unwrap();
        assert_ne!(p.attr.pmu_type, e.attr.pmu_type);
        assert_eq!(p.attr.pmu_type, k.pmu_by_name("cpu_core").unwrap().id);
        assert_eq!(
            p.attr.config,
            simos::perf::EventConfig::Hw(simcpu::events::ArchEvent::Instructions)
        );
        assert_eq!(p.fq_name, "adl_glc::INST_RETIRED:ANY");
    }

    #[test]
    fn unprefixed_event_uses_default_pmu_order() {
        let (_, pfm) = pfm_for(MachineSpec::raptor_lake_i7_13700());
        let enc = pfm.encode("INST_RETIRED").unwrap();
        // Resolves in the P-core PMU first.
        assert!(enc.fq_name.starts_with("adl_glc::"));
    }

    #[test]
    fn topdown_encodes_only_on_glc() {
        let (_, pfm) = pfm_for(MachineSpec::raptor_lake_i7_13700());
        assert!(pfm.encode("adl_glc::TOPDOWN:SLOTS").is_ok());
        assert!(matches!(
            pfm.encode("adl_grt::TOPDOWN:SLOTS"),
            Err(PfmError::UnknownEvent(_))
        ));
        // Unprefixed resolves on the P core (where it exists).
        assert!(pfm
            .encode("TOPDOWN:SLOTS")
            .unwrap()
            .fq_name
            .starts_with("adl_glc"));
    }

    #[test]
    fn umask_switches_encoding() {
        let (_, pfm) = pfm_for(MachineSpec::raptor_lake_i7_13700());
        let refs = pfm.encode("adl_glc::LONGEST_LAT_CACHE:REFERENCE").unwrap();
        let miss = pfm.encode("adl_glc::LONGEST_LAT_CACHE:MISS").unwrap();
        assert_ne!(refs.attr.config, miss.attr.config);
    }

    #[test]
    fn bad_names_error() {
        let (_, pfm) = pfm_for(MachineSpec::raptor_lake_i7_13700());
        assert!(matches!(
            pfm.encode("nope::INST_RETIRED"),
            Err(PfmError::UnknownPmu(_))
        ));
        assert!(matches!(
            pfm.encode("adl_glc::NOT_AN_EVENT"),
            Err(PfmError::UnknownEvent(_))
        ));
        assert!(matches!(
            pfm.encode("adl_glc::INST_RETIRED:NOT_A_UMASK"),
            Err(PfmError::UnknownUmask { .. })
        ));
        assert!(matches!(
            pfm.encode("TOTALLY_FAKE"),
            Err(PfmError::NotInDefaultPmus(_))
        ));
    }

    #[test]
    fn encode_on_all_defaults_expands_hybrid() {
        let (_, pfm) = pfm_for(MachineSpec::raptor_lake_i7_13700());
        let all = pfm.encode_on_all_defaults("INST_RETIRED").unwrap();
        assert_eq!(all.len(), 2);
        assert!(all[0].fq_name.starts_with("adl_glc"));
        assert!(all[1].fq_name.starts_with("adl_grt"));
        // Asymmetric events only expand where they exist.
        let td = pfm.encode_on_all_defaults("TOPDOWN:SLOTS").unwrap();
        assert_eq!(td.len(), 1);
        // On homogeneous machines: one entry.
        let (_, skl) = pfm_for(MachineSpec::skylake_quad());
        assert_eq!(skl.encode_on_all_defaults("INST_RETIRED").unwrap().len(), 1);
    }

    #[test]
    fn rapl_events_encode_unprefixed() {
        let (_, pfm) = pfm_for(MachineSpec::raptor_lake_i7_13700());
        let e = pfm.encode("RAPL_ENERGY_PKG").unwrap();
        assert!(e.fq_name.starts_with("rapl::"));
        let e2 = pfm.encode("rapl::RAPL_ENERGY_DRAM").unwrap();
        assert!(matches!(
            e2.attr.config,
            simos::perf::EventConfig::Rapl(simos::perf::RaplConfig::EnergyRam)
        ));
    }

    #[test]
    fn sampling_modifier_flows_into_attr() {
        let (_, pfm) = pfm_for(MachineSpec::raptor_lake_i7_13700());
        let e = pfm
            .encode("adl_glc::INST_RETIRED:ANY:period=12345")
            .unwrap();
        assert_eq!(e.attr.sample_period, 12345);
    }

    #[test]
    fn list_events_nonempty() {
        let (_, pfm) = pfm_for(MachineSpec::raptor_lake_i7_13700());
        let evs = pfm.list_events("adl_glc").unwrap();
        assert!(evs.iter().any(|e| e == "adl_glc::TOPDOWN"));
        assert!(pfm.list_events("bogus").is_err());
    }

    #[test]
    fn arm_events_encode() {
        let (_, pfm) = pfm_for(MachineSpec::orangepi_800());
        let big = pfm.encode("arm_ac72::INST_RETIRED").unwrap();
        let little = pfm.encode("arm_ac53::INST_RETIRED").unwrap();
        assert_ne!(big.attr.pmu_type, little.attr.pmu_type);
        assert!(pfm.encode("arm_ac72::LL_CACHE_MISS_RD").is_ok());
    }
}
