//! Event-name parsing: `pmu::EVENT:UMASK:mod:mod=value`.
//!
//! The grammar follows libpfm4: an optional PMU prefix separated by `::`,
//! the event name, then colon-separated attributes which may be unit masks
//! (resolved against the event's table entry) or modifiers (`u`, `k`,
//! `period=N`, `pinned`).

/// A parsed (but not yet table-resolved) event specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventSpec {
    /// Explicit PMU prefix, if any (`adl_glc` in `adl_glc::INST_RETIRED`).
    pub pmu: Option<String>,
    /// Event name, upper-cased.
    pub event: String,
    /// Attribute tokens in order, upper-cased (umasks and flag modifiers).
    pub attrs: Vec<String>,
    /// `:period=N` modifier.
    pub sample_period: Option<u64>,
    /// `:pinned` modifier.
    pub pinned: bool,
}

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    Empty,
    BadPeriod(String),
    EmptyToken(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Empty => write!(f, "empty event specification"),
            SpecError::BadPeriod(s) => write!(f, "bad period value '{s}'"),
            SpecError::EmptyToken(s) => write!(f, "empty token in '{s}'"),
        }
    }
}

impl std::error::Error for SpecError {}

impl EventSpec {
    /// Parse an event string.
    pub fn parse(s: &str) -> Result<EventSpec, SpecError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(SpecError::Empty);
        }
        let (pmu, rest) = match s.split_once("::") {
            Some((p, r)) => {
                if p.is_empty() || r.is_empty() {
                    return Err(SpecError::EmptyToken(s.into()));
                }
                (Some(p.to_string()), r)
            }
            None => (None, s),
        };
        let mut tokens = rest.split(':');
        let event = tokens
            .next()
            .filter(|t| !t.is_empty())
            .ok_or_else(|| SpecError::EmptyToken(s.into()))?;
        let mut attrs = Vec::new();
        let mut sample_period = None;
        let mut pinned = false;
        for tok in tokens {
            if tok.is_empty() {
                return Err(SpecError::EmptyToken(s.into()));
            }
            let up = tok.to_ascii_uppercase();
            if let Some(v) = up.strip_prefix("PERIOD=") {
                sample_period = Some(v.parse().map_err(|_| SpecError::BadPeriod(tok.into()))?);
            } else if up == "PINNED" {
                pinned = true;
            } else {
                attrs.push(up);
            }
        }
        Ok(EventSpec {
            pmu,
            event: event.to_ascii_uppercase(),
            attrs,
            sample_period,
            pinned,
        })
    }

    /// Fully-qualified display form.
    pub fn fq_name(&self, resolved_pmu: &str, resolved_umask: Option<&str>) -> String {
        let mut out = format!("{resolved_pmu}::{}", self.event);
        if let Some(u) = resolved_umask {
            out.push(':');
            out.push_str(u);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example() {
        let e = EventSpec::parse("adl_glc::INST_RETIRED:ANY").unwrap();
        assert_eq!(e.pmu.as_deref(), Some("adl_glc"));
        assert_eq!(e.event, "INST_RETIRED");
        assert_eq!(e.attrs, vec!["ANY"]);
        assert_eq!(e.sample_period, None);
    }

    #[test]
    fn parses_without_pmu() {
        let e = EventSpec::parse("LONGEST_LAT_CACHE:MISS").unwrap();
        assert_eq!(e.pmu, None);
        assert_eq!(e.attrs, vec!["MISS"]);
    }

    #[test]
    fn case_insensitive_event_and_attrs() {
        let e = EventSpec::parse("adl_grt::inst_retired:any").unwrap();
        assert_eq!(e.event, "INST_RETIRED");
        assert_eq!(e.attrs, vec!["ANY"]);
        // PMU prefix keeps its case (PMU names are lowercase by convention).
        assert_eq!(e.pmu.as_deref(), Some("adl_grt"));
    }

    #[test]
    fn modifiers_extracted() {
        let e = EventSpec::parse("adl_glc::INST_RETIRED:ANY:period=100000:pinned:u").unwrap();
        assert_eq!(e.sample_period, Some(100_000));
        assert!(e.pinned);
        // :u stays as an (ignored-by-encode) attribute token.
        assert_eq!(e.attrs, vec!["ANY", "U"]);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(EventSpec::parse(""), Err(SpecError::Empty));
        assert!(EventSpec::parse("::EVENT").is_err());
        assert!(EventSpec::parse("pmu::").is_err());
        assert!(EventSpec::parse("EV::X:period=abc").is_err());
        assert!(EventSpec::parse("EV::X:").is_err());
    }

    #[test]
    fn fq_name_roundtrip() {
        let e = EventSpec::parse("INST_RETIRED").unwrap();
        assert_eq!(
            e.fq_name("adl_glc", Some("ANY")),
            "adl_glc::INST_RETIRED:ANY"
        );
        assert_eq!(e.fq_name("arm_ac53", None), "arm_ac53::INST_RETIRED");
    }
}
