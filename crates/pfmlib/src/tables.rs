//! Static per-PMU event tables.
//!
//! Mirrors libpfm4's role: a vocabulary of vendor-specific event names
//! (with unit masks) per PMU, mapped to encodings — here, to the
//! architectural events the simulated PMUs count. Naming follows the real
//! tables: Intel hybrid events live under `adl_glc` (Alder/Raptor Lake
//! Golden Cove P-core) and `adl_grt` (Gracemont E-core), exactly the names
//! the paper uses (`adl_glc::INST_RETIRED:ANY`); ARM events use the
//! ARMv8 PMU architectural names (`INST_RETIRED`, `LL_CACHE_MISS_RD`, …).

use simcpu::events::ArchEvent;
use simos::perf::{EventConfig, RaplConfig, UncoreConfig};

/// One unit mask of an event.
#[derive(Debug, Clone, Copy)]
pub struct PfmUmask {
    pub name: &'static str,
    pub desc: &'static str,
    /// Whether this umask is implied when none is given.
    pub is_default: bool,
    /// Encoding override (None = use the event's own encoding).
    pub config: Option<EventConfig>,
}

/// One event table entry.
#[derive(Debug, Clone, Copy)]
pub struct PfmEvent {
    pub name: &'static str,
    pub desc: &'static str,
    pub config: EventConfig,
    pub umasks: &'static [PfmUmask],
}

const fn hw(ev: ArchEvent) -> EventConfig {
    EventConfig::Hw(ev)
}

const NO_UMASKS: &[PfmUmask] = &[];

/// Plain default umask (keeps the event encoding).
const fn um(name: &'static str, desc: &'static str, is_default: bool) -> PfmUmask {
    PfmUmask {
        name,
        desc,
        is_default,
        config: None,
    }
}

/// Umask that switches the encoding.
const fn um_cfg(
    name: &'static str,
    desc: &'static str,
    is_default: bool,
    cfg: EventConfig,
) -> PfmUmask {
    PfmUmask {
        name,
        desc,
        is_default,
        config: Some(cfg),
    }
}

// ---------------------------------------------------------------------------
// Intel hybrid: Golden Cove (P) and Gracemont (E)
// ---------------------------------------------------------------------------

macro_rules! intel_common_events {
    () => {
        &[
            PfmEvent {
                name: "INST_RETIRED",
                desc: "Instructions retired",
                config: hw(ArchEvent::Instructions),
                umasks: &[
                    um("ANY", "all retired instructions (fixed counter)", true),
                    um("ANY_P", "all retired instructions (programmable)", false),
                ],
            },
            PfmEvent {
                name: "CPU_CLK_UNHALTED",
                desc: "Core cycles when not halted",
                config: hw(ArchEvent::Cycles),
                umasks: &[
                    um("THREAD", "core cycles at current frequency", true),
                    um_cfg(
                        "REF_TSC",
                        "reference cycles at TSC rate",
                        false,
                        hw(ArchEvent::RefCycles),
                    ),
                ],
            },
            PfmEvent {
                name: "BR_INST_RETIRED",
                desc: "Branch instructions retired",
                config: hw(ArchEvent::BranchInstructions),
                umasks: &[um("ALL_BRANCHES", "all branches", true)],
            },
            PfmEvent {
                name: "BR_MISP_RETIRED",
                desc: "Mispredicted branches retired",
                config: hw(ArchEvent::BranchMisses),
                umasks: &[um("ALL_BRANCHES", "all mispredicted branches", true)],
            },
            PfmEvent {
                name: "MEM_INST_RETIRED",
                desc: "Memory instructions retired",
                config: hw(ArchEvent::L1dAccesses),
                umasks: &[um("ALL_LOADS", "all retired loads", true)],
            },
            PfmEvent {
                name: "L1D",
                desc: "L1 data cache",
                config: hw(ArchEvent::L1dMisses),
                umasks: &[um("REPLACEMENT", "lines replaced in L1D", true)],
            },
            PfmEvent {
                name: "L2_RQSTS",
                desc: "L2 requests",
                config: hw(ArchEvent::L2Accesses),
                umasks: &[
                    um("REFERENCES", "all L2 requests", true),
                    um_cfg("MISS", "L2 misses", false, hw(ArchEvent::L2Misses)),
                ],
            },
            PfmEvent {
                name: "LONGEST_LAT_CACHE",
                desc: "Last-level cache",
                config: hw(ArchEvent::LlcAccesses),
                umasks: &[
                    um("REFERENCE", "LLC references", true),
                    um_cfg("MISS", "LLC misses", false, hw(ArchEvent::LlcMisses)),
                ],
            },
            PfmEvent {
                name: "CYCLE_ACTIVITY",
                desc: "Stall cycle breakdown",
                config: hw(ArchEvent::MemStallCycles),
                umasks: &[um("STALLS_MEM_ANY", "cycles stalled on memory", true)],
            },
            PfmEvent {
                name: "FP_ARITH_INST_RETIRED",
                desc: "Floating-point operations retired",
                config: hw(ArchEvent::FpOps),
                umasks: &[um("ALL", "scalar + vector DP FLOPs", true)],
            },
            PfmEvent {
                name: "UOPS_RETIRED",
                desc: "Micro-ops retired",
                config: hw(ArchEvent::VectorUops),
                umasks: &[um("VECTOR", "vector micro-ops", true)],
            },
            PfmEvent {
                name: "DTLB_LOAD_MISSES",
                desc: "Data TLB load misses",
                config: hw(ArchEvent::DtlbMisses),
                umasks: &[um("WALK_COMPLETED", "completed page walks", true)],
            },
        ]
    };
}

/// Golden Cove: the common Intel set plus top-down slots, which — as the
/// paper highlights — exists only on the P-core.
pub static ADL_GLC_EVENTS: &[PfmEvent] = {
    const COMMON: &[PfmEvent] = intel_common_events!();
    const EXTRA: PfmEvent = PfmEvent {
        name: "TOPDOWN",
        desc: "Top-down microarchitecture analysis (P-core only)",
        config: hw(ArchEvent::TopdownSlots),
        umasks: &[um("SLOTS", "total pipeline slots", true)],
    };
    // Concatenate at compile time.
    const ALL: [PfmEvent; 13] = {
        let mut out = [EXTRA; 13];
        let mut i = 0;
        while i < 12 {
            out[i] = COMMON[i];
            i += 1;
        }
        out[12] = EXTRA;
        out
    };
    &ALL
};

/// Gracemont: the common Intel set (no TOPDOWN).
pub static ADL_GRT_EVENTS: &[PfmEvent] = intel_common_events!();

/// Skylake (homogeneous control machine).
pub static SKL_EVENTS: &[PfmEvent] = intel_common_events!();

// ---------------------------------------------------------------------------
// ARM (ARMv8 PMU architectural events)
// ---------------------------------------------------------------------------

pub static ARM_V8_EVENTS: &[PfmEvent] = &[
    PfmEvent {
        name: "INST_RETIRED",
        desc: "Instructions architecturally executed",
        config: hw(ArchEvent::Instructions),
        umasks: NO_UMASKS,
    },
    PfmEvent {
        name: "CPU_CYCLES",
        desc: "Processor cycles",
        config: hw(ArchEvent::Cycles),
        umasks: NO_UMASKS,
    },
    PfmEvent {
        name: "BR_RETIRED",
        desc: "Branches architecturally executed",
        config: hw(ArchEvent::BranchInstructions),
        umasks: NO_UMASKS,
    },
    PfmEvent {
        name: "BR_MIS_PRED_RETIRED",
        desc: "Mispredicted branches",
        config: hw(ArchEvent::BranchMisses),
        umasks: NO_UMASKS,
    },
    PfmEvent {
        name: "L1D_CACHE",
        desc: "L1 data cache accesses",
        config: hw(ArchEvent::L1dAccesses),
        umasks: NO_UMASKS,
    },
    PfmEvent {
        name: "L1D_CACHE_REFILL",
        desc: "L1 data cache refills",
        config: hw(ArchEvent::L1dMisses),
        umasks: NO_UMASKS,
    },
    PfmEvent {
        name: "L2D_CACHE",
        desc: "L2 data cache accesses",
        config: hw(ArchEvent::L2Accesses),
        umasks: NO_UMASKS,
    },
    PfmEvent {
        name: "L2D_CACHE_REFILL",
        desc: "L2 data cache refills",
        config: hw(ArchEvent::L2Misses),
        umasks: NO_UMASKS,
    },
    PfmEvent {
        name: "LL_CACHE_RD",
        desc: "Last-level cache reads",
        config: hw(ArchEvent::LlcAccesses),
        umasks: NO_UMASKS,
    },
    PfmEvent {
        name: "LL_CACHE_MISS_RD",
        desc: "Last-level cache read misses",
        config: hw(ArchEvent::LlcMisses),
        umasks: NO_UMASKS,
    },
    PfmEvent {
        name: "STALL_BACKEND",
        desc: "Backend stall cycles",
        config: hw(ArchEvent::MemStallCycles),
        umasks: NO_UMASKS,
    },
    PfmEvent {
        name: "VFP_SPEC",
        desc: "Floating-point operations speculatively executed",
        config: hw(ArchEvent::FpOps),
        umasks: NO_UMASKS,
    },
    PfmEvent {
        name: "ASE_SPEC",
        desc: "Advanced SIMD operations speculatively executed",
        config: hw(ArchEvent::VectorUops),
        umasks: NO_UMASKS,
    },
    PfmEvent {
        name: "DTLB_WALK",
        desc: "Data TLB walks",
        config: hw(ArchEvent::DtlbMisses),
        umasks: NO_UMASKS,
    },
];

// ---------------------------------------------------------------------------
// RAPL and uncore
// ---------------------------------------------------------------------------

pub static RAPL_EVENTS: &[PfmEvent] = &[
    PfmEvent {
        name: "RAPL_ENERGY_PKG",
        desc: "Package energy consumed (µJ)",
        config: EventConfig::Rapl(RaplConfig::EnergyPkg),
        umasks: NO_UMASKS,
    },
    PfmEvent {
        name: "RAPL_ENERGY_CORES",
        desc: "Core (PP0) energy consumed (µJ)",
        config: EventConfig::Rapl(RaplConfig::EnergyCores),
        umasks: NO_UMASKS,
    },
    PfmEvent {
        name: "RAPL_ENERGY_DRAM",
        desc: "DRAM energy consumed (µJ)",
        config: EventConfig::Rapl(RaplConfig::EnergyRam),
        umasks: NO_UMASKS,
    },
    PfmEvent {
        name: "RAPL_ENERGY_PSYS",
        desc: "Platform energy consumed (µJ)",
        config: EventConfig::Rapl(RaplConfig::EnergyPsys),
        umasks: NO_UMASKS,
    },
];

/// Kernel software events (the `perf_sw` namespace).
pub static PERF_SW_EVENTS: &[PfmEvent] = &[
    PfmEvent {
        name: "TASK_CLOCK",
        desc: "Wall-clock time the target ran (ns)",
        config: EventConfig::SwTaskClock,
        umasks: NO_UMASKS,
    },
    PfmEvent {
        name: "CONTEXT_SWITCHES",
        desc: "Times the target was switched in",
        config: EventConfig::SwContextSwitches,
        umasks: NO_UMASKS,
    },
    PfmEvent {
        name: "CPU_MIGRATIONS",
        desc: "Cross-CPU migrations of the target",
        config: EventConfig::SwCpuMigrations,
        umasks: NO_UMASKS,
    },
    PfmEvent {
        name: "PAGE_FAULTS",
        desc: "Minor page faults (first-touch working-set model)",
        config: EventConfig::SwPageFaults,
        umasks: NO_UMASKS,
    },
];

pub static UNCORE_LLC_EVENTS: &[PfmEvent] = &[
    PfmEvent {
        name: "UNC_LLC_LOOKUPS",
        desc: "Package-wide LLC lookups",
        config: EventConfig::Uncore(UncoreConfig::LlcLookups),
        umasks: NO_UMASKS,
    },
    PfmEvent {
        name: "UNC_LLC_MISSES",
        desc: "Package-wide LLC misses",
        config: EventConfig::Uncore(UncoreConfig::LlcMisses),
        umasks: NO_UMASKS,
    },
];

/// Memory-controller (IMC) uncore events.
pub static UNCORE_IMC_EVENTS: &[PfmEvent] = &[PfmEvent {
    name: "UNC_M_CAS_COUNT",
    desc: "DRAM CAS commands",
    config: EventConfig::Uncore(UncoreConfig::ImcCasReads),
    umasks: &[
        um("RD", "read CAS commands (64 B each)", true),
        um_cfg(
            "WR",
            "write CAS commands (64 B each)",
            false,
            EventConfig::Uncore(UncoreConfig::ImcCasWrites),
        ),
    ],
}];

/// Table lookup by pfm PMU name.
pub fn events_for_pmu(pfm_name: &str) -> Option<&'static [PfmEvent]> {
    Some(match pfm_name {
        "adl_glc" => ADL_GLC_EVENTS,
        "adl_grt" => ADL_GRT_EVENTS,
        "skl" => SKL_EVENTS,
        "arm_ac72" | "arm_ac53" | "arm_x1" | "arm_a76" | "arm_a55" => ARM_V8_EVENTS,
        "rapl" => RAPL_EVENTS,
        "unc_llc" => UNCORE_LLC_EVENTS,
        "unc_imc" => UNCORE_IMC_EVENTS,
        "perf_sw" => PERF_SW_EVENTS,
        _ => return None,
    })
}

/// pfm PMU name for a microarchitecture.
pub fn pfm_name_for_uarch(u: simcpu::uarch::Microarch) -> &'static str {
    u.params().pfm_name
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glc_has_topdown_grt_does_not() {
        assert!(ADL_GLC_EVENTS.iter().any(|e| e.name == "TOPDOWN"));
        assert!(!ADL_GRT_EVENTS.iter().any(|e| e.name == "TOPDOWN"));
    }

    #[test]
    fn intel_tables_share_common_set() {
        for name in ["INST_RETIRED", "LONGEST_LAT_CACHE", "CPU_CLK_UNHALTED"] {
            assert!(ADL_GLC_EVENTS.iter().any(|e| e.name == name));
            assert!(ADL_GRT_EVENTS.iter().any(|e| e.name == name));
            assert!(SKL_EVENTS.iter().any(|e| e.name == name));
        }
    }

    #[test]
    fn every_event_with_umasks_has_a_default() {
        for table in [
            ADL_GLC_EVENTS,
            ADL_GRT_EVENTS,
            SKL_EVENTS,
            ARM_V8_EVENTS,
            RAPL_EVENTS,
            UNCORE_LLC_EVENTS,
        ] {
            for e in table {
                if !e.umasks.is_empty() {
                    assert!(
                        e.umasks.iter().any(|u| u.is_default),
                        "{} lacks a default umask",
                        e.name
                    );
                }
            }
        }
    }

    #[test]
    fn event_names_unique_per_table() {
        for table in [ADL_GLC_EVENTS, ARM_V8_EVENTS, RAPL_EVENTS] {
            let mut names: Vec<&str> = table.iter().map(|e| e.name).collect();
            names.sort();
            let before = names.len();
            names.dedup();
            assert_eq!(names.len(), before);
        }
    }

    #[test]
    fn table_lookup() {
        assert!(events_for_pmu("adl_glc").is_some());
        assert!(events_for_pmu("arm_ac53").is_some());
        assert!(events_for_pmu("nonexistent").is_none());
    }

    #[test]
    fn umask_encoding_override() {
        let llc = ADL_GLC_EVENTS
            .iter()
            .find(|e| e.name == "LONGEST_LAT_CACHE")
            .unwrap();
        let miss = llc.umasks.iter().find(|u| u.name == "MISS").unwrap();
        assert_eq!(miss.config, Some(EventConfig::Hw(ArchEvent::LlcMisses)));
    }
}
