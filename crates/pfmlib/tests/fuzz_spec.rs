//! Property tests: the event-spec parser and encoder never panic and
//! respect their grammar on arbitrary input.

use pfmlib::spec::EventSpec;
use pfmlib::{Pfm, PfmOptions};
use proptest::prelude::*;
use simcpu::machine::MachineSpec;
use simos::kernel::{Kernel, KernelConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary strings never panic the parser.
    #[test]
    fn parse_never_panics(s in ".{0,64}") {
        let _ = EventSpec::parse(&s);
    }

    /// Well-formed specs round-trip their components.
    #[test]
    fn wellformed_specs_parse(
        pmu in "[a-z][a-z0-9_]{0,12}",
        ev in "[A-Z][A-Z0-9_]{0,20}",
        umask in proptest::option::of("[A-Z][A-Z0-9_]{0,10}"),
        period in proptest::option::of(1u64..1_000_000),
    ) {
        let mut s = format!("{pmu}::{ev}");
        if let Some(u) = &umask {
            s.push(':');
            s.push_str(u);
        }
        if let Some(p) = period {
            s.push_str(&format!(":period={p}"));
        }
        let parsed = EventSpec::parse(&s).unwrap();
        prop_assert_eq!(parsed.pmu.as_deref(), Some(pmu.as_str()));
        prop_assert_eq!(&parsed.event, &ev);
        prop_assert_eq!(parsed.sample_period, period);
        match umask {
            // PERIOD=/PINNED are modifiers, not umasks; the generator
            // cannot produce them (they contain '='… PINNED can occur!).
            Some(u) if u != "PINNED" => {
                prop_assert_eq!(parsed.attrs, vec![u]);
            }
            Some(_) => prop_assert!(parsed.pinned),
            None => prop_assert!(parsed.attrs.is_empty()),
        }
    }

    /// The encoder never panics on arbitrary names, on any machine.
    #[test]
    fn encode_never_panics(s in ".{0,48}") {
        let k = Kernel::boot(
            MachineSpec::raptor_lake_i7_13700(),
            KernelConfig::default(),
        );
        let pfm = Pfm::initialize(&k, PfmOptions::default()).unwrap();
        let _ = pfm.encode(&s);
        let _ = pfm.encode_on_all_defaults(&s);
    }
}
