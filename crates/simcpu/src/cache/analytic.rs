//! The analytic working-set cache model used by the cycle-batch engine.
//!
//! For each phase we need the fraction of memory references that miss L1,
//! the fraction of those that miss L2, and the fraction of *those* that miss
//! the LLC — at a cost of a few flops, not a simulated address stream.
//!
//! The model: at each level, references that the phase's blocking absorbs
//! (`reuse_*`) always hit; the remainder hit with probability
//! `capacity / working_set` (clamped), the classic fully-associative
//! working-set approximation, plus a small cold-miss floor. On the LLC the
//! capacity is the *dynamic share* this core currently gets of the shared
//! cache (occupancy ∝ access pressure), and a per-µarch `prefetch_hide`
//! factor converts would-be demand misses into hits — the mechanism behind
//! the paper's near-zero E-core LLC miss rates (Table III).

use crate::phase::Phase;
use crate::uarch::UarchParams;

/// Miss fractions produced by the analytic model.
///
/// Each field is conditional on reaching that level:
/// `l1` is misses per reference, `l2` is misses per L1 miss, `llc` is
/// *demand* misses per L2 miss (after prefetch hiding).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissProfile {
    pub l1: f64,
    pub l2: f64,
    pub llc: f64,
    /// Fraction of L2 misses that appear as *demand* LLC accesses at all
    /// (prefetched lines are filled without a demand access).
    pub llc_demand_frac: f64,
}

/// Cold-miss floor: even a cache-resident working set takes some misses
/// (first touch, coherence, TLB walks touching lines).
const COLD_FLOOR: f64 = 0.002;

/// Probability that a non-blocked reference hits a level of capacity
/// `cap` bytes given a working set of `ws` bytes.
#[inline]
fn capacity_hit_prob(ws: u64, cap: u64) -> f64 {
    if ws == 0 {
        return 1.0 - COLD_FLOOR;
    }
    let p = (cap as f64 / ws as f64).clamp(0.0, 1.0);
    (p * (1.0 - COLD_FLOOR)).clamp(0.0, 1.0 - COLD_FLOOR)
}

/// Compute the miss profile of `phase` on a core of `uarch` whose share of
/// the LLC is currently `llc_share_bytes` (0 on machines without an LLC —
/// RK3399 has no L3, its L2 is last-level). Pure in its arguments, which is
/// what lets [`crate::plan::PlanCache`] memoize the result by exact key.
#[inline]
pub fn miss_profile(phase: &Phase, uarch: &UarchParams, llc_share_bytes: u64) -> MissProfile {
    let ws = phase.working_set;

    // L1: blocked references always hit; the rest fall to capacity.
    let l1_hit = phase.reuse_l1 + (1.0 - phase.reuse_l1) * capacity_hit_prob(ws, uarch.l1d_bytes);
    let l1 = (1.0 - l1_hit).clamp(COLD_FLOOR.min(1.0), 1.0);

    // L2: capacity is the per-core share of a possibly module-shared L2.
    let l2_cap = uarch.l2_bytes / uarch.l2_shared_cores.max(1) as u64;
    let l2_hit = phase.reuse_l2 + (1.0 - phase.reuse_l2) * capacity_hit_prob(ws, l2_cap);
    let l2 = (1.0 - l2_hit).clamp(COLD_FLOOR, 1.0);

    // LLC: dynamic shared-capacity hit probability, then prefetch hiding.
    let (llc, llc_demand_frac) = if llc_share_bytes == 0 {
        // No LLC level: every L2 miss goes to memory, and is "demand"
        // only insofar as prefetch does not hide it.
        (1.0, 1.0 - uarch.prefetch_hide)
    } else {
        let hit =
            phase.reuse_llc + (1.0 - phase.reuse_llc) * capacity_hit_prob(ws, llc_share_bytes);
        let raw_miss = (1.0 - hit).clamp(COLD_FLOOR / 4.0, 1.0);
        // Prefetch turns demand misses into hits: the *demand* miss rate
        // the PMU sees shrinks by `prefetch_hide`.
        let demand_miss = raw_miss * (1.0 - uarch.prefetch_hide);
        (demand_miss.max(1e-5), 1.0)
    };

    MissProfile {
        l1,
        l2,
        llc,
        llc_demand_frac,
    }
}

/// Dynamic LLC partitioning: given each co-running context's miss pressure
/// (L2-miss references per second), return each context's capacity share of
/// an LLC of `llc_bytes`. Shares are proportional to pressure, with idle
/// contexts getting nothing; a lone context gets the whole cache.
pub fn llc_shares(llc_bytes: u64, pressures: &[f64]) -> Vec<u64> {
    let mut out = Vec::new();
    llc_shares_into(llc_bytes, pressures, &mut out);
    out
}

/// [`llc_shares`] into a caller-owned buffer, so the per-tick machine
/// update can run without allocating once the buffer's capacity settles.
pub fn llc_shares_into(llc_bytes: u64, pressures: &[f64], out: &mut Vec<u64>) {
    out.clear();
    let total: f64 = pressures.iter().copied().filter(|p| *p > 0.0).sum();
    if total <= 0.0 {
        out.resize(pressures.len(), 0);
        return;
    }
    out.extend(pressures.iter().map(|&p| {
        if p <= 0.0 {
            0
        } else {
            ((p / total) * llc_bytes as f64) as u64
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uarch::{GOLDEN_COVE, GRACEMONT};

    #[test]
    fn small_working_set_hits_everywhere() {
        let p = Phase::scalar(1000);
        let m = miss_profile(&p, &GOLDEN_COVE, 30 << 20);
        assert!(m.l1 < 0.01, "l1 {m:?}");
        assert!(m.llc < 0.05, "llc {m:?}");
    }

    #[test]
    fn huge_stream_misses_llc() {
        let p = Phase::stream(1_000_000, 26 << 30);
        let m = miss_profile(&p, &GOLDEN_COVE, 30 << 20);
        assert!(m.l1 > 0.1, "stream should miss L1 at line rate: {m:?}");
        assert!(
            m.llc > 0.9,
            "P-core demand LLC miss rate should be huge: {m:?}"
        );
    }

    #[test]
    fn prefetch_hide_shrinks_ecore_demand_misses() {
        // The Table III mechanism: same phase, wildly different demand
        // LLC miss rates on P vs E.
        let p = Phase::dgemm(1_000_000, 26 << 30, 0.1);
        let on_p = miss_profile(&p, &GOLDEN_COVE, 15 << 20);
        let on_e = miss_profile(&p, &GRACEMONT, 15 << 20);
        assert!(on_p.llc > 0.5);
        assert!(
            on_e.llc < 0.005,
            "E-core demand miss rate must be tiny: {on_e:?}"
        );
    }

    #[test]
    fn better_blocking_lowers_llc_missrate() {
        let naive = Phase::dgemm(1_000_000, 26 << 30, 0.10);
        let tiled = Phase::dgemm(1_000_000, 26 << 30, 0.35);
        let share = 20 << 20;
        let m_naive = miss_profile(&naive, &GOLDEN_COVE, share);
        let m_tiled = miss_profile(&tiled, &GOLDEN_COVE, share);
        assert!(m_tiled.llc < m_naive.llc);
    }

    #[test]
    fn no_llc_means_memory_after_l2() {
        let p = Phase::stream(1000, 1 << 30);
        let m = miss_profile(&p, &crate::uarch::CORTEX_A72, 0);
        assert_eq!(m.llc, 1.0);
        assert!(m.llc_demand_frac < 1.0); // A72 prefetch hides some
    }

    #[test]
    fn llc_shares_proportional() {
        let shares = llc_shares(100, &[1.0, 3.0, 0.0]);
        assert_eq!(shares[0], 25);
        assert_eq!(shares[1], 75);
        assert_eq!(shares[2], 0);
    }

    #[test]
    fn llc_shares_all_idle() {
        assert_eq!(llc_shares(100, &[0.0, 0.0]), vec![0, 0]);
    }

    #[test]
    fn miss_rates_are_probabilities() {
        // Sweep working sets and check all outputs stay in [0,1].
        for ws_log in 10..36 {
            let p = Phase::dgemm(1000, 1u64 << ws_log, 0.2);
            for ua in [&GOLDEN_COVE, &GRACEMONT] {
                for share in [0u64, 1 << 20, 30 << 20] {
                    let m = miss_profile(&p, ua, share);
                    for v in [m.l1, m.l2, m.llc, m.llc_demand_frac] {
                        assert!((0.0..=1.0).contains(&v), "ws=2^{ws_log} {m:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn miss_rate_monotone_in_working_set() {
        let share = 30 << 20;
        let mut last = 0.0;
        for ws_log in [16u32, 20, 24, 28, 32, 35] {
            let p = Phase::stream(1000, 1u64 << ws_log);
            let m = miss_profile(&p, &GOLDEN_COVE, share);
            assert!(m.llc + 1e-12 >= last, "llc miss not monotone at 2^{ws_log}");
            last = m.llc;
        }
    }
}
