//! Cache modeling.
//!
//! Two models live here, at different fidelities:
//!
//! * [`setassoc`] — a genuine set-associative, LRU, write-allocate cache
//!   simulator driven by explicit address streams. It is far too slow to run
//!   under the cycle-batch engine for the 10¹⁴-FLOP HPL runs, but it is the
//!   ground truth used by tests (and the `cache_calibrate` example) to sanity
//!   check the fast model's miss-rate curves.
//! * [`analytic`] — the fast working-set model the execution engine uses:
//!   closed-form miss rates from (working set, reuse fractions, effective
//!   capacity share), including LLC sharing between heterogeneous clusters.

pub mod analytic;
pub mod setassoc;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes.
    pub line: u32,
}

impl CacheGeometry {
    /// Construct and validate a geometry. Panics on degenerate shapes.
    pub fn new(bytes: u64, ways: u32, line: u32) -> CacheGeometry {
        assert!(bytes > 0 && ways > 0 && line > 0, "degenerate cache");
        assert!(line.is_power_of_two(), "line size must be a power of two");
        assert!(
            bytes.is_multiple_of(ways as u64 * line as u64),
            "capacity must be divisible by ways*line"
        );
        CacheGeometry { bytes, ways, line }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.bytes / (self.ways as u64 * self.line as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_sets() {
        let g = CacheGeometry::new(32 * 1024, 8, 64);
        assert_eq!(g.sets(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn geometry_rejects_odd_line() {
        CacheGeometry::new(32 * 1024, 8, 48);
    }
}
