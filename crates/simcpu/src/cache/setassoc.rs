//! A real set-associative cache simulator.
//!
//! LRU replacement, write-allocate, inclusive multi-level hierarchies. Used
//! by tests and calibration tools to validate the analytic model's miss-rate
//! curves against a concrete machine, and directly usable for small-kernel
//! studies (the `cache_calibrate` example runs a blocked matrix multiply
//! address stream through it).

use super::CacheGeometry;

/// Result of one access against a [`SetAssocCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    Hit,
    Miss,
}

/// One set-associative cache level with LRU replacement and an optional
/// next-line prefetcher.
///
/// Tags are stored per set in recency order (index 0 = MRU); sets are small
/// (≤ 16 ways for every modeled cache) so linear scans beat fancier
/// structures — this is the hot loop of the simulator and stays
/// allocation-free after construction.
///
/// The prefetcher is the concrete mechanism behind the fast model's
/// `prefetch_hide` parameter (and the paper's near-zero E-core demand LLC
/// miss rates): on a demand miss it fills the next `degree` sequential
/// lines, so a streaming access pattern finds its data already resident.
/// Prefetch fills are accounted separately — they are memory traffic but
/// not demand misses, which is exactly the distinction `LLC-load-misses`
/// makes on real hardware.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geom: CacheGeometry,
    set_shift: u32,
    set_mask: u64,
    /// `sets × ways` tag array; `u64::MAX` marks an invalid way.
    tags: Vec<u64>,
    /// Dirty bit per way, parallel to `tags`.
    dirty: Vec<bool>,
    hits: u64,
    misses: u64,
    /// Next-line prefetch degree (0 = disabled).
    prefetch_degree: u32,
    prefetch_fills: u64,
    /// Dirty lines evicted (write-back traffic).
    writebacks: u64,
}

impl SetAssocCache {
    /// Build an empty cache with the given geometry.
    pub fn new(geom: CacheGeometry) -> SetAssocCache {
        SetAssocCache::with_prefetcher(geom, 0)
    }

    /// Build with a next-line prefetcher of the given degree.
    pub fn with_prefetcher(geom: CacheGeometry, degree: u32) -> SetAssocCache {
        let sets = geom.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        SetAssocCache {
            geom,
            set_shift: geom.line.trailing_zeros(),
            set_mask: sets - 1,
            tags: vec![u64::MAX; (sets * geom.ways as u64) as usize],
            dirty: vec![false; (sets * geom.ways as u64) as usize],
            hits: 0,
            misses: 0,
            prefetch_degree: degree,
            prefetch_fills: 0,
            writebacks: 0,
        }
    }

    /// The geometry this cache was built with.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Read-access one byte address; returns hit/miss and updates LRU
    /// state. On a miss, a configured prefetcher fills the following lines.
    pub fn access(&mut self, addr: u64) -> Access {
        self.access_rw(addr, false)
    }

    /// Write-access (write-allocate): like [`SetAssocCache::access`] but
    /// marks the line dirty; evicting a dirty line later counts as a
    /// write-back.
    pub fn access_write(&mut self, addr: u64) -> Access {
        self.access_rw(addr, true)
    }

    fn access_rw(&mut self, addr: u64, write: bool) -> Access {
        let outcome = self.touch(addr >> self.set_shift, true, write);
        if outcome == Access::Miss && self.prefetch_degree > 0 {
            let line_addr = addr >> self.set_shift;
            for d in 1..=self.prefetch_degree as u64 {
                if self.touch(line_addr + d, false, false) == Access::Miss {
                    self.prefetch_fills += 1;
                }
            }
        }
        outcome
    }

    /// Look up / fill one line address. `demand` controls statistics.
    fn touch(&mut self, line_addr: u64, demand: bool, write: bool) -> Access {
        let set = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.set_mask.count_ones();
        let ways = self.geom.ways as usize;
        let base = set * ways;
        let set_tags = &mut self.tags[base..base + ways];
        let set_dirty = &mut self.dirty[base..base + ways];

        if let Some(pos) = set_tags.iter().position(|&t| t == tag) {
            // Move to MRU position (demand only: prefetch probes must not
            // perturb recency).
            if demand {
                set_tags[..=pos].rotate_right(1);
                set_dirty[..=pos].rotate_right(1);
                if write {
                    set_dirty[0] = true;
                }
                self.hits += 1;
            } else if write {
                set_dirty[pos] = true;
            }
            Access::Hit
        } else {
            // Evict LRU (last): a dirty victim is written back.
            if set_tags[ways - 1] != u64::MAX && set_dirty[ways - 1] {
                self.writebacks += 1;
            }
            set_tags.rotate_right(1);
            set_dirty.rotate_right(1);
            set_tags[0] = tag;
            set_dirty[0] = write;
            if demand {
                self.misses += 1;
            }
            Access::Miss
        }
    }

    /// Dirty lines evicted so far (write-back memory traffic).
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Lines brought in by the prefetcher (memory traffic that is not a
    /// demand miss).
    pub fn prefetch_fills(&self) -> u64 {
        self.prefetch_fills
    }

    /// Hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio over everything accessed so far (0 if nothing accessed).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Forget all contents and statistics.
    pub fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        self.dirty.fill(false);
        self.hits = 0;
        self.misses = 0;
        self.prefetch_fills = 0;
        self.writebacks = 0;
    }
}

/// A multi-level hierarchy (L1 → L2 → LLC) of [`SetAssocCache`]s.
///
/// Misses propagate downward; per-level hit/miss statistics are those a
/// PMU would report (each level only sees accesses that missed above it).
#[derive(Debug, Clone)]
pub struct Hierarchy {
    levels: Vec<SetAssocCache>,
}

impl Hierarchy {
    /// Build from outermost-first geometries (L1 first).
    pub fn new(geoms: &[CacheGeometry]) -> Hierarchy {
        assert!(!geoms.is_empty(), "hierarchy needs at least one level");
        Hierarchy {
            levels: geoms.iter().map(|g| SetAssocCache::new(*g)).collect(),
        }
    }

    /// Access an address; returns the level that hit (0 = L1) or
    /// `levels.len()` for memory.
    pub fn access(&mut self, addr: u64) -> usize {
        for (i, level) in self.levels.iter_mut().enumerate() {
            if level.access(addr) == Access::Hit {
                return i;
            }
        }
        self.levels.len()
    }

    /// Per-level caches, L1 first.
    pub fn levels(&self) -> &[SetAssocCache] {
        &self.levels
    }

    /// Reset all levels.
    pub fn reset(&mut self) {
        for l in &mut self.levels {
            l.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 1 KB, 2-way, 64 B lines → 8 sets.
        SetAssocCache::new(CacheGeometry::new(1024, 2, 64))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert_eq!(c.access(0), Access::Miss);
        assert_eq!(c.access(0), Access::Hit);
        assert_eq!(c.access(63), Access::Hit); // same line
        assert_eq!(c.access(64), Access::Miss); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Three lines mapping to set 0: stride = sets*line = 512.
        c.access(0); // A miss
        c.access(512); // B miss
        c.access(0); // A hit, A is MRU
        c.access(1024); // C miss, evicts B (LRU)
        assert_eq!(c.access(0), Access::Hit); // A still here
        assert_eq!(c.access(512), Access::Miss); // B evicted
    }

    #[test]
    fn working_set_fits_no_capacity_misses() {
        let mut c = small();
        // Touch exactly the capacity (16 lines), twice; second pass all hits.
        for addr in (0..1024).step_by(64) {
            c.access(addr);
        }
        let misses_after_warm = c.misses();
        for addr in (0..1024).step_by(64) {
            assert_eq!(c.access(addr), Access::Hit);
        }
        assert_eq!(c.misses(), misses_after_warm);
    }

    #[test]
    fn streaming_overflow_misses_every_line() {
        let mut c = small();
        // Stream 16 KB (16× capacity) twice: every access misses.
        for pass in 0..2 {
            for addr in (0..16 * 1024).step_by(64) {
                assert_eq!(c.access(addr), Access::Miss, "pass {pass} addr {addr}");
            }
        }
        assert_eq!(c.miss_ratio(), 1.0);
    }

    #[test]
    fn hierarchy_levels_filter() {
        let mut h = Hierarchy::new(&[
            CacheGeometry::new(1024, 2, 64),
            CacheGeometry::new(8 * 1024, 4, 64),
        ]);
        assert_eq!(h.access(0), 2); // cold: misses both, hits memory
        assert_eq!(h.access(0), 0); // L1 hit
                                    // Push L1 out with conflicting lines; L2 still holds line 0.
        for addr in (4096..4096 + 2048).step_by(64) {
            h.access(addr);
        }
        let lvl = h.access(0);
        assert!(lvl >= 1, "line 0 should have left L1, got level {lvl}");
    }

    #[test]
    fn writebacks_track_dirty_evictions() {
        let geom = CacheGeometry::new(1024, 2, 64); // 16 lines
        let mut c = SetAssocCache::new(geom);
        // Write a 64-line stream (4× capacity): every line is dirtied and
        // later evicted → ~48 write-backs (the last 16 stay resident).
        for addr in (0..64 * 64).step_by(64) {
            c.access_write(addr);
        }
        assert_eq!(c.writebacks(), 48, "evicted dirty lines");
        // A read-only pass over new addresses evicts the remaining 16
        // dirty lines, then stops producing write-backs.
        for addr in (64 * 64..160 * 64).step_by(64) {
            c.access(addr);
        }
        assert_eq!(c.writebacks(), 48 + 16);
    }

    #[test]
    fn read_only_streams_never_write_back() {
        let mut c = SetAssocCache::new(CacheGeometry::new(1024, 2, 64));
        for addr in (0..1 << 16).step_by(64) {
            c.access(addr);
        }
        assert_eq!(c.writebacks(), 0);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let geom = CacheGeometry::new(1024, 2, 64);
        let mut c = SetAssocCache::new(geom);
        c.access(0); // clean fill
        c.access_write(0); // dirty via hit
                           // Conflict it out: two more lines in set 0 (stride 512).
        c.access(512);
        c.access(1024);
        assert_eq!(c.writebacks(), 1, "dirtied-on-hit line written back");
    }

    #[test]
    fn prefetcher_hides_streaming_demand_misses() {
        // The Table III mechanism, demonstrated on real cache state: a
        // sequential stream through a too-small cache misses every line
        // without a prefetcher, and almost never with one.
        let geom = CacheGeometry::new(1024, 2, 64);
        let mut plain = SetAssocCache::new(geom);
        let mut pf = SetAssocCache::with_prefetcher(geom, 4);
        for addr in (0..64 * 1024).step_by(64) {
            plain.access(addr);
            pf.access(addr);
        }
        assert_eq!(plain.miss_ratio(), 1.0);
        assert!(
            pf.miss_ratio() < 0.25,
            "prefetched stream demand miss ratio = {}",
            pf.miss_ratio()
        );
        // The data still crossed the bus: fills + demand misses cover the
        // whole stream.
        let lines = 64 * 1024 / 64;
        assert!(pf.prefetch_fills() + pf.misses() >= lines as u64);
    }

    #[test]
    fn prefetcher_useless_on_random_access() {
        let geom = CacheGeometry::new(1024, 2, 64);
        let mut pf = SetAssocCache::with_prefetcher(geom, 4);
        let mut lcg: u64 = 0x1234_5678;
        for _ in 0..4000 {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            pf.access((lcg >> 16) & 0xFF_FFFF);
        }
        assert!(
            pf.miss_ratio() > 0.9,
            "random stream should defeat next-line prefetch: {}",
            pf.miss_ratio()
        );
    }

    #[test]
    fn reset_clears_contents() {
        let mut c = small();
        c.access(0);
        c.reset();
        assert_eq!(c.misses(), 0);
        assert_eq!(c.access(0), Access::Miss);
    }
}
