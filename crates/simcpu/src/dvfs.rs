//! DVFS: per-cluster frequency domains and the schedutil-like governor.
//!
//! Each cluster (a set of identical cores) is one frequency domain, as on
//! real hybrid parts: Raptor Lake's P-cores share a domain, the E-cores
//! share another; the RK3399 has independent big and LITTLE domains.
//!
//! Every governor interval the target frequency is computed from the
//! domain's peak utilization (`f = 1.25·util·f_max`, the schedutil rule),
//! then clamped by the RAPL limiter's scale and the thermal governor's
//! trip caps, and finally slewed toward the target at a finite ramp rate —
//! which is what gives Figure 1/3-style traces their ramps instead of
//! square edges.

use crate::types::{Khz, Nanos};

/// Static description of one frequency domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreqDomainSpec {
    pub f_min_khz: Khz,
    pub f_max_khz: Khz,
    /// Maximum frequency change per second of wall time (kHz/s).
    pub slew_khz_per_s: u64,
}

impl FreqDomainSpec {
    pub fn new(f_min_khz: Khz, f_max_khz: Khz) -> FreqDomainSpec {
        assert!(f_min_khz > 0 && f_max_khz >= f_min_khz);
        FreqDomainSpec {
            f_min_khz,
            f_max_khz,
            // Full range in ~150 ms, typical of modern turbo ramps.
            slew_khz_per_s: ((f_max_khz - f_min_khz).max(100_000)) * 7,
        }
    }
}

/// Live state of one frequency domain.
#[derive(Debug, Clone)]
pub struct FreqDomain {
    spec: FreqDomainSpec,
    cur_khz: Khz,
}

impl FreqDomain {
    /// Domains boot at minimum frequency.
    pub fn new(spec: FreqDomainSpec) -> FreqDomain {
        let f = spec.f_min_khz;
        FreqDomain { spec, cur_khz: f }
    }

    /// Current frequency.
    pub fn cur_khz(&self) -> Khz {
        self.cur_khz
    }

    /// The static spec.
    pub fn spec(&self) -> &FreqDomainSpec {
        &self.spec
    }

    /// One governor step.
    ///
    /// * `util` — peak utilization among the domain's CPUs (0..=1);
    /// * `power_scale` — RAPL limiter output (0..=1];
    /// * `thermal_cap_khz` — trip-table cap (`u64::MAX` if unthrottled).
    pub fn step(&mut self, dt_ns: Nanos, util: f64, power_scale: f64, thermal_cap_khz: Khz) {
        let s = &self.spec;
        // schedutil: next_f = 1.25 · util · f_max.
        let demand = (1.25 * util.clamp(0.0, 1.0) * s.f_max_khz as f64) as u64;
        let power_lim = (s.f_max_khz as f64 * power_scale.clamp(0.0, 1.0)) as u64;
        let target = demand
            .min(power_lim)
            .min(thermal_cap_khz)
            .clamp(s.f_min_khz, s.f_max_khz);

        // Slew toward target.
        let max_step = (s.slew_khz_per_s as f64 * dt_ns as f64 / 1e9) as u64;
        self.cur_khz = if target > self.cur_khz {
            (self.cur_khz + max_step.max(1)).min(target)
        } else {
            self.cur_khz.saturating_sub(max_step.max(1)).max(target)
        };
    }

    /// Force the frequency (tests).
    pub fn set_khz(&mut self, khz: Khz) {
        self.cur_khz = khz.clamp(self.spec.f_min_khz, self.spec.f_max_khz);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: Nanos = 1_000_000;

    fn domain() -> FreqDomain {
        FreqDomain::new(FreqDomainSpec::new(2_100_000, 5_100_000))
    }

    #[test]
    fn boots_at_min() {
        assert_eq!(domain().cur_khz(), 2_100_000);
    }

    #[test]
    fn ramps_to_max_under_full_load() {
        let mut d = domain();
        for _ in 0..1000 {
            d.step(MS, 1.0, 1.0, u64::MAX);
        }
        assert_eq!(d.cur_khz(), 5_100_000);
    }

    #[test]
    fn ramp_is_gradual() {
        let mut d = domain();
        d.step(10 * MS, 1.0, 1.0, u64::MAX);
        let f1 = d.cur_khz();
        assert!(f1 > 2_100_000 && f1 < 5_100_000, "f after 10ms = {f1}");
    }

    #[test]
    fn power_scale_caps_frequency() {
        let mut d = domain();
        for _ in 0..1000 {
            d.step(MS, 1.0, 0.512, u64::MAX);
        }
        // 0.512 · 5.1 GHz ≈ 2.61 GHz, the paper's Intel-HPL P-core median.
        let f = d.cur_khz();
        assert!((2_550_000..2_680_000).contains(&f), "f = {f}");
    }

    #[test]
    fn thermal_cap_wins_when_lower() {
        let mut d = domain();
        for _ in 0..1000 {
            d.step(MS, 1.0, 1.0, 2_200_000);
        }
        assert_eq!(d.cur_khz(), 2_200_000);
    }

    #[test]
    fn idle_falls_to_min() {
        let mut d = domain();
        for _ in 0..1000 {
            d.step(MS, 1.0, 1.0, u64::MAX);
        }
        for _ in 0..1000 {
            d.step(MS, 0.0, 1.0, u64::MAX);
        }
        assert_eq!(d.cur_khz(), 2_100_000);
    }

    #[test]
    fn partial_util_partial_frequency() {
        let mut d = domain();
        for _ in 0..2000 {
            d.step(MS, 0.5, 1.0, u64::MAX);
        }
        // 1.25·0.5·5.1 = 3.19 GHz.
        let f = d.cur_khz();
        assert!((3_100_000..3_300_000).contains(&f), "f = {f}");
    }
}
