//! The architectural event vocabulary counted by the simulated PMUs.
//!
//! Real PMUs expose hundreds of raw event-select/umask encodings whose
//! meaning differs per microarchitecture; the portable core that performance
//! libraries actually consume is a much smaller set. We model that set as
//! [`ArchEvent`]. The `pfmlib` crate maps vendor-specific event *names*
//! (e.g. `adl_glc::INST_RETIRED:ANY`) onto these architectural events plus a
//! PMU type, mirroring how libpfm4 maps names onto `(config, type)` pairs.
//!
//! Crucially for the paper, availability is *per microarchitecture*: Intel
//! top-down slots exist only on the P-core (GoldenCove), exactly the example
//! the paper gives of an event present on one hybrid core type and absent on
//! the other.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Architectural events countable by a core PMU.
///
/// The discriminants are stable and used as array indices in
/// [`EventCounts`]; append new events at the end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum ArchEvent {
    /// Retired instructions.
    Instructions = 0,
    /// Core clock cycles (at current frequency).
    Cycles = 1,
    /// Reference cycles (constant-rate TSC-like clock).
    RefCycles = 2,
    /// Retired branch instructions.
    BranchInstructions = 3,
    /// Mispredicted branches.
    BranchMisses = 4,
    /// L1 data-cache accesses.
    L1dAccesses = 5,
    /// L1 data-cache misses.
    L1dMisses = 6,
    /// L2 (unified) accesses.
    L2Accesses = 7,
    /// L2 misses.
    L2Misses = 8,
    /// Last-level-cache accesses (LONGEST_LAT_CACHE.REFERENCE).
    LlcAccesses = 9,
    /// Last-level-cache misses (LONGEST_LAT_CACHE.MISS).
    LlcMisses = 10,
    /// Cycles stalled on memory.
    MemStallCycles = 11,
    /// Double-precision floating-point operations (scalar + vector lanes).
    FpOps = 12,
    /// Retired vector (SIMD) micro-ops.
    VectorUops = 13,
    /// Top-down pipeline slots. **GoldenCove (P-core) only** — the paper's
    /// canonical example of a hybrid-asymmetric event.
    TopdownSlots = 14,
    /// Data-TLB misses.
    DtlbMisses = 15,
}

/// Number of architectural events (length of [`EventCounts`]).
pub const NUM_ARCH_EVENTS: usize = 16;

/// All events, in discriminant order.
pub const ALL_ARCH_EVENTS: [ArchEvent; NUM_ARCH_EVENTS] = [
    ArchEvent::Instructions,
    ArchEvent::Cycles,
    ArchEvent::RefCycles,
    ArchEvent::BranchInstructions,
    ArchEvent::BranchMisses,
    ArchEvent::L1dAccesses,
    ArchEvent::L1dMisses,
    ArchEvent::L2Accesses,
    ArchEvent::L2Misses,
    ArchEvent::LlcAccesses,
    ArchEvent::LlcMisses,
    ArchEvent::MemStallCycles,
    ArchEvent::FpOps,
    ArchEvent::VectorUops,
    ArchEvent::TopdownSlots,
    ArchEvent::DtlbMisses,
];

impl ArchEvent {
    /// Array index of this event.
    #[inline]
    pub fn idx(self) -> usize {
        self as usize
    }

    /// Event from its index, if valid.
    pub fn from_idx(i: usize) -> Option<ArchEvent> {
        ALL_ARCH_EVENTS.get(i).copied()
    }

    /// Generic (vendor-neutral) name, close to `perf list` spellings.
    pub fn generic_name(self) -> &'static str {
        match self {
            ArchEvent::Instructions => "instructions",
            ArchEvent::Cycles => "cycles",
            ArchEvent::RefCycles => "ref-cycles",
            ArchEvent::BranchInstructions => "branches",
            ArchEvent::BranchMisses => "branch-misses",
            ArchEvent::L1dAccesses => "L1-dcache-loads",
            ArchEvent::L1dMisses => "L1-dcache-load-misses",
            ArchEvent::L2Accesses => "l2_rqsts.references",
            ArchEvent::L2Misses => "l2_rqsts.miss",
            ArchEvent::LlcAccesses => "LLC-loads",
            ArchEvent::LlcMisses => "LLC-load-misses",
            ArchEvent::MemStallCycles => "cycle_activity.stalls_mem_any",
            ArchEvent::FpOps => "fp_arith_inst_retired.all",
            ArchEvent::VectorUops => "uops_retired.vector",
            ArchEvent::TopdownSlots => "topdown.slots",
            ArchEvent::DtlbMisses => "dTLB-load-misses",
        }
    }
}

impl fmt::Display for ArchEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.generic_name())
    }
}

/// A dense vector of counts, one slot per [`ArchEvent`].
///
/// This is the unit of exchange between the execution model (which produces
/// per-tick deltas) and the PMU hardware (which accumulates enabled events).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EventCounts(pub [u64; NUM_ARCH_EVENTS]);

impl EventCounts {
    /// All-zero counts.
    pub const ZERO: EventCounts = EventCounts([0; NUM_ARCH_EVENTS]);

    /// Add `other` into `self`, saturating (counters cannot exceed u64).
    pub fn add(&mut self, other: &EventCounts) {
        for i in 0..NUM_ARCH_EVENTS {
            self.0[i] = self.0[i].saturating_add(other.0[i]);
        }
    }

    /// Total for one event.
    #[inline]
    pub fn get(&self, ev: ArchEvent) -> u64 {
        self.0[ev.idx()]
    }

    /// Set the count for one event.
    #[inline]
    pub fn set(&mut self, ev: ArchEvent, v: u64) {
        self.0[ev.idx()] = v;
    }

    /// Increment one event.
    #[inline]
    pub fn bump(&mut self, ev: ArchEvent, by: u64) {
        self.0[ev.idx()] = self.0[ev.idx()].saturating_add(by);
    }

    /// True when every slot is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&c| c == 0)
    }
}

impl Index<ArchEvent> for EventCounts {
    type Output = u64;
    #[inline]
    fn index(&self, ev: ArchEvent) -> &u64 {
        &self.0[ev.idx()]
    }
}

impl IndexMut<ArchEvent> for EventCounts {
    #[inline]
    fn index_mut(&mut self, ev: ArchEvent) -> &mut u64 {
        &mut self.0[ev.idx()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_stable() {
        for (i, ev) in ALL_ARCH_EVENTS.iter().enumerate() {
            assert_eq!(ev.idx(), i);
            assert_eq!(ArchEvent::from_idx(i), Some(*ev));
        }
        assert_eq!(ArchEvent::from_idx(NUM_ARCH_EVENTS), None);
    }

    #[test]
    fn counts_add_and_index() {
        let mut a = EventCounts::ZERO;
        a.bump(ArchEvent::Instructions, 100);
        a.bump(ArchEvent::Cycles, 50);
        let mut b = EventCounts::ZERO;
        b.bump(ArchEvent::Instructions, 1);
        b.add(&a);
        assert_eq!(b[ArchEvent::Instructions], 101);
        assert_eq!(b[ArchEvent::Cycles], 50);
        assert_eq!(b.get(ArchEvent::LlcMisses), 0);
    }

    #[test]
    fn counts_saturate() {
        let mut a = EventCounts::ZERO;
        a.set(ArchEvent::Cycles, u64::MAX - 1);
        let mut d = EventCounts::ZERO;
        d.set(ArchEvent::Cycles, 10);
        a.add(&d);
        assert_eq!(a[ArchEvent::Cycles], u64::MAX);
    }

    #[test]
    fn generic_names_unique() {
        let mut names: Vec<&str> = ALL_ARCH_EVENTS.iter().map(|e| e.generic_name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), NUM_ARCH_EVENTS);
    }
}
