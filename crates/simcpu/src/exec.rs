//! The cycle-batch execution engine.
//!
//! Given a [`Phase`], a core's microarchitecture, frequency and cache
//! situation, [`advance`] computes how many instructions retire within a
//! cycle budget and what performance-counter events they generate. All the
//! paper's observable quantities flow from here: instructions per core type,
//! LLC miss rates, FLOP throughput (→ HPL Gflops), and the stall behaviour
//! that makes memory-bound code insensitive to frequency.
//!
//! The CPI model is additive with a throughput floor:
//!
//! ```text
//! cpi = max(1/ipc_base, flops_per_inst/flops_per_cycle)      // issue/FP bound
//!     + mem_ref_rate · miss-weighted latency / MLP           // memory stalls
//!     + branch_rate · branch_miss_rate · penalty             // speculation
//! ```
//!
//! Memory latency is counted in *cycles at the current frequency*, so a
//! core that clocks higher spends more cycles per miss — which is exactly
//! why DVFS helps compute-bound HPL phases and does nothing for streams.

use crate::cache::analytic::{miss_profile, MissProfile};
use crate::events::{ArchEvent, EventCounts};
use crate::phase::Phase;
use crate::plan::{PlanCache, PlanEntry, PlanKey};
use crate::uarch::UarchParams;

/// DRAM access latency in nanoseconds (uncontended).
pub const MEM_LAT_NS: f64 = 85.0;

/// Cache line size used for bandwidth accounting.
pub const LINE_BYTES: f64 = 64.0;

/// Everything the engine needs to know about where a phase is running.
#[derive(Debug, Clone)]
pub struct ExecContext<'a> {
    /// Microarchitecture of the executing core.
    pub uarch: &'a UarchParams,
    /// Current core frequency in kHz.
    pub freq_khz: u64,
    /// Reference (TSC) frequency in kHz, for `RefCycles`.
    pub ref_khz: u64,
    /// This context's current share of the LLC in bytes (0 = no LLC).
    pub llc_share_bytes: u64,
    /// Memory-contention multiplier on miss latency (1.0 = uncontended).
    pub mem_contention: f64,
    /// Throughput factor for SMT sharing (1.0 = core to ourselves).
    pub smt_factor: f64,
}

/// What a slice of execution produced.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecResult {
    /// Instructions retired.
    pub instructions: u64,
    /// Core cycles consumed (at `freq_khz`).
    pub cycles: u64,
    /// PMU-visible event deltas.
    pub events: EventCounts,
    /// Double-precision FLOPs performed.
    pub flops: f64,
    /// Bytes demanded from DRAM (for bandwidth accounting).
    pub mem_bytes: f64,
}

/// Cycles per instruction of `phase` in this context.
pub fn cpi(phase: &Phase, ctx: &ExecContext<'_>) -> f64 {
    let m = miss_profile(phase, ctx.uarch, ctx.llc_share_bytes);
    cpi_with_profile(phase, ctx, &m)
}

fn cpi_with_profile(phase: &Phase, ctx: &ExecContext<'_>, m: &MissProfile) -> f64 {
    let ua = ctx.uarch;
    let f_ghz = ctx.freq_khz as f64 / 1e6;

    // Issue-width / FP-throughput floor.
    let issue_cpi = (1.0 / ua.ipc_base).max(if ua.flops_per_cycle > 0.0 {
        phase.flops_per_inst / ua.flops_per_cycle
    } else {
        f64::INFINITY
    });

    // Miss-weighted memory latency per reference, in cycles.
    let mem_lat_cycles = MEM_LAT_NS * ctx.mem_contention * f_ghz;
    let l2_per_ref = m.l1 * ua.l2_lat_cycles;
    let (llc_per_ref, mem_per_ref) = if ctx.llc_share_bytes == 0 {
        // No LLC: L2 misses go straight to memory; prefetch hides latency
        // for the fraction that is not demand-visible.
        (0.0, m.l1 * m.l2 * m.llc_demand_frac * mem_lat_cycles)
    } else {
        (
            m.l1 * m.l2 * ua.llc_lat_cycles,
            m.l1 * m.l2 * m.llc * mem_lat_cycles,
        )
    };
    let mem_cpi = phase.mem_ref_rate * (l2_per_ref + llc_per_ref + mem_per_ref) / ua.mlp.max(1.0);

    let branch_cpi = phase.branch_rate * phase.branch_miss_rate * ua.mispredict_penalty;

    (issue_cpi + mem_cpi + branch_cpi) / ctx.smt_factor.clamp(0.05, 1.0)
}

/// Run up to `budget_cycles` of `phase` (without consuming more than
/// `phase.instructions`). Returns what happened; the caller subtracts
/// `result.instructions` from the phase.
pub fn advance(phase: &Phase, budget_cycles: f64, ctx: &ExecContext<'_>) -> ExecResult {
    if phase.instructions == 0 || budget_cycles <= 0.0 {
        return ExecResult::default();
    }
    let m = miss_profile(phase, ctx.uarch, ctx.llc_share_bytes);
    let cpi = cpi_with_profile(phase, ctx, &m);
    debug_assert!(cpi.is_finite() && cpi > 0.0, "bad cpi {cpi}");

    let max_inst = (budget_cycles / cpi).floor() as u64;
    let inst = max_inst.min(phase.instructions);
    if inst == 0 {
        return ExecResult::default();
    }
    result_for_inst(phase, ctx, &m, cpi, inst)
}

/// [`advance`] through a [`PlanCache`]: bit-identical results, with the
/// miss profile + CPI (and, on the common steady path, the whole
/// [`ExecResult`]) served from the memoized plan instead of recomputed.
pub fn advance_planned(
    phase: &Phase,
    budget_cycles: f64,
    ctx: &ExecContext<'_>,
    cache: &mut PlanCache,
) -> ExecResult {
    if phase.instructions == 0 || budget_cycles <= 0.0 {
        return ExecResult::default();
    }
    let key = PlanKey::new(phase, ctx);
    let (slot, hit) = cache.probe(&key);
    if !hit {
        let m = miss_profile(phase, ctx.uarch, ctx.llc_share_bytes);
        let cpi = cpi_with_profile(phase, ctx, &m);
        cache.slots[slot] = Some(PlanEntry {
            key,
            miss: m,
            cpi,
            pressure: llc_pressure(phase, ctx.uarch, ctx.llc_share_bytes),
            last_inst: 0,
            last_result: None,
        });
    }
    let entry = cache.slots[slot].as_mut().expect("entry just probed");
    let cpi = entry.cpi;
    debug_assert!(cpi.is_finite() && cpi > 0.0, "bad cpi {cpi}");

    let max_inst = (budget_cycles / cpi).floor() as u64;
    let inst = max_inst.min(phase.instructions);
    if inst == 0 {
        return ExecResult::default();
    }
    if entry.last_inst == inst {
        if let Some(res) = entry.last_result {
            return res;
        }
    }
    let miss = entry.miss;
    let res = result_for_inst(phase, ctx, &miss, cpi, inst);
    let entry = cache.slots[slot].as_mut().expect("entry still present");
    entry.last_inst = inst;
    entry.last_result = Some(res);
    res
}

/// [`llc_pressure`] served from the plan cache: the entry's `pressure`
/// field was computed by the real function on the miss path, so a hit is
/// bit-identical. Falls back to the direct computation when the phase/ctx
/// pair has no plan yet (it installs one, so the next call hits).
pub fn llc_pressure_planned(phase: &Phase, ctx: &ExecContext<'_>, cache: &mut PlanCache) -> f64 {
    let key = PlanKey::new(phase, ctx);
    let (slot, hit) = cache.probe(&key);
    if !hit {
        let m = miss_profile(phase, ctx.uarch, ctx.llc_share_bytes);
        cache.slots[slot] = Some(PlanEntry {
            key,
            miss: m,
            cpi: cpi_with_profile(phase, ctx, &m),
            pressure: llc_pressure(phase, ctx.uarch, ctx.llc_share_bytes),
            last_inst: 0,
            last_result: None,
        });
    }
    cache.slots[slot]
        .as_ref()
        .expect("entry just probed")
        .pressure
}

/// The slice-construction tail shared by [`advance`] and
/// [`advance_planned`]: given the (possibly memoized) miss profile and CPI,
/// build the full result for an `inst`-instruction slice. Keeping both
/// callers on this single body is what makes the planned path bit-identical.
fn result_for_inst(
    phase: &Phase,
    ctx: &ExecContext<'_>,
    m: &MissProfile,
    cpi: f64,
    inst: u64,
) -> ExecResult {
    let cycles = (inst as f64 * cpi).round() as u64;
    let inst_f = inst as f64;

    // Reference cycles tick at the TSC rate for the wall time this slice
    // took: wall_ns = cycles / f_ghz; ref = wall_ns * ref_ghz.
    let f_ghz = ctx.freq_khz as f64 / 1e6;
    let ref_cycles = if f_ghz > 0.0 {
        (cycles as f64 / f_ghz) * (ctx.ref_khz as f64 / 1e6)
    } else {
        0.0
    };

    let refs = inst_f * phase.mem_ref_rate;
    let l1_miss = refs * m.l1;
    let l2_acc = l1_miss;
    let l2_miss = l2_acc * m.l2;
    let (llc_acc, llc_miss, mem_lines) = if ctx.llc_share_bytes == 0 {
        // L2 is last-level: PMU "LLC" events alias the L2 on such machines,
        // and memory traffic is every L2 miss (demand or prefetch).
        (l2_acc, l2_miss * m.llc_demand_frac, l2_miss)
    } else {
        let demand_acc = l2_miss * m.llc_demand_frac;
        let demand_miss = demand_acc * m.llc;
        // Memory traffic includes prefetched fills (hidden misses still
        // consume bandwidth) — approximate with the unhidden miss rate.
        let raw_llc_miss_rate = (m.llc / (1.0 - ctx.uarch.prefetch_hide).max(1e-6)).min(1.0);
        (demand_acc, demand_miss, l2_miss * raw_llc_miss_rate)
    };

    let branches = inst_f * phase.branch_rate;
    let br_miss = branches * phase.branch_miss_rate;
    let flops = inst_f * phase.flops_per_inst;
    let mem_cpi_cycles = {
        // Recompute the memory-stall share of the consumed cycles.
        let total_cpi = cpi;
        let issue_cpi = (1.0 / ctx.uarch.ipc_base).max(if ctx.uarch.flops_per_cycle > 0.0 {
            phase.flops_per_inst / ctx.uarch.flops_per_cycle
        } else {
            0.0
        });
        ((total_cpi - issue_cpi / ctx.smt_factor.clamp(0.05, 1.0)).max(0.0) * inst_f)
            .min(cycles as f64)
    };

    let mut ev = EventCounts::ZERO;
    ev.set(ArchEvent::Instructions, inst);
    ev.set(ArchEvent::Cycles, cycles);
    ev.set(ArchEvent::RefCycles, ref_cycles.round() as u64);
    ev.set(ArchEvent::BranchInstructions, branches.round() as u64);
    ev.set(ArchEvent::BranchMisses, br_miss.round() as u64);
    ev.set(ArchEvent::L1dAccesses, refs.round() as u64);
    ev.set(ArchEvent::L1dMisses, l1_miss.round() as u64);
    ev.set(ArchEvent::L2Accesses, l2_acc.round() as u64);
    ev.set(ArchEvent::L2Misses, l2_miss.round() as u64);
    ev.set(ArchEvent::LlcAccesses, llc_acc.round() as u64);
    ev.set(ArchEvent::LlcMisses, llc_miss.round() as u64);
    ev.set(ArchEvent::MemStallCycles, mem_cpi_cycles.round() as u64);
    ev.set(ArchEvent::FpOps, flops.round() as u64);
    ev.set(
        ArchEvent::VectorUops,
        (inst_f * phase.vector_frac).round() as u64,
    );
    if ctx.uarch.supports_event(ArchEvent::TopdownSlots) {
        // Slots = pipeline width × cycles.
        ev.set(
            ArchEvent::TopdownSlots,
            (ctx.uarch.ipc_base.round() * cycles as f64) as u64,
        );
    }
    // Simple dTLB model: misses scale with working set beyond 2 MB coverage.
    let tlb_cover: u64 = 2 << 20;
    let tlb_rate = if phase.working_set > tlb_cover {
        0.001 * (1.0 - tlb_cover as f64 / phase.working_set as f64)
    } else {
        1e-6
    };
    ev.set(ArchEvent::DtlbMisses, (refs * tlb_rate).round() as u64);

    ExecResult {
        instructions: inst,
        cycles,
        events: ev,
        flops,
        mem_bytes: mem_lines * LINE_BYTES,
    }
}

/// L2-miss pressure of a phase (misses per instruction) — used by the
/// machine tick to apportion LLC occupancy between contexts.
pub fn llc_pressure(phase: &Phase, uarch: &UarchParams, llc_share_bytes: u64) -> f64 {
    let m = miss_profile(phase, uarch, llc_share_bytes.max(1 << 20));
    phase.mem_ref_rate * m.l1 * m.l2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uarch::{CORTEX_A53, CORTEX_A72, GOLDEN_COVE, GRACEMONT};

    fn ctx<'a>(ua: &'a UarchParams, khz: u64) -> ExecContext<'a> {
        ExecContext {
            uarch: ua,
            freq_khz: khz,
            ref_khz: 2_100_000,
            llc_share_bytes: 30 << 20,
            mem_contention: 1.0,
            smt_factor: 1.0,
        }
    }

    #[test]
    fn scalar_loop_runs_near_issue_width() {
        let p = Phase::scalar(1_000_000);
        let c = ctx(&GOLDEN_COVE, 3_000_000);
        let ipc = 1.0 / cpi(&p, &c);
        assert!(ipc > 2.5 && ipc <= GOLDEN_COVE.ipc_base, "ipc = {ipc}");
    }

    #[test]
    fn dgemm_is_fp_throughput_bound_on_p_core() {
        let p = Phase::dgemm(1_000_000, 1 << 30, 0.35);
        let c = ctx(&GOLDEN_COVE, 3_300_000);
        let flops_per_cycle = p.flops_per_inst / cpi(&p, &c);
        // Well-blocked dgemm should reach the ~85-95 % HPL efficiency band.
        let eff = flops_per_cycle / GOLDEN_COVE.flops_per_cycle;
        assert!(
            (0.70..=1.0).contains(&eff),
            "P-core dgemm efficiency = {eff:.3}"
        );
    }

    #[test]
    fn p_core_outperforms_e_core_on_dgemm() {
        let p = Phase::dgemm(10_000_000, 1 << 30, 0.3);
        // Both at PL1-equilibrium frequencies.
        let cp = ctx(&GOLDEN_COVE, 2_610_000);
        let ce = ctx(&GRACEMONT, 2_320_000);
        let rp = advance(&p, 1e9, &cp);
        let re = advance(&p, 1e9, &ce);
        // FLOP rate = flops / (cycles / f).
        let fp = rp.flops / (rp.cycles as f64 / 2.61e9);
        let fe = re.flops / (re.cycles as f64 / 2.32e9);
        let ratio = fp / fe;
        assert!(
            (1.5..4.0).contains(&ratio),
            "P/E dgemm flop-rate ratio = {ratio:.2}"
        );
    }

    #[test]
    fn advance_conserves_instructions() {
        let p = Phase::scalar(1_000_000);
        let c = ctx(&GOLDEN_COVE, 3_000_000);
        // Tiny budget: partial progress.
        let r = advance(&p, 1000.0, &c);
        assert!(r.instructions > 0 && r.instructions < 1_000_000);
        assert_eq!(r.events[ArchEvent::Instructions], r.instructions);
        // Huge budget: exactly the phase, never more.
        let r2 = advance(&p, 1e12, &c);
        assert_eq!(r2.instructions, 1_000_000);
    }

    #[test]
    fn advance_zero_budget_or_empty_phase() {
        let c = ctx(&GOLDEN_COVE, 3_000_000);
        assert_eq!(advance(&Phase::scalar(0), 1e6, &c), ExecResult::default());
        assert_eq!(advance(&Phase::scalar(100), 0.0, &c), ExecResult::default());
    }

    #[test]
    fn topdown_slots_only_on_glc() {
        let p = Phase::scalar(10_000);
        let r_glc = advance(&p, 1e9, &ctx(&GOLDEN_COVE, 3_000_000));
        let r_grt = advance(&p, 1e9, &ctx(&GRACEMONT, 3_000_000));
        assert!(r_glc.events[ArchEvent::TopdownSlots] > 0);
        assert_eq!(r_grt.events[ArchEvent::TopdownSlots], 0);
    }

    #[test]
    fn memory_bound_insensitive_to_frequency() {
        let p = Phase::stream(1_000_000, 8 << 30);
        let lo = ctx(&GOLDEN_COVE, 2_100_000);
        let hi = ctx(&GOLDEN_COVE, 5_100_000);
        // Wall time per instruction = cpi / f.
        let t_lo = cpi(&p, &lo) / 2.1;
        let t_hi = cpi(&p, &hi) / 5.1;
        let speedup = t_lo / t_hi;
        assert!(
            speedup < 1.6,
            "2.4× frequency should buy <1.6× on a stream, got {speedup:.2}"
        );
        // …whereas compute-bound code scales nearly linearly.
        let q = Phase::dgemm(1_000_000, 16 << 20, 0.9);
        let s2 = (cpi(&q, &lo) / 2.1) / (cpi(&q, &hi) / 5.1);
        assert!(s2 > 2.0, "dgemm frequency speedup = {s2:.2}");
    }

    #[test]
    fn smt_sharing_halves_per_thread_throughput() {
        let p = Phase::scalar(100_000);
        let solo = ctx(&GOLDEN_COVE, 3_000_000);
        let mut shared = ctx(&GOLDEN_COVE, 3_000_000);
        shared.smt_factor = GOLDEN_COVE.smt_share;
        assert!(cpi(&p, &shared) > cpi(&p, &solo));
    }

    #[test]
    fn mem_contention_slows_streams() {
        let p = Phase::stream(100_000, 8 << 30);
        let free = ctx(&GOLDEN_COVE, 3_000_000);
        let mut jam = ctx(&GOLDEN_COVE, 3_000_000);
        jam.mem_contention = 3.0;
        assert!(cpi(&p, &jam) > 1.5 * cpi(&p, &free));
    }

    #[test]
    fn arm_no_llc_path() {
        let p = Phase::stream(100_000, 1 << 30);
        let mut c = ctx(&CORTEX_A72, 1_800_000);
        c.llc_share_bytes = 0;
        c.ref_khz = 24_000; // ARM arch timer
        let r = advance(&p, 1e9, &c);
        assert!(r.instructions > 0);
        assert!(r.mem_bytes > 0.0);
        // LLC events alias L2 on LLC-less machines.
        assert_eq!(
            r.events[ArchEvent::LlcAccesses],
            r.events[ArchEvent::L2Accesses]
        );
    }

    #[test]
    fn a53_prefetch_hides_demand_misses() {
        let p = Phase::stream(1_000_000, 1 << 30);
        let mut c = ctx(&CORTEX_A53, 1_400_000);
        c.llc_share_bytes = 0;
        let r = advance(&p, 1e9, &c);
        let acc = r.events[ArchEvent::LlcAccesses] as f64;
        let miss = r.events[ArchEvent::LlcMisses] as f64;
        assert!(
            miss / acc.max(1.0) < 0.2,
            "LITTLE demand miss rate too high"
        );
    }

    #[test]
    fn flop_accounting_matches_rate() {
        let p = Phase::dgemm(1000, 1 << 20, 0.5);
        let r = advance(&p, 1e9, &ctx(&GOLDEN_COVE, 3_000_000));
        assert_eq!(r.flops, 1000.0 * p.flops_per_inst);
        assert_eq!(r.events[ArchEvent::FpOps], r.flops.round() as u64);
    }
}
