//! # simcpu — a heterogeneous (hybrid) CPU simulator
//!
//! This crate is the hardware substrate for the `hetero-papi` reproduction of
//! *"Performance Measurement on Heterogeneous Processors with PAPI"*
//! (Cunningham & Weaver, SC 2024).
//!
//! The paper's experiments require real hybrid silicon — an Intel Raptor Lake
//! i7-13700 (8 P-cores + 8 E-cores) and a Rockchip RK3399 big.LITTLE SoC
//! (2×Cortex-A72 + 4×Cortex-A53) — along with their RAPL power-capping
//! firmware and thermal behaviour. None of that is available here, so this
//! crate models it:
//!
//! * [`uarch`] — microarchitecture descriptors (GoldenCove, Gracemont,
//!   Cortex-A72/A53, …) with IPC, vector throughput, PMU shape and the
//!   opaque `cpu_capacity` number Linux exposes.
//! * [`events`] — the architectural event vocabulary counted by the PMUs.
//! * [`pmu`] — per-core PMU hardware: fixed + general counters, event
//!   constraints, 48-bit wrap-around.
//! * [`cache`] — a real set-associative cache simulator (used for tests and
//!   calibration) plus the analytic working-set model used by the
//!   cycle-batch execution engine.
//! * [`phase`] + [`exec`] — the workload-phase execution model: how many
//!   instructions/cycles/misses a core produces in a time slice.
//! * [`plan`] — exec-plan memoization: per-seat caches of the derived
//!   miss profile / CPI / event plan, exact-keyed so hits are bit-identical.
//! * [`dvfs`], [`power`], [`thermal`] — frequency domains and governors,
//!   the RAPL power model with PL1/PL2 capping, and lumped-RC thermal
//!   models with trip-point throttling.
//! * [`machine`] — full machine descriptions and runtime state, with
//!   presets for the paper's two systems plus control machines.
//!
//! Everything is deterministic: no wall-clock, no unseeded randomness.

pub mod cache;
pub mod dvfs;
pub mod events;
pub mod exec;
pub mod machine;
pub mod phase;
pub mod plan;
pub mod pmu;
pub mod power;
pub mod thermal;
pub mod types;
pub mod uarch;

pub use events::{ArchEvent, EventCounts};
pub use machine::{Machine, MachineSpec};
pub use phase::Phase;
pub use types::{CoreId, CoreType, CpuId, Khz, Nanos};
pub use uarch::Microarch;
