//! Machine descriptions and runtime hardware state.
//!
//! A [`MachineSpec`] is the static description (clusters of identical cores,
//! caches, memory, power/thermal configuration); a [`Machine`] is the live
//! hardware: per-CPU PMUs, per-cluster frequency domains, RAPL counters,
//! package temperature, LLC occupancy and memory-bus contention.
//!
//! Presets model the paper's systems:
//! * [`MachineSpec::raptor_lake_i7_13700`] — Table I: 8 P-cores
//!   (16 threads, 2.1–5.1 GHz) + 8 E-cores (1.5–4.1 GHz), 32 GB DDR5,
//!   PL1 = 65 W / PL2 = 219 W;
//! * [`MachineSpec::orangepi_800`] — Table IV: RK3399, 2×Cortex-A72
//!   @1.8 GHz + 4×Cortex-A53 @1.4 GHz, 4 GB LPDDR4, passively cooled;
//! * [`MachineSpec::skylake_quad`] — a homogeneous control machine;
//! * [`MachineSpec::dynamiq_tri`] — a three-core-type ARM DynamIQ design,
//!   for the "there exist ARM CPUs with three types" case the paper notes.

use crate::dvfs::{FreqDomain, FreqDomainSpec};
use crate::events::ArchEvent;
use crate::exec::ExecContext;
use crate::plan::PlanCache;
use crate::pmu::CorePmu;
use crate::power::{RaplDomain, RaplSpec, RaplState};
use crate::thermal::{ThermalSpec, ThermalState, TripPoint};
use crate::types::{ClusterId, CoreId, CoreType, CpuId, CpuMask, Khz, Nanos};
use crate::uarch::{Microarch, Vendor};
use simtrace::{EventKind, TraceConfig, TraceSink};

/// Static description of one cluster of identical cores.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    pub uarch: Microarch,
    pub n_cores: u32,
    pub threads_per_core: u32,
    pub f_min_khz: Khz,
    pub f_max_khz: Khz,
}

/// Static description of a whole machine.
#[derive(Debug, Clone)]
pub struct MachineSpec {
    pub name: String,
    /// The marketing model string `/proc/cpuinfo` shows.
    pub model_string: String,
    pub vendor: Vendor,
    pub clusters: Vec<ClusterSpec>,
    /// Shared last-level cache in bytes (0 = the L2s are last-level).
    pub llc_bytes: u64,
    /// Peak DRAM bandwidth, GB/s.
    pub mem_bw_gbps: f64,
    /// DRAM capacity, GB.
    pub mem_gb: u32,
    /// Memory description for Table I/IV style reports.
    pub mem_string: String,
    /// RAPL limits (None = no RAPL, e.g. the OrangePi).
    pub rapl: Option<RaplSpec>,
    pub thermal: ThermalSpec,
    /// Constant uncore/SoC power, watts.
    pub uncore_w: f64,
    /// Board power outside the SoC (regulators, RAM, USB…), watts; the
    /// WattsUpPro-style wall meter reads package + dram + this.
    pub board_idle_w: f64,
    /// Reference/TSC frequency in kHz (`RefCycles` rate).
    pub ref_khz: Khz,
}

/// Topology record for one logical CPU.
#[derive(Debug, Clone, Copy)]
pub struct CpuInfo {
    pub cpu: CpuId,
    pub core: CoreId,
    pub cluster: ClusterId,
    pub smt_sibling: Option<CpuId>,
    pub uarch: Microarch,
}

impl CpuInfo {
    /// The core type of this CPU.
    pub fn core_type(&self) -> CoreType {
        self.uarch.params().core_type
    }
}

/// Per-CPU load report handed to [`Machine::end_tick`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuLoad {
    /// Fraction of the tick's cycles spent executing (0..=1).
    pub util: f64,
    /// Activity factor of what ran (vector-heavy ≈ 1, scalar ≈ 0.6).
    pub activity: f64,
    /// Bytes demanded from DRAM during the tick.
    pub mem_bytes: f64,
    /// LLC pressure (L2 misses per instruction × instruction rate proxy).
    pub llc_pressure: f64,
}

/// Power readings from the last tick, for telemetry.
#[derive(Debug, Clone, Copy, Default)]
pub struct PowerReadings {
    pub pkg_w: f64,
    pub cores_w: f64,
    pub dram_w: f64,
    /// Wall-meter power (package + DRAM + board).
    pub meter_w: f64,
    /// Per-cluster core power.
    pub cluster_w: [f64; 4],
}

/// The mutable hardware state private to one logical CPU.
///
/// Everything here is touched by exactly one CPU's execution within a
/// tick, so a caller may hand disjoint `&mut CoreSeat` slices (via
/// [`Machine::seats_mut`] and `split_at_mut`) to worker threads and step
/// cores in parallel. Cross-core state — the LLC analytic model, the RC
/// thermal node, RAPL, the per-cluster DVFS governors — stays behind the
/// shared side of [`Machine`] and is only updated serially in
/// [`Machine::end_tick`].
pub struct CoreSeat {
    /// This CPU's performance-monitoring hardware.
    pub pmu: CorePmu,
    /// This CPU's current share of the LLC in bytes (recomputed every
    /// tick by `end_tick`; read-only during execution).
    pub llc_share: u64,
    /// Memoized exec plans for phases recently run on this seat
    /// (DESIGN.md §9). Fixed-size and inline: no heap, thread-confined
    /// along with the rest of the seat.
    pub plan: PlanCache,
    /// Per-CPU flight recorder (plan-cache hits/misses). Thread-confined
    /// with the seat, so per-CPU streams are identical between serial
    /// and parallel execution by construction.
    pub trace: TraceSink,
}

/// Hardware shared across all cores: anything one core's tick may not
/// mutate, because another core's tick reads it concurrently.
struct SharedHw {
    domains: Vec<FreqDomain>,
    rapl: RaplState,
    thermal: ThermalState,
    /// Memory latency multiplier from bus contention (≥ 1).
    mem_contention: f64,
    power: PowerReadings,
}

/// Reusable buffers for [`Machine::end_tick`], so closing a tick never
/// allocates after boot.
struct EndTickScratch {
    seen_core: Vec<bool>,
    pressures: Vec<f64>,
    shares: Vec<u64>,
}

/// Live machine state, split into per-core seats and shared hardware.
pub struct Machine {
    spec: MachineSpec,
    cpus: Vec<CpuInfo>,
    seats: Vec<CoreSeat>,
    shared: SharedHw,
    time_ns: Nanos,
    scratch: EndTickScratch,
    /// Bumped by [`Machine::end_tick`] whenever anything feeding
    /// [`Machine::exec_context`] changed — a cluster frequency, an LLC
    /// share, or the memory-contention factor. A macro-tick replay loop
    /// watches this to know the captured template went stale.
    exec_epoch: u64,
    /// Shared-hardware flight recorder (DVFS / thermal transitions).
    hw_trace: TraceSink,
}

impl Machine {
    /// Instantiate hardware from a spec.
    pub fn new(spec: MachineSpec) -> Machine {
        assert!(
            !spec.clusters.is_empty(),
            "machine needs at least one cluster"
        );
        let mut cpus = Vec::new();
        let mut seats = Vec::new();
        let mut domains = Vec::new();
        let mut core_idx = 0usize;
        let mut cpu_idx = 0usize;
        for (ci, cl) in spec.clusters.iter().enumerate() {
            domains.push(FreqDomain::new(FreqDomainSpec::new(
                cl.f_min_khz,
                cl.f_max_khz,
            )));
            for _ in 0..cl.n_cores {
                let tpc = cl.threads_per_core.max(1) as usize;
                for t in 0..tpc {
                    let sibling = if tpc == 2 {
                        Some(CpuId(if t == 0 { cpu_idx + 1 } else { cpu_idx - 1 }))
                    } else {
                        None
                    };
                    cpus.push(CpuInfo {
                        cpu: CpuId(cpu_idx),
                        core: CoreId(core_idx),
                        cluster: ClusterId(ci),
                        smt_sibling: sibling,
                        uarch: cl.uarch,
                    });
                    seats.push(CoreSeat {
                        pmu: CorePmu::new(cl.uarch.params()),
                        llc_share: 0,
                        plan: PlanCache::new(),
                        trace: TraceSink::disabled(),
                    });
                    cpu_idx += 1;
                }
                core_idx += 1;
            }
        }
        let n = cpus.len();
        let llc0 = if n > 0 { spec.llc_bytes / n as u64 } else { 0 };
        for seat in &mut seats {
            seat.llc_share = llc0;
        }
        let n_cores = cpus.iter().map(|c| c.core.0).max().map_or(0, |m| m + 1);
        Machine {
            shared: SharedHw {
                domains,
                rapl: RaplState::new(spec.rapl.clone()),
                thermal: ThermalState::new(spec.thermal.clone()),
                mem_contention: 1.0,
                power: PowerReadings::default(),
            },
            time_ns: 0,
            scratch: EndTickScratch {
                seen_core: vec![false; n_cores],
                pressures: Vec::with_capacity(n),
                shares: Vec::with_capacity(n),
            },
            cpus,
            seats,
            spec,
            exec_epoch: 0,
            hw_trace: TraceSink::disabled(),
        }
    }

    /// Install (or replace) the hardware-domain trace sinks: one for the
    /// shared hardware and one per core seat. Rings are preallocated
    /// here so the hot loop stays allocation-free with tracing on.
    pub fn set_trace(&mut self, cfg: &TraceConfig) {
        self.hw_trace = TraceSink::new(cfg);
        for seat in &mut self.seats {
            seat.trace = TraceSink::new(cfg);
        }
    }

    /// The shared-hardware flight recorder (DVFS / thermal transitions).
    pub fn hw_trace(&self) -> &TraceSink {
        &self.hw_trace
    }

    // ---- topology --------------------------------------------------------

    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    pub fn n_cpus(&self) -> usize {
        self.cpus.len()
    }

    pub fn n_cores(&self) -> usize {
        self.cpus
            .iter()
            .map(|c| c.core.0)
            .max()
            .map_or(0, |m| m + 1)
    }

    pub fn cpu_info(&self, cpu: CpuId) -> &CpuInfo {
        &self.cpus[cpu.0]
    }

    pub fn cpus(&self) -> &[CpuInfo] {
        &self.cpus
    }

    /// All CPUs whose core is of the given type.
    pub fn cpus_of_type(&self, t: CoreType) -> CpuMask {
        CpuMask::from_cpus(
            self.cpus
                .iter()
                .filter(|c| c.core_type() == t)
                .map(|c| c.cpu.0),
        )
    }

    /// All CPUs belonging to cluster `id`.
    pub fn cpus_of_cluster(&self, id: ClusterId) -> CpuMask {
        CpuMask::from_cpus(
            self.cpus
                .iter()
                .filter(|c| c.cluster == id)
                .map(|c| c.cpu.0),
        )
    }

    /// The distinct core types present, in cluster order.
    pub fn core_types(&self) -> Vec<CoreType> {
        let mut out = Vec::new();
        for cl in &self.spec.clusters {
            let t = cl.uarch.params().core_type;
            if !out.contains(&t) {
                out.push(t);
            }
        }
        out
    }

    /// Whether more than one core type is present.
    pub fn is_hybrid(&self) -> bool {
        self.core_types().len() > 1
    }

    pub fn cluster_spec(&self, id: ClusterId) -> &ClusterSpec {
        &self.spec.clusters[id.0]
    }

    // ---- PMU access ------------------------------------------------------

    pub fn pmu(&self, cpu: CpuId) -> &CorePmu {
        &self.seats[cpu.0].pmu
    }

    pub fn pmu_mut(&mut self, cpu: CpuId) -> &mut CorePmu {
        &mut self.seats[cpu.0].pmu
    }

    /// The per-CPU hardware seats, indexed by logical CPU.
    pub fn seats(&self) -> &[CoreSeat] {
        &self.seats
    }

    /// Mutable per-CPU seats: the parallel tick path splits this slice
    /// with `split_at_mut` and hands disjoint chunks to worker threads.
    pub fn seats_mut(&mut self) -> &mut [CoreSeat] {
        &mut self.seats
    }

    // ---- execution context -------------------------------------------------

    /// Current frequency of a CPU's cluster.
    pub fn freq_khz(&self, cpu: CpuId) -> Khz {
        self.shared.domains[self.cpus[cpu.0].cluster.0].cur_khz()
    }

    /// Build the execution context for a CPU this tick. `smt_busy` says
    /// whether the SMT sibling is also running a task.
    pub fn exec_context(&self, cpu: CpuId, smt_busy: bool) -> ExecContext<'static> {
        let info = &self.cpus[cpu.0];
        let ua = info.uarch.params();
        ExecContext {
            uarch: ua,
            freq_khz: self.freq_khz(cpu),
            ref_khz: self.spec.ref_khz,
            llc_share_bytes: self.seats[cpu.0].llc_share,
            mem_contention: self.shared.mem_contention,
            smt_factor: if smt_busy { ua.smt_share } else { 1.0 },
        }
    }

    // ---- tick update -------------------------------------------------------

    /// Close out one tick: integrate power/thermal, run RAPL and DVFS
    /// governors, recompute LLC shares and memory contention.
    ///
    /// `loads[i]` describes logical CPU `i` during the elapsed `dt_ns`.
    pub fn end_tick(&mut self, dt_ns: Nanos, loads: &[CpuLoad]) {
        assert_eq!(loads.len(), self.cpus.len(), "one load per CPU");
        let dt_s = dt_ns as f64 / 1e9;
        self.time_ns += dt_ns;

        // --- per-core power (SMT siblings share silicon) ---
        let mut cluster_w = [0.0f64; 4];
        let mut cluster_util = [0.0f64; 4];
        let n_clusters = self.spec.clusters.len();
        let seen_core = &mut self.scratch.seen_core;
        seen_core.fill(false);
        for info in &self.cpus {
            if seen_core[info.core.0] {
                continue;
            }
            seen_core[info.core.0] = true;
            let l0 = loads[info.cpu.0];
            let (util, act) = match info.smt_sibling {
                Some(sib) => {
                    let l1 = loads[sib.0];
                    // Second thread adds ~30 % more switching activity.
                    let u = (l0.util.max(l1.util) + 0.3 * l0.util.min(l1.util)).min(1.2);
                    let a = if l0.util + l1.util > 0.0 {
                        (l0.activity * l0.util + l1.activity * l1.util) / (l0.util + l1.util)
                    } else {
                        0.0
                    };
                    (u, a)
                }
                None => (l0.util, l0.activity),
            };
            let cl = info.cluster.0;
            let cs = &self.spec.clusters[cl];
            let ua = info.uarch.params();
            let f = self.shared.domains[cl].cur_khz();
            let p =
                ua.dyn_power_w(f, cs.f_min_khz, cs.f_max_khz, (util * act).min(1.2)) + ua.idle_w;
            if cl < 4 {
                cluster_w[cl] += p;
            }
            if cl < 4 {
                cluster_util[cl] = cluster_util[cl].max(loads[info.cpu.0].util);
            }
        }
        // Peak utilization per cluster across *all* its CPUs (not just the
        // first sibling) drives the governor.
        for info in &self.cpus {
            let cl = info.cluster.0;
            if cl < 4 {
                cluster_util[cl] = cluster_util[cl].max(loads[info.cpu.0].util);
            }
        }

        let cores_w: f64 = cluster_w[..n_clusters.min(4)].iter().sum();
        let pkg_w = cores_w + self.spec.uncore_w;

        // --- DRAM power from demanded bandwidth ---
        let bw_gbps = loads.iter().map(|l| l.mem_bytes).sum::<f64>() / dt_s / 1e9;
        let dram_w = 1.2 + 0.25 * bw_gbps;
        let meter_w = pkg_w + dram_w + self.spec.board_idle_w;
        self.shared.power = PowerReadings {
            pkg_w,
            cores_w,
            dram_w,
            meter_w,
            cluster_w,
        };

        // --- RAPL + thermal ---
        let scale = self
            .shared
            .rapl
            .step(dt_ns, pkg_w, cores_w, dram_w, meter_w);
        let throttling_before = self.shared.thermal.throttling();
        self.shared.thermal.step(dt_ns, pkg_w);
        let throttling_now = self.shared.thermal.throttling();
        if throttling_now != throttling_before {
            self.hw_trace.record(
                self.time_ns,
                EventKind::ThermalTransition,
                0,
                throttling_now as u64,
                self.shared.thermal.temp_mc() as u64,
            );
        }

        // --- DVFS per cluster ---
        let mut ctx_changed = false;
        let shared = &mut self.shared;
        for (ci, dom) in shared.domains.iter_mut().enumerate() {
            let ct = self.spec.clusters[ci].uarch.params().core_type;
            let cap = shared.thermal.freq_cap_khz(ct);
            let before = dom.cur_khz();
            dom.step(dt_ns, cluster_util[ci.min(3)], scale, cap);
            if dom.cur_khz() != before {
                ctx_changed = true;
                self.hw_trace.record(
                    self.time_ns,
                    EventKind::DvfsTransition,
                    ci as u32,
                    before,
                    dom.cur_khz(),
                );
            }
        }

        // --- LLC shares & memory contention for next tick ---
        if self.spec.llc_bytes > 0 {
            self.scratch.pressures.clear();
            self.scratch
                .pressures
                .extend(loads.iter().map(|l| l.llc_pressure));
            crate::cache::analytic::llc_shares_into(
                self.spec.llc_bytes,
                &self.scratch.pressures,
                &mut self.scratch.shares,
            );
            let nominal = self.spec.llc_bytes / self.cpus.len() as u64;
            for (seat, &s) in self.seats.iter_mut().zip(self.scratch.shares.iter()) {
                // An idle CPU keeps a nominal share so cold starts are sane.
                let share = if s == 0 { nominal } else { s };
                ctx_changed |= share != seat.llc_share;
                seat.llc_share = share;
            }
        }
        let contention = (bw_gbps / self.spec.mem_bw_gbps).max(1.0);
        ctx_changed |= contention.to_bits() != self.shared.mem_contention.to_bits();
        self.shared.mem_contention = contention;
        if ctx_changed {
            self.exec_epoch += 1;
        }
    }

    // ---- readings ----------------------------------------------------------

    pub fn time_ns(&self) -> Nanos {
        self.time_ns
    }

    /// Generation counter over the inputs of [`Machine::exec_context`]:
    /// unchanged between two ticks ⇔ every CPU would execute the next tick
    /// under the exact context it just used.
    pub fn exec_epoch(&self) -> u64 {
        self.exec_epoch
    }

    pub fn power(&self) -> &PowerReadings {
        &self.shared.power
    }

    pub fn rapl(&self) -> &RaplState {
        &self.shared.rapl
    }

    pub fn rapl_mut(&mut self) -> &mut RaplState {
        &mut self.shared.rapl
    }

    pub fn thermal(&self) -> &ThermalState {
        &self.shared.thermal
    }

    pub fn thermal_mut(&mut self) -> &mut ThermalState {
        &mut self.shared.thermal
    }

    /// Wrapped RAPL energy counter (µJ), as `powercap` sysfs exposes it.
    pub fn energy_uj(&self, dom: RaplDomain) -> u64 {
        self.shared.rapl.energy_uj(dom)
    }

    /// Shared-LLC size.
    pub fn llc_bytes(&self) -> u64 {
        self.spec.llc_bytes
    }

    /// Whether any PMU on this machine supports `ev`.
    pub fn any_pmu_supports(&self, ev: ArchEvent) -> bool {
        self.spec
            .clusters
            .iter()
            .any(|c| c.uarch.params().supports_event(ev))
    }

    // ---- presets ----------------------------------------------------------
}

impl MachineSpec {
    /// Table I: the 13th-gen Intel i7-13700 Raptor Lake desktop.
    pub fn raptor_lake_i7_13700() -> MachineSpec {
        MachineSpec {
            name: "raptor-lake-i7-13700".into(),
            model_string: "13th Gen Intel(R) Core(TM) i7-13700".into(),
            vendor: Vendor::Intel,
            clusters: vec![
                ClusterSpec {
                    uarch: Microarch::GoldenCove,
                    n_cores: 8,
                    threads_per_core: 2,
                    f_min_khz: 2_100_000,
                    f_max_khz: 5_100_000,
                },
                ClusterSpec {
                    uarch: Microarch::Gracemont,
                    n_cores: 8,
                    threads_per_core: 1,
                    f_min_khz: 1_500_000,
                    f_max_khz: 4_100_000,
                },
            ],
            llc_bytes: 30 * 1024 * 1024,
            mem_bw_gbps: 68.0,
            mem_gb: 32,
            mem_string: "32GB DDR5, 4.4G T/s".into(),
            rapl: Some(RaplSpec::raptor_lake()),
            thermal: ThermalSpec::desktop_cooled(),
            uncore_w: 10.0,
            board_idle_w: 0.0,
            ref_khz: 2_100_000,
        }
    }

    /// Table IV: the OrangePi 800 (Rockchip RK3399).
    pub fn orangepi_800() -> MachineSpec {
        MachineSpec {
            name: "orangepi-800-rk3399".into(),
            model_string: "Rockchip RK3399 SoC".into(),
            vendor: Vendor::Arm,
            clusters: vec![
                ClusterSpec {
                    uarch: Microarch::CortexA72,
                    n_cores: 2,
                    threads_per_core: 1,
                    f_min_khz: 600_000,
                    f_max_khz: 1_800_000,
                },
                ClusterSpec {
                    uarch: Microarch::CortexA53,
                    n_cores: 4,
                    threads_per_core: 1,
                    f_min_khz: 600_000,
                    f_max_khz: 1_416_000,
                },
            ],
            llc_bytes: 0, // no L3: the cluster L2s are last-level
            mem_bw_gbps: 9.6,
            mem_gb: 4,
            mem_string: "4GB LPDDR4".into(),
            rapl: None,
            thermal: ThermalSpec::passive_sbc(),
            uncore_w: 0.7,
            board_idle_w: 2.3,
            ref_khz: 24_000, // ARM generic timer
        }
    }

    /// A homogeneous Skylake quad-core control machine.
    pub fn skylake_quad() -> MachineSpec {
        MachineSpec {
            name: "skylake-quad".into(),
            model_string: "Intel(R) Core(TM) i7-6700K".into(),
            vendor: Vendor::Intel,
            clusters: vec![ClusterSpec {
                uarch: Microarch::Skylake,
                n_cores: 4,
                threads_per_core: 2,
                f_min_khz: 800_000,
                f_max_khz: 4_200_000,
            }],
            llc_bytes: 8 * 1024 * 1024,
            mem_bw_gbps: 34.0,
            mem_gb: 16,
            mem_string: "16GB DDR4".into(),
            rapl: Some(RaplSpec {
                pl1_w: 95.0,
                tau1_s: 28.0,
                pl2_w: 131.0,
                tau2_s: 2.44,
                min_scale: 0.25,
            }),
            thermal: ThermalSpec::desktop_cooled(),
            uncore_w: 6.0,
            board_idle_w: 0.0,
            ref_khz: 4_000_000,
        }
    }

    /// An Alder Lake mobile part (i7-1260P-like: 4 P + 8 E at 28 W): a
    /// second Intel hybrid configuration with a much tighter power budget,
    /// for generality tests — the paper notes Raptor Lake "systems have
    /// the same underlying PMU as Alder Lake".
    pub fn alder_lake_mobile() -> MachineSpec {
        MachineSpec {
            name: "alder-lake-i7-1260p".into(),
            model_string: "12th Gen Intel(R) Core(TM) i7-1260P".into(),
            vendor: Vendor::Intel,
            clusters: vec![
                ClusterSpec {
                    uarch: Microarch::GoldenCove,
                    n_cores: 4,
                    threads_per_core: 2,
                    f_min_khz: 1_200_000,
                    f_max_khz: 4_700_000,
                },
                ClusterSpec {
                    uarch: Microarch::Gracemont,
                    n_cores: 8,
                    threads_per_core: 1,
                    f_min_khz: 900_000,
                    f_max_khz: 3_400_000,
                },
            ],
            llc_bytes: 18 * 1024 * 1024,
            mem_bw_gbps: 51.0,
            mem_gb: 16,
            mem_string: "16GB LPDDR5".into(),
            rapl: Some(RaplSpec {
                pl1_w: 28.0,
                tau1_s: 28.0,
                pl2_w: 64.0,
                tau2_s: 2.44,
                min_scale: 0.2,
            }),
            thermal: ThermalSpec {
                // Thin laptop: worse than a tower, better than a bare SBC.
                c_j_per_k: 18.0,
                r_k_per_w: 1.8,
                t_amb_c: 25.0,
                trips: vec![TripPoint {
                    temp_c: 100.0,
                    core_type: CoreType::Performance,
                    cap_khz: 1_200_000,
                }],
                hysteresis_c: 3.0,
                t_crit_c: 100.0,
            },
            uncore_w: 4.0,
            board_idle_w: 0.0,
            ref_khz: 2_100_000,
        }
    }

    /// A tri-cluster ARM DynamIQ machine (1×X1 + 3×A76 + 4×A55): the
    /// "there exist ARM CPUs with three types" case.
    pub fn dynamiq_tri() -> MachineSpec {
        MachineSpec {
            name: "dynamiq-tri".into(),
            model_string: "DynamIQ X1/A76/A55 dev board".into(),
            vendor: Vendor::Arm,
            clusters: vec![
                ClusterSpec {
                    uarch: Microarch::CortexX1,
                    n_cores: 1,
                    threads_per_core: 1,
                    f_min_khz: 500_000,
                    f_max_khz: 2_800_000,
                },
                ClusterSpec {
                    uarch: Microarch::CortexA76,
                    n_cores: 3,
                    threads_per_core: 1,
                    f_min_khz: 500_000,
                    f_max_khz: 2_400_000,
                },
                ClusterSpec {
                    uarch: Microarch::CortexA55,
                    n_cores: 4,
                    threads_per_core: 1,
                    f_min_khz: 300_000,
                    f_max_khz: 1_800_000,
                },
            ],
            llc_bytes: 4 * 1024 * 1024,
            mem_bw_gbps: 25.0,
            mem_gb: 8,
            mem_string: "8GB LPDDR5".into(),
            rapl: None,
            thermal: ThermalSpec::passive_sbc(),
            uncore_w: 0.9,
            board_idle_w: 1.5,
            ref_khz: 24_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raptor_lake_topology_matches_table1() {
        let m = Machine::new(MachineSpec::raptor_lake_i7_13700());
        assert_eq!(m.n_cpus(), 24); // 8×2 P threads + 8 E
        assert_eq!(m.n_cores(), 16);
        assert!(m.is_hybrid());
        assert_eq!(m.cpus_of_type(CoreType::Performance).count(), 16);
        assert_eq!(m.cpus_of_type(CoreType::Efficiency).count(), 8);
        // SMT pairing: cpu0 ↔ cpu1.
        assert_eq!(m.cpu_info(CpuId(0)).smt_sibling, Some(CpuId(1)));
        assert_eq!(m.cpu_info(CpuId(1)).smt_sibling, Some(CpuId(0)));
        // E-cores (cpus 16-23) have no siblings.
        assert_eq!(m.cpu_info(CpuId(16)).smt_sibling, None);
        assert_eq!(m.cpu_info(CpuId(16)).core_type(), CoreType::Efficiency);
    }

    #[test]
    fn orangepi_topology_matches_table4() {
        let m = Machine::new(MachineSpec::orangepi_800());
        assert_eq!(m.n_cpus(), 6);
        assert!(m.is_hybrid());
        assert_eq!(m.cpus_of_type(CoreType::Performance).to_cpulist(), "0-1");
        assert_eq!(m.cpus_of_type(CoreType::Efficiency).to_cpulist(), "2-5");
        assert_eq!(m.llc_bytes(), 0);
        assert!(!m.rapl().available());
    }

    #[test]
    fn skylake_is_homogeneous() {
        let m = Machine::new(MachineSpec::skylake_quad());
        assert!(!m.is_hybrid());
        assert_eq!(m.core_types(), vec![CoreType::Uniform]);
    }

    #[test]
    fn alder_mobile_topology_and_budget() {
        let m = Machine::new(MachineSpec::alder_lake_mobile());
        assert_eq!(m.n_cpus(), 16); // 4×2 P threads + 8 E
        assert!(m.is_hybrid());
        assert_eq!(m.cpus_of_type(CoreType::Performance).count(), 8);
        assert_eq!(m.cpus_of_type(CoreType::Efficiency).count(), 8);
        // 28 W budget: the all-core equilibrium sits far below the
        // desktop's frequencies.
        let mut mm = Machine::new(MachineSpec::alder_lake_mobile());
        let loads = vec![
            CpuLoad {
                util: 1.0,
                activity: 0.95,
                mem_bytes: 1e6,
                llc_pressure: 0.01,
            };
            mm.n_cpus()
        ];
        for _ in 0..120_000 {
            mm.end_tick(1_000_000, &loads);
        }
        assert!(
            (20.0..36.0).contains(&mm.power().pkg_w),
            "28 W cap: {:.1}",
            mm.power().pkg_w
        );
        assert!(mm.freq_khz(CpuId(0)) < 2_500_000, "P throttled well down");
    }

    #[test]
    fn tri_cluster_has_three_types() {
        let m = Machine::new(MachineSpec::dynamiq_tri());
        assert_eq!(
            m.core_types(),
            vec![CoreType::Performance, CoreType::Mid, CoreType::Efficiency]
        );
    }

    fn full_load(m: &Machine) -> Vec<CpuLoad> {
        vec![
            CpuLoad {
                util: 1.0,
                activity: 0.95,
                mem_bytes: 1e6,
                llc_pressure: 0.01,
            };
            m.n_cpus()
        ]
    }

    #[test]
    fn full_load_settles_near_paper_frequencies() {
        // All-core full load on Raptor Lake: after PL2 turbo expires, the
        // P cluster should settle near 2.6 GHz and E near 2.3 GHz
        // (Fig. 1(b) medians).
        let mut m = Machine::new(MachineSpec::raptor_lake_i7_13700());
        let loads = full_load(&m);
        for _ in 0..120_000 {
            m.end_tick(1_000_000, &loads);
        }
        let fp = m.freq_khz(CpuId(0));
        let fe = m.freq_khz(CpuId(16));
        assert!(
            (2_300_000..3_100_000).contains(&fp),
            "P settled at {fp} kHz"
        );
        assert!(
            (1_800_000..2_800_000).contains(&fe),
            "E settled at {fe} kHz"
        );
        // Package power near PL1.
        let pw = m.power().pkg_w;
        assert!((55.0..75.0).contains(&pw), "pkg power {pw:.1} W");
        // Never thermally throttled.
        assert!(!m.thermal().throttling());
        assert!(m.thermal().temp_c() < 100.0);
    }

    #[test]
    fn turbo_spike_then_cap() {
        let mut m = Machine::new(MachineSpec::raptor_lake_i7_13700());
        let loads = full_load(&m);
        let mut peak_w: f64 = 0.0;
        for _ in 0..5_000 {
            m.end_tick(1_000_000, &loads);
            peak_w = peak_w.max(m.power().pkg_w);
        }
        // During the first 5 s power must spike well above PL1...
        assert!(peak_w > 120.0, "turbo peak = {peak_w:.0} W");
        for _ in 0..120_000 {
            m.end_tick(1_000_000, &loads);
        }
        // ...and then settle at the long-term cap.
        assert!((55.0..75.0).contains(&m.power().pkg_w));
    }

    #[test]
    fn orangepi_big_cores_thermally_throttle() {
        let mut m = Machine::new(MachineSpec::orangepi_800());
        // Load only the big cluster (cpus 0-1).
        let mut loads = vec![CpuLoad::default(); m.n_cpus()];
        for l in loads.iter_mut().take(2) {
            *l = CpuLoad {
                util: 1.0,
                activity: 0.9,
                mem_bytes: 1e5,
                llc_pressure: 0.005,
            };
        }
        let mut reached_max = false;
        for _ in 0..200_000 {
            m.end_tick(1_000_000, &loads);
            if m.freq_khz(CpuId(0)) == 1_800_000 {
                reached_max = true;
            }
        }
        assert!(reached_max, "big cores should ramp to 1.8 GHz first");
        assert!(m.thermal().throttling(), "should be throttling by 200 s");
        let f_big = m.freq_khz(CpuId(0));
        assert!(f_big < 1_800_000, "big cluster throttled to {f_big} kHz");
        // The ladder always throttles the big cluster harder than the
        // LITTLE one (whose first trip sits deeper in the table).
        assert!(
            m.thermal().freq_cap_khz(CoreType::Efficiency)
                >= m.thermal().freq_cap_khz(CoreType::Performance)
        );
    }

    #[test]
    fn idle_machine_is_cool_and_slow() {
        let mut m = Machine::new(MachineSpec::raptor_lake_i7_13700());
        let loads = vec![CpuLoad::default(); m.n_cpus()];
        for _ in 0..20_000 {
            m.end_tick(1_000_000, &loads);
        }
        assert_eq!(m.freq_khz(CpuId(0)), 2_100_000); // min
        assert!(m.power().pkg_w < 20.0);
        assert!(m.thermal().temp_c() < 40.0);
    }

    #[test]
    fn energy_counters_advance() {
        let mut m = Machine::new(MachineSpec::raptor_lake_i7_13700());
        let loads = full_load(&m);
        let e0 = m.energy_uj(RaplDomain::Package);
        for _ in 0..1000 {
            m.end_tick(1_000_000, &loads);
        }
        let e1 = m.energy_uj(RaplDomain::Package);
        assert!(e1 != e0, "package energy should advance");
    }

    #[test]
    fn exec_context_reflects_cluster_freq() {
        let m = Machine::new(MachineSpec::raptor_lake_i7_13700());
        let ctx = m.exec_context(CpuId(0), false);
        assert_eq!(ctx.freq_khz, 2_100_000);
        assert_eq!(ctx.smt_factor, 1.0);
        let ctx2 = m.exec_context(CpuId(0), true);
        assert!(ctx2.smt_factor < 1.0);
    }

    #[test]
    #[should_panic(expected = "one load per CPU")]
    fn end_tick_checks_load_len() {
        let mut m = Machine::new(MachineSpec::skylake_quad());
        m.end_tick(1_000_000, &[CpuLoad::default()]);
    }
}
