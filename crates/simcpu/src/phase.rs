//! Workload phases — the unit of simulated computation.
//!
//! A [`Phase`] describes a homogeneous stretch of instructions with a fixed
//! statistical character: how often it touches memory, how big and how
//! well-blocked its working set is, how much floating-point work each
//! instruction performs, and how branchy it is. The execution engine
//! ([`crate::exec`]) turns a phase plus a core's microarchitecture and
//! frequency into cycles, events and FLOPs.
//!
//! Constructors are provided for the phase kinds the paper's workloads need:
//! dgemm-like trailing updates, panel factorizations, memory streams, and
//! plain scalar/spin loops.

/// A homogeneous stretch of simulated computation.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Number of instructions in the phase.
    pub instructions: u64,
    /// Memory references per instruction (loads+stores), 0..≈0.6.
    pub mem_ref_rate: f64,
    /// Total working set touched by the phase, in bytes.
    pub working_set: u64,
    /// Fraction of references absorbed by register/L1 blocking.
    pub reuse_l1: f64,
    /// Fraction of L1-missing references absorbed by L2-level blocking.
    pub reuse_l2: f64,
    /// Fraction of L2-missing references absorbed by LLC-level blocking —
    /// the knob that distinguishes a well-tiled dgemm from a naïve stream.
    pub reuse_llc: f64,
    /// Double-precision FLOPs per instruction (average over the mix).
    pub flops_per_inst: f64,
    /// Fraction of instructions that are vector (SIMD) ops.
    pub vector_frac: f64,
    /// Branches per instruction.
    pub branch_rate: f64,
    /// Fraction of branches mispredicted.
    pub branch_miss_rate: f64,
}

impl Phase {
    /// A compute-dense, well-blocked matrix-multiply phase (the trailing
    /// submatrix update of HPL). `reuse_llc` is the blocking-quality knob:
    /// Intel's optimized HPL keeps more of the panel resident (paper
    /// Table III: 64 % vs 86 % P-core LLC miss rate).
    pub fn dgemm(instructions: u64, working_set: u64, reuse_llc: f64) -> Phase {
        Phase {
            instructions,
            mem_ref_rate: 0.35,
            working_set,
            reuse_l1: 0.97,
            reuse_l2: 0.90,
            reuse_llc,
            flops_per_inst: 3.6,
            vector_frac: 0.55,
            branch_rate: 0.04,
            branch_miss_rate: 0.01,
        }
    }

    /// Panel factorization: latency-bound, pivot searches, modest FLOPs,
    /// small working set (one NB-wide panel).
    pub fn panel(instructions: u64, working_set: u64) -> Phase {
        Phase {
            instructions,
            mem_ref_rate: 0.42,
            working_set,
            reuse_l1: 0.80,
            reuse_l2: 0.70,
            reuse_llc: 0.50,
            flops_per_inst: 0.9,
            vector_frac: 0.25,
            branch_rate: 0.12,
            branch_miss_rate: 0.04,
        }
    }

    /// Pure memory stream (STREAM-like): working set far beyond any cache,
    /// no reuse, trivial FLOPs.
    pub fn stream(instructions: u64, working_set: u64) -> Phase {
        Phase {
            instructions,
            mem_ref_rate: 0.5,
            working_set,
            reuse_l1: 0.85, // spatial reuse within a 64 B line (8 doubles)
            reuse_l2: 0.0,
            reuse_llc: 0.0,
            flops_per_inst: 0.25,
            vector_frac: 0.5,
            branch_rate: 0.02,
            branch_miss_rate: 0.002,
        }
    }

    /// Scalar integer work that lives in L1 (the §IV.F calibration loop:
    /// a counted loop of simple ALU instructions).
    pub fn scalar(instructions: u64) -> Phase {
        Phase {
            instructions,
            mem_ref_rate: 0.10,
            working_set: 8 * 1024,
            reuse_l1: 0.99,
            reuse_l2: 0.9,
            reuse_llc: 0.9,
            flops_per_inst: 0.0,
            vector_frac: 0.0,
            branch_rate: 0.08,
            branch_miss_rate: 0.001,
        }
    }

    /// Branch-heavy, poorly predicted work (for branch-miss experiments).
    pub fn branchy(instructions: u64) -> Phase {
        Phase {
            instructions,
            mem_ref_rate: 0.15,
            working_set: 64 * 1024,
            reuse_l1: 0.95,
            reuse_l2: 0.8,
            reuse_llc: 0.8,
            flops_per_inst: 0.0,
            vector_frac: 0.0,
            branch_rate: 0.25,
            branch_miss_rate: 0.12,
        }
    }

    /// Dependent-load pointer chase over a working set: every reference
    /// misses whatever level the working set outgrows and nothing can be
    /// blocked, so latency dominates (the classic lat_mem_rd kernel; the
    /// Röhl validation suite's "known cache-miss count" workload).
    pub fn pointer_chase(instructions: u64, working_set: u64) -> Phase {
        Phase {
            instructions,
            mem_ref_rate: 0.33, // one dependent load per 3-inst chase step
            working_set,
            reuse_l1: 0.0, // random stride defeats line reuse
            reuse_l2: 0.0,
            reuse_llc: 0.0,
            flops_per_inst: 0.0,
            vector_frac: 0.0,
            branch_rate: 0.05,
            branch_miss_rate: 0.001,
        }
    }

    /// A busy-wait: spins in L1 doing nothing useful (used to model
    /// synchronization/barrier wait loops when modeled as active spinning).
    pub fn spin(instructions: u64) -> Phase {
        Phase {
            instructions,
            mem_ref_rate: 0.02,
            working_set: 512,
            reuse_l1: 1.0,
            reuse_l2: 1.0,
            reuse_llc: 1.0,
            flops_per_inst: 0.0,
            vector_frac: 0.0,
            branch_rate: 0.5,
            branch_miss_rate: 0.0005,
        }
    }

    /// Validate that all rates are inside their meaningful ranges; useful
    /// as a debug assertion on workload generators.
    pub fn validate(&self) -> Result<(), String> {
        fn frac(name: &str, v: f64) -> Result<(), String> {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(format!("{name} = {v} outside [0,1]"))
            }
        }
        frac("reuse_l1", self.reuse_l1)?;
        frac("reuse_l2", self.reuse_l2)?;
        frac("reuse_llc", self.reuse_llc)?;
        frac("vector_frac", self.vector_frac)?;
        frac("branch_miss_rate", self.branch_miss_rate)?;
        if !(0.0..=1.0).contains(&self.mem_ref_rate) {
            return Err(format!(
                "mem_ref_rate = {} outside [0,1]",
                self.mem_ref_rate
            ));
        }
        if !(0.0..=1.0).contains(&self.branch_rate) {
            return Err(format!("branch_rate = {} outside [0,1]", self.branch_rate));
        }
        if self.flops_per_inst < 0.0 || self.flops_per_inst > 32.0 {
            return Err(format!(
                "flops_per_inst = {} implausible",
                self.flops_per_inst
            ));
        }
        Ok(())
    }

    /// Split off the first `n` instructions as a new phase with identical
    /// character, reducing `self` by the same amount. Panics if `n` exceeds
    /// the phase size.
    pub fn split_front(&mut self, n: u64) -> Phase {
        assert!(n <= self.instructions, "split beyond phase size");
        self.instructions -= n;
        Phase {
            instructions: n,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_validate() {
        for p in [
            Phase::dgemm(1_000_000, 1 << 30, 0.3),
            Phase::panel(100_000, 300 << 10),
            Phase::stream(1_000_000, 1 << 32),
            Phase::scalar(1_000_000),
            Phase::branchy(1_000_000),
            Phase::spin(1_000),
            Phase::pointer_chase(1_000_000, 64 << 20),
        ] {
            p.validate().unwrap();
        }
    }

    #[test]
    fn split_front_conserves_instructions() {
        let mut p = Phase::scalar(1000);
        let head = p.split_front(300);
        assert_eq!(head.instructions, 300);
        assert_eq!(p.instructions, 700);
        assert_eq!(head.mem_ref_rate, p.mem_ref_rate);
    }

    #[test]
    #[should_panic(expected = "split beyond")]
    fn split_front_checks_bounds() {
        let mut p = Phase::scalar(10);
        let _ = p.split_front(11);
    }

    #[test]
    fn validate_catches_bad_rates() {
        let mut p = Phase::scalar(10);
        p.reuse_l1 = 1.5;
        assert!(p.validate().is_err());
        let mut q = Phase::scalar(10);
        q.branch_rate = -0.1;
        assert!(q.validate().is_err());
    }
}
