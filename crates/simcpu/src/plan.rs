//! Exec-plan memoization (DESIGN.md §9).
//!
//! [`exec::advance`](crate::exec::advance) recomputes the analytic
//! [`MissProfile`] and the full CPI model on every call — once per phase per
//! core per tick, plus again for [`exec::llc_pressure`](crate::exec::llc_pressure).
//! Both are pure functions of the phase *shape* and the execution context, and
//! on a steady workload those inputs repeat tick after tick. A [`PlanCache`]
//! memoizes the derived plan per core seat.
//!
//! Correctness does not rest on invalidation heuristics: a [`PlanKey`] carries
//! **every** input the model reads — the nine phase-shape fields (bit-exact,
//! via `f64::to_bits`), the µarch identity, the core and reference
//! frequencies, the LLC share, and the contention/SMT factors. A hit therefore
//! returns exactly the bits a fresh computation would produce; the hash only
//! picks the direct-mapped slot, and a full key comparison guards every hit.
//! The epoch counter (bumped by the kernel on fault/hotplug activity) is
//! belt-and-braces: it drops all slots so no entry can outlive a
//! fault-injection boundary even if a future input were missed by the key.
//!
//! The cache is a fixed inline array — no heap allocation, ever — so plan
//! lookups keep the tick hot loop allocation-free (`tests/alloc_free.rs`).

use crate::cache::analytic::MissProfile;
use crate::exec::{ExecContext, ExecResult};
use crate::phase::Phase;
use crate::uarch::UarchParams;

/// Direct-mapped slot count per core seat. A seat typically sees one or two
/// live (phase shape × frequency) combinations at a time; 16 slots absorb
/// DVFS transients without evicting the steady-state plan.
pub const PLAN_SLOTS: usize = 16;

/// Exact-match memoization key: every input `exec::advance` reads.
///
/// `f64` fields are stored as raw bits so the comparison is bit-exact, and
/// the µarch is identified by the address of its `&'static UarchParams`.
/// `Phase::instructions` is deliberately absent — the remaining instruction
/// count never changes the derived plan, only how much of it is consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanKey {
    uarch: usize,
    freq_khz: u64,
    ref_khz: u64,
    llc_share_bytes: u64,
    mem_contention: u64,
    smt_factor: u64,
    mem_ref_rate: u64,
    working_set: u64,
    reuse_l1: u64,
    reuse_l2: u64,
    reuse_llc: u64,
    flops_per_inst: u64,
    vector_frac: u64,
    branch_rate: u64,
    branch_miss_rate: u64,
}

impl PlanKey {
    /// Build the key for running `phase` under `ctx`.
    pub fn new(phase: &Phase, ctx: &ExecContext<'_>) -> PlanKey {
        PlanKey {
            uarch: ctx.uarch as *const UarchParams as usize,
            freq_khz: ctx.freq_khz,
            ref_khz: ctx.ref_khz,
            llc_share_bytes: ctx.llc_share_bytes,
            mem_contention: ctx.mem_contention.to_bits(),
            smt_factor: ctx.smt_factor.to_bits(),
            mem_ref_rate: phase.mem_ref_rate.to_bits(),
            working_set: phase.working_set,
            reuse_l1: phase.reuse_l1.to_bits(),
            reuse_l2: phase.reuse_l2.to_bits(),
            reuse_llc: phase.reuse_llc.to_bits(),
            flops_per_inst: phase.flops_per_inst.to_bits(),
            vector_frac: phase.vector_frac.to_bits(),
            branch_rate: phase.branch_rate.to_bits(),
            branch_miss_rate: phase.branch_miss_rate.to_bits(),
        }
    }

    /// FNV-1a over the key fields, used only for slot selection.
    fn slot(&self) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for v in [
            self.uarch as u64,
            self.freq_khz,
            self.llc_share_bytes,
            self.mem_contention,
            self.smt_factor,
            self.mem_ref_rate,
            self.working_set,
            self.reuse_l1,
            self.reuse_l2,
            self.reuse_llc,
            self.flops_per_inst,
            self.vector_frac,
            self.branch_rate,
            self.branch_miss_rate,
        ] {
            h ^= v;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        (h ^ (h >> 32)) as usize & (PLAN_SLOTS - 1)
    }
}

/// A memoized plan: everything `advance` derives before it scales by the
/// instruction count, plus a one-deep result cache for the common case of
/// the same slice size recurring every tick.
#[derive(Debug, Clone, Copy)]
pub struct PlanEntry {
    pub(crate) key: PlanKey,
    /// `miss_profile(phase, uarch, llc_share_bytes)` — the CPI-path profile.
    pub(crate) miss: MissProfile,
    /// `cpi_with_profile(phase, ctx, &miss)`.
    pub(crate) cpi: f64,
    /// `llc_pressure(phase, uarch, llc_share_bytes)` (its own clamped-share
    /// miss profile, so it is cached separately from `miss`).
    pub(crate) pressure: f64,
    /// Instruction count of the most recent slice built from this plan.
    pub(crate) last_inst: u64,
    /// The full result for `last_inst`, skipping the event-vector build.
    pub(crate) last_result: Option<ExecResult>,
}

/// Per-core-seat plan cache: a fixed, inline, direct-mapped array.
#[derive(Debug, Clone)]
pub struct PlanCache {
    pub(crate) slots: [Option<PlanEntry>; PLAN_SLOTS],
    epoch: u64,
    hits: u64,
    misses: u64,
}

impl Default for PlanCache {
    fn default() -> PlanCache {
        PlanCache::new()
    }
}

impl PlanCache {
    pub fn new() -> PlanCache {
        PlanCache {
            slots: [None; PLAN_SLOTS],
            epoch: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Adopt the owner's invalidation epoch, dropping every entry when it
    /// moved since the last call. Hit/miss totals survive (they describe the
    /// cache's lifetime, not one epoch).
    pub fn set_epoch(&mut self, epoch: u64) {
        if self.epoch != epoch {
            self.epoch = epoch;
            self.slots = [None; PLAN_SLOTS];
        }
    }

    /// The slot `key` maps to, and whether it currently holds `key`'s plan.
    /// Counts the lookup as a hit or a miss.
    pub(crate) fn probe(&mut self, key: &PlanKey) -> (usize, bool) {
        let slot = key.slot();
        let hit = matches!(&self.slots[slot], Some(e) if e.key == *key);
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        (slot, hit)
    }

    /// Lifetime (hits, misses) of plan lookups through this cache.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec;
    use crate::uarch::{GOLDEN_COVE, GRACEMONT};

    fn ctx(khz: u64) -> ExecContext<'static> {
        ExecContext {
            uarch: &GOLDEN_COVE,
            freq_khz: khz,
            ref_khz: 2_100_000,
            llc_share_bytes: 30 << 20,
            mem_contention: 1.0,
            smt_factor: 1.0,
        }
    }

    #[test]
    fn key_ignores_remaining_instructions_only() {
        let a = Phase::dgemm(200_000, 8 << 20, 0.35);
        let mut b = a.clone();
        b.instructions = 77;
        let c = ctx(3_000_000);
        assert_eq!(PlanKey::new(&a, &c), PlanKey::new(&b, &c));
        // …but every physical input distinguishes keys.
        let mut hot = ctx(3_000_001);
        assert_ne!(PlanKey::new(&a, &c), PlanKey::new(&a, &hot));
        hot = ctx(3_000_000);
        hot.uarch = &GRACEMONT;
        assert_ne!(PlanKey::new(&a, &c), PlanKey::new(&a, &hot));
        hot = ctx(3_000_000);
        hot.smt_factor = 0.62;
        assert_ne!(PlanKey::new(&a, &c), PlanKey::new(&a, &hot));
    }

    #[test]
    fn planned_advance_is_bit_identical_and_hits() {
        let p = Phase::dgemm(200_000, 8 << 20, 0.35);
        let c = ctx(3_300_000);
        let mut cache = PlanCache::new();
        let fresh = exec::advance(&p, 1e6, &c);
        for _ in 0..10 {
            let planned = exec::advance_planned(&p, 1e6, &c, &mut cache);
            assert_eq!(planned, fresh);
        }
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (9, 1));
        // Pressure rides the same entry without extra misses.
        let pr = exec::llc_pressure_planned(&p, &c, &mut cache);
        assert_eq!(pr, exec::llc_pressure(&p, c.uarch, c.llc_share_bytes));
        assert_eq!(cache.stats(), (10, 1));
    }

    #[test]
    fn epoch_change_drops_entries() {
        let p = Phase::scalar(1_000_000);
        let c = ctx(3_000_000);
        let mut cache = PlanCache::new();
        let _ = exec::advance_planned(&p, 1e6, &c, &mut cache);
        let _ = exec::advance_planned(&p, 1e6, &c, &mut cache);
        assert_eq!(cache.stats().0, 1);
        cache.set_epoch(1);
        let _ = exec::advance_planned(&p, 1e6, &c, &mut cache);
        assert_eq!(cache.stats(), (1, 2), "epoch bump forced a recompute");
        cache.set_epoch(1);
        let _ = exec::advance_planned(&p, 1e6, &c, &mut cache);
        assert_eq!(cache.stats(), (2, 2), "same epoch keeps entries");
    }
}
