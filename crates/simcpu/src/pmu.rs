//! Per-core PMU hardware.
//!
//! Each core carries a bank of counters shaped by its microarchitecture:
//! Intel cores have three fixed counters (instructions, cycles, ref-cycles)
//! plus 6–8 general-purpose programmable counters; ARM cores have a fixed
//! cycle counter plus 6 programmable ones. Counters are 48 bits wide and
//! wrap, exactly like the real MSRs — the kernel layer (`simos::perf`) is
//! responsible for accumulating deltas into 64-bit software counters across
//! wraps and context switches.
//!
//! Availability is enforced here: programming `TopdownSlots` on a Gracemont
//! PMU fails, the hardware root of the paper's "events may not exist on the
//! other core type" problem.

use crate::events::{ArchEvent, EventCounts};
use crate::uarch::UarchParams;

/// Width of a hardware counter in bits (Intel PMCs and ARM PMEVCNTR are
/// effectively 48-bit in this era).
pub const COUNTER_BITS: u32 = 48;

/// Wrap mask for counter values.
pub const COUNTER_MASK: u64 = (1 << COUNTER_BITS) - 1;

/// Errors from programming PMU hardware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PmuError {
    /// The event does not exist on this microarchitecture.
    EventUnsupported(ArchEvent),
    /// Counter index out of range.
    NoSuchCounter(usize),
    /// The counter is already programmed and enabled.
    CounterBusy(usize),
}

impl std::fmt::Display for PmuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PmuError::EventUnsupported(e) => write!(f, "event {e} unsupported on this PMU"),
            PmuError::NoSuchCounter(i) => write!(f, "no such counter {i}"),
            PmuError::CounterBusy(i) => write!(f, "counter {i} busy"),
        }
    }
}

impl std::error::Error for PmuError {}

/// One programmable (or fixed) hardware counter.
#[derive(Debug, Clone, Copy)]
struct HwCounter {
    event: Option<ArchEvent>,
    value: u64,
    enabled: bool,
}

impl HwCounter {
    const IDLE: HwCounter = HwCounter {
        event: None,
        value: 0,
        enabled: false,
    };
}

/// The PMU of one physical core.
#[derive(Debug, Clone)]
pub struct CorePmu {
    uarch: &'static UarchParams,
    /// Fixed counters, parallel to `uarch.fixed_counters`.
    fixed: Vec<HwCounter>,
    /// General-purpose counters.
    gp: Vec<HwCounter>,
}

impl CorePmu {
    /// Fresh PMU for a core of the given microarchitecture.
    pub fn new(uarch: &'static UarchParams) -> CorePmu {
        let mut fixed = vec![HwCounter::IDLE; uarch.fixed_counters.len()];
        for (i, slot) in fixed.iter_mut().enumerate() {
            slot.event = Some(uarch.fixed_counters[i]);
        }
        CorePmu {
            uarch,
            fixed,
            gp: vec![HwCounter::IDLE; uarch.n_gp_counters],
        }
    }

    /// The microarchitecture this PMU belongs to.
    pub fn uarch(&self) -> &'static UarchParams {
        self.uarch
    }

    /// Number of general-purpose counters.
    pub fn n_gp(&self) -> usize {
        self.gp.len()
    }

    /// Number of fixed counters.
    pub fn n_fixed(&self) -> usize {
        self.fixed.len()
    }

    /// Index of the fixed counter for `ev`, if one exists.
    pub fn fixed_index(&self, ev: ArchEvent) -> Option<usize> {
        self.uarch.fixed_counters.iter().position(|&f| f == ev)
    }

    /// Enable the fixed counter for `ev`, returning its index.
    pub fn enable_fixed(&mut self, ev: ArchEvent) -> Result<usize, PmuError> {
        let idx = self.fixed_index(ev).ok_or(PmuError::EventUnsupported(ev))?;
        self.fixed[idx].enabled = true;
        Ok(idx)
    }

    /// Program GP counter `idx` with `ev` and enable it.
    pub fn program_gp(&mut self, idx: usize, ev: ArchEvent) -> Result<(), PmuError> {
        if !self.uarch.supports_event(ev) {
            return Err(PmuError::EventUnsupported(ev));
        }
        let slot = self.gp.get_mut(idx).ok_or(PmuError::NoSuchCounter(idx))?;
        if slot.enabled {
            return Err(PmuError::CounterBusy(idx));
        }
        slot.event = Some(ev);
        slot.enabled = true;
        Ok(())
    }

    /// Disable (but do not clear) GP counter `idx`.
    pub fn disable_gp(&mut self, idx: usize) -> Result<(), PmuError> {
        let slot = self.gp.get_mut(idx).ok_or(PmuError::NoSuchCounter(idx))?;
        slot.enabled = false;
        slot.event = None;
        Ok(())
    }

    /// Disable a fixed counter.
    pub fn disable_fixed(&mut self, idx: usize) -> Result<(), PmuError> {
        let slot = self
            .fixed
            .get_mut(idx)
            .ok_or(PmuError::NoSuchCounter(idx))?;
        slot.enabled = false;
        Ok(())
    }

    /// First free GP counter index, if any.
    pub fn free_gp(&self) -> Option<usize> {
        self.gp.iter().position(|s| !s.enabled)
    }

    /// Read the raw (48-bit) value of GP counter `idx`.
    pub fn read_gp(&self, idx: usize) -> Result<u64, PmuError> {
        self.gp
            .get(idx)
            .map(|s| s.value)
            .ok_or(PmuError::NoSuchCounter(idx))
    }

    /// Read the raw (48-bit) value of fixed counter `idx`.
    pub fn read_fixed(&self, idx: usize) -> Result<u64, PmuError> {
        self.fixed
            .get(idx)
            .map(|s| s.value)
            .ok_or(PmuError::NoSuchCounter(idx))
    }

    /// Write a raw value into GP counter `idx` (kernel does this on
    /// context-switch restore).
    pub fn write_gp(&mut self, idx: usize, value: u64) -> Result<(), PmuError> {
        let slot = self.gp.get_mut(idx).ok_or(PmuError::NoSuchCounter(idx))?;
        slot.value = value & COUNTER_MASK;
        Ok(())
    }

    /// Accumulate an execution slice's event deltas into every enabled
    /// counter, with 48-bit wrap-around.
    pub fn apply(&mut self, deltas: &EventCounts) {
        for slot in self.fixed.iter_mut().chain(self.gp.iter_mut()) {
            if slot.enabled {
                if let Some(ev) = slot.event {
                    slot.value = (slot.value + deltas.get(ev)) & COUNTER_MASK;
                }
            }
        }
    }

    /// Number of currently enabled counters (fixed + GP).
    pub fn enabled_count(&self) -> usize {
        self.fixed
            .iter()
            .chain(self.gp.iter())
            .filter(|s| s.enabled)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uarch::{CORTEX_A53, GOLDEN_COVE, GRACEMONT};

    fn deltas(inst: u64, cyc: u64) -> EventCounts {
        let mut d = EventCounts::ZERO;
        d.set(ArchEvent::Instructions, inst);
        d.set(ArchEvent::Cycles, cyc);
        d
    }

    #[test]
    fn fixed_counters_match_uarch() {
        let p = CorePmu::new(&GOLDEN_COVE);
        assert_eq!(p.n_fixed(), 3);
        assert_eq!(p.n_gp(), 8);
        let a = CorePmu::new(&CORTEX_A53);
        assert_eq!(a.n_fixed(), 1);
        assert_eq!(a.fixed_index(ArchEvent::Cycles), Some(0));
        assert_eq!(a.fixed_index(ArchEvent::Instructions), None);
    }

    #[test]
    fn program_and_count() {
        let mut p = CorePmu::new(&GOLDEN_COVE);
        p.program_gp(0, ArchEvent::LlcMisses).unwrap();
        let fi = p.enable_fixed(ArchEvent::Instructions).unwrap();
        let mut d = deltas(1000, 2000);
        d.set(ArchEvent::LlcMisses, 7);
        p.apply(&d);
        assert_eq!(p.read_gp(0).unwrap(), 7);
        assert_eq!(p.read_fixed(fi).unwrap(), 1000);
        // Disabled counters do not move.
        assert_eq!(p.read_gp(1).unwrap(), 0);
    }

    #[test]
    fn topdown_rejected_on_gracemont() {
        let mut e = CorePmu::new(&GRACEMONT);
        assert_eq!(
            e.program_gp(0, ArchEvent::TopdownSlots),
            Err(PmuError::EventUnsupported(ArchEvent::TopdownSlots))
        );
        let mut p = CorePmu::new(&GOLDEN_COVE);
        assert!(p.program_gp(0, ArchEvent::TopdownSlots).is_ok());
    }

    #[test]
    fn busy_counter_rejected() {
        let mut p = CorePmu::new(&GOLDEN_COVE);
        p.program_gp(0, ArchEvent::LlcMisses).unwrap();
        assert_eq!(
            p.program_gp(0, ArchEvent::BranchMisses),
            Err(PmuError::CounterBusy(0))
        );
        p.disable_gp(0).unwrap();
        assert!(p.program_gp(0, ArchEvent::BranchMisses).is_ok());
    }

    #[test]
    fn free_gp_scan() {
        let mut p = CorePmu::new(&GRACEMONT);
        assert_eq!(p.free_gp(), Some(0));
        for i in 0..p.n_gp() {
            p.program_gp(i, ArchEvent::BranchMisses).unwrap();
        }
        assert_eq!(p.free_gp(), None);
    }

    #[test]
    fn counter_wraps_at_48_bits() {
        let mut p = CorePmu::new(&GOLDEN_COVE);
        p.program_gp(0, ArchEvent::Instructions).unwrap();
        p.write_gp(0, COUNTER_MASK - 5).unwrap();
        p.apply(&deltas(10, 0));
        assert_eq!(p.read_gp(0).unwrap(), 4); // wrapped
    }

    #[test]
    fn write_gp_masks_value() {
        let mut p = CorePmu::new(&GOLDEN_COVE);
        p.write_gp(0, u64::MAX).unwrap();
        assert_eq!(p.read_gp(0).unwrap(), COUNTER_MASK);
    }

    #[test]
    fn enabled_count_tracks() {
        let mut p = CorePmu::new(&GOLDEN_COVE);
        assert_eq!(p.enabled_count(), 0);
        p.enable_fixed(ArchEvent::Cycles).unwrap();
        p.program_gp(2, ArchEvent::BranchMisses).unwrap();
        assert_eq!(p.enabled_count(), 2);
    }
}
