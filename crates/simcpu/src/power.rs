//! Package power modeling and RAPL (Running Average Power Limit).
//!
//! Power is computed per core from the `C·V²·f` model in [`crate::uarch`],
//! weighted by utilization and an activity factor derived from the
//! instruction mix (vector-heavy code toggles far more silicon). The
//! package-level RAPL machinery then:
//!
//! * integrates energy into the PKG / PP0 (cores) / DRAM domain counters —
//!   which, like the real MSRs, **wrap at 32 bits** of microjoule-scale
//!   units, so consumers must handle wrap-around;
//! * enforces the PL1 (long-term) and PL2 (short-term) limits with
//!   exponentially-weighted running averages and an integral controller
//!   that scales the frequency targets of every cluster.
//!
//! On the paper's Raptor Lake machine PL1 = 65 W and PL2 = 219 W: runs
//! start with a turbo spike to the short-term cap and then settle at 65 W
//! for the remainder (Figure 2).

use crate::types::Nanos;

/// RAPL energy domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RaplDomain {
    /// Whole package (cores + uncore).
    Package,
    /// Cores only (PP0).
    Cores,
    /// Memory controller + DIMMs.
    Dram,
    /// Platform (psys): package + DRAM + board.
    Psys,
}

impl RaplDomain {
    /// sysfs-style domain name.
    pub fn name(self) -> &'static str {
        match self {
            RaplDomain::Package => "package-0",
            RaplDomain::Cores => "core",
            RaplDomain::Dram => "dram",
            RaplDomain::Psys => "psys",
        }
    }

    /// All domains in report order.
    pub fn all() -> &'static [RaplDomain] {
        &[
            RaplDomain::Package,
            RaplDomain::Cores,
            RaplDomain::Dram,
            RaplDomain::Psys,
        ]
    }
}

/// RAPL energy counters wrap at 32 bits of µJ-scale units.
pub const ENERGY_WRAP_UJ: u64 = 1 << 32;

/// Configuration of the package power limiter.
#[derive(Debug, Clone, PartialEq)]
pub struct RaplSpec {
    /// Long-term power limit (watts) — 65 W on the paper's i7-13700.
    pub pl1_w: f64,
    /// PL1 averaging window (seconds).
    pub tau1_s: f64,
    /// Short-term power limit (watts) — 219 W on the paper's i7-13700.
    pub pl2_w: f64,
    /// PL2 averaging window (seconds).
    pub tau2_s: f64,
    /// Lowest frequency scale the limiter may impose.
    pub min_scale: f64,
}

impl RaplSpec {
    /// The paper's Raptor Lake desktop limits.
    pub fn raptor_lake() -> RaplSpec {
        RaplSpec {
            pl1_w: 65.0,
            tau1_s: 28.0,
            pl2_w: 219.0,
            tau2_s: 2.44,
            min_scale: 0.25,
        }
    }
}

/// Energy accounting for one domain, with MSR-style wrap-around.
#[derive(Debug, Clone, Default)]
struct EnergyCounter {
    /// Total energy in µJ since boot (unwrapped, for internal use).
    total_uj: f64,
}

impl EnergyCounter {
    fn add(&mut self, joules: f64) {
        self.total_uj += joules * 1e6;
    }

    /// The value software reads: wrapped at 32 bits like the real MSR.
    fn wrapped_uj(&self) -> u64 {
        (self.total_uj as u64) % ENERGY_WRAP_UJ
    }

    fn total_uj(&self) -> f64 {
        self.total_uj
    }
}

/// Package power state: energy counters plus the PL1/PL2 limiter.
#[derive(Debug, Clone)]
pub struct RaplState {
    spec: Option<RaplSpec>,
    pkg: EnergyCounter,
    cores: EnergyCounter,
    dram: EnergyCounter,
    psys: EnergyCounter,
    /// EWMA of package power over tau1 / tau2.
    avg_long_w: f64,
    avg_short_w: f64,
    /// Current frequency scale imposed on all clusters (0..=1].
    scale: f64,
}

impl RaplState {
    /// New state; `spec = None` models machines without RAPL (the OrangePi),
    /// which still integrate energy (for the WattsUpPro-style meter) but
    /// never limit.
    pub fn new(spec: Option<RaplSpec>) -> RaplState {
        RaplState {
            spec,
            pkg: EnergyCounter::default(),
            cores: EnergyCounter::default(),
            dram: EnergyCounter::default(),
            psys: EnergyCounter::default(),
            avg_long_w: 0.0,
            avg_short_w: 0.0,
            scale: 1.0,
        }
    }

    /// Whether this machine exposes RAPL at all.
    pub fn available(&self) -> bool {
        self.spec.is_some()
    }

    /// Integrate one tick of power and update the limiter.
    ///
    /// Returns the frequency scale (0..=1] that DVFS must apply.
    pub fn step(
        &mut self,
        dt_ns: Nanos,
        pkg_w: f64,
        cores_w: f64,
        dram_w: f64,
        psys_w: f64,
    ) -> f64 {
        let dt_s = dt_ns as f64 / 1e9;
        self.pkg.add(pkg_w * dt_s);
        self.cores.add(cores_w * dt_s);
        self.dram.add(dram_w * dt_s);
        self.psys.add(psys_w * dt_s);

        let Some(spec) = &self.spec else {
            return 1.0;
        };

        // EWMA updates: alpha = dt/tau (exact exp form unnecessary at ms ticks).
        let a1 = (dt_s / spec.tau1_s).min(1.0);
        let a2 = (dt_s / spec.tau2_s).min(1.0);
        self.avg_long_w += a1 * (pkg_w - self.avg_long_w);
        self.avg_short_w += a2 * (pkg_w - self.avg_short_w);

        // Integral controller on the most-violated limit.
        let err_long = self.avg_long_w / spec.pl1_w - 1.0;
        let err_short = self.avg_short_w / spec.pl2_w - 1.0;
        let err = err_long.max(err_short);
        // Gains: descend fast when over, recover slowly when under.
        let k = if err > 0.0 { 0.6 } else { 0.05 };
        self.scale = (self.scale - k * err * dt_s * 10.0).clamp(spec.min_scale, 1.0);
        self.scale
    }

    /// Current limiter frequency scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// EWMA package power over the PL1 window.
    pub fn avg_long_w(&self) -> f64 {
        self.avg_long_w
    }

    /// EWMA package power over the PL2 window.
    pub fn avg_short_w(&self) -> f64 {
        self.avg_short_w
    }

    /// Read a domain's energy counter as software sees it (wrapped).
    pub fn energy_uj(&self, dom: RaplDomain) -> u64 {
        self.counter(dom).wrapped_uj()
    }

    /// Unwrapped total energy (ground truth, for tests and reports).
    pub fn energy_total_uj(&self, dom: RaplDomain) -> f64 {
        self.counter(dom).total_uj()
    }

    fn counter(&self, dom: RaplDomain) -> &EnergyCounter {
        match dom {
            RaplDomain::Package => &self.pkg,
            RaplDomain::Cores => &self.cores,
            RaplDomain::Dram => &self.dram,
            RaplDomain::Psys => &self.psys,
        }
    }

    /// The configured limits, if any.
    pub fn spec(&self) -> Option<&RaplSpec> {
        self.spec.as_ref()
    }

    /// Fault injection: dump `uj` microjoules of package energy into the
    /// counters in one step, bypassing the power model. Used to force the
    /// wrapped 32-bit readings through one or more wraps between two
    /// samples (note that a multiple of 2³² µJ moves the *wrapped* value
    /// not at all — only the unwrapped truth). The split across domains
    /// mirrors a compute burst: all of it in pkg/psys, 85 % in cores,
    /// 5 % extra on DRAM.
    pub fn inject_energy_uj(&mut self, uj: f64) {
        let j = uj / 1e6;
        self.pkg.add(j);
        self.cores.add(j * 0.85);
        self.dram.add(j * 0.05);
        self.psys.add(j * 1.05);
    }
}

/// Unwrap a pair of successive wrapped energy readings into a delta,
/// handling at most one wrap (callers must poll faster than one wrap
/// period — at 219 W, 2³² µJ wraps every ~19.6 s, so 1 Hz is fine).
pub fn energy_delta_uj(prev: u64, now: u64) -> u64 {
    if now >= prev {
        now - prev
    } else {
        ENERGY_WRAP_UJ - prev + now
    }
}

/// [`energy_delta_uj`] for arbitrarily long sampling gaps.
///
/// Two wrapped readings alone cannot distinguish a delta of `d` from
/// `d + k·2³²`; `expected_uj` supplies the missing wrap count `k` from an
/// independent estimate — typically `estimated power × gap duration`
/// (from an EWMA of recent samples or an external meter). The estimate
/// only needs to be within ±2³¹ µJ (≈ ±2.1 kJ) of the truth, i.e. within
/// half a wrap, for the reconstruction to be *exact*; the returned delta
/// always agrees with the raw readings modulo 2³².
pub fn energy_delta_uj_hinted(prev: u64, now: u64, expected_uj: u64) -> u64 {
    let base = energy_delta_uj(prev, now);
    if expected_uj <= base {
        return base;
    }
    // Whole wraps the base delta missed, rounded to the nearest.
    let wraps = (expected_uj - base + ENERGY_WRAP_UJ / 2) / ENERGY_WRAP_UJ;
    base + wraps * ENERGY_WRAP_UJ
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_integrates() {
        let mut r = RaplState::new(None);
        // 100 W for 1 s = 100 J = 1e8 µJ.
        for _ in 0..1000 {
            r.step(1_000_000, 100.0, 80.0, 5.0, 110.0);
        }
        assert!((r.energy_total_uj(RaplDomain::Package) - 1e8).abs() < 1e3);
        assert!((r.energy_total_uj(RaplDomain::Cores) - 8e7).abs() < 1e3);
        assert_eq!(r.scale(), 1.0); // no limiter
    }

    #[test]
    fn limiter_pulls_down_to_pl1() {
        let mut r = RaplState::new(Some(RaplSpec::raptor_lake()));
        // Sustained 219 W: the long-term average must eventually violate
        // PL1 and drive the scale well below 1.
        let mut scale = 1.0;
        for _ in 0..40_000 {
            scale = r.step(1_000_000, 219.0, 200.0, 6.0, 225.0);
        }
        assert!(scale < 0.7, "scale after sustained PL2 power: {scale}");
        // 40 s into a 28 s EWMA window: 219·(1−e^(−40/28)) ≈ 166 W.
        assert!(r.avg_long_w() > 150.0, "avg_long = {}", r.avg_long_w());
    }

    #[test]
    fn limiter_allows_turbo_spike() {
        let mut r = RaplState::new(Some(RaplSpec::raptor_lake()));
        // For the first ~2 s at 219 W the scale should stay high: the
        // short-term window tolerates it and the long-term EWMA is still low.
        let mut scale = 1.0;
        for _ in 0..2_000 {
            scale = r.step(1_000_000, 219.0, 200.0, 6.0, 225.0);
        }
        assert!(scale > 0.85, "turbo should survive ~2 s, scale = {scale}");
    }

    #[test]
    fn limiter_recovers_when_idle() {
        let mut r = RaplState::new(Some(RaplSpec::raptor_lake()));
        for _ in 0..60_000 {
            r.step(1_000_000, 219.0, 200.0, 6.0, 225.0);
        }
        let throttled = r.scale();
        for _ in 0..60_000 {
            r.step(1_000_000, 5.0, 2.0, 1.0, 8.0);
        }
        assert!(r.scale() > throttled + 0.2, "limiter should recover");
    }

    #[test]
    fn wrapped_counter_wraps() {
        let mut r = RaplState::new(None);
        // Drive past the 32-bit µJ wrap: 2^32 µJ ≈ 4295 J at 1 kW = 4.3 s.
        for _ in 0..5_000 {
            r.step(1_000_000, 1000.0, 900.0, 50.0, 1100.0);
        }
        let total = r.energy_total_uj(RaplDomain::Package);
        assert!(total > ENERGY_WRAP_UJ as f64);
        assert!(r.energy_uj(RaplDomain::Package) < ENERGY_WRAP_UJ);
    }

    #[test]
    fn delta_handles_wrap() {
        assert_eq!(energy_delta_uj(100, 400), 300);
        assert_eq!(energy_delta_uj(ENERGY_WRAP_UJ - 50, 100), 150);
    }

    #[test]
    fn hinted_delta_recovers_multiple_wraps_exactly() {
        // Counter went from 1000 through 3 full wraps plus 500 more.
        let prev = 1000u64;
        let truth = 3 * ENERGY_WRAP_UJ + 500;
        let now = (prev + truth) % ENERGY_WRAP_UJ;
        // Naive unwrapping sees only the fractional wrap.
        assert_eq!(energy_delta_uj(prev, now), 500);
        // A hint anywhere within half a wrap of the truth pins it exactly:
        // the accepted interval is [truth − W/2, truth + W/2).
        assert_eq!(energy_delta_uj_hinted(prev, now, truth), truth);
        assert_eq!(
            energy_delta_uj_hinted(prev, now, truth - ENERGY_WRAP_UJ / 2),
            truth
        );
        assert_eq!(
            energy_delta_uj_hinted(prev, now, truth + ENERGY_WRAP_UJ / 2 - 1),
            truth
        );
    }

    #[test]
    fn hinted_delta_degenerates_to_plain_for_short_gaps() {
        // Hint below the base delta (or zero) changes nothing: fast
        // pollers keep the exact single-wrap behaviour.
        assert_eq!(energy_delta_uj_hinted(100, 400, 0), 300);
        assert_eq!(energy_delta_uj_hinted(100, 400, 250), 300);
        assert_eq!(energy_delta_uj_hinted(ENERGY_WRAP_UJ - 50, 100, 140), 150);
        // Hint modestly above base but under half a wrap: still base.
        assert_eq!(
            energy_delta_uj_hinted(100, 400, 300 + ENERGY_WRAP_UJ / 2 - 1),
            300
        );
    }

    #[test]
    fn injected_burst_moves_truth_more_than_wrapped_reading() {
        let mut r = RaplState::new(Some(RaplSpec::raptor_lake()));
        r.step(1_000_000, 100.0, 85.0, 5.0, 105.0);
        let before_wrapped = r.energy_uj(RaplDomain::Package);
        let before_total = r.energy_total_uj(RaplDomain::Package);
        // Two whole wraps plus 700 µJ: the wrapped MSR view moves by 700
        // only, while ground truth moves by the full amount.
        let burst = 2 * ENERGY_WRAP_UJ + 700;
        r.inject_energy_uj(burst as f64);
        assert_eq!(
            r.energy_uj(RaplDomain::Package),
            (before_wrapped + 700) % ENERGY_WRAP_UJ
        );
        let dt_total = r.energy_total_uj(RaplDomain::Package) - before_total;
        assert!((dt_total - burst as f64).abs() < 1.0, "{dt_total}");
        // The hinted delta recovers the truth from the wrapped readings.
        assert_eq!(
            energy_delta_uj_hinted(before_wrapped, r.energy_uj(RaplDomain::Package), burst),
            burst
        );
    }
}
