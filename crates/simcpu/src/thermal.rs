//! Thermal modeling: a lumped-RC package model plus trip-point throttling.
//!
//! Two very different thermal designs appear in the paper:
//!
//! * The Raptor Lake desktop has a real cooler: under its 65 W long-term
//!   power cap the package settles far below the 100 °C limit, so it is
//!   *never* thermally throttled (Figure 2) — power limits dominate.
//! * The OrangePi 800 is passively cooled: its big Cortex-A72 cores ramp to
//!   1.8 GHz, heat the SoC within seconds, and get stepped down by the
//!   thermal governor until most of the computation ends up on the LITTLE
//!   cores (Figure 3) — thermals dominate.
//!
//! The model: `C·dT/dt = P − (T − T_amb)/R`, with a trip table capping the
//! frequency of clusters of a given core type, with hysteresis.

use crate::types::{CoreType, Nanos};

/// One thermal trip point: above `temp_c`, clusters whose cores are of
/// `core_type` are capped at `cap_khz`.
#[derive(Debug, Clone, PartialEq)]
pub struct TripPoint {
    pub temp_c: f64,
    pub core_type: CoreType,
    pub cap_khz: u64,
}

/// Thermal configuration of a machine.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalSpec {
    /// Heat capacity of the package + heatsink, J/K.
    pub c_j_per_k: f64,
    /// Thermal resistance to ambient, K/W.
    pub r_k_per_w: f64,
    /// Ambient temperature, °C.
    pub t_amb_c: f64,
    /// Trip table, sorted by ascending temperature.
    pub trips: Vec<TripPoint>,
    /// Hysteresis in °C before a trip releases.
    pub hysteresis_c: f64,
    /// Hardware critical temperature (°C); reported, not enforced.
    pub t_crit_c: f64,
}

impl ThermalSpec {
    /// A desktop with a tower cooler (Raptor Lake class): low thermal
    /// resistance, big heat capacity, a single catastrophic trip at 100 °C.
    pub fn desktop_cooled() -> ThermalSpec {
        ThermalSpec {
            c_j_per_k: 60.0,
            r_k_per_w: 0.42,
            t_amb_c: 25.0,
            trips: vec![TripPoint {
                temp_c: 100.0,
                core_type: CoreType::Performance,
                cap_khz: 800_000,
            }],
            hysteresis_c: 3.0,
            t_crit_c: 100.0,
        }
    }

    /// A passively-cooled SBC (RK3399 class): high thermal resistance,
    /// tiny heat capacity, a ladder of trips stepping the big cluster down.
    pub fn passive_sbc() -> ThermalSpec {
        ThermalSpec {
            c_j_per_k: 7.0,
            r_k_per_w: 16.0,
            t_amb_c: 25.0,
            trips: vec![
                TripPoint {
                    temp_c: 68.0,
                    core_type: CoreType::Performance,
                    cap_khz: 1_608_000,
                },
                TripPoint {
                    temp_c: 72.0,
                    core_type: CoreType::Performance,
                    cap_khz: 1_416_000,
                },
                TripPoint {
                    temp_c: 76.0,
                    core_type: CoreType::Performance,
                    cap_khz: 1_200_000,
                },
                TripPoint {
                    temp_c: 76.0,
                    core_type: CoreType::Efficiency,
                    cap_khz: 1_200_000,
                },
                TripPoint {
                    temp_c: 80.0,
                    core_type: CoreType::Performance,
                    cap_khz: 1_008_000,
                },
                TripPoint {
                    temp_c: 84.0,
                    core_type: CoreType::Performance,
                    cap_khz: 816_000,
                },
                TripPoint {
                    temp_c: 84.0,
                    core_type: CoreType::Efficiency,
                    cap_khz: 1_008_000,
                },
                TripPoint {
                    temp_c: 88.0,
                    core_type: CoreType::Performance,
                    cap_khz: 600_000,
                },
            ],
            hysteresis_c: 2.0,
            t_crit_c: 115.0,
        }
    }
}

/// Live thermal state.
#[derive(Debug, Clone)]
pub struct ThermalState {
    spec: ThermalSpec,
    t_c: f64,
    /// Index+1 of the deepest currently-latched trip (0 = none), per the
    /// order of `spec.trips`; latched trips release `hysteresis_c` below.
    latched: usize,
}

impl ThermalState {
    /// Start at ambient temperature.
    pub fn new(spec: ThermalSpec) -> ThermalState {
        let t = spec.t_amb_c;
        ThermalState {
            spec,
            t_c: t,
            latched: 0,
        }
    }

    /// Integrate one tick of package power.
    pub fn step(&mut self, dt_ns: Nanos, power_w: f64) {
        let dt_s = dt_ns as f64 / 1e9;
        let leak = (self.t_c - self.spec.t_amb_c) / self.spec.r_k_per_w;
        self.t_c += dt_s * (power_w - leak) / self.spec.c_j_per_k;
        // Latch/release trips with hysteresis.
        while self.latched < self.spec.trips.len()
            && self.t_c >= self.spec.trips[self.latched].temp_c
        {
            self.latched += 1;
        }
        while self.latched > 0
            && self.t_c < self.spec.trips[self.latched - 1].temp_c - self.spec.hysteresis_c
        {
            self.latched -= 1;
        }
    }

    /// Current package temperature in °C.
    pub fn temp_c(&self) -> f64 {
        self.t_c
    }

    /// Temperature in milli-degrees, the unit of `thermal_zone*/temp`.
    pub fn temp_mc(&self) -> i64 {
        (self.t_c * 1000.0) as i64
    }

    /// Frequency cap for clusters of `core_type` implied by latched trips
    /// (`u64::MAX` when unthrottled).
    pub fn freq_cap_khz(&self, core_type: CoreType) -> u64 {
        self.spec.trips[..self.latched]
            .iter()
            .filter(|t| t.core_type == core_type)
            .map(|t| t.cap_khz)
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Whether any trip is currently latched.
    pub fn throttling(&self) -> bool {
        self.latched > 0
    }

    /// The thermal spec.
    pub fn spec(&self) -> &ThermalSpec {
        &self.spec
    }

    /// Force the temperature (tests / "wait until settled" fast-forward).
    pub fn set_temp_c(&mut self, t: f64) {
        self.t_c = t;
        self.latched = 0;
        // Re-derive latched trips for consistency.
        while self.latched < self.spec.trips.len()
            && self.t_c >= self.spec.trips[self.latched].temp_c
        {
            self.latched += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: Nanos = 1_000_000_000;

    #[test]
    fn steady_state_matches_rc() {
        let mut t = ThermalState::new(ThermalSpec::desktop_cooled());
        // 65 W forever: T_ss = 25 + 65·0.42 = 52.3 °C.
        for _ in 0..4000 {
            t.step(SEC / 10, 65.0);
        }
        assert!((t.temp_c() - 52.3).abs() < 1.0, "T = {}", t.temp_c());
        assert!(!t.throttling());
    }

    #[test]
    fn raptor_lake_never_thermally_throttles_at_pl1() {
        // The paper: power limits + adequate cooling keep the package well
        // below the 100 °C max.
        let mut t = ThermalState::new(ThermalSpec::desktop_cooled());
        for _ in 0..10_000 {
            t.step(SEC / 10, 65.0);
        }
        assert!(t.temp_c() < 100.0);
        assert_eq!(t.freq_cap_khz(CoreType::Performance), u64::MAX);
    }

    #[test]
    fn sbc_trips_quickly_under_big_core_load() {
        // ~6 W on a passive SBC: T_ss = 25 + 57 = 82 °C; trips latch on
        // the way up within tens of seconds (C=7 J/K).
        let mut t = ThermalState::new(ThermalSpec::passive_sbc());
        let mut first_trip_s = None;
        for i in 0..2_000 {
            t.step(SEC / 10, 6.0);
            if first_trip_s.is_none() && t.throttling() {
                first_trip_s = Some(i as f64 / 10.0);
            }
        }
        let when = first_trip_s.expect("SBC should throttle");
        assert!(when < 120.0, "first trip at {when} s");
        assert!(t.freq_cap_khz(CoreType::Performance) < 1_800_000);
        // At sustained 6 W the ladder descends deep enough to also cap
        // the LITTLE cluster (the all-core Fig. 4 situation).
        assert!(t.freq_cap_khz(CoreType::Efficiency) <= 1_200_000);
    }

    #[test]
    fn hysteresis_releases_below_trip() {
        let mut t = ThermalState::new(ThermalSpec::passive_sbc());
        t.set_temp_c(69.0);
        assert!(t.throttling());
        // Cool to just below the trip: still latched (hysteresis).
        t.set_temp_c(69.0); // reset path exercises re-derive
        let mut s = ThermalState::new(ThermalSpec::passive_sbc());
        s.set_temp_c(69.0);
        assert!(s.throttling());
        s.step(SEC, 0.0); // cools a bit
                          // After enough cooling it must release.
        for _ in 0..120 {
            s.step(SEC, 0.0);
        }
        assert!(!s.throttling());
    }

    #[test]
    fn deeper_trips_cap_lower() {
        let mut t = ThermalState::new(ThermalSpec::passive_sbc());
        t.set_temp_c(81.0);
        assert_eq!(t.freq_cap_khz(CoreType::Performance), 1_008_000);
        t.set_temp_c(93.0);
        assert_eq!(t.freq_cap_khz(CoreType::Performance), 600_000);
        assert_eq!(t.freq_cap_khz(CoreType::Efficiency), 1_008_000);
    }

    #[test]
    fn temp_mc_units() {
        let mut t = ThermalState::new(ThermalSpec::desktop_cooled());
        t.set_temp_c(35.5);
        assert_eq!(t.temp_mc(), 35_500);
    }
}
