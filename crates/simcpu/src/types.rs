//! Fundamental identifiers and unit-bearing scalar types.
//!
//! All quantities carry their unit in the type name or field name:
//! time is nanoseconds (`Nanos`), frequency is kHz (`Khz`, matching the
//! units of `cpufreq` sysfs files), energy is microjoules (matching RAPL's
//! `energy_uj`), temperature is milli-degrees Celsius (matching
//! `thermal_zone*/temp`).

use std::fmt;

/// Simulated time in nanoseconds.
pub type Nanos = u64;

/// Frequency in kHz (the unit used by `/sys/devices/system/cpu/*/cpufreq`).
pub type Khz = u64;

/// One nanosecond expressed in seconds.
pub const NS_PER_SEC: u64 = 1_000_000_000;

/// Convert nanoseconds to (floating) seconds.
#[inline]
pub fn ns_to_s(ns: Nanos) -> f64 {
    ns as f64 / NS_PER_SEC as f64
}

/// Convert kHz to Hz as `f64`.
#[inline]
pub fn khz_to_hz(khz: Khz) -> f64 {
    khz as f64 * 1e3
}

/// Index of a *physical core* within a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId(pub usize);

/// Index of a *logical CPU* (hardware thread) within a machine.
///
/// This is the number the OS sees: on the Raptor Lake model, CPUs 0–15 are
/// the two SMT siblings of each P-core (0,1 = core 0; 2,3 = core 1; …) and
/// CPUs 16–23 are the single-threaded E-cores, mirroring the real topology
/// the paper's artifact pins against (`--cores 0,2,4,…,16-24`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CpuId(pub usize);

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Index of a cluster (frequency/thermal domain of identical cores).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterId(pub usize);

/// The broad *kind* of a core in a heterogeneous system.
///
/// Vendors use different marketing names (Intel P/E, ARM big/LITTLE/mid);
/// this enum captures the role. `Uniform` is used on homogeneous machines
/// where the distinction does not exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreType {
    /// High-performance core (Intel P-core, ARM big).
    Performance,
    /// Power-efficient core (Intel E-core, ARM LITTLE).
    Efficiency,
    /// Middle tier on tri-cluster ARM DynamIQ designs.
    Mid,
    /// The only core type on a homogeneous machine.
    Uniform,
}

impl CoreType {
    /// Short label used in reports ("P", "E", "M", "U").
    pub fn letter(self) -> &'static str {
        match self {
            CoreType::Performance => "P",
            CoreType::Efficiency => "E",
            CoreType::Mid => "M",
            CoreType::Uniform => "U",
        }
    }
}

impl fmt::Display for CoreType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CoreType::Performance => "performance",
            CoreType::Efficiency => "efficiency",
            CoreType::Mid => "mid",
            CoreType::Uniform => "uniform",
        };
        f.write_str(s)
    }
}

/// A CPU affinity mask, the moral equivalent of `cpu_set_t` under `taskset`.
///
/// Supports machines with up to 128 logical CPUs, which covers every model
/// in this workspace.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct CpuMask {
    bits: u128,
}

impl CpuMask {
    /// The empty mask (no CPUs allowed). Tasks with an empty mask can never
    /// be scheduled; callers should treat it as an error.
    pub const EMPTY: CpuMask = CpuMask { bits: 0 };

    /// Mask containing the first `n` CPUs.
    pub fn first_n(n: usize) -> Self {
        assert!(n <= 128, "CpuMask supports at most 128 CPUs");
        if n == 128 {
            CpuMask { bits: u128::MAX }
        } else {
            CpuMask {
                bits: (1u128 << n) - 1,
            }
        }
    }

    /// Mask from an iterator of CPU indices.
    pub fn from_cpus<I: IntoIterator<Item = usize>>(cpus: I) -> Self {
        let mut m = CpuMask::EMPTY;
        for c in cpus {
            m.set(CpuId(c));
        }
        m
    }

    /// Set a CPU in the mask.
    pub fn set(&mut self, cpu: CpuId) {
        assert!(cpu.0 < 128);
        self.bits |= 1u128 << cpu.0;
    }

    /// Clear a CPU from the mask.
    pub fn clear(&mut self, cpu: CpuId) {
        assert!(cpu.0 < 128);
        self.bits &= !(1u128 << cpu.0);
    }

    /// Whether the mask allows `cpu`.
    #[inline]
    pub fn contains(&self, cpu: CpuId) -> bool {
        cpu.0 < 128 && (self.bits >> cpu.0) & 1 == 1
    }

    /// Number of CPUs in the mask.
    pub fn count(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Whether no CPU is allowed.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Iterate over the CPU ids in the mask, ascending.
    pub fn iter(&self) -> impl Iterator<Item = CpuId> + '_ {
        (0..128).filter(|i| (self.bits >> i) & 1 == 1).map(CpuId)
    }

    /// Intersection of two masks.
    pub fn and(&self, other: &CpuMask) -> CpuMask {
        CpuMask {
            bits: self.bits & other.bits,
        }
    }

    /// Union of two masks.
    pub fn or(&self, other: &CpuMask) -> CpuMask {
        CpuMask {
            bits: self.bits | other.bits,
        }
    }

    /// Parse a Linux cpulist string such as `"0,2,4-7,16-23"`.
    pub fn parse_cpulist(s: &str) -> Result<CpuMask, String> {
        let mut m = CpuMask::EMPTY;
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if let Some((a, b)) = part.split_once('-') {
                let a: usize = a
                    .trim()
                    .parse()
                    .map_err(|e| format!("bad cpulist '{part}': {e}"))?;
                let b: usize = b
                    .trim()
                    .parse()
                    .map_err(|e| format!("bad cpulist '{part}': {e}"))?;
                if a > b || b >= 128 {
                    return Err(format!("bad cpulist range '{part}'"));
                }
                for c in a..=b {
                    m.set(CpuId(c));
                }
            } else {
                let c: usize = part
                    .parse()
                    .map_err(|e| format!("bad cpulist '{part}': {e}"))?;
                if c >= 128 {
                    return Err(format!("cpu {c} out of range"));
                }
                m.set(CpuId(c));
            }
        }
        Ok(m)
    }

    /// Render as a Linux cpulist string (`"0-3,8"`).
    pub fn to_cpulist(&self) -> String {
        let cpus: Vec<usize> = self.iter().map(|c| c.0).collect();
        let mut out = String::new();
        let mut i = 0;
        while i < cpus.len() {
            let start = cpus[i];
            let mut end = start;
            while i + 1 < cpus.len() && cpus[i + 1] == end + 1 {
                i += 1;
                end = cpus[i];
            }
            if !out.is_empty() {
                out.push(',');
            }
            if start == end {
                out.push_str(&start.to_string());
            } else {
                out.push_str(&format!("{start}-{end}"));
            }
            i += 1;
        }
        out
    }
}

impl fmt::Debug for CpuMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CpuMask({})", self.to_cpulist())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpumask_first_n() {
        let m = CpuMask::first_n(4);
        assert_eq!(m.count(), 4);
        assert!(m.contains(CpuId(0)));
        assert!(m.contains(CpuId(3)));
        assert!(!m.contains(CpuId(4)));
    }

    #[test]
    fn cpumask_full_width() {
        let m = CpuMask::first_n(128);
        assert_eq!(m.count(), 128);
        assert!(m.contains(CpuId(127)));
    }

    #[test]
    fn cpumask_set_clear() {
        let mut m = CpuMask::EMPTY;
        m.set(CpuId(5));
        assert!(m.contains(CpuId(5)));
        m.clear(CpuId(5));
        assert!(m.is_empty());
    }

    #[test]
    fn cpumask_parse_roundtrip() {
        let m = CpuMask::parse_cpulist("0,2,4-7,16-23").unwrap();
        assert_eq!(m.count(), 14);
        assert!(m.contains(CpuId(0)));
        assert!(!m.contains(CpuId(1)));
        assert!(m.contains(CpuId(6)));
        assert!(m.contains(CpuId(23)));
        assert_eq!(m.to_cpulist(), "0,2,4-7,16-23");
    }

    #[test]
    fn cpumask_parse_paper_artifact_list() {
        // The cpulist used by the paper's mon_hpl.py artifact: one SMT
        // sibling per P-core plus all E-cores.
        let m = CpuMask::parse_cpulist("0,2,4,6,8,10,12,14,16-23").unwrap();
        assert_eq!(m.count(), 16);
    }

    #[test]
    fn cpumask_parse_rejects_garbage() {
        assert!(CpuMask::parse_cpulist("abc").is_err());
        assert!(CpuMask::parse_cpulist("5-2").is_err());
        assert!(CpuMask::parse_cpulist("200").is_err());
    }

    #[test]
    fn cpumask_and_or() {
        let a = CpuMask::from_cpus([0, 1, 2]);
        let b = CpuMask::from_cpus([2, 3]);
        assert_eq!(a.and(&b).to_cpulist(), "2");
        assert_eq!(a.or(&b).to_cpulist(), "0-3");
    }

    #[test]
    fn coretype_letters() {
        assert_eq!(CoreType::Performance.letter(), "P");
        assert_eq!(CoreType::Efficiency.letter(), "E");
    }

    #[test]
    fn unit_helpers() {
        assert_eq!(ns_to_s(1_500_000_000), 1.5);
        assert_eq!(khz_to_hz(2_100_000), 2.1e9);
    }
}
