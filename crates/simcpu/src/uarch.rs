//! Microarchitecture descriptors.
//!
//! Each [`Microarch`] carries the constants the execution, power and PMU
//! models need: pipeline width, peak vector FLOP throughput, memory-level
//! parallelism, the PMU shape (fixed/general counter counts, which
//! architectural events exist), the dynamic-power coefficient and
//! voltage/frequency curve, and the identification values the OS exposes
//! (MIDR on ARM, family/model on x86 — where, as the paper stresses, P- and
//! E-cores are *indistinguishable*).
//!
//! The calibration targets are the paper's own measurements: with the
//! constants below, the Raptor Lake machine model settles at ≈2.6 GHz
//! (P) / ≈2.3 GHz (E) under the 65 W long-term RAPL limit with all cores
//! busy — the median frequencies Figure 1(b) reports for Intel HPL.

use crate::events::ArchEvent;
use crate::types::CoreType;

/// Identifier for a core microarchitecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Microarch {
    /// Intel P-core in Alder/Raptor Lake ("Golden Cove" / "Raptor Cove").
    GoldenCove,
    /// Intel E-core in Alder/Raptor Lake ("Gracemont").
    Gracemont,
    /// Intel Skylake (homogeneous control machine).
    Skylake,
    /// ARM Cortex-A72 (the OrangePi 800 / RK3399 "big" core).
    CortexA72,
    /// ARM Cortex-A53 (the RK3399 "LITTLE" core).
    CortexA53,
    /// ARM Cortex-X1 (big core of the tri-cluster test machine).
    CortexX1,
    /// ARM Cortex-A76 (mid core of the tri-cluster test machine).
    CortexA76,
    /// ARM Cortex-A55 (little core of the tri-cluster test machine).
    CortexA55,
}

/// CPU vendor, as reported in `/proc/cpuinfo`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vendor {
    Intel,
    Arm,
}

/// Full parameter set for one microarchitecture.
#[derive(Debug, Clone)]
pub struct UarchParams {
    pub arch: Microarch,
    pub vendor: Vendor,
    /// Human name ("Golden Cove").
    pub name: &'static str,
    /// libpfm4-style PMU name ("adl_glc").
    pub pfm_name: &'static str,
    /// Kernel perf PMU directory name ("cpu_core") when this µarch is part
    /// of a hybrid system; homogeneous machines use plain "cpu".
    pub kernel_pmu_name: &'static str,
    /// The role this core plays in a hybrid design.
    pub core_type: CoreType,
    /// Linux `cpu_capacity` value (0–1024, biggest core = 1024).
    pub capacity: u32,

    // -- execution model ---------------------------------------------------
    /// Peak sustainable instructions per cycle on friendly code.
    pub ipc_base: f64,
    /// Peak double-precision FLOPs per cycle (FMA lanes × 2).
    pub flops_per_cycle: f64,
    /// Branch mispredict penalty in cycles.
    pub mispredict_penalty: f64,
    /// Memory-level parallelism: how many outstanding misses overlap.
    pub mlp: f64,
    /// Fraction of would-be demand LLC misses hidden by prefetch; slower
    /// efficiency cores let prefetchers run ahead of demand, which is why
    /// the paper's Table III shows E-core LLC miss rates near zero.
    pub prefetch_hide: f64,
    /// Throughput multiplier per SMT thread when both siblings are busy.
    pub smt_share: f64,

    // -- caches -------------------------------------------------------------
    /// L1D size in bytes (per core).
    pub l1d_bytes: u64,
    /// L2 size in bytes (per core or per module, see `l2_shared_cores`).
    pub l2_bytes: u64,
    /// How many cores share one L2 (Gracemont modules share a 4 MB L2).
    pub l2_shared_cores: u32,
    /// L2 hit latency (cycles).
    pub l2_lat_cycles: f64,
    /// LLC hit latency (cycles).
    pub llc_lat_cycles: f64,

    // -- PMU shape ----------------------------------------------------------
    /// Events available as *fixed* counters (Intel: INST, CYC, REF).
    pub fixed_counters: &'static [ArchEvent],
    /// Number of general-purpose programmable counters.
    pub n_gp_counters: usize,
    /// Events this PMU can count at all (top-down slots are GoldenCove-only).
    pub available_events: &'static [ArchEvent],

    // -- power --------------------------------------------------------------
    /// Dynamic energy per cycle at 1.0 V, in nanojoules.
    pub cdyn_nj: f64,
    /// Voltage at the bottom of the frequency range.
    pub v_min: f64,
    /// Voltage at the top of the frequency range.
    pub v_max: f64,
    /// Static/idle power per core in watts (gate leakage, clocks).
    pub idle_w: f64,

    // -- identification -----------------------------------------------------
    /// ARM MIDR part number (0 for x86). A72=0xd08, A53=0xd03, …
    pub midr_part: u32,
    /// x86 CPUID (family, model): note Raptor Lake P and E report the
    /// *same* (6, 0xb7) pair — the paper's point that family/model cannot
    /// distinguish hybrid core types on Intel.
    pub x86_family_model: (u32, u32),
    /// Intel CPUID leaf 0x1A core-type byte (EAX bits 31:24): 0x40 = Atom (E),
    /// 0x20 = Core (P); 0 when the leaf is absent.
    pub cpuid_1a_core_type: u8,
}

/// The common event set every modeled PMU supports.
const COMMON_EVENTS: &[ArchEvent] = &[
    ArchEvent::Instructions,
    ArchEvent::Cycles,
    ArchEvent::RefCycles,
    ArchEvent::BranchInstructions,
    ArchEvent::BranchMisses,
    ArchEvent::L1dAccesses,
    ArchEvent::L1dMisses,
    ArchEvent::L2Accesses,
    ArchEvent::L2Misses,
    ArchEvent::LlcAccesses,
    ArchEvent::LlcMisses,
    ArchEvent::MemStallCycles,
    ArchEvent::FpOps,
    ArchEvent::VectorUops,
    ArchEvent::DtlbMisses,
];

/// GoldenCove additionally has top-down slots.
const GLC_EVENTS: &[ArchEvent] = &[
    ArchEvent::Instructions,
    ArchEvent::Cycles,
    ArchEvent::RefCycles,
    ArchEvent::BranchInstructions,
    ArchEvent::BranchMisses,
    ArchEvent::L1dAccesses,
    ArchEvent::L1dMisses,
    ArchEvent::L2Accesses,
    ArchEvent::L2Misses,
    ArchEvent::LlcAccesses,
    ArchEvent::LlcMisses,
    ArchEvent::MemStallCycles,
    ArchEvent::FpOps,
    ArchEvent::VectorUops,
    ArchEvent::TopdownSlots,
    ArchEvent::DtlbMisses,
];

const INTEL_FIXED: &[ArchEvent] = &[
    ArchEvent::Instructions,
    ArchEvent::Cycles,
    ArchEvent::RefCycles,
];

/// ARM PMUs have a fixed cycle counter only.
const ARM_FIXED: &[ArchEvent] = &[ArchEvent::Cycles];

impl Microarch {
    /// The full parameter set for this microarchitecture.
    pub fn params(self) -> &'static UarchParams {
        match self {
            Microarch::GoldenCove => &GOLDEN_COVE,
            Microarch::Gracemont => &GRACEMONT,
            Microarch::Skylake => &SKYLAKE,
            Microarch::CortexA72 => &CORTEX_A72,
            Microarch::CortexA53 => &CORTEX_A53,
            Microarch::CortexX1 => &CORTEX_X1,
            Microarch::CortexA76 => &CORTEX_A76,
            Microarch::CortexA55 => &CORTEX_A55,
        }
    }

    /// All modeled microarchitectures.
    pub fn all() -> &'static [Microarch] {
        &[
            Microarch::GoldenCove,
            Microarch::Gracemont,
            Microarch::Skylake,
            Microarch::CortexA72,
            Microarch::CortexA53,
            Microarch::CortexX1,
            Microarch::CortexA76,
            Microarch::CortexA55,
        ]
    }
}

impl UarchParams {
    /// Core voltage at frequency `khz`, from the linear V/f curve between
    /// (`f_min`,`v_min`) and (`f_max`,`v_max`).
    pub fn voltage_at(&self, khz: u64, f_min_khz: u64, f_max_khz: u64) -> f64 {
        if f_max_khz <= f_min_khz {
            return self.v_max;
        }
        let t = ((khz.saturating_sub(f_min_khz)) as f64) / ((f_max_khz - f_min_khz) as f64);
        self.v_min + (self.v_max - self.v_min) * t.clamp(0.0, 1.0)
    }

    /// Dynamic power in watts of one core running at `khz` with the given
    /// utilization (fraction of cycles doing work), using `C·V²·f`.
    pub fn dyn_power_w(&self, khz: u64, f_min_khz: u64, f_max_khz: u64, util: f64) -> f64 {
        let v = self.voltage_at(khz, f_min_khz, f_max_khz);
        let f_ghz = khz as f64 / 1e6;
        self.cdyn_nj * v * v * f_ghz * util.clamp(0.0, 1.0)
    }

    /// Whether this PMU can count `ev` at all.
    pub fn supports_event(&self, ev: ArchEvent) -> bool {
        self.available_events.contains(&ev)
    }

    /// Whether `ev` has a dedicated fixed counter.
    pub fn is_fixed_event(&self, ev: ArchEvent) -> bool {
        self.fixed_counters.contains(&ev)
    }
}

pub static GOLDEN_COVE: UarchParams = UarchParams {
    arch: Microarch::GoldenCove,
    vendor: Vendor::Intel,
    name: "Golden Cove (P-core)",
    pfm_name: "adl_glc",
    kernel_pmu_name: "cpu_core",
    core_type: CoreType::Performance,
    capacity: 1024,
    ipc_base: 4.6,
    flops_per_cycle: 16.0, // 2×256-bit FMA pipes, DP
    mispredict_penalty: 17.0,
    mlp: 12.0,
    prefetch_hide: 0.0,
    smt_share: 0.62,
    l1d_bytes: 48 * 1024,
    l2_bytes: 2 * 1024 * 1024,
    l2_shared_cores: 1,
    l2_lat_cycles: 15.0,
    llc_lat_cycles: 52.0,
    fixed_counters: INTEL_FIXED,
    n_gp_counters: 8,
    available_events: GLC_EVENTS,
    cdyn_nj: 2.50,
    v_min: 0.82,
    v_max: 1.35,
    idle_w: 0.15,
    midr_part: 0,
    x86_family_model: (6, 0xb7),
    cpuid_1a_core_type: 0x40, // Intel "Core"
};

pub static GRACEMONT: UarchParams = UarchParams {
    arch: Microarch::Gracemont,
    vendor: Vendor::Intel,
    name: "Gracemont (E-core)",
    pfm_name: "adl_grt",
    kernel_pmu_name: "cpu_atom",
    core_type: CoreType::Efficiency,
    capacity: 446,
    ipc_base: 3.2,
    flops_per_cycle: 6.5, // 2×128-bit FMA, DP (sustained)
    mispredict_penalty: 13.0,
    mlp: 8.0,
    prefetch_hide: 0.9994,
    smt_share: 1.0, // no SMT on Gracemont
    l1d_bytes: 32 * 1024,
    l2_bytes: 4 * 1024 * 1024,
    l2_shared_cores: 4, // 4-core module shares the L2
    l2_lat_cycles: 19.0,
    llc_lat_cycles: 65.0,
    fixed_counters: INTEL_FIXED,
    n_gp_counters: 6,
    available_events: COMMON_EVENTS,
    cdyn_nj: 1.11,
    v_min: 0.78,
    v_max: 1.15,
    idle_w: 0.06,
    midr_part: 0,
    x86_family_model: (6, 0xb7), // identical to the P-core, deliberately
    cpuid_1a_core_type: 0x20,    // Intel "Atom"
};

pub static SKYLAKE: UarchParams = UarchParams {
    arch: Microarch::Skylake,
    vendor: Vendor::Intel,
    name: "Skylake",
    pfm_name: "skl",
    kernel_pmu_name: "cpu",
    core_type: CoreType::Uniform,
    capacity: 1024,
    ipc_base: 4.0,
    flops_per_cycle: 16.0,
    mispredict_penalty: 16.0,
    mlp: 10.0,
    prefetch_hide: 0.0,
    smt_share: 0.62,
    l1d_bytes: 32 * 1024,
    l2_bytes: 1024 * 1024,
    l2_shared_cores: 1,
    l2_lat_cycles: 14.0,
    llc_lat_cycles: 44.0,
    fixed_counters: INTEL_FIXED,
    n_gp_counters: 4,
    available_events: COMMON_EVENTS,
    cdyn_nj: 2.3,
    v_min: 0.8,
    v_max: 1.3,
    idle_w: 0.2,
    midr_part: 0,
    x86_family_model: (6, 0x5e),
    cpuid_1a_core_type: 0, // leaf absent pre-hybrid
};

pub static CORTEX_A72: UarchParams = UarchParams {
    arch: Microarch::CortexA72,
    vendor: Vendor::Arm,
    name: "Cortex-A72 (big)",
    pfm_name: "arm_ac72",
    kernel_pmu_name: "armv8_cortex_a72",
    core_type: CoreType::Performance,
    capacity: 1024,
    ipc_base: 3.0,
    flops_per_cycle: 4.0, // one 128-bit NEON FMA pipe, DP
    mispredict_penalty: 15.0,
    mlp: 6.0,
    prefetch_hide: 0.2,
    smt_share: 1.0,
    l1d_bytes: 32 * 1024,
    l2_bytes: 1024 * 1024,
    l2_shared_cores: 2, // big cluster shares 1 MB L2
    l2_lat_cycles: 18.0,
    llc_lat_cycles: 0.0, // no L3 on RK3399; L2 is last-level
    fixed_counters: ARM_FIXED,
    n_gp_counters: 6,
    available_events: COMMON_EVENTS,
    cdyn_nj: 1.30,
    v_min: 0.85,
    v_max: 1.25,
    idle_w: 0.05,
    midr_part: 0xd08,
    x86_family_model: (0, 0),
    cpuid_1a_core_type: 0,
};

pub static CORTEX_A53: UarchParams = UarchParams {
    arch: Microarch::CortexA53,
    vendor: Vendor::Arm,
    name: "Cortex-A53 (LITTLE)",
    pfm_name: "arm_ac53",
    kernel_pmu_name: "armv8_cortex_a53",
    core_type: CoreType::Efficiency,
    capacity: 446,
    ipc_base: 1.8,
    flops_per_cycle: 2.0, // in-order, 64-bit DP NEON
    mispredict_penalty: 8.0,
    mlp: 3.0,
    prefetch_hide: 0.95,
    smt_share: 1.0,
    l1d_bytes: 32 * 1024,
    l2_bytes: 512 * 1024,
    l2_shared_cores: 4, // LITTLE cluster shares 512 KB L2
    l2_lat_cycles: 15.0,
    llc_lat_cycles: 0.0,
    fixed_counters: ARM_FIXED,
    n_gp_counters: 6,
    available_events: COMMON_EVENTS,
    cdyn_nj: 0.30,
    v_min: 0.80,
    v_max: 1.15,
    idle_w: 0.02,
    midr_part: 0xd03,
    x86_family_model: (0, 0),
    cpuid_1a_core_type: 0,
};

pub static CORTEX_X1: UarchParams = UarchParams {
    arch: Microarch::CortexX1,
    vendor: Vendor::Arm,
    name: "Cortex-X1 (prime)",
    pfm_name: "arm_x1",
    kernel_pmu_name: "armv8_cortex_x1",
    core_type: CoreType::Performance,
    capacity: 1024,
    ipc_base: 5.0,
    flops_per_cycle: 16.0,
    mispredict_penalty: 14.0,
    mlp: 16.0,
    prefetch_hide: 0.0,
    smt_share: 1.0,
    l1d_bytes: 64 * 1024,
    l2_bytes: 1024 * 1024,
    l2_shared_cores: 1,
    l2_lat_cycles: 13.0,
    llc_lat_cycles: 40.0,
    fixed_counters: ARM_FIXED,
    n_gp_counters: 6,
    available_events: COMMON_EVENTS,
    cdyn_nj: 1.5,
    v_min: 0.75,
    v_max: 1.1,
    idle_w: 0.05,
    midr_part: 0xd44,
    x86_family_model: (0, 0),
    cpuid_1a_core_type: 0,
};

pub static CORTEX_A76: UarchParams = UarchParams {
    arch: Microarch::CortexA76,
    vendor: Vendor::Arm,
    name: "Cortex-A76 (mid)",
    pfm_name: "arm_a76",
    kernel_pmu_name: "armv8_cortex_a76",
    core_type: CoreType::Mid,
    capacity: 760,
    ipc_base: 4.0,
    flops_per_cycle: 8.0,
    mispredict_penalty: 12.0,
    mlp: 10.0,
    prefetch_hide: 0.3,
    smt_share: 1.0,
    l1d_bytes: 64 * 1024,
    l2_bytes: 512 * 1024,
    l2_shared_cores: 1,
    l2_lat_cycles: 12.0,
    llc_lat_cycles: 38.0,
    fixed_counters: ARM_FIXED,
    n_gp_counters: 6,
    available_events: COMMON_EVENTS,
    cdyn_nj: 0.8,
    v_min: 0.72,
    v_max: 1.05,
    idle_w: 0.03,
    midr_part: 0xd0b,
    x86_family_model: (0, 0),
    cpuid_1a_core_type: 0,
};

pub static CORTEX_A55: UarchParams = UarchParams {
    arch: Microarch::CortexA55,
    vendor: Vendor::Arm,
    name: "Cortex-A55 (little)",
    pfm_name: "arm_a55",
    kernel_pmu_name: "armv8_cortex_a55",
    core_type: CoreType::Efficiency,
    capacity: 250,
    ipc_base: 2.0,
    flops_per_cycle: 4.0,
    mispredict_penalty: 8.0,
    mlp: 4.0,
    prefetch_hide: 0.9,
    smt_share: 1.0,
    l1d_bytes: 32 * 1024,
    l2_bytes: 256 * 1024,
    l2_shared_cores: 1,
    l2_lat_cycles: 10.0,
    llc_lat_cycles: 35.0,
    fixed_counters: ARM_FIXED,
    n_gp_counters: 6,
    available_events: COMMON_EVENTS,
    cdyn_nj: 0.22,
    v_min: 0.70,
    v_max: 1.0,
    idle_w: 0.015,
    midr_part: 0xd05,
    x86_family_model: (0, 0),
    cpuid_1a_core_type: 0,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_resolve_for_all() {
        for &m in Microarch::all() {
            let p = m.params();
            assert_eq!(p.arch, m);
            assert!(p.ipc_base > 0.0);
            assert!(p.n_gp_counters > 0);
            assert!(!p.available_events.is_empty());
        }
    }

    #[test]
    fn topdown_only_on_goldencove() {
        for &m in Microarch::all() {
            let has = m.params().supports_event(ArchEvent::TopdownSlots);
            assert_eq!(has, m == Microarch::GoldenCove, "{m:?}");
        }
    }

    #[test]
    fn hybrid_intel_family_model_identical() {
        // The paper: Intel P/E cores cannot be told apart by family/model.
        assert_eq!(GOLDEN_COVE.x86_family_model, GRACEMONT.x86_family_model);
        // …but cpuid leaf 0x1A does distinguish them.
        assert_ne!(GOLDEN_COVE.cpuid_1a_core_type, GRACEMONT.cpuid_1a_core_type);
    }

    #[test]
    fn arm_midr_distinguishes_cores() {
        assert_ne!(CORTEX_A72.midr_part, CORTEX_A53.midr_part);
    }

    #[test]
    fn voltage_curve_monotone() {
        let p = &GOLDEN_COVE;
        let lo = p.voltage_at(2_100_000, 2_100_000, 5_100_000);
        let mid = p.voltage_at(3_600_000, 2_100_000, 5_100_000);
        let hi = p.voltage_at(5_100_000, 2_100_000, 5_100_000);
        assert!(lo < mid && mid < hi);
        assert!((lo - 0.82).abs() < 1e-9);
        assert!((hi - 1.35).abs() < 1e-9);
    }

    #[test]
    fn power_model_matches_calibration_point() {
        // At the PL1 equilibrium frequencies from Fig. 1(b) (P ≈ 2.61 GHz,
        // E ≈ 2.32 GHz, full utilization) the modeled package power must be
        // close to the 65 W long-term limit: 8·P_glc + 8·P_grt + ~10 W uncore.
        let p = GOLDEN_COVE.dyn_power_w(2_610_000, 2_100_000, 5_100_000, 1.0);
        let e = GRACEMONT.dyn_power_w(2_320_000, 1_500_000, 4_100_000, 1.0);
        let pkg = 8.0 * p + 8.0 * e + 10.0;
        assert!(
            (55.0..75.0).contains(&pkg),
            "package power at paper's equilibrium freqs = {pkg:.1} W"
        );
    }

    #[test]
    fn peak_power_reaches_pl2_neighborhood() {
        // All cores at max turbo should approach the 219 W short-term cap.
        let p = GOLDEN_COVE.dyn_power_w(5_100_000, 2_100_000, 5_100_000, 1.0);
        let e = GRACEMONT.dyn_power_w(4_100_000, 1_500_000, 4_100_000, 1.0);
        let pkg = 8.0 * p * 1.0 + 8.0 * e + 10.0;
        assert!(
            (170.0..260.0).contains(&pkg),
            "peak package power = {pkg:.1} W"
        );
    }

    #[test]
    fn capacity_ordering() {
        assert!(GOLDEN_COVE.capacity > GRACEMONT.capacity);
        assert!(CORTEX_A72.capacity > CORTEX_A53.capacity);
        assert!(CORTEX_X1.capacity > CORTEX_A76.capacity);
        assert!(CORTEX_A76.capacity > CORTEX_A55.capacity);
    }
}
