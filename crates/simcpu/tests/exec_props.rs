//! Property tests on the execution engine's event accounting.

use proptest::prelude::*;
use simcpu::events::ArchEvent;
use simcpu::exec::{advance, ExecContext};
use simcpu::phase::Phase;
use simcpu::uarch::{CORTEX_A53, CORTEX_A72, GOLDEN_COVE, GRACEMONT};

fn arb_phase() -> impl Strategy<Value = Phase> {
    (
        1u64..5_000_000,
        0.0f64..0.6,
        10u64..35,
        0.0f64..1.0,
        0.0f64..1.0,
        0.0f64..1.0,
        0.0f64..8.0,
        0.0f64..1.0,
        0.0f64..0.4,
        0.0f64..0.2,
    )
        .prop_map(|(inst, mem, ws, r1, r2, r3, fpi, vf, br, bm)| Phase {
            instructions: inst,
            mem_ref_rate: mem,
            working_set: 1u64 << ws,
            reuse_l1: r1,
            reuse_l2: r2,
            reuse_llc: r3,
            flops_per_inst: fpi,
            vector_frac: vf,
            branch_rate: br,
            branch_miss_rate: bm,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Whatever the phase, budget, µarch, frequency and cache situation:
    /// instruction accounting is conservative and the cache event chain is
    /// monotone (accesses ≥ misses at every level; each level's accesses
    /// are bounded by the level above's misses).
    #[test]
    fn event_chain_is_consistent(
        phase in arb_phase(),
        budget_log in 4u32..36,
        khz in 600_000u64..5_100_000,
        share_log in 0u32..30,
        smt in proptest::bool::ANY,
        contention in 1.0f64..4.0,
    ) {
        for ua in [&GOLDEN_COVE, &GRACEMONT, &CORTEX_A72, &CORTEX_A53] {
            let ctx = ExecContext {
                uarch: ua,
                freq_khz: khz,
                ref_khz: 2_100_000,
                llc_share_bytes: if share_log == 0 { 0 } else { 1u64 << share_log },
                mem_contention: contention,
                smt_factor: if smt { ua.smt_share } else { 1.0 },
            };
            let r = advance(&phase, (1u64 << budget_log) as f64, &ctx);
            let ev = &r.events;
            prop_assert!(r.instructions <= phase.instructions);
            prop_assert_eq!(ev.get(ArchEvent::Instructions), r.instructions);
            prop_assert_eq!(ev.get(ArchEvent::Cycles), r.cycles);
            if r.instructions > 0 {
                prop_assert!(r.cycles > 0, "work takes cycles");
            }
            // Cache chain monotonicity (rounding tolerance of 1).
            let l1a = ev.get(ArchEvent::L1dAccesses);
            let l1m = ev.get(ArchEvent::L1dMisses);
            let l2a = ev.get(ArchEvent::L2Accesses);
            let l2m = ev.get(ArchEvent::L2Misses);
            let llca = ev.get(ArchEvent::LlcAccesses);
            let llcm = ev.get(ArchEvent::LlcMisses);
            prop_assert!(l1m <= l1a + 1, "{ev:?}");
            prop_assert!(l2a <= l1m + 1);
            prop_assert!(l2m <= l2a + 1);
            prop_assert!(llcm <= llca + 1);
            // Branches bounded by instructions; misses by branches.
            let br = ev.get(ArchEvent::BranchInstructions);
            prop_assert!(br <= r.instructions + 1);
            prop_assert!(ev.get(ArchEvent::BranchMisses) <= br + 1);
            // FLOPs match the phase mix exactly.
            prop_assert!((r.flops - r.instructions as f64 * phase.flops_per_inst).abs() < 1.0);
            // Memory traffic is non-negative and finite.
            prop_assert!(r.mem_bytes.is_finite() && r.mem_bytes >= 0.0);
            // Top-down slots only where the µarch has them.
            if !ua.supports_event(ArchEvent::TopdownSlots) {
                prop_assert_eq!(ev.get(ArchEvent::TopdownSlots), 0);
            }
        }
    }

    /// advance() is budget-monotone: more cycles never retire fewer
    /// instructions.
    #[test]
    fn budget_monotone(phase in arb_phase(), b1 in 8u32..30, extra in 1u32..6) {
        let ctx = ExecContext {
            uarch: &GOLDEN_COVE,
            freq_khz: 3_000_000,
            ref_khz: 2_100_000,
            llc_share_bytes: 16 << 20,
            mem_contention: 1.0,
            smt_factor: 1.0,
        };
        let small = advance(&phase, (1u64 << b1) as f64, &ctx);
        let big = advance(&phase, (1u64 << (b1 + extra)) as f64, &ctx);
        prop_assert!(big.instructions >= small.instructions);
    }
}
