//! Seeded, deterministic fault injection for the simulated perf stack.
//!
//! A [`FaultPlan`] is a declarative schedule of fault events plus a seed;
//! installing the same plan on identically-configured kernels replays the
//! same faults byte-for-byte — same injection times, same drawn wrap
//! biases, same log. That determinism is what makes degradation *testable*:
//! a run under faults can be asserted against exact expected counts, and
//! two runs can be diffed.
//!
//! Fault classes and where they bite (each absorbed at a different layer):
//!
//! * [`FaultKind::CpuOffline`] — hotplug. The scheduler stops placing work
//!   on the CPU, per-CPU perf contexts freeze (`time_running` *and*
//!   `time_enabled` stop, as on Linux), and sysfs `online`/PMU `cpus`
//!   masks shrink.
//! * [`FaultKind::NmiWatchdog`] — the kernel claims a fixed counter for
//!   itself. User groups that relied on it spill onto general counters
//!   and, under pressure, multiplex.
//! * [`FaultKind::TransientOpen`] / [`FaultKind::TransientRead`] — the
//!   next N calls fail `EINTR`/`EBUSY`. Callers with a retry loop never
//!   notice; callers without one see a transient [`PerfError`].
//! * [`FaultKind::CounterWrap`] — newly opened core events start near the
//!   48-bit hardware limit and visibly wrap mid-run. Readers that track
//!   deltas modulo 2^48 recover exact counts.
//! * [`FaultKind::RaplWrapBurst`] — injects whole 32-bit wraps of package
//!   energy between two samples, the blind spot of naive RAPL deltas.
//! * [`FaultKind::SysfsFlaky`] — every sysfs read in a time window fails,
//!   as seen with racing hotplug or overloaded hwmon drivers.
//!
//! The kernel owns a [`FaultState`] built from the plan and consults it at
//! tick boundaries and syscall entry; this module holds no kernel state
//! itself.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simcpu::events::ArchEvent;
use simcpu::pmu::COUNTER_MASK;
use simcpu::types::{CpuId, Nanos};

use crate::perf::PerfError;

/// Which errno a transient syscall failure surfaces as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransientErrno {
    /// Interrupted by a signal mid-call.
    Eintr,
    /// Resource momentarily claimed elsewhere.
    Ebusy,
}

impl TransientErrno {
    pub fn to_perf_error(self) -> PerfError {
        match self {
            TransientErrno::Eintr => PerfError::TransientEintr,
            TransientErrno::Ebusy => PerfError::TransientEbusy,
        }
    }
}

/// One injectable fault class. See the module docs for semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Take a CPU offline; back online after `down_ns` (forever if `None`).
    CpuOffline { cpu: CpuId, down_ns: Option<Nanos> },
    /// The NMI watchdog steals the fixed counter for `steal`; released
    /// after `hold_ns` (never, if `None`).
    NmiWatchdog {
        steal: ArchEvent,
        hold_ns: Option<Nanos>,
    },
    /// The next `count` `perf_event_open` calls fail with `errno`.
    TransientOpen { errno: TransientErrno, count: u32 },
    /// The next `count` perf `read` calls fail with `errno`.
    TransientRead { errno: TransientErrno, count: u32 },
    /// Arm 48-bit counter wrap: every core hardware counting event opened
    /// from this point starts within `headroom` counts of the 48-bit
    /// limit (exact offset drawn from the plan's seeded RNG).
    CounterWrap { headroom: u64 },
    /// Inject `wraps` full 32-bit wraps plus `extra_uj` of package energy
    /// into the RAPL counters in one tick.
    RaplWrapBurst { wraps: u32, extra_uj: u64 },
    /// All sysfs reads fail for `dur_ns` starting at the fault time.
    SysfsFlaky { dur_ns: Nanos },
}

/// A fault and when it fires (simulated kernel time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    pub at_ns: Nanos,
    pub kind: FaultKind,
}

/// A seed plus a schedule of fault events. Build with [`FaultPlan::new`]
/// and chain [`FaultPlan::at`]; install via `Kernel::install_faults`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    pub seed: u64,
    schedule: Vec<FaultEvent>,
}

impl FaultPlan {
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            schedule: Vec::new(),
        }
    }

    /// Add a fault firing at `at_ns`. Order of calls is irrelevant; the
    /// schedule is replayed in time order (ties in insertion order).
    pub fn at(mut self, at_ns: Nanos, kind: FaultKind) -> FaultPlan {
        self.schedule.push(FaultEvent { at_ns, kind });
        self
    }

    pub fn schedule(&self) -> &[FaultEvent] {
        &self.schedule
    }
}

/// One line of the fault log: what was injected, and when. Two runs of
/// the same plan produce identical logs — the determinism contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    pub at_ns: Nanos,
    pub desc: String,
}

/// Deferred fault reversal (re-online, watchdog release).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Undo {
    Reonline(CpuId),
    WatchdogRelease(ArchEvent),
}

/// Kernel-side runtime state for an installed plan.
pub(crate) struct FaultState {
    rng: StdRng,
    /// Plan events, sorted by time; `next` is the replay cursor.
    pending: Vec<FaultEvent>,
    next: usize,
    /// Scheduled reversals, kept sorted by time.
    undos: Vec<(Nanos, Undo)>,
    /// Fixed counters currently held by the watchdog.
    pub(crate) watchdog_stolen: Vec<ArchEvent>,
    open_fail: Option<(TransientErrno, u32)>,
    read_fail: Option<(TransientErrno, u32)>,
    wrap_headroom: Option<u64>,
    /// Precomputed `[start, end)` windows in which sysfs reads fail.
    /// Windows are a pure function of time so `sysfs::read` can consult
    /// them through a shared kernel reference.
    sysfs_windows: Vec<(Nanos, Nanos)>,
    log: Vec<FaultRecord>,
}

impl FaultState {
    pub(crate) fn new(plan: &FaultPlan) -> FaultState {
        let mut pending = plan.schedule.clone();
        pending.sort_by_key(|e| e.at_ns);
        let sysfs_windows = pending
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::SysfsFlaky { dur_ns } => Some((e.at_ns, e.at_ns + dur_ns)),
                _ => None,
            })
            .collect();
        FaultState {
            rng: StdRng::seed_from_u64(plan.seed),
            pending,
            next: 0,
            undos: Vec::new(),
            watchdog_stolen: Vec::new(),
            open_fail: None,
            read_fail: None,
            wrap_headroom: None,
            sysfs_windows,
            log: Vec::new(),
        }
    }

    /// Next plan event due at or before `now`, advancing the cursor.
    pub(crate) fn pop_due(&mut self, now: Nanos) -> Option<FaultEvent> {
        let e = self.pending.get(self.next)?;
        if e.at_ns <= now {
            self.next += 1;
            Some(e.clone())
        } else {
            None
        }
    }

    pub(crate) fn push_undo(&mut self, at_ns: Nanos, undo: Undo) {
        self.undos.push((at_ns, undo));
        self.undos.sort_by_key(|&(t, _)| t);
    }

    /// Next reversal due at or before `now`.
    pub(crate) fn pop_due_undo(&mut self, now: Nanos) -> Option<(Nanos, Undo)> {
        if self.undos.first().is_some_and(|&(t, _)| t <= now) {
            Some(self.undos.remove(0))
        } else {
            None
        }
    }

    pub(crate) fn arm_open_failures(&mut self, errno: TransientErrno, count: u32) {
        let prior = match self.open_fail {
            Some((e, n)) if e == errno => n,
            _ => 0,
        };
        self.open_fail = Some((errno, prior + count));
    }

    pub(crate) fn arm_read_failures(&mut self, errno: TransientErrno, count: u32) {
        let prior = match self.read_fail {
            Some((e, n)) if e == errno => n,
            _ => 0,
        };
        self.read_fail = Some((errno, prior + count));
    }

    /// Consume one armed open failure, if any.
    pub(crate) fn take_open_failure(&mut self) -> Option<TransientErrno> {
        Self::take_failure(&mut self.open_fail)
    }

    /// Consume one armed read failure, if any.
    pub(crate) fn take_read_failure(&mut self) -> Option<TransientErrno> {
        Self::take_failure(&mut self.read_fail)
    }

    fn take_failure(slot: &mut Option<(TransientErrno, u32)>) -> Option<TransientErrno> {
        let (errno, left) = (*slot)?;
        *slot = if left > 1 {
            Some((errno, left - 1))
        } else {
            None
        };
        Some(errno)
    }

    pub(crate) fn arm_wrap(&mut self, headroom: u64) {
        self.wrap_headroom = Some(headroom.max(1));
    }

    /// Wrap bias for a newly opened core counting event: within the armed
    /// headroom of the 48-bit limit, or 0 when no wrap fault is armed.
    /// Draws advance the seeded RNG, so open order fixes the biases.
    pub(crate) fn draw_wrap_bias(&mut self) -> u64 {
        match self.wrap_headroom {
            Some(h) => COUNTER_MASK - self.rng.gen_range_u64(0, h),
            None => 0,
        }
    }

    /// Earliest simulated time at which any scheduled fault or reversal
    /// becomes due (`None` once the plan is exhausted). The macro-tick
    /// fast-forward loop uses this as its fault horizon: a span of ticks
    /// that all start strictly before it can skip `apply_due_faults`.
    pub(crate) fn next_due_ns(&self) -> Option<Nanos> {
        let plan = self.pending.get(self.next).map(|e| e.at_ns);
        let undo = self.undos.first().map(|&(t, _)| t);
        match (plan, undo) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Whether sysfs reads fail at `now` (pure in time — usable through a
    /// shared reference).
    pub(crate) fn sysfs_faulty_at(&self, now: Nanos) -> bool {
        self.sysfs_windows
            .iter()
            .any(|&(s, e)| (s..e).contains(&now))
    }

    pub(crate) fn record(&mut self, at_ns: Nanos, desc: impl Into<String>) {
        self.log.push(FaultRecord {
            at_ns,
            desc: desc.into(),
        });
    }

    pub(crate) fn log(&self) -> &[FaultRecord] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_replays_in_time_order() {
        let plan = FaultPlan::new(7)
            .at(500, FaultKind::SysfsFlaky { dur_ns: 10 })
            .at(
                100,
                FaultKind::CpuOffline {
                    cpu: CpuId(2),
                    down_ns: None,
                },
            );
        let mut fs = FaultState::new(&plan);
        assert!(fs.pop_due(50).is_none());
        let first = fs.pop_due(1000).unwrap();
        assert_eq!(first.at_ns, 100);
        let second = fs.pop_due(1000).unwrap();
        assert_eq!(second.at_ns, 500);
        assert!(fs.pop_due(1000).is_none());
    }

    #[test]
    fn wrap_bias_is_seed_deterministic_and_near_limit() {
        let plan = FaultPlan::new(42).at(0, FaultKind::CounterWrap { headroom: 1 << 20 });
        let draw = |seed: u64| {
            let mut fs = FaultState::new(
                &FaultPlan::new(seed).at(0, FaultKind::CounterWrap { headroom: 1 << 20 }),
            );
            fs.arm_wrap(1 << 20);
            (0..4).map(|_| fs.draw_wrap_bias()).collect::<Vec<_>>()
        };
        let a = draw(plan.seed);
        let b = draw(plan.seed);
        assert_eq!(a, b);
        for bias in &a {
            assert!(*bias > COUNTER_MASK - (1 << 20) && *bias <= COUNTER_MASK);
        }
        assert_ne!(draw(43), a, "different seeds give different biases");
    }

    #[test]
    fn transient_failures_count_down() {
        let mut fs = FaultState::new(&FaultPlan::new(1));
        fs.arm_read_failures(TransientErrno::Eintr, 2);
        assert_eq!(fs.take_read_failure(), Some(TransientErrno::Eintr));
        assert_eq!(fs.take_read_failure(), Some(TransientErrno::Eintr));
        assert_eq!(fs.take_read_failure(), None);
        assert_eq!(fs.take_open_failure(), None, "read arm never hits opens");
    }

    #[test]
    fn sysfs_windows_are_pure_in_time() {
        let plan = FaultPlan::new(1).at(1_000, FaultKind::SysfsFlaky { dur_ns: 500 });
        let fs = FaultState::new(&plan);
        assert!(!fs.sysfs_faulty_at(999));
        assert!(fs.sysfs_faulty_at(1_000));
        assert!(fs.sysfs_faulty_at(1_499));
        assert!(!fs.sysfs_faulty_at(1_500));
    }

    #[test]
    fn undos_fire_in_order() {
        let mut fs = FaultState::new(&FaultPlan::new(1));
        fs.push_undo(300, Undo::WatchdogRelease(ArchEvent::Cycles));
        fs.push_undo(200, Undo::Reonline(CpuId(1)));
        assert!(fs.pop_due_undo(100).is_none());
        assert_eq!(fs.pop_due_undo(400).unwrap().1, Undo::Reonline(CpuId(1)));
        assert_eq!(
            fs.pop_due_undo(400).unwrap().1,
            Undo::WatchdogRelease(ArchEvent::Cycles)
        );
    }
}
